// Crashlab: the four memory-related crash scenarios of Section 4.1,
// demonstrated on the real engine — and how the Vista optimizer's
// configuration avoids every one of them.
//
// Each scenario forces a deliberately naive configuration (the kind a
// SQL-era tuning guide produces) and shows the typed crash the engine
// raises; then the same workload runs under the optimizer's decision.
//
// Run with:
//
//	go run ./examples/crashlab
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dataflow"
	"repro/internal/memory"
	"repro/internal/optimizer"
)

func main() {
	spec := data.Foods().WithRows(400)
	structRows, imageRows, err := data.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	base := core.Spec{
		Nodes: 2, CoresPerNode: 4, MemPerNode: memory.GB(32),
		SystemKind: memory.SparkLike,
		ModelName:  "tiny-vgg16", NumLayers: 3,
		Downstream: core.DefaultDownstream(),
		StructRows: structRows, ImageRows: imageRows,
		Seed: 5,
	}

	show := func(title string, d optimizer.Decision, kind memory.SystemKind, params *optimizer.Params) {
		s := base
		s.Decision = &d
		s.SystemKind = kind
		s.Params = params
		_, err := core.Run(s)
		if oom, ok := memory.IsOOM(err); ok {
			fmt.Printf("%-38s ✗ %v\n", title, oom)
			return
		}
		if err != nil {
			fmt.Printf("%-38s ? unexpected error: %v\n", title, err)
			return
		}
		fmt.Printf("%-38s ✓ survived\n", title)
	}

	fmt.Println("Section 4.1 crash scenarios (naive configurations):")
	fmt.Println()

	// Scenario 1: DL Execution Memory blow-up — no budget for the CNN
	// replicas each core spawns.
	show("1. DL execution blow-up", optimizer.Decision{
		CPU: 4, NP: 8,
		MemDL: 1024, MemUser: memory.MB(128), MemStorage: memory.GB(1),
		Join: dataflow.ShuffleJoin,
	}, memory.SparkLike, nil)

	// Scenario 2: insufficient User Memory — feature TensorLists from UDF
	// threads exhaust the UDF region.
	show("2. insufficient user memory", optimizer.Decision{
		CPU: 4, NP: 8,
		MemDL: memory.MB(256), MemUser: memory.MB(1), MemStorage: memory.GB(1),
		Join: dataflow.ShuffleJoin,
	}, memory.SparkLike, nil)

	// Scenario 3: oversized partitions — one giant partition exceeds the
	// Core Memory available to the join's hash build.
	tightCore := optimizer.DefaultParams()
	tightCore.MemCore = memory.MB(1)
	show("3. oversized data partitions", optimizer.Decision{
		CPU: 4, NP: 1,
		MemDL: memory.MB(256), MemUser: memory.MB(128), MemStorage: memory.GB(1),
		Join: dataflow.ShuffleJoin,
	}, memory.SparkLike, &tightCore)

	// Scenario 4 variant: a memory-only (Ignite-like) store with Storage
	// Memory too small for the intermediates — no spill path, so it's a
	// crash rather than a slowdown.
	show("4. memory-only storage exhausted", optimizer.Decision{
		CPU: 2, NP: 8,
		MemDL: memory.MB(256), MemUser: memory.MB(128), MemStorage: memory.MB(1),
		Join: dataflow.ShuffleJoin,
	}, memory.IgniteLike, nil)

	fmt.Println("\nVista's optimizer (Algorithm 1) on the same workload:")
	fmt.Println()
	s := base // Decision nil → Vista decides
	res, err := core.Run(s)
	if err != nil {
		log.Fatal(err)
	}
	d := res.Decision
	fmt.Printf("   cpu=%d np=%d join=%v pers=%v dl=%s user=%s storage=%s\n",
		d.CPU, d.NP, d.Join, d.Pers, memory.FormatBytes(d.MemDL),
		memory.FormatBytes(d.MemUser), memory.FormatBytes(d.MemStorage))
	fmt.Printf("   ✓ survived; %d layers trained, best test F1 = %.1f%%\n",
		len(res.Layers), bestF1(res)*100)
}

func bestF1(res *core.Result) float64 {
	best := 0.0
	for _, lr := range res.Layers {
		if lr.Test.F1 > best {
			best = lr.Test.F1
		}
	}
	return best
}
