// Layerexplore: why the Staged plan wins (Section 4.2.1).
//
// The example runs the same multi-layer feature-transfer workload under the
// Lazy, Eager, and Staged logical plans on the real engine and contrasts
// their measured compute (FLOPs) and memory behavior; it then asks the
// analytical simulator what the same plans would cost at the paper's full
// cluster scale, where Eager's memory blow-up turns into spills and crashes.
//
// Run with:
//
//	go run ./examples/layerexplore
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/memory"
	"repro/internal/plan"
	"repro/internal/sim"
)

func main() {
	spec := data.Foods().WithRows(600)
	structRows, imageRows, err := data.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Real engine, tiny scale: identical models, very different work ==")
	fmt.Printf("%-10s %12s %14s %12s %10s\n", "plan", "FLOPs (G)", "peak storage", "spilled", "test F1")
	for _, kind := range []plan.Kind{plan.Lazy, plan.Eager, plan.Staged} {
		runSpec := core.Spec{
			Nodes: 2, CoresPerNode: 4, MemPerNode: memory.GB(32),
			SystemKind: memory.SparkLike,
			ModelName:  "tiny-alexnet", NumLayers: 4,
			Downstream: core.DefaultDownstream(),
			StructRows: structRows, ImageRows: imageRows,
			Seed:     3,
			PlanKind: kind, Placement: plan.AfterJoin,
		}
		res, err := core.Run(runSpec)
		if err != nil {
			log.Fatal(err)
		}
		c := res.Counters
		fmt.Printf("%-10s %12.2f %14s %12s %9.1f%%\n",
			kind, float64(c.FLOPs)/1e9,
			memory.FormatBytes(c.PeakStorageBytes), memory.FormatBytes(c.BytesSpilled),
			res.Layers[len(res.Layers)-1].Test.F1*100)
	}
	fmt.Println("\nAll three plans train identical models (Section 5.2) — the difference")
	fmt.Println("is Lazy's redundant inference and Eager's peak memory footprint.")

	fmt.Println("\n== Simulator, paper scale (8×32 GB nodes, Amazon/ResNet50, |L|=5) ==")
	ds := sim.AmazonSpec()
	for _, kind := range []plan.Kind{plan.Lazy, plan.Eager, plan.Staged} {
		w, err := sim.NewWorkload(sim.WorkloadSpec{
			ModelName: "resnet50", NumLayers: 5, Dataset: ds,
			PlanKind: kind, Placement: plan.AfterJoin,
		})
		if err != nil {
			log.Fatal(err)
		}
		ref, err := sim.NewWorkload(sim.WorkloadSpec{
			ModelName: "resnet50", NumLayers: 5, Dataset: ds,
			PlanKind: plan.Staged, Placement: plan.AfterJoin,
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg, err := sim.VistaConfig(ref)
		if err != nil {
			log.Fatal(err)
		}
		r := sim.Run(w, cfg, sim.PaperCluster())
		if r.Crash != nil {
			fmt.Printf("%-10s CRASH: %v\n", kind, r.Crash)
			continue
		}
		fmt.Printf("%-10s %6.1f min (spilled %s)\n", kind, r.TotalMin(), memory.FormatBytes(r.SpilledBytes))
	}
	fmt.Println("\nStaged gets Eager's compute without its footprint — Figure 2(D)'s")
	fmt.Println("\"best of both worlds\" point.")
}
