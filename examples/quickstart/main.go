// Quickstart: the minimal end-to-end Vista workflow.
//
// It generates a small Foods-like multimodal dataset (structured features +
// images), declares a feature-transfer workload — "try the top 3 layers of
// AlexNet with logistic regression" — and lets Vista do everything else:
// optimize the configuration, join the tables, run staged partial CNN
// inference, and train one downstream model per layer.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/memory"
)

func main() {
	// 1. Data: two aligned tables, Tstr(ID, X) and Timg(ID, I).
	spec := data.Foods().WithRows(1000)
	structRows, imageRows, err := data.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Dataset: %d rows, %d structured features, %dx%d images\n",
		spec.Rows, spec.StructDim, spec.ImageSize, spec.ImageSize)

	// 2. Declare the workload — the what, not the how (Section 3.3).
	workload := core.Spec{
		// System environment.
		Nodes:        2,
		CoresPerNode: 4,
		MemPerNode:   memory.GB(32),
		SystemKind:   memory.SparkLike,
		// CNN and the number of top feature layers to explore.
		ModelName: "tiny-alexnet",
		NumLayers: 3, // fc6, fc7, fc8
		// Downstream ML routine M (paper defaults: elastic-net logistic
		// regression, 10 iterations, 20% held-out test split).
		Downstream: core.DefaultDownstream(),
		// Data.
		StructRows: structRows,
		ImageRows:  imageRows,
		Seed:       42,
	}

	// 3. Run. Vista picks the plan, memory apportioning, join operator,
	// partition count, and persistence format via Algorithm 1.
	result, err := core.Run(workload)
	if err != nil {
		log.Fatal(err)
	}

	d := result.Decision
	fmt.Printf("\nVista chose: cpu=%d, np=%d, %v join, %v persistence\n",
		d.CPU, d.NP, d.Join, d.Pers)
	fmt.Printf("Plan: %s with %d inference stages\n\n", result.Plan.Name(), len(result.Plan.Steps))

	fmt.Println("Which layer transfers best?")
	best := 0
	for i, lr := range result.Layers {
		fmt.Printf("  %-6s (%4d features): test F1 = %.1f%%\n",
			lr.LayerName, lr.FeatureDim, lr.Test.F1*100)
		if lr.Test.F1 > result.Layers[best].Test.F1 {
			best = i
		}
	}
	fmt.Printf("\n→ Use layer %q. (Different layers transfer differently — exactly why\n"+
		"  Vista optimizes trying several at once instead of one manual run per layer.)\n",
		result.Layers[best].LayerName)
}
