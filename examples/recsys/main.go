// Recsys: the paper's motivating scenario (Section 1) — a product
// recommender at an online retailer that combines structured features
// (price, brand, click embeddings) with product images.
//
// The example builds an Amazon-like multimodal dataset, compares the
// downstream model with and without CNN image features across every layer of
// a ResNet-style CNN, and also contrasts logistic regression with a decision
// tree (the paper's Section 5.2 observation: conventional-depth trees don't
// benefit much from CNN features).
//
// Run with:
//
//	go run ./examples/recsys
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/memory"
	"repro/internal/ml"
)

func main() {
	spec := data.Amazon().WithRows(1200)
	structRows, imageRows, err := data.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Product catalog: %d items, %d structured features (price, embeddings, categories)\n\n",
		spec.Rows, spec.StructDim)

	// Baseline: structured features only — what the recommender used
	// before images.
	train, test := ml.SplitByID(structRows, 0.2)
	lr, err := ml.TrainLogRegRows(train, ml.StructuredOnly(), spec.StructDim, ml.DefaultLogRegConfig())
	if err != nil {
		log.Fatal(err)
	}
	met, err := ml.Evaluate(lr, test, ml.StructuredOnly())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Structured features only:        test F1 = %.1f%%\n", met.F1*100)

	// Feature transfer: explore all 5 top layers of the ResNet-style CNN.
	runSpec := core.Spec{
		Nodes: 2, CoresPerNode: 4, MemPerNode: memory.GB(32),
		SystemKind: memory.SparkLike,
		ModelName:  "tiny-resnet50",
		NumLayers:  5,
		Downstream: core.DefaultDownstream(),
		StructRows: structRows, ImageRows: imageRows,
		Seed: 11,
	}
	res, err := core.Run(runSpec)
	if err != nil {
		log.Fatal(err)
	}
	var best core.LayerResult
	for _, layer := range res.Layers {
		fmt.Printf("+ images via %-8s (%5d dims): test F1 = %.1f%%\n",
			layer.LayerName, layer.FeatureDim, layer.Test.F1*100)
		if layer.Test.F1 > best.Test.F1 {
			best = layer
		}
	}
	fmt.Printf("\nBest transfer layer: %s (+%.1f F1 points over structured-only)\n",
		best.LayerName, (best.Test.F1-met.F1)*100)

	// The same exploration with a decision tree downstream.
	runSpec.Downstream.Kind = core.DecisionTree
	runSpec.NumLayers = 1
	treeRes, err := core.Run(runSpec)
	if err != nil {
		log.Fatal(err)
	}
	treeOnly, err := ml.TrainTree(train, ml.StructuredOnly(), ml.DefaultTreeConfig())
	if err != nil {
		log.Fatal(err)
	}
	treeMet, err := ml.Evaluate(treeOnly, test, ml.StructuredOnly())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDecision tree, structured only:  test F1 = %.1f%%\n", treeMet.F1*100)
	fmt.Printf("Decision tree, + CNN features:   test F1 = %.1f%%\n", treeRes.Layers[0].Test.F1*100)
	treeLift := (treeRes.Layers[0].Test.F1 - treeMet.F1) * 100
	lrLift := (best.Test.F1 - met.F1) * 100
	fmt.Printf("(The tree's lift (%+.1f) trails logistic regression's (%+.1f) — Section 5.2's\n"+
		" observation that conventional-depth trees exploit CNN features less.)\n", treeLift, lrLift)
}
