// Dagtransfer: feature transfer from a DAG-structured CNN, plus multi-layer
// feature aggregation — the two extensions the paper's Section 5.4 sketches
// as future work ("supporting [BERT] in Vista requires generalizing our
// staged materialization plan to support arbitrary DAG architectures";
// "aggregating features from multiple decoder layers using concatenation").
//
// The example runs the full Vista pipeline over a DenseNet-style model
// (densely connected blocks are DAGs internally) and then trains one more
// downstream model on the *concatenation* of two layers' features.
//
// Run with:
//
//	go run ./examples/dagtransfer
package main

import (
	"fmt"
	"log"

	"repro/internal/cnn"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dataflow"
	"repro/internal/dl"
	"repro/internal/memory"
	"repro/internal/ml"
)

func main() {
	spec := data.Foods().WithRows(800)
	structRows, imageRows, err := data.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: the standard declarative workflow, but with a DAG CNN.
	res, err := core.Run(core.Spec{
		Nodes: 2, CoresPerNode: 4, MemPerNode: memory.GB(32),
		SystemKind: memory.SparkLike,
		ModelName:  "tiny-densenet", NumLayers: 3,
		Downstream: core.DefaultDownstream(),
		StructRows: structRows, ImageRows: imageRows,
		Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Per-layer transfer from the DenseNet-style model:")
	for _, lr := range res.Layers {
		fmt.Printf("  %-8s (%3d dims): test F1 = %.1f%%\n", lr.LayerName, lr.FeatureDim, lr.Test.F1*100)
	}

	// Part 2: aggregate two layers' features by concatenation and train on
	// the union — one inference pass materializes both.
	model := cnn.TinyDenseNet()
	engine, err := dataflow.NewEngine(dataflow.Config{
		Nodes: 2, CoresPerNode: 4, Kind: memory.SparkLike,
		Apportion: memory.Apportionment{
			DLExecution: memory.GB(1), User: memory.GB(1),
			Core: memory.GB(1), Storage: memory.GB(4),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()
	session, err := dl.NewSession(engine, model, dl.Options{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	tstr, err := engine.CreateTable("tstr", structRows, 8)
	if err != nil {
		log.Fatal(err)
	}
	timg, err := engine.CreateTable("timg", imageRows, 8)
	if err != nil {
		log.Fatal(err)
	}
	joined, err := engine.Join("joined", tstr, timg, dataflow.ShuffleJoin)
	if err != nil {
		log.Fatal(err)
	}
	dense1 := model.FeatureLayers[0]
	dense2 := model.FeatureLayers[1]
	udf, err := session.PartitionFunc(dl.InferenceSpec{
		From: 0, FromImage: true,
		EmitLayers: []int{dense1.LayerIndex, dense2.LayerIndex},
		KeepRawAt:  -1, DropInput: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	feats, err := engine.MapPartitions("feats", joined, udf)
	if err != nil {
		log.Fatal(err)
	}
	d1, err := model.FeatureDim(dense1)
	if err != nil {
		log.Fatal(err)
	}
	d2, err := model.FeatureDim(dense2)
	if err != nil {
		log.Fatal(err)
	}
	dim := spec.StructDim + d1 + d2
	extract := ml.StructuredPlusConcat(0, 1)
	train, err := engine.Filter("train", feats, func(r *dataflow.Row) bool { return !ml.IsTestID(r.ID, 0.2) })
	if err != nil {
		log.Fatal(err)
	}
	test, err := engine.Filter("test", feats, func(r *dataflow.Row) bool { return ml.IsTestID(r.ID, 0.2) })
	if err != nil {
		log.Fatal(err)
	}
	m, err := ml.TrainLogReg(engine, train, extract, dim, ml.DefaultLogRegConfig())
	if err != nil {
		log.Fatal(err)
	}
	testRows, err := engine.Collect(test)
	if err != nil {
		log.Fatal(err)
	}
	met, err := ml.Evaluate(m, testRows, extract)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAggregated dense1 ⧺ dense2 (%d dims): test F1 = %.1f%%\n", d1+d2, met.F1*100)
	fmt.Println("One staged pass materialized both layers; aggregation is just a FeatureFunc.")
}
