package main

import (
	"strings"
	"testing"
)

func TestExplainAllModels(t *testing.T) {
	for _, model := range []string{"alexnet", "vgg16", "resnet50"} {
		for _, dataset := range []string{"foods", "amazon"} {
			if err := run(model, dataset, 0, 8, 8, 32, 0, false); err != nil {
				t.Errorf("%s/%s: %v", model, dataset, err)
			}
		}
	}
}

func TestExplainIgniteAndGPU(t *testing.T) {
	if err := run("resnet50", "foods", 5, 8, 8, 32, 0, true); err != nil {
		t.Errorf("ignite: %v", err)
	}
	if err := run("resnet50", "foods", 5, 1, 8, 32, 12, false); err != nil {
		t.Errorf("gpu: %v", err)
	}
}

func TestMemorySweep(t *testing.T) {
	if err := sweepMemory("vgg16", "foods", 3, 8, 8, 0, false); err != nil {
		t.Fatalf("sweepMemory: %v", err)
	}
	// An infeasible point renders as "no" without error.
	line, err := sweepPoint("vgg16", "foods", 3, 8, 8, 8, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if want := "no"; len(line) == 0 || !contains(line, want) {
		t.Errorf("8 GB line = %q, want feasibility %q", line, want)
	}
	// A comfortable point is feasible with a prediction.
	line, err = sweepPoint("vgg16", "foods", 3, 8, 8, 48, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(line, "yes") || !contains(line, "min") {
		t.Errorf("48 GB line = %q, want feasible with predicted minutes", line)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}

func TestExplainValidation(t *testing.T) {
	if err := run("resnet50", "nope", 5, 8, 8, 32, 0, false); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run("nope", "foods", 5, 8, 8, 32, 0, false); err == nil {
		t.Error("unknown model accepted")
	}
	// Infeasible: an 8 GB node cannot host VGG16.
	if err := run("vgg16", "foods", 3, 8, 8, 8, 0, false); err == nil {
		t.Error("infeasible environment accepted")
	}
}
