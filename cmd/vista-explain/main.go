// Command vista-explain shows what the Vista optimizer (Algorithm 1) decides
// for a given environment, CNN, and dataset — the Table 1(B) variables, the
// intermediate-size estimates behind them, and the predicted runtime on the
// calibrated cluster profile.
//
// Example:
//
//	vista-explain -model resnet50 -dataset amazon -nodes 8 -mem 32
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cnn"
	"repro/internal/memory"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sim"
)

func main() {
	var (
		model   = flag.String("model", "resnet50", "roster CNN: alexnet, vgg16, resnet50")
		dataset = flag.String("dataset", "foods", "dataset preset: foods or amazon")
		layers  = flag.Int("layers", 0, "number of top feature layers (0 = paper default per model)")
		nodes   = flag.Int("nodes", 8, "worker nodes")
		cores   = flag.Int("cores", 8, "cores per worker")
		memGB   = flag.Float64("mem", 32, "system memory per worker (GB)")
		gpuGB   = flag.Float64("gpu", 0, "GPU memory per worker (GB, 0 = no GPU)")
		ignite  = flag.Bool("ignite", false, "memory-only (Ignite-like) PD system")
		sweep   = flag.Bool("sweep-mem", false, "sweep worker memory from 8 to 64 GB and report feasibility / decisions / predicted runtime")
		summary = flag.Bool("summary", false, "print the model's layer table (shapes, params, FLOPs) and exit")
	)
	flag.Parse()

	if *summary {
		m, err := cnn.ByName(*model)
		if err == nil {
			var out string
			if out, err = cnn.Summary(m); err == nil {
				fmt.Print(out)
				return
			}
		}
		fmt.Fprintln(os.Stderr, "vista-explain:", err)
		os.Exit(1)
	}
	if *sweep {
		if err := sweepMemory(*model, *dataset, *layers, *nodes, *cores, *gpuGB, *ignite); err != nil {
			fmt.Fprintln(os.Stderr, "vista-explain:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*model, *dataset, *layers, *nodes, *cores, *memGB, *gpuGB, *ignite); err != nil {
		fmt.Fprintln(os.Stderr, "vista-explain:", err)
		os.Exit(1)
	}
}

// sweepMemory answers the capacity-planning question behind Algorithm 1's
// "no feasible solution" exception ("the user can provision machines with
// more memory"): at which worker size does the workload become feasible, and
// how do the decision and predicted runtime evolve from there?
func sweepMemory(model, dataset string, layers, nodes, cores int, gpuGB float64, ignite bool) error {
	fmt.Printf("Memory sweep: %s/%s, %d nodes × %d cores\n\n", model, dataset, nodes, cores)
	fmt.Printf("%-8s %-10s %-5s %-6s %-10s %-13s %s\n",
		"mem", "feasible", "cpu", "np", "join", "pers", "predicted")
	for _, memGB := range []float64{8, 12, 16, 24, 32, 48, 64} {
		line, err := sweepPoint(model, dataset, layers, nodes, cores, memGB, gpuGB, ignite)
		if err != nil {
			return err
		}
		fmt.Println(line)
	}
	return nil
}

func sweepPoint(model, dataset string, layers, nodes, cores int, memGB, gpuGB float64, ignite bool) (string, error) {
	w, err := buildWorkload(model, dataset, layers, nodes, cores, memGB, gpuGB, ignite)
	if err != nil {
		return "", err
	}
	d, err := optimizer.Optimize(w.Inputs, optimizer.DefaultParams())
	if err != nil {
		return fmt.Sprintf("%-8s %-10s", fmt.Sprintf("%.0f GB", memGB), "no"), nil
	}
	prof := sim.PaperCluster().WithNodes(nodes)
	if ignite {
		prof = sim.IgniteCluster().WithNodes(nodes)
	}
	prof.MemPerNode = memory.GB(memGB)
	r := sim.Run(w, sim.FromDecision(d, optimizer.DefaultParams()), prof)
	pred := "crash"
	if r.Crash == nil {
		pred = fmt.Sprintf("%.1f min", r.TotalMin())
	}
	return fmt.Sprintf("%-8s %-10s %-5d %-6d %-10v %-13v %s",
		fmt.Sprintf("%.0f GB", memGB), "yes", d.CPU, d.NP, d.Join, d.Pers, pred), nil
}

// buildWorkload assembles the simulator workload for the given environment.
func buildWorkload(model, dataset string, layers, nodes, cores int, memGB, gpuGB float64, ignite bool) (sim.Workload, error) {
	var ds sim.DatasetSpec
	switch dataset {
	case "foods":
		ds = sim.FoodsSpec()
	case "amazon":
		ds = sim.AmazonSpec()
	default:
		return sim.Workload{}, fmt.Errorf("unknown dataset %q", dataset)
	}
	if layers <= 0 {
		switch model {
		case "alexnet":
			layers = 4
		case "vgg16":
			layers = 3
		default:
			layers = 5
		}
	}
	return sim.NewWorkload(sim.WorkloadSpec{
		ModelName: model, NumLayers: layers, Dataset: ds,
		PlanKind: plan.Staged, Placement: plan.AfterJoin,
		Nodes: nodes, CPUSys: cores,
		MemSys: memory.GB(memGB), MemGPU: memory.GB(gpuGB),
		MemoryOnly: ignite,
	})
}

func run(model, dataset string, layers, nodes, cores int, memGB, gpuGB float64, ignite bool) error {
	w, err := buildWorkload(model, dataset, layers, nodes, cores, memGB, gpuGB, ignite)
	if err != nil {
		return err
	}
	layers = w.Inputs.NumLayers
	ds := sim.DatasetSpec{Name: dataset, Rows: w.Inputs.NumRows,
		StructDim: w.Inputs.StructDim, ImageRowBytes: w.Inputs.ImageRowBytes}
	params := optimizer.DefaultParams()

	sizes, sSingle, sDouble, err := optimizer.IntermediateSizes(w.Inputs, params)
	if err != nil {
		return err
	}
	st := w.Inputs.ModelStats
	fmt.Printf("Model %s: %d params, |f|_ser=%s, |f|_mem=%s, |f|_mem_gpu=%s\n",
		st.ModelName, st.Params, memory.FormatBytes(st.SerializedBytes),
		memory.FormatBytes(st.MemBytes), memory.FormatBytes(st.GPUMemBytes))
	fmt.Printf("Workload: %s (%d rows × %d features), |L|=%d\n\n", ds.Name, ds.Rows, ds.StructDim, layers)

	fmt.Println("Intermediate table estimates (Equation 16):")
	lsList, err := st.TopLayerStats(layers)
	if err != nil {
		return err
	}
	for i, ls := range lsList {
		fmt.Printf("  T%d (%s): %s (raw %d elems, pooled %d dims)\n",
			i+1, ls.Name, memory.FormatBytes(sizes[i]), ls.RawElems, ls.FeatureDim)
	}
	fmt.Printf("  s_single=%s  s_double=%s\n\n",
		memory.FormatBytes(sSingle), memory.FormatBytes(sDouble))

	d, err := optimizer.Optimize(w.Inputs, params)
	if err != nil {
		return fmt.Errorf("optimizer: %w", err)
	}
	fmt.Println("Decision (Algorithm 1):")
	fmt.Printf("  cpu         = %d\n", d.CPU)
	fmt.Printf("  np          = %d\n", d.NP)
	fmt.Printf("  join        = %v\n", d.Join)
	fmt.Printf("  persistence = %v\n", d.Pers)
	fmt.Printf("  mem_storage = %s\n", memory.FormatBytes(d.MemStorage))
	fmt.Printf("  mem_user    = %s\n", memory.FormatBytes(d.MemUser))
	fmt.Printf("  mem_dl      = %s\n\n", memory.FormatBytes(d.MemDL))

	prof := sim.PaperCluster().WithNodes(nodes)
	if ignite {
		prof = sim.IgniteCluster().WithNodes(nodes)
	}
	if gpuGB > 0 {
		prof = sim.SingleNodeGPU()
		prof.Nodes = nodes
		prof.GPU.MemBytes = memory.GB(gpuGB)
	}
	r := sim.Run(w, sim.FromDecision(d, params), prof)
	if r.Crash != nil {
		return fmt.Errorf("simulated run crashed (should not happen with an optimizer decision): %w", r.Crash)
	}
	fmt.Printf("Predicted runtime on %s: %.1f min (read %.1f, join %.1f, spills %s)\n",
		prof.Name, r.TotalMin(), r.ReadSec/60, r.JoinSec/60, memory.FormatBytes(r.SpilledBytes))
	for _, l := range r.Layers {
		fmt.Printf("  %-10s infer %6.1fs  train %6.1fs\n", l.Layer, l.InferSec, l.TrainFirstSec+l.TrainRestSec)
	}
	return nil
}
