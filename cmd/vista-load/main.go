// Command vista-load replays a time-compressed traffic profile against a
// live vista-server and turns the serving stack's load-shedding contract
// into an exit code.
//
// A profile is a sum of shapes from the internal/workload DSL:
//
//	-profile 'diurnal(2,12,24h) + flood(12h,10m,40)'
//
// With -time-scale N, N simulated seconds elapse per wall second: the
// default profile and scale replay a full 24-hour diurnal day — including a
// lunchtime flood — in two minutes of wall clock, while every instantaneous
// request rate keeps its nominal per-second value. Open-loop mode (-mode
// open) offers the profile's rate regardless of responses, the arrival
// process of independent clients; closed-loop mode (-mode closed) maintains
// ceil(rate) well-behaved clients that honor 429 Retry-After backoff.
//
// The run records a per-tick timeline — offered load, response classes
// (200/429/503/other, timeouts, transport failures, driver sheds), latency
// p50/p99, and vista_admission_queue_depth scraped from /metrics — written
// as CSV or JSON with -timeline. At exit the run is checked against the
// serving contract:
//
//   - every offered request is classified exactly once (counter
//     reconciliation, also cross-checked against the server's
//     vista_admission_* counter deltas when -reconcile is set);
//   - zero transport failures: an overloaded server sheds with 429/503, it
//     never stops answering the socket;
//   - off-peak p99 stays within -off-peak-p99 (buckets whose target rate is
//     below -off-peak-below);
//   - 429s carry at least -min-retry-distinct distinct Retry-After values —
//     the regression gate for the static-hint retry herd.
//
// Any violated invariant prints to stderr and the command exits 1 (2 for
// usage errors), so CI can gate on a compressed day of traffic.
//
// Example against a local server with a small budget:
//
//	vista-server -addr :8080 -mem-budget 64 &
//	vista-load -url http://127.0.0.1:8080 -time-scale 720 -timeline day.csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/workload"
)

func main() {
	url := flag.String("url", "", "base URL of the vista-server under test (required)")
	profile := flag.String("profile", "diurnal(2,12,24h) + flood(12h,10m,40)",
		"offered-load profile: const/diurnal/step/burst/flood terms joined by +")
	duration := flag.Duration("duration", 24*time.Hour, "simulated span to replay")
	timeScale := flag.Float64("time-scale", 720, "simulated seconds per wall second (720: a day in 2 minutes)")
	tick := flag.Duration("tick", 0, "timeline bucket width in simulated time (0 = duration/60)")
	mode := flag.String("mode", "open", "traffic mode: open (offered rate) or closed (concurrent clients honoring Retry-After)")
	model := flag.String("model", "tiny-alexnet", "model for the /run body")
	dataset := flag.String("dataset", "foods", "dataset for the /run body")
	rows := flag.Int("rows", 40, "dataset rows for the /run body")
	layers := flag.Int("layers", 2, "|L| for the /run body")
	body := flag.String("body", "", "explicit /run JSON body (overrides -model/-dataset/-rows/-layers)")
	timeline := flag.String("timeline", "", "write the per-tick timeline to this file (- for stdout)")
	format := flag.String("timeline-format", "csv", "timeline format: csv or json")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request wall-clock timeout")
	maxInFlight := flag.Int("max-inflight", 256, "cap on concurrent in-flight requests before the driver sheds locally")
	scrape := flag.Bool("scrape", true, "sample vista_admission_queue_depth from /metrics at every tick boundary")
	reconcile := flag.Bool("reconcile", true, "diff the server's vista_admission_* counters across the run and reconcile them with observed responses")
	check := flag.Bool("check", true, "enforce the exit-code invariants (disable for exploratory runs)")
	maxTransport := flag.Int("max-transport", 0, "allowed transport-level failures")
	maxTimeouts := flag.Int("max-timeouts", 0, "allowed client-side request timeouts")
	offPeakP99 := flag.Duration("off-peak-p99", 0, "p99 latency bound for off-peak buckets (0 disables)")
	offPeakBelow := flag.Float64("off-peak-below", 4, "buckets with target rate below this are off-peak for -off-peak-p99")
	minRetryDistinct := flag.Int("min-retry-distinct", 0, "require at least this many distinct Retry-After values across 429s (0 disables; 2 is the herd-regression gate)")
	flag.Parse()

	if *url == "" {
		fatal(2, "missing -url")
	}
	pattern, err := workload.Parse(*profile)
	if err != nil {
		fatal(2, "%v", err)
	}
	m, err := workload.ParseMode(*mode)
	if err != nil {
		fatal(2, "%v", err)
	}
	reqBody := *body
	if reqBody == "" {
		reqBody = fmt.Sprintf(`{"model":%q,"dataset":%q,"rows":%d,"layers":%d}`, *model, *dataset, *rows, *layers)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := &http.Client{Timeout: *reqTimeout}

	var before map[string]float64
	if *reconcile {
		before, err = workload.ScrapeMetrics(ctx, client, *url)
		if err != nil {
			fatal(2, "pre-run scrape (is the server up?): %v", err)
		}
	}

	res, err := workload.Run(ctx, workload.Config{
		BaseURL:          *url,
		Body:             reqBody,
		Pattern:          pattern,
		Duration:         *duration,
		TimeScale:        *timeScale,
		Tick:             *tick,
		Mode:             m,
		Client:           client,
		RequestTimeout:   *reqTimeout,
		MaxInFlight:      *maxInFlight,
		ScrapeQueueDepth: *scrape,
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		fatal(2, "run: %v", err)
	}
	interrupted := err != nil

	fmt.Println("vista-load:", res.Summary())
	if *timeline != "" {
		if err := writeTimeline(res, *timeline, *format); err != nil {
			fatal(2, "timeline: %v", err)
		}
	}

	failures := 0
	if *check && !interrupted {
		checks := workload.Checks{
			MaxTransport:          *maxTransport,
			MaxTimeouts:           *maxTimeouts,
			OffPeakP99:            *offPeakP99,
			OffPeakBelow:          *offPeakBelow,
			MinDistinctRetryAfter: *minRetryDistinct,
		}
		for _, verr := range res.Verify(checks) {
			fmt.Fprintln(os.Stderr, "vista-load: FAIL:", verr)
			failures++
		}
		if *reconcile {
			for _, rerr := range reconcileCounters(ctx, client, *url, before, res) {
				fmt.Fprintln(os.Stderr, "vista-load: FAIL:", rerr)
				failures++
			}
		}
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "vista-load: interrupted; partial timeline written, invariants skipped")
	}
	if failures > 0 {
		fatal(1, "%d invariant(s) violated", failures)
	}
	if *check && !interrupted {
		fmt.Println("vista-load: all invariants held")
	}
}

// reconcileCounters diffs the server's admission counters across the run and
// requires them to match the client's books: every 200 was admitted, every
// 429 was a deadline rejection, every 503 a queue-full/oversize rejection.
// The deltas are >= rather than == on the admitted side only if other
// clients hit the server mid-run — this tool assumes it is the sole driver,
// so it checks exact equality.
func reconcileCounters(ctx context.Context, client workload.Doer, url string, before map[string]float64, res *workload.Result) []error {
	after, err := workload.ScrapeMetrics(ctx, client, url)
	if err != nil {
		return []error{fmt.Errorf("post-run scrape: %w", err)}
	}
	delta := func(series string) float64 { return after[series] - before[series] }
	var errs []error
	pairs := []struct {
		series string
		want   int
		what   string
	}{
		{"vista_admission_admitted_total", res.Counts[workload.ClassOK], "200s"},
		{`vista_admission_rejected_total{reason="deadline"}`, res.Counts[workload.ClassThrottled], "429s"},
	}
	for _, p := range pairs {
		if got := delta(p.series); got != float64(p.want) {
			errs = append(errs, fmt.Errorf("server %s grew by %g, client saw %d %s", p.series, got, p.want, p.what))
		}
	}
	// 503s split across two reasons; compare their sum.
	got503 := delta(`vista_admission_rejected_total{reason="queue_full"}`) + delta(`vista_admission_rejected_total{reason="oversize"}`)
	if got503 != float64(res.Counts[workload.ClassOverload]) {
		errs = append(errs, fmt.Errorf("server 503-reason counters grew by %g, client saw %d 503s", got503, res.Counts[workload.ClassOverload]))
	}
	// After a drained run nothing should remain in flight or queued.
	for _, gauge := range []string{"vista_admission_inflight_bytes", "vista_admission_inflight_runs", "vista_admission_queue_depth"} {
		if v, ok := after[gauge]; ok && v != 0 {
			errs = append(errs, fmt.Errorf("server %s = %g after drain, want 0", gauge, v))
		}
	}
	return errs
}

func writeTimeline(res *workload.Result, path, format string) error {
	var out *os.File
	if path == "-" {
		out = os.Stdout
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	switch format {
	case "csv":
		return res.WriteCSV(out)
	case "json":
		return res.WriteJSON(out)
	default:
		return fmt.Errorf("unknown timeline format %q (want csv or json)", format)
	}
}

func fatal(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vista-load: "+format+"\n", args...)
	os.Exit(code)
}
