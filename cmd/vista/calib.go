package main

import (
	"fmt"
	"io"
	"time"

	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/memory"
)

// appendCalibration folds the finished run's estimate-vs-measured pairs into
// the calibration log at o.calibLog — the same samples a vista-server with
// -calib-log would record for this workload, so CLI runs and served runs can
// share one log. When a calibration profile is loaded it corrects the
// estimates before they are recorded, exactly as the server's recorder does,
// so the log carries residual drift rather than re-measuring the error the
// profile already absorbed.
func appendCalibration(o runOptions, runSpec core.Spec, res *core.Result) error {
	var imgBytes, n int64
	for i := range runSpec.ImageRows {
		imgBytes += runSpec.ImageRows[i].MemBytes()
		n++
		if n == 100 {
			break
		}
	}
	if n > 0 {
		imgBytes /= n
	}
	if len(runSpec.StructRows) == 0 {
		return fmt.Errorf("no rows to calibrate against")
	}
	env := calib.RunEnv{
		ModelName:     o.model,
		Dataset:       o.dataset,
		Rows:          len(runSpec.StructRows),
		StructDim:     len(runSpec.StructRows[0].Structured),
		ImageRowBytes: imgBytes,
		PlanKind:      runSpec.PlanKind,
		Placement:     runSpec.Placement,
		Nodes:         o.nodes,
		Cores:         o.cores,
		MemBytes:      memory.GB(o.memGB),
		Profile:       o.profile,
	}
	samples, err := calib.CompareRun(env, res.Trace, res.Series)
	if err != nil {
		return err
	}
	rec, err := calib.Open(calib.Config{Path: o.calibLog, HalfLife: o.calibHalfLife})
	if err != nil {
		return err
	}
	defer rec.Close()
	fingerprint := fmt.Sprintf("%s|%s|%d|%d", o.model, o.dataset, o.rows, o.seed)
	return rec.Record(fingerprint, samples)
}

// calibReport replays a persisted calibration log into the same rolling
// report a live server computes — decay runs on record timestamps, so the
// offline aggregates match the server's byte-for-byte over the same log
// (pass the server's -calib-half-life value for the decay clocks to agree).
// When profilePath names a fitted profile the report is annotated with its
// active scales, reproducing GET /calibration on a profile-bearing server.
func calibReport(path, profilePath string, halfLife time.Duration, asJSON bool, stdout, stderr io.Writer) error {
	rep, dropped, err := calib.ReplayReport(path, halfLife)
	if err != nil {
		return err
	}
	if dropped > 0 {
		fmt.Fprintf(stderr, "calibration log has a torn tail: %d unreadable trailing bytes ignored (a crashed writer; the next append-mode open truncates them)\n", dropped)
	}
	if profilePath != "" {
		p, err := calib.LoadProfile(profilePath)
		if err != nil {
			return err
		}
		rep = rep.WithProfile(p)
	}
	if asJSON {
		return calib.WriteReportJSON(stdout, rep)
	}
	calib.RenderReport(stdout, rep)
	return nil
}
