package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func smallOpts(t *testing.T) runOptions {
	t.Helper()
	return runOptions{
		dataset: "foods", rows: 120, model: "tiny-alexnet", layers: 2,
		nodes: 2, cores: 2, memGB: 32,
		planKind: "staged", placement: "aj", downstream: "logreg", seed: 1,
	}
}

// runBuf runs with captured stdout/stderr.
func runBuf(o runOptions) (stdout, stderr bytes.Buffer, err error) {
	err = run(context.Background(), o, &stdout, &stderr)
	return stdout, stderr, err
}

func TestRunEndToEnd(t *testing.T) {
	if _, _, err := runBuf(smallOpts(t)); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSaveDataAndModels(t *testing.T) {
	o := smallOpts(t)
	o.saveData = filepath.Join(t.TempDir(), "ds")
	o.saveModels = filepath.Join(t.TempDir(), "models")
	if _, _, err := runBuf(o); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(o.saveData, "structured.csv")); err != nil {
		t.Errorf("dataset not saved: %v", err)
	}
	entries, err := os.ReadDir(o.saveModels)
	if err != nil || len(entries) != 2 {
		t.Errorf("model artifacts: %v (%d entries)", err, len(entries))
	}
	// Round-trip: run again from the saved dataset.
	o2 := smallOpts(t)
	o2.dataDir = o.saveData
	if _, _, err := runBuf(o2); err != nil {
		t.Fatalf("run from saved data: %v", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := []func(*runOptions){
		func(o *runOptions) { o.dataset = "nope" },
		func(o *runOptions) { o.planKind = "nope" },
		func(o *runOptions) { o.placement = "nope" },
		func(o *runOptions) { o.downstream = "nope" },
		func(o *runOptions) { o.model = "nope" },
		func(o *runOptions) { o.traceFormat = "nope" },
	}
	for i, mutate := range cases {
		o := smallOpts(t)
		mutate(&o)
		if _, _, err := runBuf(o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

// TestTraceReportOnStderr pins the stream split: -trace diagnostics must not
// contaminate stdout's machine-readable result rows.
func TestTraceReportOnStderr(t *testing.T) {
	o := smallOpts(t)
	o.trace = true
	stdout, stderr, err := runBuf(o)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(stdout.String(), "Stage trace:") {
		t.Errorf("trace report leaked to stdout:\n%s", stdout.String())
	}
	for _, want := range []string{"Stage trace:", "Estimate vs measured", "Memory-model validation"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr.String())
		}
	}
	if !strings.Contains(stdout.String(), "Stage breakdown:") {
		t.Errorf("result summary missing from stdout")
	}
}

// TestTraceOutChrome checks the exported trace file decodes and its events
// cover every span of the run's trace.
func TestTraceOutChrome(t *testing.T) {
	o := smallOpts(t)
	o.traceOut = filepath.Join(t.TempDir(), "trace.json")
	_, stderr, err := runBuf(o)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stderr.String(), "wrote chrome trace to") {
		t.Errorf("missing trace-out note on stderr:\n%s", stderr.String())
	}
	raw, err := os.ReadFile(o.traceOut)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	// Every span of the run must appear: the root plus each stage. The exact
	// labels depend on the plan, but "run", "ingest", and at least one
	// train: span are always present.
	for _, want := range []string{"run", "ingest"} {
		if !names[want] {
			t.Errorf("trace events missing span %q (have %v)", want, names)
		}
	}
}

func TestTraceOutOTLP(t *testing.T) {
	o := smallOpts(t)
	o.traceOut = filepath.Join(t.TempDir(), "trace.otlp.json")
	o.traceFormat = "otlp"
	if _, _, err := runBuf(o); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(o.traceOut)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	var doc struct {
		ResourceSpans []json.RawMessage `json:"resourceSpans"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("otlp file is not valid JSON: %v", err)
	}
	if len(doc.ResourceSpans) == 0 {
		t.Fatalf("otlp file has no resourceSpans")
	}
}

// TestTimeseriesOutCSV checks the CSV export exists, parses, and has
// monotonically non-decreasing timestamps.
func TestTimeseriesOutCSV(t *testing.T) {
	o := smallOpts(t)
	o.timeseriesOut = filepath.Join(t.TempDir(), "series.csv")
	if _, _, err := runBuf(o); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(o.timeseriesOut)
	if err != nil {
		t.Fatalf("read series: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 3 { // header + initial + final sample at minimum
		t.Fatalf("expected >= 3 CSV lines, got %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "unix_ns,stage,") {
		t.Errorf("bad CSV header: %q", lines[0])
	}
	var prev int64
	for i, ln := range lines[1:] {
		ns, err := strconv.ParseInt(strings.SplitN(ln, ",", 2)[0], 10, 64)
		if err != nil {
			t.Fatalf("row %d: bad unix_ns: %v", i, err)
		}
		if ns < prev {
			t.Errorf("row %d: timestamps not monotone (%d < %d)", i, ns, prev)
		}
		prev = ns
	}
}
