package main

import (
	"os"
	"path/filepath"
	"testing"
)

func smallOpts(t *testing.T) runOptions {
	t.Helper()
	return runOptions{
		dataset: "foods", rows: 120, model: "tiny-alexnet", layers: 2,
		nodes: 2, cores: 2, memGB: 32,
		planKind: "staged", placement: "aj", downstream: "logreg", seed: 1,
	}
}

func TestRunEndToEnd(t *testing.T) {
	if err := run(smallOpts(t)); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSaveDataAndModels(t *testing.T) {
	o := smallOpts(t)
	o.saveData = filepath.Join(t.TempDir(), "ds")
	o.saveModels = filepath.Join(t.TempDir(), "models")
	if err := run(o); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(o.saveData, "structured.csv")); err != nil {
		t.Errorf("dataset not saved: %v", err)
	}
	entries, err := os.ReadDir(o.saveModels)
	if err != nil || len(entries) != 2 {
		t.Errorf("model artifacts: %v (%d entries)", err, len(entries))
	}
	// Round-trip: run again from the saved dataset.
	o2 := smallOpts(t)
	o2.dataDir = o.saveData
	if err := run(o2); err != nil {
		t.Fatalf("run from saved data: %v", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := []func(*runOptions){
		func(o *runOptions) { o.dataset = "nope" },
		func(o *runOptions) { o.planKind = "nope" },
		func(o *runOptions) { o.placement = "nope" },
		func(o *runOptions) { o.downstream = "nope" },
		func(o *runOptions) { o.model = "nope" },
	}
	for i, mutate := range cases {
		o := smallOpts(t)
		mutate(&o)
		if err := run(o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}
