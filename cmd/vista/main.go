// Command vista runs a feature-transfer workload end-to-end on the real
// dataflow engine with an executable (Tiny) roster CNN: it generates a
// synthetic multimodal dataset, invokes the Vista optimizer, executes the
// chosen plan, trains the downstream model on every selected layer, and
// reports per-layer accuracy plus the run's instrumentation.
//
// With -calib <log-file> each run also appends its estimate-vs-measured
// calibration samples to an on-disk log, and `vista -calib <log-file> report`
// replays such a log (from this CLI or a vista-server's -calib-log) into the
// rolling drift report offline — identical to the server's GET /calibration.
//
// Example:
//
//	vista -dataset foods -rows 2000 -model tiny-resnet50 -layers 3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dataflow"
	"repro/internal/featurestore"
	"repro/internal/memory"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/plan"
	"repro/internal/sim"
)

func main() {
	var (
		dataset    = flag.String("dataset", "foods", "dataset preset: foods or amazon")
		rows       = flag.Int("rows", 2000, "number of examples to generate")
		model      = flag.String("model", "tiny-alexnet", "roster CNN (tiny-alexnet, tiny-vgg16, tiny-resnet50)")
		layers     = flag.Int("layers", 3, "number of top feature layers to explore (|L|)")
		nodes      = flag.Int("nodes", 2, "simulated worker nodes")
		cores      = flag.Int("cores", 4, "cores per worker")
		memGB      = flag.Float64("mem", 32, "system memory per worker (GB)")
		planKind   = flag.String("plan", "staged", "logical plan: lazy, eager, or staged")
		placement  = flag.String("placement", "aj", "join placement: aj (after join) or bj (before join)")
		downstream = flag.String("downstream", "logreg", "downstream model: logreg, tree, or mlp")
		seed       = flag.Int64("seed", 7, "random seed")
		dataDir    = flag.String("data", "", "load the dataset from this directory instead of generating it")
		saveData   = flag.String("save-data", "", "write the generated dataset to this directory (one file per image)")
		saveModels = flag.String("save-models", "", "write per-layer trained model artifacts (JSON) to this directory")
		cacheDir   = flag.String("feature-cache", "", "materialize CNN features in this directory and reuse them across invocations")
		cacheMB    = flag.Int64("feature-cache-mb", 512, "feature cache byte budget in MiB (with -feature-cache)")
		trace      = flag.Bool("trace", false, "print (to stderr) the run's stage span tree and the simulator's estimate-vs-measured comparisons")
		traceOut   = flag.String("trace-out", "", "write the run's trace to this file (chrome://tracing / Perfetto loadable)")
		traceFmt   = flag.String("trace-format", "chrome", "trace file format: chrome (trace-event JSON) or otlp (OTLP-style JSON spans)")
		seriesOut  = flag.String("timeseries-out", "", "write the run's sampled time series to this file (.csv = CSV, otherwise JSON)")
		sampleEvr  = flag.Duration("sample-every", 10*time.Millisecond, "time-series sample period (with -timeseries-out / -trace-out / -trace)")
		calibLog   = flag.String("calib", "", "calibration log file: append this run's estimate-vs-measured samples to it, or replay it with the 'report' subcommand (vista -calib <log> report)")
		calibJSON  = flag.Bool("calib-json", false, "with 'report': emit the calibration report as JSON, byte-identical to a server's GET /calibration over the same log")
		calibProf  = flag.String("calib-profile", "", "calibration profile file (written by an auto-calibrating vista-server): apply its fitted scales to plan choice and estimates, and annotate 'report' output with it")
		calibHL    = flag.Duration("calib-half-life", 0, "calibration EWMA half-life (0 = the 30m default); must match the server's -calib-half-life for byte-identical reports over the same log")
	)
	flag.Parse()

	if *calibHL < 0 {
		fmt.Fprintln(os.Stderr, "vista: -calib-half-life must be >= 0")
		os.Exit(2)
	}
	if flag.Arg(0) == "report" {
		if *calibLog == "" {
			fmt.Fprintln(os.Stderr, "vista: report requires -calib <log-file>")
			os.Exit(2)
		}
		if err := calibReport(*calibLog, *calibProf, *calibHL, *calibJSON, os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "vista:", err)
			os.Exit(1)
		}
		return
	}

	opts := runOptions{
		dataset: *dataset, rows: *rows, model: *model, layers: *layers,
		nodes: *nodes, cores: *cores, memGB: *memGB,
		planKind: *planKind, placement: *placement, downstream: *downstream,
		seed: *seed, dataDir: *dataDir, saveData: *saveData, saveModels: *saveModels,
		cacheDir: *cacheDir, cacheMB: *cacheMB, trace: *trace,
		traceOut: *traceOut, traceFormat: *traceFmt,
		timeseriesOut: *seriesOut, sampleEvery: *sampleEvr,
		calibLog: *calibLog, calibProfile: *calibProf, calibHalfLife: *calibHL,
	}
	// Ctrl-C / SIGTERM cancels the run context: the executor aborts at the
	// next stage boundary (or inside the running stage, via TaskContext),
	// releasing tables, pool charges, and spill files before exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts, os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "vista: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "vista:", err)
		os.Exit(1)
	}
}

// runOptions carries the parsed flags.
type runOptions struct {
	dataset       string
	rows          int
	model         string
	layers        int
	nodes         int
	cores         int
	memGB         float64
	planKind      string
	placement     string
	downstream    string
	seed          int64
	dataDir       string
	saveData      string
	saveModels    string
	cacheDir      string
	cacheMB       int64
	trace         bool
	traceOut      string
	traceFormat   string
	timeseriesOut string
	sampleEvery   time.Duration
	calibLog      string
	calibProfile  string
	calibHalfLife time.Duration
	// profile is the loaded -calib-profile (nil = none); run() populates it.
	profile *calib.Profile
}

// observing reports whether the run needs the metrics registry and sampler.
// Calibration needs the sampled series for its storage samples, so -calib
// turns observation on too.
func (o *runOptions) observing() bool {
	return o.trace || o.traceOut != "" || o.timeseriesOut != "" || o.calibLog != ""
}

// run executes the workload under ctx (cancellation aborts it cleanly).
// Result rows and summary counters go to stdout; diagnostics — the -trace
// span report and the estimate-vs-measured tables — go to stderr, so piped
// stdout stays machine-readable.
func run(ctx context.Context, o runOptions, stdout, stderr io.Writer) error {
	switch o.traceFormat {
	case "", "chrome":
		o.traceFormat = "chrome"
	case "otlp":
	default:
		return fmt.Errorf("unknown trace format %q (chrome or otlp)", o.traceFormat)
	}
	if o.observing() && o.sampleEvery <= 0 {
		o.sampleEvery = time.Millisecond
	}
	if o.calibProfile != "" {
		p, err := calib.LoadProfile(o.calibProfile)
		if err != nil {
			return err
		}
		o.profile = p
	}

	structRows, imageRows, err := loadOrGenerate(o, stdout)
	if err != nil {
		return err
	}

	runSpec := core.Spec{
		Nodes:        o.nodes,
		CoresPerNode: o.cores,
		MemPerNode:   memory.GB(o.memGB),
		SystemKind:   memory.SparkLike,
		ModelName:    o.model,
		NumLayers:    o.layers,
		Downstream:   core.DefaultDownstream(),
		StructRows:   structRows,
		ImageRows:    imageRows,
		Seed:         o.seed,
		CostScales:   o.profile.CostScales(),
	}
	if o.cacheDir != "" {
		store, err := featurestore.Open(o.cacheDir, o.cacheMB<<20)
		if err != nil {
			return fmt.Errorf("open feature cache: %w", err)
		}
		defer store.Close()
		runSpec.FeatureStore = store
	}
	if o.observing() {
		runSpec.Metrics = obs.NewRegistry()
		runSpec.SampleEvery = o.sampleEvery
	}
	switch strings.ToLower(o.planKind) {
	case "lazy":
		runSpec.PlanKind = plan.Lazy
	case "eager":
		runSpec.PlanKind = plan.Eager
	case "staged":
		runSpec.PlanKind = plan.Staged
	default:
		return fmt.Errorf("unknown plan %q", o.planKind)
	}
	switch strings.ToLower(o.placement) {
	case "aj":
		runSpec.Placement = plan.AfterJoin
	case "bj":
		runSpec.Placement = plan.BeforeJoin
	default:
		return fmt.Errorf("unknown placement %q", o.placement)
	}
	switch strings.ToLower(o.downstream) {
	case "logreg":
		runSpec.Downstream.Kind = core.LogisticRegression
	case "tree":
		runSpec.Downstream.Kind = core.DecisionTree
	case "mlp":
		runSpec.Downstream.Kind = core.MLP
	default:
		return fmt.Errorf("unknown downstream model %q", o.downstream)
	}

	fmt.Fprintf(stdout, "Running %s/%s over %s with %s downstream...\n",
		runSpec.PlanKind, runSpec.Placement, o.model, runSpec.Downstream.Kind)
	res, err := core.RunContext(ctx, runSpec)
	if err != nil {
		if oom, ok := memory.IsOOM(err); ok {
			return fmt.Errorf("workload crashed (Section 4.1 scenario): %w", oom)
		}
		return err
	}

	d := res.Decision
	fmt.Fprintf(stdout, "\nOptimizer decision: cpu=%d np=%d join=%v pers=%v storage=%s user=%s dl=%s\n",
		d.CPU, d.NP, d.Join, d.Pers,
		memory.FormatBytes(d.MemStorage), memory.FormatBytes(d.MemUser), memory.FormatBytes(d.MemDL))
	fmt.Fprintf(stdout, "\n%-10s %10s %10s %10s\n", "layer", "dims", "train F1", "test F1")
	for _, lr := range res.Layers {
		fmt.Fprintf(stdout, "%-10s %10d %9.1f%% %9.1f%%\n",
			lr.LayerName, lr.FeatureDim, lr.Train.F1*100, lr.Test.F1*100)
	}
	fmt.Fprintf(stdout, "\nStage breakdown:\n")
	for _, tm := range res.Timings {
		fmt.Fprintf(stdout, "  %-16s %v\n", tm.Label, tm.Elapsed.Round(1e6))
	}
	c := res.Counters
	fmt.Fprintf(stdout, "\nElapsed %v | tasks %d | rows %d | FLOPs %.2fG | shuffled %s | spilled %s | peak storage %s\n",
		res.Elapsed.Round(1e6), c.TasksRun, c.RowsProcessed, float64(c.FLOPs)/1e9,
		memory.FormatBytes(c.BytesShuffled), memory.FormatBytes(c.BytesSpilled),
		memory.FormatBytes(c.PeakStorageBytes))
	if res.Cache.Enabled {
		st := runSpec.FeatureStore.Snapshot()
		fmt.Fprintf(stdout, "Feature cache: %d/%d stages from cache | loaded %d, stored %d entries | store %s in %d entries (hits %d, misses %d, evictions %d)\n",
			res.Cache.StagesFromCache, res.Cache.StagesFromCache+res.Cache.StagesExecuted,
			res.Cache.EntriesLoaded, res.Cache.EntriesStored,
			memory.FormatBytes(st.UsedBytes), st.Entries, st.Hits, st.Misses, st.Evictions)
	}
	if o.trace {
		fmt.Fprintf(stderr, "\nStage trace:\n")
		res.Trace.Render(stderr)
		printSimComparison(stderr, o, runSpec, res)
	}
	if o.traceOut != "" {
		if err := writeTraceFile(o.traceOut, o.traceFormat, res); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s trace to %s\n", o.traceFormat, o.traceOut)
	}
	if o.timeseriesOut != "" {
		if err := writeTimeseriesFile(o.timeseriesOut, res); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote sampled time series to %s\n", o.timeseriesOut)
	}
	if o.calibLog != "" {
		if err := appendCalibration(o, runSpec, res); err != nil {
			// Calibration is observability: report it, don't fail the run.
			fmt.Fprintf(stderr, "calibration skipped: %v\n", err)
		} else {
			fmt.Fprintf(stderr, "appended calibration record to %s\n", o.calibLog)
		}
	}

	if o.saveModels != "" {
		if err := os.MkdirAll(o.saveModels, 0o755); err != nil {
			return err
		}
		for _, lr := range res.Layers {
			path := filepath.Join(o.saveModels, lr.LayerName+".json")
			if err := ml.SaveModel(path, lr.Model); err != nil {
				return err
			}
		}
		fmt.Fprintf(stdout, "Saved %d model artifacts to %s\n", len(res.Layers), o.saveModels)
	}
	return nil
}

// printSimComparison lines the run's measured span tree up against the
// simulator's analytical estimate for the same workload shape. The simulator
// prices the paper's cluster hardware, so absolute times differ by orders of
// magnitude; the per-stage *shares* are the comparable signal. Skipped with a
// note when the optimizer finds the simulated workload infeasible (tiny
// in-process runs can describe workloads the paper cluster model rejects).
func printSimComparison(w io.Writer, o runOptions, runSpec core.Spec, res *core.Result) {
	var imgBytes, n int64
	for i := range runSpec.ImageRows {
		imgBytes += runSpec.ImageRows[i].MemBytes()
		n++
		if n == 100 {
			break
		}
	}
	if n > 0 {
		imgBytes /= n
	}
	wl, err := sim.NewWorkload(sim.WorkloadSpec{
		ModelName: o.model,
		NumLayers: o.layers,
		Dataset: sim.DatasetSpec{
			Name:          o.dataset,
			Rows:          len(runSpec.StructRows),
			StructDim:     len(runSpec.StructRows[0].Structured),
			ImageRowBytes: imgBytes,
		},
		PlanKind:  runSpec.PlanKind,
		Placement: runSpec.Placement,
		Nodes:     o.nodes,
		CPUSys:    o.cores,
		MemSys:    memory.GB(o.memGB),
	})
	if err != nil {
		fmt.Fprintf(w, "\nSimulator comparison skipped: %v\n", err)
		return
	}
	cfg, err := sim.VistaConfig(wl)
	if err != nil {
		fmt.Fprintf(w, "\nSimulator comparison skipped: %v\n", err)
		return
	}
	prof := sim.PaperCluster().WithNodes(o.nodes)
	prof.MemPerNode = memory.GB(o.memGB)
	simRes := sim.Run(wl, cfg, prof)
	if simRes.Crash != nil {
		fmt.Fprintf(w, "\nSimulator comparison skipped: simulated run crashes (%v)\n", simRes.Crash)
		return
	}
	fmt.Fprintf(w, "\nEstimate vs measured (simulator prices the paper cluster; compare shares, not absolutes):\n")
	sim.RenderComparison(w, sim.CompareTrace(simRes, res.Trace))
	if res.Series != nil {
		fmt.Fprintf(w, "\nMemory-model validation (sampled pool occupancy and spill vs Section 4.1 estimates):\n")
		sim.RenderSeriesReport(w, sim.CompareSeries(simRes, res.Trace, res.Series))
	}
}

// writeTraceFile exports the run's span tree (plus sampled counter tracks for
// the chrome format) to path.
func writeTraceFile(path, format string, res *core.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "chrome":
		err = export.WriteChromeTrace(f, res.Trace, res.Series)
	case "otlp":
		err = export.WriteOTLP(f, res.Trace)
	default:
		err = fmt.Errorf("unknown trace format %q (chrome or otlp)", format)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// writeTimeseriesFile exports the sampled recording: CSV when path ends in
// .csv, JSON otherwise.
func writeTimeseriesFile(path string, res *core.Result) error {
	if res.Series == nil {
		return fmt.Errorf("no time series recorded (run with -sample-every > 0)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		err = export.WriteTimeseriesCSV(f, res.Series)
	} else {
		err = export.WriteTimeseriesJSON(f, res.Series)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// loadOrGenerate obtains the dataset from disk or the synthetic generator,
// optionally persisting a fresh one.
func loadOrGenerate(o runOptions, stdout io.Writer) (structRows, imageRows []dataflow.Row, err error) {
	if o.dataDir != "" {
		fmt.Fprintf(stdout, "Loading dataset from %s...\n", o.dataDir)
		return data.Load(o.dataDir)
	}
	var spec data.Spec
	switch o.dataset {
	case "foods":
		spec = data.Foods()
	case "amazon":
		spec = data.Amazon()
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q", o.dataset)
	}
	spec = spec.WithRows(o.rows)
	fmt.Fprintf(stdout, "Generating %s: %d rows × %d structured features + %dx%d images...\n",
		spec.Name, spec.Rows, spec.StructDim, spec.ImageSize, spec.ImageSize)
	structRows, imageRows, err = data.Generate(spec)
	if err != nil {
		return nil, nil, err
	}
	if o.saveData != "" {
		if err := data.Save(o.saveData, structRows, imageRows); err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(stdout, "Saved dataset to %s\n", o.saveData)
	}
	return structRows, imageRows, nil
}
