package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func doJSON(t *testing.T, h http.Handler, method, path, body string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			// /roster returns an array; re-wrap for uniform handling.
			var arr []any
			if err2 := json.Unmarshal(rec.Body.Bytes(), &arr); err2 != nil {
				t.Fatalf("%s %s: bad JSON: %v (%s)", method, path, err, rec.Body.String())
			}
			out = map[string]any{"array": arr}
		}
	}
	return rec.Code, out
}

func TestHealthz(t *testing.T) {
	h := newHandler()
	code, body := doJSON(t, h, "GET", "/healthz", "")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, body)
	}
}

func TestRoster(t *testing.T) {
	h := newHandler()
	code, body := doJSON(t, h, "GET", "/roster", "")
	if code != http.StatusOK {
		t.Fatalf("roster = %d", code)
	}
	arr := body["array"].([]any)
	if len(arr) != 7 {
		t.Fatalf("roster has %d entries, want 7", len(arr))
	}
	first := arr[0].(map[string]any)
	if first["name"] != "alexnet" || first["params"].(float64) <= 0 {
		t.Errorf("first roster entry = %v", first)
	}
}

func TestExplainEndpoint(t *testing.T) {
	h := newHandler()
	code, body := doJSON(t, h, "POST", "/explain", `{"model":"resnet50","dataset":"foods","layers":5}`)
	if code != http.StatusOK {
		t.Fatalf("explain = %d %v", code, body)
	}
	if body["feasible"] != true {
		t.Fatalf("not feasible: %v", body)
	}
	d := body["decision"].(map[string]any)
	if d["cpu"].(float64) != 7 {
		t.Errorf("cpu = %v, want 7 (paper Figure 11)", d["cpu"])
	}
	// Infeasible environment.
	code, body = doJSON(t, h, "POST", "/explain", `{"model":"vgg16","dataset":"foods","mem_gb":8}`)
	if code != http.StatusOK || body["feasible"] != false {
		t.Fatalf("8 GB VGG16 should be infeasible: %d %v", code, body)
	}
}

func TestExplainValidationEndpoint(t *testing.T) {
	h := newHandler()
	if code, _ := doJSON(t, h, "POST", "/explain", `{`); code != http.StatusBadRequest {
		t.Errorf("malformed body = %d", code)
	}
	if code, _ := doJSON(t, h, "POST", "/explain", `{"model":"resnet50"}`); code != http.StatusBadRequest {
		t.Errorf("missing dataset = %d", code)
	}
	if code, _ := doJSON(t, h, "POST", "/explain", `{"model":"resnet50","dataset":"nope"}`); code != http.StatusBadRequest {
		t.Errorf("bad dataset = %d", code)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	h := newHandler()
	code, body := doJSON(t, h, "POST", "/simulate", `{"model":"resnet50","dataset":"foods","layers":5}`)
	if code != http.StatusOK {
		t.Fatalf("simulate = %d %v", code, body)
	}
	if body["crashed"] != false {
		t.Fatalf("vista simulate crashed: %v", body)
	}
	total := body["total_minutes"].(float64)
	if total < 1 || total > 30 {
		t.Errorf("total = %v min, want plausible Foods/ResNet50 runtime", total)
	}
	layers := body["layers"].([]any)
	if len(layers) != 5 {
		t.Errorf("layers = %d, want 5", len(layers))
	}
	// A lazy plan must be slower.
	_, lazyBody := doJSON(t, h, "POST", "/simulate", `{"model":"resnet50","dataset":"foods","layers":5,"plan":"lazy"}`)
	if lazyBody["crashed"] != false {
		t.Fatalf("lazy simulate crashed: %v", lazyBody)
	}
	if lazyBody["total_minutes"].(float64) <= total {
		t.Error("lazy not slower than staged")
	}
	if code, _ := doJSON(t, h, "POST", "/simulate", `{"model":"resnet50","dataset":"foods","plan":"nope"}`); code != http.StatusBadRequest {
		t.Error("unknown plan accepted")
	}
}

func TestRunEndpoint(t *testing.T) {
	h := newHandler()
	code, body := doJSON(t, h, "POST", "/run",
		`{"model":"tiny-alexnet","dataset":"foods","layers":2,"rows":120}`)
	if code != http.StatusOK {
		t.Fatalf("run = %d %v", code, body)
	}
	if body["crashed"] != false {
		t.Fatalf("run crashed: %v", body)
	}
	layers := body["layers"].([]any)
	if len(layers) != 2 {
		t.Fatalf("layers = %d, want 2", len(layers))
	}
	l0 := layers[0].(map[string]any)
	if l0["test_f1"].(float64) <= 0 {
		t.Errorf("layer metrics missing: %v", l0)
	}
	// Row cap enforced.
	if code, _ := doJSON(t, h, "POST", "/run",
		`{"model":"tiny-alexnet","dataset":"foods","rows":999999}`); code != http.StatusBadRequest {
		t.Error("row cap not enforced")
	}
}
