package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/featurestore"
	"repro/internal/memory"
)

func doJSON(t *testing.T, h http.Handler, method, path, body string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			// /roster returns an array; re-wrap for uniform handling.
			var arr []any
			if err2 := json.Unmarshal(rec.Body.Bytes(), &arr); err2 != nil {
				t.Fatalf("%s %s: bad JSON: %v (%s)", method, path, err, rec.Body.String())
			}
			out = map[string]any{"array": arr}
		}
	}
	return rec.Code, out
}

func TestHealthz(t *testing.T) {
	h := newHandler(nil)
	code, body := doJSON(t, h, "GET", "/healthz", "")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, body)
	}
}

func TestRoster(t *testing.T) {
	h := newHandler(nil)
	code, body := doJSON(t, h, "GET", "/roster", "")
	if code != http.StatusOK {
		t.Fatalf("roster = %d", code)
	}
	arr := body["array"].([]any)
	if len(arr) != 7 {
		t.Fatalf("roster has %d entries, want 7", len(arr))
	}
	first := arr[0].(map[string]any)
	if first["name"] != "alexnet" || first["params"].(float64) <= 0 {
		t.Errorf("first roster entry = %v", first)
	}
}

func TestExplainEndpoint(t *testing.T) {
	h := newHandler(nil)
	code, body := doJSON(t, h, "POST", "/explain", `{"model":"resnet50","dataset":"foods","layers":5}`)
	if code != http.StatusOK {
		t.Fatalf("explain = %d %v", code, body)
	}
	if body["feasible"] != true {
		t.Fatalf("not feasible: %v", body)
	}
	d := body["decision"].(map[string]any)
	if d["cpu"].(float64) != 7 {
		t.Errorf("cpu = %v, want 7 (paper Figure 11)", d["cpu"])
	}
	// Infeasible environment.
	code, body = doJSON(t, h, "POST", "/explain", `{"model":"vgg16","dataset":"foods","mem_gb":8}`)
	if code != http.StatusOK || body["feasible"] != false {
		t.Fatalf("8 GB VGG16 should be infeasible: %d %v", code, body)
	}
}

func TestExplainValidationEndpoint(t *testing.T) {
	h := newHandler(nil)
	if code, _ := doJSON(t, h, "POST", "/explain", `{`); code != http.StatusBadRequest {
		t.Errorf("malformed body = %d", code)
	}
	if code, _ := doJSON(t, h, "POST", "/explain", `{"model":"resnet50"}`); code != http.StatusBadRequest {
		t.Errorf("missing dataset = %d", code)
	}
	if code, _ := doJSON(t, h, "POST", "/explain", `{"model":"resnet50","dataset":"nope"}`); code != http.StatusBadRequest {
		t.Errorf("bad dataset = %d", code)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	h := newHandler(nil)
	code, body := doJSON(t, h, "POST", "/simulate", `{"model":"resnet50","dataset":"foods","layers":5}`)
	if code != http.StatusOK {
		t.Fatalf("simulate = %d %v", code, body)
	}
	if body["crashed"] != false {
		t.Fatalf("vista simulate crashed: %v", body)
	}
	total := body["total_minutes"].(float64)
	if total < 1 || total > 30 {
		t.Errorf("total = %v min, want plausible Foods/ResNet50 runtime", total)
	}
	layers := body["layers"].([]any)
	if len(layers) != 5 {
		t.Errorf("layers = %d, want 5", len(layers))
	}
	// A lazy plan must be slower.
	_, lazyBody := doJSON(t, h, "POST", "/simulate", `{"model":"resnet50","dataset":"foods","layers":5,"plan":"lazy"}`)
	if lazyBody["crashed"] != false {
		t.Fatalf("lazy simulate crashed: %v", lazyBody)
	}
	if lazyBody["total_minutes"].(float64) <= total {
		t.Error("lazy not slower than staged")
	}
	if code, _ := doJSON(t, h, "POST", "/simulate", `{"model":"resnet50","dataset":"foods","plan":"nope"}`); code != http.StatusBadRequest {
		t.Error("unknown plan accepted")
	}
}

// TestServerFeatureReuse exercises the process-wide store: a repeated /run
// serves every stage from cache, /featurestore reports the traffic, and
// /simulate prices the now-warm workload below a cold one.
func TestServerFeatureReuse(t *testing.T) {
	store, err := featurestore.Open(t.TempDir(), memory.MB(64))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	h := newHandler(store)
	const runBody = `{"model":"tiny-alexnet","dataset":"foods","layers":2,"rows":100}`

	code, cold := doJSON(t, h, "POST", "/run", runBody)
	if code != http.StatusOK || cold["crashed"] != false {
		t.Fatalf("cold run = %d %v", code, cold)
	}
	coldCache := cold["cache"].(map[string]any)
	if coldCache["enabled"] != true || coldCache["stages_from_cache"].(float64) != 0 ||
		coldCache["entries_stored"].(float64) == 0 {
		t.Fatalf("cold cache report: %v", coldCache)
	}

	_, warm := doJSON(t, h, "POST", "/run", runBody)
	warmCache := warm["cache"].(map[string]any)
	if warmCache["stages_executed"].(float64) != 0 || warmCache["stages_from_cache"].(float64) == 0 {
		t.Fatalf("repeated run did not reuse features: %v", warmCache)
	}

	code, fs := doJSON(t, h, "GET", "/featurestore", "")
	if code != http.StatusOK || fs["enabled"] != true {
		t.Fatalf("featurestore = %d %v", code, fs)
	}
	if stats := fs["stats"].(map[string]any); stats["hits"].(float64) == 0 {
		t.Fatalf("store saw no hits: %v", stats)
	}

	// /simulate on the materialized workload sees the cached layers; an
	// unseen workload (different seed) stays cold and costs more.
	const simBody = `{"model":"tiny-alexnet","dataset":"foods","layers":2,"rows":100}`
	_, warmSim := doJSON(t, h, "POST", "/simulate", simBody)
	if warmSim["cached_layers"].(float64) != 2 {
		t.Fatalf("warm simulate cached_layers = %v, want 2", warmSim["cached_layers"])
	}
	_, coldSim := doJSON(t, h, "POST", "/simulate",
		`{"model":"tiny-alexnet","dataset":"foods","layers":2,"rows":100,"seed":8}`)
	if coldSim["cached_layers"].(float64) != 0 {
		t.Fatalf("unseen workload reported cached layers: %v", coldSim["cached_layers"])
	}
	if warmSim["total_minutes"].(float64) >= coldSim["total_minutes"].(float64) {
		t.Errorf("warm simulate (%v min) not cheaper than cold (%v min)",
			warmSim["total_minutes"], coldSim["total_minutes"])
	}
}

// TestFeatureStoreEndpointDisabled covers the nil-store configuration.
func TestFeatureStoreEndpointDisabled(t *testing.T) {
	code, body := doJSON(t, newHandler(nil), "GET", "/featurestore", "")
	if code != http.StatusOK || body["enabled"] != false {
		t.Fatalf("featurestore = %d %v", code, body)
	}
}

func TestRunEndpoint(t *testing.T) {
	h := newHandler(nil)
	code, body := doJSON(t, h, "POST", "/run",
		`{"model":"tiny-alexnet","dataset":"foods","layers":2,"rows":120}`)
	if code != http.StatusOK {
		t.Fatalf("run = %d %v", code, body)
	}
	if body["crashed"] != false {
		t.Fatalf("run crashed: %v", body)
	}
	layers := body["layers"].([]any)
	if len(layers) != 2 {
		t.Fatalf("layers = %d, want 2", len(layers))
	}
	l0 := layers[0].(map[string]any)
	if l0["test_f1"].(float64) <= 0 {
		t.Errorf("layer metrics missing: %v", l0)
	}
	// Row cap enforced.
	if code, _ := doJSON(t, h, "POST", "/run",
		`{"model":"tiny-alexnet","dataset":"foods","rows":999999}`); code != http.StatusBadRequest {
		t.Error("row cap not enforced")
	}
}
