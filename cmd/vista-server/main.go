// Command vista-server exposes the Vista reproduction as a small JSON HTTP
// service:
//
//	GET  /healthz              liveness probe
//	GET  /roster               the CNN roster with derived statistics
//	POST /explain              optimizer decision + size analysis (no execution)
//	POST /simulate             predicted runtime on a calibrated cluster profile
//	POST /run                  real tiny-scale execution with per-layer metrics
//
// Example:
//
//	vista-server -addr :8080 &
//	curl -s localhost:8080/explain -d '{"model":"resnet50","dataset":"foods"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flag.Parse()

	srv := &http.Server{Addr: *addr, Handler: newHandler()}
	log.Printf("vista-server listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "vista-server:", err)
		os.Exit(1)
	}
}
