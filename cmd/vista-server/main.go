// Command vista-server exposes the Vista reproduction as a small JSON HTTP
// service:
//
//	GET  /healthz              liveness probe (?slo=1 degrades to 503 when any
//	                           endpoint's p99 latency exceeds -slo-p99)
//	GET  /metrics              Prometheus text exposition (engine, pools,
//	                           feature store, admission, per-endpoint HTTP
//	                           series)
//	GET  /roster               the CNN roster with derived statistics
//	GET  /featurestore         feature-store counters (hits, misses, bytes)
//	GET  /trace/{format}       a completed /run's trace: chrome (Perfetto
//	                           loadable) or otlp (OTLP-style JSON spans);
//	                           ?run=ID selects a retained run (default: the
//	                           most recent)
//	GET  /timeseries           a completed /run's sampled time series
//	                           (?format=csv for CSV, JSON otherwise; ?run=ID
//	                           as above)
//	GET  /calibration          the cost model's rolling drift report,
//	                           accumulated across every /run (?format=text for
//	                           an aligned table; JSON otherwise)
//	POST /explain              optimizer decision + size analysis (no execution)
//	POST /simulate             predicted runtime on a calibrated cluster profile
//	POST /run                  real tiny-scale execution with per-layer metrics
//
// The server holds one process-wide feature store, so repeated /run requests
// on the same dataset+CNN reuse materialized features, and /simulate prices
// cached layers at store-I/O cost instead of CNN inference.
//
// Concurrent /run requests are gated by memory-aware admission control
// (-mem-budget): each run is priced with the optimizer's memory model and
// admitted only while the summed price of in-flight runs fits the budget.
// Runs that do not fit wait in a bounded FIFO queue (-queue-depth,
// -queue-timeout); a timed-out wait gets 429 + Retry-After and a full queue
// gets 503. Cancelled client connections abort their run mid-stage and
// return the whole reservation.
//
// With -share, concurrent /run requests whose workload fingerprint matches
// (same model, weights, and image content) coalesce into one sharing group
// during -share-window: a single leader executes the partial-CNN pass to the
// maximum requested layer and every follower attaches the leader's feature
// tables — never opening a DL session and paying only a marginal admission
// price — before finishing its own downstream training independently.
//
// Every completed /run also feeds the cost model's drift observatory
// (internal/calib): its estimate-vs-measured stage pairs append to the
// -calib-log file (replayed on restart, and offline by vista -calib report)
// and fold into the rolling per-stage aggregates behind GET /calibration and
// the vista_calib_* metrics. With -max-drift, /healthz?slo=1 degrades to 503
// when any stage kind's EWMA drift exceeds the bound. -debug-addr serves
// net/http/pprof on a separate opt-in listener, and -log-format selects
// text or JSON structured logs (run-ID tagged, joinable against
// /trace?run=ID). See docs/OPERATIONS.md for the full operator guide.
//
// Example:
//
//	vista-server -addr :8080 &
//	curl -s localhost:8080/explain -d '{"model":"resnet50","dataset":"foods"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/calib"
	"repro/internal/featurestore"
	"repro/internal/tensor"
)

// shutdownTimeout bounds how long in-flight requests may drain after
// SIGINT/SIGTERM.
const shutdownTimeout = 10 * time.Second

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	cacheDir := flag.String("feature-cache", "",
		"feature store directory (default: a fresh per-process temp dir)")
	cacheMB := flag.Int64("feature-cache-mb", 256,
		"feature store byte budget in MiB (0 disables cross-run feature reuse)")
	sloP99 := flag.Float64("slo-p99", defaultSLOP99,
		"per-endpoint p99 latency bound in seconds, enforced by /healthz?slo=1")
	memBudget := flag.Int64("mem-budget", 256<<10,
		"admission budget in MiB of modeled workload memory across concurrent /run requests (0 disables admission control)")
	queueDepth := flag.Int("queue-depth", 16,
		"how many /run requests may queue for admission budget before 503s")
	queueTimeout := flag.Duration("queue-timeout", 30*time.Second,
		"how long one /run request may queue before a 429 with Retry-After")
	runHistory := flag.Int("run-history", defaultRunHistory,
		"how many completed runs /trace and /timeseries retain")
	shareOn := flag.Bool("share", false,
		"enable multi-query shared inference: concurrent /run requests on the same (model, weights, data) coalesce into one shared partial-CNN pass")
	shareWindow := flag.Duration("share-window", defaultShareWindow,
		"how long the first /run of a sharing group holds the group open for identical requests (requires -share)")
	convWorkers := flag.Int("conv-workers", 0,
		"process-wide CNN compute parallelism: worker cap shared by GEMM convolution tiles and batch-row inference (0 = GOMAXPROCS); see docs/OPERATIONS.md for tuning under admission control")
	convDirect := flag.Bool("conv-direct", false,
		"route convolutions through the direct-loop reference kernel instead of im2col+GEMM (parity escape hatch; slow)")
	calibLog := flag.String("calib-log", "",
		"append-only calibration log file: every /run's estimate-vs-measured samples persist here and replay on restart (empty = in-memory aggregates only)")
	maxDrift := flag.Float64("max-drift", 0,
		"cost-model drift bound enforced by /healthz?slo=1: 503 when any stage kind's EWMA drift (max(ratio,1/ratio)-1) exceeds it (0 disables)")
	calibInferScale := flag.Float64("calib-infer-scale", 0,
		"deliberately multiply the simulator's inference estimates before calibration folding (test hook for the -max-drift path; 0 or 1 = off)")
	calibHalfLife := flag.Duration("calib-half-life", 0,
		"calibration EWMA half-life (0 = the 30m default); offline replays must pass the same value to reproduce /calibration byte-for-byte")
	calibProfile := flag.String("calib-profile", "",
		"calibration profile file: loaded at boot and applied to /run plan choice and admission pricing; pinned as-is unless -auto-calibrate also rewrites it on profile-changing refits")
	autoCalibrate := flag.Bool("auto-calibrate", false,
		"close the calibration loop: periodically refit per-stage scale factors from the rolling aggregates and price /run through the fitted profile")
	refitInterval := flag.Duration("calib-refit-interval", calib.DefaultRefitInterval,
		"how often -auto-calibrate refits the profile from the aggregates")
	debugAddr := flag.String("debug-addr", "",
		"optional separate listen address serving net/http/pprof profiles under /debug/pprof/ (empty = off)")
	logFormat := flag.String("log-format", "text",
		"server log format on stderr: text or json (log/slog)")
	flag.Parse()
	if *memBudget < 0 || *queueDepth < 0 || *queueTimeout < 0 || *runHistory < 0 {
		fmt.Fprintln(os.Stderr, "vista-server: -mem-budget, -queue-depth, -queue-timeout, and -run-history must be >= 0")
		os.Exit(2)
	}
	if *shareOn && *shareWindow <= 0 {
		fmt.Fprintln(os.Stderr, "vista-server: -share-window must be positive when -share is set")
		os.Exit(2)
	}
	if *convWorkers < 0 {
		fmt.Fprintln(os.Stderr, "vista-server: -conv-workers must be >= 0")
		os.Exit(2)
	}
	if *maxDrift < 0 {
		fmt.Fprintln(os.Stderr, "vista-server: -max-drift must be >= 0")
		os.Exit(2)
	}
	if *calibHalfLife < 0 || *refitInterval <= 0 {
		fmt.Fprintln(os.Stderr, "vista-server: -calib-half-life must be >= 0 and -calib-refit-interval > 0")
		os.Exit(2)
	}
	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fmt.Fprintln(os.Stderr, "vista-server: -log-format must be text or json")
		os.Exit(2)
	}
	tensor.SetConvWorkers(*convWorkers)
	tensor.SetUseDirect(*convDirect)
	logger.Info("conv kernels configured",
		"workers", tensor.ConvWorkers(), "direct", tensor.UseDirect())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var store *featurestore.Store
	if *cacheMB > 0 {
		dir := *cacheDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "vista-featurestore-")
			if err != nil {
				fmt.Fprintln(os.Stderr, "vista-server:", err)
				os.Exit(1)
			}
			dir = tmp
		}
		var err error
		store, err = featurestore.Open(dir, *cacheMB<<20)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vista-server:", err)
			os.Exit(1)
		}
		defer store.Close()
		logger.Info("feature store opened", "dir", dir, "budget_mib", *cacheMB)
	}

	calibRec, err := calib.Open(calib.Config{Path: *calibLog, HalfLife: *calibHalfLife})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vista-server:", err)
		os.Exit(1)
	}
	defer calibRec.Close()
	if *calibLog != "" {
		logger.Info("calibration log opened",
			"path", *calibLog, "replayed_runs", calibRec.Report().Runs)
	}

	var initProfile *calib.Profile
	if *calibProfile != "" {
		p, perr := calib.LoadProfile(*calibProfile)
		switch {
		case perr == nil:
			initProfile = p
		case errors.Is(perr, os.ErrNotExist) && *autoCalibrate:
			// The first profile-changing refit will create the file.
		default:
			fmt.Fprintln(os.Stderr, "vista-server:", perr)
			os.Exit(1)
		}
	}

	a := newAPI(serverConfig{
		store:            store,
		sloP99:           *sloP99,
		memBudgetBytes:   *memBudget << 20,
		queueDepth:       *queueDepth,
		queueTimeout:     *queueTimeout,
		runHistory:       *runHistory,
		share:            *shareOn,
		shareWindow:      *shareWindow,
		calib:            calibRec,
		maxDrift:         *maxDrift,
		calibInferScale:  *calibInferScale,
		calibProfile:     initProfile,
		autoCalibrate:    *autoCalibrate,
		calibProfilePath: *calibProfile,
		refitInterval:    *refitInterval,
		logger:           logger,
	})
	handler := a.handler()
	if *autoCalibrate {
		a.fitter.Start()
		defer a.fitter.Stop()
		logger.Info("auto-calibration enabled",
			"refit_interval", *refitInterval, "profile", *calibProfile,
			"seeded_refits", a.fitter.Refits())
	} else if initProfile != nil {
		logger.Info("calibration profile pinned",
			"path", *calibProfile, "fitted_at", initProfile.FittedAt)
	}
	if *memBudget > 0 {
		logger.Info("admission control enabled", "budget_mib", *memBudget,
			"queue_depth", *queueDepth, "queue_timeout", *queueTimeout)
	}
	if *shareOn {
		logger.Info("shared inference enabled", "window", *shareWindow)
	}
	if *maxDrift > 0 {
		logger.Info("calibration drift SLO enabled", "max_drift", *maxDrift)
	}
	if *debugAddr != "" {
		go serveDebug(*debugAddr, logger)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	logger.Info("vista-server listening", "addr", *addr)
	if err := serve(ctx, srv); err != nil {
		fmt.Fprintln(os.Stderr, "vista-server:", err)
		os.Exit(1)
	}
	logger.Info("vista-server shut down cleanly")
}

// serveDebug runs the opt-in pprof listener. It is a separate mux on a
// separate address, never the serving mux: profiles stay reachable while the
// main listener is saturated, and are never exposed on the public address.
func serveDebug(addr string, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("debug listener serving pprof", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Warn("debug listener failed", "addr", addr, "err", err)
	}
}

// serve runs srv until ctx is cancelled (e.g. by SIGINT/SIGTERM), then
// drains in-flight requests via http.Server.Shutdown. It returns nil on a
// clean shutdown and the underlying error otherwise.
func serve(ctx context.Context, srv *http.Server) error {
	errc := make(chan error, 1)
	go func() {
		err := srv.ListenAndServe()
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		errc <- err
	}()
	select {
	case err := <-errc:
		return err // listener failed before any shutdown signal
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	return <-errc
}
