package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/memory"
	"repro/internal/obs"
)

// TestRunRingOutOfOrder is the regression test for the old single-slot
// lastTrace race: a slow run finishing after a newer one must not become
// "latest".
func TestRunRingOutOfOrder(t *testing.T) {
	ring := newRunRing(4)
	seq1, id1 := ring.begin()
	seq2, id2 := ring.begin()
	if id1 != "run-1" || id2 != "run-2" {
		t.Fatalf("ids = %s, %s, want run-1, run-2", id1, id2)
	}

	// The newer run finishes first; the older (slower) one lands later.
	ring.complete(seq2, obs.StartSpan("new"), nil)
	ring.complete(seq1, obs.StartSpan("old"), nil)

	latest := ring.latest()
	if latest == nil || latest.id != id2 {
		t.Fatalf("latest = %+v, want %s (newest by sequence, not by completion)", latest, id2)
	}
	if got := ring.get(id1); got == nil || got.trace.Name() != "old" {
		t.Errorf("get(%s) = %+v, want the slow run's record", id1, got)
	}
}

func TestRunRingEviction(t *testing.T) {
	ring := newRunRing(2)
	for i := 0; i < 3; i++ {
		seq, _ := ring.begin()
		ring.complete(seq, obs.StartSpan(fmt.Sprintf("r%d", i)), nil)
	}
	if got := ring.get("run-1"); got != nil {
		t.Errorf("run-1 survived eviction in a 2-slot ring: %+v", got)
	}
	if got := ring.ids(); len(got) != 2 || got[0] != "run-3" || got[1] != "run-2" {
		t.Errorf("ids = %v, want [run-3 run-2]", got)
	}
}

// serverSpec mirrors the core.Spec handleRun builds for runBody, so tests
// can price a /run exactly as the server will.
func serverSpec(t *testing.T, rows, layers int) core.Spec {
	t.Helper()
	structRows, imageRows, err := data.Generate(data.Foods().WithRows(rows))
	if err != nil {
		t.Fatal(err)
	}
	return core.Spec{
		Nodes: 2, CoresPerNode: 4,
		MemPerNode: memory.GB(32),
		SystemKind: memory.SparkLike,
		ModelName:  "tiny-alexnet", NumLayers: layers,
		Downstream: core.DefaultDownstream(),
		StructRows: structRows, ImageRows: imageRows,
		Seed: 7,
	}
}

func runBody(rows, layers int) string {
	return fmt.Sprintf(`{"model":"tiny-alexnet","dataset":"foods","rows":%d,"layers":%d}`, rows, layers)
}

// post issues one real POST /run over the network, optionally under ctx.
func post(ctx context.Context, url, body string) (int, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", url+"/run", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header, nil
}

// waitDrained polls until the controller reports no in-flight or queued
// work and the goroutine count returns near base.
func waitDrained(t *testing.T, a *api, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := a.admit.Stats()
		if s.InFlightBytes == 0 && s.InFlightRuns == 0 && s.QueueDepth == 0 &&
			runtime.NumGoroutine() <= base+8 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("not drained: stats=%+v goroutines=%d (base %d)", s, runtime.NumGoroutine(), base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAdmissionStress floods a server whose budget fits exactly two
// concurrent runs with 16 parallel /run requests and checks that every
// response is 200, 429, or 503, that the admission counters reconcile
// exactly with the responses, and that the budget drains to zero.
func TestAdmissionStress(t *testing.T) {
	const rows, layers, parallel = 40, 2, 16
	price, err := core.Price(serverSpec(t, rows, layers))
	if err != nil {
		t.Fatalf("Price: %v", err)
	}
	a := newAPI(serverConfig{
		sloP99:         defaultSLOP99,
		memBudgetBytes: 2 * price,
		queueDepth:     4,
		queueTimeout:   500 * time.Millisecond,
	})
	srv := httptest.NewServer(a.handler())
	defer srv.Close()
	baseGoroutines := runtime.NumGoroutine()

	var mu sync.Mutex
	codes := make(map[int]int)
	var wg sync.WaitGroup
	wg.Add(parallel)
	for i := 0; i < parallel; i++ {
		go func() {
			defer wg.Done()
			code, hdr, err := post(context.Background(), srv.URL, runBody(rows, layers))
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			if code == http.StatusTooManyRequests && hdr.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			mu.Lock()
			codes[code]++
			mu.Unlock()
		}()
	}
	wg.Wait()

	for code := range codes {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Errorf("unexpected status %d (%d times)", code, codes[code])
		}
	}
	if codes[http.StatusOK] == 0 {
		t.Error("no request succeeded under admission")
	}

	s := a.admit.Stats()
	if got := s.Admitted; got != int64(codes[http.StatusOK]) {
		t.Errorf("admitted = %d, want %d (the 200s)", got, codes[http.StatusOK])
	}
	if got := s.RejectedDeadline; got != int64(codes[http.StatusTooManyRequests]) {
		t.Errorf("deadline rejections = %d, want %d (the 429s)", got, codes[http.StatusTooManyRequests])
	}
	if got := s.RejectedQueueFull + s.RejectedOversize; got != int64(codes[http.StatusServiceUnavailable]) {
		t.Errorf("overload rejections = %d, want %d (the 503s)", got, codes[http.StatusServiceUnavailable])
	}
	if s.Cancelled != 0 {
		t.Errorf("cancelled = %d with no client cancellations", s.Cancelled)
	}
	waitDrained(t, a, baseGoroutines)
}

// TestAdmissionStressWithCancellation mixes client-side cancellations into
// the flood: every request must land in exactly one outcome counter and the
// budget must still drain to zero — a cancelled admitted run releases its
// whole reservation.
func TestAdmissionStressWithCancellation(t *testing.T) {
	const rows, layers, parallel = 40, 2, 16
	price, err := core.Price(serverSpec(t, rows, layers))
	if err != nil {
		t.Fatalf("Price: %v", err)
	}
	a := newAPI(serverConfig{
		sloP99:         defaultSLOP99,
		memBudgetBytes: 2 * price,
		queueDepth:     8,
		queueTimeout:   2 * time.Second,
	})
	srv := httptest.NewServer(a.handler())
	defer srv.Close()
	baseGoroutines := runtime.NumGoroutine()

	var mu sync.Mutex
	codes := make(map[int]int)
	clientCancelled := 0
	var wg sync.WaitGroup
	wg.Add(parallel)
	for i := 0; i < parallel; i++ {
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%2 == 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(20+10*i)*time.Millisecond)
				defer cancel()
			}
			code, _, err := post(ctx, srv.URL, runBody(rows, layers))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if context.Cause(ctx) == nil {
					t.Errorf("post: %v", err)
					return
				}
				clientCancelled++
				return
			}
			codes[code]++
		}(i)
	}
	wg.Wait()

	for code := range codes {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Errorf("unexpected status %d (%d times)", code, codes[code])
		}
	}

	// Outcome reconciliation: every request that reached the controller
	// increments exactly one counter. A client that cancels fast enough can
	// tear down the connection before the handler finishes decoding the
	// body, so some requests legitimately never reach admission; the
	// queue-wait histogram (observed once per Admit, whatever the verdict)
	// is the ground truth for how many did.
	h := a.metrics.FindHistogram("vista_admission_queue_wait_seconds")
	if h == nil {
		t.Fatal("queue-wait histogram missing")
	}
	reached := h.Count()
	if reached > parallel {
		t.Errorf("controller saw %d requests, only %d were sent", reached, parallel)
	}
	if want := int64(codes[http.StatusOK] + codes[http.StatusTooManyRequests] + codes[http.StatusServiceUnavailable]); reached < want {
		t.Errorf("controller saw %d requests, but %d responses carried an admission verdict", reached, want)
	}
	s := a.admit.Stats()
	total := s.Admitted + s.RejectedDeadline + s.RejectedQueueFull + s.RejectedOversize + s.Cancelled
	if total != reached {
		t.Errorf("outcomes sum to %d (%+v), want %d (requests that reached admission)", total, s, reached)
	}
	// Every 200 was admitted; cancelled clients may have been admitted
	// (aborted mid-run or completed before cancel) or counted cancelled.
	if s.Admitted < int64(codes[http.StatusOK]) {
		t.Errorf("admitted = %d < %d successful responses", s.Admitted, codes[http.StatusOK])
	}
	if clientCancelled == 0 {
		t.Log("no client observed a cancellation this round (timing-dependent)")
	}
	waitDrained(t, a, baseGoroutines)
}

// TestRetryAfterVariesWithLoad is the regression test for the static
// Retry-After herd bug: the server used to stamp every 429 with the full
// -queue-timeout, so every client rejected in one overload wave retried at
// the same instant and arrived as a synchronized herd. The hint must instead
// track admission state — two 429s written under different congestion must
// carry different values.
func TestRetryAfterVariesWithLoad(t *testing.T) {
	const budget = 1 << 20
	fc := clock.NewFake()
	a := newAPI(serverConfig{
		sloP99:         defaultSLOP99,
		memBudgetBytes: budget,
		queueDepth:     4,
		queueTimeout:   10 * time.Second,
		clk:            fc,
	})

	// Fill the budget so every further request queues (wait 0 recorded).
	g, err := a.admit.Admit(context.Background(), budget)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}

	// timeOut queues one request and expires it: the waiter sits its full
	// queue timeout, records that wait, and returns ErrDeadline.
	timeOut := func() error {
		t.Helper()
		errc := make(chan error, 1)
		go func() {
			_, err := a.admit.Admit(context.Background(), budget)
			errc <- err
		}()
		fc.BlockUntil(1) // the waiter's deadline timer is armed
		fc.Advance(10 * time.Second)
		return <-errc
	}

	derr := timeOut()
	if !isAdmissionDeadline(derr) {
		t.Fatalf("queued request returned %v, want ErrDeadline", derr)
	}
	rec1 := httptest.NewRecorder()
	a.writeAdmissionError(rec1, derr)
	first := rec1.Header().Get("Retry-After")

	// More deadline expiries shift the recent-wait median up, and a parked
	// waiter raises queue occupancy: the next 429 must hint differently.
	for i := 0; i < 2; i++ {
		if err := timeOut(); !isAdmissionDeadline(err) {
			t.Fatalf("expiry %d returned %v, want ErrDeadline", i, err)
		}
	}
	parkCtx, cancelPark := context.WithCancel(context.Background())
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		_, _ = a.admit.Admit(parkCtx, budget)
	}()
	fc.BlockUntil(1)

	rec2 := httptest.NewRecorder()
	a.writeAdmissionError(rec2, derr)
	second := rec2.Header().Get("Retry-After")

	if rec1.Code != http.StatusTooManyRequests || rec2.Code != http.StatusTooManyRequests {
		t.Fatalf("codes = %d, %d, want 429 for both", rec1.Code, rec2.Code)
	}
	if first == "" || second == "" {
		t.Fatalf("Retry-After = %q then %q, want both set", first, second)
	}
	if first == second {
		t.Errorf("Retry-After = %q under light load and %q under heavy load: a constant hint re-synchronizes the retry herd", first, second)
	}

	cancelPark()
	<-parked
	g.Release()
}

// isAdmissionDeadline reports whether err is the admission queue-deadline
// sentinel (the condition the server maps to 429).
func isAdmissionDeadline(err error) bool {
	return errors.Is(err, admission.ErrDeadline)
}

// TestRunIDRoundTrip runs twice and fetches each run's trace and time series
// back by its returned ID; an unknown ID 404s and lists what is retained.
func TestRunIDRoundTrip(t *testing.T) {
	h := newHandler(nil)
	var ids []string
	for i := 0; i < 2; i++ {
		code, body := doJSON(t, h, "POST", "/run", runBody(40, 2))
		if code != http.StatusOK {
			t.Fatalf("run %d = %d %v", i, code, body)
		}
		id, ok := body["run_id"].(string)
		if !ok || id == "" {
			t.Fatalf("run %d response lacks run_id: %v", i, body)
		}
		ids = append(ids, id)
	}
	if ids[0] == ids[1] {
		t.Fatalf("both runs got id %s", ids[0])
	}
	for _, id := range ids {
		if rec := get(t, h, "/trace/chrome?run="+id); rec.Code != http.StatusOK {
			t.Errorf("trace for %s = %d", id, rec.Code)
		}
		if rec := get(t, h, "/timeseries?run="+id); rec.Code != http.StatusOK {
			t.Errorf("timeseries for %s = %d", id, rec.Code)
		}
	}
	if rec := get(t, h, "/trace/chrome?run=run-999"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown run trace = %d, want 404", rec.Code)
	}
}
