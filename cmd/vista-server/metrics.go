package main

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
)

// statusWriter captures the status code a handler writes, for the per-request
// series.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps the mux with per-request latency and status accounting.
// The path label is the request's registered route (one series per endpoint,
// not per URL), so an unknown path collapses into a single "other" series
// rather than letting arbitrary clients mint label values.
func instrument(reg *obs.Registry, known map[string]bool, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := r.URL.Path
		if !known[path] {
			path = "other"
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		reg.Histogram("vista_http_request_seconds",
			"Request latency by endpoint.", obs.DefBuckets,
			obs.Label{Key: "path", Value: path},
		).Observe(time.Since(start).Seconds())
		reg.Counter("vista_http_requests_total",
			"Requests served, by endpoint and status code.",
			obs.Label{Key: "path", Value: path},
			obs.Label{Key: "code", Value: fmt.Sprintf("%d", sw.status)},
		).Inc()
	})
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (a *api) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = a.metrics.WritePrometheus(w)
}
