package main

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/obs/export"
)

// lookupRun resolves the ?run=ID query parameter against the retained run
// ring: no parameter means the most recent completed run. It writes the 404
// (listing the IDs still retained) itself and returns nil when nothing
// matches.
func (a *api) lookupRun(w http.ResponseWriter, r *http.Request) *runRecord {
	if id := r.URL.Query().Get("run"); id != "" {
		rec := a.runs.get(id)
		if rec == nil {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"error":    fmt.Sprintf("run %q not retained (the ring keeps the newest %d completed runs)", id, a.runs.cap),
				"retained": a.runs.ids(),
			})
		}
		return rec
	}
	rec := a.runs.latest()
	if rec == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no run completed yet (POST /run first)"))
	}
	return rec
}

// handleTrace serves a completed /run's span tree as a downloadable trace
// file: GET /trace/chrome (chrome://tracing / Perfetto loadable, with
// sampled counter tracks) or GET /trace/otlp (OTLP-style JSON spans).
// ?run=ID selects a retained run; default is the most recent.
func (a *api) handleTrace(w http.ResponseWriter, r *http.Request) {
	rec := a.lookupRun(w, r)
	if rec == nil {
		return
	}
	switch format := r.PathValue("format"); format {
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = export.WriteChromeTrace(w, rec.trace, rec.series)
	case "otlp":
		w.Header().Set("Content-Type", "application/json")
		_ = export.WriteOTLP(w, rec.trace)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown trace format %q (chrome or otlp)", format))
	}
}

// handleTimeseries serves a completed /run's sampled time series: JSON by
// default, CSV with ?format=csv. ?run=ID selects a retained run; default is
// the most recent.
func (a *api) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	rec := a.lookupRun(w, r)
	if rec == nil {
		return
	}
	if rec.series == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("run %s was not sampled", rec.id))
		return
	}
	switch format := r.URL.Query().Get("format"); strings.ToLower(format) {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		_ = export.WriteTimeseriesCSV(w, rec.series)
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		_ = export.WriteTimeseriesJSON(w, rec.series)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown timeseries format %q (json or csv)", format))
	}
}
