package main

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/obs/sampler"
)

// lastRun returns the most recent successful /run's trace and recording.
func (a *api) lastRun() (*obs.Span, *sampler.Recording) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastTrace, a.lastSeries
}

// handleTrace serves the last /run's span tree as a downloadable trace file:
// GET /trace/chrome (chrome://tracing / Perfetto loadable, with sampled
// counter tracks) or GET /trace/otlp (OTLP-style JSON spans).
func (a *api) handleTrace(w http.ResponseWriter, r *http.Request) {
	trace, series := a.lastRun()
	if trace == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no run traced yet (POST /run first)"))
		return
	}
	switch format := r.PathValue("format"); format {
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = export.WriteChromeTrace(w, trace, series)
	case "otlp":
		w.Header().Set("Content-Type", "application/json")
		_ = export.WriteOTLP(w, trace)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown trace format %q (chrome or otlp)", format))
	}
}

// handleTimeseries serves the last /run's sampled time series: JSON by
// default, CSV with ?format=csv.
func (a *api) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	_, series := a.lastRun()
	if series == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no run sampled yet (POST /run first)"))
		return
	}
	switch format := r.URL.Query().Get("format"); strings.ToLower(format) {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		_ = export.WriteTimeseriesCSV(w, series)
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		_ = export.WriteTimeseriesJSON(w, series)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown timeseries format %q (json or csv)", format))
	}
}
