package main

import (
	"net/http"
	"testing"

	"repro/internal/obs"
)

func TestCheckSLO(t *testing.T) {
	reg := obs.NewRegistry()

	// No series for the path yet: vacuous pass, and the probe must not mint
	// an empty histogram into the exposition.
	st, found := CheckSLO(reg, "/healthz", 0.5)
	if found || !st.OK {
		t.Fatalf("missing series: found=%v ok=%v, want vacuous pass", found, st.OK)
	}

	h := reg.Histogram("vista_http_request_seconds", "lat", obs.DefBuckets,
		obs.Label{Key: "path", Value: "/healthz"})
	for i := 0; i < 100; i++ {
		h.Observe(0.003)
	}

	st, found = CheckSLO(reg, "/healthz", 0.5)
	if !found || !st.OK || st.P99Seconds <= 0 {
		t.Errorf("fast endpoint: found=%v ok=%v p99=%v, want pass", found, st.OK, st.P99Seconds)
	}
	st, found = CheckSLO(reg, "/healthz", 1e-9)
	if !found || st.OK {
		t.Errorf("tiny bound: found=%v ok=%v p99=%v, want violation", found, st.OK, st.P99Seconds)
	}
}

func TestHealthzSLOMode(t *testing.T) {
	// A generous bound passes even with traffic recorded.
	h := newHandlerSLO(nil, 60)
	doJSON(t, h, "GET", "/healthz", "")
	code, body := doJSON(t, h, "GET", "/healthz?slo=1", "")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz?slo=1 = %d %v, want 200 ok", code, body)
	}
	if body["slo"] == nil {
		t.Errorf("slo report missing: %v", body)
	}

	// An impossible bound degrades to 503 once any endpoint has latency.
	h = newHandlerSLO(nil, 0) // every observed request violates p99 <= 0
	doJSON(t, h, "GET", "/healthz", "")
	code, body = doJSON(t, h, "GET", "/healthz?slo=1", "")
	if code != http.StatusServiceUnavailable || body["status"] != "slo-violated" {
		t.Fatalf("healthz?slo=1 with zero bound = %d %v, want 503 slo-violated", code, body)
	}
	if vs, ok := body["violations"].([]any); !ok || len(vs) == 0 {
		t.Errorf("violations missing: %v", body)
	}

	// Plain healthz stays a trivial liveness probe either way.
	if code, body := doJSON(t, h, "GET", "/healthz", ""); code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("plain healthz = %d %v", code, body)
	}
}
