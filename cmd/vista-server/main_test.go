package main

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// TestServeGracefulShutdown asserts serve drains and returns nil once its
// context is cancelled — the SIGINT/SIGTERM path.
func TestServeGracefulShutdown(t *testing.T) {
	srv := &http.Server{Addr: "127.0.0.1:0", Handler: newHandler(nil)}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, srv) }()
	time.Sleep(50 * time.Millisecond) // let the listener come up
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v, want clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not shut down after cancellation")
	}
}

// TestServeListenError asserts listener failures surface instead of hanging
// until a signal.
func TestServeListenError(t *testing.T) {
	srv := &http.Server{Addr: "256.0.0.1:-1", Handler: newHandler(nil)}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := serve(ctx, srv); err == nil {
		t.Fatal("serve accepted an unlistenable address")
	}
}
