package main

import (
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"repro/internal/calib"
	"repro/internal/clock"
)

// calibrationGolden is the exact /calibration response for the hand-built
// records in TestCalibrationGoldenJSON: the endpoint's wire format is part of
// the operational surface (vista -calib report must reproduce it
// byte-for-byte), so it is pinned literally.
const calibrationGolden = `{"runs":2,"samples":7,"half_life_seconds":1800,"stages":[{"kind":"ingest","samples":2,"excluded":0,"ewma_log_ratio":-0.184915,"drift_ratio":0.831175,"drift":0.203116,"suggested_scale":0.833333,"active_scale":1,"rel_err_hist":[{"le":"0.1","count":0},{"le":"0.25","count":1},{"le":"0.5","count":1},{"le":"1","count":0},{"le":"2","count":0},{"le":"5","count":0},{"le":"+Inf","count":0}]},{"kind":"join","samples":1,"excluded":0,"ewma_log_ratio":0,"drift_ratio":1,"drift":0,"suggested_scale":1,"active_scale":1,"rel_err_hist":[{"le":"0.1","count":1},{"le":"0.25","count":0},{"le":"0.5","count":0},{"le":"1","count":0},{"le":"2","count":0},{"le":"5","count":0},{"le":"+Inf","count":0}]},{"kind":"infer","samples":2,"excluded":1,"ewma_log_ratio":0.198661,"drift_ratio":1.219769,"drift":0.219769,"suggested_scale":1.222222,"active_scale":1,"rel_err_hist":[{"le":"0.1","count":0},{"le":"0.25","count":1},{"le":"0.5","count":1},{"le":"1","count":0},{"le":"2","count":0},{"le":"5","count":0},{"le":"+Inf","count":0}]},{"kind":"train","samples":1,"excluded":0,"ewma_log_ratio":0,"drift_ratio":1,"drift":0,"suggested_scale":1,"active_scale":1,"rel_err_hist":[{"le":"0.1","count":1},{"le":"0.25","count":0},{"le":"0.5","count":0},{"le":"1","count":0},{"le":"2","count":0},{"le":"5","count":0},{"le":"+Inf","count":0}]},{"kind":"storage","samples":1,"excluded":0,"ewma_log_ratio":0.405465,"drift_ratio":1.5,"drift":0.5,"suggested_scale":1.5,"active_scale":1,"rel_err_hist":[{"le":"0.1","count":0},{"le":"0.25","count":0},{"le":"0.5","count":1},{"le":"1","count":0},{"le":"2","count":0},{"le":"5","count":0},{"le":"+Inf","count":0}]}]}
`

func TestCalibrationGoldenJSON(t *testing.T) {
	fc := clock.NewFake()
	a := newAPI(serverConfig{sloP99: defaultSLOP99, clk: fc})
	h := a.handler()

	rec1 := []calib.Sample{
		{Stage: "ingest", Kind: calib.KindIngest, Est: 0.4, Meas: 0.3},
		{Stage: "join", Kind: calib.KindJoin, Est: 0.2, Meas: 0.2},
		{Stage: "infer:fc6", Kind: calib.KindInfer, Est: 0.3, Meas: 0.4},
		{Stage: "train:fc6", Kind: calib.KindTrain, Est: 0.1, Meas: 0.1},
		{Stage: "cache:fc7", Kind: calib.KindInfer, Meas: 0.05, Cached: true},
		{Stage: "storage:peak", Kind: calib.KindStorage, Est: 1 << 20, Meas: 1.5 * (1 << 20)},
	}
	rec2 := []calib.Sample{
		{Stage: "ingest", Kind: calib.KindIngest, Est: 0.4, Meas: 0.35},
		{Stage: "infer:fc6", Kind: calib.KindInfer, Est: 0.3, Meas: 0.35},
	}
	if err := a.calib.Record("tiny-alexnet|foods|100|7", rec1); err != nil {
		t.Fatal(err)
	}
	fc.Advance(calib.DefaultHalfLife)
	if err := a.calib.Record("tiny-alexnet|foods|100|7", rec2); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest("GET", "/calibration", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("calibration = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	if got := w.Body.String(); got != calibrationGolden {
		t.Fatalf("calibration JSON drifted from golden:\ngot:  %s\nwant: %s", got, calibrationGolden)
	}

	// The text rendering serves the same report as an aligned table.
	req = httptest.NewRequest("GET", "/calibration?format=text", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("calibration?format=text = %d", w.Code)
	}
	if body := w.Body.String(); !regexp.MustCompile(`(?m)^calibration: 2 runs, 7 samples`).MatchString(body) {
		t.Fatalf("text report header missing:\n%s", body)
	}
}

// calibMetricRe captures vista_calib_samples_total{stage="..."} N lines from
// the Prometheus exposition.
var calibMetricRe = regexp.MustCompile(`(?m)^vista_calib_samples_total\{stage="([a-z]+)"\} (\d+(?:\.\d+)?(?:e\+\d+)?)$`)

// TestCalibrationReconcilesWithMetrics drives real /run traffic and checks
// the two calibration surfaces against each other: the /calibration report's
// per-kind sample counts must equal the vista_calib_samples_total series.
func TestCalibrationReconcilesWithMetrics(t *testing.T) {
	h := newHandler(nil)
	const runBody = `{"model":"tiny-alexnet","dataset":"foods","layers":2,"rows":100}`
	for i := 0; i < 3; i++ {
		if code, body := doJSON(t, h, "POST", "/run", runBody); code != http.StatusOK {
			t.Fatalf("run %d = %d %v", i, code, body)
		}
	}

	code, rep := doJSON(t, h, "GET", "/calibration", "")
	if code != http.StatusOK {
		t.Fatalf("calibration = %d", code)
	}
	if runs := rep["runs"].(float64); runs != 3 {
		t.Fatalf("calibration runs = %v, want 3", runs)
	}
	bySamples := map[string]float64{}
	for _, s := range rep["stages"].([]any) {
		st := s.(map[string]any)
		bySamples[st["kind"].(string)] = st["samples"].(float64)
	}
	// Every time kind the run exercises accumulates evidence; storage needs
	// a sampled series, which plain /run requests do not record.
	for _, kind := range []string{"ingest", "join", "infer", "train"} {
		if bySamples[kind] == 0 {
			t.Errorf("kind %s has no samples after 3 runs: %v", kind, bySamples)
		}
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics = %d", w.Code)
	}
	matches := calibMetricRe.FindAllStringSubmatch(w.Body.String(), -1)
	if len(matches) != len(calib.Kinds) {
		t.Fatalf("found %d vista_calib_samples_total series, want %d:\n%v",
			len(matches), len(calib.Kinds), matches)
	}
	for _, m := range matches {
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("unparseable metric value %q", m[2])
		}
		if want := bySamples[m[1]]; v != want {
			t.Errorf("vista_calib_samples_total{stage=%q} = %v, /calibration says %v", m[1], v, want)
		}
	}
}

// TestDriftSLOTrips mis-scales the simulator's inference estimates 25x (the
// deliberate calibration-breaking hook) and checks that /healthz?slo=1
// degrades to 503 with the calibration clause, while a plain probe and a
// loose bound stay healthy.
func TestDriftSLOTrips(t *testing.T) {
	a := newAPI(serverConfig{sloP99: defaultSLOP99, maxDrift: 0.5, calibInferScale: 25})
	h := a.handler()
	code, body := doJSON(t, h, "POST", "/run",
		`{"model":"tiny-alexnet","dataset":"foods","layers":2,"rows":100}`)
	if code != http.StatusOK {
		t.Fatalf("run = %d %v", code, body)
	}

	// Liveness without ?slo=1 never degrades.
	if code, body := doJSON(t, h, "GET", "/healthz", ""); code != http.StatusOK {
		t.Fatalf("plain healthz = %d %v", code, body)
	}

	code, body = doJSON(t, h, "GET", "/healthz?slo=1", "")
	if code != http.StatusServiceUnavailable || body["status"] != "slo-violated" {
		t.Fatalf("healthz?slo=1 under 25x mis-calibration = %d %v, want 503", code, body)
	}
	viol := body["calibration_violations"].([]any)
	if len(viol) == 0 {
		t.Fatal("no calibration violations reported")
	}
	for _, v := range viol {
		d := v.(map[string]any)
		if d["ok"] != false || d["bound"].(float64) != 0.5 || d["drift"].(float64) <= 0.5 {
			t.Errorf("violation %v does not exceed the bound", d)
		}
	}

	// Same mis-calibration, loose bound: drift is visible in the checked
	// list but does not degrade health.
	loose := newAPI(serverConfig{sloP99: defaultSLOP99, maxDrift: 1e6, calibInferScale: 25})
	lh := loose.handler()
	if code, body := doJSON(t, lh, "POST", "/run",
		`{"model":"tiny-alexnet","dataset":"foods","layers":2,"rows":100}`); code != http.StatusOK {
		t.Fatalf("run = %d %v", code, body)
	}
	code, body = doJSON(t, lh, "GET", "/healthz?slo=1", "")
	if code != http.StatusOK {
		t.Fatalf("healthz?slo=1 with loose bound = %d %v, want 200", code, body)
	}
	if checked := body["calibration"].([]any); len(checked) == 0 {
		t.Fatal("loose-bound healthz reports no calibration checks")
	}
}

// TestCalibrationPersistsAcrossRestart wires a log-backed recorder the way
// main does and checks a second server resumes the first one's aggregates.
func TestCalibrationPersistsAcrossRestart(t *testing.T) {
	path := t.TempDir() + "/calib.log"
	open := func() (*calib.Recorder, http.Handler) {
		rec, err := calib.Open(calib.Config{Path: path})
		if err != nil {
			t.Fatal(err)
		}
		return rec, newAPI(serverConfig{sloP99: defaultSLOP99, calib: rec}).handler()
	}

	rec, h := open()
	if code, body := doJSON(t, h, "POST", "/run",
		`{"model":"tiny-alexnet","dataset":"foods","layers":2,"rows":100}`); code != http.StatusOK {
		t.Fatalf("run = %d %v", code, body)
	}
	_, before := doJSON(t, h, "GET", "/calibration", "")
	if before["runs"].(float64) != 1 {
		t.Fatalf("first server runs = %v, want 1", before["runs"])
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	rec2, h2 := open()
	defer rec2.Close()
	_, after := doJSON(t, h2, "GET", "/calibration", "")
	if after["runs"].(float64) != 1 {
		t.Fatalf("restarted server runs = %v, want the replayed 1", after["runs"])
	}
	if time.Duration(after["half_life_seconds"].(float64))*time.Second != calib.DefaultHalfLife {
		t.Fatalf("half-life = %v", after["half_life_seconds"])
	}
}
