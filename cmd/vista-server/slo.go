package main

import (
	"net/http"

	"repro/internal/obs"
)

// SLOStatus is one endpoint's latency SLO evaluation.
type SLOStatus struct {
	Path string `json:"path"`
	// P99Seconds is the interpolated 99th-percentile request latency from
	// the endpoint's vista_http_request_seconds buckets.
	P99Seconds float64 `json:"p99_seconds"`
	// BoundSeconds is the configured bound; OK is P99Seconds <= BoundSeconds.
	BoundSeconds float64 `json:"bound_seconds"`
	OK           bool    `json:"ok"`
}

// CheckSLO evaluates path's p99 request latency against p99Bound (seconds),
// reading the vista_http_request_seconds histogram out of reg. An endpoint
// with no recorded requests passes vacuously (found=false): absence of
// traffic is not an SLO violation, and probing must not mint empty series
// into the exposition.
func CheckSLO(reg *obs.Registry, path string, p99Bound float64) (st SLOStatus, found bool) {
	st = SLOStatus{Path: path, BoundSeconds: p99Bound, OK: true}
	h := reg.FindHistogram("vista_http_request_seconds", obs.Label{Key: "path", Value: path})
	if h == nil {
		return st, false
	}
	p99, ok := h.Quantile(0.99)
	if !ok {
		return st, false
	}
	st.P99Seconds = p99
	st.OK = p99 <= p99Bound
	return st, true
}

// CheckQueueWaitSLO evaluates the admission queue-wait p99 against the same
// bound the endpoint sweep uses, reading vista_admission_queue_wait_seconds.
// Like CheckSLO, an idle controller (no requests observed) passes vacuously.
func CheckQueueWaitSLO(reg *obs.Registry, p99Bound float64) (st SLOStatus, found bool) {
	st = SLOStatus{Path: "admission-queue", BoundSeconds: p99Bound, OK: true}
	h := reg.FindHistogram("vista_admission_queue_wait_seconds")
	if h == nil {
		return st, false
	}
	p99, ok := h.Quantile(0.99)
	if !ok {
		return st, false
	}
	st.P99Seconds = p99
	st.OK = p99 <= p99Bound
	return st, true
}

// handleHealthz is the liveness probe. Plain GET /healthz always reports ok;
// GET /healthz?slo=1 additionally sweeps every instrumented endpoint's p99
// latency — plus the admission queue wait, when admission control is on, and
// the cost model's calibration drift, when -max-drift is set — against the
// configured bounds and degrades to 503 when anything violates them — a
// scrape-free hook for external health checkers.
func (a *api) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("slo") == "" {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	}
	var checked, violations []SLOStatus
	for _, path := range a.paths {
		st, found := CheckSLO(a.metrics, path, a.sloP99)
		if !found {
			continue
		}
		checked = append(checked, st)
		if !st.OK {
			violations = append(violations, st)
		}
	}
	if a.admit != nil {
		if st, found := CheckQueueWaitSLO(a.metrics, a.sloP99); found {
			checked = append(checked, st)
			if !st.OK {
				violations = append(violations, st)
			}
		}
	}
	var driftChecked, driftViolations []DriftStatus
	if a.maxDrift > 0 {
		driftChecked = CheckDriftSLO(a.calib.Report(), a.maxDrift)
		for _, d := range driftChecked {
			if !d.OK {
				driftViolations = append(driftViolations, d)
			}
		}
	}
	status, verdict := http.StatusOK, "ok"
	if len(violations) > 0 || len(driftViolations) > 0 {
		status, verdict = http.StatusServiceUnavailable, "slo-violated"
	}
	writeJSON(w, status, map[string]any{
		"status":                 verdict,
		"slo":                    checked,
		"violations":             violations,
		"calibration":            driftChecked,
		"calibration_violations": driftViolations,
	})
}
