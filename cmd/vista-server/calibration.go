package main

import (
	"net/http"

	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/plan"
)

// handleCalibration serves the cost model's rolling drift report: JSON by
// default (the golden-tested wire format vista -calib report reproduces
// offline, including the active-profile annotation when one is set), an
// aligned text table with ?format=text.
func (a *api) handleCalibration(w http.ResponseWriter, r *http.Request) {
	rep := a.calib.Report().WithProfile(a.fitter.Active())
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		calib.RenderReport(w, rep)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = calib.WriteReportJSON(w, rep)
}

// recordCalibration folds one completed /run into the calibration recorder:
// rebuild the simulator workload from what actually ran (rows, structured
// dims, measured image bytes — the same derivation cmd/vista's -trace
// comparison uses), compare it against the measured trace and series, and
// record the resulting samples. Calibration is observability, not the
// serving path: any failure is logged and swallowed.
func (a *api) recordCalibration(req *workloadRequest, spec *core.Spec, res *core.Result, runID string) {
	if len(spec.StructRows) == 0 || res.Trace == nil {
		return
	}
	var imgBytes, n int64
	for i := range spec.ImageRows {
		imgBytes += spec.ImageRows[i].MemBytes()
		n++
		if n == 100 {
			break
		}
	}
	if n > 0 {
		imgBytes /= n
	}
	env := calib.RunEnv{
		ModelName:     req.Model,
		Dataset:       req.Dataset,
		Rows:          len(spec.StructRows),
		StructDim:     len(spec.StructRows[0].Structured),
		ImageRowBytes: imgBytes,
		PlanKind:      plan.Staged,
		Placement:     plan.AfterJoin,
		Nodes:         req.Nodes,
		Cores:         req.Cores,
		MemBytes:      memory.GB(req.MemGB),
		InferEstScale: a.calibInferScale,
		Profile:       a.fitter.Active(),
	}
	samples, err := calib.CompareRun(env, res.Trace, res.Series)
	if err != nil {
		a.logger.Debug("calibration comparison skipped", "run_id", runID, "err", err)
		return
	}
	if err := a.calib.Record(workloadKey(req), samples); err != nil {
		a.logger.Warn("calibration log append failed", "run_id", runID, "err", err)
	}
}

// DriftStatus is one stage kind's drift SLO evaluation, the calibration
// analogue of SLOStatus.
type DriftStatus struct {
	Stage string `json:"stage"`
	// DriftRatio and Drift mirror the /calibration report's fields; OK is
	// Drift <= Bound.
	DriftRatio float64 `json:"drift_ratio"`
	Drift      float64 `json:"drift"`
	Bound      float64 `json:"bound"`
	Samples    int64   `json:"samples"`
	OK         bool    `json:"ok"`
}

// CheckDriftSLO evaluates every stage kind's EWMA drift against bound. A
// kind with no samples passes vacuously (absent evidence is not drift),
// matching CheckSLO's treatment of traffic-free endpoints.
func CheckDriftSLO(rep calib.Report, bound float64) (checked []DriftStatus) {
	for _, st := range rep.Stages {
		if st.Samples == 0 {
			continue
		}
		checked = append(checked, DriftStatus{
			Stage:      st.Kind,
			DriftRatio: st.DriftRatio,
			Drift:      st.Drift,
			Bound:      bound,
			Samples:    st.Samples,
			OK:         st.Drift <= bound,
		})
	}
	return checked
}
