package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/featurestore"
)

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	return rec.Body.String()
}

func TestMetricsEndpoint(t *testing.T) {
	store, err := featurestore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	h := newHandler(store)

	// Generate traffic: two known endpoints, one 4xx, one unregistered path.
	doJSON(t, h, "GET", "/healthz", "")
	doJSON(t, h, "GET", "/healthz", "")
	doJSON(t, h, "POST", "/explain", `{}`)
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/no/such/route", nil))

	out := scrape(t, h)
	for _, want := range []string{
		"# TYPE vista_http_request_seconds histogram",
		`vista_http_request_seconds_bucket{path="/healthz",le="+Inf"} 2`,
		"vista_http_request_seconds_sum{path=\"/healthz\"}",
		`vista_http_requests_total{code="200",path="/healthz"} 2`,
		`vista_http_requests_total{code="400",path="/explain"} 1`,
		`path="other"`,
		"vista_featurestore_misses_total 0",
		"vista_featurestore_used_bytes 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
	// Arbitrary request paths must not mint label values.
	if strings.Contains(out, "/no/such/route") {
		t.Error("unregistered path leaked into labels")
	}
}

// TestMetricsAfterRun: a real /run leaves engine and pool series behind, and
// the store series reflect the published features.
func TestMetricsAfterRun(t *testing.T) {
	store, err := featurestore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	h := newHandler(store)

	code, body := doJSON(t, h, "POST", "/run",
		`{"model":"tiny-alexnet","dataset":"foods","layers":2,"rows":60}`)
	if code != http.StatusOK || body["crashed"] != false {
		t.Fatalf("/run = %d %v", code, body)
	}

	out := scrape(t, h)
	for _, want := range []string{
		"vista_engine_tasks_total",
		"vista_engine_flops_total",
		`vista_pool_used_bytes{node="0",pool="storage"}`,
		"vista_featurestore_puts_total",
		`vista_http_requests_total{code="200",path="/run"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}
