package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// get performs a GET and returns the raw response.
func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestTraceEndpointBeforeAnyRun(t *testing.T) {
	h := newHandler(nil)
	if rec := get(t, h, "/trace/chrome"); rec.Code != http.StatusNotFound {
		t.Errorf("/trace/chrome before run = %d, want 404", rec.Code)
	}
	if rec := get(t, h, "/timeseries"); rec.Code != http.StatusNotFound {
		t.Errorf("/timeseries before run = %d, want 404", rec.Code)
	}
}

func TestTraceAndTimeseriesEndpoints(t *testing.T) {
	h := newHandler(nil)
	code, body := doJSON(t, h, "POST", "/run",
		`{"model":"tiny-alexnet","dataset":"foods","layers":2,"rows":100}`)
	if code != http.StatusOK || body["crashed"] != false {
		t.Fatalf("/run = %d %v", code, body)
	}

	// Chrome format: valid trace-event JSON covering the run's stages.
	rec := get(t, h, "/trace/chrome")
	if rec.Code != http.StatusOK {
		t.Fatalf("/trace/chrome = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("/trace/chrome Content-Type = %q", ct)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"run", "ingest"} {
		if !names[want] {
			t.Errorf("chrome trace missing span %q", want)
		}
	}

	// OTLP format.
	rec = get(t, h, "/trace/otlp")
	if rec.Code != http.StatusOK {
		t.Fatalf("/trace/otlp = %d", rec.Code)
	}
	var otlp struct {
		ResourceSpans []json.RawMessage `json:"resourceSpans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &otlp); err != nil || len(otlp.ResourceSpans) == 0 {
		t.Fatalf("otlp trace invalid: %v (%d resourceSpans)", err, len(otlp.ResourceSpans))
	}

	// Unknown format.
	if rec = get(t, h, "/trace/nope"); rec.Code != http.StatusBadRequest {
		t.Errorf("/trace/nope = %d, want 400", rec.Code)
	}

	// Time series: JSON by default, CSV on request.
	rec = get(t, h, "/timeseries")
	if rec.Code != http.StatusOK {
		t.Fatalf("/timeseries = %d", rec.Code)
	}
	var series struct {
		Frames []struct {
			UnixNs int64  `json:"unix_ns"`
			Stage  string `json:"stage"`
		} `json:"frames"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &series); err != nil {
		t.Fatalf("timeseries JSON invalid: %v", err)
	}
	if len(series.Frames) < 2 {
		t.Errorf("timeseries has %d frames, want >= 2 (initial + final)", len(series.Frames))
	}

	rec = get(t, h, "/timeseries?format=csv")
	if rec.Code != http.StatusOK {
		t.Fatalf("/timeseries?format=csv = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/csv" {
		t.Errorf("CSV Content-Type = %q", ct)
	}
	if !strings.HasPrefix(rec.Body.String(), "unix_ns,stage,") {
		t.Errorf("CSV header missing: %q", strings.SplitN(rec.Body.String(), "\n", 2)[0])
	}
	if rec = get(t, h, "/timeseries?format=nope"); rec.Code != http.StatusBadRequest {
		t.Errorf("/timeseries?format=nope = %d, want 400", rec.Code)
	}
}
