package main

import (
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"testing"
	"time"

	"repro/internal/calib"
	"repro/internal/clock"
)

// driftByKind indexes a /calibration JSON body's evidenced stages by kind.
func driftByKind(t *testing.T, body map[string]any) map[string]map[string]any {
	t.Helper()
	out := make(map[string]map[string]any)
	for _, s := range body["stages"].([]any) {
		st := s.(map[string]any)
		if st["samples"].(float64) > 0 {
			out[st["kind"].(string)] = st
		}
	}
	if len(out) == 0 {
		t.Fatal("no evidenced stages in /calibration report")
	}
	return out
}

// TestAutoCalibrateClosesLoopEndToEnd drives the whole feedback loop through
// the server: /run traffic under a deliberate 25x inference mis-calibration,
// the periodic fitter (on a fake clock) refitting a profile from the drift it
// causes, the profile persisting to disk and annotating /calibration, and —
// the point of the loop — subsequent runs recording residual drift inside the
// [0.5, 2.0] convergence band for every evidenced kind.
//
// Note where the drift shows up: time samples are share-normalized, and the
// inference estimate already dominates the run's estimated shape, so
// inflating it 25x mostly *deflates* every other kind's estimated share —
// the injected error registers as train/ingest/join drift, exactly as the
// single-kind scenario's fixed-point arithmetic predicts (docs/CALIBRATION.md).
func TestAutoCalibrateClosesLoopEndToEnd(t *testing.T) {
	fc := clock.NewFake()
	profilePath := filepath.Join(t.TempDir(), "profile.json")
	// A short half-life so pre-refit evidence fades quickly once the clock
	// advances; it flows through serverConfig exactly as -calib-half-life does.
	rec, err := calib.Open(calib.Config{HalfLife: 5 * time.Second, Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	a := newAPI(serverConfig{
		sloP99:           defaultSLOP99,
		clk:              fc,
		calib:            rec,
		calibInferScale:  25,
		autoCalibrate:    true,
		calibProfilePath: profilePath,
		refitInterval:    10 * time.Second,
	})
	h := a.handler()

	// One feature layer keeps each kind's samples homogeneous, so a per-kind
	// factor can actually converge the drift it causes.
	const runBody = `{"model":"tiny-alexnet","dataset":"foods","layers":1,"rows":100}`
	for i := 0; i < 3; i++ {
		if code, body := doJSON(t, h, "POST", "/run", runBody); code != 200 {
			t.Fatalf("run %d = %d %v", i, code, body)
		}
	}
	code, before := doJSON(t, h, "GET", "/calibration", "")
	if code != 200 {
		t.Fatalf("calibration = %d", code)
	}
	if _, ok := before["profile"]; ok {
		t.Fatal("profile annotation present before any refit")
	}
	pre := driftByKind(t, before)
	if d := pre["train"]["drift_ratio"].(float64); d <= 2 {
		t.Fatalf("train drift before refit = %v, want > 2 (deflated by the 25x infer share)", d)
	}
	if d := pre["ingest"]["drift_ratio"].(float64); d >= 0.5 {
		t.Fatalf("ingest drift before refit = %v, want < 0.5", d)
	}
	for k, st := range pre {
		if got := st["active_scale"].(float64); got != 1 {
			t.Fatalf("active scale for %s before any refit = %v, want 1", k, got)
		}
	}

	// Start the periodic loop the way main does and let one interval elapse.
	a.fitter.Start()
	defer a.fitter.Stop()
	fc.BlockUntil(1)
	fc.Advance(10 * time.Second)
	for i := 0; a.fitter.Refits() < 1; i++ {
		if i > 1e7 {
			t.Fatal("refit never fired")
		}
		runtime.Gosched()
	}

	// The refit persisted a profile that corrects the share distortion: train
	// was under-estimated (inflate), ingest over-estimated (deflate).
	onDisk, err := calib.LoadProfile(profilePath)
	if err != nil {
		t.Fatal(err)
	}
	if f := onDisk.ScaleFor(calib.KindTrain); f <= 2 {
		t.Fatalf("fitted train factor = %v, want > 2", f)
	}
	if f := onDisk.ScaleFor(calib.KindIngest); f >= 0.5 {
		t.Fatalf("fitted ingest factor = %v, want < 0.5", f)
	}
	// /calibration now carries the active profile and per-stage scales.
	code, mid := doJSON(t, h, "GET", "/calibration", "")
	if code != 200 {
		t.Fatalf("calibration after refit = %d", code)
	}
	if _, ok := mid["profile"]; !ok {
		t.Fatal("no profile annotation after refit")
	}
	if got, want := driftByKind(t, mid)["train"]["active_scale"].(float64),
		onDisk.ScaleFor(calib.KindTrain); got != want {
		t.Fatalf("train active_scale = %v, persisted profile says %v", got, want)
	}

	// Close the loop: rounds of "fade the old evidence, run fresh traffic,
	// refit on the residual" until every evidenced kind's drift sits inside
	// the convergence band. Real measured stage times are noisy (join is a
	// few milliseconds of wall clock), so a kind can need a second corrective
	// refit; the loop must land within a few rounds regardless.
	if _, err := os.Stat(profilePath); err != nil {
		t.Fatal(err)
	}
	converged := false
	var last map[string]map[string]any
	for round := 0; round < 3 && !converged; round++ {
		fc.Advance(30 * time.Second)
		for i := 0; i < 3; i++ {
			if code, body := doJSON(t, h, "POST", "/run", runBody); code != 200 {
				t.Fatalf("round %d run %d = %d %v", round, i, code, body)
			}
		}
		code, after := doJSON(t, h, "GET", "/calibration", "")
		if code != 200 {
			t.Fatalf("calibration after round %d = %d", round, code)
		}
		last = driftByKind(t, after)
		converged = true
		for _, st := range last {
			// A kind whose factor sits at a clamp bound has been corrected as
			// far as the guardrail allows; its residual drift is the clamp's
			// honest report of the distortion it refused to chase.
			opts := calib.DefaultFitOptions()
			if a := st["active_scale"].(float64); a <= opts.MinScale || a >= opts.MaxScale {
				continue
			}
			if d := st["drift_ratio"].(float64); d < 0.5 || d > 2.0 {
				converged = false
			}
		}
		if !converged {
			if _, err := a.fitter.RefitNow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !converged {
		for k, st := range last {
			t.Errorf("after 3 corrective rounds, %s drift = %v (want within [0.5, 2.0])",
				k, st["drift_ratio"])
		}
	}
	// The worst of the injected distortion is gone no matter what: train was
	// 5x+ out before the loop ran.
	if d := last["train"]["drift_ratio"].(float64); math.Abs(math.Log(d)) >=
		math.Abs(math.Log(pre["train"]["drift_ratio"].(float64))) {
		t.Errorf("train drift did not shrink: before %v after %v",
			pre["train"]["drift_ratio"], d)
	}

	// The profile surfaces on /metrics alongside the drift series.
	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	scrape := w.Body.String()
	m := regexp.MustCompile(`(?m)^vista_calib_profile_scale\{stage="train"\} (\S+)$`).
		FindStringSubmatch(scrape)
	if m == nil || m[1] == "1" {
		t.Errorf("vista_calib_profile_scale{stage=\"train\"} missing or uncorrected: %v", m)
	}
	if !regexp.MustCompile(`(?m)^vista_calib_profile_refits_total [1-9]`).MatchString(scrape) {
		t.Error("vista_calib_profile_refits_total missing or zero")
	}
}

// TestPinnedProfileNeverRefits checks the pinned mode main wires when
// -calib-profile is set without -auto-calibrate: pricing and /calibration see
// the loaded profile, but no refit ever moves or rewrites it.
func TestPinnedProfileNeverRefits(t *testing.T) {
	// A conservative pin: doubling the train estimate tightens plan choice
	// without starving the engine (an aggressive infer deflation would make
	// the optimizer over-pack replicas and genuinely OOM the run — the
	// profile really does drive the plan).
	pinned := &calib.Profile{
		Version: 1,
		Refits:  7,
		Scales:  []calib.ProfileScale{{Kind: "train", Scale: 2, Samples: 9}},
	}
	a := newAPI(serverConfig{sloP99: defaultSLOP99, calibProfile: pinned})
	h := a.handler()
	if code, body := doJSON(t, h, "POST", "/run",
		`{"model":"tiny-alexnet","dataset":"foods","layers":2,"rows":100}`); code != 200 || body["crashed"] == true {
		t.Fatalf("run = %d %v", code, body)
	}
	code, rep := doJSON(t, h, "GET", "/calibration", "")
	if code != 200 {
		t.Fatalf("calibration = %d", code)
	}
	if got := driftByKind(t, rep)["train"]["active_scale"].(float64); got != 2 {
		t.Fatalf("pinned active scale = %v, want 2", got)
	}
	// No loop was started (main only starts it under -auto-calibrate), so the
	// profile is exactly the seed.
	if got := a.fitter.Active(); got != pinned {
		t.Fatalf("active profile is not the pinned seed: %+v", got)
	}
}
