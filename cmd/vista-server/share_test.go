package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/share"
)

// shareRunResult is what one flooded /run came back with.
type shareRunResult struct {
	code      int
	runID     string
	role      string
	groupSize int
}

// postRun issues one real POST /run and decodes the sharing fields.
func postRun(t *testing.T, url, body string) shareRunResult {
	t.Helper()
	resp, err := http.Post(url+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Errorf("post: %v", err)
		return shareRunResult{}
	}
	defer resp.Body.Close()
	out := shareRunResult{code: resp.StatusCode}
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return out
	}
	var payload struct {
		RunID string `json:"run_id"`
		Share *struct {
			Role      string `json:"role"`
			GroupSize int    `json:"group_size"`
		} `json:"share"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Errorf("decode /run response: %v", err)
		return out
	}
	out.runID = payload.RunID
	if payload.Share != nil {
		out.role = payload.Share.Role
		out.groupSize = payload.Share.GroupSize
	}
	return out
}

// TestSharedRunsServeTracesPerMember floods a -share server with identical
// /run requests and checks the satellite contract: every member — leader and
// followers alike — gets its own run ID whose /trace and /timeseries resolve,
// follower traces carry shared:<layer> stages, and the share metrics
// reconcile with the admission counters.
func TestSharedRunsServeTracesPerMember(t *testing.T) {
	const rows, layers, parallel = 40, 2, 6
	price, err := core.Price(serverSpec(t, rows, layers))
	if err != nil {
		t.Fatalf("Price: %v", err)
	}
	a := newAPI(serverConfig{
		sloP99:         defaultSLOP99,
		memBudgetBytes: int64(parallel) * price, // everything fits: sharing, not admission, is under test
		queueDepth:     parallel,
		queueTimeout:   30 * time.Second,
		runHistory:     parallel,
		share:          true,
		shareWindow:    500 * time.Millisecond,
	})
	srv := httptest.NewServer(a.handler())
	defer srv.Close()

	results := make([]shareRunResult, parallel)
	var wg sync.WaitGroup
	wg.Add(parallel)
	for i := 0; i < parallel; i++ {
		go func(i int) {
			defer wg.Done()
			results[i] = postRun(t, srv.URL, runBody(rows, layers))
		}(i)
	}
	wg.Wait()

	roles := make(map[string]int)
	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("request %d = %d, want 200", i, r.code)
		}
		if r.runID == "" || r.role == "" {
			t.Fatalf("request %d response lacks run_id/share: %+v", i, r)
		}
		roles[r.role]++
	}
	// All requests land inside one window, so the whole flood shares one
	// group: exactly one leader, everyone else following.
	if roles["leader"] != 1 || roles["follower"] != parallel-1 || roles["solo"] != 0 {
		t.Errorf("roles = %v, want 1 leader + %d followers", roles, parallel-1)
	}

	// Per-member observability: every run ID resolves its own trace and time
	// series, and follower traces are labeled as attached shared stages.
	for _, r := range results {
		tr := get(t, a.handler(), "/trace/chrome?run="+r.runID)
		if tr.Code != http.StatusOK {
			t.Errorf("trace for %s (%s) = %d", r.runID, r.role, tr.Code)
			continue
		}
		ts := get(t, a.handler(), "/timeseries?run="+r.runID)
		if ts.Code != http.StatusOK {
			t.Errorf("timeseries for %s (%s) = %d", r.runID, r.role, ts.Code)
		}
		hasShared := strings.Contains(tr.Body.String(), "shared:")
		switch r.role {
		case "follower":
			if !hasShared {
				t.Errorf("follower %s trace has no shared:<layer> stage", r.runID)
			}
		case "leader":
			if hasShared {
				t.Errorf("leader %s trace claims shared stages", r.runID)
			}
		}
	}

	// Reconciliation: every admitted run took exactly one role, and the
	// shared pass saved real modeled FLOPs.
	st := a.share.Stats()
	admitted := a.admit.Stats().Admitted
	if total := st.Leaders + st.Followers + st.Solos; total != admitted {
		t.Errorf("share outcomes %d (%+v) != admitted %d", total, st, admitted)
	}
	if st.Aborted != 0 {
		t.Errorf("aborted = %d with no failures", st.Aborted)
	}
	if st.DedupFLOPs <= 0 {
		t.Errorf("dedup FLOPs = %d, want > 0", st.DedupFLOPs)
	}
	if st.OpenGroups != 0 || st.WaitingMembers != 0 || st.LiveGroups != 0 {
		t.Errorf("coordinator not drained: %+v", st)
	}

	// The Prometheus exposition carries the role-split series.
	scrape := get(t, a.handler(), "/metrics").Body.String()
	for _, want := range []string{
		`vista_share_runs_total{role="leader"} 1`,
		fmt.Sprintf(`vista_share_runs_total{role="follower"} %d`, parallel-1),
		"vista_share_dedup_flops_total",
		"vista_share_group_size",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestShareDisabledByDefault checks that without cfg.share the handler never
// builds a coordinator and /run responses carry no share block.
func TestShareDisabledByDefault(t *testing.T) {
	a := newAPI(serverConfig{sloP99: defaultSLOP99})
	if a.share != nil {
		t.Fatal("coordinator built although share is off")
	}
	code, body := doJSON(t, a.handler(), "POST", "/run", runBody(24, 1))
	if code != http.StatusOK {
		t.Fatalf("run = %d %v", code, body)
	}
	if _, ok := body["share"]; ok {
		t.Errorf("response advertises sharing while disabled: %v", body["share"])
	}
}

// TestShareMismatchedRequestsStaySolo posts two concurrent runs over
// different row counts: their data checksums differ, so they must not group.
func TestShareMismatchedRequestsStaySolo(t *testing.T) {
	a := newAPI(serverConfig{
		sloP99:      defaultSLOP99,
		share:       true,
		shareWindow: 300 * time.Millisecond,
	})
	srv := httptest.NewServer(a.handler())
	defer srv.Close()

	var wg sync.WaitGroup
	results := make([]shareRunResult, 2)
	for i, rows := range []int{24, 32} {
		wg.Add(1)
		go func(i, rows int) {
			defer wg.Done()
			results[i] = postRun(t, srv.URL, runBody(rows, 1))
		}(i, rows)
	}
	wg.Wait()

	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("request %d = %d", i, r.code)
		}
		if r.role != share.Solo.String() {
			t.Errorf("request %d sealed as %s (group size %d), want solo", i, r.role, r.groupSize)
		}
	}
	st := a.share.Stats()
	if st.Solos != 2 || st.Followers != 0 || st.Leaders != 0 {
		t.Errorf("stats = %+v, want 2 solos", st)
	}
}
