package main

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/sampler"
)

// runRecord is one completed /run's exported artifacts, keyed by the run ID
// returned in the /run response.
type runRecord struct {
	seq    uint64
	id     string
	trace  *obs.Span
	series *sampler.Recording
}

// runRing retains the last N completed runs' traces and time series for
// GET /trace/{format}?run=ID and GET /timeseries?run=ID.
//
// Sequence numbers are assigned when a run is admitted (begin) but records
// land when it completes (complete), so slow runs may finish out of order.
// "Latest" is therefore the stored record with the highest sequence — a slow
// old run completing after a newer one must not shadow it.
type runRing struct {
	mu   sync.Mutex
	cap  int
	next uint64
	recs []*runRecord // completed runs, unordered; bounded by cap
}

func newRunRing(capacity int) *runRing {
	if capacity < 1 {
		capacity = 1
	}
	return &runRing{cap: capacity}
}

// begin assigns the next run its sequence number and public ID.
func (r *runRing) begin() (uint64, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	return r.next, fmt.Sprintf("run-%d", r.next)
}

// complete stores one finished run's artifacts, evicting the oldest record
// when the ring is full.
func (r *runRing) complete(seq uint64, trace *obs.Span, series *sampler.Recording) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recs = append(r.recs, &runRecord{
		seq: seq, id: fmt.Sprintf("run-%d", seq), trace: trace, series: series,
	})
	if len(r.recs) > r.cap {
		oldest := 0
		for i, rec := range r.recs {
			if rec.seq < r.recs[oldest].seq {
				oldest = i
			}
		}
		r.recs = append(r.recs[:oldest], r.recs[oldest+1:]...)
	}
}

// get returns the record with the given public ID, or nil.
func (r *runRing) get(id string) *runRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rec := range r.recs {
		if rec.id == id {
			return rec
		}
	}
	return nil
}

// latest returns the stored record with the highest sequence number, or nil
// when no run has completed yet.
func (r *runRing) latest() *runRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best *runRecord
	for _, rec := range r.recs {
		if best == nil || rec.seq > best.seq {
			best = rec
		}
	}
	return best
}

// ids lists stored run IDs, newest first — served by the trace/timeseries
// 404 body so callers can discover what is still retained.
func (r *runRing) ids() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	recs := append([]*runRecord(nil), r.recs...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq > recs[j].seq })
	out := make([]string, len(recs))
	for i, rec := range recs {
		out[i] = rec.id
	}
	return out
}
