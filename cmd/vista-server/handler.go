package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/calib"
	"repro/internal/clock"
	"repro/internal/cnn"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/featurestore"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/share"
	"repro/internal/sim"
)

// workloadRequest is the shared request body for /explain, /simulate, /run.
type workloadRequest struct {
	// Model is a roster name; full-scale for explain/simulate, Tiny* for
	// run.
	Model string `json:"model"`
	// Dataset is "foods" or "amazon".
	Dataset string `json:"dataset"`
	// Layers is |L| (0 = the paper's default for the model).
	Layers int `json:"layers"`
	// Nodes/Cores/MemGB describe the environment (defaults: 8/8/32 for
	// explain+simulate, 2/4/32 for run).
	Nodes  int     `json:"nodes"`
	Cores  int     `json:"cores"`
	MemGB  float64 `json:"mem_gb"`
	Ignite bool    `json:"ignite"`
	// Plan overrides the logical plan for /simulate ("staged", "lazy",
	// "eager"; default staged).
	Plan string `json:"plan"`
	// Rows bounds the generated dataset for /run (default 500, max 20000).
	Rows int `json:"rows"`
	// Seed drives generation and weights for /run.
	Seed int64 `json:"seed"`
}

func (r *workloadRequest) defaults(forRun bool) {
	if r.Layers <= 0 {
		switch r.Model {
		case "alexnet", "tiny-alexnet":
			r.Layers = 4
		case "vgg16", "tiny-vgg16":
			r.Layers = 3
		default:
			r.Layers = 3
		}
	}
	if r.Nodes <= 0 {
		if forRun {
			r.Nodes = 2
		} else {
			r.Nodes = 8
		}
	}
	if r.Cores <= 0 {
		if forRun {
			r.Cores = 4
		} else {
			r.Cores = 8
		}
	}
	if r.MemGB <= 0 {
		r.MemGB = 32
	}
	if r.Rows <= 0 {
		r.Rows = 500
	}
	if r.Seed == 0 {
		r.Seed = 7
	}
}

// decisionJSON is the wire form of an optimizer decision.
type decisionJSON struct {
	CPU        int    `json:"cpu"`
	NP         int    `json:"np"`
	Join       string `json:"join"`
	Persist    string `json:"persistence"`
	MemDL      int64  `json:"mem_dl_bytes"`
	MemUser    int64  `json:"mem_user_bytes"`
	MemStorage int64  `json:"mem_storage_bytes"`
}

func toDecisionJSON(d optimizer.Decision) decisionJSON {
	return decisionJSON{
		CPU: d.CPU, NP: d.NP,
		Join: d.Join.String(), Persist: d.Pers.String(),
		MemDL: d.MemDL, MemUser: d.MemUser, MemStorage: d.MemStorage,
	}
}

// api is the service's process-wide state: the shared feature store (so
// repeated /run and /simulate requests on the same dataset+CNN reuse
// features across HTTP calls), the metrics registry behind GET /metrics,
// the admission controller gating concurrent /run execution, the retained
// run artifacts, and the content addresses of past runs.
type api struct {
	store   *featurestore.Store // nil = caching disabled
	metrics *obs.Registry
	// admit gates concurrent /run execution against a memory budget; nil
	// admits everything (admission disabled).
	admit *admission.Controller
	// share coalesces concurrent identical /run requests into one shared
	// partial-inference pass; nil runs every request solo (sharing disabled).
	share *share.Coordinator
	// runs retains recent runs' traces and time series for /trace and
	// /timeseries lookups by run ID.
	runs *runRing
	// calib accumulates estimate-vs-measured drift across runs, behind
	// GET /calibration; never nil (memory-only when no log is configured).
	calib *calib.Recorder
	// fitter holds the active calibration profile — pinned (loaded once,
	// never refitted) or floating (periodic refits when -auto-calibrate is
	// on). nil = no profile: pricing uses the paper constants. Methods on a
	// nil fitter are safe and return the identity.
	fitter *calib.Fitter
	// logger receives request-scoped server logs, tagged with run IDs so
	// log lines join against /trace?run=ID; never nil.
	logger *slog.Logger
	// sloP99 is the per-endpoint p99 latency bound (seconds) that
	// /healthz?slo=1 enforces.
	sloP99 float64
	// maxDrift, when positive, adds a calibration clause to /healthz?slo=1:
	// any stage kind whose EWMA drift exceeds it degrades health to 503.
	maxDrift float64
	// calibInferScale deliberately mis-scales the simulator's inference
	// estimates before calibration folding (0/1 = off) — the test hook that
	// proves the -max-drift clause trips end-to-end.
	calibInferScale float64
	// paths are the instrumented endpoints, for the SLO sweep.
	paths []string

	mu sync.Mutex
	// runKeys remembers each served workload's feature-store content
	// address, so /simulate can probe the store for workloads /run has
	// materialized.
	runKeys map[string]runKey
}

// runKey is the store's content-address pair for one workload.
type runKey struct {
	weightsSum, dataSum string
}

// workloadKey identifies a workload for cross-request cache probing.
func workloadKey(req *workloadRequest) string {
	return fmt.Sprintf("%s|%s|%d|%d", req.Model, req.Dataset, req.Rows, req.Seed)
}

// defaultSLOP99 is the default per-endpoint p99 latency bound: generous,
// because /run executes a real workload in-process.
const defaultSLOP99 = 60.0

// defaultRunHistory is how many completed runs' traces and time series the
// server retains for /trace and /timeseries lookups.
const defaultRunHistory = 16

// defaultShareWindow is how long the first /run of a sharing group holds the
// group open: long enough to catch a concurrent flood of identical requests,
// short enough to be negligible against a real run's execution time.
const defaultShareWindow = 150 * time.Millisecond

// serverConfig assembles everything an api instance needs. The zero value
// of every field is valid: nil store disables caching, zero budget disables
// admission, and sloP99 is taken literally (0 = every observed request
// violates the bound — callers wanting the default pass defaultSLOP99).
type serverConfig struct {
	store  *featurestore.Store
	sloP99 float64
	// memBudgetBytes caps the summed admission price of concurrent /run
	// requests (0 = admission disabled).
	memBudgetBytes int64
	// queueDepth bounds how many /run requests may wait for budget.
	queueDepth int
	// queueTimeout bounds how long one /run request may wait.
	queueTimeout time.Duration
	// runHistory is how many completed runs /trace and /timeseries retain
	// (0 = defaultRunHistory).
	runHistory int
	// share enables multi-query shared inference for concurrent identical
	// /run requests; shareWindow is the batching window (0 = the default).
	share       bool
	shareWindow time.Duration
	// clk is the time source for admission deadlines and share windows
	// (nil = the wall clock); tests inject a fake for deterministic timing.
	clk clock.Clock
	// calib is the calibration recorder (nil = a fresh memory-only one);
	// main wires a log-backed recorder so drift history survives restarts.
	calib *calib.Recorder
	// maxDrift enables the /healthz?slo=1 calibration clause (0 = off).
	maxDrift float64
	// calibInferScale is the deliberate mis-calibration test hook (0/1 = off).
	calibInferScale float64
	// calibProfile seeds the active calibration profile (nil = none). With
	// autoCalibrate false the profile is pinned: pricing uses it as loaded,
	// forever.
	calibProfile *calib.Profile
	// autoCalibrate builds a refitting Fitter (main starts its loop);
	// profile-changing refits persist to calibProfilePath when non-empty.
	autoCalibrate    bool
	calibProfilePath string
	// refitInterval is the auto-calibration cadence (0 = the default).
	refitInterval time.Duration
	// logger receives server logs (nil = discard; main wires stderr).
	logger *slog.Logger
}

// newHandler builds the service mux around a shared feature store (nil
// disables cross-run caching), with the default latency SLO and no
// admission budget.
func newHandler(store *featurestore.Store) http.Handler {
	return newAPI(serverConfig{store: store, sloP99: defaultSLOP99}).handler()
}

// newHandlerSLO is newHandler with an explicit p99 latency bound (seconds)
// for /healthz?slo=1.
func newHandlerSLO(store *featurestore.Store, sloP99 float64) http.Handler {
	return newAPI(serverConfig{store: store, sloP99: sloP99}).handler()
}

// newAPI builds the service state from cfg.
func newAPI(cfg serverConfig) *api {
	if cfg.runHistory <= 0 {
		cfg.runHistory = defaultRunHistory
	}
	a := &api{
		store:           cfg.store,
		metrics:         obs.NewRegistry(),
		sloP99:          cfg.sloP99,
		maxDrift:        cfg.maxDrift,
		calibInferScale: cfg.calibInferScale,
		runs:            newRunRing(cfg.runHistory),
		runKeys:         make(map[string]runKey),
		calib:           cfg.calib,
		logger:          cfg.logger,
	}
	if a.calib == nil {
		// Memory-only recorder: Open without a path cannot fail.
		a.calib, _ = calib.Open(calib.Config{Clock: cfg.clk})
	}
	if a.logger == nil {
		a.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	a.calib.RegisterMetrics(a.metrics)
	if cfg.calibProfile != nil || cfg.autoCalibrate {
		path := ""
		if cfg.autoCalibrate {
			path = cfg.calibProfilePath // a pinned profile is never rewritten
		}
		a.fitter = calib.NewFitter(calib.FitterConfig{
			Recorder: a.calib,
			Path:     path,
			Interval: cfg.refitInterval,
			Initial:  cfg.calibProfile,
			Clock:    cfg.clk,
		})
		a.fitter.RegisterMetrics(a.metrics)
	}
	if cfg.memBudgetBytes > 0 {
		ctrl, err := admission.New(admission.Config{
			BudgetBytes:  cfg.memBudgetBytes,
			QueueDepth:   cfg.queueDepth,
			QueueTimeout: cfg.queueTimeout,
			Metrics:      a.metrics,
			Clock:        cfg.clk,
		})
		if err != nil {
			// Unreachable with a positive budget and the flag-validated
			// depth, but fail closed rather than silently unbounded.
			panic(err)
		}
		a.admit = ctrl
	}
	if cfg.share {
		win := cfg.shareWindow
		if win <= 0 {
			win = defaultShareWindow
		}
		coord, err := share.New(share.Config{Window: win, Metrics: a.metrics, Clock: cfg.clk})
		if err != nil {
			// Unreachable with the positive window enforced above, but fail
			// closed rather than silently solo.
			panic(err)
		}
		a.share = coord
	}
	if a.store != nil {
		a.store.RegisterMetrics(a.metrics)
	}
	return a
}

// handler wires the api's routes into an instrumented mux: every route gets
// latency and status-code series, served alongside engine/store series on
// GET /metrics.
func (a *api) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", a.handleHealthz)
	mux.HandleFunc("GET /metrics", a.handleMetrics)
	mux.HandleFunc("GET /roster", handleRoster)
	mux.HandleFunc("GET /featurestore", a.handleFeatureStore)
	mux.HandleFunc("GET /trace/{format}", a.handleTrace)
	mux.HandleFunc("GET /timeseries", a.handleTimeseries)
	mux.HandleFunc("GET /calibration", a.handleCalibration)
	mux.HandleFunc("POST /explain", handleExplain)
	mux.HandleFunc("POST /simulate", a.handleSimulate)
	mux.HandleFunc("POST /run", a.handleRun)
	known := map[string]bool{
		"/healthz": true, "/metrics": true, "/roster": true,
		"/featurestore": true, "/explain": true, "/simulate": true, "/run": true,
		"/trace/chrome": true, "/trace/otlp": true, "/timeseries": true,
		"/calibration": true,
	}
	for p := range known {
		a.paths = append(a.paths, p)
	}
	sort.Strings(a.paths)
	return instrument(a.metrics, known, mux)
}

// handleFeatureStore reports the store's counters.
func (a *api) handleFeatureStore(w http.ResponseWriter, _ *http.Request) {
	if a.store == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": true,
		"dir":     a.store.Dir(),
		"stats":   a.store.Snapshot(),
	})
}

// cachedLayersFor probes the feature store for a workload /run has
// materialized before: how many of the plan's layers (bottom-up) are cached.
func (a *api) cachedLayersFor(req *workloadRequest, p *plan.Plan) int {
	if a.store == nil {
		return 0
	}
	a.mu.Lock()
	rk, ok := a.runKeys[workloadKey(req)]
	a.mu.Unlock()
	if !ok {
		return 0
	}
	layers := make([]int, len(p.Layers))
	for i, l := range p.Layers {
		layers[i] = l.LayerIndex
	}
	return a.store.CachedLayers(req.Model, rk.weightsSum, rk.dataSum, layers)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeRequest(r *http.Request, forRun bool) (*workloadRequest, error) {
	var req workloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, fmt.Errorf("bad request body: %w", err)
	}
	if req.Model == "" || req.Dataset == "" {
		return nil, errors.New("model and dataset are required")
	}
	req.defaults(forRun)
	return &req, nil
}

func handleRoster(w http.ResponseWriter, _ *http.Request) {
	type entry struct {
		Name            string   `json:"name"`
		Params          int64    `json:"params"`
		SerializedBytes int64    `json:"serialized_bytes"`
		MemBytes        int64    `json:"mem_bytes"`
		GFLOPs          float64  `json:"gflops_per_inference"`
		FeatureLayers   []string `json:"feature_layers"`
	}
	var out []entry
	for _, name := range cnn.RosterNames() {
		m, err := cnn.ByName(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		st, err := cnn.ComputeStats(m)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		e := entry{Name: name, Params: st.Params, SerializedBytes: st.SerializedBytes,
			MemBytes: st.MemBytes, GFLOPs: float64(st.TotalFLOPs) / 1e9}
		for _, fl := range m.FeatureLayers {
			e.FeatureLayers = append(e.FeatureLayers, fl.Name)
		}
		out = append(out, e)
	}
	writeJSON(w, http.StatusOK, out)
}

// buildSimWorkload assembles a simulator workload from a request.
func buildSimWorkload(req *workloadRequest, kind plan.Kind) (sim.Workload, error) {
	var ds sim.DatasetSpec
	switch req.Dataset {
	case "foods":
		ds = sim.FoodsSpec()
	case "amazon":
		ds = sim.AmazonSpec()
	default:
		return sim.Workload{}, fmt.Errorf("unknown dataset %q", req.Dataset)
	}
	return sim.NewWorkload(sim.WorkloadSpec{
		ModelName: req.Model, NumLayers: req.Layers, Dataset: ds,
		PlanKind: kind, Placement: plan.AfterJoin,
		Nodes: req.Nodes, CPUSys: req.Cores,
		MemSys:     memory.GB(req.MemGB),
		MemoryOnly: req.Ignite,
	})
}

func handleExplain(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wl, err := buildSimWorkload(req, plan.Staged)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	params := optimizer.DefaultParams()
	sizes, sSingle, sDouble, err := optimizer.IntermediateSizes(wl.Inputs, params)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := map[string]any{
		"table_size_bytes": sizes,
		"s_single_bytes":   sSingle,
		"s_double_bytes":   sDouble,
	}
	d, err := optimizer.Optimize(wl.Inputs, params)
	if err != nil {
		resp["feasible"] = false
		resp["reason"] = err.Error()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp["feasible"] = true
	resp["decision"] = toDecisionJSON(d)
	writeJSON(w, http.StatusOK, resp)
}

func (a *api) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	kind := plan.Staged
	switch req.Plan {
	case "", "staged":
	case "lazy":
		kind = plan.Lazy
	case "eager":
		kind = plan.Eager
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown plan %q", req.Plan))
		return
	}
	wl, err := buildSimWorkload(req, kind)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// A workload /run already materialized simulates against warm features:
	// cached stages cost store I/O instead of CNN inference.
	cachedLayers := a.cachedLayersFor(req, wl.Plan)
	wl.Inputs.CachedLayers = cachedLayers
	cfg, err := sim.VistaConfig(wl)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	prof := sim.PaperCluster().WithNodes(req.Nodes)
	if req.Ignite {
		prof = sim.IgniteCluster().WithNodes(req.Nodes)
	}
	prof.MemPerNode = memory.GB(req.MemGB)
	res := sim.Run(wl, cfg, prof)
	if res.Crash != nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"crashed": true, "crash": res.Crash.Error(),
			"decision": toDecisionJSON(optimizer.Decision{
				CPU: cfg.CPU, NP: cfg.NP, Join: cfg.Join, Pers: cfg.Pers}),
		})
		return
	}
	type layerJSON struct {
		Layer    string  `json:"layer"`
		InferSec float64 `json:"infer_sec"`
		TrainSec float64 `json:"train_sec"`
		SpillSec float64 `json:"spill_sec"`
	}
	var layers []layerJSON
	for _, l := range res.Layers {
		layers = append(layers, layerJSON{Layer: l.Layer, InferSec: l.InferSec,
			TrainSec: l.TrainFirstSec + l.TrainRestSec, SpillSec: l.SpillSec})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"crashed":       false,
		"total_minutes": res.TotalMin(),
		"read_sec":      res.ReadSec,
		"join_sec":      res.JoinSec,
		"spilled_bytes": res.SpilledBytes,
		"cached_layers": cachedLayers,
		"layers":        layers,
	})
}

// maxRunRows bounds /run's dataset size: this endpoint executes for real.
const maxRunRows = 20000

// runSampleEvery is the /run sampler period. Served runs are tiny-scale, so a
// short period keeps enough frames per stage for /timeseries to be useful.
const runSampleEvery = 5 * time.Millisecond

func (a *api) handleRun(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r, true)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Rows > maxRunRows {
		writeError(w, http.StatusBadRequest, fmt.Errorf("rows %d exceeds the real-execution cap %d", req.Rows, maxRunRows))
		return
	}
	var dataSpec data.Spec
	switch req.Dataset {
	case "foods":
		dataSpec = data.Foods()
	case "amazon":
		dataSpec = data.Amazon()
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown dataset %q", req.Dataset))
		return
	}
	structRows, imageRows, err := data.Generate(dataSpec.WithRows(req.Rows))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	spec := core.Spec{
		Nodes: req.Nodes, CoresPerNode: req.Cores,
		MemPerNode: memory.GB(req.MemGB),
		SystemKind: memory.SparkLike,
		ModelName:  req.Model, NumLayers: req.Layers,
		Downstream: core.DefaultDownstream(),
		StructRows: structRows, ImageRows: imageRows,
		Seed:         req.Seed,
		FeatureStore: a.store,
		Metrics:      a.metrics,
		SampleEvery:  runSampleEvery,
	}
	// The active calibration profile (pinned or auto-fitted) corrects both
	// halves of this run: plan choice + admission pricing here, and the
	// estimate side of its calibration record below (recordCalibration reads
	// the active profile again at record time).
	if p := a.fitter.Active(); p != nil {
		spec.CostScales = p.CostScales()
	}

	// Sharing: announce the run to the coalescer and wait out the batching
	// window. Identity is the content-addressed fingerprint — two requests
	// share iff they would materialize byte-identical feature tables.
	var ticket *share.Ticket
	if a.share != nil {
		if fp, ok := core.ShareFingerprint(spec); ok {
			var jerr error
			ticket, jerr = a.share.Join(r.Context(),
				share.Identity{Model: fp.Model, WeightsSum: fp.WeightsSum, DataSum: fp.DataSum},
				share.Member{NumLayers: fp.NumLayers, InferenceFLOPs: fp.InferenceFLOPs})
			if jerr != nil {
				// Cancelled while the window was open; the member withdrew.
				w.WriteHeader(statusClientClosedRequest)
				return
			}
		}
	}
	// Every path below must settle the ticket exactly once; runErr carries
	// the outcome (a failed or unstarted leader triggers follower promotion).
	var runErr error
	defer func() { ticket.Finish(runErr) }()

	role := ticket.Role()
	if role == share.Follower {
		// Followers wait for the leader BEFORE admission, holding zero
		// budget, so a queued follower can never starve its own leader.
		att, aerr := ticket.AwaitLeader(r.Context())
		if aerr != nil {
			runErr = aerr
			if errors.Is(aerr, share.ErrGroupFailed) {
				writeError(w, http.StatusInternalServerError, aerr)
			} else {
				w.WriteHeader(statusClientClosedRequest)
			}
			return
		}
		spec.FeatureSource = att.Source
		role = ticket.Role() // Leader now, if promoted
	}
	if role == share.Leader {
		spec.FeatureSource = ticket.Source() // resume a failed pass's partial progress
		spec.FeatureSink = ticket.Sink()
	}

	// Admission: price the run with the optimizer's memory model and hold
	// the charge for the run's whole lifetime. A follower attaches its
	// group leader's tables instead of opening a DL session, so it is
	// charged only the marginal (DL-free) reservation. An unpriceable spec
	// skips admission — the run itself will fail identically below, holding
	// no engine memory.
	if a.admit != nil {
		priceFn := core.Price
		if role == share.Follower {
			priceFn = core.PriceFollower
		}
		if price, perr := priceFn(spec); perr == nil {
			grant, aerr := a.admit.Admit(r.Context(), price)
			if aerr != nil {
				runErr = aerr
				a.writeAdmissionError(w, aerr)
				return
			}
			defer grant.Release()
		}
	}

	ticket.Start()
	seq, runID := a.runs.begin()
	res, err := core.RunContext(r.Context(), spec)
	runErr = err
	if err != nil {
		if r.Context().Err() != nil {
			// The client is gone; nobody reads this response. Surface a 499
			// in the status-code series rather than a fake success.
			a.logger.Info("run abandoned by client", "run_id", runID)
			w.WriteHeader(statusClientClosedRequest)
			return
		}
		if oom, ok := memory.IsOOM(err); ok {
			a.logger.Warn("run crashed", "run_id", runID, "model", req.Model,
				"dataset", req.Dataset, "rows", req.Rows, "err", oom)
			writeJSON(w, http.StatusOK, map[string]any{"crashed": true, "crash": oom.Error()})
			return
		}
		a.logger.Warn("run failed", "run_id", runID, "model", req.Model,
			"dataset", req.Dataset, "rows", req.Rows, "err", err)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	type layerJSON struct {
		Layer      string  `json:"layer"`
		FeatureDim int     `json:"feature_dim"`
		TrainF1    float64 `json:"train_f1"`
		TestF1     float64 `json:"test_f1"`
	}
	var layers []layerJSON
	for _, l := range res.Layers {
		layers = append(layers, layerJSON{Layer: l.LayerName, FeatureDim: l.FeatureDim,
			TrainF1: l.Train.F1, TestF1: l.Test.F1})
	}
	a.mu.Lock()
	if res.Cache.Enabled {
		a.runKeys[workloadKey(req)] = runKey{
			weightsSum: res.Cache.WeightsSum, dataSum: res.Cache.DataSum,
		}
	}
	a.mu.Unlock()
	a.runs.complete(seq, res.Trace, res.Series)
	a.recordCalibration(req, &spec, res, runID)
	a.logger.Info("run complete", "run_id", runID, "model", req.Model,
		"dataset", req.Dataset, "rows", req.Rows,
		"elapsed_ms", res.Elapsed.Milliseconds(),
		"cached_stages", res.Cache.StagesFromCache)
	resp := map[string]any{
		"crashed":    false,
		"run_id":     runID,
		"decision":   toDecisionJSON(res.Decision),
		"layers":     layers,
		"elapsed_ms": res.Elapsed.Milliseconds(),
		"cache":      res.Cache,
	}
	if ticket != nil {
		resp["share"] = map[string]any{
			"role":       ticket.Role().String(),
			"group_size": ticket.GroupSize(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusClientClosedRequest is nginx's conventional code for "the client
// cancelled before a response was written" — never seen by a live client,
// but it keeps the vista_http_requests_total code label honest.
const statusClientClosedRequest = 499

// writeAdmissionError maps admission failures onto HTTP: a queue deadline is
// retryable (429 + Retry-After), while a full queue or an unpayable price is
// plain overload (503). A cancelled wait gets the 499 treatment above.
//
// The Retry-After hint comes from the controller's live state (recent queue
// waits scaled by occupancy), not a static constant: a fixed hint tells every
// rejected client to come back at the same instant, so each rejection wave
// re-arrives as a synchronized herd that rejects again. A load-dependent hint
// spreads the waves out as congestion evolves.
func (a *api) writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, admission.ErrDeadline):
		retry := int64(math.Ceil(a.admit.RetryHint().Seconds()))
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(retry, 10))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, admission.ErrQueueFull), errors.Is(err, admission.ErrOversize):
		writeError(w, http.StatusServiceUnavailable, err)
	default: // context cancellation while queued: the client is gone
		w.WriteHeader(statusClientClosedRequest)
	}
}
