package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/cnn"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/featurestore"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/obs/sampler"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sim"
)

// workloadRequest is the shared request body for /explain, /simulate, /run.
type workloadRequest struct {
	// Model is a roster name; full-scale for explain/simulate, Tiny* for
	// run.
	Model string `json:"model"`
	// Dataset is "foods" or "amazon".
	Dataset string `json:"dataset"`
	// Layers is |L| (0 = the paper's default for the model).
	Layers int `json:"layers"`
	// Nodes/Cores/MemGB describe the environment (defaults: 8/8/32 for
	// explain+simulate, 2/4/32 for run).
	Nodes  int     `json:"nodes"`
	Cores  int     `json:"cores"`
	MemGB  float64 `json:"mem_gb"`
	Ignite bool    `json:"ignite"`
	// Plan overrides the logical plan for /simulate ("staged", "lazy",
	// "eager"; default staged).
	Plan string `json:"plan"`
	// Rows bounds the generated dataset for /run (default 500, max 20000).
	Rows int `json:"rows"`
	// Seed drives generation and weights for /run.
	Seed int64 `json:"seed"`
}

func (r *workloadRequest) defaults(forRun bool) {
	if r.Layers <= 0 {
		switch r.Model {
		case "alexnet", "tiny-alexnet":
			r.Layers = 4
		case "vgg16", "tiny-vgg16":
			r.Layers = 3
		default:
			r.Layers = 3
		}
	}
	if r.Nodes <= 0 {
		if forRun {
			r.Nodes = 2
		} else {
			r.Nodes = 8
		}
	}
	if r.Cores <= 0 {
		if forRun {
			r.Cores = 4
		} else {
			r.Cores = 8
		}
	}
	if r.MemGB <= 0 {
		r.MemGB = 32
	}
	if r.Rows <= 0 {
		r.Rows = 500
	}
	if r.Seed == 0 {
		r.Seed = 7
	}
}

// decisionJSON is the wire form of an optimizer decision.
type decisionJSON struct {
	CPU        int    `json:"cpu"`
	NP         int    `json:"np"`
	Join       string `json:"join"`
	Persist    string `json:"persistence"`
	MemDL      int64  `json:"mem_dl_bytes"`
	MemUser    int64  `json:"mem_user_bytes"`
	MemStorage int64  `json:"mem_storage_bytes"`
}

func toDecisionJSON(d optimizer.Decision) decisionJSON {
	return decisionJSON{
		CPU: d.CPU, NP: d.NP,
		Join: d.Join.String(), Persist: d.Pers.String(),
		MemDL: d.MemDL, MemUser: d.MemUser, MemStorage: d.MemStorage,
	}
}

// api is the service's process-wide state: the shared feature store (so
// repeated /run and /simulate requests on the same dataset+CNN reuse
// features across HTTP calls), the metrics registry behind GET /metrics,
// and the content addresses of past runs.
type api struct {
	store   *featurestore.Store // nil = caching disabled
	metrics *obs.Registry
	// sloP99 is the per-endpoint p99 latency bound (seconds) that
	// /healthz?slo=1 enforces.
	sloP99 float64
	// paths are the instrumented endpoints, for the SLO sweep.
	paths []string

	mu sync.Mutex
	// runKeys remembers each served workload's feature-store content
	// address, so /simulate can probe the store for workloads /run has
	// materialized.
	runKeys map[string]runKey
	// lastTrace/lastSeries hold the most recent successful /run's span tree
	// and sampled time series, served by GET /trace/{format} and
	// GET /timeseries.
	lastTrace  *obs.Span
	lastSeries *sampler.Recording
}

// runKey is the store's content-address pair for one workload.
type runKey struct {
	weightsSum, dataSum string
}

// workloadKey identifies a workload for cross-request cache probing.
func workloadKey(req *workloadRequest) string {
	return fmt.Sprintf("%s|%s|%d|%d", req.Model, req.Dataset, req.Rows, req.Seed)
}

// defaultSLOP99 is the default per-endpoint p99 latency bound: generous,
// because /run executes a real workload in-process.
const defaultSLOP99 = 60.0

// newHandler builds the service mux around a shared feature store (nil
// disables cross-run caching), with the default latency SLO.
func newHandler(store *featurestore.Store) http.Handler {
	return newHandlerSLO(store, defaultSLOP99)
}

// newHandlerSLO is newHandler with an explicit p99 latency bound (seconds)
// for /healthz?slo=1. Every route is instrumented with latency and
// status-code series, served alongside engine/store series on GET /metrics.
func newHandlerSLO(store *featurestore.Store, sloP99 float64) http.Handler {
	a := &api{store: store, metrics: obs.NewRegistry(), sloP99: sloP99,
		runKeys: make(map[string]runKey)}
	if store != nil {
		store.RegisterMetrics(a.metrics)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", a.handleHealthz)
	mux.HandleFunc("GET /metrics", a.handleMetrics)
	mux.HandleFunc("GET /roster", handleRoster)
	mux.HandleFunc("GET /featurestore", a.handleFeatureStore)
	mux.HandleFunc("GET /trace/{format}", a.handleTrace)
	mux.HandleFunc("GET /timeseries", a.handleTimeseries)
	mux.HandleFunc("POST /explain", handleExplain)
	mux.HandleFunc("POST /simulate", a.handleSimulate)
	mux.HandleFunc("POST /run", a.handleRun)
	known := map[string]bool{
		"/healthz": true, "/metrics": true, "/roster": true,
		"/featurestore": true, "/explain": true, "/simulate": true, "/run": true,
		"/trace/chrome": true, "/trace/otlp": true, "/timeseries": true,
	}
	for p := range known {
		a.paths = append(a.paths, p)
	}
	sort.Strings(a.paths)
	return instrument(a.metrics, known, mux)
}

// handleFeatureStore reports the store's counters.
func (a *api) handleFeatureStore(w http.ResponseWriter, _ *http.Request) {
	if a.store == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": true,
		"dir":     a.store.Dir(),
		"stats":   a.store.Snapshot(),
	})
}

// cachedLayersFor probes the feature store for a workload /run has
// materialized before: how many of the plan's layers (bottom-up) are cached.
func (a *api) cachedLayersFor(req *workloadRequest, p *plan.Plan) int {
	if a.store == nil {
		return 0
	}
	a.mu.Lock()
	rk, ok := a.runKeys[workloadKey(req)]
	a.mu.Unlock()
	if !ok {
		return 0
	}
	layers := make([]int, len(p.Layers))
	for i, l := range p.Layers {
		layers[i] = l.LayerIndex
	}
	return a.store.CachedLayers(req.Model, rk.weightsSum, rk.dataSum, layers)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeRequest(r *http.Request, forRun bool) (*workloadRequest, error) {
	var req workloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, fmt.Errorf("bad request body: %w", err)
	}
	if req.Model == "" || req.Dataset == "" {
		return nil, errors.New("model and dataset are required")
	}
	req.defaults(forRun)
	return &req, nil
}

func handleRoster(w http.ResponseWriter, _ *http.Request) {
	type entry struct {
		Name            string   `json:"name"`
		Params          int64    `json:"params"`
		SerializedBytes int64    `json:"serialized_bytes"`
		MemBytes        int64    `json:"mem_bytes"`
		GFLOPs          float64  `json:"gflops_per_inference"`
		FeatureLayers   []string `json:"feature_layers"`
	}
	var out []entry
	for _, name := range cnn.RosterNames() {
		m, err := cnn.ByName(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		st, err := cnn.ComputeStats(m)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		e := entry{Name: name, Params: st.Params, SerializedBytes: st.SerializedBytes,
			MemBytes: st.MemBytes, GFLOPs: float64(st.TotalFLOPs) / 1e9}
		for _, fl := range m.FeatureLayers {
			e.FeatureLayers = append(e.FeatureLayers, fl.Name)
		}
		out = append(out, e)
	}
	writeJSON(w, http.StatusOK, out)
}

// buildSimWorkload assembles a simulator workload from a request.
func buildSimWorkload(req *workloadRequest, kind plan.Kind) (sim.Workload, error) {
	var ds sim.DatasetSpec
	switch req.Dataset {
	case "foods":
		ds = sim.FoodsSpec()
	case "amazon":
		ds = sim.AmazonSpec()
	default:
		return sim.Workload{}, fmt.Errorf("unknown dataset %q", req.Dataset)
	}
	return sim.NewWorkload(sim.WorkloadSpec{
		ModelName: req.Model, NumLayers: req.Layers, Dataset: ds,
		PlanKind: kind, Placement: plan.AfterJoin,
		Nodes: req.Nodes, CPUSys: req.Cores,
		MemSys:     memory.GB(req.MemGB),
		MemoryOnly: req.Ignite,
	})
}

func handleExplain(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wl, err := buildSimWorkload(req, plan.Staged)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	params := optimizer.DefaultParams()
	sizes, sSingle, sDouble, err := optimizer.IntermediateSizes(wl.Inputs, params)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := map[string]any{
		"table_size_bytes": sizes,
		"s_single_bytes":   sSingle,
		"s_double_bytes":   sDouble,
	}
	d, err := optimizer.Optimize(wl.Inputs, params)
	if err != nil {
		resp["feasible"] = false
		resp["reason"] = err.Error()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp["feasible"] = true
	resp["decision"] = toDecisionJSON(d)
	writeJSON(w, http.StatusOK, resp)
}

func (a *api) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	kind := plan.Staged
	switch req.Plan {
	case "", "staged":
	case "lazy":
		kind = plan.Lazy
	case "eager":
		kind = plan.Eager
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown plan %q", req.Plan))
		return
	}
	wl, err := buildSimWorkload(req, kind)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// A workload /run already materialized simulates against warm features:
	// cached stages cost store I/O instead of CNN inference.
	cachedLayers := a.cachedLayersFor(req, wl.Plan)
	wl.Inputs.CachedLayers = cachedLayers
	cfg, err := sim.VistaConfig(wl)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	prof := sim.PaperCluster().WithNodes(req.Nodes)
	if req.Ignite {
		prof = sim.IgniteCluster().WithNodes(req.Nodes)
	}
	prof.MemPerNode = memory.GB(req.MemGB)
	res := sim.Run(wl, cfg, prof)
	if res.Crash != nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"crashed": true, "crash": res.Crash.Error(),
			"decision": toDecisionJSON(optimizer.Decision{
				CPU: cfg.CPU, NP: cfg.NP, Join: cfg.Join, Pers: cfg.Pers}),
		})
		return
	}
	type layerJSON struct {
		Layer    string  `json:"layer"`
		InferSec float64 `json:"infer_sec"`
		TrainSec float64 `json:"train_sec"`
		SpillSec float64 `json:"spill_sec"`
	}
	var layers []layerJSON
	for _, l := range res.Layers {
		layers = append(layers, layerJSON{Layer: l.Layer, InferSec: l.InferSec,
			TrainSec: l.TrainFirstSec + l.TrainRestSec, SpillSec: l.SpillSec})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"crashed":       false,
		"total_minutes": res.TotalMin(),
		"read_sec":      res.ReadSec,
		"join_sec":      res.JoinSec,
		"spilled_bytes": res.SpilledBytes,
		"cached_layers": cachedLayers,
		"layers":        layers,
	})
}

// maxRunRows bounds /run's dataset size: this endpoint executes for real.
const maxRunRows = 20000

// runSampleEvery is the /run sampler period. Served runs are tiny-scale, so a
// short period keeps enough frames per stage for /timeseries to be useful.
const runSampleEvery = 5 * time.Millisecond

func (a *api) handleRun(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r, true)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Rows > maxRunRows {
		writeError(w, http.StatusBadRequest, fmt.Errorf("rows %d exceeds the real-execution cap %d", req.Rows, maxRunRows))
		return
	}
	var spec data.Spec
	switch req.Dataset {
	case "foods":
		spec = data.Foods()
	case "amazon":
		spec = data.Amazon()
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown dataset %q", req.Dataset))
		return
	}
	structRows, imageRows, err := data.Generate(spec.WithRows(req.Rows))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	res, err := core.Run(core.Spec{
		Nodes: req.Nodes, CoresPerNode: req.Cores,
		MemPerNode: memory.GB(req.MemGB),
		SystemKind: memory.SparkLike,
		ModelName:  req.Model, NumLayers: req.Layers,
		Downstream: core.DefaultDownstream(),
		StructRows: structRows, ImageRows: imageRows,
		Seed:         req.Seed,
		FeatureStore: a.store,
		Metrics:      a.metrics,
		SampleEvery:  runSampleEvery,
	})
	if err != nil {
		if oom, ok := memory.IsOOM(err); ok {
			writeJSON(w, http.StatusOK, map[string]any{"crashed": true, "crash": oom.Error()})
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	type layerJSON struct {
		Layer      string  `json:"layer"`
		FeatureDim int     `json:"feature_dim"`
		TrainF1    float64 `json:"train_f1"`
		TestF1     float64 `json:"test_f1"`
	}
	var layers []layerJSON
	for _, l := range res.Layers {
		layers = append(layers, layerJSON{Layer: l.LayerName, FeatureDim: l.FeatureDim,
			TrainF1: l.Train.F1, TestF1: l.Test.F1})
	}
	a.mu.Lock()
	if res.Cache.Enabled {
		a.runKeys[workloadKey(req)] = runKey{
			weightsSum: res.Cache.WeightsSum, dataSum: res.Cache.DataSum,
		}
	}
	a.lastTrace = res.Trace
	a.lastSeries = res.Series
	a.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"crashed":    false,
		"decision":   toDecisionJSON(res.Decision),
		"layers":     layers,
		"elapsed_ms": res.Elapsed.Milliseconds(),
		"cache":      res.Cache,
	})
}
