package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExhibitsSelection(t *testing.T) {
	var b strings.Builder
	if err := runExhibits(&b, "fig6,table3", 200, 150); err != nil {
		t.Fatalf("runExhibits: %v", err)
	}
	out := b.String()
	for _, want := range []string{"==== fig6", "==== table3", "Figure 6", "Table 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "==== fig9") {
		t.Error("unselected exhibit ran")
	}
}

func TestRunExhibitsAllSimulatorOnes(t *testing.T) {
	// Everything except the slow real-engine exhibits (fig8, fig15).
	var b strings.Builder
	err := runExhibits(&b, "fig7a,fig7b,fig9,fig10,fig11,fig12,fig16,table2,fig17", 0, 0)
	if err != nil {
		t.Fatalf("runExhibits: %v", err)
	}
	for _, want := range []string{"Figure 7(A)", "Figure 7(B)", "Figure 9", "Figure 10",
		"Figure 11", "Figure 12", "Figure 16", "Table 2", "Figure 17"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunExhibitsCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := runExhibitsCSV(&b, "fig6,fig9", 0, 0, dir); err != nil {
		t.Fatalf("runExhibitsCSV: %v", err)
	}
	for _, name := range []string{"fig6.csv", "fig9.csv"} {
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(string(blob), ",") {
			t.Errorf("%s does not look like CSV", name)
		}
	}
}

func TestRunExhibitsUnknownName(t *testing.T) {
	var b strings.Builder
	if err := runExhibits(&b, "nonexistent", 0, 0); err != nil {
		t.Fatalf("unknown selection should be a no-op, got %v", err)
	}
	if b.Len() != 0 {
		t.Error("unknown selection produced output")
	}
}
