// Command vista-bench regenerates the paper's evaluation: every figure and
// table of Section 5 and Appendices A–C, printed as text tables. Select
// specific exhibits with -only (comma-separated), e.g.:
//
//	vista-bench -only fig6,table3
//	vista-bench -fig8-rows 2000 > results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

type exhibit struct {
	name string
	run  func() (string, experiments.CSVExporter, error)
}

func main() {
	var (
		only     = flag.String("only", "", "comma-separated exhibits to run (default: all): fig6,fig7a,fig7b,fig8,fig9,fig10,fig11,fig12,fig15,fig16,table2,table3,fig17,sec52,admission,share,calib,verify")
		fig8Rows = flag.Int("fig8-rows", 1000, "rows per dataset for the real-engine accuracy experiment")
		fig15Rws = flag.Int("fig15-rows", 300, "rows for the real-engine size-estimation experiment")
		csvDir   = flag.String("csv", "", "also write one plot-ready CSV per exhibit into this directory")
	)
	flag.Parse()

	if err := runExhibitsCSV(os.Stdout, *only, *fig8Rows, *fig15Rws, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "vista-bench:", err)
		os.Exit(1)
	}
}

// runExhibits runs the selected exhibits (all when only is empty), writing
// rendered tables to w.
func runExhibits(w io.Writer, only string, fig8Rows, fig15Rows int) error {
	return runExhibitsCSV(w, only, fig8Rows, fig15Rows, "")
}

// runExhibitsCSV is runExhibits with optional per-exhibit CSV output.
func runExhibitsCSV(w io.Writer, only string, fig8Rows, fig15Rows int, csvDir string) error {
	exhibits := []exhibit{
		{"fig6", func() (string, experiments.CSVExporter, error) {
			r, err := experiments.Figure6()
			return render(r, err)
		}},
		{"fig7a", func() (string, experiments.CSVExporter, error) {
			r, err := experiments.Figure7A()
			return render(r, err)
		}},
		{"fig7b", func() (string, experiments.CSVExporter, error) {
			r, err := experiments.Figure7B()
			return render(r, err)
		}},
		{"fig8", func() (string, experiments.CSVExporter, error) {
			r, err := experiments.Figure8(experiments.Figure8Options{Rows: fig8Rows})
			return render(r, err)
		}},
		{"fig9", func() (string, experiments.CSVExporter, error) { return renderSweeps(experiments.Figure9()) }},
		{"fig10", func() (string, experiments.CSVExporter, error) { return renderSweeps(experiments.Figure10()) }},
		{"fig11", func() (string, experiments.CSVExporter, error) {
			r, err := experiments.Figure11()
			return render(r, err)
		}},
		{"fig12", func() (string, experiments.CSVExporter, error) {
			r, err := experiments.Figure12()
			return render(r, err)
		}},
		{"fig15", func() (string, experiments.CSVExporter, error) {
			r, err := experiments.Figure15(fig15Rows)
			return render(r, err)
		}},
		{"fig16", func() (string, experiments.CSVExporter, error) {
			r, err := experiments.Figure16()
			return render(r, err)
		}},
		{"table2", func() (string, experiments.CSVExporter, error) { r, err := experiments.Table2(); return render(r, err) }},
		{"table3", func() (string, experiments.CSVExporter, error) { r, err := experiments.Table3(); return render(r, err) }},
		{"fig17", func() (string, experiments.CSVExporter, error) {
			r, err := experiments.Figure17()
			return render(r, err)
		}},
		{"sec52", func() (string, experiments.CSVExporter, error) {
			r, err := experiments.Section52(0)
			if err != nil {
				return "", nil, err
			}
			return r.Render(), nil, nil
		}},
		{"admission", func() (string, experiments.CSVExporter, error) {
			r, err := experiments.AdmissionThroughput(0)
			if err != nil {
				return "", nil, err
			}
			return r.Render(), r, nil
		}},
		{"share", func() (string, experiments.CSVExporter, error) {
			r, err := experiments.ShareThroughput(0)
			if err != nil {
				return "", nil, err
			}
			return r.Render(), r, nil
		}},
		{"calib", func() (string, experiments.CSVExporter, error) {
			r, err := experiments.CalibrationConvergence()
			if err != nil {
				return "", nil, err
			}
			return r.Render(), r, nil
		}},
		{"verify", func() (string, experiments.CSVExporter, error) {
			r, err := experiments.VerifyClaims()
			if err != nil {
				return "", nil, err
			}
			return r.Render(), nil, nil
		}},
	}

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
	}
	selected := map[string]bool{}
	if only != "" {
		for _, n := range strings.Split(only, ",") {
			selected[strings.TrimSpace(strings.ToLower(n))] = true
		}
	}
	var firstErr error
	for _, e := range exhibits {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		start := time.Now()
		out, exporter, err := e.run()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", e.name, err)
			}
			continue
		}
		fmt.Fprintf(w, "==== %s (%v) ====\n\n%s\n", e.name, time.Since(start).Round(time.Millisecond), out)
		if csvDir != "" && exporter != nil {
			if err := writeCSVFile(filepath.Join(csvDir, e.name+".csv"), exporter); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func writeCSVFile(path string, e experiments.CSVExporter) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return experiments.WriteCSV(f, e)
}

// renderer is anything with both a Render and a CSV view.
type renderer interface {
	Render() string
	experiments.CSVExporter
}

func render(r renderer, err error) (string, experiments.CSVExporter, error) {
	if err != nil {
		return "", nil, err
	}
	return r.Render(), r, nil
}

func renderSweeps(sweeps []*experiments.SweepResult, err error) (string, experiments.CSVExporter, error) {
	if err != nil {
		return "", nil, err
	}
	var b strings.Builder
	for _, s := range sweeps {
		b.WriteString(s.Render())
		b.WriteByte('\n')
	}
	return b.String(), experiments.SweepSet(sweeps), nil
}
