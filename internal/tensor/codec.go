package tensor

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrCorrupt indicates a malformed encoded tensor.
var ErrCorrupt = errors.New("tensor: corrupt encoding")

// Encode serializes a tensor into a flate-compressed binary blob:
// rank, dims, then float32 data, all little-endian. It is the "raw image"
// format of this reproduction — like JPEG in the paper, the on-disk image is
// much smaller than its decoded tensor (Section 1.1).
func Encode(t *Tensor) ([]byte, error) {
	shape := t.Shape()
	raw := make([]byte, 0, 4+4*len(shape)+4*len(t.Data()))
	var scratch [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:], v)
		raw = append(raw, scratch[:]...)
	}
	put(uint32(len(shape)))
	for _, d := range shape {
		put(uint32(d))
	}
	for _, v := range t.Data() {
		put(math.Float32bits(v))
	}
	var out bytes.Buffer
	w, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("tensor: encode: %w", err)
	}
	if _, err := w.Write(raw); err != nil {
		return nil, fmt.Errorf("tensor: encode: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("tensor: encode: %w", err)
	}
	return out.Bytes(), nil
}

// Decode reverses Encode.
func Decode(blob []byte) (*Tensor, error) {
	r := flate.NewReader(bytes.NewReader(blob))
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(raw) < 4 {
		return nil, ErrCorrupt
	}
	rank := binary.LittleEndian.Uint32(raw)
	if rank > 8 || len(raw) < int(4+4*rank) {
		return nil, ErrCorrupt
	}
	shape := make(Shape, rank)
	off := 4
	elems := 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(raw[off:]))
		off += 4
		elems *= shape[i]
	}
	if !shape.Valid() || len(raw) != off+4*elems {
		return nil, ErrCorrupt
	}
	data := make([]float32, elems)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[off:]))
		off += 4
	}
	return FromSlice(data, shape...)
}
