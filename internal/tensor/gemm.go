package tensor

import (
	"fmt"
	"sync/atomic"

	"repro/internal/faultinject"
)

// This file is the GEMM convolution hot path: Conv2D lowers to an im2col
// column-buffer build plus a cache-blocked, register-blocked sgemm whose
// output-channel row tiles run on the bounded worker pool (parallel.go). The
// direct-loop kernel in ops.go stays behind the UseDirect escape hatch as the
// reference implementation, and the parity suite in gemm_test.go pins the two
// together permanently.
//
// Layout: for a conv with C_in input channels and a K×K kernel over an
// H_out×W_out output, the column buffer is a (C_in·K·K) × (H_out·W_out)
// row-major matrix whose row r = (ic, ky, kx) holds, for every output pixel
// (oy, ox), the input value at channel ic, position (oy·stride−pad+ky,
// ox·stride−pad+kx), or 0 outside the input. The filter tensor
// [out][in][kh][kw] flattens to exactly the matching (C_out) × (C_in·K·K)
// row-major A matrix, so C = A·B + bias lands directly in CHW output order
// with no post-pass.

// FaultConvCol guards the im2col column-buffer acquisition — the one large
// scratch allocation each GEMM convolution makes.
const FaultConvCol = "tensor/conv.col"

// useDirect selects the reference direct-loop convolution kernel.
var useDirect atomic.Bool

// SetUseDirect toggles the escape hatch that routes Conv2D through the
// reference direct-loop kernel instead of the im2col+GEMM path. It exists so
// parity can be asserted forever and so operators can fall back if a platform
// misbehaves; it is not a performance mode.
func SetUseDirect(v bool) { useDirect.Store(v) }

// UseDirect reports whether the direct reference kernel is selected.
func UseDirect() bool { return useDirect.Load() }

// kcBlock is the K-dimension cache block of the sgemm: one block of B
// (kcBlock rows × N columns) is streamed repeatedly against every row tile,
// so it is sized to sit in L2 for typical output widths.
const kcBlock = 256

// conv2DGEMM computes the convolution via im2col + blocked GEMM. Arguments
// are pre-validated by Conv2D.
func conv2DGEMM(in *Tensor, spec Conv2DSpec, weights, bias []float32, outShape Shape) (*Tensor, error) {
	inH, inW := in.Shape()[1], in.Shape()[2]
	outH, outW := outShape[1], outShape[2]
	m := spec.OutChannels
	kd := spec.InChannels * spec.Kernel * spec.Kernel
	n := outH * outW

	var col []float32
	if spec.Kernel == 1 && spec.Stride == 1 && spec.Pad == 0 {
		// 1×1 stride-1 convolution: the column matrix is the input itself.
		col = in.Data()
	} else {
		if err := faultinject.Hit(FaultConvCol); err != nil {
			return nil, fmt.Errorf("conv2d column buffer (%d floats): %w", kd*n, err)
		}
		col = getSlab(kd * n)
		defer putSlab(col)
		im2col(in.Data(), col, spec, inH, inW, outH, outW)
	}

	out := newUninit(outShape...)
	sgemm(m, n, kd, weights, col, bias, out.Data())
	return out, nil
}

// im2col fills the (C_in·K·K) × (outH·outW) column matrix for the given conv
// geometry. Every element of col[:kd*n] is written (padding cells as zeros),
// so the destination may be a dirty slab.
func im2col(src, col []float32, spec Conv2DSpec, inH, inW, outH, outW int) {
	k, stride, pad := spec.Kernel, spec.Stride, spec.Pad
	n := outH * outW
	r := 0
	for ic := 0; ic < spec.InChannels; ic++ {
		sBase := ic * inH * inW
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				dstRow := col[r*n : (r+1)*n]
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride - pad + ky
					dst := dstRow[oy*outW : (oy+1)*outW]
					if iy < 0 || iy >= inH {
						zeroFill(dst)
						continue
					}
					srcRow := src[sBase+iy*inW : sBase+(iy+1)*inW]
					if stride == 1 {
						// Valid ox satisfy 0 <= ox - pad + kx < inW.
						lo := pad - kx
						if lo < 0 {
							lo = 0
						}
						hi := inW - 1 + pad - kx
						if hi > outW-1 {
							hi = outW - 1
						}
						zeroFill(dst[:min(lo, outW)])
						if hi >= lo {
							copy(dst[lo:hi+1], srcRow[lo-pad+kx:])
						}
						if hi+1 < outW {
							zeroFill(dst[hi+1:])
						}
						continue
					}
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= inW {
							dst[ox] = 0
						} else {
							dst[ox] = srcRow[ix]
						}
					}
				}
				r++
			}
		}
	}
}

func zeroFill(s []float32) {
	for i := range s {
		s[i] = 0
	}
}

// sgemm computes C = A·B + bias, where A is m×k row-major, B is k×n
// row-major, C is m×n row-major, and bias[i] initializes every element of C
// row i. Row tiles of C are distributed over the bounded worker pool; within
// a tile the kernel is register-blocked 4 output rows at a time and
// cache-blocked over k in kcBlock chunks.
func sgemm(m, n, k int, a, b, bias, c []float32) {
	const mr = 4
	tiles := (m + mr - 1) / mr
	ParallelFor(tiles, func(t int) {
		r0 := t * mr
		r1 := r0 + mr
		if r1 > m {
			r1 = m
		}
		sgemmTile(r0, r1, n, k, a, b, bias, c)
	})
}

// sgemmTile computes C rows [r0, r1) (at most 4 rows).
func sgemmTile(r0, r1, n, k int, a, b, bias, c []float32) {
	for r := r0; r < r1; r++ {
		dst := c[r*n : (r+1)*n]
		bv := bias[r]
		for j := range dst {
			dst[j] = bv
		}
	}
	for k0 := 0; k0 < k; k0 += kcBlock {
		k1 := k0 + kcBlock
		if k1 > k {
			k1 = k
		}
		switch r1 - r0 {
		case 4:
			axpy4(r0, n, k0, k1, a[:], b, c, k)
		case 3:
			axpy1(r0+2, n, k0, k1, a, b, c, k)
			axpy2(r0, n, k0, k1, a, b, c, k)
		case 2:
			axpy2(r0, n, k0, k1, a, b, c, k)
		case 1:
			axpy1(r0, n, k0, k1, a, b, c, k)
		}
	}
}

// axpy4 accumulates four C rows against the B block [k0,k1): the classic
// outer-product microkernel — four A scalars are broadcast against one
// streamed B row, updating four C rows per pass, which amortizes each B load
// across four multiply-adds.
func axpy4(r, n, k0, k1 int, a, b, c []float32, lda int) {
	c0 := c[r*n : r*n+n]
	c1 := c[(r+1)*n : (r+1)*n+n]
	c2 := c[(r+2)*n : (r+2)*n+n]
	c3 := c[(r+3)*n : (r+3)*n+n]
	for kk := k0; kk < k1; kk++ {
		a0 := a[r*lda+kk]
		a1 := a[(r+1)*lda+kk]
		a2 := a[(r+2)*lda+kk]
		a3 := a[(r+3)*lda+kk]
		brow := b[kk*n : kk*n+n]
		_ = c0[len(brow)-1]
		_ = c1[len(brow)-1]
		_ = c2[len(brow)-1]
		_ = c3[len(brow)-1]
		for j, v := range brow {
			c0[j] += a0 * v
			c1[j] += a1 * v
			c2[j] += a2 * v
			c3[j] += a3 * v
		}
	}
}

func axpy2(r, n, k0, k1 int, a, b, c []float32, lda int) {
	c0 := c[r*n : r*n+n]
	c1 := c[(r+1)*n : (r+1)*n+n]
	for kk := k0; kk < k1; kk++ {
		a0 := a[r*lda+kk]
		a1 := a[(r+1)*lda+kk]
		brow := b[kk*n : kk*n+n]
		_ = c0[len(brow)-1]
		_ = c1[len(brow)-1]
		for j, v := range brow {
			c0[j] += a0 * v
			c1[j] += a1 * v
		}
	}
}

func axpy1(r, n, k0, k1 int, a, b, c []float32, lda int) {
	c0 := c[r*n : r*n+n]
	for kk := k0; kk < k1; kk++ {
		a0 := a[r*lda+kk]
		if a0 == 0 {
			continue
		}
		brow := b[kk*n : kk*n+n]
		_ = c0[len(brow)-1]
		for j, v := range brow {
			c0[j] += a0 * v
		}
	}
}
