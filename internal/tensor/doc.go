// Package tensor implements dense float32 tensors and the tensor operations
// needed for CNN inference, following the data model of Vista (SIGMOD 2020)
// Section 3.1: Tensor (Definition 3.1), TensorList (Definition 3.2), and
// TensorOp-style functions (Definition 3.3) such as flattening
// (Definition 3.5) and pooling.
//
// Tensors are stored row-major. Image tensors use CHW layout
// (channels, height, width), matching the convention used throughout
// internal/cnn. SizeBytes reports a tensor's accounting size — the number
// the engine's Storage/User Memory pools charge when tensors flow through
// tables — and Encode/Decode give tensors a compact binary form for
// feature-store persistence.
package tensor
