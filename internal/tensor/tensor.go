package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Shape is the size of each dimension of a tensor (Definition 3.1: the d-tuple
// (n1, ..., nd) of a d-dimensional tensor).
type Shape []int

// NumElements returns the total number of elements a tensor of this shape
// holds, i.e. the product of all dimensions. The empty shape has one element
// (a scalar).
func (s Shape) NumElements() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Equal reports whether two shapes have identical rank and dimensions.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Valid reports whether every dimension is strictly positive.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d <= 0 {
			return false
		}
	}
	return true
}

// String renders the shape as, e.g., "(3, 224, 224)".
func (s Shape) String() string {
	if len(s) == 0 {
		return "()"
	}
	out := "("
	for i, d := range s {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%d", d)
	}
	return out + ")"
}

// Tensor is a dense, row-major multidimensional array of float32 values
// (Definition 3.1).
type Tensor struct {
	shape Shape
	data  []float32
}

// ErrShape indicates a shape mismatch between a tensor and an operation.
var ErrShape = errors.New("tensor: shape mismatch")

// New allocates a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	s := Shape(shape)
	if !s.Valid() {
		panic(fmt.Sprintf("tensor.New: invalid shape %v", s))
	}
	return &Tensor{shape: s.Clone(), data: make([]float32, s.NumElements())}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	s := Shape(shape)
	if !s.Valid() {
		return nil, fmt.Errorf("%w: invalid shape %v", ErrShape, s)
	}
	if len(data) != s.NumElements() {
		return nil, fmt.Errorf("%w: %d elements for shape %v (want %d)",
			ErrShape, len(data), s, s.NumElements())
	}
	return &Tensor{shape: s.Clone(), data: data}, nil
}

// MustFromSlice is FromSlice but panics on error; intended for tests and
// statically-known shapes.
func MustFromSlice(data []float32, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Tensor) Shape() Shape { return t.shape }

// Data returns the underlying storage in row-major order. The returned slice
// aliases the tensor's storage.
func (t *Tensor) Data() []float32 { return t.data }

// NumElements returns the number of elements in the tensor.
func (t *Tensor) NumElements() int { return len(t.data) }

// SizeBytes returns the in-memory payload size of the tensor data
// (4 bytes per float32 element).
func (t *Tensor) SizeBytes() int64 { return int64(len(t.data)) * 4 }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: t.shape.Clone(), data: make([]float32, len(t.data))}
	copy(c.data, t.data)
	return c
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d for shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Reshape returns a tensor that shares storage with t but has the new shape.
// The element counts must match.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	s := Shape(shape)
	if !s.Valid() || s.NumElements() != len(t.data) {
		return nil, fmt.Errorf("%w: cannot reshape %v to %v", ErrShape, t.shape, s)
	}
	return &Tensor{shape: s.Clone(), data: t.data}, nil
}

// Flatten implements a FlattenOp (Definition 3.5): it returns a rank-1 view of
// the tensor sharing the same storage.
func (t *Tensor) Flatten() *Tensor {
	return &Tensor{shape: Shape{len(t.data)}, data: t.data}
}

// Fill sets every element of the tensor to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// MaxAbs returns the maximum absolute value in the tensor, or 0 for an empty
// tensor.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.data {
		a := float32(math.Abs(float64(v)))
		if a > m {
			m = a
		}
	}
	return m
}

// L2 returns the Euclidean norm of the tensor's elements.
func (t *Tensor) L2() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// TensorList is an indexed list of tensors of potentially different shapes
// (Definition 3.2). It is the datatype Vista uses to carry materialized
// feature layers through the dataflow system.
type TensorList struct {
	tensors []*Tensor
}

// NewTensorList builds a TensorList from the given tensors.
func NewTensorList(tensors ...*Tensor) *TensorList {
	return &TensorList{tensors: tensors}
}

// Len returns the number of tensors in the list.
func (l *TensorList) Len() int { return len(l.tensors) }

// Get returns the i-th tensor.
func (l *TensorList) Get(i int) *Tensor { return l.tensors[i] }

// Append adds a tensor to the end of the list.
func (l *TensorList) Append(t *Tensor) { l.tensors = append(l.tensors, t) }

// SizeBytes returns the total payload size of all tensors in the list.
func (l *TensorList) SizeBytes() int64 {
	var n int64
	for _, t := range l.tensors {
		n += t.SizeBytes()
	}
	return n
}

// Clone deep-copies the list and all its tensors.
func (l *TensorList) Clone() *TensorList {
	c := &TensorList{tensors: make([]*Tensor, len(l.tensors))}
	for i, t := range l.tensors {
		c.tensors[i] = t.Clone()
	}
	return c
}
