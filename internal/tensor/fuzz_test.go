package tensor

import "testing"

// FuzzDecode hardens the image-tensor codec: arbitrary blobs must decode
// cleanly or fail cleanly, and valid decodes must round-trip.
func FuzzDecode(f *testing.F) {
	for _, t := range []*Tensor{New(3, 4, 4), New(1), New(2, 3)} {
		blob, err := Encode(t)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte{9, 9, 9})
	f.Fuzz(func(t *testing.T, blob []byte) {
		decoded, err := Decode(blob)
		if err != nil {
			return
		}
		re, err := Encode(decoded)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := Decode(re)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if !again.Shape().Equal(decoded.Shape()) {
			t.Fatalf("shape changed: %v vs %v", again.Shape(), decoded.Shape())
		}
	})
}
