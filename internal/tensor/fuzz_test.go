package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzDecode hardens the image-tensor codec: arbitrary blobs must decode
// cleanly or fail cleanly, and valid decodes must round-trip.
func FuzzDecode(f *testing.F) {
	for _, t := range []*Tensor{New(3, 4, 4), New(1), New(2, 3)} {
		blob, err := Encode(t)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte{9, 9, 9})
	f.Fuzz(func(t *testing.T, blob []byte) {
		decoded, err := Decode(blob)
		if err != nil {
			return
		}
		re, err := Encode(decoded)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := Decode(re)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if !again.Shape().Equal(decoded.Shape()) {
			t.Fatalf("shape changed: %v vs %v", again.Shape(), decoded.Shape())
		}
	})
}

// FuzzConv2DGEMMParity drives randomized convolution geometries through both
// kernels and requires elementwise agreement — the fuzzing arm of the parity
// suite in gemm_test.go.
func FuzzConv2DGEMMParity(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), uint8(9), uint8(9), uint8(3), uint8(1), uint8(1))
	f.Add(int64(2), uint8(1), uint8(1), uint8(5), uint8(13), uint8(7), uint8(2), uint8(3))
	f.Add(int64(3), uint8(7), uint8(5), uint8(16), uint8(8), uint8(5), uint8(2), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, inC, outC, h, w, k, stride, pad uint8) {
		spec := Conv2DSpec{
			InChannels:  1 + int(inC)%8,
			OutChannels: 1 + int(outC)%8,
			Kernel:      1 + int(k)%7,
			Stride:      1 + int(stride)%3,
			Pad:         int(pad) % 4,
		}
		ih, iw := 1+int(h)%24, 1+int(w)%24
		in := Shape{spec.InChannels, ih, iw}
		if _, err := spec.OutShape(in); err != nil {
			return // degenerate geometry
		}
		rng := rand.New(rand.NewSource(seed))
		input := randTensor(rng, spec.InChannels, ih, iw)
		weights := make([]float32, spec.WeightCount())
		for i := range weights {
			weights[i] = float32(rng.NormFloat64())
		}
		bias := make([]float32, spec.OutChannels)
		for i := range bias {
			bias[i] = float32(rng.NormFloat64())
		}
		want, err := Conv2DDirect(input, spec, weights, bias)
		if err != nil {
			t.Fatalf("direct: %v", err)
		}
		got, err := Conv2D(input, spec, weights, bias)
		if err != nil {
			t.Fatalf("gemm: %v", err)
		}
		for i, v := range got.Data() {
			if math.Abs(float64(v-want.Data()[i])) > parityEps {
				t.Fatalf("divergence at %d: gemm %v vs direct %v (spec %+v, input %v)",
					i, v, want.Data()[i], spec, in)
			}
		}
	})
}
