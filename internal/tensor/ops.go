package tensor

import (
	"fmt"
	"math"
)

// Conv2DSpec describes a 2-D convolution over a CHW input.
type Conv2DSpec struct {
	InChannels  int
	OutChannels int
	Kernel      int // square kernel side
	Stride      int
	Pad         int // symmetric zero padding
}

// OutShape returns the CHW output shape of the convolution for the given CHW
// input shape.
func (c Conv2DSpec) OutShape(in Shape) (Shape, error) {
	if len(in) != 3 || in[0] != c.InChannels {
		return nil, fmt.Errorf("%w: conv2d expects (%d,H,W), got %v", ErrShape, c.InChannels, in)
	}
	h := (in[1]+2*c.Pad-c.Kernel)/c.Stride + 1
	w := (in[2]+2*c.Pad-c.Kernel)/c.Stride + 1
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("%w: conv2d output %dx%d for input %v", ErrShape, h, w, in)
	}
	return Shape{c.OutChannels, h, w}, nil
}

// WeightCount returns the number of filter weights (excluding biases).
func (c Conv2DSpec) WeightCount() int {
	return c.OutChannels * c.InChannels * c.Kernel * c.Kernel
}

// Conv2D computes a 2-D convolution of the CHW input with the given filter
// weights (layout [out][in][kh][kw], row-major) and per-output-channel
// biases, returning a new CHW tensor. By default it runs the im2col +
// blocked-GEMM kernel (gemm.go); SetUseDirect(true) routes it through the
// direct-loop reference kernel instead.
func Conv2D(in *Tensor, spec Conv2DSpec, weights, bias []float32) (*Tensor, error) {
	outShape, err := conv2DCheck(in, spec, weights, bias)
	if err != nil {
		return nil, err
	}
	if useDirect.Load() {
		return conv2DDirect(in, spec, weights, bias, outShape), nil
	}
	return conv2DGEMM(in, spec, weights, bias, outShape)
}

// Conv2DDirect computes the convolution with the direct (non-GEMM) reference
// kernel regardless of the UseDirect setting. The parity test suite asserts
// Conv2D against it across the geometry grid.
func Conv2DDirect(in *Tensor, spec Conv2DSpec, weights, bias []float32) (*Tensor, error) {
	outShape, err := conv2DCheck(in, spec, weights, bias)
	if err != nil {
		return nil, err
	}
	return conv2DDirect(in, spec, weights, bias, outShape), nil
}

// conv2DCheck validates a convolution's input, weight, and bias shapes and
// returns the output shape.
func conv2DCheck(in *Tensor, spec Conv2DSpec, weights, bias []float32) (Shape, error) {
	outShape, err := spec.OutShape(in.Shape())
	if err != nil {
		return nil, err
	}
	if len(weights) != spec.WeightCount() {
		return nil, fmt.Errorf("%w: conv2d weights len %d, want %d", ErrShape, len(weights), spec.WeightCount())
	}
	if len(bias) != spec.OutChannels {
		return nil, fmt.Errorf("%w: conv2d bias len %d, want %d", ErrShape, len(bias), spec.OutChannels)
	}
	return outShape, nil
}

// conv2DDirect is the naive triple-loop convolution, kept as the permanent
// reference implementation for the GEMM path.
func conv2DDirect(in *Tensor, spec Conv2DSpec, weights, bias []float32, outShape Shape) *Tensor {
	inH, inW := in.Shape()[1], in.Shape()[2]
	outH, outW := outShape[1], outShape[2]
	out := New(outShape...)
	src := in.Data()
	dst := out.Data()
	k := spec.Kernel

	for oc := 0; oc < spec.OutChannels; oc++ {
		wBase := oc * spec.InChannels * k * k
		b := bias[oc]
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*spec.Stride - spec.Pad
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*spec.Stride - spec.Pad
				sum := b
				for ic := 0; ic < spec.InChannels; ic++ {
					sBase := ic * inH * inW
					fBase := wBase + ic*k*k
					for ky := 0; ky < k; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= inH {
							continue
						}
						rowBase := sBase + iy*inW
						fRow := fBase + ky*k
						for kx := 0; kx < k; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= inW {
								continue
							}
							sum += src[rowBase+ix] * weights[fRow+kx]
						}
					}
				}
				dst[(oc*outH+oy)*outW+ox] = sum
			}
		}
	}
	return out
}

// PoolSpec describes a 2-D pooling window over a CHW input.
type PoolSpec struct {
	Kernel int
	Stride int
	Pad    int
}

// OutShape returns the CHW output shape of the pooling for the given input.
func (p PoolSpec) OutShape(in Shape) (Shape, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("%w: pool expects CHW, got %v", ErrShape, in)
	}
	h := (in[1]+2*p.Pad-p.Kernel)/p.Stride + 1
	w := (in[2]+2*p.Pad-p.Kernel)/p.Stride + 1
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("%w: pool output %dx%d for input %v", ErrShape, h, w, in)
	}
	return Shape{in[0], h, w}, nil
}

// MaxPool2D applies max pooling to the CHW input.
func MaxPool2D(in *Tensor, spec PoolSpec) (*Tensor, error) {
	return pool2D(in, spec, true)
}

// AvgPool2D applies average pooling to the CHW input. Padding cells count
// toward the divisor only when inside the input (i.e. the divisor is the
// number of valid cells), matching common DL-system semantics.
func AvgPool2D(in *Tensor, spec PoolSpec) (*Tensor, error) {
	return pool2D(in, spec, false)
}

func pool2D(in *Tensor, spec PoolSpec, max bool) (*Tensor, error) {
	outShape, err := spec.OutShape(in.Shape())
	if err != nil {
		return nil, err
	}
	c, inH, inW := in.Shape()[0], in.Shape()[1], in.Shape()[2]
	outH, outW := outShape[1], outShape[2]
	out := New(outShape...)
	src := in.Data()
	dst := out.Data()

	for ch := 0; ch < c; ch++ {
		sBase := ch * inH * inW
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*spec.Stride - spec.Pad
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*spec.Stride - spec.Pad
				var acc float32
				if max {
					acc = float32(math.Inf(-1))
				}
				n := 0
				for ky := 0; ky < spec.Kernel; ky++ {
					iy := iy0 + ky
					if iy < 0 || iy >= inH {
						continue
					}
					for kx := 0; kx < spec.Kernel; kx++ {
						ix := ix0 + kx
						if ix < 0 || ix >= inW {
							continue
						}
						v := src[sBase+iy*inW+ix]
						if max {
							if v > acc {
								acc = v
							}
						} else {
							acc += v
						}
						n++
					}
				}
				if n == 0 {
					acc = 0
				} else if !max {
					acc /= float32(n)
				}
				dst[(ch*outH+oy)*outW+ox] = acc
			}
		}
	}
	return out, nil
}

// gridAxis returns the kernel, stride, and output extent that reduce one
// spatial axis of length n to the grid target. Axes already at or below the
// target pass through with an identity 1/1 window.
func gridAxis(n, grid int) (kernel, stride, out int) {
	if n <= grid {
		return 1, 1, n
	}
	stride = n / grid
	kernel = n - (grid-1)*stride
	return kernel, stride, grid
}

// GridMaxPool reduces a CHW feature map to a (C, grid, grid) tensor using max
// pooling with per-axis window and stride chosen to produce a grid×grid
// output; an axis already at or below the target passes through unchanged, so
// non-square inputs reduce correctly on each axis independently. This
// implements the dimensionality-reduction pooling the paper applies to
// convolutional feature layers before downstream training (Section 5,
// footnote 4: "filter width and stride for max pooling are set to reduce the
// feature tensor to a 2x2 grid of the same depth").
//
// The result never aliases the input, even when no reduction is needed:
// callers hand pooled features to downstream in-place ops, and an aliased
// return would let them corrupt the source feature map.
func GridMaxPool(in *Tensor, grid int) (*Tensor, error) {
	s := in.Shape()
	if len(s) != 3 {
		return nil, fmt.Errorf("%w: GridMaxPool expects CHW, got %v", ErrShape, s)
	}
	if grid <= 0 {
		return nil, fmt.Errorf("%w: GridMaxPool grid %d", ErrShape, grid)
	}
	if s[1] <= grid && s[2] <= grid {
		// Already at or below target resolution; nothing to reduce. Clone so
		// the caller owns its result and cannot mutate the source map.
		return in.Clone(), nil
	}
	kh, sh, outH := gridAxis(s[1], grid)
	kw, sw, outW := gridAxis(s[2], grid)
	c, inH, inW := s[0], s[1], s[2]
	out := newUninit(c, outH, outW)
	src, dst := in.Data(), out.Data()
	for ch := 0; ch < c; ch++ {
		sBase := ch * inH * inW
		for oy := 0; oy < outH; oy++ {
			iy0 := oy * sh
			for ox := 0; ox < outW; ox++ {
				ix0 := ox * sw
				acc := float32(math.Inf(-1))
				for ky := 0; ky < kh; ky++ {
					rowBase := sBase + (iy0+ky)*inW
					for kx := 0; kx < kw; kx++ {
						if v := src[rowBase+ix0+kx]; v > acc {
							acc = v
						}
					}
				}
				dst[(ch*outH+oy)*outW+ox] = acc
			}
		}
	}
	return out, nil
}

// GridPooledShape returns the shape GridMaxPool would produce for the given
// input shape without computing anything.
func GridPooledShape(in Shape, grid int) Shape {
	if len(in) != 3 || grid <= 0 || (in[1] <= grid && in[2] <= grid) {
		return in.Clone()
	}
	_, _, h := gridAxis(in[1], grid)
	_, _, w := gridAxis(in[2], grid)
	return Shape{in[0], h, w}
}

// ConcatChannels concatenates CHW tensors along the channel dimension; all
// inputs must share spatial dimensions. It is the primitive behind
// DAG-structured CNN blocks (DenseNet-style concatenation).
func ConcatChannels(ts ...*Tensor) (*Tensor, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("%w: concat of no tensors", ErrShape)
	}
	first := ts[0].Shape()
	if len(first) != 3 {
		return nil, fmt.Errorf("%w: concat expects CHW, got %v", ErrShape, first)
	}
	h, w := first[1], first[2]
	totalC := 0
	for _, t := range ts {
		s := t.Shape()
		if len(s) != 3 || s[1] != h || s[2] != w {
			return nil, fmt.Errorf("%w: concat spatial mismatch %v vs (%d,%d)", ErrShape, s, h, w)
		}
		totalC += s[0]
	}
	out := New(totalC, h, w)
	off := 0
	for _, t := range ts {
		n := copy(out.Data()[off:], t.Data())
		off += n
	}
	return out, nil
}

// ReLU applies max(0, x) elementwise in place and returns the input tensor.
func ReLU(t *Tensor) *Tensor {
	d := t.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
	return t
}

// AddInPlace adds b into a elementwise (a += b); shapes must match.
func AddInPlace(a, b *Tensor) error {
	if !a.Shape().Equal(b.Shape()) {
		return fmt.Errorf("%w: add %v + %v", ErrShape, a.Shape(), b.Shape())
	}
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		ad[i] += bd[i]
	}
	return nil
}

// MatVec computes out = W·x + b where W is row-major (rows × cols),
// x has cols elements, and b has rows elements. It implements a fully
// connected layer over a flattened input.
func MatVec(w []float32, rows, cols int, x, b []float32) ([]float32, error) {
	if len(w) != rows*cols || len(x) != cols || len(b) != rows {
		return nil, fmt.Errorf("%w: matvec %dx%d with |w|=%d |x|=%d |b|=%d",
			ErrShape, rows, cols, len(w), len(x), len(b))
	}
	out := make([]float32, rows)
	r := 0
	// Four rows per pass: one stream over x feeds four dot-product
	// accumulators, quartering the loop overhead on large FC layers.
	for ; r+4 <= rows; r += 4 {
		w0 := w[r*cols : r*cols+cols]
		w1 := w[(r+1)*cols : (r+1)*cols+cols]
		w2 := w[(r+2)*cols : (r+2)*cols+cols]
		w3 := w[(r+3)*cols : (r+3)*cols+cols]
		var s0, s1, s2, s3 float32
		for c, xv := range x[:cols] {
			s0 += w0[c] * xv
			s1 += w1[c] * xv
			s2 += w2[c] * xv
			s3 += w3[c] * xv
		}
		out[r] = s0 + b[r]
		out[r+1] = s1 + b[r+1]
		out[r+2] = s2 + b[r+2]
		out[r+3] = s3 + b[r+3]
	}
	for ; r < rows; r++ {
		base := r * cols
		sum := b[r]
		for c, xv := range x {
			sum += w[base+c] * xv
		}
		out[r] = sum
	}
	return out, nil
}

// BatchNorm applies per-channel affine normalization to a CHW tensor in
// place: y = gamma * (x - mean) / sqrt(var + eps) + beta. All parameter
// slices must have length C.
func BatchNorm(t *Tensor, gamma, beta, mean, variance []float32, eps float32) error {
	s := t.Shape()
	if len(s) != 3 {
		return fmt.Errorf("%w: batchnorm expects CHW, got %v", ErrShape, s)
	}
	c, hw := s[0], s[1]*s[2]
	if len(gamma) != c || len(beta) != c || len(mean) != c || len(variance) != c {
		return fmt.Errorf("%w: batchnorm params for %d channels", ErrShape, c)
	}
	d := t.Data()
	for ch := 0; ch < c; ch++ {
		scale := gamma[ch] / float32(math.Sqrt(float64(variance[ch]+eps)))
		shift := beta[ch] - mean[ch]*scale
		base := ch * hw
		for i := 0; i < hw; i++ {
			d[base+i] = d[base+i]*scale + shift
		}
	}
	return nil
}

// GlobalAvgPool reduces a CHW tensor to a length-C vector by averaging each
// channel's spatial plane.
func GlobalAvgPool(in *Tensor) (*Tensor, error) {
	s := in.Shape()
	if len(s) != 3 {
		return nil, fmt.Errorf("%w: GlobalAvgPool expects CHW, got %v", ErrShape, s)
	}
	c, hw := s[0], s[1]*s[2]
	out := New(c)
	src, dst := in.Data(), out.Data()
	for ch := 0; ch < c; ch++ {
		var sum float32
		base := ch * hw
		for i := 0; i < hw; i++ {
			sum += src[base+i]
		}
		dst[ch] = sum / float32(hw)
	}
	return out, nil
}

// Softmax returns the softmax of a rank-1 tensor as a new tensor, computed
// with the max-subtraction trick for numerical stability.
func Softmax(in *Tensor) (*Tensor, error) {
	if len(in.Shape()) != 1 {
		return nil, fmt.Errorf("%w: softmax expects rank-1, got %v", ErrShape, in.Shape())
	}
	out := New(in.Shape()...)
	src, dst := in.Data(), out.Data()
	maxV := float32(math.Inf(-1))
	for _, v := range src {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(float64(v - maxV))
		dst[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
	return out, nil
}
