package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShapeNumElements(t *testing.T) {
	tests := []struct {
		name  string
		shape Shape
		want  int
	}{
		{"scalar", Shape{}, 1},
		{"vector", Shape{5}, 5},
		{"matrix", Shape{3, 4}, 12},
		{"chw", Shape{3, 227, 227}, 3 * 227 * 227},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.shape.NumElements(); got != tc.want {
				t.Errorf("NumElements(%v) = %d, want %d", tc.shape, got, tc.want)
			}
		})
	}
}

func TestShapeEqualClone(t *testing.T) {
	a := Shape{3, 4, 5}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatalf("clone not equal: %v vs %v", a, b)
	}
	b[0] = 9
	if a.Equal(b) {
		t.Fatal("mutating clone affected original comparison")
	}
	if a.Equal(Shape{3, 4}) {
		t.Fatal("shapes of different rank compared equal")
	}
}

func TestShapeValid(t *testing.T) {
	if !(Shape{1, 2}).Valid() {
		t.Error("positive shape reported invalid")
	}
	if (Shape{0, 2}).Valid() {
		t.Error("zero dimension reported valid")
	}
	if (Shape{-1}).Valid() {
		t.Error("negative dimension reported valid")
	}
}

func TestNewAndAccessors(t *testing.T) {
	tt := New(2, 3)
	if tt.NumElements() != 6 {
		t.Fatalf("NumElements = %d, want 6", tt.NumElements())
	}
	tt.Set(7.5, 1, 2)
	if got := tt.At(1, 2); got != 7.5 {
		t.Errorf("At(1,2) = %v, want 7.5", got)
	}
	if got := tt.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %v, want 0", got)
	}
	if tt.SizeBytes() != 24 {
		t.Errorf("SizeBytes = %d, want 24", tt.SizeBytes())
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-bounds index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceValidation(t *testing.T) {
	if _, err := FromSlice([]float32{1, 2, 3}, 2, 2); err == nil {
		t.Error("expected error for length mismatch")
	}
	if _, err := FromSlice(nil, 0); err == nil {
		t.Error("expected error for zero-dim shape")
	}
	got, err := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatalf("FromSlice: %v", err)
	}
	if got.At(1, 1) != 4 {
		t.Errorf("At(1,1) = %v, want 4", got.At(1, 1))
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b, err := a.Reshape(3, 2)
	if err != nil {
		t.Fatalf("Reshape: %v", err)
	}
	b.Set(42, 0, 0)
	if a.At(0, 0) != 42 {
		t.Error("Reshape did not share storage")
	}
	if _, err := a.Reshape(4, 2); err == nil {
		t.Error("expected error reshaping 6 elements to 8")
	}
}

func TestFlatten(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	f := a.Flatten()
	if !f.Shape().Equal(Shape{4}) {
		t.Fatalf("Flatten shape = %v, want (4)", f.Shape())
	}
	// Definition 3.5: output length is the product of dims.
	if f.NumElements() != a.NumElements() {
		t.Error("flatten changed element count")
	}
}

func TestFillMaxAbsL2(t *testing.T) {
	a := New(3)
	a.Fill(-2)
	if a.MaxAbs() != 2 {
		t.Errorf("MaxAbs = %v, want 2", a.MaxAbs())
	}
	if got, want := a.L2(), math.Sqrt(12); math.Abs(got-want) > 1e-9 {
		t.Errorf("L2 = %v, want %v", got, want)
	}
}

func TestTensorList(t *testing.T) {
	a := New(2, 2)
	b := New(3)
	l := NewTensorList(a, b)
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if l.Get(1) != b {
		t.Error("Get(1) returned wrong tensor")
	}
	l.Append(New(1))
	if l.Len() != 3 {
		t.Errorf("Len after Append = %d, want 3", l.Len())
	}
	if got, want := l.SizeBytes(), int64(4*4+3*4+1*4); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
	c := l.Clone()
	c.Get(0).Set(5, 0, 0)
	if a.At(0, 0) != 0 {
		t.Error("TensorList.Clone is shallow")
	}
}

// Property: for any positive dims, a tensor of that shape has
// NumElements == len(Data) and SizeBytes == 4*NumElements.
func TestTensorSizeProperty(t *testing.T) {
	f := func(d1, d2 uint8) bool {
		a, b := int(d1%16)+1, int(d2%16)+1
		tt := New(a, b)
		return tt.NumElements() == len(tt.Data()) && tt.SizeBytes() == int64(4*a*b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
