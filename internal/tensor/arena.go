package tensor

import (
	"math/bits"
	"sync"
)

// This file implements the buffer arena behind the GEMM convolution path: a
// set of size-classed sync.Pools of float32 slabs that column buffers,
// activation tensors, and per-worker scratch draw from, so steady-state
// inference over a batch of rows recycles a fixed working set instead of
// allocating fresh tensors per call and leaning on the garbage collector.
//
// Slabs are handed out dirty: every consumer must overwrite the full slice it
// requested. The convolution/pool kernels all write every output element, so
// no zeroing pass is needed on the hot path.

// minSlabClass is the smallest pooled slab size (2^minSlabClass float32s);
// requests below it are padded up. maxSlabClass bounds pooling: larger
// requests fall through to plain make and are dropped on recycle, so a
// one-off giant tensor cannot pin memory in the pool forever.
const (
	minSlabClass = 8  // 256 floats = 1 KiB
	maxSlabClass = 24 // 16 Mi floats = 64 MiB
)

// slabPools[c] holds slices with cap exactly 2^c.
var slabPools [maxSlabClass + 1]sync.Pool

// slabClass returns the pool class for a request of n floats, or -1 when the
// request is too large to pool.
func slabClass(n int) int {
	if n <= 0 {
		return minSlabClass
	}
	c := bits.Len(uint(n - 1)) // ceil(log2 n)
	if c < minSlabClass {
		return minSlabClass
	}
	if c > maxSlabClass {
		return -1
	}
	return c
}

// getSlab returns a length-n float32 slice with undefined contents, drawn
// from the slab pool when a recycled slab of the right class is available.
func getSlab(n int) []float32 {
	c := slabClass(n)
	if c < 0 {
		return make([]float32, n)
	}
	if v := slabPools[c].Get(); v != nil {
		return (*(v.(*[]float32)))[:n]
	}
	return make([]float32, n, 1<<c)
}

// putSlab returns a slab obtained from getSlab (or any float32 slice) to the
// pool. Slices whose capacity is not an exact pooled class are dropped.
func putSlab(s []float32) {
	c := slabClass(cap(s))
	if c < 0 || cap(s) != 1<<c {
		return
	}
	full := s[:cap(s)]
	slabPools[c].Put(&full)
}

// newUninit allocates a tensor whose storage comes from the slab pool and is
// NOT zeroed. Callers must write every element. It is the allocation used by
// kernels that fully overwrite their output (GEMM conv, pooling).
func newUninit(shape ...int) *Tensor {
	s := Shape(shape)
	return &Tensor{shape: s.Clone(), data: getSlab(s.NumElements())}
}

// Recycle returns the tensor's storage to the slab pool and invalidates the
// tensor: any later access panics rather than silently reading reused memory.
// Only recycle tensors that are provably unreachable — in particular never a
// tensor that another tensor aliases (Flatten/Reshape views share storage).
func Recycle(t *Tensor) {
	if t == nil || t.data == nil {
		return
	}
	putSlab(t.data)
	t.data = nil
}

// SameStorage reports whether two tensors share the same backing array. All
// aliasing ops in this package (Flatten, Reshape, in-place ops returning
// their input) preserve the base pointer, so comparing first elements is a
// sound alias check for storage produced here.
func SameStorage(a, b *Tensor) bool {
	return a != nil && b != nil && len(a.data) > 0 && len(b.data) > 0 && &a.data[0] == &b.data[0]
}

// Arena is a per-goroutine scratch allocator over the slab pool: Get hands
// out dirty slabs and Release returns everything obtained so far in one call.
// It is not safe for concurrent use; give each worker goroutine its own.
type Arena struct {
	held [][]float32
}

// Get returns a length-n scratch slice with undefined contents, owned by the
// arena until Release.
func (a *Arena) Get(n int) []float32 {
	s := getSlab(n)
	a.held = append(a.held, s)
	return s
}

// Release returns every outstanding Get slice to the slab pool. The caller
// must not touch previously returned slices afterwards.
func (a *Arena) Release() {
	for i, s := range a.held {
		putSlab(s)
		a.held[i] = nil
	}
	a.held = a.held[:0]
}
