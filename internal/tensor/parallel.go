package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the bounded compute-worker pool shared by every
// parallel kernel in the process. Parallelism is gated by a global token
// semaphore rather than per-call goroutine fan-out so that nested parallel
// regions (rows of a batch in internal/dl, output-channel tiles inside one
// Conv2D) and concurrent server runs together never exceed the configured
// worker count: a region that cannot acquire tokens simply runs inline on its
// caller's goroutine.

// convWorkers is the process-wide cap on extra compute goroutines; 1 means
// fully serial execution.
var convWorkers atomic.Int64

// computeSem holds convWorkers-1 tokens; each token is one helper goroutine
// allowed to run concurrently with its caller.
var (
	computeSemMu sync.Mutex
	computeSem   chan struct{}
)

func init() {
	SetConvWorkers(runtime.GOMAXPROCS(0))
}

// SetConvWorkers sets the process-wide compute parallelism for the GEMM
// convolution kernels and batch-row workers. n <= 0 resets to
// runtime.GOMAXPROCS(0). In-flight regions keep tokens they already hold; the
// new cap applies to subsequent acquisitions.
func SetConvWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	computeSemMu.Lock()
	defer computeSemMu.Unlock()
	convWorkers.Store(int64(n))
	computeSem = make(chan struct{}, n-1)
	for i := 0; i < n-1; i++ {
		computeSem <- struct{}{}
	}
}

// ConvWorkers returns the current compute-worker cap.
func ConvWorkers() int { return int(convWorkers.Load()) }

// acquireWorkers grabs up to want helper tokens without blocking and returns
// the semaphore they must be returned to along with how many were obtained.
func acquireWorkers(want int) (chan struct{}, int) {
	computeSemMu.Lock()
	sem := computeSem
	computeSemMu.Unlock()
	got := 0
	for got < want {
		select {
		case <-sem:
			got++
		default:
			return sem, got
		}
	}
	return sem, got
}

// ParallelFor runs fn(i) for every i in [0, n), using the caller's goroutine
// plus as many pool workers as are free (never more than n-1). fn must be
// safe for concurrent invocation on distinct i; iteration order is undefined.
func ParallelFor(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 || ConvWorkers() <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	sem, helpers := acquireWorkers(n - 1)
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	if helpers == 0 {
		work()
		return
	}
	var wg sync.WaitGroup
	wg.Add(helpers)
	for h := 0; h < helpers; h++ {
		go func() {
			defer func() {
				sem <- struct{}{}
				wg.Done()
			}()
			work()
		}()
	}
	work()
	wg.Wait()
}
