package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"
	"testing"

	"repro/internal/faultinject"
)

func TestMain(m *testing.M) {
	code := m.Run()
	if sites := faultinject.ArmedSites(); len(sites) > 0 {
		fmt.Fprintf(os.Stderr, "failpoint sites left armed at exit: %v\n", sites)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// parityEps is the tolerated elementwise divergence between the GEMM and
// direct kernels; they sum identical terms in different orders.
const parityEps = 1e-4

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	d := t.Data()
	for i := range d {
		d[i] = float32(rng.NormFloat64())
	}
	return t
}

func maxAbsDiff(a, b *Tensor) float64 {
	var m float64
	for i, v := range a.Data() {
		if d := math.Abs(float64(v - b.Data()[i])); d > m {
			m = d
		}
	}
	return m
}

// convParity asserts the GEMM kernel against the direct reference for one
// geometry and returns the GEMM output.
func convParity(t *testing.T, rng *rand.Rand, c, h, w int, spec Conv2DSpec) {
	t.Helper()
	in := randTensor(rng, c, h, w)
	weights := make([]float32, spec.WeightCount())
	for i := range weights {
		weights[i] = float32(rng.NormFloat64())
	}
	bias := make([]float32, spec.OutChannels)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	want, err := Conv2DDirect(in, spec, weights, bias)
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	got, err := conv2DGEMM(in, spec, weights, bias, want.Shape())
	if err != nil {
		t.Fatalf("gemm: %v", err)
	}
	if !got.Shape().Equal(want.Shape()) {
		t.Fatalf("shape mismatch: gemm %v vs direct %v", got.Shape(), want.Shape())
	}
	if d := maxAbsDiff(got, want); d > parityEps {
		t.Fatalf("max abs diff %g > %g for input (%d,%d,%d) spec %+v", d, parityEps, c, h, w, spec)
	}
}

// TestConv2DGEMMParity sweeps the GEMM kernel against the direct reference
// across kernel sizes, strides, pads, odd channel counts, and non-square
// inputs — the permanent contract of the escape hatch.
func TestConv2DGEMMParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	channels := []struct{ in, out int }{{1, 1}, {3, 5}, {7, 4}, {16, 32}}
	inputs := []struct{ h, w int }{{13, 13}, {16, 16}, {13, 19}, {21, 9}}
	for _, k := range []int{1, 3, 5, 7} {
		for _, stride := range []int{1, 2} {
			for _, pad := range []int{0, 1, 3} {
				for _, ch := range channels {
					for _, hw := range inputs {
						spec := Conv2DSpec{
							InChannels:  ch.in,
							OutChannels: ch.out,
							Kernel:      k,
							Stride:      stride,
							Pad:         pad,
						}
						if _, err := spec.OutShape(Shape{ch.in, hw.h, hw.w}); err != nil {
							continue // degenerate geometry (kernel larger than padded input)
						}
						convParity(t, rng, ch.in, hw.h, hw.w, spec)
					}
				}
			}
		}
	}
}

// TestConv2DDispatch pins the UseDirect escape hatch: both settings of the
// switch produce outputs within parity tolerance on the same call.
func TestConv2DDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := randTensor(rng, 4, 10, 10)
	spec := Conv2DSpec{InChannels: 4, OutChannels: 6, Kernel: 3, Stride: 1, Pad: 1}
	weights := make([]float32, spec.WeightCount())
	for i := range weights {
		weights[i] = float32(rng.NormFloat64())
	}
	bias := []float32{1, -1, 0.5, 0, 2, -0.25}

	defer SetUseDirect(false)
	SetUseDirect(true)
	if !UseDirect() {
		t.Fatal("UseDirect not set")
	}
	direct, err := Conv2D(in, spec, weights, bias)
	if err != nil {
		t.Fatal(err)
	}
	SetUseDirect(false)
	gemm, err := Conv2D(in, spec, weights, bias)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(gemm, direct); d > parityEps {
		t.Fatalf("dispatch parity: max abs diff %g", d)
	}
}

// TestConv2DGEMMSerial pins the kernel with the worker pool forced serial, so
// a parallelism bug cannot hide the single-threaded kernel being wrong (and
// vice versa).
func TestConv2DGEMMSerial(t *testing.T) {
	old := ConvWorkers()
	defer SetConvWorkers(old)
	SetConvWorkers(1)
	rng := rand.New(rand.NewSource(13))
	convParity(t, rng, 5, 17, 11, Conv2DSpec{InChannels: 5, OutChannels: 9, Kernel: 3, Stride: 2, Pad: 1})
	convParity(t, rng, 2, 12, 12, Conv2DSpec{InChannels: 2, OutChannels: 3, Kernel: 5, Stride: 1, Pad: 2})
}

// TestConv2DGEMMParallelShared runs many concurrent convolutions over one
// shared input and weight set. Under -race this asserts the worker pool, the
// slab arena, and the column buffers are goroutine-clean; the output check
// asserts results are not cross-contaminated between concurrent calls.
func TestConv2DGEMMParallelShared(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in := randTensor(rng, 8, 24, 24)
	spec := Conv2DSpec{InChannels: 8, OutChannels: 12, Kernel: 3, Stride: 1, Pad: 1}
	weights := make([]float32, spec.WeightCount())
	for i := range weights {
		weights[i] = float32(rng.NormFloat64())
	}
	bias := make([]float32, spec.OutChannels)
	want, err := Conv2DDirect(in, spec, weights, bias)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				got, err := Conv2D(in, spec, weights, bias)
				if err != nil {
					errs[g] = err
					return
				}
				if d := maxAbsDiff(got, want); d > parityEps {
					errs[g] = fmt.Errorf("goroutine %d iter %d: max abs diff %g", g, iter, d)
					return
				}
				Recycle(got)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestConvColFaultSite asserts the column-buffer failpoint surfaces a typed
// error from Conv2D rather than panicking mid-kernel.
func TestConvColFaultSite(t *testing.T) {
	faultinject.Arm(FaultConvCol, faultinject.FailAlways())
	defer faultinject.Disarm(FaultConvCol)
	in := New(2, 8, 8)
	spec := Conv2DSpec{InChannels: 2, OutChannels: 2, Kernel: 3, Stride: 1, Pad: 1}
	_, err := Conv2D(in, spec, make([]float32, spec.WeightCount()), make([]float32, 2))
	if err == nil {
		t.Fatal("expected injected fault")
	}
	if _, ok := faultinject.AsFault(err); !ok {
		t.Fatalf("error %v is not a faultinject.Error", err)
	}
	// The 1×1 fast path performs no column-buffer allocation, so the site
	// must not fire there.
	spec1 := Conv2DSpec{InChannels: 2, OutChannels: 2, Kernel: 1, Stride: 1}
	if _, err := Conv2D(in, spec1, make([]float32, spec1.WeightCount()), make([]float32, 2)); err != nil {
		t.Fatalf("1x1 fast path hit the column-buffer site: %v", err)
	}
}

// TestRecycleInvalidates locks in the use-after-recycle guard: a recycled
// tensor's storage is gone and reuse panics instead of reading pool memory.
func TestRecycleInvalidates(t *testing.T) {
	x := New(4, 4)
	Recycle(x)
	if x.Data() != nil {
		t.Fatal("recycled tensor still exposes storage")
	}
	Recycle(x) // second recycle is a no-op
	Recycle(nil)
}

// TestArenaReuse asserts Release actually returns slabs: a Get after Release
// of the same class hands back the same backing array.
func TestArenaReuse(t *testing.T) {
	var a Arena
	s1 := a.Get(1 << minSlabClass)
	for i := range s1 {
		s1[i] = 1
	}
	p1 := &s1[0]
	a.Release()
	s2 := a.Get(1 << minSlabClass)
	if &s2[0] != p1 {
		// sync.Pool may legitimately drop entries under GC pressure; accept
		// but don't fail — the property we must hold is no corruption.
		t.Skip("pool did not retain the slab (GC ran); nothing to assert")
	}
	a.Release()
}

func TestSlabClassBounds(t *testing.T) {
	if c := slabClass(0); c != minSlabClass {
		t.Fatalf("slabClass(0) = %d", c)
	}
	if c := slabClass(1 << 30); c != -1 {
		t.Fatalf("slabClass(1<<30) = %d, want -1 (too large to pool)", c)
	}
	for _, n := range []int{1, 255, 256, 257, 4096, 1 << maxSlabClass} {
		c := slabClass(n)
		if c < 0 {
			t.Fatalf("slabClass(%d) refused a poolable size", n)
		}
		if 1<<c < n {
			t.Fatalf("slabClass(%d) = %d: class smaller than request", n, c)
		}
	}
	s := getSlab(300)
	if len(s) != 300 {
		t.Fatalf("getSlab(300) len %d", len(s))
	}
	putSlab(s)
}

// TestParallelForCoversAll asserts every index runs exactly once across pool
// configurations, including the serial path.
func TestParallelForCoversAll(t *testing.T) {
	old := ConvWorkers()
	defer SetConvWorkers(old)
	for _, workers := range []int{1, 2, 8} {
		SetConvWorkers(workers)
		const n = 1000
		counts := make([]int32, n)
		var mu sync.Mutex
		ParallelFor(n, func(i int) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func BenchmarkConv2DDirect3x3(b *testing.B) {
	in := benchInput(16, 32, 32)
	spec := Conv2DSpec{InChannels: 16, OutChannels: 32, Kernel: 3, Stride: 1, Pad: 1}
	w := make([]float32, spec.WeightCount())
	bias := make([]float32, spec.OutChannels)
	b.SetBytes(int64(in.NumElements() * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Conv2DDirect(in, spec, w, bias); err != nil {
			b.Fatal(err)
		}
	}
}
