package tensor

import (
	"math/rand"
	"testing"
)

func benchInput(c, h, w int) *Tensor {
	rng := rand.New(rand.NewSource(1))
	t := New(c, h, w)
	for i := range t.Data() {
		t.Data()[i] = rng.Float32()
	}
	return t
}

func BenchmarkConv2D3x3(b *testing.B) {
	in := benchInput(16, 32, 32)
	spec := Conv2DSpec{InChannels: 16, OutChannels: 32, Kernel: 3, Stride: 1, Pad: 1}
	w := make([]float32, spec.WeightCount())
	bias := make([]float32, spec.OutChannels)
	b.SetBytes(int64(in.NumElements() * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Conv2D(in, spec, w, bias); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConv2D1x1(b *testing.B) {
	in := benchInput(64, 16, 16)
	spec := Conv2DSpec{InChannels: 64, OutChannels: 64, Kernel: 1, Stride: 1}
	w := make([]float32, spec.WeightCount())
	bias := make([]float32, spec.OutChannels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Conv2D(in, spec, w, bias); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxPool2D(b *testing.B) {
	in := benchInput(32, 32, 32)
	spec := PoolSpec{Kernel: 2, Stride: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaxPool2D(in, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatVec(b *testing.B) {
	const rows, cols = 256, 2048
	w := make([]float32, rows*cols)
	x := make([]float32, cols)
	bias := make([]float32, rows)
	b.SetBytes(int64(rows * cols * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatVec(w, rows, cols, x, bias); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	in := benchInput(3, 64, 64)
	b.SetBytes(in.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := Encode(in)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(blob); err != nil {
			b.Fatal(err)
		}
	}
}
