package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float32) bool {
	return float32(math.Abs(float64(a-b))) <= eps
}

func TestConv2DIdentityKernel(t *testing.T) {
	// 1x1 kernel with weight 1 and zero bias is the identity.
	in := MustFromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	spec := Conv2DSpec{InChannels: 1, OutChannels: 1, Kernel: 1, Stride: 1}
	out, err := Conv2D(in, spec, []float32{1}, []float32{0})
	if err != nil {
		t.Fatalf("Conv2D: %v", err)
	}
	for i, v := range out.Data() {
		if v != in.Data()[i] {
			t.Fatalf("identity conv mismatch at %d: %v vs %v", i, v, in.Data()[i])
		}
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 3x3 input, 2x2 kernel of all ones, stride 1, no pad: each output is the
	// sum of a 2x2 window.
	in := MustFromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	spec := Conv2DSpec{InChannels: 1, OutChannels: 1, Kernel: 2, Stride: 1}
	out, err := Conv2D(in, spec, []float32{1, 1, 1, 1}, []float32{0})
	if err != nil {
		t.Fatalf("Conv2D: %v", err)
	}
	want := []float32{12, 16, 24, 28}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestConv2DPaddingAndStride(t *testing.T) {
	in := New(1, 4, 4)
	in.Fill(1)
	spec := Conv2DSpec{InChannels: 1, OutChannels: 1, Kernel: 3, Stride: 2, Pad: 1}
	out, err := Conv2D(in, spec, []float32{1, 1, 1, 1, 1, 1, 1, 1, 1}, []float32{0})
	if err != nil {
		t.Fatalf("Conv2D: %v", err)
	}
	if !out.Shape().Equal(Shape{1, 2, 2}) {
		t.Fatalf("shape = %v, want (1,2,2)", out.Shape())
	}
	// Corner window covers 2x2=4 ones; others vary. Top-left at (-1,-1) offset
	// covers rows 0..1, cols 0..1 => 4.
	if out.At(0, 0, 0) != 4 {
		t.Errorf("padded corner = %v, want 4", out.At(0, 0, 0))
	}
}

func TestConv2DBias(t *testing.T) {
	in := New(1, 2, 2)
	spec := Conv2DSpec{InChannels: 1, OutChannels: 2, Kernel: 1, Stride: 1}
	out, err := Conv2D(in, spec, []float32{1, 1}, []float32{3, -1})
	if err != nil {
		t.Fatalf("Conv2D: %v", err)
	}
	if out.At(0, 0, 0) != 3 || out.At(1, 0, 0) != -1 {
		t.Errorf("bias not applied: %v, %v", out.At(0, 0, 0), out.At(1, 0, 0))
	}
}

func TestConv2DMultiChannel(t *testing.T) {
	// Two input channels; filter sums both.
	in := MustFromSlice([]float32{
		1, 2, 3, 4, // channel 0
		10, 20, 30, 40, // channel 1
	}, 2, 2, 2)
	spec := Conv2DSpec{InChannels: 2, OutChannels: 1, Kernel: 1, Stride: 1}
	out, err := Conv2D(in, spec, []float32{1, 1}, []float32{0})
	if err != nil {
		t.Fatalf("Conv2D: %v", err)
	}
	want := []float32{11, 22, 33, 44}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestConv2DShapeErrors(t *testing.T) {
	in := New(1, 2, 2)
	spec := Conv2DSpec{InChannels: 2, OutChannels: 1, Kernel: 1, Stride: 1}
	if _, err := Conv2D(in, spec, []float32{1, 1}, []float32{0}); err == nil {
		t.Error("expected channel-mismatch error")
	}
	spec = Conv2DSpec{InChannels: 1, OutChannels: 1, Kernel: 5, Stride: 1}
	if _, err := Conv2D(in, spec, make([]float32, 25), []float32{0}); err == nil {
		t.Error("expected kernel-larger-than-input error")
	}
	spec = Conv2DSpec{InChannels: 1, OutChannels: 1, Kernel: 1, Stride: 1}
	if _, err := Conv2D(in, spec, []float32{1, 2}, []float32{0}); err == nil {
		t.Error("expected weight-length error")
	}
	if _, err := Conv2D(in, spec, []float32{1}, []float32{0, 0}); err == nil {
		t.Error("expected bias-length error")
	}
}

func TestMaxPool2D(t *testing.T) {
	in := MustFromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out, err := MaxPool2D(in, PoolSpec{Kernel: 2, Stride: 2})
	if err != nil {
		t.Fatalf("MaxPool2D: %v", err)
	}
	want := []float32{6, 8, 14, 16}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestAvgPool2D(t *testing.T) {
	in := MustFromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 2, 2)
	out, err := AvgPool2D(in, PoolSpec{Kernel: 2, Stride: 2})
	if err != nil {
		t.Fatalf("AvgPool2D: %v", err)
	}
	if out.Data()[0] != 2.5 {
		t.Errorf("avg = %v, want 2.5", out.Data()[0])
	}
}

func TestAvgPool2DPaddingDivisor(t *testing.T) {
	// With padding, divisor counts only valid cells.
	in := MustFromSlice([]float32{4}, 1, 1, 1)
	out, err := AvgPool2D(in, PoolSpec{Kernel: 3, Stride: 1, Pad: 1})
	if err != nil {
		t.Fatalf("AvgPool2D: %v", err)
	}
	if out.Data()[0] != 4 {
		t.Errorf("padded avg = %v, want 4 (single valid cell)", out.Data()[0])
	}
}

func TestGridMaxPool(t *testing.T) {
	in := New(3, 8, 8)
	for i := range in.Data() {
		in.Data()[i] = float32(i)
	}
	out, err := GridMaxPool(in, 2)
	if err != nil {
		t.Fatalf("GridMaxPool: %v", err)
	}
	if !out.Shape().Equal(Shape{3, 2, 2}) {
		t.Fatalf("shape = %v, want (3,2,2)", out.Shape())
	}
	// Shape predictor must agree with actual output.
	if !GridPooledShape(in.Shape(), 2).Equal(out.Shape()) {
		t.Errorf("GridPooledShape = %v, actual %v", GridPooledShape(in.Shape(), 2), out.Shape())
	}
}

// TestGridMaxPoolNoAliasWhenSmall is the regression test for the aliasing
// corruption bug: GridMaxPool used to return the input tensor itself when the
// map was already at or below the grid size, so downstream in-place ops
// (ReLU, BatchNorm, AddInPlace) on the pooled result silently corrupted
// feature tables handed out by the feature store and share.Handoff. The
// pooled result must be value-identical but storage-independent.
func TestGridMaxPoolNoAliasWhenSmall(t *testing.T) {
	in := New(5, 2, 2)
	for i := range in.Data() {
		in.Data()[i] = float32(i + 1)
	}
	cached := in.Clone() // stands in for a feature-store/handoff copy
	out, err := GridMaxPool(in, 2)
	if err != nil {
		t.Fatalf("GridMaxPool: %v", err)
	}
	if !out.Shape().Equal(in.Shape()) {
		t.Fatalf("shape = %v, want %v", out.Shape(), in.Shape())
	}
	for i, v := range out.Data() {
		if v != in.Data()[i] {
			t.Fatalf("pooled[%d] = %v, want %v", i, v, in.Data()[i])
		}
	}
	if SameStorage(out, in) {
		t.Fatal("GridMaxPool returned the input aliased; downstream in-place ops would corrupt the source")
	}
	// Mutate the pooled result the way a downstream in-place op would; the
	// source map and its cached copy must be untouched.
	ReLU(out)
	out.Fill(-42)
	for i, v := range in.Data() {
		if v != float32(i+1) {
			t.Fatalf("source[%d] corrupted to %v after mutating pooled result", i, v)
		}
		if cached.Data()[i] != float32(i+1) {
			t.Fatalf("cached copy[%d] corrupted to %v", i, cached.Data()[i])
		}
	}
	if !GridPooledShape(in.Shape(), 2).Equal(in.Shape()) {
		t.Error("GridPooledShape should be identity for small inputs")
	}
}

// TestGridMaxPoolNonSquare covers the per-axis kernel/stride derivation:
// height and width reduce independently, so non-square CHW inputs land on an
// exact grid (or pass an already-small axis through), and GridPooledShape
// agrees with the computed output for every case.
func TestGridMaxPoolNonSquare(t *testing.T) {
	cases := []struct {
		h, w  int
		wantH int
		wantW int
	}{
		{8, 12, 2, 2},  // both axes reduce
		{12, 8, 2, 2},  // transposed
		{9, 5, 2, 2},   // both axes reduce, odd sizes
		{2, 10, 2, 2},  // height already at grid, width reduces
		{10, 2, 2, 2},  // width already at grid, height reduces
		{1, 7, 1, 2},   // height below grid passes through
		{3, 100, 2, 2}, // extreme aspect ratio
		{2, 2, 2, 2},   // fully small: pass-through clone
	}
	for _, tc := range cases {
		in := New(1, tc.h, tc.w)
		for i := range in.Data() {
			in.Data()[i] = float32(i)
		}
		out, err := GridMaxPool(in, 2)
		if err != nil {
			t.Fatalf("GridMaxPool(%dx%d): %v", tc.h, tc.w, err)
		}
		want := Shape{1, tc.wantH, tc.wantW}
		if !out.Shape().Equal(want) {
			t.Errorf("GridMaxPool(%dx%d) shape = %v, want %v", tc.h, tc.w, out.Shape(), want)
		}
		if got := GridPooledShape(in.Shape(), 2); !got.Equal(out.Shape()) {
			t.Errorf("GridPooledShape(%dx%d) = %v, actual pooled shape %v", tc.h, tc.w, got, out.Shape())
		}
		// Max pooling with ascending fill: the global max (last element) must
		// appear in the last output cell, and every output must be one of the
		// input values.
		d := out.Data()
		if d[len(d)-1] != float32(tc.h*tc.w-1) {
			t.Errorf("GridMaxPool(%dx%d): last cell = %v, want %v", tc.h, tc.w, d[len(d)-1], float32(tc.h*tc.w-1))
		}
	}
}

func TestConcatChannels(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	b := MustFromSlice([]float32{5, 6, 7, 8, 9, 10, 11, 12}, 2, 2, 2)
	out, err := ConcatChannels(a, b)
	if err != nil {
		t.Fatalf("ConcatChannels: %v", err)
	}
	if !out.Shape().Equal(Shape{3, 2, 2}) {
		t.Fatalf("shape = %v, want (3,2,2)", out.Shape())
	}
	want := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestConcatChannelsErrors(t *testing.T) {
	if _, err := ConcatChannels(); err == nil {
		t.Error("empty concat accepted")
	}
	if _, err := ConcatChannels(New(4)); err == nil {
		t.Error("rank-1 input accepted")
	}
	if _, err := ConcatChannels(New(1, 2, 2), New(1, 3, 3)); err == nil {
		t.Error("spatial mismatch accepted")
	}
}

func TestReLU(t *testing.T) {
	a := MustFromSlice([]float32{-1, 0, 2, -3}, 4)
	ReLU(a)
	want := []float32{0, 0, 2, 0}
	for i, v := range a.Data() {
		if v != want[i] {
			t.Fatalf("relu[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestAddInPlace(t *testing.T) {
	a := MustFromSlice([]float32{1, 2}, 2)
	b := MustFromSlice([]float32{10, 20}, 2)
	if err := AddInPlace(a, b); err != nil {
		t.Fatalf("AddInPlace: %v", err)
	}
	if a.Data()[0] != 11 || a.Data()[1] != 22 {
		t.Errorf("add result = %v", a.Data())
	}
	if err := AddInPlace(a, New(3)); err == nil {
		t.Error("expected shape error")
	}
}

func TestMatVec(t *testing.T) {
	// [[1,2],[3,4]] * [1,1] + [0,10] = [3,17]
	out, err := MatVec([]float32{1, 2, 3, 4}, 2, 2, []float32{1, 1}, []float32{0, 10})
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	if out[0] != 3 || out[1] != 17 {
		t.Errorf("MatVec = %v, want [3 17]", out)
	}
	if _, err := MatVec([]float32{1}, 2, 2, []float32{1, 1}, []float32{0, 0}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestBatchNorm(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	// gamma=2, beta=1, mean=2.5, var=1.25 -> normalized then scaled.
	err := BatchNorm(a, []float32{2}, []float32{1}, []float32{2.5}, []float32{1.25}, 0)
	if err != nil {
		t.Fatalf("BatchNorm: %v", err)
	}
	sd := float32(math.Sqrt(1.25))
	want := []float32{
		2*(1-2.5)/sd + 1, 2*(2-2.5)/sd + 1,
		2*(3-2.5)/sd + 1, 2*(4-2.5)/sd + 1,
	}
	for i, v := range a.Data() {
		if !almostEqual(v, want[i], 1e-5) {
			t.Fatalf("bn[%d] = %v, want %v", i, v, want[i])
		}
	}
	if err := BatchNorm(a, []float32{1, 2}, []float32{0}, []float32{0}, []float32{1}, 0); err == nil {
		t.Error("expected param-length error")
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := MustFromSlice([]float32{
		1, 2, 3, 4, // channel 0: mean 2.5
		10, 10, 10, 10, // channel 1: mean 10
	}, 2, 2, 2)
	out, err := GlobalAvgPool(in)
	if err != nil {
		t.Fatalf("GlobalAvgPool: %v", err)
	}
	if !out.Shape().Equal(Shape{2}) {
		t.Fatalf("shape = %v, want (2)", out.Shape())
	}
	if out.Data()[0] != 2.5 || out.Data()[1] != 10 {
		t.Errorf("gap = %v", out.Data())
	}
}

func TestSoftmax(t *testing.T) {
	in := MustFromSlice([]float32{1, 2, 3}, 3)
	out, err := Softmax(in)
	if err != nil {
		t.Fatalf("Softmax: %v", err)
	}
	var sum float32
	for _, v := range out.Data() {
		if v <= 0 || v >= 1 {
			t.Fatalf("softmax value out of (0,1): %v", v)
		}
		sum += v
	}
	if !almostEqual(sum, 1, 1e-5) {
		t.Errorf("softmax sum = %v, want 1", sum)
	}
	if !(out.Data()[2] > out.Data()[1] && out.Data()[1] > out.Data()[0]) {
		t.Error("softmax not monotone in input")
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	in := MustFromSlice([]float32{1000, 1000, 1000}, 3)
	out, err := Softmax(in)
	if err != nil {
		t.Fatalf("Softmax: %v", err)
	}
	for _, v := range out.Data() {
		if math.IsNaN(float64(v)) || !almostEqual(v, 1.0/3.0, 1e-5) {
			t.Fatalf("softmax of large equal inputs = %v, want 1/3", v)
		}
	}
}

// Property: conv output shape predicted by OutShape always matches the actual
// tensor produced by Conv2D.
func TestConvShapeConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(hSeed, kSeed, sSeed, pSeed uint8) bool {
		h := int(hSeed%12) + 4
		k := int(kSeed%3) + 1
		s := int(sSeed%2) + 1
		p := int(pSeed % 2)
		spec := Conv2DSpec{InChannels: 1, OutChannels: 2, Kernel: k, Stride: s, Pad: p}
		in := New(1, h, h)
		for i := range in.Data() {
			in.Data()[i] = rng.Float32()
		}
		want, err := spec.OutShape(in.Shape())
		if err != nil {
			return true // invalid combo; nothing to check
		}
		w := make([]float32, spec.WeightCount())
		out, err := Conv2D(in, spec, w, []float32{0, 0})
		return err == nil && out.Shape().Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ReLU output is always non-negative and idempotent.
func TestReLUProperty(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		tt := MustFromSlice(append([]float32(nil), vals...), len(vals))
		ReLU(tt)
		for _, v := range tt.Data() {
			if v < 0 {
				return false
			}
		}
		before := append([]float32(nil), tt.Data()...)
		ReLU(tt)
		for i, v := range tt.Data() {
			if v != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: max pooling never produces a value absent from the input window
// range: output max <= input max and output min >= input min.
func TestMaxPoolBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed uint8) bool {
		h := int(seed%6)*2 + 4
		in := New(2, h, h)
		for i := range in.Data() {
			in.Data()[i] = rng.Float32()*2 - 1
		}
		out, err := MaxPool2D(in, PoolSpec{Kernel: 2, Stride: 2})
		if err != nil {
			return false
		}
		var inMax, outMax float32 = -2, -2
		for _, v := range in.Data() {
			if v > inMax {
				inMax = v
			}
		}
		for _, v := range out.Data() {
			if v > outMax {
				outMax = v
			}
		}
		return outMax <= inMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
