package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTensorCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := New(3, 8, 8)
	for i := range in.Data() {
		in.Data()[i] = rng.Float32()
	}
	blob, err := Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out, err := Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !out.Shape().Equal(in.Shape()) {
		t.Fatalf("shape = %v, want %v", out.Shape(), in.Shape())
	}
	for i := range in.Data() {
		if in.Data()[i] != out.Data()[i] {
			t.Fatalf("data mismatch at %d", i)
		}
	}
}

func TestTensorCodecCompressesSmoothData(t *testing.T) {
	// Smooth images (like natural photos) compress well below raw payload —
	// the raw-image-vs-feature-tensor size asymmetry of Section 1.1.
	in := New(3, 32, 32)
	for i := range in.Data() {
		in.Data()[i] = 0.5
	}
	blob, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(blob)) > in.SizeBytes()/4 {
		t.Errorf("constant image compressed to %d of %d raw bytes", len(blob), in.SizeBytes())
	}
}

func TestTensorDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("decoded garbage")
	}
	blob, err := Encode(New(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(blob[:len(blob)-1]); err == nil {
		t.Error("decoded truncated blob")
	}
}

// Property: Encode/Decode round-trips arbitrary small tensors exactly.
func TestTensorCodecProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(d1, d2 uint8) bool {
		a, b := int(d1%8)+1, int(d2%8)+1
		in := New(a, b)
		for i := range in.Data() {
			in.Data()[i] = rng.Float32()*100 - 50
		}
		blob, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(blob)
		if err != nil || !out.Shape().Equal(in.Shape()) {
			return false
		}
		for i := range in.Data() {
			if in.Data()[i] != out.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
