package share

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dataflow"
	"repro/internal/faultinject"
	"repro/internal/featurestore"
	"repro/internal/obs"
	"repro/internal/tensor"
)

func TestMain(m *testing.M) {
	code := m.Run()
	// CI contract: a test that arms a failpoint must disarm it; anything
	// left armed would silently poison unrelated tests.
	if sites := faultinject.ArmedSites(); len(sites) > 0 {
		fmt.Fprintf(os.Stderr, "failpoint sites left armed at exit: %v\n", sites)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// testWindow is the batching window every fake-clock test uses. Its length
// is irrelevant: fake time only moves when a test advances it, so the window
// fires exactly when the test says so — and never fires in tests that want
// an open window.
const testWindow = time.Minute

// newTestCoordinator builds a coordinator on a fake clock with a metrics
// registry, failing the test on config errors.
func newTestCoordinator(t *testing.T, maxGroup int) (*Coordinator, *clock.Fake) {
	t.Helper()
	fc := clock.NewFake()
	c, err := New(Config{Window: testWindow, MaxGroup: maxGroup, Metrics: obs.NewRegistry(), Clock: fc})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, fc
}

// waitShareStat spins (never sleeps — fake time must not depend on it) until
// pred holds; the enclosing test's own timeouts bound a stuck predicate.
func waitShareStat(c *Coordinator, pred func(Stats) bool) {
	for !pred(c.Stats()) {
		runtime.Gosched()
	}
}

// advanceWhenWaiting closes the window in the background once n members are
// parked inside Join — the deterministic replacement for "use a window long
// enough that everyone probably joins in time".
func advanceWhenWaiting(c *Coordinator, fc *clock.Fake, n int) {
	go func() {
		waitShareStat(c, func(s Stats) bool { return s.WaitingMembers >= n })
		fc.Advance(testWindow)
	}()
}

// waitParked spins until every given follower is parked in AwaitLeader.
func waitParked(c *Coordinator, tickets ...*Ticket) {
	for _, tk := range tickets {
		for {
			c.mu.Lock()
			parked := tk.awaiting
			c.mu.Unlock()
			if parked {
				break
			}
			runtime.Gosched()
		}
	}
}

func ident(s string) Identity {
	return Identity{Model: "tiny-alexnet", WeightsSum: "w" + s, DataSum: "d" + s}
}

// drained asserts the coordinator holds no open groups, waiting members, or
// live handoffs.
func drained(t *testing.T, c *Coordinator) {
	t.Helper()
	st := c.Stats()
	if st.OpenGroups != 0 || st.WaitingMembers != 0 || st.LiveGroups != 0 {
		t.Fatalf("coordinator not drained: open=%d waiting=%d live=%d",
			st.OpenGroups, st.WaitingMembers, st.LiveGroups)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Window: 0}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := New(Config{Window: time.Millisecond, MaxGroup: -1}); err == nil {
		t.Error("negative max group accepted")
	}
}

func TestNilCoordinatorSharesNothing(t *testing.T) {
	var c *Coordinator
	tk, err := c.Join(context.Background(), ident("x"), Member{NumLayers: 2})
	if err != nil || tk != nil {
		t.Fatalf("nil Join = (%v, %v), want (nil, nil)", tk, err)
	}
	// Every ticket method must be nil-safe.
	if tk.Role() != Solo {
		t.Errorf("nil ticket role = %v, want Solo", tk.Role())
	}
	if tk.GroupSize() != 1 || tk.Source() != nil || tk.Sink() != nil {
		t.Error("nil ticket group accessors not inert")
	}
	tk.Start()
	tk.Finish(nil)
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil coordinator stats = %+v, want zero", st)
	}
}

func TestSoloSeal(t *testing.T) {
	c, fc := newTestCoordinator(t, 0)
	advanceWhenWaiting(c, fc, 1)
	tk, err := c.Join(context.Background(), ident("solo"), Member{NumLayers: 2})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if tk.Role() != Solo {
		t.Fatalf("role = %v, want Solo", tk.Role())
	}
	if tk.Source() != nil || tk.Sink() != nil {
		t.Error("solo member has a handoff")
	}
	tk.Start()
	tk.Finish(nil)
	st := c.Stats()
	if st.Solos != 1 || st.Leaders != 0 || st.Followers != 0 || st.Groups != 0 {
		t.Errorf("stats = %+v, want exactly one solo", st)
	}
	drained(t, c)
}

func TestGroupElectsMaxLayersLeader(t *testing.T) {
	c, fc := newTestCoordinator(t, 0)
	layers := []int{1, 3, 2}
	tickets := make([]*Ticket, len(layers))
	var wg sync.WaitGroup
	for i, nl := range layers {
		wg.Add(1)
		go func(i, nl int) {
			defer wg.Done()
			tk, err := c.Join(context.Background(), ident("g"), Member{NumLayers: nl})
			if err != nil {
				t.Errorf("Join %d: %v", i, err)
				return
			}
			tickets[i] = tk
		}(i, nl)
	}
	// The window closes only after all three members joined — group
	// membership is deterministic, not a race against a real timer.
	advanceWhenWaiting(c, fc, len(layers))
	wg.Wait()
	var leaders, followers int
	for i, tk := range tickets {
		if tk == nil {
			t.Fatal("missing ticket")
		}
		switch tk.Role() {
		case Leader:
			leaders++
			if layers[i] != 3 {
				t.Errorf("leader has %d layers, want the max (3)", layers[i])
			}
		case Follower:
			followers++
		default:
			t.Errorf("ticket %d sealed as %v", i, tk.Role())
		}
		if tk.GroupSize() != 3 {
			t.Errorf("group size = %d, want 3", tk.GroupSize())
		}
	}
	if leaders != 1 || followers != 2 {
		t.Fatalf("got %d leaders / %d followers, want 1/2", leaders, followers)
	}
	if st := c.Stats(); st.Groups != 1 {
		t.Errorf("groups = %d, want 1", st.Groups)
	}
	// Settle every ticket so the group frees.
	for _, tk := range tickets {
		if tk.Role() == Leader {
			tk.Start()
			tk.Finish(nil)
		}
	}
	for _, tk := range tickets {
		if tk.Role() == Follower {
			if _, err := tk.AwaitLeader(context.Background()); err != nil {
				t.Errorf("AwaitLeader: %v", err)
			}
			tk.Start()
			tk.Finish(nil)
		}
	}
	drained(t, c)
}

func TestDifferentIdentitiesDoNotGroup(t *testing.T) {
	c, fc := newTestCoordinator(t, 0)
	advanceWhenWaiting(c, fc, 2)
	var wg sync.WaitGroup
	roles := make([]Role, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, err := c.Join(context.Background(), ident(fmt.Sprintf("distinct-%d", i)), Member{NumLayers: 2})
			if err != nil {
				t.Errorf("Join: %v", err)
				return
			}
			roles[i] = tk.Role()
			tk.Start()
			tk.Finish(nil)
		}(i)
	}
	wg.Wait()
	if roles[0] != Solo || roles[1] != Solo {
		t.Errorf("roles = %v, want two solos", roles)
	}
	drained(t, c)
}

func TestMaxGroupSealsEarly(t *testing.T) {
	// Fake time never advances: only the MaxGroup trigger can seal.
	c, _ := newTestCoordinator(t, 2)
	done := make(chan *Ticket, 2)
	for i := 0; i < 2; i++ {
		go func() {
			tk, err := c.Join(context.Background(), ident("full"), Member{NumLayers: 2})
			if err != nil {
				t.Errorf("Join: %v", err)
			}
			done <- tk
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case tk := <-done:
			tk.Start()
			if tk.Role() == Follower {
				go tk.Finish(nil)
			} else {
				tk.Finish(nil)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("join did not return: MaxGroup seal never fired")
		}
	}
}

// publishTestRows stores n one-tensor rows under k in h.
func publishTestRows(h *Handoff, k featurestore.Key, n int) {
	rows := make([]dataflow.Row, n)
	for i := range rows {
		tt := tensor.New(2)
		tt.Set(float32(i), 0)
		rows[i] = dataflow.Row{ID: int64(i), Features: tensor.NewTensorList(tt)}
	}
	h.Publish(k, rows)
}

func TestHandoffDeliveryAndIsolation(t *testing.T) {
	c, fc := newTestCoordinator(t, 0)
	var wg sync.WaitGroup
	tickets := make([]*Ticket, 2)
	for i, nl := range []int{2, 1} {
		wg.Add(1)
		go func(i, nl int) {
			defer wg.Done()
			tk, err := c.Join(context.Background(), ident("h"), Member{NumLayers: nl, InferenceFLOPs: 1000})
			if err != nil {
				t.Errorf("Join: %v", err)
				return
			}
			tickets[i] = tk
		}(i, nl)
	}
	advanceWhenWaiting(c, fc, 2)
	wg.Wait()
	leader, follower := tickets[0], tickets[1]
	if leader.Role() != Leader {
		leader, follower = follower, leader
	}
	if leader.Role() != Leader || follower.Role() != Follower {
		t.Fatalf("roles = %v/%v", tickets[0].Role(), tickets[1].Role())
	}

	k := featurestore.Key{Model: "m", WeightsSum: "w", DataSum: "d", LayerIndex: 5, Kind: featurestore.Feature}
	leader.Start()
	publishTestRows(leader.Sink(), k, 3)
	leader.Finish(nil)

	att, err := follower.AwaitLeader(context.Background())
	if err != nil {
		t.Fatalf("AwaitLeader: %v", err)
	}
	if att.Promoted {
		t.Fatal("follower promoted under a healthy leader")
	}
	rows, ok := att.Source.Lookup(k)
	if !ok || len(rows) != 3 {
		t.Fatalf("Lookup = (%d rows, %v), want 3 true", len(rows), ok)
	}
	// Deep-copy isolation: mutating the follower's rows must not leak into a
	// second consumer's view.
	rows[0].Features.Get(0).Set(99, 0)
	again, _ := att.Source.Lookup(k)
	if got := again[0].Features.Get(0).At(0); got == 99 {
		t.Error("Lookup aliases the published tensors; want deep copies")
	}
	follower.Start()
	follower.Finish(nil)

	st := c.Stats()
	if st.Leaders != 1 || st.Followers != 1 {
		t.Errorf("stats = %+v, want 1 leader + 1 follower", st)
	}
	if st.DedupFLOPs != 1000 {
		t.Errorf("dedup FLOPs = %d, want the follower's 1000", st.DedupFLOPs)
	}
	// The last Finish freed the handoff.
	if _, ok := att.Source.Lookup(k); ok {
		t.Error("handoff still serves entries after the group finished")
	}
	drained(t, c)
}

// sealGroup joins n members concurrently, closes the window once all are
// parked, and returns their tickets.
func sealGroup(t *testing.T, c *Coordinator, fc *clock.Fake, id Identity, n int) []*Ticket {
	t.Helper()
	tickets := make([]*Ticket, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, err := c.Join(context.Background(), id, Member{NumLayers: 2, InferenceFLOPs: 10})
			if err != nil {
				t.Errorf("Join: %v", err)
				return
			}
			tickets[i] = tk
		}(i)
	}
	advanceWhenWaiting(c, fc, n)
	wg.Wait()
	for _, tk := range tickets {
		if tk == nil {
			t.Fatal("missing ticket")
		}
	}
	return tickets
}

func split(tickets []*Ticket) (leader *Ticket, followers []*Ticket) {
	for _, tk := range tickets {
		if tk.Role() == Leader {
			leader = tk
		} else {
			followers = append(followers, tk)
		}
	}
	return leader, followers
}

func TestLeaderFailurePromotesParkedFollower(t *testing.T) {
	c, fc := newTestCoordinator(t, 0)
	tickets := sealGroup(t, c, fc, ident("p"), 3)
	leader, followers := split(tickets)

	// Park both followers before the leader fails.
	type await struct {
		att Attach
		err error
		tk  *Ticket
	}
	results := make(chan await, 2)
	for _, f := range followers {
		go func(f *Ticket) {
			att, err := f.AwaitLeader(context.Background())
			results <- await{att, err, f}
		}(f)
	}
	// Both followers must be parked before the leader fails, so the test
	// exercises the promote-a-parked-follower path deterministically.
	waitParked(c, followers...)

	leaderErr := errors.New("injected mid-pass failure")
	leader.Start()
	leader.Finish(leaderErr)

	// Exactly one follower is promoted; it re-runs live and delivers.
	first := <-results
	if first.err != nil {
		t.Fatalf("first AwaitLeader: %v", first.err)
	}
	if !first.att.Promoted {
		t.Fatal("leader failed but the awaiting follower was not promoted")
	}
	if !errors.Is(first.att.LeaderErr, leaderErr) {
		t.Errorf("LeaderErr = %v, want the leader's %v", first.att.LeaderErr, leaderErr)
	}
	if first.tk.Role() != Leader {
		t.Errorf("promoted follower role = %v, want Leader", first.tk.Role())
	}
	first.tk.Start()
	first.tk.Finish(nil)

	second := <-results
	if second.err != nil {
		t.Fatalf("second AwaitLeader: %v", second.err)
	}
	if second.att.Promoted {
		t.Error("second follower promoted although the new leader delivered")
	}
	second.tk.Start()
	second.tk.Finish(nil)

	st := c.Stats()
	if st.Promotions != 1 {
		t.Errorf("promotions = %d, want 1", st.Promotions)
	}
	// Outcome invariant: the failed leader and the promoted one both counted
	// leader; the remaining member counted follower.
	if st.Leaders != 2 || st.Followers != 1 || st.Solos != 0 {
		t.Errorf("stats = %+v, want 2 leaders + 1 follower", st)
	}
	drained(t, c)
}

func TestLateFollowerSelfPromotes(t *testing.T) {
	c, fc := newTestCoordinator(t, 0)
	tickets := sealGroup(t, c, fc, ident("late"), 2)
	leader, followers := split(tickets)

	// The leader fails before the follower ever calls AwaitLeader: the group
	// parks in pendingPromotion and the late arrival promotes on the spot.
	leader.Start()
	leader.Finish(errors.New("boom"))

	att, err := followers[0].AwaitLeader(context.Background())
	if err != nil {
		t.Fatalf("AwaitLeader: %v", err)
	}
	if !att.Promoted {
		t.Fatal("late follower not promoted after leader failure")
	}
	followers[0].Start()
	followers[0].Finish(nil)
	if st := c.Stats(); st.Promotions != 1 || st.Leaders != 2 {
		t.Errorf("stats = %+v, want 1 promotion and 2 leaders", st)
	}
	drained(t, c)
}

func TestPromotionChainUntilExhaustion(t *testing.T) {
	// Promotion is sticky: as long as a live follower remains, a failed
	// leader hands the pass on instead of failing the group.
	c, fc := newTestCoordinator(t, 0)
	tickets := sealGroup(t, c, fc, ident("chain"), 3)
	leader, followers := split(tickets)

	leader.Start()
	leader.Finish(errors.New("first failure"))

	// First follower promotes, then fails too.
	att, err := followers[0].AwaitLeader(context.Background())
	if err != nil || !att.Promoted {
		t.Fatalf("AwaitLeader = (%+v, %v), want a promotion", att, err)
	}
	followers[0].Start()
	followers[0].Finish(errors.New("second failure"))

	// The last live member inherits the pass rather than failing.
	att, err = followers[1].AwaitLeader(context.Background())
	if err != nil || !att.Promoted {
		t.Fatalf("last AwaitLeader = (%+v, %v), want a promotion", att, err)
	}
	followers[1].Start()
	followers[1].Finish(nil)

	st := c.Stats()
	if st.Promotions != 2 {
		t.Errorf("promotions = %d, want 2", st.Promotions)
	}
	if st.Leaders != 3 || st.Followers != 0 || st.Aborted != 0 {
		t.Errorf("stats = %+v, want 3 leaders (2 failed + 1 promoted success)", st)
	}
	drained(t, c)
}

func TestDeadGroupFailsFollower(t *testing.T) {
	// When the last candidate leader fails with every other member already
	// gone, the group dies: a straggler's AwaitLeader gets the typed
	// ErrGroupFailed wrapping the final leader error and counts aborted.
	c, fc := newTestCoordinator(t, 0)
	tickets := sealGroup(t, c, fc, ident("dead"), 3)
	leader, followers := split(tickets)

	// One follower gives up before ever awaiting (client gone pre-await).
	followers[0].Finish(errors.New("client disconnected"))
	// The leader then fails with no parked follower; the dispatcher skips
	// the finished member and keeps the group pending for the live one.
	leaderErr := errors.New("mid-pass failure")
	leader.Start()
	leader.Finish(leaderErr)

	// The live follower promotes, runs, and also fails — now no candidate
	// remains and the group is dead.
	att, err := followers[1].AwaitLeader(context.Background())
	if err != nil || !att.Promoted {
		t.Fatalf("AwaitLeader = (%+v, %v), want a promotion", att, err)
	}
	followers[1].Start()
	lastErr := errors.New("promoted leader failure")
	followers[1].Finish(lastErr)

	// A dead group refuses further waits with the typed error. (No live
	// server path re-awaits a finished group; this guards the state machine
	// against stragglers all the same.)
	c.mu.Lock()
	state := followers[1].g.state
	c.mu.Unlock()
	if state != dead {
		t.Fatalf("group state = %d, want dead", state)
	}
	straggler := &Ticket{c: c, g: followers[1].g, role: Follower, waitCh: make(chan awaitSignal, 1)}
	if _, err := straggler.AwaitLeader(context.Background()); !errors.Is(err, ErrGroupFailed) || !errors.Is(err, lastErr) {
		t.Fatalf("dead-group AwaitLeader = %v, want ErrGroupFailed wrapping %v", err, lastErr)
	}

	st := c.Stats()
	if st.Leaders != 2 || st.Aborted != 1 || st.Promotions != 1 {
		t.Errorf("stats = %+v, want 2 leaders, 1 aborted, 1 promotion", st)
	}
	drained(t, c)
}

func TestAwaitLeaderCancellation(t *testing.T) {
	c, fc := newTestCoordinator(t, 0)
	tickets := sealGroup(t, c, fc, ident("cancel"), 2)
	leader, followers := split(tickets)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := followers[0].AwaitLeader(ctx)
		errc <- err
	}()
	waitParked(c, followers[0])
	cancel()
	if err := <-errc; !errors.Is(err, ErrWaitCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("AwaitLeader error = %v, want ErrWaitCancelled wrapping context.Canceled", err)
	}
	followers[0].Finish(ctx.Err())

	// The leader still delivers and finishes normally.
	leader.Start()
	leader.Finish(nil)
	st := c.Stats()
	if st.Aborted != 1 || st.Leaders != 1 {
		t.Errorf("stats = %+v, want 1 aborted + 1 leader", st)
	}
	drained(t, c)
}

func TestJoinCancelledBeforeSeal(t *testing.T) {
	c, _ := newTestCoordinator(t, 0) // fake time never advances: window never fires
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Join(ctx, ident("j"), Member{NumLayers: 2})
		errc <- err
	}()
	waitShareStat(c, func(s Stats) bool { return s.WaitingMembers == 1 })
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrJoinCancelled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("Join error = %v, want ErrJoinCancelled wrapping context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled Join never returned")
	}
	drained(t, c)
}

func TestCancelledAwaitRelaysPromotion(t *testing.T) {
	// A promotion signal racing a follower's cancellation must be handed on
	// to the next live follower, or the group hangs.
	c, fc := newTestCoordinator(t, 0)
	tickets := sealGroup(t, c, fc, ident("relay"), 3)
	leader, followers := split(tickets)

	ctx, cancel := context.WithCancel(context.Background())
	parked := make(chan error, 1)
	go func() {
		_, err := followers[0].AwaitLeader(ctx)
		parked <- err
	}()
	waitParked(c, followers[0])

	// Fail the leader (promotes the parked follower), then immediately
	// cancel that follower; whether the signal or the cancel wins the race,
	// the second follower must end up promoted or delivered — never hung.
	leader.Start()
	leader.Finish(errors.New("boom"))
	cancel()
	err := <-parked
	if err != nil {
		followers[0].Finish(err)
	} else {
		// The promotion signal won the race; the follower is the new leader
		// and abandons leadership by finishing with the cancellation.
		followers[0].Finish(ctx.Err())
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		att, err := followers[1].AwaitLeader(context.Background())
		if err != nil {
			t.Errorf("surviving follower: %v", err)
			followers[1].Finish(err)
			return
		}
		if !att.Promoted {
			t.Error("surviving follower neither promoted nor failed")
		}
		followers[1].Start()
		followers[1].Finish(nil)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("surviving follower hung: promotion was lost in the cancellation race")
	}
	drained(t, c)
}

func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := New(Config{Window: 5 * time.Millisecond, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	tk, _ := c.Join(context.Background(), ident("m"), Member{NumLayers: 2})
	tk.Start()
	tk.Finish(nil)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`vista_share_runs_total{role="leader"} 0`,
		`vista_share_runs_total{role="follower"} 0`,
		`vista_share_runs_total{role="solo"} 1`,
		"vista_share_group_size",
		"vista_share_dedup_flops_total",
		"vista_share_promotions_total",
		"vista_share_aborted_total",
		"vista_share_open_groups 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestExactlyOneOutcomePerMember(t *testing.T) {
	c, fc := newTestCoordinator(t, 0)
	const groups, perGroup = 4, 3
	// All four group windows are due at the same fake instant; one Advance
	// seals all of them once every member is parked.
	advanceWhenWaiting(c, fc, groups*perGroup)
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		for m := 0; m < perGroup; m++ {
			wg.Add(1)
			go func(g, m int) {
				defer wg.Done()
				tk, err := c.Join(context.Background(), ident(fmt.Sprintf("inv-%d", g)), Member{NumLayers: 1 + m})
				if err != nil {
					t.Errorf("Join: %v", err)
					return
				}
				switch tk.Role() {
				case Follower:
					if _, err := tk.AwaitLeader(context.Background()); err != nil {
						tk.Finish(err)
						return
					}
				}
				tk.Start()
				tk.Finish(nil)
			}(g, m)
		}
	}
	wg.Wait()
	st := c.Stats()
	if got := st.Leaders + st.Followers + st.Solos + st.Aborted; got != groups*perGroup {
		t.Fatalf("outcomes sum to %d, want %d (stats %+v)", got, groups*perGroup, st)
	}
	if st.Aborted != 0 {
		t.Errorf("aborted = %d on the happy path, want 0", st.Aborted)
	}
	drained(t, c)
}
