// Package share implements multi-query shared inference: a sharing planner
// and run coalescer that batches concurrent feature-transfer runs whose
// feature-store content address (model, weights checksum, image-content
// checksum) matches into one shared partial-CNN pass.
//
// Vista's Staged plan removes redundant CNN inference *within* one query;
// this package removes it *across* queries — the DB-style multi-query
// optimization the RDBMS-for-ML literature argues for, applied to Vista's
// core contribution. Runs announce themselves to a Coordinator while they
// would otherwise wait independently; runs that agree on what they compute
// are grouped during a short window. The group elects a leader — the member
// exploring the most feature layers, so its pass is a superset of everyone
// else's — which executes one live partial-inference pass and publishes every
// per-layer feature table into the group's in-memory Handoff (and, when a
// feature store is configured, to disk for future runs). Followers attach the
// leader's tables without ever opening a DL session and finish their own
// downstream stages (joins, training) independently. A leader that fails or
// is cancelled mid-pass promotes the next live follower, which resumes from
// whatever the failed pass already published.
//
// The Coordinator enforces an exactly-one-outcome invariant mirroring
// internal/admission: every run that starts executing under a sealed group is
// counted in exactly one of the leader / follower / solo counters, members
// that give up before running are counted aborted, and group handoffs are
// freed once the last member finishes.
package share

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/dataflow"
	"repro/internal/featurestore"
	"repro/internal/obs"
)

// Typed errors surfaced by Ticket methods.
var (
	// ErrWaitCancelled means a follower's context was cancelled while it
	// waited for its group's leader; the wrapped error is the context's.
	ErrWaitCancelled = errors.New("share: wait for leader cancelled")
	// ErrGroupFailed means every member that could have executed the shared
	// pass failed; the wrapped error is the last leader's.
	ErrGroupFailed = errors.New("share: every candidate leader failed")
	// ErrJoinCancelled means the caller's context was cancelled while its
	// group's window was still open.
	ErrJoinCancelled = errors.New("share: join cancelled before group sealed")
)

// Identity is the sharing key: the featurestore.Key prefix two runs must
// agree on for one run's partial-inference outputs to be exactly the tables
// the other would compute. It is a content address (checksums, not names), so
// mismatched sharing is impossible by construction.
type Identity struct {
	// Model is the roster model name.
	Model string
	// WeightsSum is the hex SHA-256 of the realized weights.
	WeightsSum string
	// DataSum is the hex SHA-256 of the image-table content.
	DataSum string
}

// Member describes one run joining a group, for leader election and the
// deduplicated-FLOPs accounting.
type Member struct {
	// NumLayers is the run's |L|; the member with the largest value leads,
	// because feature layers are selected top-down: the top-k set of every
	// smaller request is a subset of the leader's, so one pass to the max
	// requested layer covers every follower.
	NumLayers int
	// InferenceFLOPs estimates the total partial-inference FLOPs this run
	// would spend executing alone (plan FLOPs/image × rows). When the run
	// instead attaches a leader's tables, this much compute was deduplicated.
	InferenceFLOPs int64
}

// Role is a sealed member's execution role.
type Role int

// Roles. Solo is the zero value: a member whose window expired with no peers
// runs exactly as it would have without sharing.
const (
	// Solo runs alone: no peer matched its identity within the window.
	Solo Role = iota
	// Leader executes the one live partial-inference pass for its group.
	Leader
	// Follower attaches the leader's feature tables and never opens a DL
	// session.
	Follower
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case Leader:
		return "leader"
	case Follower:
		return "follower"
	}
	return "solo"
}

// Config sizes a Coordinator.
type Config struct {
	// Window is how long the first arrival holds its group open for more
	// identical runs. Must be positive: a zero window would seal every group
	// at size one and share nothing.
	Window time.Duration
	// MaxGroup seals a group early once it reaches this many members
	// (0 = unbounded; the window is the only trigger).
	MaxGroup int
	// Metrics, when non-nil, receives the coordinator's observability series
	// (vista_share_*).
	Metrics *obs.Registry
	// Clock is the time source for the batching window (nil = the wall
	// clock). Tests inject clock.NewFake() to seal groups deterministically.
	Clock clock.Clock
}

// Stats is a point-in-time snapshot of a Coordinator's accounting. At
// quiescence Leaders + Followers + Solos counts every run that started
// executing, and Aborted counts every member that sealed into a group but
// gave up before running; each sealed member lands in exactly one of the
// four.
type Stats struct {
	Leaders    int64 // runs that executed the live pass for a group (incl. promoted)
	Followers  int64 // runs that attached a leader's tables
	Solos      int64 // runs that sealed alone and executed normally
	Aborted    int64 // members that gave up before starting (admission failure, cancelled wait)
	Promotions int64 // followers promoted to leader after a leader failure
	// Groups counts sealed groups with at least two members.
	Groups int64
	// DedupFLOPs sums the estimated inference FLOPs follower attaches saved.
	DedupFLOPs int64
	// OpenGroups and WaitingMembers describe groups still inside their
	// window; LiveGroups counts sealed groups whose members have not all
	// finished (handoffs not yet freed).
	OpenGroups     int
	WaitingMembers int
	LiveGroups     int
}

// Coordinator groups concurrent runs by Identity and arbitrates leader
// election, handoff delivery, and promotion. A nil *Coordinator is valid and
// shares nothing (every Join returns a Solo ticket with no group).
type Coordinator struct {
	cfg Config
	clk clock.Clock

	mu   sync.Mutex
	open map[Identity]*group // groups still inside their window
	live int                 // sealed groups not yet freed

	leaders, followers, solos int64
	aborted, promotions       int64
	groups                    int64
	dedupFLOPs                int64
	waiting                   int

	sizeHist *obs.Histogram // nil when cfg.Metrics is nil
}

// New builds a Coordinator and registers its metrics when cfg.Metrics is
// set: per-role run counters (vista_share_runs_total), the group-size
// histogram, promotion/abort counters, and the deduplicated-FLOPs counter.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("share: window must be positive, got %s", cfg.Window)
	}
	if cfg.MaxGroup < 0 {
		return nil, fmt.Errorf("share: max group must be >= 0, got %d", cfg.MaxGroup)
	}
	c := &Coordinator{cfg: cfg, clk: clock.Or(cfg.Clock), open: make(map[Identity]*group)}
	if reg := cfg.Metrics; reg != nil {
		role := func(r string, f func(Stats) int64) {
			reg.CounterFunc("vista_share_runs_total",
				"Runs executed under the sharing planner, by sealed role.",
				func() float64 { return float64(f(c.Stats())) },
				obs.Label{Key: "role", Value: r})
		}
		role("leader", func(s Stats) int64 { return s.Leaders })
		role("follower", func(s Stats) int64 { return s.Followers })
		role("solo", func(s Stats) int64 { return s.Solos })
		reg.CounterFunc("vista_share_aborted_total",
			"Group members that gave up before starting their run.",
			func() float64 { return float64(c.Stats().Aborted) })
		reg.CounterFunc("vista_share_promotions_total",
			"Followers promoted to leader after a leader failure or cancellation.",
			func() float64 { return float64(c.Stats().Promotions) })
		reg.CounterFunc("vista_share_groups_total",
			"Sealed groups with at least two members.",
			func() float64 { return float64(c.Stats().Groups) })
		reg.CounterFunc("vista_share_dedup_flops_total",
			"Estimated CNN inference FLOPs saved by follower attaches.",
			func() float64 { return float64(c.Stats().DedupFLOPs) })
		reg.GaugeFunc("vista_share_open_groups",
			"Groups still inside their batching window.",
			func() float64 { return float64(c.Stats().OpenGroups) })
		reg.GaugeFunc("vista_share_waiting_members",
			"Runs waiting for their group's window to close.",
			func() float64 { return float64(c.Stats().WaitingMembers) })
		reg.GaugeFunc("vista_share_live_groups",
			"Sealed groups whose handoff is still retained.",
			func() float64 { return float64(c.Stats().LiveGroups) })
		c.sizeHist = reg.Histogram("vista_share_group_size",
			"Members per sealed group (1 = solo).",
			[]float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32})
	}
	return c, nil
}

// Stats snapshots the coordinator's accounting. Safe on nil (all zeros).
func (c *Coordinator) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Leaders:        c.leaders,
		Followers:      c.followers,
		Solos:          c.solos,
		Aborted:        c.aborted,
		Promotions:     c.promotions,
		Groups:         c.groups,
		DedupFLOPs:     c.dedupFLOPs,
		OpenGroups:     len(c.open),
		WaitingMembers: c.waiting,
		LiveGroups:     c.live,
	}
}

// groupState is the post-seal lifecycle of a multi-member group.
type groupState int

const (
	// leading: the current leader (original or promoted) is executing.
	leading groupState = iota
	// delivered: the leader finished successfully; the handoff is complete.
	delivered
	// pendingPromotion: the leader failed and no follower is parked yet; the
	// next follower to call AwaitLeader is promoted on the spot.
	pendingPromotion
	// dead: the leader failed and no candidate follower remains.
	dead
)

// group is one batch of identity-matched runs.
type group struct {
	id      Identity
	sealeds chan struct{} // closed at seal; Join waits on it
	timer   clock.Timer   // window timer; stopped once sealed

	// All fields below are guarded by the Coordinator's mutex.
	members   []*Ticket
	sealed    bool
	state     groupState
	leaderErr error    // last failed leader's error
	handoff   *Handoff // nil for solo groups
	refs      int      // members that have not finished/aborted yet
}

// Ticket is one member's handle on its group. Every successfully Joined
// ticket must end with exactly one Finish call, whatever happened in
// between; Finish is idempotent and nil-safe so callers can defer it.
type Ticket struct {
	c *Coordinator
	g *group
	m Member

	// Guarded by c.mu after seal.
	role     Role
	started  bool             // Start was called (role counter committed)
	finished bool             // Finish was called (refcount released)
	attached bool             // follower received the handoff
	waitCh   chan awaitSignal // buffered 1; promotion/attach delivery
	awaiting bool             // parked in AwaitLeader
}

// awaitSignal wakes a parked follower.
type awaitSignal struct {
	promoted  bool
	leaderErr error
}

// Attach is what AwaitLeader returns to a follower once its group's leader
// is done with the shared pass.
type Attach struct {
	// Promoted is true when the leader failed or was cancelled and this
	// follower must now execute the live pass itself. Source still serves
	// whatever the failed pass already published, so a promoted run resumes
	// partial progress instead of starting cold.
	Promoted bool
	// LeaderErr is the failed leader's error (set only when Promoted).
	LeaderErr error
	// Source serves the group's materialized feature tables (implements
	// core.FeatureSource via Lookup).
	Source *Handoff
}

// Join announces a run computing id to the coordinator and blocks until its
// group seals: when the window of the first matching arrival expires (or the
// group hits MaxGroup), roles are assigned and every member's Join returns.
// The error is non-nil only when ctx is cancelled while the window is open
// (ErrJoinCancelled wrapping the context's error); a sealed ticket is always
// returned, even if ctx raced the seal. A nil Coordinator returns a Solo
// ticket that every method accepts.
func (c *Coordinator) Join(ctx ctxDoner, id Identity, m Member) (*Ticket, error) {
	if c == nil {
		return nil, nil
	}
	c.mu.Lock()
	g, ok := c.open[id]
	if !ok {
		g = &group{id: id, sealeds: make(chan struct{})}
		g.timer = c.clk.AfterFunc(c.cfg.Window, func() { c.seal(g) })
		c.open[id] = g
	}
	t := &Ticket{c: c, g: g, m: m, waitCh: make(chan awaitSignal, 1)}
	g.members = append(g.members, t)
	g.refs++
	c.waiting++
	full := c.cfg.MaxGroup > 0 && len(g.members) >= c.cfg.MaxGroup
	c.mu.Unlock()
	if full {
		c.seal(g)
	}

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-g.sealeds:
		return t, nil
	case <-done:
		c.mu.Lock()
		if g.sealed {
			// The seal raced the cancellation: the ticket has a role and may
			// even be the leader. Hand it back; the caller's next step (its
			// own admission or run) will observe the dead context and Finish
			// the ticket, which routes into the promotion machinery.
			c.mu.Unlock()
			return t, nil
		}
		// Still open: withdraw. The last member out cancels the window.
		for i, q := range g.members {
			if q == t {
				g.members = append(g.members[:i:i], g.members[i+1:]...)
				break
			}
		}
		g.refs--
		c.waiting--
		if len(g.members) == 0 {
			g.timer.Stop()
			delete(c.open, id)
		}
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %w", ErrJoinCancelled, ctx.Err())
	}
}

// ctxDoner is the subset of context.Context this package needs.
type ctxDoner interface {
	Done() <-chan struct{}
	Err() error
}

// seal closes a group's window: it assigns roles (the member with the most
// requested layers leads; earliest arrival breaks ties), removes the group
// from the open set, and wakes every parked Join.
func (c *Coordinator) seal(g *group) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g.sealed {
		return
	}
	g.sealed = true
	g.timer.Stop()
	delete(c.open, g.id)
	c.waiting -= len(g.members)
	if len(g.members) == 0 {
		// Every member withdrew before the window closed.
		close(g.sealeds)
		return
	}
	c.live++
	if c.sizeHist != nil {
		c.sizeHist.Observe(float64(len(g.members)))
	}
	if len(g.members) == 1 {
		g.members[0].role = Solo
		close(g.sealeds)
		return
	}
	c.groups++
	lead := 0
	for i, t := range g.members[1:] {
		if t.m.NumLayers > g.members[lead].m.NumLayers {
			lead = i + 1
		}
	}
	for i, t := range g.members {
		if i == lead {
			t.role = Leader
		} else {
			t.role = Follower
		}
	}
	g.handoff = newHandoff()
	g.state = leading
	close(g.sealeds)
}

// Role reports the member's sealed role. It changes from Follower to Leader
// exactly once, when AwaitLeader promotes the member. Nil-safe (Solo).
func (t *Ticket) Role() Role {
	if t == nil {
		return Solo
	}
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	return t.role
}

// GroupSize reports how many members sealed into the ticket's group
// (1 for solo). Nil-safe.
func (t *Ticket) GroupSize() int {
	if t == nil {
		return 1
	}
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	return len(t.g.members)
}

// Source returns the group's handoff for Spec.FeatureSource (nil for solo
// members — they probe only the durable store). Nil-safe.
func (t *Ticket) Source() *Handoff {
	if t == nil {
		return nil
	}
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	return t.g.handoff
}

// Sink returns the group's handoff for Spec.FeatureSink — only the member
// currently executing the live pass publishes (nil for solo members and
// un-promoted followers). Nil-safe.
func (t *Ticket) Sink() *Handoff {
	if t == nil {
		return nil
	}
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if t.role == Leader {
		return t.g.handoff
	}
	return nil
}

// Start commits the member to executing its run under its current role,
// incrementing that role's counter exactly once. Call it immediately before
// the run; a member that never Starts is counted aborted at Finish. Nil-safe.
func (t *Ticket) Start() {
	if t == nil {
		return
	}
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if t.started {
		return
	}
	t.started = true
	switch t.role {
	case Leader:
		t.c.leaders++
	case Follower:
		t.c.followers++
	default:
		t.c.solos++
	}
}

// AwaitLeader parks a follower until its group's leader finishes. On leader
// success it returns the handoff to attach; if the leader failed or was
// cancelled, the first parked (or next arriving) follower is promoted —
// Attach.Promoted is set, the ticket's Role becomes Leader, and Source
// resumes whatever the failed pass already published. The error is non-nil
// when ctx is cancelled while parked (ErrWaitCancelled) or when every
// candidate leader already failed (ErrGroupFailed).
func (t *Ticket) AwaitLeader(ctx ctxDoner) (Attach, error) {
	if t == nil {
		return Attach{}, fmt.Errorf("share: AwaitLeader on a solo ticket")
	}
	c := t.c
	c.mu.Lock()
	if t.role != Follower {
		role := t.role
		c.mu.Unlock()
		return Attach{}, fmt.Errorf("share: AwaitLeader called by the %s", role)
	}
	g := t.g
	switch g.state {
	case delivered:
		att := c.attachLocked(t)
		c.mu.Unlock()
		return att, nil
	case pendingPromotion:
		att := c.promoteLocked(t)
		c.mu.Unlock()
		return att, nil
	case dead:
		err := g.leaderErr
		c.mu.Unlock()
		return Attach{}, fmt.Errorf("%w: %w", ErrGroupFailed, err)
	}
	t.awaiting = true
	c.mu.Unlock()

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case sig := <-t.waitCh:
		c.mu.Lock()
		t.awaiting = false
		var att Attach
		if sig.promoted {
			att = c.promoteLocked(t)
		} else {
			att = c.attachLocked(t)
		}
		c.mu.Unlock()
		return att, nil
	case <-done:
		c.mu.Lock()
		t.awaiting = false
		select {
		case sig := <-t.waitCh:
			// A delivery raced the cancellation. An attach needs nothing —
			// the member just never runs. A promotion must be handed on, or
			// the group's remaining followers hang.
			if sig.promoted {
				g.state = pendingPromotion
				g.leaderErr = sig.leaderErr
				c.dispatchPromotionLocked(g)
			}
		default:
		}
		c.mu.Unlock()
		return Attach{}, fmt.Errorf("%w: %w", ErrWaitCancelled, ctx.Err())
	}
}

// attachLocked records a successful follower attach: the member will run
// against the handoff, having skipped its own inference pass entirely.
func (c *Coordinator) attachLocked(t *Ticket) Attach {
	if !t.attached {
		t.attached = true
		c.dedupFLOPs += t.m.InferenceFLOPs
	}
	return Attach{Source: t.g.handoff}
}

// promoteLocked turns a follower into the group's new leader.
func (c *Coordinator) promoteLocked(t *Ticket) Attach {
	t.role = Leader
	t.g.state = leading
	c.promotions++
	return Attach{Promoted: true, LeaderErr: t.g.leaderErr, Source: t.g.handoff}
}

// Finish reports the member's run outcome and releases its group resources;
// the group's handoff is freed when the last member finishes. For the
// current leader, err != nil (or never having Started) routes into the
// promotion machinery: a parked follower is promoted immediately, otherwise
// the next AwaitLeader caller is. Idempotent and nil-safe, so callers may
// defer it.
func (t *Ticket) Finish(err error) {
	if t == nil {
		return
	}
	c := t.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.finished {
		return
	}
	t.finished = true
	if !t.started {
		c.aborted++
	}
	g := t.g
	if t.role == Leader && g.state == leading {
		if err == nil && t.started {
			g.state = delivered
			c.deliverLocked(g)
		} else {
			if err == nil {
				err = errors.New("share: leader aborted before running")
			}
			g.state = pendingPromotion
			g.leaderErr = err
			c.dispatchPromotionLocked(g)
		}
	}
	g.refs--
	if g.refs == 0 {
		if g.handoff != nil {
			g.handoff.drop()
		}
		c.live--
	}
}

// deliverLocked wakes every parked follower with the completed handoff.
func (c *Coordinator) deliverLocked(g *group) {
	for _, m := range g.members {
		if m.awaiting {
			m.waitCh <- awaitSignal{}
		}
	}
}

// dispatchPromotionLocked hands the leadership to a parked follower, if any;
// otherwise the group stays pendingPromotion for the next AwaitLeader caller,
// or dies when no candidate remains.
func (c *Coordinator) dispatchPromotionLocked(g *group) {
	for _, m := range g.members {
		if m.awaiting {
			m.waitCh <- awaitSignal{promoted: true, leaderErr: g.leaderErr}
			return
		}
	}
	for _, m := range g.members {
		if m.role == Follower && !m.finished && !m.attached {
			return // a live candidate will call AwaitLeader and self-promote
		}
	}
	g.state = dead
}

// Handoff is one group's in-memory feature fan-out: the leader publishes
// every materialized table into it (core.FeatureSink) and followers attach
// from it (core.FeatureSource) without touching the DL session or the disk
// store. Lookup deep-copies rows so each consumer's engine owns its tensors.
type Handoff struct {
	mu      sync.Mutex
	entries map[featurestore.Key][]dataflow.Row
}

func newHandoff() *Handoff {
	return &Handoff{entries: make(map[featurestore.Key][]dataflow.Row)}
}

// Publish stores rows under k (implements core.FeatureSink). The rows are
// retained as published — the executor hands over freshly projected rows the
// run never mutates afterwards.
func (h *Handoff) Publish(k featurestore.Key, rows []dataflow.Row) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.entries != nil {
		h.entries[k] = rows
	}
}

// Lookup returns a deep copy of the rows under k (implements
// core.FeatureSource); ok=false on a miss or after the handoff was freed.
func (h *Handoff) Lookup(k featurestore.Key) ([]dataflow.Row, bool) {
	if h == nil {
		return nil, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	rows, ok := h.entries[k]
	if !ok {
		return nil, false
	}
	out := make([]dataflow.Row, len(rows))
	for i := range rows {
		out[i] = rows[i].Clone()
	}
	return out, true
}

// Len reports how many entries the handoff holds (0 after drop).
func (h *Handoff) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.entries)
}

// drop frees the handoff's tables once the last group member finished.
func (h *Handoff) drop() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.entries = nil
}
