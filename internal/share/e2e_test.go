package share_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/faultinject"
	"repro/internal/memory"
	"repro/internal/plan"
	"repro/internal/share"
)

// tinySpec builds a small end-to-end spec over generated data and the
// executable tiny-alexnet — the same shape vista-server gives a /run body.
func tinySpec(t *testing.T, rows, layers int, seed int64) core.Spec {
	t.Helper()
	structRows, imageRows, err := data.Generate(data.Foods().WithRows(rows))
	if err != nil {
		t.Fatal(err)
	}
	return core.Spec{
		Nodes:        2,
		CoresPerNode: 4,
		MemPerNode:   memory.GB(32),
		SystemKind:   memory.SparkLike,
		ModelName:    "tiny-alexnet",
		NumLayers:    layers,
		Downstream:   core.DefaultDownstream(),
		StructRows:   structRows,
		ImageRows:    imageRows,
		Seed:         seed,
		PlanKind:     plan.Staged,
		Placement:    plan.AfterJoin,
		SpillDir:     t.TempDir(),
	}
}

// memberResult is one group member's outcome in a shared execution.
type memberResult struct {
	role     share.Role // role at Start time (after any promotion)
	promoted bool
	res      *core.Result
	err      error
}

// runShared drives one spec through the coordinator exactly as the server's
// handleRun does: join, follower-awaits-leader, attach source/sink by role,
// start, run, finish.
func runShared(t *testing.T, c *share.Coordinator, spec core.Spec) memberResult {
	t.Helper()
	fp, ok := core.ShareFingerprint(spec)
	if !ok {
		t.Error("spec unexpectedly not shareable")
		return memberResult{}
	}
	tk, err := c.Join(context.Background(),
		share.Identity{Model: fp.Model, WeightsSum: fp.WeightsSum, DataSum: fp.DataSum},
		share.Member{NumLayers: fp.NumLayers, InferenceFLOPs: fp.InferenceFLOPs})
	if err != nil {
		t.Errorf("Join: %v", err)
		return memberResult{}
	}
	out := memberResult{role: tk.Role()}
	if tk.Role() == share.Follower {
		att, aerr := tk.AwaitLeader(context.Background())
		if aerr != nil {
			tk.Finish(aerr)
			out.err = aerr
			return out
		}
		out.promoted = att.Promoted
		spec.FeatureSource = att.Source
		out.role = tk.Role()
	}
	if tk.Role() == share.Leader {
		spec.FeatureSource = tk.Source()
		spec.FeatureSink = tk.Sink()
	}
	tk.Start()
	res, rerr := core.Run(spec)
	tk.Finish(rerr)
	out.res, out.err = res, rerr
	return out
}

func TestSharedRunEndToEnd(t *testing.T) {
	c, err := share.New(share.Config{Window: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const rows = 48

	// The leader explores two layers, the follower one: the follower's
	// feature set is a subset of the leader's, so one pass covers both.
	var wg sync.WaitGroup
	results := make([]memberResult, 2)
	for i, layers := range []int{2, 1} {
		wg.Add(1)
		go func(i, layers int) {
			defer wg.Done()
			results[i] = runShared(t, c, tinySpec(t, rows, layers, 7))
		}(i, layers)
	}
	wg.Wait()

	var leader, follower memberResult
	for _, r := range results {
		switch r.role {
		case share.Leader:
			leader = r
		case share.Follower:
			follower = r
		default:
			t.Fatalf("member sealed as %v; the group did not form", r.role)
		}
	}
	if leader.err != nil || follower.err != nil {
		t.Fatalf("run errors: leader %v, follower %v", leader.err, follower.err)
	}
	if got := len(leader.res.Layers); got != 2 {
		t.Errorf("leader trained %d layers, want 2", got)
	}
	if got := len(follower.res.Layers); got != 1 {
		t.Errorf("follower trained %d layers, want 1", got)
	}

	// The follower attached every inference stage from the handoff: no live
	// steps, no infer spans, all stages labeled shared.
	if follower.res.Cache.StagesShared != 1 || follower.res.Cache.StagesExecuted != 0 {
		t.Errorf("follower cache report = %+v, want 1 shared / 0 executed", follower.res.Cache)
	}
	var sawShared bool
	for _, tm := range follower.res.Timings {
		if strings.HasPrefix(tm.Label, "infer:") {
			t.Errorf("follower ran a live inference stage %q", tm.Label)
		}
		if strings.HasPrefix(tm.Label, "shared:") {
			sawShared = true
		}
	}
	if !sawShared {
		t.Error("follower trace has no shared:<layer> stage")
	}
	if leader.res.Cache.StagesExecuted != 2 {
		t.Errorf("leader executed %d stages, want 2", leader.res.Cache.StagesExecuted)
	}

	// Determinism: the follower's model trained on attached features must
	// match a solo run that computes the same features itself.
	solo, err := core.Run(tinySpec(t, rows, 1, 7))
	if err != nil {
		t.Fatalf("solo baseline: %v", err)
	}
	fl, sl := follower.res.Layers[0], solo.Layers[0]
	if fl.LayerName != sl.LayerName || fl.Train.F1 != sl.Train.F1 || fl.Test.F1 != sl.Test.F1 {
		t.Errorf("follower result (%s F1 %.4f/%.4f) diverges from solo (%s F1 %.4f/%.4f): attached features differ from computed ones",
			fl.LayerName, fl.Train.F1, fl.Test.F1, sl.LayerName, sl.Train.F1, sl.Test.F1)
	}

	st := c.Stats()
	if st.Leaders != 1 || st.Followers != 1 || st.Solos != 0 {
		t.Errorf("stats = %+v, want 1 leader + 1 follower", st)
	}
	if st.DedupFLOPs <= 0 {
		t.Errorf("dedup FLOPs = %d, want > 0", st.DedupFLOPs)
	}
	if st.OpenGroups != 0 || st.WaitingMembers != 0 || st.LiveGroups != 0 {
		t.Errorf("coordinator not drained: %+v", st)
	}
}

func TestSharedRunLeaderFaultPromotesFollower(t *testing.T) {
	// Chaos: the leader's second inference stage fails mid-pass (after the
	// first stage already published into the handoff). The follower must be
	// promoted with the typed fault, resume from the leader's partial
	// progress, and finish the group's work.
	defer faultinject.DisarmAll()
	faultinject.Arm(core.FaultStage+":infer", faultinject.FailNth(2))

	c, err := share.New(share.Config{Window: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const rows = 32

	var wg sync.WaitGroup
	results := make([]memberResult, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runShared(t, c, tinySpec(t, rows, 2, 11))
		}(i)
	}
	wg.Wait()

	var failed, promoted memberResult
	for _, r := range results {
		if r.promoted {
			promoted = r
		} else {
			failed = r
		}
	}
	if failed.err == nil {
		t.Fatal("no member failed although the infer failpoint was armed")
	}
	if _, ok := faultinject.AsFault(failed.err); !ok {
		t.Errorf("leader error %v is not the typed injected fault", failed.err)
	}
	if promoted.res == nil {
		t.Fatalf("no follower was promoted (errors: %v / %v)", results[0].err, results[1].err)
	}
	if promoted.err != nil {
		t.Fatalf("promoted follower failed: %v", promoted.err)
	}
	if promoted.role != share.Leader {
		t.Errorf("promoted member's role = %v, want Leader", promoted.role)
	}
	// The promoted run resumed the dead leader's partial progress: stage 1
	// attached from the handoff, stage 2 ran live.
	if promoted.res.Cache.StagesShared != 1 || promoted.res.Cache.StagesExecuted != 1 {
		t.Errorf("promoted cache report = %+v, want 1 shared / 1 executed", promoted.res.Cache)
	}

	st := c.Stats()
	if st.Promotions != 1 {
		t.Errorf("promotions = %d, want 1", st.Promotions)
	}
	if st.Leaders != 2 || st.Followers != 0 {
		t.Errorf("stats = %+v, want 2 leaders (1 failed + 1 promoted)", st)
	}
	if st.OpenGroups != 0 || st.WaitingMembers != 0 || st.LiveGroups != 0 {
		t.Errorf("coordinator not drained after the fault: %+v", st)
	}
}

func TestFingerprintGates(t *testing.T) {
	base := tinySpec(t, 16, 2, 7)
	if _, ok := core.ShareFingerprint(base); !ok {
		t.Fatal("staged spec should be shareable")
	}
	lazy := base
	lazy.PlanKind = plan.Lazy
	if _, ok := core.ShareFingerprint(lazy); ok {
		t.Error("lazy plan must not share")
	}
	premat := base
	premat.PreMaterializeBase = true
	if _, ok := core.ShareFingerprint(premat); ok {
		t.Error("pre-materialized base must not share")
	}

	// Identity is content-addressed: a different seed (different weights)
	// must not collide, while an identical spec must.
	fp1, _ := core.ShareFingerprint(base)
	same, _ := core.ShareFingerprint(tinySpec(t, 16, 2, 7))
	if fp1.Model != same.Model || fp1.WeightsSum != same.WeightsSum || fp1.DataSum != same.DataSum {
		t.Error("identical specs produced different fingerprints")
	}
	other, ok := core.ShareFingerprint(tinySpec(t, 16, 2, 8))
	if !ok {
		t.Fatal("seed-8 spec should be shareable")
	}
	if other.WeightsSum == fp1.WeightsSum {
		t.Error("different seeds share a weights checksum")
	}
	if fp1.InferenceFLOPs <= 0 {
		t.Errorf("fingerprint FLOPs = %d, want > 0", fp1.InferenceFLOPs)
	}
}

func TestFollowerPriceBelowFull(t *testing.T) {
	spec := tinySpec(t, 32, 2, 7)
	full, err := core.Price(spec)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := core.PriceFollower(spec)
	if err != nil {
		t.Fatal(err)
	}
	if follower >= full {
		t.Errorf("follower price %d not below full price %d", follower, full)
	}
	if follower <= 0 {
		t.Errorf("follower price = %d, want > 0 (storage+user memory remains)", follower)
	}
}

// Guard against silently-unused imports when assertions change.
var _ = errors.Is
