package data

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// HOGConfig parameterizes the Histogram-of-Oriented-Gradients extractor
// (Dalal & Triggs, CVPR 2005) — the paper's non-CNN image-feature baseline
// in Figure 8.
type HOGConfig struct {
	// CellSize is the square cell side in pixels.
	CellSize int
	// Bins is the number of unsigned orientation bins over [0, π).
	Bins int
}

// DefaultHOGConfig returns the conventional 8-pixel cells with 9 bins.
func DefaultHOGConfig() HOGConfig { return HOGConfig{CellSize: 8, Bins: 9} }

// HOG computes L2-normalized per-cell orientation histograms of the
// grayscale gradient of a CHW image and returns them as a flat feature
// vector of length (H/cell)·(W/cell)·bins.
func HOG(img *tensor.Tensor, cfg HOGConfig) ([]float32, error) {
	s := img.Shape()
	if len(s) != 3 {
		return nil, fmt.Errorf("%w: HOG expects CHW, got %v", tensor.ErrShape, s)
	}
	if cfg.CellSize <= 0 || cfg.Bins <= 0 {
		return nil, fmt.Errorf("data: invalid HOG config %+v", cfg)
	}
	c, h, w := s[0], s[1], s[2]
	if h < cfg.CellSize || w < cfg.CellSize {
		return nil, fmt.Errorf("data: image %dx%d smaller than HOG cell %d", h, w, cfg.CellSize)
	}

	// Grayscale: channel mean.
	gray := make([]float64, h*w)
	d := img.Data()
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for i := 0; i < h*w; i++ {
			gray[i] += float64(d[base+i])
		}
	}
	inv := 1 / float64(c)
	for i := range gray {
		gray[i] *= inv
	}

	cellsY, cellsX := h/cfg.CellSize, w/cfg.CellSize
	hist := make([]float64, cellsY*cellsX*cfg.Bins)
	binWidth := math.Pi / float64(cfg.Bins)

	for y := 1; y < h-1; y++ {
		cy := y / cfg.CellSize
		if cy >= cellsY {
			continue
		}
		for x := 1; x < w-1; x++ {
			cx := x / cfg.CellSize
			if cx >= cellsX {
				continue
			}
			gx := gray[y*w+x+1] - gray[y*w+x-1]
			gy := gray[(y+1)*w+x] - gray[(y-1)*w+x]
			mag := math.Hypot(gx, gy)
			if mag == 0 {
				continue
			}
			theta := math.Atan2(gy, gx)
			if theta < 0 {
				theta += math.Pi // unsigned orientation
			}
			bin := int(theta / binWidth)
			if bin >= cfg.Bins {
				bin = cfg.Bins - 1
			}
			hist[(cy*cellsX+cx)*cfg.Bins+bin] += mag
		}
	}

	// L2-normalize each cell's histogram.
	out := make([]float32, len(hist))
	for cell := 0; cell < cellsY*cellsX; cell++ {
		base := cell * cfg.Bins
		var norm float64
		for b := 0; b < cfg.Bins; b++ {
			norm += hist[base+b] * hist[base+b]
		}
		norm = math.Sqrt(norm) + 1e-6
		for b := 0; b < cfg.Bins; b++ {
			out[base+b] = float32(hist[base+b] / norm)
		}
	}
	return out, nil
}

// HOGDim returns the feature-vector length HOG produces for an image of the
// given CHW shape.
func HOGDim(shape tensor.Shape, cfg HOGConfig) (int, error) {
	if len(shape) != 3 {
		return 0, fmt.Errorf("%w: HOG expects CHW, got %v", tensor.ErrShape, shape)
	}
	if cfg.CellSize <= 0 || cfg.Bins <= 0 {
		return 0, fmt.Errorf("data: invalid HOG config %+v", cfg)
	}
	return (shape[1] / cfg.CellSize) * (shape[2] / cfg.CellSize) * cfg.Bins, nil
}
