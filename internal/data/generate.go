package data

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataflow"
	"repro/internal/tensor"
)

// Spec describes a synthetic multimodal dataset.
type Spec struct {
	// Name labels the dataset ("foods", "amazon").
	Name string
	// Rows is the number of examples.
	Rows int
	// StructDim is the structured feature dimensionality (including
	// engineered interactions, as in the paper's Foods pre-processing).
	StructDim int
	// ImageSize is the square image resolution (CHW with 3 channels).
	ImageSize int
	// Seed makes generation deterministic.
	Seed int64
	// StructSignal in [0,1] scales how predictive the structured features
	// are on their own.
	StructSignal float64
	// ImageSignal in [0,1] scales how much extra class signal the images
	// carry beyond the structured features.
	ImageSignal float64
}

// Foods returns the Foods-like preset: ~20k rows, 130 structured features
// (nutrition facts and their interactions), binary plant-based target.
func Foods() Spec {
	return Spec{Name: "foods", Rows: 20000, StructDim: 130, ImageSize: 64, Seed: 101,
		StructSignal: 0.45, ImageSignal: 0.35}
}

// Amazon returns the Amazon-like preset: ~200k rows, 200 structured features
// (Doc2Vec title embedding + PCA category features + price), binarized
// sales-rank target. The paper's accuracy experiments use a 20k sample.
func Amazon() Spec {
	return Spec{Name: "amazon", Rows: 200000, StructDim: 200, ImageSize: 64, Seed: 202,
		StructSignal: 0.3, ImageSignal: 0.3}
}

// WithRows returns a copy of the spec scaled to n rows (for tests and
// data-scale sweeps: the paper's "1X/2X/4X/8X" replication).
func (s Spec) WithRows(n int) Spec {
	s.Rows = n
	return s
}

// Generate materializes the dataset as two aligned row slices: the
// structured table Tstr(ID, X) and the image table Timg(ID, I) of
// Section 3.2. Labels ride on the structured rows.
func Generate(spec Spec) (structRows, imageRows []dataflow.Row, err error) {
	if spec.Rows <= 0 || spec.StructDim <= 0 || spec.ImageSize < 8 {
		return nil, nil, fmt.Errorf("data: invalid spec %+v", spec)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	// A fixed random hyperplane over a handful of latent factors drives the
	// label; structured features observe some factors noisily, images
	// render others visually.
	const latentDim = 6
	structRows = make([]dataflow.Row, spec.Rows)
	imageRows = make([]dataflow.Row, spec.Rows)
	for i := 0; i < spec.Rows; i++ {
		latent := make([]float64, latentDim)
		for j := range latent {
			latent[j] = rng.NormFloat64()
		}
		score := 0.9*latent[0] + 0.7*latent[1] + 0.6*latent[2] + 0.5*latent[3]
		label := float32(0)
		if score > 0 {
			label = 1
		}

		structRows[i] = dataflow.Row{
			ID:         int64(i),
			Label:      label,
			Structured: structuredFeatures(spec, latent, rng),
		}
		img, err := renderImage(spec, latent, label, rng)
		if err != nil {
			return nil, nil, err
		}
		blob, err := tensor.Encode(img)
		if err != nil {
			return nil, nil, err
		}
		imageRows[i] = dataflow.Row{ID: int64(i), Image: blob}
	}
	return structRows, imageRows, nil
}

// structuredFeatures observes latent factors 0 and 1 (noisily, scaled by
// StructSignal), fills the rest with noise, and appends pairwise
// interactions of the first few features, mimicking the paper's engineered
// Foods features.
func structuredFeatures(spec Spec, latent []float64, rng *rand.Rand) []float32 {
	x := make([]float32, spec.StructDim)
	informative := 8
	if informative > spec.StructDim {
		informative = spec.StructDim
	}
	for j := 0; j < informative; j++ {
		signal := spec.StructSignal * latent[j%2]
		x[j] = float32(signal + (1-spec.StructSignal)*rng.NormFloat64())
	}
	base := informative
	interactions := 0
	for a := 0; a < informative && base+interactions < spec.StructDim/2; a++ {
		for b := a + 1; b < informative && base+interactions < spec.StructDim/2; b++ {
			x[base+interactions] = x[a] * x[b]
			interactions++
		}
	}
	for j := base + interactions; j < spec.StructDim; j++ {
		x[j] = float32(rng.NormFloat64())
	}
	return x
}

// renderImage draws a 3×S×S image whose appearance encodes latent factors 2
// and 3 (unavailable to the structured features) at two abstraction levels:
//
//   - texture: oriented stripes whose angle and frequency follow factor 2 —
//     recoverable by HOG-style gradient features and low CNN layers;
//   - shape: a bright blob whose position and size follow factor 3 —
//     recoverable by mid-level CNN features, diluted by global pooling.
//
// ImageSignal scales the rendering contrast; the remainder is noise.
func renderImage(spec Spec, latent []float64, label float32, rng *rand.Rand) (*tensor.Tensor, error) {
	s := spec.ImageSize
	img := tensor.New(3, s, s)
	d := img.Data()
	sig := spec.ImageSignal

	// Background: smooth color gradient, slightly label-tinted.
	for c := 0; c < 3; c++ {
		tint := 0.1 * sig * float64(label) * float64(c%2)
		for y := 0; y < s; y++ {
			for x := 0; x < s; x++ {
				v := 0.3 + 0.2*float64(y)/float64(s) + tint
				d[(c*s+y)*s+x] = float32(v)
			}
		}
	}

	// Texture: stripes at an angle driven by latent factor 2 — the signal
	// orientation-histogram features (HOG) can recover.
	angle := math.Pi/4 + 0.5*latent[2]
	freq := 0.35 + 0.1*math.Tanh(latent[2])
	cosA, sinA := math.Cos(angle), math.Sin(angle)
	for y := 0; y < s; y++ {
		for x := 0; x < s; x++ {
			phase := freq * (cosA*float64(x) + sinA*float64(y))
			v := 0.18 * sig * math.Sin(2*math.Pi*phase)
			for c := 0; c < 3; c++ {
				d[(c*s+y)*s+x] += float32(v)
			}
		}
	}

	// Shape: a luminance-neutral color-opponent blob positioned and sized
	// by latent factor 3 — a localized mid-level pattern CNN channels
	// capture but grayscale orientation histograms (HOG) cannot see at
	// all: the channel mean is unchanged everywhere.
	t3 := math.Tanh(latent[3])
	cx := float64(s) * (0.5 + 0.3*t3)
	cy := float64(s) * (0.5 - 0.3*t3)
	radius := float64(s) * (0.12 + 0.05*math.Abs(t3))
	for y := 0; y < s; y++ {
		for x := 0; x < s; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			g := float32(0.9 * sig * math.Exp(-(dx*dx+dy*dy)/(2*radius*radius)))
			d[(0*s+y)*s+x] += g
			d[(1*s+y)*s+x] -= g / 2
			d[(2*s+y)*s+x] -= g / 2
		}
	}

	// Pixel noise.
	for i := range d {
		d[i] += float32(0.12 * rng.NormFloat64())
	}
	return img, nil
}

// TableStats carries the dataset statistics Vista's API expects from the
// user (Table 1(A): "data tables Tstr and Timg and statistics about the
// data").
type TableStats struct {
	NumRows int
	// StructDim is |X|.
	StructDim int
	// StructRowBytes is the average in-memory size of one structured row.
	StructRowBytes int64
	// ImageRowBytes is the average in-memory size of one raw-image row.
	ImageRowBytes int64
}

// Stats measures the generated tables.
func Stats(structRows, imageRows []dataflow.Row) TableStats {
	st := TableStats{NumRows: len(structRows)}
	if len(structRows) > 0 {
		st.StructDim = len(structRows[0].Structured)
		var b int64
		for i := range structRows {
			b += structRows[i].MemBytes()
		}
		st.StructRowBytes = b / int64(len(structRows))
	}
	if len(imageRows) > 0 {
		var b int64
		for i := range imageRows {
			b += imageRows[i].MemBytes()
		}
		st.ImageRowBytes = b / int64(len(imageRows))
	}
	return st
}
