package data

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dataflow"
)

// This file persists multimodal datasets in the layout the paper's workloads
// consume from HDFS: one file per image (the layout behind the "small files
// problem" of Section 5.3) plus a single CSV for the structured table.
//
//	<dir>/structured.csv        id,label,x0,x1,...
//	<dir>/images/<id>.img       encoded image tensor (tensor.Encode format)

const (
	structuredFile = "structured.csv"
	imagesDir      = "images"
	imageExt       = ".img"
)

// Save writes the dataset to dir, creating it if needed.
func Save(dir string, structRows, imageRows []dataflow.Row) error {
	if len(structRows) != len(imageRows) {
		return fmt.Errorf("data: %d structured rows vs %d image rows", len(structRows), len(imageRows))
	}
	if err := os.MkdirAll(filepath.Join(dir, imagesDir), 0o755); err != nil {
		return fmt.Errorf("data: save: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, structuredFile))
	if err != nil {
		return fmt.Errorf("data: save: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i := range structRows {
		r := &structRows[i]
		fmt.Fprintf(w, "%d,%g", r.ID, r.Label)
		for _, v := range r.Structured {
			fmt.Fprintf(w, ",%g", v)
		}
		fmt.Fprintln(w)
		img := &imageRows[i]
		if img.ID != r.ID {
			return fmt.Errorf("data: save: misaligned tables at row %d (%d vs %d)", i, r.ID, img.ID)
		}
		path := filepath.Join(dir, imagesDir, fmt.Sprintf("%d%s", img.ID, imageExt))
		if err := os.WriteFile(path, img.Image, 0o644); err != nil {
			return fmt.Errorf("data: save image %d: %w", img.ID, err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("data: save: %w", err)
	}
	return nil
}

// Load reads a dataset saved by Save. Reading pays one file open per image,
// like the paper's HDFS ingest.
func Load(dir string) (structRows, imageRows []dataflow.Row, err error) {
	f, err := os.Open(filepath.Join(dir, structuredFile))
	if err != nil {
		return nil, nil, fmt.Errorf("data: load: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		row, err := parseStructRow(sc.Text())
		if err != nil {
			return nil, nil, fmt.Errorf("data: load: line %d: %w", line, err)
		}
		structRows = append(structRows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("data: load: %w", err)
	}

	entries, err := os.ReadDir(filepath.Join(dir, imagesDir))
	if err != nil {
		return nil, nil, fmt.Errorf("data: load: %w", err)
	}
	byID := make(map[int64][]byte, len(entries))
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, imageExt) {
			continue
		}
		id, err := strconv.ParseInt(strings.TrimSuffix(name, imageExt), 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("data: load: bad image filename %q", name)
		}
		blob, err := os.ReadFile(filepath.Join(dir, imagesDir, name))
		if err != nil {
			return nil, nil, fmt.Errorf("data: load image %d: %w", id, err)
		}
		byID[id] = blob
	}
	for i := range structRows {
		blob, ok := byID[structRows[i].ID]
		if !ok {
			return nil, nil, fmt.Errorf("data: load: no image for row %d", structRows[i].ID)
		}
		imageRows = append(imageRows, dataflow.Row{ID: structRows[i].ID, Image: blob})
	}
	sort.Slice(structRows, func(a, b int) bool { return structRows[a].ID < structRows[b].ID })
	sort.Slice(imageRows, func(a, b int) bool { return imageRows[a].ID < imageRows[b].ID })
	return structRows, imageRows, nil
}

func parseStructRow(line string) (dataflow.Row, error) {
	fields := strings.Split(line, ",")
	if len(fields) < 2 {
		return dataflow.Row{}, fmt.Errorf("want at least id,label; got %q", line)
	}
	id, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return dataflow.Row{}, fmt.Errorf("bad id %q", fields[0])
	}
	label, err := strconv.ParseFloat(fields[1], 32)
	if err != nil {
		return dataflow.Row{}, fmt.Errorf("bad label %q", fields[1])
	}
	row := dataflow.Row{ID: id, Label: float32(label)}
	if len(fields) > 2 {
		row.Structured = make([]float32, len(fields)-2)
		for i, s := range fields[2:] {
			v, err := strconv.ParseFloat(s, 32)
			if err != nil {
				return dataflow.Row{}, fmt.Errorf("bad feature %d: %q", i, s)
			}
			row.Structured[i] = float32(v)
		}
	}
	return row, nil
}
