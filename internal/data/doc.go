// Package data provides the synthetic multimodal datasets of the Vista
// reproduction. The paper evaluates on Foods (≈20k examples, 130 structured
// features, one image each) and Amazon (≈200k examples, ≈200 structured
// features); neither is available offline, so this package generates
// datasets with the same cardinalities whose images carry class signal at
// multiple abstraction levels — structured features alone are weakly
// predictive, hand-crafted HOG features add some lift, and CNN features add
// more (the Figure 8 shape).
//
// Generate is deterministic in the spec's seed, so two processes (or a
// server and its test) generating the same spec get byte-identical rows —
// the property the feature store's content addressing and the server's
// admission pricing both lean on. Datasets can also be saved to and loaded
// from a directory (one image file per example) for cross-invocation reuse;
// see Save and Load.
package data
