package data

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"image/jpeg"
	"image/png"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

// testPNG renders a w×h image with a red left half and blue right half.
func testPNG(t *testing.T, w, h int) []byte {
	t.Helper()
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x < w/2 {
				img.Set(x, y, color.RGBA{R: 255, A: 255})
			} else {
				img.Set(x, y, color.RGBA{B: 255, A: 255})
			}
		}
	}
	var b bytes.Buffer
	if err := png.Encode(&b, img); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestDecodeImagePNG(t *testing.T) {
	blob := testPNG(t, 40, 20)
	got, err := DecodeImage(bytes.NewReader(blob), 16)
	if err != nil {
		t.Fatalf("DecodeImage: %v", err)
	}
	if !got.Shape().Equal(tensor.Shape{3, 16, 16}) {
		t.Fatalf("shape = %v, want (3,16,16)", got.Shape())
	}
	// Left half red, right half blue; values in [0,1].
	if got.At(0, 8, 2) < 0.9 || got.At(2, 8, 2) > 0.1 {
		t.Errorf("left half not red: R=%v B=%v", got.At(0, 8, 2), got.At(2, 8, 2))
	}
	if got.At(2, 8, 13) < 0.9 || got.At(0, 8, 13) > 0.1 {
		t.Errorf("right half not blue: R=%v B=%v", got.At(0, 8, 13), got.At(2, 8, 13))
	}
	for _, v := range got.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("value %v outside [0,1]", v)
		}
	}
}

func TestDecodeImageJPEG(t *testing.T) {
	img := image.NewRGBA(image.Rect(0, 0, 12, 12))
	for y := 0; y < 12; y++ {
		for x := 0; x < 12; x++ {
			img.Set(x, y, color.RGBA{R: 128, G: 128, B: 128, A: 255})
		}
	}
	var b bytes.Buffer
	if err := jpeg.Encode(&b, img, nil); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeImage(bytes.NewReader(b.Bytes()), 8)
	if err != nil {
		t.Fatalf("DecodeImage jpeg: %v", err)
	}
	// Uniform gray survives JPEG and resize, within compression tolerance.
	for _, v := range got.Data() {
		if v < 0.4 || v > 0.6 {
			t.Fatalf("gray value %v outside [0.4, 0.6]", v)
		}
	}
}

func TestDecodeImageErrors(t *testing.T) {
	if _, err := DecodeImage(bytes.NewReader([]byte("not an image")), 16); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := DecodeImage(bytes.NewReader(testPNG(t, 4, 4)), 0); err == nil {
		t.Error("zero size accepted")
	}
}

func TestLoadImageDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"3.png", "1.png", "notes.txt"} {
		path := filepath.Join(dir, name)
		var payload []byte
		if filepath.Ext(name) == ".png" {
			payload = testPNG(t, 8, 8)
		} else {
			payload = []byte("ignore me")
		}
		if err := os.WriteFile(path, payload, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := LoadImageDir(dir, 8)
	if err != nil {
		t.Fatalf("LoadImageDir: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("loaded %d rows, want 2 (txt skipped)", len(rows))
	}
	// Numeric stems become IDs (sorted by filename: 1.png, 3.png).
	if rows[0].ID != 1 || rows[1].ID != 3 {
		t.Errorf("IDs = %d, %d; want 1, 3", rows[0].ID, rows[1].ID)
	}
	// Payloads decode back to tensors of the requested size.
	img, err := tensor.Decode(rows[0].Image)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Shape().Equal(tensor.Shape{3, 8, 8}) {
		t.Errorf("decoded shape = %v", img.Shape())
	}
}

func TestLoadImageDirNonNumericNames(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"cat.png", "dog.png"} {
		if err := os.WriteFile(filepath.Join(dir, name), testPNG(t, 4, 4), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := LoadImageDir(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].ID != 0 || rows[1].ID != 1 {
		t.Errorf("sequential IDs expected, got %d, %d", rows[0].ID, rows[1].ID)
	}
}

func TestLoadImageDirErrors(t *testing.T) {
	if _, err := LoadImageDir(t.TempDir(), 8); err == nil {
		t.Error("empty dir accepted")
	}
	if _, err := LoadImageDir("/nonexistent-dir", 8); err == nil {
		t.Error("missing dir accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.png"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadImageDir(dir, 8); err == nil {
		t.Error("corrupt image accepted")
	}
}

func TestRealImagePipelineEndToEnd(t *testing.T) {
	// Real PNGs flow through the DL bridge: decode → resize → encode →
	// inference produces finite features.
	dir := t.TempDir()
	for i := 0; i < 4; i++ {
		name := filepath.Join(dir, fmt.Sprintf("%d.png", i))
		if err := os.WriteFile(name, testPNG(t, 32, 24), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := LoadImageDir(dir, 64) // TinyInputSize
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	img, err := tensor.Decode(rows[0].Image)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Shape().Equal(tensor.Shape{3, 64, 64}) {
		t.Fatalf("shape = %v", img.Shape())
	}
}
