package data

import (
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/tensor"
)

func TestGenerateShapesAndDeterminism(t *testing.T) {
	spec := Foods().WithRows(200)
	s1, i1, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(s1) != 200 || len(i1) != 200 {
		t.Fatalf("rows = %d/%d, want 200/200", len(s1), len(i1))
	}
	for i := range s1 {
		if s1[i].ID != i1[i].ID {
			t.Fatal("tables not aligned on ID")
		}
		if len(s1[i].Structured) != spec.StructDim {
			t.Fatalf("struct dim = %d, want %d", len(s1[i].Structured), spec.StructDim)
		}
		if s1[i].Image != nil || i1[i].Image == nil {
			t.Fatal("payloads on wrong table")
		}
	}
	s2, i2, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s1[7].Structured[3] != s2[7].Structured[3] {
		t.Error("structured generation not deterministic")
	}
	if len(i1[7].Image) != len(i2[7].Image) {
		t.Error("image generation not deterministic")
	}
}

func TestGenerateLabelBalance(t *testing.T) {
	spec := Foods().WithRows(2000)
	spec.ImageSize = 8 // label logic is independent of rendering cost
	s, _, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for i := range s {
		if s[i].Label == 1 {
			pos++
		}
	}
	frac := float64(pos) / 2000
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("positive fraction = %.3f, want roughly balanced", frac)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, _, err := Generate(Spec{Rows: 0, StructDim: 5, ImageSize: 32}); err == nil {
		t.Error("accepted zero rows")
	}
	if _, _, err := Generate(Spec{Rows: 5, StructDim: 0, ImageSize: 32}); err == nil {
		t.Error("accepted zero struct dim")
	}
	if _, _, err := Generate(Spec{Rows: 5, StructDim: 5, ImageSize: 4}); err == nil {
		t.Error("accepted tiny image size")
	}
}

func TestImagesDecodeToSpecShape(t *testing.T) {
	spec := Foods().WithRows(10)
	_, imgs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	img, err := tensor.Decode(imgs[0].Image)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	want := tensor.Shape{3, spec.ImageSize, spec.ImageSize}
	if !img.Shape().Equal(want) {
		t.Errorf("image shape = %v, want %v", img.Shape(), want)
	}
	// Compressed payload should be well below the decoded tensor — the
	// JPEG-vs-tensor size relationship of Section 1.1.
	if int64(len(imgs[0].Image)) >= img.SizeBytes() {
		t.Errorf("encoded image %d B not below decoded %d B", len(imgs[0].Image), img.SizeBytes())
	}
}

func TestPresetCardinalitiesMatchPaper(t *testing.T) {
	f := Foods()
	if f.Rows != 20000 || f.StructDim != 130 {
		t.Errorf("Foods preset = %d rows × %d features; paper says 20000 × 130", f.Rows, f.StructDim)
	}
	a := Amazon()
	if a.Rows != 200000 || a.StructDim != 200 {
		t.Errorf("Amazon preset = %d rows × %d features; paper says 200000 × 200", a.Rows, a.StructDim)
	}
}

func TestStructuredSignalIsPartial(t *testing.T) {
	// Structured features alone must be predictive but far from perfect —
	// leaving room for image features to add lift (Figure 8's premise).
	spec := Foods().WithRows(3000)
	spec.ImageSize = 8 // structured signal is independent of rendering cost
	s, _, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	train, test := ml.SplitByID(s, 0.25)
	m, err := ml.TrainLogRegRows(train, ml.StructuredOnly(), Foods().StructDim,
		ml.LogRegConfig{Iterations: 40, LearningRate: 0.5, Alpha: 0.5, Lambda: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	met, err := ml.Evaluate(m, test, ml.StructuredOnly())
	if err != nil {
		t.Fatal(err)
	}
	if met.Accuracy < 0.6 {
		t.Errorf("struct-only accuracy = %.3f, want >= 0.6 (features must carry signal)", met.Accuracy)
	}
	if met.Accuracy > 0.92 {
		t.Errorf("struct-only accuracy = %.3f: too strong, leaves no room for image lift", met.Accuracy)
	}
}

func TestStats(t *testing.T) {
	s, i, err := Generate(Foods().WithRows(50))
	if err != nil {
		t.Fatal(err)
	}
	st := Stats(s, i)
	if st.NumRows != 50 || st.StructDim != 130 {
		t.Errorf("stats = %+v", st)
	}
	if st.StructRowBytes <= 0 || st.ImageRowBytes <= 0 {
		t.Error("row byte stats missing")
	}
	if st.ImageRowBytes <= st.StructRowBytes {
		t.Error("image rows should be larger than structured rows")
	}
	empty := Stats(nil, nil)
	if empty.NumRows != 0 || empty.StructRowBytes != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestHOGDimensionsAndNorm(t *testing.T) {
	img := tensor.New(3, 64, 64)
	for i := range img.Data() {
		img.Data()[i] = float32(i % 13)
	}
	cfg := DefaultHOGConfig()
	feats, err := HOG(img, cfg)
	if err != nil {
		t.Fatalf("HOG: %v", err)
	}
	wantDim, err := HOGDim(img.Shape(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != wantDim || wantDim != 8*8*9 {
		t.Errorf("HOG dim = %d, want %d (= 8*8*9)", len(feats), wantDim)
	}
	// Each cell's histogram is L2-normalized: norms in [0, ~1].
	for cell := 0; cell < 64; cell++ {
		var norm float64
		for b := 0; b < 9; b++ {
			v := float64(feats[cell*9+b])
			if v < 0 {
				t.Fatalf("negative histogram value at cell %d", cell)
			}
			norm += v * v
		}
		if norm > 1.01 {
			t.Fatalf("cell %d norm² = %.3f > 1", cell, norm)
		}
	}
}

func TestHOGDistinguishesOrientations(t *testing.T) {
	// Horizontal vs vertical stripes must produce clearly different
	// histograms — the property that makes HOG a meaningful baseline.
	horiz := tensor.New(1, 32, 32)
	vert := tensor.New(1, 32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if y%4 < 2 {
				horiz.Data()[y*32+x] = 1
			}
			if x%4 < 2 {
				vert.Data()[y*32+x] = 1
			}
		}
	}
	cfg := HOGConfig{CellSize: 8, Bins: 9}
	fh, err := HOG(horiz, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fv, err := HOG(vert, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var dist float64
	for i := range fh {
		d := float64(fh[i] - fv[i])
		dist += d * d
	}
	if math.Sqrt(dist) < 1 {
		t.Errorf("HOG distance between orientations = %.3f, want > 1", math.Sqrt(dist))
	}
}

func TestHOGValidation(t *testing.T) {
	if _, err := HOG(tensor.New(4), DefaultHOGConfig()); err == nil {
		t.Error("accepted rank-1 input")
	}
	if _, err := HOG(tensor.New(1, 4, 4), DefaultHOGConfig()); err == nil {
		t.Error("accepted image smaller than cell")
	}
	if _, err := HOG(tensor.New(1, 32, 32), HOGConfig{CellSize: 0, Bins: 9}); err == nil {
		t.Error("accepted zero cell size")
	}
	if _, err := HOGDim(tensor.Shape{32, 32}, DefaultHOGConfig()); err == nil {
		t.Error("HOGDim accepted rank-2 shape")
	}
	if _, err := HOGDim(tensor.Shape{3, 32, 32}, HOGConfig{CellSize: 8, Bins: 0}); err == nil {
		t.Error("HOGDim accepted zero bins")
	}
}
