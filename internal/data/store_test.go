package data

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := Foods().WithRows(25)
	spec.ImageSize = 16
	s, imgs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(dir, s, imgs); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// One file per image — the small-files layout.
	entries, err := os.ReadDir(filepath.Join(dir, "images"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 25 {
		t.Fatalf("got %d image files, want 25", len(entries))
	}
	s2, imgs2, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(s2) != 25 || len(imgs2) != 25 {
		t.Fatalf("loaded %d/%d rows", len(s2), len(imgs2))
	}
	for i := range s {
		if s[i].ID != s2[i].ID || s[i].Label != s2[i].Label {
			t.Fatalf("row %d id/label mismatch", i)
		}
		if !reflect.DeepEqual(s[i].Structured, s2[i].Structured) {
			t.Fatalf("row %d structured mismatch", i)
		}
		if !reflect.DeepEqual(imgs[i].Image, imgs2[i].Image) {
			t.Fatalf("row %d image payload mismatch", i)
		}
	}
}

func TestSaveValidation(t *testing.T) {
	dir := t.TempDir()
	spec := Foods().WithRows(4)
	spec.ImageSize = 8
	s, imgs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(dir, s, imgs[:3]); err == nil {
		t.Error("mismatched row counts accepted")
	}
	imgs[0].ID = 999
	if err := Save(dir, s, imgs); err == nil {
		t.Error("misaligned IDs accepted")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, _, err := Load(t.TempDir()); err == nil {
		t.Error("loading an empty dir succeeded")
	}
	// Corrupt CSV.
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "images"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "structured.csv"), []byte("not,a,valid,row\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dir); err == nil {
		t.Error("corrupt csv accepted")
	}
	// Valid CSV but missing image file.
	if err := os.WriteFile(filepath.Join(dir, "structured.csv"), []byte("1,1,0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dir); err == nil {
		t.Error("missing image accepted")
	}
	// Garbage image filename.
	if err := os.WriteFile(filepath.Join(dir, "images", "abc.img"), []byte{1}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dir); err == nil {
		t.Error("bad image filename accepted")
	}
}

func TestParseStructRow(t *testing.T) {
	row, err := parseStructRow("7,1,0.5,-2")
	if err != nil {
		t.Fatal(err)
	}
	if row.ID != 7 || row.Label != 1 || len(row.Structured) != 2 || row.Structured[1] != -2 {
		t.Errorf("parsed %+v", row)
	}
	if _, err := parseStructRow("7"); err == nil {
		t.Error("short line accepted")
	}
	if _, err := parseStructRow("x,1"); err == nil {
		t.Error("bad id accepted")
	}
	if _, err := parseStructRow("1,y"); err == nil {
		t.Error("bad label accepted")
	}
	if _, err := parseStructRow("1,1,z"); err == nil {
		t.Error("bad feature accepted")
	}
	// Label-only row (no features) round-trips.
	row, err = parseStructRow("3,0")
	if err != nil {
		t.Fatal(err)
	}
	if row.Structured != nil {
		t.Error("feature-less row should have nil features")
	}
}
