package data

import (
	"fmt"
	"image"
	_ "image/jpeg" // register JPEG decoding
	_ "image/png"  // register PNG decoding
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/tensor"
)

// This file ingests real images (PNG/JPEG) into Vista's image-tensor format,
// so the library runs on actual photo datasets — the paper's Foods and
// Amazon inputs are directories of JPEGs — not only on the synthetic
// generator. Images are bilinearly resized to the target square resolution
// ("All images are resized to 227×227 resolution, as needed by popular
// CNNs", Section 5) and normalized to [0, 1] CHW float32.

// DecodeImage reads one PNG or JPEG and returns the resized CHW tensor.
func DecodeImage(r io.Reader, size int) (*tensor.Tensor, error) {
	if size <= 0 {
		return nil, fmt.Errorf("data: image size must be positive, got %d", size)
	}
	img, _, err := image.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("data: decode image: %w", err)
	}
	return resizeToTensor(img, size), nil
}

// resizeToTensor bilinearly samples the image into a (3, size, size) tensor
// with channel values in [0, 1].
func resizeToTensor(img image.Image, size int) *tensor.Tensor {
	bounds := img.Bounds()
	w, h := bounds.Dx(), bounds.Dy()
	out := tensor.New(3, size, size)
	d := out.Data()
	plane := size * size
	for y := 0; y < size; y++ {
		// Map output pixel centers into source coordinates.
		sy := (float64(y) + 0.5) * float64(h) / float64(size)
		y0, fy := splitCoord(sy, h)
		for x := 0; x < size; x++ {
			sx := (float64(x) + 0.5) * float64(w) / float64(size)
			x0, fx := splitCoord(sx, w)
			r, g, b := bilinear(img, bounds, x0, y0, fx, fy)
			idx := y*size + x
			d[idx] = r
			d[plane+idx] = g
			d[2*plane+idx] = b
		}
	}
	return out
}

// splitCoord converts a source coordinate into a base index and fraction,
// clamped so base+1 stays in range.
func splitCoord(s float64, limit int) (int, float64) {
	s -= 0.5
	if s < 0 {
		s = 0
	}
	i := int(s)
	if i > limit-2 {
		i = limit - 2
		if i < 0 {
			i = 0
		}
	}
	f := s - float64(i)
	if f < 0 {
		f = 0
	} else if f > 1 {
		f = 1
	}
	return i, f
}

// bilinear samples four neighbors and blends them, returning [0,1] RGB.
func bilinear(img image.Image, bounds image.Rectangle, x0, y0 int, fx, fy float64) (float32, float32, float32) {
	at := func(x, y int) (float64, float64, float64) {
		if x > bounds.Dx()-1 {
			x = bounds.Dx() - 1
		}
		if y > bounds.Dy()-1 {
			y = bounds.Dy() - 1
		}
		r, g, b, _ := img.At(bounds.Min.X+x, bounds.Min.Y+y).RGBA()
		return float64(r) / 65535, float64(g) / 65535, float64(b) / 65535
	}
	r00, g00, b00 := at(x0, y0)
	r10, g10, b10 := at(x0+1, y0)
	r01, g01, b01 := at(x0, y0+1)
	r11, g11, b11 := at(x0+1, y0+1)
	blend := func(v00, v10, v01, v11 float64) float32 {
		top := v00*(1-fx) + v10*fx
		bot := v01*(1-fx) + v11*fx
		return float32(top*(1-fy) + bot*fy)
	}
	return blend(r00, r10, r01, r11), blend(g00, g10, g01, g11), blend(b00, b10, b01, b11)
}

// imageExtensions are the real-image formats LoadImageDir ingests.
var imageExtensions = map[string]bool{".png": true, ".jpg": true, ".jpeg": true}

// LoadImageDir builds an image table from a directory of PNG/JPEG files.
// Filenames (without extension) become row IDs when numeric; otherwise rows
// are numbered in sorted filename order. Each image is resized to size and
// stored in the engine's encoded tensor format.
func LoadImageDir(dir string, size int) ([]dataflow.Row, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("data: load image dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if imageExtensions[strings.ToLower(filepath.Ext(e.Name()))] {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("data: no PNG/JPEG images in %s", dir)
	}
	sort.Strings(names)
	rows := make([]dataflow.Row, 0, len(names))
	for i, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("data: %s: %w", name, err)
		}
		t, err := DecodeImage(f, size)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("data: %s: %w", name, err)
		}
		blob, err := tensor.Encode(t)
		if err != nil {
			return nil, err
		}
		id := int64(i)
		if n, err := parseNumericStem(name); err == nil {
			id = n
		}
		rows = append(rows, dataflow.Row{ID: id, Image: blob})
	}
	return rows, nil
}

func parseNumericStem(name string) (int64, error) {
	stem := strings.TrimSuffix(name, filepath.Ext(name))
	var id int64
	_, err := fmt.Sscanf(stem, "%d", &id)
	if err != nil {
		return 0, err
	}
	// Reject partial parses like "12abc".
	if fmt.Sprintf("%d", id) != stem {
		return 0, fmt.Errorf("non-numeric stem %q", stem)
	}
	return id, nil
}
