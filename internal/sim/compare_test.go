package sim

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// measuredTrace builds a deterministic span tree shaped like a Staged/AJ run.
func measuredTrace() *obs.Span {
	t0 := time.Unix(0, 0)
	at := func(d time.Duration) time.Time { return t0.Add(d) }
	root := obs.StartSpanAt("run", at(0))
	stage := func(name string, from, to time.Duration) {
		root.StartChildAt(name, at(from)).EndAt(at(to))
	}
	stage("ingest", 0, 100*time.Millisecond)
	stage("join", 100*time.Millisecond, 150*time.Millisecond)
	stage("infer:fc6", 150*time.Millisecond, 650*time.Millisecond)
	stage("train:fc6", 650*time.Millisecond, 850*time.Millisecond)
	stage("cache:fc7", 850*time.Millisecond, 870*time.Millisecond)
	root.EndAt(at(900 * time.Millisecond))
	return root
}

func simulated() Result {
	return Result{
		ReadSec: 40,
		JoinSec: 20,
		Layers: []LayerCost{
			{Layer: "fc6", InferSec: 200, TrainFirstSec: 30, TrainRestSec: 10},
			{Layer: "fc7", InferSec: 5, TrainFirstSec: 3, TrainRestSec: 1},
		},
	}
}

func TestCompareTrace(t *testing.T) {
	comps := CompareTrace(simulated(), measuredTrace())
	if len(comps) != 5 {
		t.Fatalf("got %d rows, want 5", len(comps))
	}
	want := []struct {
		stage    string
		estSec   float64
		measured time.Duration
	}{
		{"ingest", 40, 100 * time.Millisecond},
		{"join", 20, 50 * time.Millisecond},
		{"infer:fc6", 200, 500 * time.Millisecond},
		{"train:fc6", 40, 200 * time.Millisecond},
		{"cache:fc7", 0, 20 * time.Millisecond},
	}
	for i, w := range want {
		c := comps[i]
		if c.Stage != w.stage {
			t.Errorf("row %d stage = %q, want %q", i, c.Stage, w.stage)
		}
		if got := c.Estimated.Seconds(); got != w.estSec {
			t.Errorf("%s estimated = %vs, want %vs", w.stage, got, w.estSec)
		}
		if c.Measured != w.measured {
			t.Errorf("%s measured = %v, want %v", w.stage, c.Measured, w.measured)
		}
	}
}

func TestCompareTraceCrashedSim(t *testing.T) {
	r := simulated()
	r.Crash = errors.New("storage exhausted")
	for _, c := range CompareTrace(r, measuredTrace()) {
		if c.Estimated != 0 {
			t.Errorf("%s estimated = %v on a crashed sim", c.Stage, c.Estimated)
		}
		if c.Measured == 0 {
			t.Errorf("%s lost its measurement", c.Stage)
		}
	}
}

func TestRenderComparison(t *testing.T) {
	var b strings.Builder
	RenderComparison(&b, CompareTrace(simulated(), measuredTrace()))
	out := b.String()
	for _, want := range []string{
		"stage", "est%", "meas%",
		"infer:fc6", "200s", "0.500s",
		"total", "300s", "0.870s",
		"66.7%", // infer:fc6's share both estimated (200/300) and nearly measured
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered comparison missing %q:\n%s", want, out)
		}
	}
	// The unmodeled cache stage renders a dash, not 0s.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "cache:fc7") && !strings.Contains(line, "-") {
			t.Errorf("cache row should show '-' estimate: %q", line)
		}
	}
}

func TestCompareTraceUnmodeledLabel(t *testing.T) {
	t0 := time.Unix(0, 0)
	root := obs.StartSpanAt("run", t0)
	root.StartChildAt("ingest", t0).EndAt(t0.Add(100 * time.Millisecond))
	root.StartChildAt("frobnicate:fc6", t0.Add(100*time.Millisecond)).
		EndAt(t0.Add(200 * time.Millisecond))
	root.StartChildAt("cache:fc7", t0.Add(200*time.Millisecond)).
		EndAt(t0.Add(220 * time.Millisecond))
	root.EndAt(t0.Add(250 * time.Millisecond))

	comps := CompareTrace(simulated(), root)
	if len(comps) != 3 {
		t.Fatalf("got %d rows, want 3", len(comps))
	}
	if comps[0].Unmodeled {
		t.Errorf("ingest flagged unmodeled")
	}
	if !comps[1].Unmodeled {
		t.Errorf("bogus label %q not flagged unmodeled", comps[1].Stage)
	}
	if comps[1].Estimated != 0 {
		t.Errorf("unmodeled stage estimated %v, want 0", comps[1].Estimated)
	}
	// Cached (and shared) attaches are deliberately priced at zero, not
	// unmodeled: the simulator knows the stage, it runs cold by design.
	if comps[2].Unmodeled {
		t.Errorf("cache attach flagged unmodeled")
	}

	var b strings.Builder
	RenderComparison(&b, comps)
	found := false
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "frobnicate:fc6") {
			found = true
			if !strings.Contains(line, "unmodeled") {
				t.Errorf("unmodeled row not labeled: %q", line)
			}
		}
	}
	if !found {
		t.Fatalf("frobnicate row missing from render:\n%s", b.String())
	}
}
