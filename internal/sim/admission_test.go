package sim

import (
	"errors"
	"testing"

	"repro/internal/memory"
	"repro/internal/optimizer"
	"repro/internal/plan"
)

// TestAdmissionCost verifies the serving-time price matches the optimizer's
// apportionment, scales with the worker count, and fails for infeasible
// workloads.
func TestAdmissionCost(t *testing.T) {
	wl, err := NewWorkload(WorkloadSpec{
		ModelName: "resnet50", NumLayers: 5, Dataset: FoodsSpec(),
		PlanKind: plan.Staged, Placement: plan.AfterJoin,
		Nodes: 8, CPUSys: 8, MemSys: memory.GB(32),
	})
	if err != nil {
		t.Fatalf("NewWorkload: %v", err)
	}
	d, cost, err := AdmissionCost(wl.Inputs, optimizer.DefaultParams())
	if err != nil {
		t.Fatalf("AdmissionCost: %v", err)
	}
	want := 8 * (d.MemStorage + d.MemUser + d.MemDL)
	if cost != want {
		t.Errorf("cost = %d, want nodes*(storage+user+dl) = %d", cost, want)
	}
	if cost <= 0 {
		t.Errorf("cost = %d, want positive", cost)
	}

	// Halving the cluster halves the node multiplier (the per-worker split
	// may differ, but the price must follow DecisionCost exactly).
	if got := DecisionCost(d, 4); got != want/2 {
		t.Errorf("DecisionCost(4 nodes) = %d, want %d", got, want/2)
	}
	if got := DecisionCost(d, 0); got != want/8 {
		t.Errorf("DecisionCost clamps nodes to 1: got %d, want %d", got, want/8)
	}

	// An infeasible workload cannot be priced.
	tiny := wl.Inputs
	tiny.MemSys = memory.GB(4)
	if _, _, err := AdmissionCost(tiny, optimizer.DefaultParams()); !errors.Is(err, optimizer.ErrNoFeasible) {
		t.Errorf("infeasible workload priced: err = %v", err)
	}
}
