package sim

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/obs/sampler"
)

// This file validates the simulator's memory-model predictions *continuously*
// rather than against end-of-run totals: CompareSeries buckets a run's
// sampled time series (pool gauges, spill counters) into the per-stage
// windows of the measured span tree and lines each window up against the
// abstract memory model's predictions for that stage — peak storage-pool
// occupancy (Section 4.1, Eqs. 9–15, via the intermediate-size estimates of
// Eq. 16) and spill volume. Like CompareTrace, absolute scales only match
// when the simulated workload mirrors the measured one (same rows and image
// bytes); the per-stage *shape* of the occupancy curve is the signal either
// way, and sustained drift in one stage points at the term of the model that
// prices it.

// Series keys the comparison reads from sampled frames (registered by
// dataflow.RegisterMetrics).
const (
	storagePoolSeries = "vista_pool_used_bytes"
	spillBytesSeries  = "vista_engine_bytes_spilled_total"
)

// StageSeries is one stage's predicted-vs-sampled memory behaviour.
type StageSeries struct {
	// Stage is the span label ("ingest", "join", "infer:fc6", ...).
	Stage string
	// Cached marks a feature-store attach stage (see StageComparison.Cached).
	Cached bool
	// Frames is how many sampled frames fell inside the stage's window; with
	// zero frames (stage shorter than the sample period) the measured fields
	// are unknown, not zero.
	Frames int
	// PredStorageBytes is the model's cluster-wide storage-pool occupancy
	// while this stage runs (0 = the model does not price the stage).
	PredStorageBytes int64
	// MeasPeakStorageBytes is the sampled peak of the storage-pool gauges
	// (summed across nodes) inside the stage's window.
	MeasPeakStorageBytes int64
	// PredSpillBytes and MeasSpillBytes are the stage's spill volume: the
	// model's attribution versus the sampled spill counter's delta across
	// the window.
	PredSpillBytes int64
	MeasSpillBytes int64
}

// SeriesReport is the full per-stage validation plus run totals.
type SeriesReport struct {
	Stages []StageSeries
	// PredPeakStorageBytes / MeasPeakStorageBytes are the run-wide peaks.
	PredPeakStorageBytes int64
	MeasPeakStorageBytes int64
	// PredSpillBytes / MeasSpillBytes are the run-wide spill volumes.
	PredSpillBytes int64
	MeasSpillBytes int64
}

// CompareSeries buckets rec's frames into the per-stage windows of the
// measured span tree and pairs each stage's sampled peak storage occupancy
// and spill-volume delta with the simulator's prediction for that stage:
//
//	ingest, join      → BaseStorageBytes (both base tables resident)
//	infer:<l>         → the layer's LiveStorageBytes; its SpilledBytes
//	premat:<l>        → same (the base pass materializes the layer's table)
//	cache:<l>         → the layer's LiveStorageBytes (attach loads the same
//	                    table), flagged Cached
//	train:<l>         → the layer's LiveStorageBytes (its table stays live)
//
// A crashed simulation yields all-zero predictions; the measurements remain.
func CompareSeries(r Result, trace *obs.Span, rec *sampler.Recording) SeriesReport {
	byLayer := make(map[string]LayerCost, len(r.Layers))
	for _, lc := range r.Layers {
		byLayer[lc.Layer] = lc
	}
	predict := func(label string) (storage, spill int64) {
		if r.Crash != nil {
			return 0, 0
		}
		name, layer, _ := strings.Cut(label, ":")
		switch name {
		case "ingest", "join":
			return r.BaseStorageBytes, 0
		case "infer", "premat", "cache":
			lc := byLayer[layer]
			return lc.LiveStorageBytes, lc.SpilledBytes
		case "train":
			return byLayer[layer].LiveStorageBytes, 0
		}
		return 0, 0
	}

	var rep SeriesReport
	traceEnd := trace.Start()
	if t, ok := trace.EndTime(); ok {
		traceEnd = t
	}
	for _, sp := range trace.Children() {
		start := sp.Start()
		end, ended := sp.EndTime()
		if !ended {
			end = traceEnd
		}
		row := StageSeries{
			Stage:  sp.Name(),
			Cached: strings.HasPrefix(sp.Name(), "cache:"),
		}
		row.PredStorageBytes, row.PredSpillBytes = predict(sp.Name())

		var peak float64
		for _, f := range rec.Frames {
			if f.T.Before(start) || f.T.After(end) {
				continue
			}
			row.Frames++
			if v := f.Sum(storagePoolSeries, obs.Label{Key: "pool", Value: "storage"}); v > peak {
				peak = v
			}
		}
		row.MeasPeakStorageBytes = int64(peak)
		at, _ := rec.ValueAt(spillBytesSeries, start)
		to, _ := rec.ValueAt(spillBytesSeries, end)
		if d := to - at; d > 0 {
			row.MeasSpillBytes = int64(d)
		}

		rep.Stages = append(rep.Stages, row)
		if row.PredStorageBytes > rep.PredPeakStorageBytes {
			rep.PredPeakStorageBytes = row.PredStorageBytes
		}
		if row.MeasPeakStorageBytes > rep.MeasPeakStorageBytes {
			rep.MeasPeakStorageBytes = row.MeasPeakStorageBytes
		}
		rep.PredSpillBytes += row.PredSpillBytes
		rep.MeasSpillBytes += row.MeasSpillBytes
	}
	return rep
}

// RenderSeriesReport writes the validation as an aligned table — one row per
// stage, a totals row, and a drift note per stage where both sides are
// non-zero.
func RenderSeriesReport(w io.Writer, rep SeriesReport) {
	width := len("stage")
	for _, s := range rep.Stages {
		if len(s.Stage) > width {
			width = len(s.Stage)
		}
	}
	fmt.Fprintf(w, "%-*s  %7s  %12s %12s  %12s %12s\n", width, "stage",
		"frames", "est peak", "meas peak", "est spill", "meas spill")
	for _, s := range rep.Stages {
		meas, spill := "-", "-"
		if s.Frames > 0 {
			meas = memory.FormatBytes(s.MeasPeakStorageBytes)
			spill = memory.FormatBytes(s.MeasSpillBytes)
		}
		note := ""
		if s.Cached {
			note = "  (cached)"
		} else if s.Frames > 0 && s.PredStorageBytes > 0 && s.MeasPeakStorageBytes > 0 {
			note = fmt.Sprintf("  (peak drift %.2fx)",
				float64(s.MeasPeakStorageBytes)/float64(s.PredStorageBytes))
		}
		fmt.Fprintf(w, "%-*s  %7d  %12s %12s  %12s %12s%s\n", width, s.Stage,
			s.Frames,
			memory.FormatBytes(s.PredStorageBytes), meas,
			memory.FormatBytes(s.PredSpillBytes), spill, note)
	}
	fmt.Fprintf(w, "%-*s  %7s  %12s %12s  %12s %12s\n", width, "total", "",
		memory.FormatBytes(rep.PredPeakStorageBytes), memory.FormatBytes(rep.MeasPeakStorageBytes),
		memory.FormatBytes(rep.PredSpillBytes), memory.FormatBytes(rep.MeasSpillBytes))
}
