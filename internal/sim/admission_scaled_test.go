package sim

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/optimizer"
	"repro/internal/plan"
)

func admissionInputs(t *testing.T) optimizer.Inputs {
	t.Helper()
	wl, err := NewWorkload(WorkloadSpec{
		ModelName: "resnet50", NumLayers: 5, Dataset: FoodsSpec(),
		PlanKind: plan.Staged, Placement: plan.AfterJoin,
		Nodes: 8, CPUSys: 8, MemSys: memory.GB(32),
	})
	if err != nil {
		t.Fatalf("NewWorkload: %v", err)
	}
	return wl.Inputs
}

// TestDecisionCostScaledIdentity pins the bit-exactness contract: identity
// scales must route through DecisionCost unchanged, so an unprofiled server
// prices exactly as before the calibration loop existed.
func TestDecisionCostScaledIdentity(t *testing.T) {
	in := admissionInputs(t)
	d, err := optimizer.Optimize(in, optimizer.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{0, 1, 4, 8} {
		want := DecisionCost(d, nodes)
		if got := DecisionCostScaled(d, nodes, optimizer.CostScales{}); got != want {
			t.Errorf("nodes=%d: zero scales cost %d != DecisionCost %d", nodes, got, want)
		}
		ones := optimizer.CostScales{Ingest: 1, Join: 1, Infer: 1, Train: 1, Storage: 1}
		if got := DecisionCostScaled(d, nodes, ones); got != want {
			t.Errorf("nodes=%d: identity scales cost %d != DecisionCost %d", nodes, got, want)
		}
		if got := FollowerCostScaled(d, nodes, optimizer.CostScales{}); got != FollowerCost(d, nodes) {
			t.Errorf("nodes=%d: identity follower cost %d != FollowerCost %d", nodes, got, FollowerCost(d, nodes))
		}
	}
}

// TestDecisionCostScaledChargesStorageNeed verifies the anti-telescoping
// charge: under a real profile the Storage term is min(MemStorage,
// ⌈SDouble/nodes⌉), so corrections to the estimates actually move the price
// instead of being absorbed by the Storage remainder.
func TestDecisionCostScaledChargesStorageNeed(t *testing.T) {
	d := optimizer.Decision{
		MemStorage: memory.GB(10),
		MemUser:    memory.GB(4),
		MemDL:      memory.GB(2),
		SDouble:    memory.GB(16), // ⌈16/8⌉ = 2 GB/node, well under the 10 GB remainder
	}
	sc := optimizer.CostScales{Infer: 2}
	got := DecisionCostScaled(d, 8, sc)
	want := 8 * (memory.GB(2) + memory.GB(4) + memory.GB(2))
	if got != want {
		t.Errorf("scaled cost = %d, want storage-need charge %d", got, want)
	}
	// When the modeled need exceeds the remainder, the remainder caps the
	// charge — the cluster cannot reserve more than it has.
	d.SDouble = memory.GB(200)
	got = DecisionCostScaled(d, 8, sc)
	want = 8 * (memory.GB(10) + memory.GB(4) + memory.GB(2))
	if got != want {
		t.Errorf("capped cost = %d, want remainder charge %d", got, want)
	}
	// The need divides ceiling-wise across nodes.
	d.SDouble = memory.GB(16) + 1
	got = DecisionCostScaled(d, 8, sc)
	want = 8 * (memory.GB(2) + 1 + memory.GB(4) + memory.GB(2))
	if got != want {
		t.Errorf("ceil-divided cost = %d, want %d", got, want)
	}
}

// TestAdmissionCostScaledMovesThePrice runs the full loop in the direction
// the CI smoke exercises: a cost model whose inference estimates run 25× hot
// converges on an Infer factor near 1/25 = 0.04, and pricing through that
// fitted factor lowers the admission charge (tiny corrected DL footprint,
// storage charged at its modeled need instead of the whole remainder). A
// budget between the two prices then provably flips the verdict from
// rejected to admitted.
func TestAdmissionCostScaledMovesThePrice(t *testing.T) {
	in := admissionInputs(t)
	_, plain, err := AdmissionCost(in, optimizer.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	params := optimizer.DefaultParams()
	params.Scales = optimizer.CostScales{Infer: 0.04}
	d, scaled, err := AdmissionCost(in, params)
	if err != nil {
		t.Fatal(err)
	}
	if scaled >= plain {
		t.Fatalf("fitted 0.04 infer factor did not lower the price: %d vs %d", scaled, plain)
	}
	if got := DecisionCostScaled(d, in.NNodes, params.Scales); got != scaled {
		t.Errorf("AdmissionCost = %d, want DecisionCostScaled = %d", scaled, got)
	}
	// A budget between the two prices rejects under paper constants and
	// admits under the fitted profile: the verdict provably flips.
	budget := (plain + scaled) / 2
	if !(scaled <= budget && plain > budget) {
		t.Errorf("no flipping budget exists between %d and %d", scaled, plain)
	}
	// Followers shed MemDL, so the follower price stays at or below the
	// leader's under the fitted pricing too.
	if f := FollowerCostScaled(d, in.NNodes, params.Scales); f > scaled {
		t.Errorf("scaled follower cost %d above leader cost %d", f, scaled)
	}

	// The opposite mis-calibration — a model running 25× cold fits a 25×
	// factor — blows VGG16's DL footprint past system memory: the workload
	// stops being admittable at all, the strongest possible flip.
	vgg, err := NewWorkload(WorkloadSpec{
		ModelName: "vgg16", NumLayers: 3, Dataset: FoodsSpec(),
		PlanKind: plan.Staged, Placement: plan.AfterJoin,
		Nodes: 8, CPUSys: 8, MemSys: memory.GB(32),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := AdmissionCost(vgg.Inputs, optimizer.DefaultParams()); err != nil {
		t.Fatalf("unprofiled vgg16 should be admittable: %v", err)
	}
	params.Scales = optimizer.CostScales{Infer: 25}
	if _, _, err := AdmissionCost(vgg.Inputs, params); err == nil {
		t.Error("25x infer factor should price vgg16 infeasible")
	}
}
