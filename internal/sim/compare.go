package sim

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/obs"
)

// This file lines the simulator's analytical estimates up against a real
// run's measured span tree (core.Result.Trace): one row per top-level stage
// span, each paired with the simulator cost component that models it. The
// absolute scale differs wildly by design — the simulator prices the paper's
// cluster while the engine runs a scaled-down in-process replica — so the
// interesting signal is the *shape*: which stages dominate, and whether the
// measured proportions track the estimated ones.

// StageComparison pairs one measured stage with its simulated estimate.
type StageComparison struct {
	// Stage is the span label ("ingest", "join", "infer:fc6", ...).
	Stage string
	// Estimated is the simulator's cost for the matching component; zero
	// when the simulator has no model for the stage (e.g. "cache:" attaches,
	// which the cold-run simulator never prices).
	Estimated time.Duration
	// Measured is the span's wall-clock duration.
	Measured time.Duration
	// Cached marks a stage served from the feature store: its measured time
	// is a table attach, not CNN inference, so lining it up against a
	// cold-run estimate would report meaningless relative error. The render
	// labels such rows instead of comparing them.
	Cached bool
	// Shared marks a stage attached from a sharing group's in-memory handoff
	// (a follower riding its leader's pass); like Cached, the measured time
	// is an attach, not inference, and the render labels it instead of
	// comparing.
	Shared bool
	// Unmodeled marks a span label the simulator has no cost component for
	// at all (a stage name this comparison predates). Its zero estimate
	// would otherwise read as infinite drift, so renders label it and
	// calibration aggregates exclude it. Cached/shared attaches are NOT
	// unmodeled: the simulator knows those stages, it deliberately prices
	// them at zero for a cold run.
	Unmodeled bool
}

// Share returns d's fraction of total, in [0, 1] (0 when total is 0).
func share(d time.Duration, total time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	return float64(d) / float64(total)
}

// CompareTrace matches a simulated run against a measured span tree. Every
// top-level child of trace becomes one comparison row, in execution order:
//
//	ingest            → ReadSec
//	join              → JoinSec (the AJ placement's up-front join)
//	infer:<l>         → the layer's InferSec
//	premat:<l>        → the layer's InferSec (the base pass is inference)
//	train:<l>         → the layer's TrainFirstSec + TrainRestSec + JoinSec
//	cache:<l>         → 0 (feature-store attach; the simulator runs cold)
//	shared:<l>        → 0 (share-handoff attach; the leader ran the pass)
//	anything else     → 0, flagged Unmodeled (no cost component exists)
//
// A crashed simulation (r.Crash != nil) yields all-zero estimates.
func CompareTrace(r Result, trace *obs.Span) []StageComparison {
	byLayer := make(map[string]LayerCost, len(r.Layers))
	for _, lc := range r.Layers {
		byLayer[lc.Layer] = lc
	}
	// estimate prices a label; modeled reports whether the simulator has a
	// cost component for it at all (cache/shared attaches are modeled — at
	// zero, deliberately — while an unknown name is not).
	estimate := func(label string) (sec float64, modeled bool) {
		name, layer, _ := strings.Cut(label, ":")
		lc := byLayer[layer]
		switch name {
		case "ingest":
			sec, modeled = r.ReadSec, true
		case "join":
			sec, modeled = r.JoinSec, true
		case "infer", "premat":
			sec, modeled = lc.InferSec, true
		case "train":
			sec, modeled = lc.TrainFirstSec+lc.TrainRestSec+lc.JoinSec, true
		case "cache", "shared":
			sec, modeled = 0, true
		}
		if r.Crash != nil {
			sec = 0
		}
		return sec, modeled
	}
	children := trace.Children()
	out := make([]StageComparison, len(children))
	for i, sp := range children {
		sec, modeled := estimate(sp.Name())
		out[i] = StageComparison{
			Stage:     sp.Name(),
			Estimated: time.Duration(sec * float64(time.Second)),
			Measured:  sp.Duration(),
			Cached:    strings.HasPrefix(sp.Name(), "cache:"),
			Shared:    strings.HasPrefix(sp.Name(), "shared:"),
			Unmodeled: !modeled,
		}
	}
	return out
}

// RenderComparison writes the comparison as an aligned table: absolute
// estimated/measured times plus each stage's share of its run, which is the
// scale-free column worth reading.
func RenderComparison(w io.Writer, comps []StageComparison) {
	var estTotal, measTotal time.Duration
	width := len("stage")
	for _, c := range comps {
		estTotal += c.Estimated
		measTotal += c.Measured
		if len(c.Stage) > width {
			width = len(c.Stage)
		}
	}
	fmt.Fprintf(w, "%-*s  %12s %7s  %12s %7s\n", width, "stage",
		"est", "est%", "measured", "meas%")
	for _, c := range comps {
		note := ""
		if c.Cached {
			note = "  (cached: feature-store attach, not modeled)"
		}
		if c.Shared {
			note = "  (shared: leader's pass attached, not modeled)"
		}
		if c.Unmodeled {
			note = "  (unmodeled: the simulator has no cost component for this stage)"
		}
		fmt.Fprintf(w, "%-*s  %12s %6.1f%%  %12s %6.1f%%%s\n", width, c.Stage,
			formatSec(c.Estimated), 100*share(c.Estimated, estTotal),
			formatSec(c.Measured), 100*share(c.Measured, measTotal), note)
	}
	fmt.Fprintf(w, "%-*s  %12s %7s  %12s %7s\n", width, "total",
		formatSec(estTotal), "", formatSec(measTotal), "")
}

// formatSec renders a duration in seconds with a sensible precision.
func formatSec(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s == 0:
		return "-"
	case math.Abs(s) >= 100:
		return fmt.Sprintf("%.0fs", s)
	case math.Abs(s) >= 1:
		return fmt.Sprintf("%.1fs", s)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}
