package sim

import (
	"repro/internal/cnn"
	"repro/internal/memory"
	"repro/internal/optimizer"
	"repro/internal/plan"
)

// DatasetSpec is the simulator-level description of a dataset (the paper's
// Foods and Amazon).
type DatasetSpec struct {
	Name string
	// Rows is the example count.
	Rows int
	// StructDim is the structured feature count.
	StructDim int
	// ImageRowBytes is the average raw (compressed) image payload.
	ImageRowBytes int64
}

// FoodsSpec matches the paper's Foods dataset: ~20k examples, 130 structured
// features, ~300 MB total (≈14 KB JPEG per image).
func FoodsSpec() DatasetSpec {
	return DatasetSpec{Name: "foods", Rows: 20000, StructDim: 130, ImageRowBytes: 14 << 10}
}

// AmazonSpec matches the paper's Amazon dataset: ~200k examples, 200
// structured features, ~3 GB total.
func AmazonSpec() DatasetSpec {
	return DatasetSpec{Name: "amazon", Rows: 200000, StructDim: 200, ImageRowBytes: 14 << 10}
}

// Scale replicates the dataset's rows by f (the paper's semi-synthetic
// "1X/2X/4X/8X" scaling). The result is floored at one row: a sub-row
// product would otherwise truncate to zero and every downstream per-row
// cost (and the optimizer's feasibility check) silently degenerates.
func (d DatasetSpec) Scale(f float64) DatasetSpec {
	d.Rows = int(float64(d.Rows) * f)
	if d.Rows < 1 {
		d.Rows = 1
	}
	return d
}

// WithStructDim overrides the structured feature count (Figure 10(3,4)).
func (d DatasetSpec) WithStructDim(dim int) DatasetSpec {
	d.StructDim = dim
	return d
}

// WorkloadSpec bundles everything needed to build a simulator workload.
type WorkloadSpec struct {
	ModelName string
	NumLayers int
	Dataset   DatasetSpec
	PlanKind  plan.Kind
	Placement plan.JoinPlacement
	PreMat    bool
	// Nodes defaults to the profile's node count at Run time but is needed
	// here for optimizer inputs.
	Nodes int
	// CPUSys and MemSys describe the worker (default: paper cluster).
	CPUSys int
	MemSys int64
	MemGPU int64
	// TrainIters defaults to the paper's 10.
	TrainIters int
	// MLPDownstream marks the downstream model as a DL-resident MLP
	// (the TFT+Beam comparison); default is PD-resident logistic
	// regression.
	MLPDownstream bool
	// MemoryOnly marks Ignite-like execution semantics: UDFs materialize
	// whole decoded partitions (inflating User Memory needs) and Storage
	// Memory must fit the peak intermediate footprint (no disk spill). Set
	// it when the target profile is Ignite-like so the optimizer budgets
	// accordingly.
	MemoryOnly bool
}

// NewWorkload compiles the plan and assembles optimizer inputs.
func NewWorkload(ws WorkloadSpec) (Workload, error) {
	m, err := cnn.ByName(ws.ModelName)
	if err != nil {
		return Workload{}, err
	}
	stats, err := cnn.ComputeStats(m)
	if err != nil {
		return Workload{}, err
	}
	p, err := plan.CompileFromStats(ws.PlanKind, ws.Placement, stats, ws.NumLayers,
		plan.Options{PreMaterializeBase: ws.PreMat})
	if err != nil {
		return Workload{}, err
	}
	if ws.Nodes <= 0 {
		ws.Nodes = 8
	}
	if ws.CPUSys <= 0 {
		ws.CPUSys = 8
	}
	if ws.MemSys <= 0 {
		ws.MemSys = memory.GB(32)
	}
	if ws.TrainIters <= 0 {
		ws.TrainIters = 10
	}
	maxDim := ws.Dataset.StructDim
	layers, err := stats.TopLayerStats(ws.NumLayers)
	if err != nil {
		return Workload{}, err
	}
	for _, l := range layers {
		if l.FeatureDim+ws.Dataset.StructDim > maxDim {
			maxDim = l.FeatureDim + ws.Dataset.StructDim
		}
	}
	in := optimizer.Inputs{
		ModelStats:           stats,
		NumLayers:            ws.NumLayers,
		NumRows:              ws.Dataset.Rows,
		StructDim:            ws.Dataset.StructDim,
		ImageRowBytes:        ws.Dataset.ImageRowBytes,
		WholePartitionDecode: ws.MemoryOnly,
		StorageMustFit:       ws.MemoryOnly,
		NNodes:               ws.Nodes,
		MemSys:               ws.MemSys,
		MemGPU:               ws.MemGPU,
		CPUSys:               ws.CPUSys,
	}
	if ws.MLPDownstream {
		in.Placement = optimizer.MInDLMemory
		in.DownstreamMemBytes = optimizer.MLPMemBytes(maxDim, []int{1024, 1024})
	} else {
		in.Placement = optimizer.MInPDUserMemory
		in.DownstreamMemBytes = optimizer.LogRegMemBytes(maxDim)
	}
	return Workload{Plan: p, Inputs: in, TrainIters: ws.TrainIters}, nil
}

// VistaConfig runs the optimizer for the workload and returns the resulting
// configuration. It fails with optimizer.ErrNoFeasible when no configuration
// fits.
func VistaConfig(w Workload) (Config, error) {
	d, err := optimizer.Optimize(w.Inputs, optimizer.DefaultParams())
	if err != nil {
		return Config{}, err
	}
	return FromDecision(d, optimizer.DefaultParams()), nil
}
