package sim_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dataflow"
	"repro/internal/featurestore"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/sim"
)

// simulateLike builds and runs the simulator on a workload mirroring the real
// run's shape (rows, feature dims, image bytes), the same construction
// cmd/vista's -trace report uses.
func simulateLike(t *testing.T, structRows, imageRows []dataflow.Row, layers, nodes, cores int, memGB float64) sim.Result {
	t.Helper()
	var imgBytes int64
	for i := range imageRows {
		imgBytes += imageRows[i].MemBytes()
	}
	imgBytes /= int64(len(imageRows))
	wl, err := sim.NewWorkload(sim.WorkloadSpec{
		ModelName: "tiny-alexnet", NumLayers: layers,
		Dataset: sim.DatasetSpec{
			Name: "foods", Rows: len(structRows),
			StructDim:     len(structRows[0].Structured),
			ImageRowBytes: imgBytes,
		},
		PlanKind: 0, Placement: 0, // Staged/AJ defaults
		Nodes: nodes, CPUSys: cores, MemSys: memory.GB(memGB),
	})
	if err != nil {
		t.Fatalf("NewWorkload: %v", err)
	}
	cfg, err := sim.VistaConfig(wl)
	if err != nil {
		t.Fatalf("VistaConfig: %v", err)
	}
	prof := sim.PaperCluster().WithNodes(nodes)
	prof.MemPerNode = memory.GB(memGB)
	return sim.Run(wl, cfg, prof)
}

// TestCompareAgainstFeatureStoreRun validates both comparisons against real
// executions: a cold staged run (every stage live, sampled series populated)
// and a warm rerun whose inference stages attach from the feature store —
// those must surface as labeled Cached rows, not as huge relative errors.
func TestCompareAgainstFeatureStoreRun(t *testing.T) {
	structRows, imageRows, err := data.Generate(data.Foods().WithRows(100))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	store, err := featurestore.Open(t.TempDir(), memory.MB(64))
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	defer store.Close()
	spec := core.Spec{
		Nodes: 2, CoresPerNode: 2, MemPerNode: memory.GB(32),
		SystemKind: memory.SparkLike,
		ModelName:  "tiny-alexnet", NumLayers: 2,
		Downstream: core.DefaultDownstream(),
		StructRows: structRows, ImageRows: imageRows, Seed: 1,
		FeatureStore: store,
		Metrics:      obs.NewRegistry(),
		SampleEvery:  time.Millisecond,
	}
	cold, err := core.Run(spec)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	warm, err := core.Run(spec)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if warm.Cache.StagesFromCache == 0 {
		t.Fatalf("warm run hit no cache: %+v", warm.Cache)
	}
	simRes := simulateLike(t, structRows, imageRows, 2, 2, 2, 32)
	if simRes.Crash != nil {
		t.Fatalf("simulated run crashed: %v", simRes.Crash)
	}

	// CompareTrace on the warm run: every feature-store attach is flagged
	// Cached with a zero estimate, and the render labels it.
	comps := sim.CompareTrace(simRes, warm.Trace)
	var cachedRows int
	for _, c := range comps {
		if strings.HasPrefix(c.Stage, "cache:") {
			cachedRows++
			if !c.Cached {
				t.Errorf("%s not flagged Cached", c.Stage)
			}
			if c.Estimated != 0 {
				t.Errorf("%s estimated %v, want 0 (simulator runs cold)", c.Stage, c.Estimated)
			}
			if c.Measured <= 0 {
				t.Errorf("%s lost its measurement", c.Stage)
			}
		} else if c.Cached {
			t.Errorf("%s flagged Cached without a cache: label", c.Stage)
		}
	}
	if cachedRows != warm.Cache.StagesFromCache {
		t.Errorf("cached rows = %d, want %d", cachedRows, warm.Cache.StagesFromCache)
	}
	var b strings.Builder
	sim.RenderComparison(&b, comps)
	if !strings.Contains(b.String(), "(cached: feature-store attach, not modeled)") {
		t.Errorf("render missing the cached label:\n%s", b.String())
	}

	// CompareSeries on the cold staged run: per-stage predicted vs sampled
	// peak storage occupancy, with real frames behind the measurements.
	if cold.Series == nil || len(cold.Series.Frames) < 2 {
		t.Fatalf("cold run recorded no series")
	}
	rep := sim.CompareSeries(simRes, cold.Trace, cold.Series)
	if len(rep.Stages) != len(cold.Trace.Children()) {
		t.Fatalf("series report covers %d stages, trace has %d",
			len(rep.Stages), len(cold.Trace.Children()))
	}
	var inferRows, framesSeen int
	for _, s := range rep.Stages {
		framesSeen += s.Frames
		if strings.HasPrefix(s.Stage, "infer:") {
			inferRows++
			if s.PredStorageBytes <= 0 {
				t.Errorf("%s has no storage prediction", s.Stage)
			}
		}
	}
	if inferRows == 0 {
		t.Error("cold staged run produced no infer stages")
	}
	if framesSeen == 0 {
		t.Error("no sampled frames fell inside any stage window")
	}
	if rep.MeasPeakStorageBytes <= 0 {
		t.Errorf("sampled peak storage = %d, want > 0", rep.MeasPeakStorageBytes)
	}
	if rep.PredPeakStorageBytes <= 0 {
		t.Errorf("predicted peak storage = %d, want > 0", rep.PredPeakStorageBytes)
	}
	// The warm run's series report flags the cached stages.
	warmRep := sim.CompareSeries(simRes, warm.Trace, warm.Series)
	var flagged int
	for _, s := range warmRep.Stages {
		if s.Cached {
			flagged++
		}
	}
	if flagged != warm.Cache.StagesFromCache {
		t.Errorf("warm series report flags %d cached stages, want %d",
			flagged, warm.Cache.StagesFromCache)
	}
}
