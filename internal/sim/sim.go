package sim

import (
	"fmt"
	"math"

	"repro/internal/dataflow"
	"repro/internal/memory"
	"repro/internal/optimizer"
	"repro/internal/plan"
)

// Workload describes one feature-transfer job for the simulator.
type Workload struct {
	// Plan is the compiled logical plan (carries the CNN's selected layer
	// statistics and per-step FLOP counts).
	Plan *plan.Plan
	// Inputs are the optimizer-level inputs (model stats, rows, dims,
	// image bytes, downstream footprint) the crash model shares with the
	// optimizer.
	Inputs optimizer.Inputs
	// TrainIters is the downstream model's iteration count (paper: 10).
	TrainIters int
}

// Config is the system configuration under test: either an optimizer
// Decision (Vista) or a hand-built baseline.
type Config struct {
	CPU, NP   int
	Apportion memory.Apportionment
	Join      dataflow.JoinKind
	Pers      dataflow.PersistFormat
}

// FromDecision converts an optimizer decision into a simulator config.
func FromDecision(d optimizer.Decision, params optimizer.Params) Config {
	return Config{
		CPU:       d.CPU,
		NP:        d.NP,
		Apportion: d.Apportionment(params),
		Join:      d.Join,
		Pers:      d.Pers,
	}
}

// LayerCost is the per-layer runtime breakdown (Table 3's rows).
type LayerCost struct {
	Layer string
	// InferSec is partial CNN inference for this layer's stage.
	InferSec float64
	// TrainFirstSec is the downstream model's first iteration, which scans
	// the stage's materialized table (Appendix C: the first iteration
	// dominates).
	TrainFirstSec float64
	// TrainRestSec is the remaining iterations over pooled features.
	TrainRestSec float64
	// JoinSec is per-layer join cost (BJ placement only).
	JoinSec float64
	// SpillSec is disk-spill I/O attributed to this layer's stage.
	SpillSec float64
	// LiveStorageBytes is the predicted cluster-wide storage-pool occupancy
	// while this layer's table is live, capped at the storage budget — the
	// quantity a sampled vista_pool_used_bytes{pool="storage"} gauge should
	// track (CompareSeries reads it).
	LiveStorageBytes int64
	// SpilledBytes is the spill volume attributed to this layer's stage.
	SpilledBytes int64
}

// Total returns the layer's total seconds.
func (l LayerCost) Total() float64 {
	return l.InferSec + l.TrainFirstSec + l.TrainRestSec + l.JoinSec + l.SpillSec
}

// Result is a simulated run.
type Result struct {
	// Crash is non-nil when the configuration hits a Section 4.1 crash
	// scenario; costs are then undefined.
	Crash error
	// ReadSec is input ingestion (struct file + the images' small-files
	// penalty).
	ReadSec float64
	// JoinSec is the up-front join cost (AJ placement).
	JoinSec float64
	// Layers is the per-layer breakdown.
	Layers []LayerCost
	// SpilledBytes is total spill traffic.
	SpilledBytes int64
	// PeakStoragePerNode is the high-water cached footprint per worker.
	PeakStoragePerNode int64
	// BaseStorageBytes is the stored footprint of the base tables — the
	// cluster-wide storage occupancy predicted while the up-front join (AJ)
	// holds both inputs, before any layer table exists.
	BaseStorageBytes int64
	// StorageCapBytes is the cluster-wide storage budget under the
	// configuration (occupancy predictions are capped at it).
	StorageCapBytes int64
}

// TotalSec returns the run's total simulated seconds.
func (r *Result) TotalSec() float64 {
	t := r.ReadSec + r.JoinSec
	for _, l := range r.Layers {
		t += l.Total()
	}
	return t
}

// TotalMin returns the run's total simulated minutes.
func (r *Result) TotalMin() float64 { return r.TotalSec() / 60 }

// serializedCompression is the average compression the serialized
// persistence format achieves over deserialized bytes (Appendix A,
// Figure 15: ~2–4× depending on feature sparsity; a flat factor here).
const serializedCompression = 2.2

// model is the simulator's internal, fully resolved view of one run.
type model struct {
	w    Workload
	cfg  Config
	prof Profile

	rows float64
	tstr float64 // |Tstr| bytes
	timg float64 // |Timg| bytes
	base float64 // cached base (joined for AJ; Tstr+Timg for BJ)
	// stage/table sizes, indexed by position in Plan.Layers
	tableBytes  []float64 // what each layer's intermediate table holds
	pooledBytes []float64 // pooled training projection per layer
	compressed  bool      // storage holds compressed (serialized) bytes
}

func newModel(w Workload, cfg Config, prof Profile) *model {
	m := &model{w: w, cfg: cfg, prof: prof, rows: float64(w.Inputs.NumRows)}
	m.tstr = float64(optimizer.StructTableSize(w.Inputs.NumRows, w.Inputs.StructDim))
	m.timg = m.rows * float64(w.Inputs.ImageRowBytes)
	if w.Inputs.FullyCached() {
		// Every selected layer streams from the feature store: the raw image
		// payloads are never loaded (mirrors optimizer.IntermediateSizes).
		m.timg = 0
	}
	m.base = m.tstr + m.timg
	// Ignite always stores a compressed binary format (Section 4.2.3);
	// Spark compresses only under the serialized persistence choice.
	m.compressed = cfg.Pers == dataflow.Serialized || !prof.Kind.SupportsSpill()

	m.tableBytes = make([]float64, len(w.Plan.Layers))
	m.pooledBytes = make([]float64, len(w.Plan.Layers))
	for i, l := range w.Plan.Layers {
		pooled := m.rows * 4 * float64(w.Inputs.StructDim+l.FeatureDim)
		m.pooledBytes[i] = pooled
		switch {
		case i == w.Plan.PreMaterializedBase:
			// The pre-materialized base must hold the raw tensor so later
			// partial inference can continue from it (Appendix B).
			m.tableBytes[i] = m.rows*float64(16+l.RawBytes) + m.tstrShare()
		case w.Plan.Kind == plan.Lazy:
			// The manual approach exports g_l-pooled feature vectors.
			m.tableBytes[i] = m.rows*float64(16+4*l.FeatureDim) + m.tstrShare()
		case w.Plan.Kind == plan.Eager:
			// One pass writes every layer's raw tensor (pooling happens at
			// training time) — the Section 1.1 blow-up.
			m.tableBytes[i] = m.rows*float64(16+l.RawBytes) + m.tstrShare()
		default: // Staged: emitted pooled vector + the raw carry
			m.tableBytes[i] = m.rows*float64(16+4*l.FeatureDim+int(l.RawBytes)) + m.tstrShare()
		}
	}
	return m
}

// PreMaterializationCost simulates materializing the bottom-most selected
// layer ahead of time (Appendix B): read the images, run partial inference
// from the image to the base layer, and write the raw feature table to
// disk. It is reported separately, as in Figures 6 and 16.
func PreMaterializationCost(w Workload, cfg Config, prof Profile) Result {
	if err := validateRun(w, cfg, prof); err != nil {
		return Result{Crash: err}
	}
	m := newModel(w, cfg, prof)
	nodes := float64(prof.Nodes)
	base := w.Plan.Layers[0]
	res := Result{}
	res.ReadSec = m.rows*prof.PerImageReadMs/1000/math.Pow(nodes, prof.ReadParallelExp) +
		(m.timg+m.tstr)/(nodes*prof.DiskMBps*mb)
	nodeGFLOPS := prof.BaseGFLOPS * parallelEfficiency(cfg.CPU) * computeEfficiency(w.Inputs.ModelStats.ModelName)
	if prof.GPU != nil {
		nodeGFLOPS = prof.GPU.GFLOPS
	}
	tableBytes := m.rows * float64(16+base.RawBytes)
	res.Layers = []LayerCost{{
		Layer:         base.Name,
		InferSec:      m.rows * float64(base.CumFLOPs) / (nodeGFLOPS * 1e9 * nodes),
		TrainFirstSec: m.stored(tableBytes) / (nodes * prof.DiskMBps * mb), // write-out
	}}
	return res
}

// tstrShare is the structured payload carried through intermediate tables
// under the AJ placement (joined tables retain X).
func (m *model) tstrShare() float64 {
	if m.w.Plan.Placement == plan.AfterJoin {
		return m.tstr
	}
	return 0
}

// stored maps logical bytes to their in-storage footprint.
func (m *model) stored(b float64) float64 {
	if m.compressed {
		return b / serializedCompression
	}
	return b
}

// liveBytes is the cluster-wide cached footprint while working on the i-th
// computed layer.
func (m *model) liveBytes(li int) float64 {
	switch m.w.Plan.Kind {
	case plan.Eager:
		sum := m.stored(m.base)
		for _, b := range m.tableBytes {
			sum += m.stored(b)
		}
		return sum
	case plan.Staged:
		live := m.stored(m.base) + m.stored(m.tableBytes[li])
		if li > 0 {
			live += m.stored(m.tableBytes[li-1])
		}
		return live
	default: // Lazy
		return m.stored(m.base) + m.stored(m.tableBytes[li])
	}
}

// peakStorageNeed is the largest cluster-wide cached footprint the plan
// reaches.
func (m *model) peakStorageNeed() int64 {
	var peak float64
	for i := range m.w.Plan.Layers {
		if v := m.liveBytes(i); v > peak {
			peak = v
		}
	}
	if len(m.w.Plan.Layers) == 0 {
		peak = m.stored(m.base)
	}
	return int64(peak)
}

// userNeed is the configuration's actual User Memory consumption, mirroring
// optimizer.UserMemoryNeed but plan-aware: the largest α-inflated stage
// partition plus decode buffers and activations. For the Staged plan this is
// never above the optimizer's (raw-carry, s_single-based) budget, so
// Vista-chosen configurations cannot fail this check.
func (m *model) userNeed() int64 {
	params := optimizer.DefaultParams()
	st := m.w.Inputs.ModelStats
	var maxTable float64
	for _, b := range m.tableBytes {
		if b > maxTable {
			maxTable = b
		}
	}
	featPart := maxTable / float64(m.cfg.NP)
	working := featPart
	serialized := float64(st.SerializedBytes)
	if m.w.Inputs.FullyCached() {
		// Mirrors optimizer.UserMemoryNeed: a fully-warm run decodes no
		// images, batches nothing into the DL system, and broadcasts no
		// checkpoint.
		serialized = 0
	} else {
		batch := float64(8) * float64(st.InputBytes)
		decode := batch
		if m.w.Inputs.WholePartitionDecode || !m.prof.Kind.SupportsSpill() {
			if whole := m.rows * float64(st.InputBytes) / float64(m.cfg.NP); whole > decode {
				decode = whole
			}
		}
		working += decode + batch + float64(st.ActivationWorkingBytes)
	}
	need := serialized + float64(m.cfg.CPU)*params.Alpha*working
	if m.w.Inputs.Placement == optimizer.MInPDUserMemory {
		if alt := float64(m.cfg.CPU) * float64(m.w.Inputs.DownstreamMemBytes); alt > need {
			need = alt
		}
	}
	return int64(need)
}

// Run simulates one workload under one configuration on one profile.
func Run(w Workload, cfg Config, prof Profile) Result {
	if err := validateRun(w, cfg, prof); err != nil {
		return Result{Crash: err}
	}
	m := newModel(w, cfg, prof)
	if err := m.crashCheck(); err != nil {
		return Result{Crash: err}
	}

	nodes := float64(prof.Nodes)
	st := w.Inputs.ModelStats
	res := Result{}

	// A step is served from the feature store when every computed layer it
	// emits falls inside the cached bottom-up prefix (Inputs.CachedLayers):
	// no CNN FLOPs, no image read — just loading the materialized table.
	stepCached := make([]bool, len(w.Plan.Steps))
	{
		idx := 0
		for i, s := range w.Plan.Steps {
			stepCached[i] = idx+len(s.Emits) <= w.Inputs.CachedLayers
			idx += len(s.Emits)
		}
	}

	// ——— Read ———
	readsImages := w.Plan.PreMaterializedBase < 0 && len(w.Plan.Steps) > 0 && !stepCached[0]
	for i, s := range w.Plan.Steps {
		if s.FromImage && !stepCached[i] {
			readsImages = true
		}
	}
	if readsImages {
		res.ReadSec = m.rows*prof.PerImageReadMs/1000/math.Pow(nodes, prof.ReadParallelExp) +
			(m.timg+m.tstr)/(nodes*prof.DiskMBps*mb)
	} else {
		res.ReadSec = m.tstr / (nodes * prof.DiskMBps * mb)
	}
	if w.Plan.PreMaterializedBase >= 0 {
		// The pre-materialized base layer is read from disk (Appendix B:
		// feature layers are "generally larger than the compressed image
		// formats", raising I/O cost).
		res.ReadSec += m.stored(m.tableBytes[w.Plan.PreMaterializedBase]) / (nodes * prof.DiskMBps * mb)
	}

	// ——— Up-front join (AJ) ———
	if w.Plan.Placement == plan.AfterJoin {
		res.JoinSec = joinCost(cfg.Join, m.tstr, m.timg, prof)
	}

	// ——— Per-stage inference + training ———
	nodeGFLOPS := prof.BaseGFLOPS * parallelEfficiency(cfg.CPU) * computeEfficiency(st.ModelName)
	if prof.GPU != nil {
		nodeGFLOPS = prof.GPU.GFLOPS
	}
	taskSec := func(passes float64) float64 {
		per := prof.PerTaskOverheadMs
		if cfg.NP > prof.HighNPThreshold {
			per += prof.HighNPPenaltyMs
		}
		return passes * float64(cfg.NP) * per / 1000 / (nodes * float64(cfg.CPU))
	}
	scanRate := prof.ScanMBps
	if m.compressed {
		scanRate *= 0.85 // decompression tax on scans
	}
	storageCap := float64(cfg.Apportion.Storage) * nodes
	res.StorageCapBytes = int64(storageCap)
	res.BaseStorageBytes = int64(math.Min(m.stored(m.base), storageCap))

	layerIdx := 0
	for stepIdx, step := range w.Plan.Steps {
		var inferSec float64
		if stepCached[stepIdx] {
			// Cache attach: load the stage's materialized table from the
			// store instead of running partial inference — disk I/O plus the
			// task overhead of the attach pass, zero CNN FLOPs and no DL
			// stage startup.
			li := layerOffset(w.Plan, layerIdx+len(step.Emits)-1)
			inferSec = m.stored(m.tableBytes[li])/(nodes*prof.DiskMBps*mb) + taskSec(1)
		} else {
			inferSec = m.rows*float64(step.FLOPsPerImage)/(nodeGFLOPS*1e9*nodes) + taskSec(1) + 3
			if !step.FromImage {
				// Passes reading the pre-materialized base re-scan it from the
				// cache/disk each time (Appendix B's I/O cost); a staged
				// chain's carry was just written and is hot, so it costs
				// nothing extra beyond its materialization.
				if src := m.inputTableIndex(step); src >= 0 && src == w.Plan.PreMaterializedBase {
					inferSec += m.stored(m.tableBytes[src]) / (nodes * scanRate * mb)
				}
			}
		}
		for range step.Emits {
			li := layerOffset(w.Plan, layerIdx)
			l := w.Plan.Layers[li]
			lc := LayerCost{Layer: l.Name}
			// A step's inference cost is attributed to its first emitted
			// layer (Eager's single pass lands on the bottom layer).
			lc.InferSec = inferSec
			inferSec = 0

			// Storage pressure while this layer's table is live.
			live := m.liveBytes(li)
			if over := live - storageCap; over > 0 {
				res.SpilledBytes += int64(over)
				lc.SpilledBytes = int64(over)
				lc.SpillSec = 2 * over / (nodes * prof.SpillMBps * mb)
			}
			lc.LiveStorageBytes = int64(math.Min(live, storageCap))
			if pn := int64(math.Min(live, storageCap) / nodes); pn > res.PeakStoragePerNode {
				res.PeakStoragePerNode = pn
			}

			// BJ: a per-layer join of Tstr with the pooled projection.
			if w.Plan.Placement == plan.BeforeJoin {
				lc.JoinSec = joinCost(cfg.Join, m.tstr, m.pooledBytes[li], prof)
			}

			// Downstream training: the first iteration scans the stage's
			// materialized table; later iterations scan the pooled
			// projection (cached in the trainer's own format).
			lc.TrainFirstSec = m.stored(m.tableBytes[li])/(nodes*scanRate*mb) + taskSec(1)
			if w.TrainIters > 1 {
				lc.TrainRestSec = float64(w.TrainIters-1) *
					(m.pooledBytes[li]/(nodes*prof.ScanMBps*mb*4) + taskSec(1)/2)
			}
			res.Layers = append(res.Layers, lc)
			layerIdx++
		}
	}
	// Pre-materialized base layer (Appendix B): trained with no inference.
	if w.Plan.PreMaterializedBase >= 0 {
		li := w.Plan.PreMaterializedBase
		l := w.Plan.Layers[li]
		lc := LayerCost{
			Layer:            l.Name,
			TrainFirstSec:    m.stored(m.tableBytes[li])/(nodes*scanRate*mb) + taskSec(1),
			LiveStorageBytes: int64(math.Min(m.stored(m.tableBytes[li]), storageCap)),
		}
		if w.TrainIters > 1 {
			lc.TrainRestSec = float64(w.TrainIters-1) * (m.pooledBytes[li] / (nodes * prof.ScanMBps * mb * 4))
		}
		res.Layers = append([]LayerCost{lc}, res.Layers...)
	}
	return res
}

const mb = 1 << 20

// inputTableIndex returns the Plan.Layers index of the table a continuation
// step reads from: the feature layer immediately below the step's From, or
// -1 when the step reads raw images.
func (m *model) inputTableIndex(step plan.Step) int {
	best := -1
	for i, l := range m.w.Plan.Layers {
		if l.LayerIndex < step.From && (best < 0 || l.LayerIndex > m.w.Plan.Layers[best].LayerIndex) {
			best = i
		}
	}
	return best
}

// layerOffset maps the i-th *computed* layer to its index in Plan.Layers
// (pre-materialized plans skip the base layer in Steps).
func layerOffset(p *plan.Plan, i int) int {
	if p.PreMaterializedBase >= 0 {
		return i + 1
	}
	return i
}

// joinCost models one key-key join: shuffle moves both sides across the
// network; broadcast ships the small side everywhere and scans the big side
// locally.
func joinCost(kind dataflow.JoinKind, small, large float64, prof Profile) float64 {
	nodes := float64(prof.Nodes)
	switch kind {
	case dataflow.BroadcastJoin:
		return small/(prof.NetMBps*mb) + large/(nodes*prof.ScanMBps*mb) + 2
	default:
		return (small+large)/(nodes*prof.NetMBps*mb) + (small+large)/(nodes*prof.ScanMBps*mb) + 2
	}
}

// crashCheck applies the Section 4.1 crash scenarios.
func (m *model) crashCheck() error {
	w, cfg, prof := m.w, m.cfg, m.prof
	in := w.Inputs
	st := in.ModelStats
	params := optimizer.DefaultParams()

	// Equation 15: GPU memory.
	if prof.GPU != nil {
		need := int64(cfg.CPU) * max64(st.GPUMemBytes, in.DownstreamGPUMemBytes)
		if need >= prof.GPU.MemBytes {
			return &memory.OOMError{
				Region: memory.Device, Scenario: memory.DeviceExhausted,
				Need: need, Avail: prof.GPU.MemBytes,
				Detail: fmt.Sprintf("%d GPU replicas of %s", cfg.CPU, st.ModelName),
			}
		}
	}

	// Scenario 3: oversized partitions exhaust Core Memory during joins.
	var maxTable float64
	for _, b := range m.tableBytes {
		if b > maxTable {
			maxTable = b
		}
	}
	buildPart := int64(math.Max(maxTable, m.base)) / int64(cfg.NP)
	if coreNeed := int64(cfg.CPU) * buildPart; coreNeed > cfg.Apportion.Core {
		return &memory.OOMError{
			Region: memory.Core, Scenario: memory.LargePartition,
			Need: coreNeed, Avail: cfg.Apportion.Core,
			Detail: fmt.Sprintf("np=%d leaves %s partitions", cfg.NP, memory.FormatBytes(buildPart)),
		}
	}

	// Scenario 2: UDF working sets exhaust User Memory.
	if need := m.userNeed(); need > cfg.Apportion.User {
		return &memory.OOMError{
			Region: memory.User, Scenario: memory.InsufficientUser,
			Need: need, Avail: cfg.Apportion.User,
			Detail: fmt.Sprintf("%d threads of %s + feature TensorLists", cfg.CPU, st.ModelName),
		}
	}

	// Scenario 4: a broadcast the driver cannot hold.
	if cfg.Join == dataflow.BroadcastJoin {
		if tstr := int64(m.tstr); tstr > prof.DriverMem {
			return &memory.OOMError{
				Region: memory.User, Scenario: memory.DriverOOM,
				Need: tstr, Avail: prof.DriverMem,
				Detail: "broadcast build of Tstr at the driver",
			}
		}
	}

	// Scenario 1: total resident set exceeds physical memory — the OS kills
	// the workload. Storage counts only up to its (evictable) budget.
	dlNeed := optimizer.DLMemoryNeed(in, cfg.CPU)
	storageUsed := m.peakStorageNeed() / int64(prof.Nodes)
	if storageUsed > cfg.Apportion.Storage {
		storageUsed = cfg.Apportion.Storage
	}
	resident := params.MemOSReserved + m.userNeed() + params.MemCore + storageUsed + dlNeed
	if resident > prof.MemPerNode {
		return &memory.OOMError{
			Region: memory.DLExecution, Scenario: memory.DLBlowup,
			Need: resident, Avail: prof.MemPerNode,
			Detail: fmt.Sprintf("%d DL replicas (%s each) push the resident set past system memory",
				cfg.CPU, memory.FormatBytes(st.MemBytes)),
		}
	}

	// Memory-only storage exhaustion (the Ignite Eager crash).
	if !prof.Kind.SupportsSpill() {
		if need := m.peakStorageNeed(); need > cfg.Apportion.Storage*int64(prof.Nodes) {
			return &memory.OOMError{
				Region: memory.Storage, Scenario: memory.StorageExhausted,
				Need: need, Avail: cfg.Apportion.Storage * int64(prof.Nodes),
				Detail: fmt.Sprintf("%s plan intermediates on a memory-only store", w.Plan.Kind),
			}
		}
	}
	return nil
}

func validateRun(w Workload, cfg Config, prof Profile) error {
	switch {
	case w.Plan == nil:
		return fmt.Errorf("sim: nil plan")
	case w.Inputs.ModelStats == nil:
		return fmt.Errorf("sim: nil model stats")
	case w.Inputs.NumRows <= 0:
		return fmt.Errorf("sim: no rows")
	case cfg.CPU <= 0 || cfg.NP <= 0:
		return fmt.Errorf("sim: invalid config cpu=%d np=%d", cfg.CPU, cfg.NP)
	case prof.Nodes <= 0:
		return fmt.Errorf("sim: profile has no nodes")
	case w.TrainIters <= 0:
		return fmt.Errorf("sim: train iterations must be positive")
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
