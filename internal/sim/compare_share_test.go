package sim_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dataflow"
	"repro/internal/featurestore"
	"repro/internal/memory"
	"repro/internal/sim"
)

// memHandoff is a minimal in-memory FeatureSource/FeatureSink pair standing
// in for internal/share's group handoff, so this test exercises only the
// trace-comparison contract.
type memHandoff struct {
	m map[featurestore.Key][]dataflow.Row
}

func (h *memHandoff) Publish(k featurestore.Key, rows []dataflow.Row) { h.m[k] = rows }
func (h *memHandoff) Lookup(k featurestore.Key) ([]dataflow.Row, bool) {
	rows, ok := h.m[k]
	return rows, ok
}

// TestCompareTraceFlagsSharedStages mirrors the feature-store Cached-flag
// test for the share path: a follower whose inference stages attach from a
// leader's handoff must surface as Shared rows with a zero estimate, and the
// render must label them.
func TestCompareTraceFlagsSharedStages(t *testing.T) {
	structRows, imageRows, err := data.Generate(data.Foods().WithRows(80))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	spec := core.Spec{
		Nodes: 2, CoresPerNode: 2, MemPerNode: memory.GB(32),
		SystemKind: memory.SparkLike,
		ModelName:  "tiny-alexnet", NumLayers: 2,
		Downstream: core.DefaultDownstream(),
		StructRows: structRows, ImageRows: imageRows, Seed: 3,
	}
	h := &memHandoff{m: make(map[featurestore.Key][]dataflow.Row)}
	leaderSpec := spec
	leaderSpec.FeatureSink = h
	if _, err := core.Run(leaderSpec); err != nil {
		t.Fatalf("leader run: %v", err)
	}
	followerSpec := spec
	followerSpec.FeatureSource = h
	follower, err := core.Run(followerSpec)
	if err != nil {
		t.Fatalf("follower run: %v", err)
	}
	if follower.Cache.StagesShared == 0 {
		t.Fatalf("follower attached no shared stages: %+v", follower.Cache)
	}

	simRes := simulateLike(t, structRows, imageRows, 2, 2, 2, 32)
	if simRes.Crash != nil {
		t.Fatalf("simulated run crashed: %v", simRes.Crash)
	}
	comps := sim.CompareTrace(simRes, follower.Trace)
	var sharedRows int
	for _, c := range comps {
		if strings.HasPrefix(c.Stage, "shared:") {
			sharedRows++
			if !c.Shared {
				t.Errorf("%s not flagged Shared", c.Stage)
			}
			if c.Cached {
				t.Errorf("%s flagged Cached; the handoff is not the feature store", c.Stage)
			}
			if c.Estimated != 0 {
				t.Errorf("%s estimated %v, want 0 (simulator runs the pass live)", c.Stage, c.Estimated)
			}
			if c.Measured <= 0 {
				t.Errorf("%s lost its measurement", c.Stage)
			}
		} else if c.Shared {
			t.Errorf("%s flagged Shared without a shared: label", c.Stage)
		}
	}
	if sharedRows != follower.Cache.StagesShared {
		t.Errorf("shared rows = %d, want %d", sharedRows, follower.Cache.StagesShared)
	}
	var b strings.Builder
	sim.RenderComparison(&b, comps)
	if !strings.Contains(b.String(), "(shared: leader's pass attached, not modeled)") {
		t.Errorf("render missing the shared label:\n%s", b.String())
	}
}
