package sim

import (
	"errors"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/memory"
	"repro/internal/optimizer"
	"repro/internal/plan"
)

func mustWorkload(t *testing.T, ws WorkloadSpec) Workload {
	t.Helper()
	w, err := NewWorkload(ws)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func layersFor(model string) int {
	return map[string]int{"alexnet": 4, "vgg16": 3, "resnet50": 5}[model]
}

func vistaRun(t *testing.T, model string, ds DatasetSpec, prof Profile) Result {
	t.Helper()
	memOnly := !prof.Kind.SupportsSpill()
	w := mustWorkload(t, WorkloadSpec{ModelName: model, NumLayers: layersFor(model),
		Dataset: ds, PlanKind: plan.Staged, Placement: plan.AfterJoin,
		Nodes: prof.Nodes, MemoryOnly: memOnly})
	cfg, err := VistaConfig(w)
	if err != nil {
		t.Fatalf("Vista optimizer found no config for %s/%s on %s: %v", model, ds.Name, prof.Name, err)
	}
	return Run(w, cfg, prof)
}

func lazyRun(t *testing.T, model string, ds DatasetSpec, cpu int, prof Profile) Result {
	t.Helper()
	memOnly := !prof.Kind.SupportsSpill()
	w := mustWorkload(t, WorkloadSpec{ModelName: model, NumLayers: layersFor(model),
		Dataset: ds, PlanKind: plan.Lazy, Placement: plan.BeforeJoin,
		Nodes: prof.Nodes, MemoryOnly: memOnly})
	cfg := BaselineSpark(cpu)
	if memOnly {
		cfg = BaselineIgnite(cpu)
	}
	return Run(w, cfg, prof)
}

// TestVistaNeverCrashes checks the paper's headline reliability claim over
// the full Figure 6 grid: "Unlike the baselines, Vista never crashes."
func TestVistaNeverCrashes(t *testing.T) {
	for _, prof := range []Profile{PaperCluster(), IgniteCluster()} {
		for _, ds := range []DatasetSpec{FoodsSpec(), AmazonSpec()} {
			for _, model := range []string{"alexnet", "vgg16", "resnet50"} {
				r := vistaRun(t, model, ds, prof)
				if r.Crash != nil {
					t.Errorf("%s/%s/%s: Vista crashed: %v", prof.Name, ds.Name, model, r.Crash)
				}
			}
		}
	}
}

// TestSparkVGGBaselineCrashes checks Section 5.1: "On Spark-TF, Lazy-5 and
// Lazy-7 crash on both datasets for VGG16", while Lazy-1 survives.
func TestSparkVGGBaselineCrashes(t *testing.T) {
	for _, ds := range []DatasetSpec{FoodsSpec(), AmazonSpec()} {
		for _, cpu := range []int{5, 7} {
			r := lazyRun(t, "vgg16", ds, cpu, PaperCluster())
			oom, ok := memory.IsOOM(r.Crash)
			if !ok {
				t.Errorf("%s Lazy-%d VGG16 should crash, got %v", ds.Name, cpu, r.Crash)
				continue
			}
			if oom.Scenario != memory.DLBlowup {
				t.Errorf("%s Lazy-%d VGG16 crash scenario = %v, want dl-execution-blowup", ds.Name, cpu, oom.Scenario)
			}
		}
		if r := lazyRun(t, "vgg16", ds, 1, PaperCluster()); r.Crash != nil {
			t.Errorf("%s Lazy-1 VGG16 should survive: %v", ds.Name, r.Crash)
		}
	}
}

// TestBaselinesSurviveWherePaperSaysSo covers the non-crashing Figure 6
// baseline cells for AlexNet/ResNet50 on Spark.
func TestBaselinesSurviveWherePaperSaysSo(t *testing.T) {
	for _, ds := range []DatasetSpec{FoodsSpec(), AmazonSpec()} {
		for _, model := range []string{"alexnet", "resnet50"} {
			for _, cpu := range []int{1, 5, 7} {
				if r := lazyRun(t, model, ds, cpu, PaperCluster()); r.Crash != nil {
					t.Errorf("spark %s/%s Lazy-%d should survive: %v", ds.Name, model, cpu, r.Crash)
				}
			}
		}
	}
}

// TestIgniteAmazonLazy7Crashes checks "On Ignite-TF, Lazy-7 crashes for all
// CNNs on Amazon" while Lazy-5 survives for AlexNet/ResNet50.
func TestIgniteAmazonLazy7Crashes(t *testing.T) {
	for _, model := range []string{"alexnet", "vgg16", "resnet50"} {
		r := lazyRun(t, model, AmazonSpec(), 7, IgniteCluster())
		if r.Crash == nil {
			t.Errorf("ignite Amazon Lazy-7 %s should crash", model)
		}
	}
	for _, model := range []string{"alexnet", "resnet50"} {
		r := lazyRun(t, model, AmazonSpec(), 5, IgniteCluster())
		if r.Crash != nil {
			t.Errorf("ignite Amazon Lazy-5 %s should survive: %v", model, r.Crash)
		}
	}
}

// TestIgniteEagerAmazonResNetCrashes checks "On Ignite-TF, Eager on Amazon
// also crashes for ResNet50 due to intermediate data exhausting the total
// available system memory."
func TestIgniteEagerAmazonResNetCrashes(t *testing.T) {
	w := mustWorkload(t, WorkloadSpec{ModelName: "resnet50", NumLayers: 5,
		Dataset: AmazonSpec(), PlanKind: plan.Eager, Placement: plan.BeforeJoin, MemoryOnly: true})
	r := Run(w, TunedBaseline(w, 5), IgniteCluster())
	oom, ok := memory.IsOOM(r.Crash)
	if !ok {
		t.Fatalf("expected storage crash, got %v", r.Crash)
	}
	if oom.Scenario != memory.StorageExhausted {
		t.Errorf("scenario = %v, want storage-exhausted", oom.Scenario)
	}
	// The same Eager plan on Spark survives but pays heavy spills.
	ws := mustWorkload(t, WorkloadSpec{ModelName: "resnet50", NumLayers: 5,
		Dataset: AmazonSpec(), PlanKind: plan.Eager, Placement: plan.BeforeJoin})
	rs := Run(ws, TunedBaseline(ws, 5), PaperCluster())
	if rs.Crash != nil {
		t.Fatalf("spark Eager should spill, not crash: %v", rs.Crash)
	}
	if rs.SpilledBytes <= 0 {
		t.Error("spark Eager/ResNet50/Amazon should spill heavily")
	}
	vista := vistaRun(t, "resnet50", AmazonSpec(), PaperCluster())
	if vista.TotalMin() >= rs.TotalMin() {
		t.Errorf("Vista (%.1f min) should beat spilling Eager (%.1f min)", vista.TotalMin(), rs.TotalMin())
	}
}

// TestVistaSpeedupsMatchPaperRange checks the headline efficiency claim:
// Vista is 58–92% faster than Lazy-1 and 62–72% faster than Lazy-7 (we allow
// ±10 points — the substrate is a calibrated simulator).
func TestVistaSpeedupsMatchPaperRange(t *testing.T) {
	for _, ds := range []DatasetSpec{FoodsSpec(), AmazonSpec()} {
		for _, model := range []string{"alexnet", "vgg16", "resnet50"} {
			vista := vistaRun(t, model, ds, PaperCluster())
			if vista.Crash != nil {
				t.Fatalf("vista crashed: %v", vista.Crash)
			}
			lazy1 := lazyRun(t, model, ds, 1, PaperCluster())
			if lazy1.Crash != nil {
				t.Fatalf("lazy-1 crashed: %v", lazy1.Crash)
			}
			gain := 1 - vista.TotalMin()/lazy1.TotalMin()
			if gain < 0.48 || gain > 0.97 {
				t.Errorf("%s/%s: Vista vs Lazy-1 gain = %.0f%%, paper range 58–92%%",
					ds.Name, model, gain*100)
			}
			lazy7 := lazyRun(t, model, ds, 7, PaperCluster())
			if lazy7.Crash != nil {
				continue // VGG16: Lazy-7 crashes, no ratio to check
			}
			gain7 := 1 - vista.TotalMin()/lazy7.TotalMin()
			if gain7 < 0.40 || gain7 > 0.85 {
				t.Errorf("%s/%s: Vista vs Lazy-7 gain = %.0f%%, paper range 62–72%%",
					ds.Name, model, gain7*100)
			}
		}
	}
}

// TestGPUProfile checks Figure 7A: on the 12 GB GPU workstation, 5+ VGG16
// replicas crash (Equation 15) while Vista's optimizer stays under the
// device limit.
func TestGPUProfile(t *testing.T) {
	prof := SingleNodeGPU()
	w := mustWorkload(t, WorkloadSpec{ModelName: "vgg16", NumLayers: 3,
		Dataset: FoodsSpec(), PlanKind: plan.Lazy, Placement: plan.BeforeJoin,
		Nodes: 1, MemGPU: prof.GPU.MemBytes})
	for _, cpu := range []int{5, 7} {
		r := Run(w, BaselineSpark(cpu), prof)
		oom, ok := memory.IsOOM(r.Crash)
		if !ok || oom.Scenario != memory.DeviceExhausted {
			t.Errorf("GPU Lazy-%d VGG16: want gpu-memory-exhausted, got %v", cpu, r.Crash)
		}
	}
	wv := mustWorkload(t, WorkloadSpec{ModelName: "vgg16", NumLayers: 3,
		Dataset: FoodsSpec(), PlanKind: plan.Staged, Placement: plan.AfterJoin,
		Nodes: 1, MemGPU: prof.GPU.MemBytes})
	cfg, err := VistaConfig(wv)
	if err != nil {
		t.Fatalf("optimizer: %v", err)
	}
	if r := Run(wv, cfg, prof); r.Crash != nil {
		t.Errorf("Vista on GPU crashed: %v", r.Crash)
	}
}

// TestEagerDegradesWithScale checks Figure 9's shape: Eager and Staged are
// comparable at 1X but Eager falls behind as the data scales (disk spills of
// all-layer materialization).
func TestEagerDegradesWithScale(t *testing.T) {
	ratioAt := func(scale float64) float64 {
		ds := FoodsSpec().Scale(scale)
		we := mustWorkload(t, WorkloadSpec{ModelName: "resnet50", NumLayers: 5,
			Dataset: ds, PlanKind: plan.Eager, Placement: plan.AfterJoin})
		ws := mustWorkload(t, WorkloadSpec{ModelName: "resnet50", NumLayers: 5,
			Dataset: ds, PlanKind: plan.Staged, Placement: plan.AfterJoin})
		cfg, err := VistaConfig(ws)
		if err != nil {
			t.Fatal(err)
		}
		// Figure 9 pins the physical plan to Shuffle/Deserialized; the
		// spills driving Eager's degradation are a deserialized-format
		// phenomenon.
		cfg.Pers = dataflow.Deserialized
		re := Run(we, cfg, PaperCluster())
		rs := Run(ws, cfg, PaperCluster())
		if re.Crash != nil || rs.Crash != nil {
			t.Fatalf("unexpected crash at scale %v: %v / %v", scale, re.Crash, rs.Crash)
		}
		return re.TotalMin() / rs.TotalMin()
	}
	small := ratioAt(1)
	big := ratioAt(8)
	if small > 1.6 {
		t.Errorf("Eager/Staged at 1X = %.2f; should be comparable (Figure 9)", small)
	}
	if big <= small || big < 1.5 {
		t.Errorf("Eager/Staged at 8X = %.2f (1X = %.2f); Eager must degrade with scale", big, small)
	}
}

// TestLazyAlwaysSlowerThanStaged checks the redundancy argument end-to-end:
// under identical configs, Lazy's repeated inference makes it strictly
// slower than Staged for multi-layer transfer.
func TestLazyAlwaysSlowerThanStaged(t *testing.T) {
	for _, model := range []string{"alexnet", "vgg16", "resnet50"} {
		ws := mustWorkload(t, WorkloadSpec{ModelName: model, NumLayers: layersFor(model),
			Dataset: FoodsSpec(), PlanKind: plan.Staged, Placement: plan.AfterJoin})
		wl := mustWorkload(t, WorkloadSpec{ModelName: model, NumLayers: layersFor(model),
			Dataset: FoodsSpec(), PlanKind: plan.Lazy, Placement: plan.AfterJoin})
		cfg, err := VistaConfig(ws)
		if err != nil {
			t.Fatal(err)
		}
		rs := Run(ws, cfg, PaperCluster())
		rl := Run(wl, cfg, PaperCluster())
		if rs.Crash != nil || rl.Crash != nil {
			t.Fatalf("%s: unexpected crash %v / %v", model, rs.Crash, rl.Crash)
		}
		if rl.TotalMin() <= rs.TotalMin() {
			t.Errorf("%s: Lazy (%.1f) not slower than Staged (%.1f)", model, rl.TotalMin(), rs.TotalMin())
		}
	}
}

// TestHighNPOverhead checks Figure 11(B)'s right side: runtimes rise again
// at very high np.
func TestHighNPOverhead(t *testing.T) {
	w := mustWorkload(t, WorkloadSpec{ModelName: "alexnet", NumLayers: 4,
		Dataset: FoodsSpec(), PlanKind: plan.Staged, Placement: plan.AfterJoin})
	cfg, err := VistaConfig(w)
	if err != nil {
		t.Fatal(err)
	}
	base := Run(w, cfg, PaperCluster())
	cfgHigh := cfg
	cfgHigh.NP = 6000
	high := Run(w, cfgHigh, PaperCluster())
	if high.Crash != nil {
		t.Fatalf("high-np run crashed: %v", high.Crash)
	}
	if high.TotalSec() <= base.TotalSec() {
		t.Errorf("np=6000 (%.1fs) should be slower than np=%d (%.1fs)",
			high.TotalSec(), cfg.NP, base.TotalSec())
	}
}

// TestLowNPCrashes checks Figure 11(B)'s left side: too few partitions crash
// the join with oversized partitions.
func TestLowNPCrashes(t *testing.T) {
	w := mustWorkload(t, WorkloadSpec{ModelName: "resnet50", NumLayers: 5,
		Dataset: FoodsSpec(), PlanKind: plan.Staged, Placement: plan.AfterJoin})
	cfg, err := VistaConfig(w)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NP = 4
	r := Run(w, cfg, PaperCluster())
	oom, ok := memory.IsOOM(r.Crash)
	if !ok || oom.Scenario != memory.LargePartition {
		t.Errorf("np=4: want oversized-partition crash, got %v", r.Crash)
	}
}

// TestBroadcastCrashAtManyFeatures checks Figure 10(3,4): broadcast joins
// crash once the structured side outgrows driver memory.
func TestBroadcastCrashAtManyFeatures(t *testing.T) {
	mkCfg := func(dim int) (Workload, Config) {
		ds := FoodsSpec().Scale(8).WithStructDim(dim)
		w := mustWorkload(t, WorkloadSpec{ModelName: "alexnet", NumLayers: 4,
			Dataset: ds, PlanKind: plan.Staged, Placement: plan.AfterJoin})
		cfg, err := VistaConfig(w)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Join = dataflow.BroadcastJoin
		return w, cfg
	}
	w, cfg := mkCfg(100)
	if r := Run(w, cfg, PaperCluster()); r.Crash != nil {
		t.Errorf("broadcast with 100 features should work: %v", r.Crash)
	}
	w, cfg = mkCfg(10000)
	r := Run(w, cfg, PaperCluster())
	oom, ok := memory.IsOOM(r.Crash)
	if !ok || oom.Scenario != memory.DriverOOM {
		t.Errorf("broadcast with 10000 features: want driver-oom, got %v", r.Crash)
	}
}

// TestOptimizerAvoidsBroadcastCrash: for the same oversized Tstr, Vista's own
// decision switches to shuffle and survives.
func TestOptimizerAvoidsBroadcastCrash(t *testing.T) {
	ds := FoodsSpec().Scale(8).WithStructDim(10000)
	w := mustWorkload(t, WorkloadSpec{ModelName: "alexnet", NumLayers: 4,
		Dataset: ds, PlanKind: plan.Staged, Placement: plan.AfterJoin})
	cfg, err := VistaConfig(w)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Join != dataflow.ShuffleJoin {
		t.Errorf("optimizer chose %v for an oversized Tstr, want shuffle", cfg.Join)
	}
	if r := Run(w, cfg, PaperCluster()); r.Crash != nil {
		t.Errorf("Vista's choice crashed: %v", r.Crash)
	}
}

// TestScaleupAndSpeedupShapes checks Figure 12: near-linear scaleup, and
// speedup that is sub-linear for AlexNet but closer to linear for VGG16.
func TestScaleupAndSpeedupShapes(t *testing.T) {
	runAt := func(model string, nodes int, scale float64) float64 {
		prof := PaperCluster().WithNodes(nodes)
		w := mustWorkload(t, WorkloadSpec{ModelName: model, NumLayers: layersFor(model),
			Dataset: FoodsSpec().Scale(scale), PlanKind: plan.Staged, Placement: plan.AfterJoin,
			Nodes: nodes})
		cfg, err := VistaConfig(w)
		if err != nil {
			t.Fatal(err)
		}
		r := Run(w, cfg, prof)
		if r.Crash != nil {
			t.Fatalf("%s @%d nodes crashed: %v", model, nodes, r.Crash)
		}
		return r.TotalSec()
	}
	// Scaleup: 8 nodes on 8X data should take within 1.5x of 1 node on 1X.
	for _, model := range []string{"alexnet", "vgg16", "resnet50"} {
		t1 := runAt(model, 1, 1)
		t8 := runAt(model, 8, 8)
		if ratio := t8 / t1; ratio > 1.5 {
			t.Errorf("%s scaleup ratio = %.2f, want near 1 (Figure 12A)", model, ratio)
		}
	}
	// Speedup on fixed data: VGG16 should parallelize better than AlexNet.
	alexSpeedup := runAt("alexnet", 1, 1) / runAt("alexnet", 8, 1)
	vggSpeedup := runAt("vgg16", 1, 1) / runAt("vgg16", 8, 1)
	if vggSpeedup <= alexSpeedup {
		t.Errorf("VGG16 speedup (%.1f) should exceed AlexNet's (%.1f) (Figure 12B)",
			vggSpeedup, alexSpeedup)
	}
	if alexSpeedup >= 7.5 {
		t.Errorf("AlexNet speedup %.1f should be clearly sub-linear", alexSpeedup)
	}
}

// TestTable3Ballpark compares the simulated per-layer breakdown against the
// paper's Table 3 single-node and 8-node totals (CNN inference + LR first
// iteration), within 2x.
func TestTable3Ballpark(t *testing.T) {
	tests := []struct {
		model        string
		nodes        int
		wantTotalMin float64 // Table 3 "total" row
		wantReadMin  float64 // Table 3 "Read images" row
	}{
		{"resnet50", 1, 29.9, 3.7},
		{"resnet50", 8, 3.6, 0.7},
		{"alexnet", 1, 7.5, 3.9},
		{"alexnet", 8, 1.5, 0.8},
		{"vgg16", 1, 44.3, 4.6},
		{"vgg16", 8, 5.7, 0.9},
	}
	for _, tc := range tests {
		prof := PaperCluster().WithNodes(tc.nodes)
		w := mustWorkload(t, WorkloadSpec{ModelName: tc.model, NumLayers: layersFor(tc.model),
			Dataset: FoodsSpec(), PlanKind: plan.Staged, Placement: plan.AfterJoin, Nodes: tc.nodes})
		cfg, err := VistaConfig(w)
		if err != nil {
			t.Fatal(err)
		}
		r := Run(w, cfg, prof)
		if r.Crash != nil {
			t.Fatalf("%s@%d crashed: %v", tc.model, tc.nodes, r.Crash)
		}
		var inferPlusFirst float64
		for _, l := range r.Layers {
			inferPlusFirst += l.InferSec + l.TrainFirstSec
		}
		gotMin := inferPlusFirst / 60
		if gotMin < tc.wantTotalMin/2 || gotMin > tc.wantTotalMin*2 {
			t.Errorf("%s@%d nodes: inference+first-iter = %.1f min, paper %.1f (want within 2x)",
				tc.model, tc.nodes, gotMin, tc.wantTotalMin)
		}
		readMin := r.ReadSec / 60
		if readMin < tc.wantReadMin/2.5 || readMin > tc.wantReadMin*2.5 {
			t.Errorf("%s@%d nodes: read = %.1f min, paper %.1f (want within 2.5x)",
				tc.model, tc.nodes, readMin, tc.wantReadMin)
		}
	}
}

// TestPreMaterializationShapes checks Appendix B / Figure 16: pre-mat helps
// AlexNet clearly, but for ResNet50's 5-layer selection the enormous base
// table makes it a wash or worse.
func TestPreMaterializationShapes(t *testing.T) {
	run := func(model string, k int, premat bool) float64 {
		w := mustWorkload(t, WorkloadSpec{ModelName: model, NumLayers: k,
			Dataset: FoodsSpec(), PlanKind: plan.Staged, Placement: plan.AfterJoin, PreMat: premat})
		cfg, err := VistaConfig(w)
		if err != nil {
			t.Fatal(err)
		}
		r := Run(w, cfg, PaperCluster())
		if r.Crash != nil {
			t.Fatalf("%s premat=%v crashed: %v", model, premat, r.Crash)
		}
		return r.TotalSec()
	}
	if with, without := run("alexnet", 4, true), run("alexnet", 4, false); with >= without {
		t.Errorf("AlexNet 4L: pre-mat (%.0fs) should beat from-images (%.0fs)", with, without)
	}
	// ResNet50 5L: the conv4_6 base is ~16 GB; pre-mat gains shrink or
	// invert (Figure 16(C): "may or may not decrease the overall runtime").
	with5, without5 := run("resnet50", 5, true), run("resnet50", 5, false)
	withRatio5 := with5 / without5
	with4, without4 := run("resnet50", 4, true), run("resnet50", 4, false)
	withRatio4 := with4 / without4
	if withRatio4 >= 1 {
		t.Errorf("ResNet50 4L: pre-mat ratio = %.2f, should help", withRatio4)
	}
	if withRatio5 <= withRatio4 {
		t.Errorf("ResNet50 5L pre-mat ratio (%.2f) should be worse than 4L's (%.2f)",
			withRatio5, withRatio4)
	}
}

// TestSerializedReducesSpills checks Section 4.2.3/Figure 10: at large
// scale the serialized format cuts spill volume.
func TestSerializedReducesSpills(t *testing.T) {
	ds := FoodsSpec().Scale(8)
	w := mustWorkload(t, WorkloadSpec{ModelName: "resnet50", NumLayers: 5,
		Dataset: ds, PlanKind: plan.Staged, Placement: plan.AfterJoin})
	cfg, err := VistaConfig(w)
	if err != nil {
		t.Fatal(err)
	}
	cfgD, cfgS := cfg, cfg
	cfgD.Pers = dataflow.Deserialized
	cfgS.Pers = dataflow.Serialized
	rd := Run(w, cfgD, PaperCluster())
	rs := Run(w, cfgS, PaperCluster())
	if rd.Crash != nil || rs.Crash != nil {
		t.Fatalf("crashes: %v / %v", rd.Crash, rs.Crash)
	}
	if rd.SpilledBytes > 0 && rs.SpilledBytes >= rd.SpilledBytes {
		t.Errorf("serialized spills (%d) not below deserialized (%d)", rs.SpilledBytes, rd.SpilledBytes)
	}
}

func TestRunValidation(t *testing.T) {
	w := mustWorkload(t, WorkloadSpec{ModelName: "alexnet", NumLayers: 2,
		Dataset: FoodsSpec(), PlanKind: plan.Staged, Placement: plan.AfterJoin})
	cfg, err := VistaConfig(w)
	if err != nil {
		t.Fatal(err)
	}
	bad := w
	bad.Plan = nil
	if r := Run(bad, cfg, PaperCluster()); r.Crash == nil {
		t.Error("nil plan accepted")
	}
	badCfg := cfg
	badCfg.CPU = 0
	if r := Run(w, badCfg, PaperCluster()); r.Crash == nil {
		t.Error("cpu=0 accepted")
	}
	badProf := PaperCluster()
	badProf.Nodes = 0
	if r := Run(w, cfg, badProf); r.Crash == nil {
		t.Error("0-node profile accepted")
	}
	badW := w
	badW.TrainIters = 0
	if r := Run(badW, cfg, PaperCluster()); r.Crash == nil {
		t.Error("0 train iters accepted")
	}
}

func TestNewWorkloadValidation(t *testing.T) {
	if _, err := NewWorkload(WorkloadSpec{ModelName: "nope", NumLayers: 1, Dataset: FoodsSpec()}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := NewWorkload(WorkloadSpec{ModelName: "alexnet", NumLayers: 99, Dataset: FoodsSpec()}); err == nil {
		t.Error("oversized layer count accepted")
	}
}

func TestVistaConfigInfeasible(t *testing.T) {
	w := mustWorkload(t, WorkloadSpec{ModelName: "vgg16", NumLayers: 3,
		Dataset: FoodsSpec(), PlanKind: plan.Staged, Placement: plan.AfterJoin,
		MemSys: memory.GB(8)})
	_, err := VistaConfig(w)
	if !errors.Is(err, optimizer.ErrNoFeasible) {
		t.Errorf("want ErrNoFeasible on an 8 GB node, got %v", err)
	}
}

func TestDatasetSpecHelpers(t *testing.T) {
	d := FoodsSpec().Scale(4)
	if d.Rows != 80000 {
		t.Errorf("Scale(4) rows = %d, want 80000", d.Rows)
	}
	if FoodsSpec().WithStructDim(999).StructDim != 999 {
		t.Error("WithStructDim broken")
	}
	if AmazonSpec().Rows != 200000 || AmazonSpec().StructDim != 200 {
		t.Error("Amazon preset wrong")
	}
}

// TestScaleNeverTruncatesToZeroRows pins the rounding bug: a scale factor
// below 1/Rows used to truncate the product to zero rows, and a zero-row
// dataset walks through every per-row cost model (and the optimizer's
// feasibility check) as a silent no-op.
func TestScaleNeverTruncatesToZeroRows(t *testing.T) {
	cases := []struct {
		rows int
		f    float64
		want int
	}{
		{20000, 1.0 / 40000, 1}, // product 0.5: truncated to 0 before the fix
		{20000, 0, 1},           // degenerate factor still yields a dataset
		{20000, 1.0 / 20000, 1}, // exactly one row survives
		{20000, 0.25, 5000},     // ordinary down-scaling is untouched
		{20000, 8, 160000},      // paper's 8X
	}
	for _, c := range cases {
		d := DatasetSpec{Name: "t", Rows: c.rows, StructDim: 1, ImageRowBytes: 1}
		if got := d.Scale(c.f).Rows; got != c.want {
			t.Errorf("Scale(%v) on %d rows = %d, want %d", c.f, c.rows, got, c.want)
		}
	}
}

func TestPreMaterializationCost(t *testing.T) {
	w := mustWorkload(t, WorkloadSpec{ModelName: "resnet50", NumLayers: 5,
		Dataset: FoodsSpec(), PlanKind: plan.Staged, Placement: plan.AfterJoin, PreMat: true})
	cfg, err := VistaConfig(w)
	if err != nil {
		t.Fatal(err)
	}
	r := PreMaterializationCost(w, cfg, PaperCluster())
	if r.Crash != nil {
		t.Fatalf("premat cost crashed: %v", r.Crash)
	}
	if r.TotalSec() <= 0 || len(r.Layers) != 1 || r.Layers[0].Layer != "conv4_6" {
		t.Errorf("premat cost malformed: %+v", r)
	}
}

func TestParallelEfficiencyShape(t *testing.T) {
	if parallelEfficiency(1) != 1 {
		t.Error("eff(1) != 1")
	}
	if parallelEfficiency(8) >= 5 || parallelEfficiency(8) <= 3 {
		t.Errorf("eff(8) = %.2f, want plateau near 4 (Figure 12C)", parallelEfficiency(8))
	}
	if parallelEfficiency(0) != 1 {
		t.Error("eff(0) should clamp to 1")
	}
	if !(parallelEfficiency(4) > parallelEfficiency(2)) {
		t.Error("eff not monotone")
	}
}

// TestSimCachedLayersCutInference checks the simulator's feature-store
// model: cached stages drop their CNN compute (a warm run is strictly
// faster), and a fully-warm run skips the image read entirely.
func TestSimCachedLayersCutInference(t *testing.T) {
	prof := PaperCluster()
	w := mustWorkload(t, WorkloadSpec{ModelName: "alexnet", NumLayers: layersFor("alexnet"),
		Dataset: FoodsSpec(), PlanKind: plan.Staged, Placement: plan.AfterJoin, Nodes: prof.Nodes})
	cfg, err := VistaConfig(w)
	if err != nil {
		t.Fatal(err)
	}
	cold := Run(w, cfg, prof)
	if cold.Crash != nil {
		t.Fatalf("cold run crashed: %v", cold.Crash)
	}

	prev := cold.TotalSec()
	for cachedL := 1; cachedL <= w.Inputs.NumLayers; cachedL++ {
		warm := w
		warm.Inputs.CachedLayers = cachedL
		r := Run(warm, cfg, prof)
		if r.Crash != nil {
			t.Fatalf("cached=%d crashed: %v", cachedL, r.Crash)
		}
		if tot := r.TotalSec(); tot >= prev {
			t.Errorf("cached=%d total %.1fs not below %.1fs", cachedL, tot, prev)
		} else {
			prev = tot
		}
		if cachedL < w.Inputs.NumLayers {
			continue
		}
		// Fully warm: no image ingestion, only Tstr is read.
		if r.ReadSec >= cold.ReadSec {
			t.Errorf("fully-warm ReadSec %.2f not below cold %.2f", r.ReadSec, cold.ReadSec)
		}
	}
}
