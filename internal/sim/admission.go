package sim

import (
	"repro/internal/optimizer"
)

// AdmissionCost prices a workload for serving-time admission control using
// the same Section 4.1 memory model (Equations 9–15) the optimizer plans
// with: it runs Algorithm 1 over the inputs and returns the cluster-wide
// bytes of Storage + User + DL Execution Memory the chosen configuration
// reserves. A server admitting runs against a byte budget charges this cost
// per run, so the sum of admitted reservations never exceeds what the host
// can hold — the paper's crash-avoidance model reused as a multi-query
// resource arbiter (DeepLens-style).
//
// The fixed per-worker overheads (OS Reserved and Core Memory, Table 1(C))
// are excluded: they are provisioning constants of the host, not per-run
// charges. Infeasible workloads return optimizer.ErrNoFeasible — a workload
// the optimizer cannot fit on the cluster at all cannot be priced (and would
// not survive execution either).
//
// When params.Scales carries a fitted calibration profile, both halves go
// through it: Optimize re-ranks the plan under the corrected constants, and
// the charge is computed by DecisionCostScaled instead of DecisionCost.
func AdmissionCost(in optimizer.Inputs, params optimizer.Params) (optimizer.Decision, int64, error) {
	d, err := optimizer.Optimize(in, params)
	if err != nil {
		return optimizer.Decision{}, 0, err
	}
	return d, DecisionCostScaled(d, in.NNodes, params.Scales), nil
}

// DecisionCost renders an optimizer decision as an admission charge: the
// per-worker Storage + User + DL Execution apportionment times the worker
// count.
func DecisionCost(d optimizer.Decision, nodes int) int64 {
	if nodes < 1 {
		nodes = 1
	}
	return int64(nodes) * (d.MemStorage + d.MemUser + d.MemDL)
}

// DecisionCostScaled is DecisionCost under a fitted calibration profile.
// With identity scales it returns exactly DecisionCost — unprofiled servers
// price bit-for-bit as before. With a real profile the Storage term switches
// from the full per-worker remainder (MemStorage, which Algorithm 1 sets to
// everything left after User and DL memory) to the modeled storage *need*,
// min(MemStorage, ⌈SDouble/nodes⌉): because MemStorage is a remainder, any
// correction to the DL or intermediate-size estimates would otherwise
// telescope away — Storage absorbing exactly what Infer released — and the
// charge would never move. The decision's MemDL and SDouble already carry
// the Infer and Storage scales when the decision came from a scaled
// Optimize, so no factor is applied again here.
func DecisionCostScaled(d optimizer.Decision, nodes int, scales optimizer.CostScales) int64 {
	if scales.IsIdentity() {
		return DecisionCost(d, nodes)
	}
	if nodes < 1 {
		nodes = 1
	}
	storage := d.MemStorage
	if need := (d.SDouble + int64(nodes) - 1) / int64(nodes); need < storage {
		storage = need
	}
	return int64(nodes) * (storage + d.MemUser + d.MemDL)
}

// FollowerCost prices a run that attaches a sharing leader's feature tables
// instead of executing its own partial-inference pass: the group is charged
// the full AdmissionCost once, for the leader, and each follower only its
// marginal reservation — the decision with DL Execution Memory zeroed
// (Equation 13's replicas are never loaded), keeping Storage and User memory
// for the attached tables and downstream training.
func FollowerCost(d optimizer.Decision, nodes int) int64 {
	return DecisionCost(optimizer.FollowerDecision(d), nodes)
}

// FollowerCostScaled is FollowerCost under a fitted calibration profile
// (see DecisionCostScaled for the charge semantics).
func FollowerCostScaled(d optimizer.Decision, nodes int, scales optimizer.CostScales) int64 {
	return DecisionCostScaled(optimizer.FollowerDecision(d), nodes, scales)
}
