package sim

import (
	"repro/internal/optimizer"
)

// AdmissionCost prices a workload for serving-time admission control using
// the same Section 4.1 memory model (Equations 9–15) the optimizer plans
// with: it runs Algorithm 1 over the inputs and returns the cluster-wide
// bytes of Storage + User + DL Execution Memory the chosen configuration
// reserves. A server admitting runs against a byte budget charges this cost
// per run, so the sum of admitted reservations never exceeds what the host
// can hold — the paper's crash-avoidance model reused as a multi-query
// resource arbiter (DeepLens-style).
//
// The fixed per-worker overheads (OS Reserved and Core Memory, Table 1(C))
// are excluded: they are provisioning constants of the host, not per-run
// charges. Infeasible workloads return optimizer.ErrNoFeasible — a workload
// the optimizer cannot fit on the cluster at all cannot be priced (and would
// not survive execution either).
func AdmissionCost(in optimizer.Inputs, params optimizer.Params) (optimizer.Decision, int64, error) {
	d, err := optimizer.Optimize(in, params)
	if err != nil {
		return optimizer.Decision{}, 0, err
	}
	return d, DecisionCost(d, in.NNodes), nil
}

// DecisionCost renders an optimizer decision as an admission charge: the
// per-worker Storage + User + DL Execution apportionment times the worker
// count.
func DecisionCost(d optimizer.Decision, nodes int) int64 {
	if nodes < 1 {
		nodes = 1
	}
	return int64(nodes) * (d.MemStorage + d.MemUser + d.MemDL)
}

// FollowerCost prices a run that attaches a sharing leader's feature tables
// instead of executing its own partial-inference pass: the group is charged
// the full AdmissionCost once, for the leader, and each follower only its
// marginal reservation — the decision with DL Execution Memory zeroed
// (Equation 13's replicas are never loaded), keeping Storage and User memory
// for the attached tables and downstream training.
func FollowerCost(d optimizer.Decision, nodes int) int64 {
	return DecisionCost(optimizer.FollowerDecision(d), nodes)
}
