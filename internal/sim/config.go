package sim

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/memory"
)

// profileJSON is the on-disk form of a Profile, letting users calibrate the
// simulator to their own cluster without recompiling.
type profileJSON struct {
	Name              string  `json:"name"`
	Kind              string  `json:"kind"` // "spark" or "ignite"
	Nodes             int     `json:"nodes"`
	CoresPerNode      int     `json:"cores_per_node"`
	MemPerNodeGB      float64 `json:"mem_per_node_gb"`
	DriverMemGB       float64 `json:"driver_mem_gb"`
	BaseGFLOPS        float64 `json:"base_gflops"`
	ScanMBps          float64 `json:"scan_mbps"`
	DiskMBps          float64 `json:"disk_mbps"`
	SpillMBps         float64 `json:"spill_mbps"`
	NetMBps           float64 `json:"net_mbps"`
	PerImageReadMs    float64 `json:"per_image_read_ms"`
	ReadParallelExp   float64 `json:"read_parallel_exp"`
	PerTaskOverheadMs float64 `json:"per_task_overhead_ms"`
	GPUMemGB          float64 `json:"gpu_mem_gb"`
	GPUGFLOPS         float64 `json:"gpu_gflops"`
}

// LoadProfile reads a cluster profile from a JSON file. Missing fields
// default to the paper cluster's calibrated values, so a user only overrides
// what differs on their hardware.
func LoadProfile(path string) (Profile, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, fmt.Errorf("sim: load profile: %w", err)
	}
	return ParseProfile(blob)
}

// ParseProfile builds a Profile from JSON, defaulting unset fields to the
// paper cluster.
func ParseProfile(blob []byte) (Profile, error) {
	var pj profileJSON
	if err := json.Unmarshal(blob, &pj); err != nil {
		return Profile{}, fmt.Errorf("sim: parse profile: %w", err)
	}
	p := PaperCluster()
	if pj.Name != "" {
		p.Name = pj.Name
	}
	switch pj.Kind {
	case "", "spark":
		p.Kind = memory.SparkLike
	case "ignite":
		p.Kind = memory.IgniteLike
	default:
		return Profile{}, fmt.Errorf("sim: unknown profile kind %q (want spark or ignite)", pj.Kind)
	}
	setInt := func(dst *int, v int) {
		if v > 0 {
			*dst = v
		}
	}
	setF := func(dst *float64, v float64) {
		if v > 0 {
			*dst = v
		}
	}
	setInt(&p.Nodes, pj.Nodes)
	setInt(&p.CoresPerNode, pj.CoresPerNode)
	if pj.MemPerNodeGB > 0 {
		p.MemPerNode = memory.GB(pj.MemPerNodeGB)
	}
	if pj.DriverMemGB > 0 {
		p.DriverMem = memory.GB(pj.DriverMemGB)
	}
	setF(&p.BaseGFLOPS, pj.BaseGFLOPS)
	setF(&p.ScanMBps, pj.ScanMBps)
	setF(&p.DiskMBps, pj.DiskMBps)
	setF(&p.SpillMBps, pj.SpillMBps)
	setF(&p.NetMBps, pj.NetMBps)
	setF(&p.PerImageReadMs, pj.PerImageReadMs)
	setF(&p.ReadParallelExp, pj.ReadParallelExp)
	setF(&p.PerTaskOverheadMs, pj.PerTaskOverheadMs)
	if pj.GPUMemGB > 0 {
		gflops := pj.GPUGFLOPS
		if gflops <= 0 {
			gflops = 4500
		}
		p.GPU = &GPUSpec{MemBytes: memory.GB(pj.GPUMemGB), GFLOPS: gflops}
	}
	return p, nil
}
