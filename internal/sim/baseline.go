package sim

import (
	"repro/internal/dataflow"
	"repro/internal/memory"
	"repro/internal/optimizer"
)

func defaultParams() optimizer.Params { return optimizer.DefaultParams() }

// baselineTunedNP picks a partition count for the tuned baselines: the
// optimizer's Equation 13/14 helper at the given cpu.
func baselineTunedNP(w Workload, cpu int) int {
	_, sSingle, _, err := optimizer.IntermediateSizes(w.Inputs, defaultParams())
	if err != nil {
		return sparkDefaultNP
	}
	return optimizer.NumPartitions(sSingle, cpu, w.Inputs.NNodes, defaultParams().PMax)
}

func userNeedFor(w Workload, cpu, np int) int64 {
	return optimizer.UserMemoryNeed(w.Inputs, cpu, np, defaultParams())
}

// Baseline configurations of Section 5.1. These reproduce the paper's
// "current dominant practice": best-practice SQL-era tuning guides with no
// awareness of CNN footprints, which is precisely what makes them
// crash-prone.

// sparkDefaultNP is Spark's default shuffle partition count.
const sparkDefaultNP = 200

// igniteDefaultNP is the paper's Ignite partition default ("np set to the
// default 1024").
const igniteDefaultNP = 1024

// BaselineSpark returns the Lazy-k Spark config: 29 GB JVM heap on a 32 GB
// node, 40% User Memory, shuffle join, deserialized persistence, default np
// — and, crucially, no budget at all for the DL system.
func BaselineSpark(cpu int) Config {
	return Config{
		CPU:       cpu,
		NP:        sparkDefaultNP,
		Apportion: memory.BaselineSparkApportionment(memory.GB(32), memory.GB(29)),
		Join:      dataflow.ShuffleJoin,
		Pers:      dataflow.Deserialized,
	}
}

// BaselineIgnite returns the Lazy-k Ignite config: 4 GB JVM heap, 25 GB
// static off-heap Storage, default 1024 partitions.
func BaselineIgnite(cpu int) Config {
	return Config{
		CPU:       cpu,
		NP:        igniteDefaultNP,
		Apportion: memory.BaselineIgniteApportionment(memory.GB(32), memory.GB(4), memory.GB(25)),
		Join:      dataflow.ShuffleJoin,
		Pers:      dataflow.Deserialized,
	}
}

// TunedBaseline returns the "strong baseline" config of Section 5.1 (used
// for Lazy-5 with Pre-mat and Eager): like Vista, it explicitly apportions
// CNN inference, Storage, User, and Core memory — "note that Lazy-5 with
// Pre-mat and Eager actually need parts of our code from Vista" — but keeps
// the fixed degree of parallelism.
func TunedBaseline(w Workload, cpu int) Config {
	in := w.Inputs
	params := defaultParams()
	np := baselineTunedNP(w, cpu)
	dl := int64(cpu) * in.ModelStats.MemBytes
	user := userNeedFor(w, cpu, np)
	storage := memory.GB(32) - params.MemOSReserved - params.MemCore - dl - user
	if storage < 0 {
		storage = 0
	}
	return Config{
		CPU: cpu,
		NP:  np,
		Apportion: memory.Apportionment{
			OSReserved:  params.MemOSReserved,
			DLExecution: dl,
			User:        user,
			Core:        params.MemCore,
			Storage:     storage,
		},
		Join: dataflow.ShuffleJoin,
		Pers: dataflow.Deserialized,
	}
}
