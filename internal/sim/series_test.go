package sim

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/sampler"
)

const testMB = 1 << 20

// simulatedWithStorage extends the shared fixture with the memory-model
// fields CompareSeries reads.
func simulatedWithStorage() Result {
	r := simulated()
	r.BaseStorageBytes = 1 * testMB
	r.StorageCapBytes = 16 * testMB
	r.Layers[0].LiveStorageBytes = 4 * testMB
	r.Layers[0].SpilledBytes = 1 * testMB
	r.Layers[1].LiveStorageBytes = 2 * testMB
	return r
}

// measuredRecording builds frames aligned with measuredTrace's stage windows:
// two storage-pool gauges (summed across nodes) and a cumulative spill
// counter that jumps by 1 MiB mid-infer.
func measuredRecording() *sampler.Recording {
	t0 := time.Unix(0, 0)
	frame := func(ms int, stage string, poolMB0, poolMB1, spillMB float64) sampler.Frame {
		return sampler.Frame{
			T: t0.Add(time.Duration(ms) * time.Millisecond), Stage: stage,
			Values: map[string]float64{
				`vista_pool_used_bytes{node="0",pool="storage"}`: poolMB0 * testMB,
				`vista_pool_used_bytes{node="1",pool="storage"}`: poolMB1 * testMB,
				`vista_pool_used_bytes{node="0",pool="user"}`:    64 * testMB, // must not count
				"vista_engine_bytes_spilled_total":               spillMB * testMB,
			},
		}
	}
	return &sampler.Recording{
		Every: 10 * time.Millisecond,
		Start: t0, End: t0.Add(900 * time.Millisecond),
		Frames: []sampler.Frame{
			frame(50, "ingest", 0.5, 0.4, 0),
			frame(120, "join", 0.6, 0.5, 0),
			frame(200, "infer:fc6", 1.5, 1.5, 0),
			frame(400, "infer:fc6", 2.5, 2.0, 1),
			frame(700, "train:fc6", 2.0, 2.0, 1),
			frame(860, "cache:fc7", 1.0, 1.0, 1),
		},
	}
}

func TestCompareSeries(t *testing.T) {
	rep := CompareSeries(simulatedWithStorage(), measuredTrace(), measuredRecording())
	if len(rep.Stages) != 5 {
		t.Fatalf("got %d stages, want 5", len(rep.Stages))
	}
	want := []struct {
		stage              string
		cached             bool
		frames             int
		predMB, measPeakMB float64
		predSpillMB        float64
		measSpillMB        float64
	}{
		{"ingest", false, 1, 1, 0.9, 0, 0},
		{"join", false, 1, 1, 1.1, 0, 0},
		{"infer:fc6", false, 2, 4, 4.5, 1, 1},
		{"train:fc6", false, 1, 4, 4.0, 0, 0},
		{"cache:fc7", true, 1, 2, 2.0, 0, 0},
	}
	for i, w := range want {
		s := rep.Stages[i]
		if s.Stage != w.stage || s.Cached != w.cached || s.Frames != w.frames {
			t.Errorf("row %d = %q cached=%v frames=%d, want %q/%v/%d",
				i, s.Stage, s.Cached, s.Frames, w.stage, w.cached, w.frames)
		}
		if s.PredStorageBytes != int64(w.predMB*testMB) {
			t.Errorf("%s pred storage = %d, want %v MiB", w.stage, s.PredStorageBytes, w.predMB)
		}
		if s.MeasPeakStorageBytes != int64(w.measPeakMB*testMB) {
			t.Errorf("%s meas peak = %d, want %v MiB", w.stage, s.MeasPeakStorageBytes, w.measPeakMB)
		}
		if s.PredSpillBytes != int64(w.predSpillMB*testMB) {
			t.Errorf("%s pred spill = %d, want %v MiB", w.stage, s.PredSpillBytes, w.predSpillMB)
		}
		if s.MeasSpillBytes != int64(w.measSpillMB*testMB) {
			t.Errorf("%s meas spill = %d, want %v MiB", w.stage, s.MeasSpillBytes, w.measSpillMB)
		}
	}
	if rep.PredPeakStorageBytes != 4*testMB || rep.MeasPeakStorageBytes != int64(4.5*testMB) {
		t.Errorf("run peaks = %d/%d, want 4 MiB / 4.5 MiB",
			rep.PredPeakStorageBytes, rep.MeasPeakStorageBytes)
	}
	if rep.PredSpillBytes != 1*testMB || rep.MeasSpillBytes != 1*testMB {
		t.Errorf("run spill = %d/%d, want 1 MiB both", rep.PredSpillBytes, rep.MeasSpillBytes)
	}
}

func TestCompareSeriesCrashedSim(t *testing.T) {
	r := simulatedWithStorage()
	r.Crash = errors.New("storage exhausted")
	rep := CompareSeries(r, measuredTrace(), measuredRecording())
	for _, s := range rep.Stages {
		if s.PredStorageBytes != 0 || s.PredSpillBytes != 0 {
			t.Errorf("%s predicted %d/%d on a crashed sim", s.Stage, s.PredStorageBytes, s.PredSpillBytes)
		}
	}
	// Measurements survive the crash.
	if rep.MeasPeakStorageBytes == 0 || rep.MeasSpillBytes == 0 {
		t.Errorf("measurements lost: peak=%d spill=%d", rep.MeasPeakStorageBytes, rep.MeasSpillBytes)
	}
}

func TestCompareSeriesEmptyWindow(t *testing.T) {
	// A stage shorter than the sample period catches no frames: unknown, not
	// zero.
	rec := measuredRecording()
	rec.Frames = rec.Frames[:1] // only the ingest frame remains
	rep := CompareSeries(simulatedWithStorage(), measuredTrace(), rec)
	for _, s := range rep.Stages[1:] {
		if s.Frames != 0 {
			t.Errorf("%s caught %d frames, want 0", s.Stage, s.Frames)
		}
	}
	var b strings.Builder
	RenderSeriesReport(&b, rep)
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "join") && !strings.Contains(line, "-") {
			t.Errorf("frameless stage should render '-' measurements: %q", line)
		}
	}
}

func TestRenderSeriesReport(t *testing.T) {
	var b strings.Builder
	RenderSeriesReport(&b, CompareSeries(simulatedWithStorage(), measuredTrace(), measuredRecording()))
	out := b.String()
	for _, want := range []string{
		"stage", "frames", "est peak", "meas peak", "est spill", "meas spill",
		"infer:fc6", "4.0 MB", "4.5 MB", // infer row: prediction and sampled peak
		"(peak drift 1.12x)", // 4.5/4.0
		"(cached)",           // the cache:fc7 row is labeled, not compared
		"total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}
