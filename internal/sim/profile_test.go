package sim

import (
	"os"
	"testing"

	"repro/internal/memory"
)

func TestProfilePresets(t *testing.T) {
	p := PaperCluster()
	if p.Nodes != 8 || p.CoresPerNode != 8 || p.MemPerNode != memory.GB(32) {
		t.Errorf("paper cluster = %d nodes × %d cores × %s",
			p.Nodes, p.CoresPerNode, memory.FormatBytes(p.MemPerNode))
	}
	if p.Kind != memory.SparkLike || p.GPU != nil {
		t.Error("paper cluster should be Spark-like without GPU")
	}
	ig := IgniteCluster()
	if ig.Kind != memory.IgniteLike {
		t.Error("ignite cluster kind wrong")
	}
	gpu := SingleNodeGPU()
	if gpu.Nodes != 1 || gpu.GPU == nil || gpu.GPU.MemBytes != memory.GB(12) {
		t.Errorf("gpu workstation = %+v", gpu)
	}
	fl := FlinkLike()
	if fl.ScanMBps >= p.ScanMBps || fl.PerTaskOverheadMs <= p.PerTaskOverheadMs {
		t.Error("flink profile should have higher overheads than spark")
	}
}

func TestWithNodes(t *testing.T) {
	p := PaperCluster().WithNodes(3)
	if p.Nodes != 3 {
		t.Errorf("WithNodes = %d", p.Nodes)
	}
	if PaperCluster().Nodes != 8 {
		t.Error("WithNodes mutated the preset")
	}
}

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile([]byte(`{
		"name": "my-cluster", "kind": "ignite",
		"nodes": 4, "cores_per_node": 16, "mem_per_node_gb": 64,
		"net_mbps": 1200, "gpu_mem_gb": 24, "gpu_gflops": 9000
	}`))
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if p.Name != "my-cluster" || p.Kind != memory.IgniteLike {
		t.Errorf("name/kind = %s/%v", p.Name, p.Kind)
	}
	if p.Nodes != 4 || p.CoresPerNode != 16 || p.MemPerNode != memory.GB(64) {
		t.Errorf("cluster dims wrong: %+v", p)
	}
	if p.NetMBps != 1200 {
		t.Errorf("net = %v", p.NetMBps)
	}
	// Unset fields default to the paper cluster's calibration.
	if p.ScanMBps != PaperCluster().ScanMBps {
		t.Errorf("scan = %v, want paper default", p.ScanMBps)
	}
	if p.GPU == nil || p.GPU.MemBytes != memory.GB(24) || p.GPU.GFLOPS != 9000 {
		t.Errorf("gpu = %+v", p.GPU)
	}

	if _, err := ParseProfile([]byte(`{"kind":"flink"}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ParseProfile([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestLoadProfile(t *testing.T) {
	path := t.TempDir() + "/prof.json"
	if err := writeFile(path, `{"name":"from-disk","base_gflops":50}`); err != nil {
		t.Fatal(err)
	}
	p, err := LoadProfile(path)
	if err != nil {
		t.Fatalf("LoadProfile: %v", err)
	}
	if p.Name != "from-disk" || p.BaseGFLOPS != 50 {
		t.Errorf("loaded profile = %+v", p)
	}
	if _, err := LoadProfile(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
	// A custom profile drives a simulation end-to-end.
	w := mustWorkload(t, WorkloadSpec{ModelName: "alexnet", NumLayers: 4,
		Dataset: FoodsSpec(), PlanKind: 0, Placement: 0})
	cfg, err := VistaConfig(w)
	if err != nil {
		t.Fatal(err)
	}
	r := Run(w, cfg, p)
	if r.Crash != nil {
		t.Fatalf("run on custom profile crashed: %v", r.Crash)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestComputeEfficiency(t *testing.T) {
	// Tiny variants share their full-scale model's efficiency.
	if computeEfficiency("tiny-vgg16") != computeEfficiency("vgg16") {
		t.Error("tiny variant efficiency differs")
	}
	if computeEfficiency("unknown-model") != 1.0 {
		t.Error("unknown models should default to 1.0")
	}
	// VGG16 (dense convs) runs closest to peak; AlexNet is lowest per-FLOP.
	if !(computeEfficiency("vgg16") > computeEfficiency("resnet50")) {
		t.Error("vgg16 should out-utilize resnet50")
	}
}
