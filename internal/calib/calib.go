// Package calib is the cost model's drift observatory: it accumulates
// estimate-vs-measured evidence across runs so systematic mis-pricing in the
// Section 4.1 cost model — the thing sim.AdmissionCost gates real traffic on
// — becomes a visible, alertable signal instead of something an operator
// eyeballs in a single -trace table.
//
// After every run, the per-stage (estimated, measured) pairs from
// sim.CompareTrace and the peak-storage/spill deltas from sim.CompareSeries
// are folded into two places:
//
//   - an append-only, crash-safe on-disk calibration log (one compact record
//     per run: fingerprint, per-stage kind, estimate, measurement,
//     cached/shared/unmodeled flags), and
//   - in-memory rolling aggregates per stage kind (ingest/join/infer/train/
//     storage): a time-decayed EWMA of the log-ratio measured/estimated,
//     relative-error histograms, sample counts, and a least-squares
//     per-kind scale factor.
//
// Units: the simulator prices the paper's cluster while the engine runs a
// scaled-down in-process replica, so absolute stage *times* differ by orders
// of magnitude by design. Time samples are therefore normalized to shares of
// their run (stage seconds divided by the run's total, on each side
// independently) before they enter a record: the calibration pair compares
// the *shape* of the cost model against the measured shape, which is the
// scale-free signal sim's own comparison renderers document. A uniform
// mis-scale across every stage is invisible by construction; a mis-priced
// single stage (the realistic failure) shifts its share and registers as
// drift. Storage samples stay in absolute bytes: the memory model's
// predictions are built from the measured workload's own row counts and
// image bytes, so bytes are directly comparable.
//
// Decay runs on record timestamps, not the wall clock, so replaying a
// persisted log offline (vista -calib report) reproduces the live
// aggregates exactly, and fake-clock tests need no sleeps.
package calib

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/sampler"
	"repro/internal/plan"
	"repro/internal/sim"
)

// Kind buckets stage labels into the cost-model components the aggregates
// track. Every "<name>:<layer>" span label maps onto one kind via KindOf.
type Kind string

// The five stage kinds. Infer covers partial-CNN inference however it is
// served (infer, premat, cache attach, share attach); Storage covers the
// memory model's byte predictions rather than a time component.
const (
	KindIngest  Kind = "ingest"
	KindJoin    Kind = "join"
	KindInfer   Kind = "infer"
	KindTrain   Kind = "train"
	KindStorage Kind = "storage"
)

// Kinds lists every kind in report order.
var Kinds = []Kind{KindIngest, KindJoin, KindInfer, KindTrain, KindStorage}

// KindOf maps a stage label ("ingest", "infer:fc6", "storage:peak", ...)
// onto its kind; ok is false for labels no kind models.
func KindOf(stage string) (Kind, bool) {
	name, _, _ := strings.Cut(stage, ":")
	switch name {
	case "ingest":
		return KindIngest, true
	case "join":
		return KindJoin, true
	case "infer", "premat", "cache", "shared":
		return KindInfer, true
	case "train":
		return KindTrain, true
	case "storage":
		return KindStorage, true
	}
	return "", false
}

// Sample is one (estimated, measured) calibration pair. For time stages the
// values are shares of the run (see the package comment); for storage stages
// they are bytes. A sample with Cached, Shared, or Unmodeled set — or a
// non-positive side — is logged for the record but excluded from aggregates:
// an attach is not the inference the estimate prices, and an unmodeled label
// has no estimate at all.
type Sample struct {
	// Stage is the span label ("ingest", "infer:fc6", "storage:peak", ...).
	Stage string
	// Kind is the aggregate bucket; "" when the label is unmodeled.
	Kind Kind
	// Est and Meas are the calibration pair (shares for time, bytes for
	// storage).
	Est, Meas float64
	// Cached/Shared/Unmodeled mirror sim.StageComparison's flags.
	Cached, Shared, Unmodeled bool
}

// counts reports whether the sample enters the rolling aggregates.
func (s Sample) counts() bool {
	return !s.Cached && !s.Shared && !s.Unmodeled && s.Est > 0 && s.Meas > 0
}

// SamplesFromRun flattens one run's comparison rows (and, when non-nil, its
// series report) into calibration samples, normalizing time rows to shares of
// their run. Only rows that will enter the aggregates participate in the
// share denominators, so an attach-served (cached/shared) stage does not
// dilute the shape of the rows actually being compared.
func SamplesFromRun(comps []sim.StageComparison, series *sim.SeriesReport) []Sample {
	var estTotal, measTotal float64
	include := make([]bool, len(comps))
	for i, c := range comps {
		if c.Cached || c.Shared || c.Unmodeled || c.Estimated <= 0 || c.Measured <= 0 {
			continue
		}
		include[i] = true
		estTotal += c.Estimated.Seconds()
		measTotal += c.Measured.Seconds()
	}
	out := make([]Sample, 0, len(comps)+2)
	for i, c := range comps {
		k, _ := KindOf(c.Stage)
		s := Sample{
			Stage: c.Stage, Kind: k,
			Est: c.Estimated.Seconds(), Meas: c.Measured.Seconds(),
			Cached: c.Cached, Shared: c.Shared, Unmodeled: c.Unmodeled,
		}
		if include[i] {
			s.Est /= estTotal
			s.Meas /= measTotal
		}
		out = append(out, s)
	}
	if series != nil {
		if series.PredPeakStorageBytes > 0 || series.MeasPeakStorageBytes > 0 {
			out = append(out, Sample{
				Stage: "storage:peak", Kind: KindStorage,
				Est:  float64(series.PredPeakStorageBytes),
				Meas: float64(series.MeasPeakStorageBytes),
			})
		}
		if series.PredSpillBytes > 0 || series.MeasSpillBytes > 0 {
			out = append(out, Sample{
				Stage: "storage:spill", Kind: KindStorage,
				Est:  float64(series.PredSpillBytes),
				Meas: float64(series.MeasSpillBytes),
			})
		}
	}
	return out
}

// RunEnv describes one measured run's workload shape, enough to rebuild the
// simulator workload its trace is compared against. Callers derive it from
// the run's actual rows (the same way cmd/vista's -trace comparison does), so
// the memory model's byte predictions line up with what really ran.
type RunEnv struct {
	ModelName string
	Dataset   string
	// Rows/StructDim/ImageRowBytes describe the measured dataset (average
	// image-row bytes; a sample of the first rows suffices).
	Rows          int
	StructDim     int
	ImageRowBytes int64
	PlanKind      plan.Kind
	Placement     plan.JoinPlacement
	Nodes, Cores  int
	MemBytes      int64
	// InferEstScale multiplies the simulator's inference-stage estimates
	// before samples are built (0 or 1 = off). It exists as a deliberate
	// mis-calibration hook so the -max-drift SLO path can be exercised
	// end-to-end; production callers leave it zero.
	InferEstScale float64
	// Profile, when non-nil, is the active calibration profile: estimates
	// are corrected through it (after the InferEstScale hook, before share
	// normalization), so the recorded samples measure the residual error the
	// next refit should act on.
	Profile *Profile
}

// CompareRun simulates env's workload on the paper cluster profile, lines the
// result up against the measured trace (and sampled series, when non-nil),
// and returns the run's calibration samples. It fails when the optimizer
// finds the simulated workload infeasible or the simulated run crashes —
// there is no estimate to calibrate against.
func CompareRun(env RunEnv, trace *obs.Span, series *sampler.Recording) ([]Sample, error) {
	if trace == nil {
		return nil, fmt.Errorf("calib: no trace to compare")
	}
	wl, err := sim.NewWorkload(sim.WorkloadSpec{
		ModelName: env.ModelName,
		NumLayers: countInferStages(trace),
		Dataset: sim.DatasetSpec{
			Name:          env.Dataset,
			Rows:          env.Rows,
			StructDim:     env.StructDim,
			ImageRowBytes: env.ImageRowBytes,
		},
		PlanKind:  env.PlanKind,
		Placement: env.Placement,
		Nodes:     env.Nodes,
		CPUSys:    env.Cores,
		MemSys:    env.MemBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("calib: workload: %w", err)
	}
	cfg, err := sim.VistaConfig(wl)
	if err != nil {
		return nil, fmt.Errorf("calib: config: %w", err)
	}
	prof := sim.PaperCluster().WithNodes(env.Nodes)
	prof.MemPerNode = env.MemBytes
	simRes := sim.Run(wl, cfg, prof)
	if simRes.Crash != nil {
		return nil, fmt.Errorf("calib: simulated run crashes: %w", simRes.Crash)
	}
	comps := sim.CompareTrace(simRes, trace)
	if env.InferEstScale > 0 && env.InferEstScale != 1 {
		for i := range comps {
			if k, _ := KindOf(comps[i].Stage); k == KindInfer {
				comps[i].Estimated = scaleDuration(comps[i].Estimated, env.InferEstScale)
			}
		}
	}
	env.Profile.ApplyComparisons(comps)
	if series != nil {
		rep := sim.CompareSeries(simRes, trace, series)
		env.Profile.ApplySeries(&rep)
		return SamplesFromRun(comps, &rep), nil
	}
	return SamplesFromRun(comps, nil), nil
}

// countInferStages counts how many feature layers the measured run actually
// explored, so the simulated workload matches the trace stage-for-stage.
func countInferStages(trace *obs.Span) int {
	n := 0
	for _, sp := range trace.Children() {
		name, _, _ := strings.Cut(sp.Name(), ":")
		switch name {
		case "infer", "premat", "cache", "shared":
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

// scaleDuration multiplies d by f.
func scaleDuration(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}
