package calib

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/faultinject"
)

// Failpoint sites (see internal/faultinject). The recovery base site expands
// into ".create", ".write" (a byte site), and ".rename" sub-sites, mirroring
// the featurestore's atomic-write sites.
const (
	// FaultLogAppend is the byte site every record append moves through; a
	// torn verdict leaves a truncated tail the next Open must recover from.
	FaultLogAppend = "calib/log.append"
	// FaultLogAppended sits just after a record append returns — the
	// kill-here point crash-consistency tests arm to die between a
	// (possibly torn) append and any later one.
	FaultLogAppended = "calib/log.appended"
	// FaultLogRecover is the base site for the clean-prefix rewrite Open
	// performs when it finds a torn tail.
	FaultLogRecover = "calib/log"
)

// Record is one run's worth of calibration samples, stamped with the
// recorder clock's time so decay replays identically offline.
type Record struct {
	// At is the record timestamp (persisted at nanosecond precision).
	At time.Time
	// Fingerprint identifies the workload ("model|dataset|rows|seed").
	Fingerprint string
	// Samples are the run's calibration pairs.
	Samples []Sample
}

// On-disk record layout (little-endian):
//
//	magic "VCL1" | u32 payloadLen | payload | u32 crc32(payload)
//
// payload:
//
//	i64 unixNano
//	u16 fingerprintLen | fingerprint
//	u16 nSamples
//	per sample: u16 stageLen | stage | u8 kind | u8 flags | f64 est | f64 meas
//
// Every length is bounds-checked on decode; a record that does not parse
// cleanly ends the readable prefix (decode never panics, never guesses).
const (
	logMagic = "VCL1"
	// maxPayloadBytes bounds one record (~4096 samples of ~80 bytes).
	maxPayloadBytes = 1 << 20
	maxStringLen    = 1 << 10
	maxSamples      = 4096

	recordHeaderLen = 8 // magic + payload length
	recordFooterLen = 4 // crc32
)

// kindCodes is the wire encoding of Kind; 255 marks an unmodeled/unknown
// label so future stage names round-trip without being misattributed.
var kindCodes = map[Kind]byte{
	KindIngest: 0, KindJoin: 1, KindInfer: 2, KindTrain: 3, KindStorage: 4,
}

func kindFromCode(c byte) Kind {
	for k, code := range kindCodes {
		if code == c {
			return k
		}
	}
	return ""
}

const (
	flagCached    = 1 << 0
	flagShared    = 1 << 1
	flagUnmodeled = 1 << 2
)

// encodeRecord renders rec in the on-disk layout.
func encodeRecord(rec Record) []byte {
	var payload []byte
	payload = binary.LittleEndian.AppendUint64(payload, uint64(rec.At.UnixNano()))
	payload = appendString(payload, rec.Fingerprint)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(rec.Samples)))
	for _, s := range rec.Samples {
		payload = appendString(payload, s.Stage)
		code, ok := kindCodes[s.Kind]
		if !ok {
			code = 255
		}
		payload = append(payload, code)
		var flags byte
		if s.Cached {
			flags |= flagCached
		}
		if s.Shared {
			flags |= flagShared
		}
		if s.Unmodeled {
			flags |= flagUnmodeled
		}
		payload = append(payload, flags)
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(s.Est))
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(s.Meas))
	}
	out := make([]byte, 0, recordHeaderLen+len(payload)+recordFooterLen)
	out = append(out, logMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return out
}

func appendString(b []byte, s string) []byte {
	if len(s) > maxStringLen {
		s = s[:maxStringLen]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// ErrCorruptLog describes an unreadable log tail; callers that recover (Open)
// truncate to the clean prefix instead of surfacing it.
var ErrCorruptLog = errors.New("calib: corrupt log record")

// decodeRecords parses every complete, checksummed record from data and
// returns them together with the byte length of the clean prefix. A torn or
// corrupt tail is not an error here — the caller decides whether to truncate
// (Open) or just report it (ReadLog).
func decodeRecords(data []byte) (recs []Record, clean int) {
	off := 0
	for off < len(data) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			return recs, off
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, off
}

// decodeRecord parses one record from the front of data, returning its
// wire length.
func decodeRecord(data []byte) (Record, int, error) {
	var rec Record
	if len(data) < recordHeaderLen {
		return rec, 0, fmt.Errorf("%w: short header", ErrCorruptLog)
	}
	if string(data[:4]) != logMagic {
		return rec, 0, fmt.Errorf("%w: bad magic", ErrCorruptLog)
	}
	plen := int(binary.LittleEndian.Uint32(data[4:8]))
	if plen > maxPayloadBytes {
		return rec, 0, fmt.Errorf("%w: oversized payload (%d bytes)", ErrCorruptLog, plen)
	}
	total := recordHeaderLen + plen + recordFooterLen
	if len(data) < total {
		return rec, 0, fmt.Errorf("%w: truncated record", ErrCorruptLog)
	}
	payload := data[recordHeaderLen : recordHeaderLen+plen]
	sum := binary.LittleEndian.Uint32(data[recordHeaderLen+plen : total])
	if crc32.ChecksumIEEE(payload) != sum {
		return rec, 0, fmt.Errorf("%w: checksum mismatch", ErrCorruptLog)
	}
	r := payloadReader{b: payload}
	rec.At = time.Unix(0, int64(r.u64()))
	rec.Fingerprint = r.str()
	n := int(r.u16())
	if n > maxSamples {
		return rec, 0, fmt.Errorf("%w: %d samples", ErrCorruptLog, n)
	}
	for i := 0; i < n && !r.failed; i++ {
		var s Sample
		s.Stage = r.str()
		s.Kind = kindFromCode(r.u8())
		flags := r.u8()
		s.Cached = flags&flagCached != 0
		s.Shared = flags&flagShared != 0
		s.Unmodeled = flags&flagUnmodeled != 0
		s.Est = math.Float64frombits(r.u64())
		s.Meas = math.Float64frombits(r.u64())
		rec.Samples = append(rec.Samples, s)
	}
	if r.failed || r.off != len(payload) {
		return rec, 0, fmt.Errorf("%w: malformed payload", ErrCorruptLog)
	}
	return rec, total, nil
}

// payloadReader is a bounds-checked cursor over one record payload: any
// overrun latches failed instead of panicking.
type payloadReader struct {
	b      []byte
	off    int
	failed bool
}

func (r *payloadReader) take(n int) []byte {
	if r.failed || r.off+n > len(r.b) || n < 0 {
		r.failed = true
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *payloadReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *payloadReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *payloadReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *payloadReader) str() string {
	n := int(r.u16())
	if n > maxStringLen {
		r.failed = true
		return ""
	}
	return string(r.take(n))
}

// Log is the append-only on-disk calibration log. Opening recovers from a
// torn tail (a crash mid-append) by atomically rewriting the clean prefix;
// appends are single ordered writes, so the only possible damage from a
// crash is a torn final record, never a corrupt interior.
type Log struct {
	f       *os.File
	path    string
	records []Record
}

// OpenLog opens (or creates) the log at path, recovering the clean prefix if
// the previous process died mid-append. The records that survived are
// available via Records for replay into an aggregator.
func OpenLog(path string) (*Log, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("calib: open log: %w", err)
	}
	recs, clean := decodeRecords(data)
	if clean < len(data) {
		// Torn tail: atomically replace the file with its clean prefix so
		// the damage cannot compound across restarts. Write-then-rename,
		// like the featurestore's index persistence.
		if err := writeFileAtomic(FaultLogRecover, path, data[:clean]); err != nil {
			return nil, fmt.Errorf("calib: recover log: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("calib: open log: %w", err)
	}
	return &Log{f: f, path: path, records: recs}, nil
}

// Records returns the records recovered at open time (not those appended
// since).
func (l *Log) Records() []Record { return l.records }

// Append writes one record. A failed append may leave a torn tail; the next
// OpenLog truncates it away, so the log never corrupts, it only ever loses
// its final record.
func (l *Log) Append(rec Record) error {
	blob := encodeRecord(rec)
	v := faultinject.HitBytes(FaultLogAppend, int64(len(blob)))
	if v.Err != nil {
		if v.Allowed > 0 {
			l.f.Write(blob[:v.Allowed])
		}
		return v.Err
	}
	if v.SilentTear {
		blob = blob[:v.Allowed]
	}
	if _, err := l.f.Write(blob); err != nil {
		return fmt.Errorf("calib: append: %w", err)
	}
	if err := faultinject.Hit(FaultLogAppended); err != nil {
		return err
	}
	return nil
}

// Close closes the underlying file.
func (l *Log) Close() error { return l.f.Close() }

// ReadLog parses every clean record from path without opening it for
// writing; droppedBytes is the length of any unreadable tail (0 for a clean
// log). Offline replay (vista -calib report) uses it so the report can note
// a torn tail instead of silently ignoring it.
func ReadLog(path string) (recs []Record, droppedBytes int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("calib: read log: %w", err)
	}
	recs, clean := decodeRecords(data)
	return recs, len(data) - clean, nil
}

// tmpPrefix names atomic-write temp files, so stranded ones are recognizable.
const tmpPrefix = ".tmp-"

// writeFileAtomic writes via a temp file + rename so a crash mid-recovery
// never replaces a readable log with a half-written one. Failpoint sub-sites
// mirror the featurestore's: "<site>.create", "<site>.write" (bytes),
// "<site>.rename".
func writeFileAtomic(site, path string, blob []byte) error {
	if err := faultinject.Hit(site + ".create"); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), tmpPrefix+"*")
	if err != nil {
		return err
	}
	payload := blob
	if v := faultinject.HitBytes(site+".write", int64(len(blob))); v.Err != nil {
		if v.Allowed > 0 {
			tmp.Write(blob[:v.Allowed])
		}
		tmp.Close()
		os.Remove(tmp.Name())
		return v.Err
	} else if v.SilentTear {
		payload = blob[:v.Allowed]
	}
	_, werr := tmp.Write(payload)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := faultinject.Hit(site + ".rename"); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
