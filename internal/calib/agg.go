package calib

import (
	"math"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultHalfLife is the decay half-life of the drift EWMA: a sample's
// weight halves every 30 minutes of record time, so the report tracks the
// last hour or so of traffic rather than averaging over the log's lifetime.
const DefaultHalfLife = 30 * time.Minute

// relErrBounds are the relative-error histogram bucket upper bounds on
// |measured/estimated − 1|: within 10%, 25%, 50%, 2×, 3×, 6×, beyond.
var relErrBounds = []float64{0.1, 0.25, 0.5, 1, 2, 5}

// kindAgg is one kind's rolling state. The EWMA is kept as a time-decayed
// weighted mean — (sumW, sumWX) with both decayed by 0.5^(Δt/halfLife)
// before each new unit-weight sample — which, unlike the classic
// w·prev + (1−w)·x recurrence, weighs same-timestamp samples equally and
// reproduces exactly from record timestamps on offline replay.
type kindAgg struct {
	samples  int64
	excluded int64
	sumW     float64
	sumWX    float64
	last     time.Time
	hist     []int64 // len(relErrBounds)+1; last bucket is +Inf
	// sumEstMeas/sumEstSq accumulate the least-squares scale fit
	// s = Σ(est·meas)/Σ(est²), the minimizer of Σ(meas − s·est)². They
	// decay with the same half-life as the EWMA: once a profile refit
	// changes what "estimated" means, pre-refit history must fade at the
	// same rate as the drift signal or the residual fit never converges.
	sumEstMeas float64
	sumEstSq   float64
}

// Aggregator folds calibration records into per-kind rolling aggregates.
// Safe for concurrent use (metrics callbacks read while runs write).
type Aggregator struct {
	mu       sync.Mutex
	halfLife time.Duration
	runs     int64
	kinds    map[Kind]*kindAgg
}

// NewAggregator returns an empty aggregator with the given EWMA half-life
// (<= 0 means DefaultHalfLife).
func NewAggregator(halfLife time.Duration) *Aggregator {
	if halfLife <= 0 {
		halfLife = DefaultHalfLife
	}
	a := &Aggregator{halfLife: halfLife, kinds: make(map[Kind]*kindAgg, len(Kinds))}
	for _, k := range Kinds {
		a.kinds[k] = &kindAgg{hist: make([]int64, len(relErrBounds)+1)}
	}
	return a
}

// Add folds one record into the aggregates. Decay is computed from the
// record's own timestamp, so replaying a log reproduces live state exactly.
func (a *Aggregator) Add(rec Record) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runs++
	for _, s := range rec.Samples {
		ka, ok := a.kinds[s.Kind]
		if !ok {
			continue // unknown kind: logged, never aggregated
		}
		if !s.counts() {
			ka.excluded++
			continue
		}
		if ka.samples > 0 {
			dt := rec.At.Sub(ka.last)
			if dt > 0 {
				d := math.Pow(0.5, dt.Seconds()/a.halfLife.Seconds())
				ka.sumW *= d
				ka.sumWX *= d
				ka.sumEstMeas *= d
				ka.sumEstSq *= d
			}
		}
		if rec.At.After(ka.last) {
			ka.last = rec.At
		}
		ka.sumW++
		ka.sumWX += math.Log(s.Meas / s.Est)
		ka.samples++
		rel := math.Abs(s.Meas/s.Est - 1)
		idx := len(relErrBounds)
		for i, ub := range relErrBounds {
			if rel <= ub {
				idx = i
				break
			}
		}
		ka.hist[idx]++
		ka.sumEstMeas += s.Est * s.Meas
		ka.sumEstSq += s.Est * s.Est
	}
}

// HistBucket is one relative-error histogram bucket; LE is the rendered
// upper bound ("0.1" ... "+Inf") — a string because +Inf has no JSON number.
type HistBucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// StageAggregate is one kind's reported state. Zero-sample kinds report the
// identity calibration (drift ratio 1, scale 1).
type StageAggregate struct {
	Kind     string `json:"kind"`
	Samples  int64  `json:"samples"`
	Excluded int64  `json:"excluded"`
	// EWMALogRatio is the decayed mean of ln(measured/estimated).
	EWMALogRatio float64 `json:"ewma_log_ratio"`
	// DriftRatio is exp(EWMALogRatio): the multiplicative factor by which
	// measurements currently run versus estimates (1 = calibrated).
	DriftRatio float64 `json:"drift_ratio"`
	// Drift is the symmetric magnitude max(r, 1/r) − 1, the quantity
	// -max-drift bounds: 0.5 means "off by 1.5× in either direction".
	Drift float64 `json:"drift"`
	// SuggestedScale is the decayed least-squares scale s minimizing
	// Σ(meas − s·est)² over recent samples. With a profile active the
	// estimates entering the fit are already profile-corrected, so this is
	// the *residual* correction a refit would multiply onto the active
	// factor (see Refit).
	SuggestedScale float64 `json:"suggested_scale"`
	// ActiveScale is the correction the active calibration profile
	// currently applies to this kind's estimates (1 when no profile is
	// active); set by Report.WithProfile.
	ActiveScale float64      `json:"active_scale"`
	RelErrHist  []HistBucket `json:"rel_err_hist"`
}

// Report is the full calibration report: what GET /calibration serves and
// vista -calib report reproduces offline.
type Report struct {
	Runs            int64            `json:"runs"`
	Samples         int64            `json:"samples"`
	HalfLifeSeconds float64          `json:"half_life_seconds"`
	Stages          []StageAggregate `json:"stages"`
	// Profile is the active calibration profile, when one is (see
	// WithProfile); omitted entirely for unprofiled reports so the PR-9 wire
	// format is unchanged.
	Profile *Profile `json:"profile,omitempty"`
}

// WithProfile annotates the report with the active profile p: each stage's
// ActiveScale becomes p's factor for that kind, and the profile itself is
// embedded. A nil p returns the report unchanged (ActiveScale stays 1). The
// stages slice is copied, so annotating a snapshot never mutates shared
// state.
func (r Report) WithProfile(p *Profile) Report {
	if p == nil {
		return r
	}
	stages := make([]StageAggregate, len(r.Stages))
	copy(stages, r.Stages)
	for i := range stages {
		stages[i].ActiveScale = round6(p.ScaleFor(Kind(stages[i].Kind)))
	}
	r.Stages = stages
	r.Profile = p
	return r
}

// Report snapshots the aggregates. Every kind is always present, in Kinds
// order; floats are rounded to 6 decimals so the wire format is stable
// enough to golden-test byte-for-byte.
func (a *Aggregator) Report() Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := Report{
		Runs:            a.runs,
		HalfLifeSeconds: a.halfLife.Seconds(),
		Stages:          make([]StageAggregate, 0, len(Kinds)),
	}
	for _, k := range Kinds {
		ka := a.kinds[k]
		st := StageAggregate{
			Kind: string(k), Samples: ka.samples, Excluded: ka.excluded,
			DriftRatio: 1, SuggestedScale: 1, ActiveScale: 1,
		}
		if ka.samples > 0 && ka.sumW > 0 {
			mean := ka.sumWX / ka.sumW
			r := math.Exp(mean)
			st.EWMALogRatio = round6(mean)
			st.DriftRatio = round6(r)
			st.Drift = round6(math.Max(r, 1/r) - 1)
		}
		if ka.sumEstSq > 0 {
			st.SuggestedScale = round6(ka.sumEstMeas / ka.sumEstSq)
		}
		st.RelErrHist = make([]HistBucket, len(ka.hist))
		for i := range relErrBounds {
			st.RelErrHist[i] = HistBucket{LE: formatBound(relErrBounds[i]), Count: ka.hist[i]}
		}
		st.RelErrHist[len(relErrBounds)] = HistBucket{LE: "+Inf", Count: ka.hist[len(relErrBounds)]}
		rep.Samples += ka.samples
		rep.Stages = append(rep.Stages, st)
	}
	return rep
}

// lsState is one kind's raw least-squares accumulator, snapshotted at a refit
// boundary. Because every sum decays by the same multiplicative factor, a
// snapshot can be decayed forward to a later snapshot's timestamp and
// subtracted out, leaving exactly the contribution of the samples recorded in
// between — the windowing fitSince builds on.
type lsState struct {
	samples    int64
	sumEstMeas float64
	sumEstSq   float64
	last       time.Time
}

// fitEvidence is a windowed residual fit: the least-squares scale restricted
// to samples recorded after a snapshot, plus how many there were. A kind with
// no usable window reports zero samples and scale 1.
type fitEvidence struct {
	samples   int64
	suggested float64
}

// fitSince returns, per kind, the residual fit over samples recorded since
// base (a missing entry means "since the beginning"), and the current
// snapshots a caller consuming the evidence should store as its next base.
// The Fitter uses this so each refit acts only on evidence gathered under the
// factors it is about to revise: refitting from the cumulative fit would
// re-apply history already absorbed into the profile and compound the
// correction past its fixed point.
func (a *Aggregator) fitSince(base map[Kind]lsState) (map[Kind]fitEvidence, map[Kind]lsState) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ev := make(map[Kind]fitEvidence, len(a.kinds))
	snap := make(map[Kind]lsState, len(a.kinds))
	for k, ka := range a.kinds {
		cur := lsState{samples: ka.samples, sumEstMeas: ka.sumEstMeas, sumEstSq: ka.sumEstSq, last: ka.last}
		snap[k] = cur
		prev := base[k]
		em, ee := cur.sumEstMeas, cur.sumEstSq
		if prev.samples > 0 {
			d := 1.0
			if dt := cur.last.Sub(prev.last); dt > 0 {
				d = math.Pow(0.5, dt.Seconds()/a.halfLife.Seconds())
			}
			em -= d * prev.sumEstMeas
			ee -= d * prev.sumEstSq
		}
		e := fitEvidence{samples: cur.samples - prev.samples, suggested: 1}
		if e.samples > 0 && ee > 0 && em > 0 {
			e.suggested = em / ee
		} else {
			e.samples = 0 // numerically empty window: no evidence
		}
		ev[k] = e
	}
	return ev, snap
}

// driftOf reads one kind's live drift ratio (for the metrics gauge).
func (a *Aggregator) driftOf(k Kind) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	ka := a.kinds[k]
	if ka == nil || ka.samples == 0 || ka.sumW <= 0 {
		return 1
	}
	return math.Exp(ka.sumWX / ka.sumW)
}

// samplesOf reads one kind's live sample count (for the metrics counter).
func (a *Aggregator) samplesOf(k Kind) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	ka := a.kinds[k]
	if ka == nil {
		return 0
	}
	return ka.samples
}

// RegisterMetrics exposes the aggregates as scrape-time series:
// vista_calib_drift_ratio{stage} and vista_calib_samples_total{stage}, one
// instance per kind.
func (a *Aggregator) RegisterMetrics(reg *obs.Registry) {
	for _, k := range Kinds {
		k := k
		reg.GaugeFunc("vista_calib_drift_ratio",
			"Decayed mean measured/estimated ratio per stage kind (1 = calibrated).",
			func() float64 { return a.driftOf(k) },
			obs.Label{Key: "stage", Value: string(k)})
		reg.CounterFunc("vista_calib_samples_total",
			"Calibration samples folded into the rolling aggregates per stage kind.",
			func() float64 { return float64(a.samplesOf(k)) },
			obs.Label{Key: "stage", Value: string(k)})
	}
}

// formatBound renders a histogram bound the way Prometheus renders le
// labels.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// round6 rounds to 6 decimals: report floats are presentation values, and a
// fixed precision keeps the golden-tested JSON stable across platforms.
func round6(v float64) float64 {
	return math.Round(v*1e6) / 1e6
}
