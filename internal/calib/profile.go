package calib

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/optimizer"
	"repro/internal/sim"
)

// FaultProfileSave is the failpoint base site for the atomic profile write
// (sub-sites ".create", ".write", ".rename" — see writeFileAtomic).
const FaultProfileSave = "calib/profile"

// ProfileScale is one stage kind's fitted correction inside a Profile.
type ProfileScale struct {
	// Kind is the stage kind the factor applies to.
	Kind string `json:"kind"`
	// Scale multiplies every estimate the cost model attributes to Kind
	// (1 = the paper constant is right).
	Scale float64 `json:"scale"`
	// Samples is the kind's sample count at fit time — the evidence the
	// factor rests on (for Fitter-produced profiles, the samples in the
	// refit's evidence window rather than the lifetime total).
	Samples int64 `json:"samples"`
}

// Profile is a fitted calibration profile: the feedback half of the drift
// observatory. Where the Report's SuggestedScale is a read-only diagnosis,
// a Profile is the prescription actually applied — CompareRun corrects the
// simulator's estimates through it (so the aggregates measure the *residual*
// error), and CostScales feeds the same factors into optimizer plan choice
// and sim.AdmissionCost pricing.
//
// The JSON form is the on-disk profile file (SaveProfile/LoadProfile) and is
// embedded verbatim in the calibration report (Report.WithProfile), so the
// live /calibration endpoint and the offline vista -calib report stay
// byte-identical with a profile active.
type Profile struct {
	// Version is the file-format version (currently 1).
	Version int `json:"version"`
	// FittedAt stamps the refit that produced this profile.
	FittedAt time.Time `json:"fitted_at"`
	// Refits counts profile-changing refits since the loop started (an
	// unchanged refit — everything inside the hysteresis band — does not
	// advance it, and does not rewrite the file).
	Refits int64 `json:"refits"`
	// Scales holds one entry per kind, in Kinds order.
	Scales []ProfileScale `json:"scales"`
}

// ScaleFor returns the profile's factor for kind k (1 when the profile is
// nil, the kind is absent, or its factor is unset).
func (p *Profile) ScaleFor(k Kind) float64 {
	if p == nil {
		return 1
	}
	for _, s := range p.Scales {
		if Kind(s.Kind) == k && s.Scale > 0 {
			return s.Scale
		}
	}
	return 1
}

// CostScales renders the profile as the optimizer's per-kind corrections,
// ready to assign to optimizer.Params.Scales (or core.Spec.CostScales). A
// nil profile yields the identity.
func (p *Profile) CostScales() optimizer.CostScales {
	return optimizer.CostScales{
		Ingest:  p.ScaleFor(KindIngest),
		Join:    p.ScaleFor(KindJoin),
		Infer:   p.ScaleFor(KindInfer),
		Train:   p.ScaleFor(KindTrain),
		Storage: p.ScaleFor(KindStorage),
	}
}

// ApplyComparisons corrects each comparison's estimate by the profile's
// factor for its stage kind, in place. Applying the profile *before* samples
// are built is what closes the loop: the aggregates then accumulate the
// residual measured/corrected-estimate ratio, so a later Refit multiplies
// the current factors by the residual instead of re-deriving them from raw
// history. Nil profiles are no-ops.
func (p *Profile) ApplyComparisons(comps []sim.StageComparison) {
	if p == nil {
		return
	}
	for i := range comps {
		k, ok := KindOf(comps[i].Stage)
		if !ok {
			continue
		}
		if f := p.ScaleFor(k); f != 1 {
			comps[i].Estimated = scaleDuration(comps[i].Estimated, f)
		}
	}
}

// ApplySeries corrects the series report's predicted-byte fields by the
// Storage factor, in place (nil profiles and nil reports are no-ops).
func (p *Profile) ApplySeries(rep *sim.SeriesReport) {
	if p == nil || rep == nil {
		return
	}
	f := p.ScaleFor(KindStorage)
	if f == 1 {
		return
	}
	rep.PredPeakStorageBytes = optimizer.ScaleBytes(rep.PredPeakStorageBytes, f)
	rep.PredSpillBytes = optimizer.ScaleBytes(rep.PredSpillBytes, f)
	for i := range rep.Stages {
		rep.Stages[i].PredStorageBytes = optimizer.ScaleBytes(rep.Stages[i].PredStorageBytes, f)
		rep.Stages[i].PredSpillBytes = optimizer.ScaleBytes(rep.Stages[i].PredSpillBytes, f)
	}
}

// FitOptions are Refit's guardrails.
type FitOptions struct {
	// MinSamples is the evidence floor: a kind with fewer aggregate samples
	// keeps its prior factor untouched.
	MinSamples int64
	// MinScale/MaxScale clamp every fitted factor; an update that lands
	// outside saturates at the bound instead of tracking a runaway fit.
	MinScale, MaxScale float64
	// Hysteresis is the dead band on |ln(residual scale)|: a suggested
	// residual within it leaves the factor (and the profile file) untouched,
	// so one noisy run cannot swing pricing back and forth. Zero means the
	// default band; pass a negative value to disable the dead band entirely.
	Hysteresis float64
}

// DefaultFitOptions returns the production guardrails: a 3-sample floor,
// factors clamped to [0.02, 50], and a ~10% hysteresis band.
func DefaultFitOptions() FitOptions {
	return FitOptions{MinSamples: 3, MinScale: 0.02, MaxScale: 50, Hysteresis: 0.10}
}

// normalize fills unset guardrails with the defaults.
func (o FitOptions) normalize() FitOptions {
	d := DefaultFitOptions()
	if o.MinSamples <= 0 {
		o.MinSamples = d.MinSamples
	}
	if o.MinScale <= 0 {
		o.MinScale = d.MinScale
	}
	if o.MaxScale <= 0 {
		o.MaxScale = d.MaxScale
	}
	switch {
	case o.Hysteresis == 0:
		o.Hysteresis = d.Hysteresis
	case o.Hysteresis < 0:
		o.Hysteresis = 0
	}
	return o
}

// Refit folds a calibration report's least-squares residuals into prev,
// producing the next profile: per kind, next = clamp(prev × suggested)
// subject to the FitOptions guardrails. Because the report was built from
// profile-corrected estimates (ApplyComparisons), SuggestedScale is the
// *residual* correction on top of prev, and composing multiplicatively makes
// the loop a convergent fixed-point iteration: a kind whose estimates run h×
// too low converges on factor h, after which the residual is 1 and the
// profile stops moving. Loop callers must feed evidence gathered *under*
// prev — the Fitter windows the aggregates per refit for exactly this reason
// (see Fitter.RefitNow); one-shot offline fits from a replayed report pass
// prev = nil, where the cumulative report is the right evidence.
//
// changed reports whether any factor moved; when false the returned profile
// is prev itself (possibly nil), so callers can skip the atomic swap and the
// disk write — the property the byte-identical live-vs-offline report gate
// relies on once the loop has converged.
func Refit(prev *Profile, rep Report, now time.Time, opts FitOptions) (next *Profile, changed bool) {
	opts = opts.normalize()
	byKind := make(map[string]StageAggregate, len(rep.Stages))
	for _, st := range rep.Stages {
		byKind[st.Kind] = st
	}
	scales := make([]ProfileScale, 0, len(Kinds))
	for _, k := range Kinds {
		st := byKind[string(k)]
		cur := prev.ScaleFor(k)
		out := ProfileScale{Kind: string(k), Scale: cur, Samples: st.Samples}
		if st.Samples >= opts.MinSamples && st.SuggestedScale > 0 &&
			math.Abs(math.Log(st.SuggestedScale)) > opts.Hysteresis {
			s := cur * st.SuggestedScale
			if s < opts.MinScale {
				s = opts.MinScale
			}
			if s > opts.MaxScale {
				s = opts.MaxScale
			}
			out.Scale = round6(s)
		}
		if out.Scale != cur {
			changed = true
		}
		scales = append(scales, out)
	}
	if !changed {
		return prev, false
	}
	return &Profile{
		Version:  1,
		FittedAt: now,
		Refits:   prev.refits() + 1,
		Scales:   scales,
	}, true
}

// refits is prev.Refits, nil-safe.
func (p *Profile) refits() int64 {
	if p == nil {
		return 0
	}
	return p.Refits
}

// SaveProfile atomically writes p as JSON to path (temp file + rename, the
// same crash-safe discipline as the calibration log's recovery rewrite).
func SaveProfile(path string, p *Profile) error {
	blob, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("calib: encode profile: %w", err)
	}
	return writeFileAtomic(FaultProfileSave, path, append(blob, '\n'))
}

// LoadProfile reads a profile file written by SaveProfile.
func LoadProfile(path string) (*Profile, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := json.Unmarshal(blob, &p); err != nil {
		return nil, fmt.Errorf("calib: profile %s: %w", path, err)
	}
	if p.Version != 1 {
		return nil, fmt.Errorf("calib: profile %s: unsupported version %d", path, p.Version)
	}
	for _, s := range p.Scales {
		if s.Scale < 0 || math.IsNaN(s.Scale) || math.IsInf(s.Scale, 0) {
			return nil, fmt.Errorf("calib: profile %s: invalid scale %v for kind %q", path, s.Scale, s.Kind)
		}
	}
	return &p, nil
}
