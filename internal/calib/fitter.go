package calib

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// DefaultRefitInterval is how often an auto-calibrating Fitter refits the
// profile from the rolling aggregates.
const DefaultRefitInterval = 30 * time.Second

// FitterConfig assembles a Fitter.
type FitterConfig struct {
	// Recorder supplies the rolling aggregates each refit fits against.
	Recorder *Recorder
	// Path, when non-empty, is where profile-changing refits are persisted
	// (SaveProfile); unchanged refits never rewrite the file.
	Path string
	// Interval is the periodic refit cadence (<= 0 = DefaultRefitInterval).
	Interval time.Duration
	// Options are the fit guardrails; the zero value means
	// DefaultFitOptions.
	Options FitOptions
	// Initial seeds the active profile (e.g. a pinned file loaded at boot);
	// nil starts from the identity.
	Initial *Profile
	// Clock drives the refit ticker (nil = wall clock); tests inject a fake
	// so scheduling is deterministic.
	Clock clock.Clock
}

// Fitter owns the feedback half of the calibration loop: it periodically
// refits a Profile from its Recorder's aggregates and publishes the result
// with an atomic pointer swap, so pricing paths read the active profile
// lock-free mid-flight. A Fitter is also the holder for a pinned profile:
// construct it with Initial set and never call Start.
type Fitter struct {
	rec      *Recorder
	path     string
	interval time.Duration
	opts     FitOptions
	clk      clock.Clock

	active atomic.Pointer[Profile]

	mu       sync.Mutex // serializes RefitNow (swap + persist)
	baseline map[Kind]lsState
	stop     chan struct{}
	done     chan struct{}
}

// NewFitter builds a Fitter; the active profile starts at cfg.Initial. The
// recorder's aggregates are snapshotted at construction, so evidence replayed
// from an existing log — recorded under whatever profiles past processes had
// active — never feeds a refit: the loop fits only what this process
// observes.
func NewFitter(cfg FitterConfig) *Fitter {
	f := &Fitter{
		rec:      cfg.Recorder,
		path:     cfg.Path,
		interval: cfg.Interval,
		opts:     cfg.Options.normalize(),
		clk:      clock.Or(cfg.Clock),
	}
	if f.interval <= 0 {
		f.interval = DefaultRefitInterval
	}
	if cfg.Initial != nil {
		f.active.Store(cfg.Initial)
	}
	if f.rec != nil {
		_, f.baseline = f.rec.agg.fitSince(nil)
	}
	return f
}

// Active returns the profile pricing should use right now (nil-receiver and
// never-fitted Fitters return nil, the identity).
func (f *Fitter) Active() *Profile {
	if f == nil {
		return nil
	}
	return f.active.Load()
}

// Refits returns the active profile's refit count (0 when none is active).
func (f *Fitter) Refits() int64 { return f.Active().refits() }

// RefitNow fits a new profile from the evidence recorded since each kind's
// last factor change and, when any factor moved, swaps it in and persists it.
// It returns whether the profile changed and any persistence error (the swap
// sticks even when the disk write fails — pricing should not keep stale
// factors just because a write was lost).
//
// The windowing is what makes the loop converge instead of compound: samples
// recorded before a refit carry estimates in the *old* correction basis, and
// re-fitting them after the factor moved would apply the same residual twice
// (the cumulative least-squares fit is dominated by the old basis for up to
// ten half-lives). Each refit therefore consumes its window — a kind's
// baseline advances only when its factor actually moves, so sparse evidence
// keeps accumulating toward the MinSamples floor, and once traffic stops
// every subsequent refit is a permanent no-op (the stability the
// byte-identical live-vs-offline report gate relies on).
func (f *Fitter) RefitNow() (changed bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rec == nil {
		return false, nil
	}
	rep := f.rec.Report()
	ev, snap := f.rec.agg.fitSince(f.baseline)
	for i := range rep.Stages {
		e := ev[Kind(rep.Stages[i].Kind)]
		rep.Stages[i].Samples = e.samples
		rep.Stages[i].SuggestedScale = e.suggested
	}
	prev := f.active.Load()
	next, changed := Refit(prev, rep, f.clk.Now(), f.opts)
	if !changed {
		return false, nil
	}
	for _, k := range Kinds {
		if next.ScaleFor(k) != prev.ScaleFor(k) {
			f.baseline[k] = snap[k]
		}
	}
	f.active.Store(next)
	if f.path != "" {
		err = SaveProfile(f.path, next)
	}
	return true, err
}

// Start launches the periodic refit loop. Stop must be called to release it;
// Start on a running Fitter panics (it is a boot-time call).
func (f *Fitter) Start() {
	if f.stop != nil {
		panic("calib: Fitter started twice")
	}
	f.stop = make(chan struct{})
	f.done = make(chan struct{})
	go f.loop()
}

func (f *Fitter) loop() {
	defer close(f.done)
	t := f.clk.NewTicker(f.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C():
			f.RefitNow() // persistence errors surface via the next scrape's stale file, not here
		case <-f.stop:
			return
		}
	}
}

// Stop halts the refit loop and waits for it to exit. Stopping a Fitter that
// was never started is a no-op.
func (f *Fitter) Stop() {
	if f == nil || f.stop == nil {
		return
	}
	close(f.stop)
	<-f.done
	f.stop, f.done = nil, nil
}

// RegisterMetrics exposes the active profile as scrape-time series:
// vista_calib_profile_scale{stage} (the factor pricing currently applies;
// 1 = uncorrected) and vista_calib_profile_refits_total (profile-changing
// refits since boot).
func (f *Fitter) RegisterMetrics(reg *obs.Registry) {
	for _, k := range Kinds {
		k := k
		reg.GaugeFunc("vista_calib_profile_scale",
			"Fitted cost-model correction per stage kind currently applied to pricing (1 = uncorrected).",
			func() float64 { return f.Active().ScaleFor(k) },
			obs.Label{Key: "stage", Value: string(k)})
	}
	reg.CounterFunc("vista_calib_profile_refits_total",
		"Profile-changing calibration refits since the process started.",
		func() float64 { return float64(f.Refits()) })
}
