package calib

import (
	"fmt"
	"math"
	"time"

	"repro/internal/clock"
	"repro/internal/sim"
)

// StageShare is one stage's true share of a synthetic run's time, the ground
// truth a Scenario's measurements are drawn from.
type StageShare struct {
	// Stage is the span label ("ingest", "infer:fc6", ...).
	Stage string
	// Share is the stage's true fraction of the run.
	Share float64
}

// Scenario is a synthetic mis-calibration workload for exercising the full
// observe → fit → re-price loop without running the engine: each round
// fabricates the stage comparisons a run with known true shares would
// produce under an injected estimate error, pushes them through the exact
// production path (active-profile correction, share normalization, recorder,
// windowed refit), and tracks how fast drift converges back to 1. The graded
// suite (ConvergenceScenarios) is the repo's convergence proof: easy is the
// single-kind textbook case, medium adds opposing errors and noise, complex
// alternates workload shapes and adds storage drift plus an evidence-starved
// kind that must stay floored.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Shapes are the true share vectors of the workloads in rotation; run i
	// uses Shapes[i % len(Shapes)].
	Shapes [][]StageShare
	// EstScale injects the mis-calibration: the cost model's estimate for a
	// kind is truth × EstScale[kind] (absent or 1 = calibrated).
	EstScale map[Kind]float64
	// StorageTrueBytes and StorageEstScale, when positive, add a storage:peak
	// byte sample per run with the same injected-error convention.
	StorageTrueBytes int64
	StorageEstScale  float64
	// NoisePct is the amplitude of deterministic multiplicative jitter on the
	// measured side (0.2 = ±20%), so fits see realistic scatter.
	NoisePct float64
	// Runs is the total synthetic run count; RunsPerRefit is the fitter
	// cadence (a refit fires after every RunsPerRefit-th run).
	Runs, RunsPerRefit int
}

// ScenarioResult is one scenario's convergence record.
type ScenarioResult struct {
	Name string
	// Runs and Refits count what happened; ProfileChanges counts refits that
	// actually moved a factor.
	Runs, Refits, ProfileChanges int
	// ConvergedAfterRuns is the first run index (1-based) from which every
	// evidenced kind's drift ratio stays inside [0.5, 2.0] through the end;
	// 0 means the scenario never converged.
	ConvergedAfterRuns int
	// MaxAbsLogDrift tracks convergence quality: the worst |ln(drift)| over
	// evidenced kinds at the final run.
	MaxAbsLogDrift float64
	// FinalDrift and FinalScale record, per kind with evidence, the closing
	// drift ratio and the active profile factor.
	FinalDrift, FinalScale map[Kind]float64
	// Profile is the profile active when the scenario ended (nil if no refit
	// ever changed it).
	Profile *Profile
}

// ConvergenceBand is the acceptance band on the drift ratio: converged means
// measurements run within 2× of (corrected) estimates in either direction,
// the same [0.5, 2.0] window the CI calibration smoke asserts.
const ConvergenceBand = 2.0

// ConvergenceScenarios returns the graded suite, mildest first.
func ConvergenceScenarios() []Scenario {
	base := []StageShare{
		{Stage: "ingest", Share: 0.2},
		{Stage: "join", Share: 0.1},
		{Stage: "infer:fc6", Share: 0.5},
		{Stage: "train:fc6", Share: 0.2},
	}
	inferHeavy := []StageShare{
		{Stage: "ingest", Share: 0.1},
		{Stage: "join", Share: 0.05},
		{Stage: "infer:conv5", Share: 0.45},
		{Stage: "infer:fc6", Share: 0.3},
		{Stage: "train:fc6", Share: 0.1},
	}
	// The complex grade starves train of evidence: a shape that omits it
	// rotates in, so its windowed sample count crawls and the factor must
	// wait at the MinSamples floor instead of fitting noise.
	noTrain := []StageShare{
		{Stage: "ingest", Share: 0.3},
		{Stage: "join", Share: 0.2},
		{Stage: "infer:fc6", Share: 0.5},
	}
	return []Scenario{
		{
			Name:   "easy",
			Shapes: [][]StageShare{base},
			EstScale: map[Kind]float64{
				KindInfer: 25, // the CI smoke's -calib-infer-scale
			},
			Runs: 24, RunsPerRefit: 4,
		},
		{
			Name:   "medium",
			Shapes: [][]StageShare{base},
			EstScale: map[Kind]float64{
				KindInfer: 5,
				KindJoin:  0.3, // opposing error: join under-estimated
			},
			NoisePct: 0.10,
			Runs:     32, RunsPerRefit: 4,
		},
		{
			Name:   "complex",
			Shapes: [][]StageShare{base, inferHeavy, noTrain},
			EstScale: map[Kind]float64{
				KindInfer: 8,
				KindJoin:  0.25,
			},
			StorageTrueBytes: 64 << 20,
			StorageEstScale:  3,
			NoisePct:         0.20,
			Runs:             48, RunsPerRefit: 4,
		},
	}
}

// Run executes the scenario against a fresh in-memory recorder and fitter on
// a fake clock (runs a second apart, five-second half-life, so the whole
// suite is deterministic and sleep-free).
func (s Scenario) Run() ScenarioResult {
	fc := clock.NewFake()
	rec, _ := Open(Config{HalfLife: 5 * time.Second, Clock: fc}) // no path: cannot fail
	fitter := NewFitter(FitterConfig{Recorder: rec, Clock: fc})
	rng := newJitter(s.Name)

	res := ScenarioResult{
		Name:       s.Name,
		FinalDrift: make(map[Kind]float64),
		FinalScale: make(map[Kind]float64),
	}
	inBand := make([]bool, s.Runs)
	for run := 0; run < s.Runs; run++ {
		shape := s.Shapes[run%len(s.Shapes)]
		comps := make([]sim.StageComparison, 0, len(shape))
		for _, st := range shape {
			k, _ := KindOf(st.Stage)
			scale := s.EstScale[k]
			if scale <= 0 {
				scale = 1
			}
			truth := st.Share * rng.factor(s.NoisePct)
			comps = append(comps, sim.StageComparison{
				Stage:     st.Stage,
				Estimated: time.Duration(st.Share * scale * float64(time.Second)),
				Measured:  time.Duration(truth * float64(time.Second)),
			})
		}
		active := fitter.Active()
		active.ApplyComparisons(comps)
		var series *sim.SeriesReport
		if s.StorageTrueBytes > 0 && s.StorageEstScale > 0 {
			rep := sim.SeriesReport{
				PredPeakStorageBytes: int64(float64(s.StorageTrueBytes) * s.StorageEstScale),
				MeasPeakStorageBytes: int64(float64(s.StorageTrueBytes) * rng.factor(s.NoisePct)),
			}
			active.ApplySeries(&rep)
			series = &rep
		}
		_ = rec.Record(fmt.Sprintf("scenario|%s|%d", s.Name, run), SamplesFromRun(comps, series))
		res.Runs++
		fc.Advance(time.Second)
		if (run+1)%s.RunsPerRefit == 0 {
			changed, _ := fitter.RefitNow()
			res.Refits++
			if changed {
				res.ProfileChanges++
			}
		}
		inBand[run] = reportInBand(rec.Report())
	}

	rep := rec.Report()
	res.Profile = fitter.Active()
	for _, st := range rep.Stages {
		if st.Samples == 0 {
			continue
		}
		k := Kind(st.Kind)
		res.FinalDrift[k] = st.DriftRatio
		res.FinalScale[k] = res.Profile.ScaleFor(k)
		if d := absLog(st.DriftRatio); d > res.MaxAbsLogDrift {
			res.MaxAbsLogDrift = d
		}
	}
	for run := s.Runs - 1; run >= 0 && inBand[run]; run-- {
		res.ConvergedAfterRuns = run + 1
	}
	return res
}

// reportInBand reports whether every evidenced kind's drift ratio sits inside
// the convergence band.
func reportInBand(rep Report) bool {
	for _, st := range rep.Stages {
		if st.Samples == 0 {
			continue
		}
		if st.DriftRatio > ConvergenceBand || st.DriftRatio < 1/ConvergenceBand {
			return false
		}
	}
	return true
}

// absLog is |ln(v)| (0 for non-positive v, which only a sample-free kind
// reports).
func absLog(v float64) float64 {
	if v <= 0 {
		return 0
	}
	l := math.Log(v)
	if l < 0 {
		return -l
	}
	return l
}

// jitter is a deterministic xorshift-based multiplicative noise source, so
// scenario results are reproducible without seeding global randomness.
type jitter struct{ state uint64 }

func newJitter(seed string) *jitter {
	j := &jitter{state: 0x9e3779b97f4a7c15}
	for _, c := range seed {
		j.state = (j.state ^ uint64(c)) * 0x100000001b3
	}
	if j.state == 0 {
		j.state = 1
	}
	return j
}

// factor returns a multiplicative factor uniform in [1-amp, 1+amp].
func (j *jitter) factor(amp float64) float64 {
	if amp <= 0 {
		return 1
	}
	j.state ^= j.state << 13
	j.state ^= j.state >> 7
	j.state ^= j.state << 17
	u := float64(j.state>>11) / float64(1<<53)
	return 1 - amp + 2*amp*u
}
