package calib

import (
	"math"
	"testing"

	"repro/internal/memory"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sim"
)

// TestConvergenceScenarios is the graded convergence proof the ISSUE's
// acceptance criteria name: under injected mis-calibration the closed loop
// must bring every evidenced kind's drift ratio into [0.5, 2.0] within the
// scripted run budget and hold it there.
func TestConvergenceScenarios(t *testing.T) {
	for _, s := range ConvergenceScenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			res := s.Run()
			if res.ConvergedAfterRuns == 0 {
				t.Fatalf("never converged: final drift %v", res.FinalDrift)
			}
			if res.ConvergedAfterRuns > s.Runs/2 {
				t.Errorf("converged only after run %d of %d; want within the first half",
					res.ConvergedAfterRuns, s.Runs)
			}
			if res.MaxAbsLogDrift > math.Log(1.5) {
				t.Errorf("final worst drift e^%.3f exceeds 1.5x", res.MaxAbsLogDrift)
			}
			if res.Profile == nil {
				t.Fatal("no profile fitted")
			}
			for k, d := range res.FinalDrift {
				if d > ConvergenceBand || d < 1/ConvergenceBand {
					t.Errorf("%s final drift %v outside [0.5, 2.0]", k, d)
				}
			}
		})
	}
}

// TestEasyScenarioSingleShotFit pins the exact fixed-point arithmetic of the
// noiseless single-kind case: one refit suffices, because correcting the
// share vector by the first fit's residuals reproduces the measured shares
// exactly (share normalization makes the 25× infer error reappear as a
// deflation of every other kind, and the fit corrects all of them at once).
func TestEasyScenarioSingleShotFit(t *testing.T) {
	res := ConvergenceScenarios()[0].Run()
	if res.ProfileChanges != 1 {
		t.Errorf("profile changes = %d, want exactly 1 (noiseless fixed point)", res.ProfileChanges)
	}
	// True shares 0.2/0.1/0.5/0.2 with infer estimated 25×: the est share
	// denominator is 13.0, so infer's residual is 0.5/(12.5/13) ≈ 0.52 and
	// every other kind's is 13.
	if got := res.FinalScale[KindInfer]; math.Abs(got-0.52) > 0.001 {
		t.Errorf("infer factor = %v, want 0.52", got)
	}
	if got := res.FinalScale[KindIngest]; math.Abs(got-13) > 0.01 {
		t.Errorf("ingest factor = %v, want 13", got)
	}
}

// TestGradedScenarioDirections checks the fitted factors point the right way
// per grade: over-estimated kinds correct below 1, under-estimated kinds
// above 1, and storage (absolute bytes, no share coupling) lands near the
// inverse of its injected 3× error.
func TestGradedScenarioDirections(t *testing.T) {
	suite := ConvergenceScenarios()
	medium, complex := suite[1].Run(), suite[2].Run()
	if medium.FinalScale[KindInfer] >= 1 {
		t.Errorf("medium infer factor %v, want < 1 (estimates ran hot)", medium.FinalScale[KindInfer])
	}
	if medium.FinalScale[KindJoin] <= 1 {
		t.Errorf("medium join factor %v, want > 1 (join under-estimated)", medium.FinalScale[KindJoin])
	}
	st := complex.FinalScale[KindStorage]
	if st < 0.25 || st > 0.5 {
		t.Errorf("complex storage factor %v, want near 1/3", st)
	}
	if complex.FinalDrift[KindStorage] > ConvergenceBand || complex.FinalDrift[KindStorage] < 1/ConvergenceBand {
		t.Errorf("complex storage drift %v outside band", complex.FinalDrift[KindStorage])
	}
}

// TestScenarioProfileFlipsAdmission closes the loop end to end: the profile
// the easy scenario fits re-prices a real paper-cluster workload, and a
// budget between the two prices provably flips the admission verdict.
func TestScenarioProfileFlipsAdmission(t *testing.T) {
	res := ConvergenceScenarios()[0].Run()
	if res.Profile == nil {
		t.Fatal("no fitted profile")
	}
	wl, err := sim.NewWorkload(sim.WorkloadSpec{
		ModelName: "resnet50", NumLayers: 5, Dataset: sim.FoodsSpec(),
		PlanKind: plan.Staged, Placement: plan.AfterJoin,
		Nodes: 8, CPUSys: 8, MemSys: memory.GB(32),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, plain, err := sim.AdmissionCost(wl.Inputs, optimizer.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	params := optimizer.DefaultParams()
	params.Scales = res.Profile.CostScales()
	_, fitted, err := sim.AdmissionCost(wl.Inputs, params)
	if err != nil {
		t.Fatal(err)
	}
	if fitted == plain {
		t.Fatalf("fitted profile left the price unchanged at %d", plain)
	}
	// The verdict flip: one budget, two pricings, two answers.
	budget := (plain + fitted) / 2
	lo, hi := plain, fitted
	if lo > hi {
		lo, hi = hi, lo
	}
	if !(lo <= budget && budget < hi) {
		t.Fatalf("budget %d does not separate %d and %d", budget, plain, fitted)
	}
	admitPlain := plain <= budget
	admitFitted := fitted <= budget
	if admitPlain == admitFitted {
		t.Errorf("verdict did not flip: plain %d fitted %d budget %d", plain, fitted, budget)
	}
}
