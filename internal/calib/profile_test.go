package calib

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/memory"
	"repro/internal/sim"
)

// stage builds a minimal report row for Refit tests: only Kind, Samples and
// SuggestedScale participate in the fit.
func stage(k Kind, samples int64, suggested float64) StageAggregate {
	return StageAggregate{Kind: string(k), Samples: samples, SuggestedScale: suggested}
}

func reportOf(stages ...StageAggregate) Report { return Report{Stages: stages} }

func TestProfileNilSafety(t *testing.T) {
	var p *Profile
	if got := p.ScaleFor(KindInfer); got != 1 {
		t.Errorf("nil ScaleFor = %v, want 1", got)
	}
	if !p.CostScales().IsIdentity() {
		t.Error("nil CostScales not identity")
	}
	comps := []sim.StageComparison{{Stage: "infer:fc6", Estimated: time.Second}}
	p.ApplyComparisons(comps) // must not panic
	if comps[0].Estimated != time.Second {
		t.Error("nil ApplyComparisons mutated estimates")
	}
	p.ApplySeries(nil) // must not panic
	if p.refits() != 0 {
		t.Error("nil refits != 0")
	}
}

func TestProfileScaleForAndCostScales(t *testing.T) {
	p := &Profile{Version: 1, Scales: []ProfileScale{
		{Kind: "infer", Scale: 0.04},
		{Kind: "storage", Scale: 2.5},
		{Kind: "train", Scale: 0}, // unset factor = identity
	}}
	if got := p.ScaleFor(KindInfer); got != 0.04 {
		t.Errorf("infer = %v, want 0.04", got)
	}
	if got := p.ScaleFor(KindTrain); got != 1 {
		t.Errorf("unset train = %v, want 1", got)
	}
	if got := p.ScaleFor(KindIngest); got != 1 {
		t.Errorf("absent ingest = %v, want 1", got)
	}
	sc := p.CostScales()
	if sc.Infer != 0.04 || sc.Storage != 2.5 || sc.Ingest != 1 || sc.Join != 1 || sc.Train != 1 {
		t.Errorf("CostScales = %+v", sc)
	}
	if sc.IsIdentity() {
		t.Error("non-trivial profile renders identity scales")
	}
}

func TestProfileApplyComparisons(t *testing.T) {
	p := &Profile{Version: 1, Scales: []ProfileScale{{Kind: "infer", Scale: 0.5}}}
	comps := []sim.StageComparison{
		{Stage: "infer:fc6", Estimated: 10 * time.Second},
		{Stage: "shared:fc7", Estimated: 4 * time.Second}, // attach labels are infer-kind too
		{Stage: "ingest", Estimated: 2 * time.Second},     // factor 1: untouched
		{Stage: "mystery", Estimated: 3 * time.Second},    // unmodeled: untouched
	}
	p.ApplyComparisons(comps)
	if comps[0].Estimated != 5*time.Second {
		t.Errorf("infer estimate = %v, want 5s", comps[0].Estimated)
	}
	if comps[1].Estimated != 2*time.Second {
		t.Errorf("shared estimate = %v, want 2s", comps[1].Estimated)
	}
	if comps[2].Estimated != 2*time.Second || comps[3].Estimated != 3*time.Second {
		t.Errorf("untouched stages moved: %v, %v", comps[2].Estimated, comps[3].Estimated)
	}
}

func TestProfileApplySeries(t *testing.T) {
	p := &Profile{Version: 1, Scales: []ProfileScale{{Kind: "storage", Scale: 2}}}
	rep := sim.SeriesReport{
		PredPeakStorageBytes: memory.MB(100),
		PredSpillBytes:       memory.MB(10),
		MeasPeakStorageBytes: memory.MB(150),
		Stages: []sim.StageSeries{
			{Stage: "infer:fc6", PredStorageBytes: memory.MB(40), PredSpillBytes: memory.MB(4)},
		},
	}
	p.ApplySeries(&rep)
	if rep.PredPeakStorageBytes != memory.MB(200) || rep.PredSpillBytes != memory.MB(20) {
		t.Errorf("peak/spill = %d/%d, want doubled", rep.PredPeakStorageBytes, rep.PredSpillBytes)
	}
	if rep.MeasPeakStorageBytes != memory.MB(150) {
		t.Error("measured side must never be corrected")
	}
	if rep.Stages[0].PredStorageBytes != memory.MB(80) || rep.Stages[0].PredSpillBytes != memory.MB(8) {
		t.Errorf("per-stage preds = %d/%d, want doubled", rep.Stages[0].PredStorageBytes, rep.Stages[0].PredSpillBytes)
	}
}

func TestRefitFitsAndComposes(t *testing.T) {
	now := time.Unix(20000, 0)
	opts := DefaultFitOptions()

	// First fit from identity: infer's residual 0.04 becomes the factor.
	p1, changed := Refit(nil, reportOf(stage(KindInfer, 5, 0.04)), now, opts)
	if !changed || p1 == nil {
		t.Fatal("first fit reported unchanged")
	}
	if got := p1.ScaleFor(KindInfer); got != 0.04 {
		t.Errorf("fitted infer = %v, want 0.04", got)
	}
	if p1.Refits != 1 || !p1.FittedAt.Equal(now) || p1.Version != 1 {
		t.Errorf("profile metadata = %+v", p1)
	}
	// Untouched kinds carry factor 1 explicitly.
	if got := p1.ScaleFor(KindJoin); got != 1 {
		t.Errorf("unfitted join = %v, want 1", got)
	}

	// Second fit composes multiplicatively: residual 1.5 on a 0.04 factor.
	p2, changed := Refit(p1, reportOf(stage(KindInfer, 9, 1.5)), now.Add(time.Minute), opts)
	if !changed {
		t.Fatal("residual 1.5 inside hysteresis?")
	}
	if got := p2.ScaleFor(KindInfer); got != round6(0.04*1.5) {
		t.Errorf("composed infer = %v, want %v", got, round6(0.04*1.5))
	}
	if p2.Refits != 2 {
		t.Errorf("refits = %d, want 2", p2.Refits)
	}
}

func TestRefitMinSamplesFloor(t *testing.T) {
	// Two samples sit below the 3-sample floor: the kind keeps its prior
	// factor no matter how loud the residual is.
	prev := &Profile{Version: 1, Refits: 1, Scales: []ProfileScale{{Kind: "infer", Scale: 2}}}
	next, changed := Refit(prev, reportOf(stage(KindInfer, 2, 25)), time.Unix(1, 0), DefaultFitOptions())
	if changed {
		t.Fatal("under-evidenced refit changed the profile")
	}
	if next != prev {
		t.Error("unchanged refit must return prev itself")
	}
	// At the floor the evidence counts.
	next, changed = Refit(prev, reportOf(stage(KindInfer, 3, 25)), time.Unix(1, 0), DefaultFitOptions())
	if !changed || next.ScaleFor(KindInfer) != 50 {
		t.Errorf("at-floor refit: changed=%v scale=%v, want clamp 50", changed, next.ScaleFor(KindInfer))
	}
}

func TestRefitClampSaturation(t *testing.T) {
	opts := DefaultFitOptions()
	// A runaway residual saturates at MaxScale instead of tracking it.
	up, changed := Refit(nil, reportOf(stage(KindStorage, 10, 1e6)), time.Unix(1, 0), opts)
	if !changed || up.ScaleFor(KindStorage) != opts.MaxScale {
		t.Errorf("runaway fit = %v, want clamp %v", up.ScaleFor(KindStorage), opts.MaxScale)
	}
	// And a collapsing one at MinScale.
	down, changed := Refit(nil, reportOf(stage(KindStorage, 10, 1e-9)), time.Unix(1, 0), opts)
	if !changed || down.ScaleFor(KindStorage) != opts.MinScale {
		t.Errorf("collapsing fit = %v, want clamp %v", down.ScaleFor(KindStorage), opts.MinScale)
	}
	// Saturated factors stay saturated under further pressure — and report
	// unchanged, so the profile file is not rewritten every interval.
	again, changed := Refit(up, reportOf(stage(KindStorage, 20, 1e6)), time.Unix(2, 0), opts)
	if changed || again != up {
		t.Error("saturated refit should be a no-op")
	}
}

func TestRefitHysteresisDeadBand(t *testing.T) {
	opts := DefaultFitOptions() // 0.10 on |ln(suggested)|
	prev := &Profile{Version: 1, Refits: 3, Scales: []ProfileScale{{Kind: "ingest", Scale: 1.4}}}

	// Alternating small over- and under-estimates inside the band: the factor
	// must not see-saw — every refit is a no-op returning prev.
	for i, s := range []float64{1.05, 0.95, 1.09, 0.92, 1.0} {
		next, changed := Refit(prev, reportOf(stage(KindIngest, 50, s)), time.Unix(int64(i), 0), opts)
		if changed || next != prev {
			t.Fatalf("residual %v inside the dead band changed the profile", s)
		}
	}
	// Just outside the band the factor moves: ln(1.12) ≈ 0.113 > 0.10.
	next, changed := Refit(prev, reportOf(stage(KindIngest, 50, 1.12)), time.Unix(9, 0), opts)
	if !changed || next.ScaleFor(KindIngest) != round6(1.4*1.12) {
		t.Errorf("outside-band refit: changed=%v scale=%v, want %v", changed, next.ScaleFor(KindIngest), round6(1.4*1.12))
	}
	if math.Abs(math.Log(0.95)) > opts.Hysteresis || math.Abs(math.Log(1.12)) < opts.Hysteresis {
		t.Error("test factors straddle the wrong side of the band")
	}
}

func TestSaveLoadProfileRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profile.json")
	p, _ := Refit(nil, reportOf(stage(KindInfer, 5, 0.04), stage(KindStorage, 8, 3)), time.Unix(30000, 0).UTC(), DefaultFitOptions())
	if err := SaveProfile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != p.Version || got.Refits != p.Refits || !got.FittedAt.Equal(p.FittedAt) {
		t.Errorf("roundtrip metadata: got %+v, want %+v", got, p)
	}
	for _, k := range Kinds {
		if got.ScaleFor(k) != p.ScaleFor(k) {
			t.Errorf("%s roundtrip = %v, want %v", k, got.ScaleFor(k), p.ScaleFor(k))
		}
	}
}

func TestLoadProfileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		path := filepath.Join(dir, name)
		if err := writeFileAtomic("", path, []byte(body)); err != nil {
			t.Fatal(err)
		}
		return path
	}
	if _, err := LoadProfile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := LoadProfile(write("bad.json", "{")); err == nil {
		t.Error("torn JSON accepted")
	}
	if _, err := LoadProfile(write("v9.json", `{"version":9}`)); err == nil {
		t.Error("future version accepted")
	}
	if _, err := LoadProfile(write("neg.json", `{"version":1,"scales":[{"kind":"infer","scale":-2}]}`)); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestSaveProfileFailpoint(t *testing.T) {
	defer faultinject.DisarmAll()
	faultinject.Arm(FaultProfileSave+".write", faultinject.FailAlways())
	path := filepath.Join(t.TempDir(), "profile.json")
	p, _ := Refit(nil, reportOf(stage(KindInfer, 5, 0.04)), time.Unix(1, 0), DefaultFitOptions())
	if err := SaveProfile(path, p); err == nil {
		t.Fatal("injected write failure not surfaced")
	}
	// The atomic discipline means a failed save leaves no file behind.
	if _, err := LoadProfile(path); err == nil {
		t.Error("failed save left a readable profile")
	}
	faultinject.DisarmAll()
	if err := SaveProfile(path, p); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfile(path); err != nil {
		t.Errorf("post-failure save unreadable: %v", err)
	}
}

func TestReportWithProfile(t *testing.T) {
	rep := NewAggregator(0).Report()
	if got := rep.WithProfile(nil); got.Profile != nil {
		t.Error("nil profile embedded")
	}
	p := &Profile{Version: 1, Scales: []ProfileScale{{Kind: "infer", Scale: 0.04}}}
	ann := rep.WithProfile(p)
	if ann.Profile != p {
		t.Error("profile not embedded")
	}
	for _, st := range ann.Stages {
		want := 1.0
		if st.Kind == "infer" {
			want = 0.04
		}
		if st.ActiveScale != want {
			t.Errorf("%s active scale = %v, want %v", st.Kind, st.ActiveScale, want)
		}
	}
	// The annotation copies: the snapshot it came from keeps ActiveScale 1.
	for _, st := range rep.Stages {
		if st.ActiveScale != 1 {
			t.Errorf("WithProfile mutated the source report (%s = %v)", st.Kind, st.ActiveScale)
		}
	}
}
