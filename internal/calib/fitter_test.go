package calib

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// recordInfer feeds rec one run whose infer estimate overshoots the
// measurement by 1/ratio (ratio = meas/est).
func recordInfer(t *testing.T, rec *Recorder, est, meas float64) {
	t.Helper()
	if err := rec.Record("fp", []Sample{
		{Stage: "infer:fc6", Kind: KindInfer, Est: est, Meas: meas},
	}); err != nil {
		t.Fatal(err)
	}
}

func newTestFitter(t *testing.T, fc *clock.Fake, path string) (*Fitter, *Recorder) {
	t.Helper()
	rec, err := Open(Config{HalfLife: time.Hour, Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	return NewFitter(FitterConfig{Recorder: rec, Path: path, Interval: 10 * time.Second, Clock: fc}), rec
}

func TestFitterRefitNowFitsAndPersists(t *testing.T) {
	fc := clock.NewFake()
	path := filepath.Join(t.TempDir(), "profile.json")
	f, rec := newTestFitter(t, fc, path)
	if f.Active() != nil {
		t.Fatal("fresh fitter has an active profile")
	}

	// Below the 3-sample floor nothing happens — and nothing hits the disk.
	recordInfer(t, rec, 25, 1)
	recordInfer(t, rec, 25, 1)
	if changed, err := f.RefitNow(); changed || err != nil {
		t.Fatalf("under-evidenced refit: changed=%v err=%v", changed, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("no-op refit touched the profile file")
	}

	// The third sample clears the floor: the 25x over-estimate fits 0.04.
	recordInfer(t, rec, 25, 1)
	changed, err := f.RefitNow()
	if !changed || err != nil {
		t.Fatalf("refit: changed=%v err=%v", changed, err)
	}
	p := f.Active()
	if p == nil || p.ScaleFor(KindInfer) != 0.04 {
		t.Fatalf("active infer factor = %v, want 0.04", p.ScaleFor(KindInfer))
	}
	if f.Refits() != 1 {
		t.Errorf("refits = %d, want 1", f.Refits())
	}
	onDisk, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.ScaleFor(KindInfer) != 0.04 || onDisk.Refits != 1 {
		t.Errorf("persisted profile = %+v", onDisk)
	}
}

// TestFitterWindowPreventsCompounding is the regression test for the loop's
// central hazard: after a refit, the aggregates still hold the samples that
// justified it, recorded in the old correction basis. A refit that re-read
// them would multiply the same residual in again and spiral the factor into
// the clamp. Windowed evidence makes the very next tick a no-op.
func TestFitterWindowPreventsCompounding(t *testing.T) {
	fc := clock.NewFake()
	path := filepath.Join(t.TempDir(), "profile.json")
	f, rec := newTestFitter(t, fc, path)
	for i := 0; i < 5; i++ {
		recordInfer(t, rec, 25, 1)
	}
	if changed, _ := f.RefitNow(); !changed {
		t.Fatal("first refit did not fire")
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// No new evidence: repeated ticks must keep both the factor and the file
	// byte-identical.
	for i := 0; i < 3; i++ {
		fc.Advance(10 * time.Second)
		if changed, err := f.RefitNow(); changed || err != nil {
			t.Fatalf("tick %d without evidence: changed=%v err=%v", i, changed, err)
		}
	}
	if got := f.Active().ScaleFor(KindInfer); got != 0.04 {
		t.Fatalf("factor compounded to %v, want stable 0.04", got)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("no-op refits rewrote the profile file")
	}

	// Post-refit runs record residual ≈ 1 (the profile corrected the
	// estimates before they were logged): still a no-op, the fixed point.
	for i := 0; i < 5; i++ {
		recordInfer(t, rec, 1, 1)
	}
	if changed, _ := f.RefitNow(); changed {
		t.Error("residual-1 evidence moved the profile")
	}

	// A genuine new drift on fresh evidence still refits, composing onto the
	// existing factor: residual 2 on 0.04 → 0.08.
	for i := 0; i < 5; i++ {
		recordInfer(t, rec, 1, 2)
	}
	if changed, _ := f.RefitNow(); !changed {
		t.Fatal("fresh drift ignored")
	}
	got := f.Active().ScaleFor(KindInfer)
	// The residual-1 samples above share the window, so the fit lands between
	// 1 and 2; assert it moved up and stayed under the naive compound.
	if got <= 0.04 || got > 0.08 {
		t.Errorf("recomposed factor = %v, want in (0.04, 0.08]", got)
	}
	if f.Refits() != 2 {
		t.Errorf("refits = %d, want 2", f.Refits())
	}
}

// TestFitterBootSnapshotIgnoresReplayedLog pins NewFitter's baseline: history
// replayed from disk was recorded under past processes' profiles, so a fresh
// fitter must not fit it.
func TestFitterBootSnapshotIgnoresReplayedLog(t *testing.T) {
	fc := clock.NewFake()
	logPath := filepath.Join(t.TempDir(), "calib.log")
	rec, err := Open(Config{Path: logPath, HalfLife: time.Hour, Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		recordInfer(t, rec, 25, 1)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	rec2, err := Open(Config{Path: logPath, HalfLife: time.Hour, Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	f := NewFitter(FitterConfig{Recorder: rec2, Clock: fc})
	if changed, _ := f.RefitNow(); changed {
		t.Fatal("replayed history alone triggered a refit")
	}
	// Live evidence on top of the replay does refit — and the replayed
	// samples share the same basis here (no profile was ever active), so the
	// fit may legitimately use only the new window.
	for i := 0; i < 3; i++ {
		recordInfer(t, rec2, 25, 1)
	}
	if changed, _ := f.RefitNow(); !changed {
		t.Fatal("live evidence ignored after replay")
	}
	if got := f.Active().ScaleFor(KindInfer); got != 0.04 {
		t.Errorf("fitted factor = %v, want 0.04", got)
	}
}

func TestFitterSwapSticksWhenPersistFails(t *testing.T) {
	defer faultinject.DisarmAll()
	fc := clock.NewFake()
	path := filepath.Join(t.TempDir(), "profile.json")
	f, rec := newTestFitter(t, fc, path)
	for i := 0; i < 3; i++ {
		recordInfer(t, rec, 25, 1)
	}
	faultinject.Arm(FaultProfileSave+".write", faultinject.FailAlways())
	changed, err := f.RefitNow()
	if !changed {
		t.Fatal("refit did not fire")
	}
	if err == nil {
		t.Fatal("injected persist failure not surfaced")
	}
	// Pricing still sees the new factors: a lost disk write must not pin the
	// process to stale constants.
	if got := f.Active().ScaleFor(KindInfer); got != 0.04 {
		t.Errorf("active factor after failed persist = %v, want 0.04", got)
	}
}

func TestFitterTickerLoopOnFakeClock(t *testing.T) {
	fc := clock.NewFake()
	path := filepath.Join(t.TempDir(), "profile.json")
	f, rec := newTestFitter(t, fc, path)
	for i := 0; i < 4; i++ {
		recordInfer(t, rec, 25, 1)
	}
	f.Start()
	defer f.Stop()
	fc.BlockUntil(1) // loop's ticker is registered

	// Nothing fires before the interval elapses.
	fc.Advance(9 * time.Second)
	if f.Refits() != 0 {
		t.Fatal("refit fired before the interval")
	}
	fc.Advance(time.Second)
	for i := 0; f.Refits() < 1; i++ {
		if i > 1e7 {
			t.Fatal("tick never produced a refit")
		}
		runtime.Gosched()
	}
	if got := f.Active().ScaleFor(KindInfer); got != 0.04 {
		t.Errorf("loop-fitted factor = %v, want 0.04", got)
	}
	// Later ticks with no evidence stay no-ops (windowing), so the count is
	// exact, not monotonically drifting.
	fc.Advance(30 * time.Second)
	if f.Refits() != 1 {
		t.Errorf("refits after idle ticks = %d, want 1", f.Refits())
	}
	f.Stop()
	// Stop is idempotent and nil-safe.
	f.Stop()
	var nilFitter *Fitter
	nilFitter.Stop()
	if nilFitter.Active() != nil {
		t.Error("nil fitter has an active profile")
	}
}

func TestFitterMetrics(t *testing.T) {
	fc := clock.NewFake()
	f, rec := newTestFitter(t, fc, "")
	reg := obs.NewRegistry()
	f.RegisterMetrics(reg)
	for i := 0; i < 3; i++ {
		recordInfer(t, rec, 25, 1)
	}
	if _, err := f.RefitNow(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`vista_calib_profile_scale{stage="infer"} 0.04`,
		`vista_calib_profile_scale{stage="join"} 1`,
		`vista_calib_profile_refits_total 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("scrape missing %q:\n%s", want, buf.String())
		}
	}
}
