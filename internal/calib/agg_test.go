package calib

import (
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/sim"
)

func TestKindOf(t *testing.T) {
	cases := []struct {
		stage string
		kind  Kind
		ok    bool
	}{
		{"ingest", KindIngest, true},
		{"join", KindJoin, true},
		{"infer:fc6", KindInfer, true},
		{"premat:conv5", KindInfer, true},
		{"cache:fc7", KindInfer, true},
		{"shared:fc7", KindInfer, true},
		{"train:fc6", KindTrain, true},
		{"storage:peak", KindStorage, true},
		{"frobnicate:x", "", false},
		{"", "", false},
	}
	for _, c := range cases {
		k, ok := KindOf(c.stage)
		if k != c.kind || ok != c.ok {
			t.Errorf("KindOf(%q) = (%q, %v), want (%q, %v)", c.stage, k, ok, c.kind, c.ok)
		}
	}
}

func TestSamplesFromRunShareNormalization(t *testing.T) {
	comps := []sim.StageComparison{
		{Stage: "ingest", Estimated: 40 * time.Second, Measured: 2 * time.Second},
		{Stage: "join", Estimated: 20 * time.Second, Measured: time.Second},
		{Stage: "cache:fc6", Measured: 500 * time.Millisecond, Cached: true},
		{Stage: "frobnicate:x", Measured: 100 * time.Millisecond, Unmodeled: true},
	}
	series := &sim.SeriesReport{PredPeakStorageBytes: 1 << 20, MeasPeakStorageBytes: 2 << 20}
	got := SamplesFromRun(comps, series)
	if len(got) != 5 {
		t.Fatalf("got %d samples, want 5 (4 stages + storage:peak)", len(got))
	}

	// Included time rows are shares over the included rows only (est total
	// 60s, meas total 3s): the absolute ~20x scale gap between simulator and
	// tiny-scale engine must cancel, leaving ratio 1 for a proportional run.
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }
	if s := got[0]; !approx(s.Est, 40.0/60) || !approx(s.Meas, 2.0/3) {
		t.Errorf("ingest shares = (%g, %g), want (2/3, 2/3)", s.Est, s.Meas)
	}
	if s := got[1]; !approx(s.Est, 20.0/60) || !approx(s.Meas, 1.0/3) {
		t.Errorf("join shares = (%g, %g), want (1/3, 1/3)", s.Est, s.Meas)
	}
	// Excluded rows keep raw seconds and their flags.
	if s := got[2]; !s.Cached || s.counts() || !approx(s.Meas, 0.5) {
		t.Errorf("cached sample = %+v, want raw 0.5s and excluded", s)
	}
	if s := got[3]; !s.Unmodeled || s.counts() {
		t.Errorf("unmodeled sample = %+v, want excluded", s)
	}
	// Storage stays in absolute bytes.
	if s := got[4]; s.Kind != KindStorage || s.Est != 1<<20 || s.Meas != 2<<20 {
		t.Errorf("storage sample = %+v, want absolute bytes", s)
	}
}

func TestAggregatorExclusions(t *testing.T) {
	a := NewAggregator(0)
	a.Add(Record{At: time.Unix(1000, 0), Samples: []Sample{
		{Stage: "infer:fc6", Kind: KindInfer, Est: 0.5, Meas: 0.5},
		{Stage: "cache:fc7", Kind: KindInfer, Meas: 0.1, Cached: true},
		{Stage: "shared:fc8", Kind: KindInfer, Meas: 0.1, Shared: true},
		{Stage: "infer:fc9", Kind: KindInfer, Est: 0, Meas: 0.1}, // no estimate
		{Stage: "frobnicate:x", Kind: "", Meas: 0.1, Unmodeled: true},
	}})
	rep := a.Report()
	var infer StageAggregate
	for _, st := range rep.Stages {
		if st.Kind == string(KindInfer) {
			infer = st
		}
	}
	if infer.Samples != 1 || infer.Excluded != 3 {
		t.Fatalf("infer samples/excluded = %d/%d, want 1/3 (unknown-kind row not counted anywhere)",
			infer.Samples, infer.Excluded)
	}
	if rep.Runs != 1 || rep.Samples != 1 {
		t.Fatalf("report runs/samples = %d/%d, want 1/1", rep.Runs, rep.Samples)
	}
}

func TestAggregatorEWMADecay(t *testing.T) {
	t0 := time.Unix(10000, 0)
	a := NewAggregator(time.Hour)
	one := func(at time.Time, meas float64) {
		a.Add(Record{At: at, Samples: []Sample{
			{Stage: "infer:fc6", Kind: KindInfer, Est: 1, Meas: meas},
		}})
	}

	one(t0, 4)
	if got := a.driftOf(KindInfer); math.Abs(got-4) > 1e-12 {
		t.Fatalf("after one ratio-4 sample, drift ratio = %g, want 4", got)
	}

	// One half-life later a ratio-1 sample arrives: the old sample's weight
	// decays to 0.5, so the mean log-ratio is (0.5·ln4 + 1·0)/1.5 = ln4/3
	// and the drift ratio is 4^(1/3).
	one(t0.Add(time.Hour), 1)
	want := math.Pow(4, 1.0/3)
	if got := a.driftOf(KindInfer); math.Abs(got-want) > 1e-9 {
		t.Fatalf("after decayed second sample, drift ratio = %g, want 4^(1/3) = %g", got, want)
	}
	rep := a.Report()
	if got := rep.Stages[2].DriftRatio; got != round6(want) {
		t.Fatalf("reported infer drift ratio = %v, want %v", got, round6(want))
	}
	// Drift is the symmetric magnitude: max(r, 1/r) − 1.
	if got := rep.Stages[2].Drift; got != round6(want-1) {
		t.Fatalf("reported infer drift = %v, want %v", got, round6(want-1))
	}
}

func TestAggregatorSameTimestampSamplesWeighEqually(t *testing.T) {
	a := NewAggregator(time.Hour)
	a.Add(Record{At: time.Unix(10000, 0), Samples: []Sample{
		{Stage: "infer:fc6", Kind: KindInfer, Est: 1, Meas: 4},
		{Stage: "infer:fc7", Kind: KindInfer, Est: 1, Meas: 1},
	}})
	// Equal weights: mean = (ln4 + ln1)/2 = ln2 → ratio 2. The classic
	// w·prev + (1−w)·x recurrence would instead discount the first sample.
	if got := a.driftOf(KindInfer); math.Abs(got-2) > 1e-12 {
		t.Fatalf("same-timestamp drift ratio = %g, want 2", got)
	}
}

func TestAggregatorUndershootSymmetric(t *testing.T) {
	a := NewAggregator(0)
	a.Add(Record{At: time.Unix(1000, 0), Samples: []Sample{
		{Stage: "train:fc6", Kind: KindTrain, Est: 1, Meas: 0.25},
	}})
	rep := a.Report()
	var train StageAggregate
	for _, st := range rep.Stages {
		if st.Kind == string(KindTrain) {
			train = st
		}
	}
	// Measured 4x UNDER estimate: ratio 0.25, but drift magnitude is the
	// same 3.0 an overshoot of 4x would produce.
	if train.DriftRatio != 0.25 || train.Drift != 3 {
		t.Fatalf("undershoot ratio/drift = %v/%v, want 0.25/3", train.DriftRatio, train.Drift)
	}
}

func TestAggregatorLeastSquaresScale(t *testing.T) {
	a := NewAggregator(0)
	a.Add(Record{At: time.Unix(1000, 0), Samples: []Sample{
		{Stage: "storage:peak", Kind: KindStorage, Est: 1 << 20, Meas: 2 << 20},
		{Stage: "storage:spill", Kind: KindStorage, Est: 2 << 20, Meas: 4 << 20},
	}})
	rep := a.Report()
	var storage StageAggregate
	for _, st := range rep.Stages {
		if st.Kind == string(KindStorage) {
			storage = st
		}
	}
	// Both samples say measurements run 2x the estimate; the least-squares
	// scale s = Σ(est·meas)/Σ(est²) recovers exactly 2.
	if storage.SuggestedScale != 2 {
		t.Fatalf("suggested scale = %v, want 2", storage.SuggestedScale)
	}
}

func TestReportEmptyIdentity(t *testing.T) {
	rep := NewAggregator(0).Report()
	if len(rep.Stages) != len(Kinds) {
		t.Fatalf("empty report has %d stages, want %d", len(rep.Stages), len(Kinds))
	}
	for i, st := range rep.Stages {
		if st.Kind != string(Kinds[i]) {
			t.Errorf("stage %d = %q, want %q (stable report order)", i, st.Kind, Kinds[i])
		}
		if st.DriftRatio != 1 || st.Drift != 0 || st.SuggestedScale != 1 {
			t.Errorf("empty %s reports drift %v/%v scale %v, want identity",
				st.Kind, st.DriftRatio, st.Drift, st.SuggestedScale)
		}
		if len(st.RelErrHist) != len(relErrBounds)+1 {
			t.Errorf("%s histogram has %d buckets, want %d", st.Kind,
				len(st.RelErrHist), len(relErrBounds)+1)
		}
	}
	if rep.HalfLifeSeconds != DefaultHalfLife.Seconds() {
		t.Errorf("half-life = %v, want default %v", rep.HalfLifeSeconds, DefaultHalfLife.Seconds())
	}
}

func TestRecorderFakeClockReplayMatchesLive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "calib.log")
	fc := clock.NewFake()
	rec, err := Open(Config{Path: path, Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	samples := func(meas float64) []Sample {
		return []Sample{
			{Stage: "infer:fc6", Kind: KindInfer, Est: 0.5, Meas: meas},
			{Stage: "ingest", Kind: KindIngest, Est: 0.5, Meas: 1 - meas},
		}
	}
	if err := rec.Record("m|d|100|1", samples(0.6)); err != nil {
		t.Fatal(err)
	}
	fc.Advance(10 * time.Minute)
	if err := rec.Record("m|d|100|2", samples(0.7)); err != nil {
		t.Fatal(err)
	}
	fc.Advance(DefaultHalfLife)
	if err := rec.Record("m|d|100|3", samples(0.4)); err != nil {
		t.Fatal(err)
	}
	live := rec.Report()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if live.Runs != 3 || live.Samples != 6 {
		t.Fatalf("live report runs/samples = %d/%d, want 3/6", live.Runs, live.Samples)
	}

	// Offline replay decays on the persisted record timestamps, so it must
	// reproduce the live aggregates exactly — the property that makes
	// `vista -calib report` trustworthy against a server's /calibration.
	replayed, dropped, err := ReplayReport(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("replay dropped %d bytes from a clean log", dropped)
	}
	if !reflect.DeepEqual(live, replayed) {
		t.Fatalf("replayed report differs from live:\nlive:     %+v\nreplayed: %+v", live, replayed)
	}

	// A restarted recorder resumes from the same log to the same state.
	rec2, err := Open(Config{Path: path, Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	if resumed := rec2.Report(); !reflect.DeepEqual(live, resumed) {
		t.Fatalf("resumed report differs from live:\nlive:    %+v\nresumed: %+v", live, resumed)
	}
}

func TestRenderReportTable(t *testing.T) {
	a := NewAggregator(0)
	a.Add(Record{At: time.Unix(1000, 0), Samples: []Sample{
		{Stage: "infer:fc6", Kind: KindInfer, Est: 0.5, Meas: 0.55},
	}})
	var b strings.Builder
	RenderReport(&b, a.Report())
	out := b.String()
	for _, want := range []string{"calibration: 1 runs, 1 samples", "stage", "drift-ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if want := 2 + len(Kinds); len(lines) != want {
		t.Fatalf("rendered report has %d lines, want %d (header + columns + one per kind)",
			len(lines), want)
	}
}
