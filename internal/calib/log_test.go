package calib

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func TestMain(m *testing.M) {
	code := m.Run()
	// CI contract: a test that arms a failpoint must disarm it; anything
	// left armed would silently poison unrelated tests.
	if sites := faultinject.ArmedSites(); len(sites) > 0 {
		fmt.Fprintf(os.Stderr, "failpoint sites left armed at exit: %v\n", sites)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// testRecord builds a deterministic record with every sample shape the wire
// format must round-trip: flags, an unmodeled row, and storage bytes.
func testRecord(fp string, nano int64) Record {
	return Record{
		At:          time.Unix(0, nano),
		Fingerprint: fp,
		Samples: []Sample{
			{Stage: "ingest", Kind: KindIngest, Est: 0.25, Meas: 0.3},
			{Stage: "infer:fc6", Kind: KindInfer, Est: 0.5, Meas: 0.45},
			{Stage: "cache:fc7", Kind: KindInfer, Est: 0, Meas: 0.01, Cached: true},
			{Stage: "shared:fc8", Kind: KindInfer, Est: 0, Meas: 0.02, Shared: true},
			{Stage: "frobnicate:x", Kind: "", Est: 0, Meas: 0.1, Unmodeled: true},
			{Stage: "storage:peak", Kind: KindStorage, Est: 1 << 20, Meas: 1.5 * (1 << 20)},
		},
	}
}

func recordsEqual(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].At.Equal(want[i].At) {
			t.Errorf("record %d At = %v, want %v", i, got[i].At, want[i].At)
		}
		if got[i].Fingerprint != want[i].Fingerprint {
			t.Errorf("record %d fingerprint = %q, want %q", i, got[i].Fingerprint, want[i].Fingerprint)
		}
		if len(got[i].Samples) != len(want[i].Samples) {
			t.Fatalf("record %d has %d samples, want %d", i, len(got[i].Samples), len(want[i].Samples))
		}
		for j, w := range want[i].Samples {
			if got[i].Samples[j] != w {
				t.Errorf("record %d sample %d = %+v, want %+v", i, j, got[i].Samples[j], w)
			}
		}
	}
}

func TestLogRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "calib.log")
	want := []Record{testRecord("a|foods|100|7", 1000), testRecord("b|amazon|200|9", 2000)}

	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range want {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, dropped, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("clean log reports %d dropped bytes", dropped)
	}
	recordsEqual(t, got, want)

	// Reopening replays the same records and accepts further appends.
	l, err = OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, l.Records(), want)
	extra := testRecord("c|foods|50|1", 3000)
	if err := l.Append(extra); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, _, _ = ReadLog(path)
	recordsEqual(t, got, append(want, extra))
}

func TestLogTornTailTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "calib.log")
	rec := testRecord("a|foods|100|7", 1000)
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Simulate a crash mid-append: half a record's worth of garbage lands.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("VCL1garbage-that-is-not-a-record"))
	f.Close()

	if _, dropped, _ := ReadLog(path); dropped == 0 {
		t.Fatal("ReadLog did not notice the torn tail")
	}
	l, err = OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, l.Records(), []Record{rec})
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(encodeRecord(rec))); st.Size() != want {
		t.Fatalf("recovered log is %d bytes, want the clean prefix %d", st.Size(), want)
	}
	// And the recovered log keeps working.
	next := testRecord("b|foods|100|8", 2000)
	if err := l.Append(next); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, dropped, _ := ReadLog(path)
	if dropped != 0 {
		t.Fatalf("recovered log reports %d dropped bytes", dropped)
	}
	recordsEqual(t, got, []Record{rec, next})
}

func TestLogCorruptInteriorEndsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "calib.log")
	a, b := testRecord("a|foods|1|1", 1000), testRecord("b|foods|2|2", 2000)
	l, _ := OpenLog(path)
	l.Append(a)
	l.Append(b)
	l.Close()

	// Flip one payload byte of the FIRST record: its checksum fails, so the
	// readable prefix is empty — decode never resynchronizes past damage.
	data, _ := os.ReadFile(path)
	data[recordHeaderLen+3] ^= 0xff
	os.WriteFile(path, data, 0o644)

	recs, dropped, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || dropped != len(data) {
		t.Fatalf("got %d records, %d dropped bytes; want 0 records, all %d bytes dropped",
			len(recs), dropped, len(data))
	}
}

func TestLogAppendFaultLeavesRecoverableTail(t *testing.T) {
	defer faultinject.DisarmAll()
	path := filepath.Join(t.TempDir(), "calib.log")
	a := testRecord("a|foods|1|1", 1000)
	l, _ := OpenLog(path)
	if err := l.Append(a); err != nil {
		t.Fatal(err)
	}

	// A torn write the caller is told about: 10 bytes land, then the error.
	faultinject.Arm(FaultLogAppend, faultinject.FailAfterBytes(10))
	if err := l.Append(testRecord("b|foods|2|2", 2000)); err == nil {
		t.Fatal("append under a torn-write fault reported success")
	}
	faultinject.Disarm(FaultLogAppend)
	l.Close()

	// The torn tail disappears on reopen; record A survives.
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recordsEqual(t, l.Records(), []Record{a})
}

func TestLogSilentTearRecovered(t *testing.T) {
	defer faultinject.DisarmAll()
	path := filepath.Join(t.TempDir(), "calib.log")
	a := testRecord("a|foods|1|1", 1000)
	l, _ := OpenLog(path)
	if err := l.Append(a); err != nil {
		t.Fatal(err)
	}

	// A silent tear: the append reports success but only 10 bytes land —
	// the no-fsync crash window. The next open truncates it away.
	faultinject.Arm(FaultLogAppend, faultinject.SilentTruncate(10))
	if err := l.Append(testRecord("b|foods|2|2", 2000)); err != nil {
		t.Fatalf("silent tear surfaced an error: %v", err)
	}
	faultinject.Disarm(FaultLogAppend)
	l.Close()

	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, l.Records(), []Record{a})
	c := testRecord("c|foods|3|3", 3000)
	if err := l.Append(c); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, _, _ := ReadLog(path)
	recordsEqual(t, got, []Record{a, c})
}
