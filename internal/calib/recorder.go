package calib

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// Config assembles a Recorder. The zero value is valid: in-memory aggregates
// only, default half-life, wall clock.
type Config struct {
	// Path is the on-disk calibration log ("" = aggregates only, nothing
	// persisted).
	Path string
	// HalfLife is the drift EWMA half-life (0 = DefaultHalfLife).
	HalfLife time.Duration
	// Clock stamps records (nil = wall clock); tests inject a fake so decay
	// is deterministic.
	Clock clock.Clock
}

// Recorder owns one process's calibration state: the append-only log (when
// configured) plus the rolling aggregates. Opening a path with history
// replays it, so a restarted server resumes its aggregates instead of
// starting blind.
type Recorder struct {
	clk clock.Clock
	agg *Aggregator

	mu  sync.Mutex
	log *Log // nil = memory-only
}

// Open builds a Recorder from cfg, replaying any existing log at cfg.Path
// into the aggregates. With an empty Path it cannot fail.
func Open(cfg Config) (*Recorder, error) {
	r := &Recorder{clk: clock.Or(cfg.Clock), agg: NewAggregator(cfg.HalfLife)}
	if cfg.Path != "" {
		l, err := OpenLog(cfg.Path)
		if err != nil {
			return nil, err
		}
		r.log = l
		for _, rec := range l.Records() {
			r.agg.Add(rec)
		}
	}
	return r, nil
}

// Record stamps one run's samples with the recorder clock, folds them into
// the aggregates, and appends them to the log. The aggregates are updated
// even when the append fails — losing a disk write should not blind the
// live drift signal — and the append error is returned for the caller to
// surface.
func (r *Recorder) Record(fingerprint string, samples []Sample) error {
	rec := Record{At: r.clk.Now(), Fingerprint: fingerprint, Samples: samples}
	r.agg.Add(rec)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.log == nil {
		return nil
	}
	return r.log.Append(rec)
}

// Report snapshots the rolling aggregates.
func (r *Recorder) Report() Report { return r.agg.Report() }

// RegisterMetrics exposes the aggregates on reg (see Aggregator.RegisterMetrics).
func (r *Recorder) RegisterMetrics(reg *obs.Registry) { r.agg.RegisterMetrics(reg) }

// Close closes the log, if any.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.log == nil {
		return nil
	}
	err := r.log.Close()
	r.log = nil
	return err
}

// ReplayReport reads the log at path and folds every record into a fresh
// aggregator — the offline path (vista -calib report) that must reproduce a
// live server's /calibration byte-for-byte from the same log. droppedBytes
// reports any unreadable tail.
func ReplayReport(path string, halfLife time.Duration) (rep Report, droppedBytes int, err error) {
	recs, dropped, err := ReadLog(path)
	if err != nil {
		return Report{}, 0, err
	}
	agg := NewAggregator(halfLife)
	for _, rec := range recs {
		agg.Add(rec)
	}
	return agg.Report(), dropped, nil
}

// WriteReportJSON encodes rep exactly the way GET /calibration does (one
// trailing newline, no indentation), so the offline CLI's -calib-json output
// diffs clean against the endpoint.
func WriteReportJSON(w io.Writer, rep Report) error {
	return json.NewEncoder(w).Encode(rep)
}

// RenderReport writes the report as an aligned operator-readable table: one
// row per kind with its sample counts, drift, the suggested (residual) and
// active (profile-applied) scales, and the relative-error histogram counts.
func RenderReport(w io.Writer, rep Report) {
	fmt.Fprintf(w, "calibration: %d runs, %d samples, half-life %s\n",
		rep.Runs, rep.Samples, time.Duration(rep.HalfLifeSeconds*float64(time.Second)))
	if p := rep.Profile; p != nil {
		fmt.Fprintf(w, "profile: refit %d at %s\n", p.Refits, p.FittedAt.UTC().Format(time.RFC3339))
	}
	fmt.Fprintf(w, "%-8s %8s %9s %12s %12s %8s %8s  %s\n",
		"stage", "samples", "excluded", "drift-ratio", "drift", "scale", "active", "|err| <=10% <=25% <=50% <=2x <=3x <=6x >6x")
	for _, st := range rep.Stages {
		var hist string
		for i, b := range st.RelErrHist {
			if i > 0 {
				hist += " "
			}
			hist += fmt.Sprintf("%d", b.Count)
		}
		active := st.ActiveScale
		if active == 0 {
			active = 1
		}
		fmt.Fprintf(w, "%-8s %8d %9d %12.4f %12.4f %8.3f %8.3f  %s\n",
			st.Kind, st.Samples, st.Excluded, st.DriftRatio, st.Drift,
			st.SuggestedScale, active, hist)
	}
}
