package calib

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/faultinject/crashtest"
)

// crashLogName is the log file crash scenarios share between the parent test
// and the re-exec'd helper.
const crashLogName = "calib.log"

// TestCrashHelper is the re-exec target: it arms a Kill failpoint and drives
// the log until faultinject terminates the process mid-operation. Parents
// assert on the directory it leaves behind. In a normal test run it skips.
func TestCrashHelper(t *testing.T) {
	scenario := crashtest.Scenario()
	if scenario == "" {
		t.Skip("not a crash helper process")
	}
	path := filepath.Join(crashtest.Dir(), crashLogName)
	switch scenario {
	case "kill-after-append":
		// Die immediately after a complete append: the record must be
		// durable (no deferred flush the crash could lose).
		l, err := OpenLog(path)
		if err != nil {
			t.Fatal(err)
		}
		l.Append(testRecord("a|foods|1|1", 1000))
		faultinject.Arm(FaultLogAppended, faultinject.Kill())
		l.Append(testRecord("b|foods|2|2", 2000))
	case "kill-after-torn-append":
		// Die after an append that silently tore at 10 bytes: the torn
		// record must vanish on recovery, the prior one must survive.
		l, err := OpenLog(path)
		if err != nil {
			t.Fatal(err)
		}
		l.Append(testRecord("a|foods|1|1", 1000))
		faultinject.Arm(FaultLogAppend, faultinject.SilentTruncate(10))
		faultinject.Arm(FaultLogAppended, faultinject.Kill())
		l.Append(testRecord("b|foods|2|2", 2000))
	case "kill-in-recovery-rename":
		// Die between writing the recovery temp file and renaming it over
		// the log: the original (torn but readable-prefix) file must
		// survive untouched for the next open to recover again.
		faultinject.Arm(FaultLogRecover+".rename", faultinject.Kill())
		OpenLog(path)
	}
	t.Fatalf("scenario %s did not kill the process", scenario)
}

func TestCrashAppendDurable(t *testing.T) {
	dir := t.TempDir()
	crashtest.Run(t, "TestCrashHelper", "kill-after-append", dir)

	l, err := OpenLog(filepath.Join(dir, crashLogName))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recordsEqual(t, l.Records(),
		[]Record{testRecord("a|foods|1|1", 1000), testRecord("b|foods|2|2", 2000)})
}

func TestCrashTornAppendRecovered(t *testing.T) {
	dir := t.TempDir()
	crashtest.Run(t, "TestCrashHelper", "kill-after-torn-append", dir)
	path := filepath.Join(dir, crashLogName)

	a := testRecord("a|foods|1|1", 1000)
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, l.Records(), []Record{a})
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(encodeRecord(a))); st.Size() != want {
		t.Fatalf("recovered log is %d bytes, want the clean prefix %d", st.Size(), want)
	}
	// The recovered log accepts appends and stays clean.
	c := testRecord("c|foods|3|3", 3000)
	if err := l.Append(c); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, dropped, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("recovered log reports %d dropped bytes", dropped)
	}
	recordsEqual(t, got, []Record{a, c})
}

func TestCrashRecoveryRenameKilled(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, crashLogName)
	a := testRecord("a|foods|1|1", 1000)

	// Seed a log with one clean record plus a torn tail, so the helper's
	// OpenLog enters the clean-prefix rewrite and dies before the rename.
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(a); err != nil {
		t.Fatal(err)
	}
	l.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("VCL1torn-tail-from-a-previous-crash"))
	f.Close()

	crashtest.Run(t, "TestCrashHelper", "kill-in-recovery-rename", dir)

	// A crash mid-recovery must not have replaced the log with anything
	// partial: the clean prefix is still readable, and a normal open
	// completes the recovery the crashed one started.
	l, err = OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recordsEqual(t, l.Records(), []Record{a})
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(encodeRecord(a))); st.Size() != want {
		t.Fatalf("recovered log is %d bytes, want the clean prefix %d", st.Size(), want)
	}
}
