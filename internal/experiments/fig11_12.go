package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/optimizer"
	"repro/internal/sim"
)

// Figure11Result covers both panels of Figure 11: runtime against the degree
// of parallelism (A) and against the number of partitions (B), plus the
// optimizer's picked values.
type Figure11Result struct {
	CPUSweep *SweepResult
	NPSweep  *SweepResult
	// Picked maps each model to the optimizer's (cpu, np).
	Picked map[string]optimizer.Decision
}

// Figure11 reproduces the system-configuration sweep on Foods with the
// Staged/AJ/Shuffle/Deserialized plan: runtimes improve with cpu until VGG16
// crashes past 4 cores; np shows the crash-at-low / overhead-at-high
// non-monotonicity; the optimizer picks near-optimal values (7/4/7 and
// multiples of the core count).
func Figure11() (*Figure11Result, error) {
	res := &Figure11Result{Picked: map[string]optimizer.Decision{}}

	cpuSweep := &SweepResult{Title: "Figure 11(A): runtime (min) vs cpu (Foods, Staged/AJ/Shuffle/Deser.)",
		Series: append([]string(nil), Models...)}
	for cpu := 1; cpu <= 8; cpu++ {
		p := SweepPoint{X: fmt.Sprintf("%d", cpu), Series: map[string]sim.Result{}}
		for _, model := range Models {
			r, err := runAtConfig(model, sim.FoodsSpec(), func(cfg *sim.Config, w sim.Workload) {
				cfg.CPU = cpu
				// Memory regions re-apportioned for the chosen cpu, as the
				// drill-down does ("explicitly apportioning the memory
				// regions based on the chosen cpu value").
				tuned := sim.TunedBaseline(w, cpu)
				cfg.Apportion = tuned.Apportion
				cfg.Join = dataflow.ShuffleJoin
				cfg.Pers = dataflow.Deserialized
			})
			if err != nil {
				return nil, err
			}
			p.Series[model] = r
		}
		cpuSweep.Points = append(cpuSweep.Points, p)
	}
	res.CPUSweep = cpuSweep

	npSweep := &SweepResult{Title: "Figure 11(B): runtime (min) vs np (Foods, Staged/AJ/Shuffle/Deser.)",
		Series: append([]string(nil), Models...)}
	for _, np := range []int{8, 32, 128, 512, 2048, 4096} {
		p := SweepPoint{X: fmt.Sprintf("%d", np), Series: map[string]sim.Result{}}
		for _, model := range Models {
			r, err := runAtConfig(model, sim.FoodsSpec(), func(cfg *sim.Config, _ sim.Workload) {
				cfg.NP = np
				cfg.Join = dataflow.ShuffleJoin
				cfg.Pers = dataflow.Deserialized
			})
			if err != nil {
				return nil, err
			}
			p.Series[model] = r
		}
		npSweep.Points = append(npSweep.Points, p)
	}
	res.NPSweep = npSweep

	for _, model := range Models {
		w, err := vistaWorkload(model, layersFor(model), sim.FoodsSpec(), 8, false)
		if err != nil {
			return nil, err
		}
		d, err := optimizer.Optimize(w.Inputs, optimizer.DefaultParams())
		if err != nil {
			return nil, err
		}
		res.Picked[model] = d
	}
	return res, nil
}

// runAtConfig simulates Vista's workload with a mutated configuration.
func runAtConfig(model string, ds sim.DatasetSpec, mutate func(*sim.Config, sim.Workload)) (sim.Result, error) {
	w, err := vistaWorkload(model, layersFor(model), ds, 8, false)
	if err != nil {
		return sim.Result{}, err
	}
	cfg, err := sim.VistaConfig(w)
	if err != nil {
		return sim.Result{}, err
	}
	mutate(&cfg, w)
	return sim.Run(w, cfg, sim.PaperCluster()), nil
}

// Render prints both sweeps and the optimizer's picks.
func (r *Figure11Result) Render() string {
	var b strings.Builder
	b.WriteString(r.CPUSweep.Render())
	b.WriteByte('\n')
	b.WriteString(r.NPSweep.Render())
	b.WriteString("\nOptimizer picked values:\n")
	for _, model := range Models {
		d := r.Picked[model]
		fmt.Fprintf(&b, "  %-9s cpu=%d np=%d join=%v pers=%v\n", model, d.CPU, d.NP, d.Join, d.Pers)
	}
	return b.String()
}

// Figure12Result covers scaleup, speedup, and the single-node cpu speedup.
type Figure12Result struct {
	// Scaleup[model][i] is t(1 node, 1X) / t(n_i nodes, n_iX) for
	// n = 1, 2, 4, 8 (ideal: 1.0).
	Scaleup map[string][]float64
	// Speedup[model][i] is t(1 node) / t(n_i nodes) on 1X data (ideal: n).
	Speedup map[string][]float64
	// CPUSpeedup[model][i] is t(cpu=1) / t(cpu=i+1) on one node, 0.25X.
	CPUSpeedup map[string][]float64
	Nodes      []int
}

// Figure12 reproduces the scalability experiment with Staged/AJ/Shuffle/
// Deserialized.
func Figure12() (*Figure12Result, error) {
	res := &Figure12Result{
		Scaleup:    map[string][]float64{},
		Speedup:    map[string][]float64{},
		CPUSpeedup: map[string][]float64{},
		Nodes:      []int{1, 2, 4, 8},
	}
	runAt := func(model string, nodes int, scale float64, cpuOverride int) (float64, error) {
		w, err := vistaWorkload(model, layersFor(model), sim.FoodsSpec().Scale(scale), nodes, false)
		if err != nil {
			return 0, err
		}
		cfg, err := sim.VistaConfig(w)
		if err != nil {
			return 0, err
		}
		cfg.Join = dataflow.ShuffleJoin
		cfg.Pers = dataflow.Deserialized
		if cpuOverride > 0 {
			// The Figure 12(C) drill-down re-apportions memory for each
			// tested cpu, like Figure 11(A).
			tuned := sim.TunedBaseline(w, cpuOverride)
			cfg.CPU = cpuOverride
			cfg.Apportion = tuned.Apportion
		}
		r := sim.Run(w, cfg, sim.PaperCluster().WithNodes(nodes))
		if r.Crash != nil {
			// Infeasible points (e.g. many VGG16 replicas on one node)
			// are gaps in the curve, not harness failures.
			return 0, nil
		}
		return r.TotalSec(), nil
	}
	ratio := func(num, den float64) float64 {
		if den <= 0 || num <= 0 {
			return 0 // gap (infeasible point)
		}
		return num / den
	}
	for _, model := range Models {
		t11, err := runAt(model, 1, 1, 0)
		if err != nil {
			return nil, err
		}
		for _, n := range res.Nodes {
			tnn, err := runAt(model, n, float64(n), 0)
			if err != nil {
				return nil, err
			}
			res.Scaleup[model] = append(res.Scaleup[model], ratio(t11, tnn))
			tn1, err := runAt(model, n, 1, 0)
			if err != nil {
				return nil, err
			}
			res.Speedup[model] = append(res.Speedup[model], ratio(t11, tn1))
		}
		t1cpu, err := runAt(model, 1, 0.25, 1)
		if err != nil {
			return nil, err
		}
		for cpu := 1; cpu <= 8; cpu++ {
			tc, err := runAt(model, 1, 0.25, cpu)
			if err != nil {
				return nil, err
			}
			res.CPUSpeedup[model] = append(res.CPUSpeedup[model], ratio(t1cpu, tc))
		}
	}
	return res, nil
}

// Render prints the three panels.
func (r *Figure12Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 12: scalability (Staged/AJ/Shuffle/Deser., Foods)\n\n")
	t := &table{header: []string{"(A) scaleup", "1", "2", "4", "8"}}
	for _, model := range Models {
		row := []string{model}
		for _, v := range r.Scaleup[model] {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.add(row...)
	}
	b.WriteString(t.String())
	b.WriteByte('\n')
	t = &table{header: []string{"(B) speedup", "1", "2", "4", "8"}}
	for _, model := range Models {
		row := []string{model}
		for _, v := range r.Speedup[model] {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.add(row...)
	}
	b.WriteString(t.String())
	b.WriteByte('\n')
	t = &table{header: []string{"(C) 1-node cpu speedup", "1", "2", "3", "4", "5", "6", "7", "8"}}
	for _, model := range Models {
		row := []string{model}
		for _, v := range r.CPUSpeedup[model] {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.add(row...)
	}
	b.WriteString(t.String())
	return b.String()
}
