package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/calib"
	"repro/internal/memory"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sim"
)

// CalibrationScenarioRow is one graded scenario's convergence record in the
// calibration exhibit.
type CalibrationScenarioRow struct {
	// Name is the scenario grade ("easy", "medium", "complex").
	Name string
	// Runs, Refits, and ProfileChanges count the scenario's activity.
	Runs, Refits, ProfileChanges int
	// ConvergedAfterRuns is the first run from which drift stays inside
	// [0.5, 2.0] through the end (0 = never).
	ConvergedAfterRuns int
	// MaxAbsLogDrift is the worst |ln(drift)| at the final run.
	MaxAbsLogDrift float64
	// FinalScales renders the fitted per-kind factors ("infer=0.52 ...").
	FinalScales string
}

// CalibrationResult is the closed-loop calibration exhibit: the graded
// scenario suite's convergence numbers plus an admission-flip demonstration —
// the easy scenario's fitted profile re-prices a paper-scale workload and a
// budget between the plain and fitted prices flips the verdict.
type CalibrationResult struct {
	Scenarios []CalibrationScenarioRow

	// PlainCostBytes and FittedCostBytes are the admission prices of the
	// demo workload under identity scales and under the fitted profile.
	PlainCostBytes, FittedCostBytes int64
	// FlipBudgetBytes is the midpoint budget that separates the verdicts.
	FlipBudgetBytes int64
	// PlainAdmit and FittedAdmit are the two verdicts at that budget.
	PlainAdmit, FittedAdmit bool
}

// CalibrationConvergence runs the graded mis-calibration suite
// (calib.ConvergenceScenarios) through the production observe → fit →
// re-price loop on a fake clock, then demonstrates the pricing consequence
// on a resnet50 paper-cluster workload.
func CalibrationConvergence() (*CalibrationResult, error) {
	res := &CalibrationResult{}
	var easy *calib.Profile
	for _, s := range calib.ConvergenceScenarios() {
		r := s.Run()
		if r.ConvergedAfterRuns == 0 {
			return nil, fmt.Errorf("experiments: scenario %s never converged (drift %v)", r.Name, r.FinalDrift)
		}
		if easy == nil {
			easy = r.Profile
		}
		res.Scenarios = append(res.Scenarios, CalibrationScenarioRow{
			Name:               r.Name,
			Runs:               r.Runs,
			Refits:             r.Refits,
			ProfileChanges:     r.ProfileChanges,
			ConvergedAfterRuns: r.ConvergedAfterRuns,
			MaxAbsLogDrift:     r.MaxAbsLogDrift,
			FinalScales:        renderScales(r.FinalScale),
		})
	}

	wl, err := sim.NewWorkload(sim.WorkloadSpec{
		ModelName: "resnet50", NumLayers: 5, Dataset: sim.FoodsSpec(),
		PlanKind: plan.Staged, Placement: plan.AfterJoin,
		Nodes: 8, CPUSys: 8, MemSys: memory.GB(32),
	})
	if err != nil {
		return nil, err
	}
	_, plain, err := sim.AdmissionCost(wl.Inputs, optimizer.DefaultParams())
	if err != nil {
		return nil, err
	}
	params := optimizer.DefaultParams()
	params.Scales = easy.CostScales()
	_, fitted, err := sim.AdmissionCost(wl.Inputs, params)
	if err != nil {
		return nil, err
	}
	res.PlainCostBytes, res.FittedCostBytes = plain, fitted
	res.FlipBudgetBytes = (plain + fitted) / 2
	res.PlainAdmit = plain <= res.FlipBudgetBytes
	res.FittedAdmit = fitted <= res.FlipBudgetBytes
	return res, nil
}

// renderScales formats a per-kind factor map in stable kind order.
func renderScales(scales map[calib.Kind]float64) string {
	keys := make([]string, 0, len(scales))
	for k := range scales {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%.3g", k, scales[calib.Kind(k)]))
	}
	return strings.Join(parts, " ")
}

func verdict(admit bool) string {
	if admit {
		return "admit"
	}
	return "reject"
}

// Render prints the convergence table and the admission-flip demo.
func (r *CalibrationResult) Render() string {
	var b strings.Builder
	b.WriteString("Closed-loop calibration — graded mis-calibration scenarios, converged = drift within [0.5, 2.0]\n")
	fmt.Fprintf(&b, "%-8s %5s %7s %8s %15s %10s  %s\n",
		"grade", "runs", "refits", "changes", "converged@run", "|ln drift|", "fitted factors")
	for _, s := range r.Scenarios {
		fmt.Fprintf(&b, "%-8s %5d %7d %8d %15d %10.3f  %s\n",
			s.Name, s.Runs, s.Refits, s.ProfileChanges, s.ConvergedAfterRuns, s.MaxAbsLogDrift, s.FinalScales)
	}
	fmt.Fprintf(&b, "\nAdmission flip (resnet50, 5 layers, 8x32 GB): plain %s -> %s, fitted %s -> %s at budget %s\n",
		fmtGiB(r.PlainCostBytes), verdict(r.PlainAdmit),
		fmtGiB(r.FittedCostBytes), verdict(r.FittedAdmit),
		fmtGiB(r.FlipBudgetBytes))
	return b.String()
}

// CSV implements CSVExporter: one row per scenario grade.
func (r *CalibrationResult) CSV() ([]string, [][]string) {
	header := []string{"grade", "runs", "refits", "profile_changes",
		"converged_after_run", "max_abs_log_drift", "fitted_factors"}
	var rows [][]string
	for _, s := range r.Scenarios {
		rows = append(rows, []string{
			s.Name,
			fmt.Sprintf("%d", s.Runs),
			fmt.Sprintf("%d", s.Refits),
			fmt.Sprintf("%d", s.ProfileChanges),
			fmt.Sprintf("%d", s.ConvergedAfterRuns),
			f2s(s.MaxAbsLogDrift),
			s.FinalScales,
		})
	}
	return header, rows
}
