package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
)

// checkCSV writes the exporter and re-parses it, validating shape.
func checkCSV(t *testing.T, e CSVExporter, wantCols int, minRows int) [][]string {
	t.Helper()
	var b strings.Builder
	if err := WriteCSV(&b, e); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(records) < minRows+1 {
		t.Fatalf("got %d records, want >= %d", len(records), minRows+1)
	}
	for i, rec := range records {
		if len(rec) != wantCols {
			t.Fatalf("record %d has %d columns, want %d", i, len(rec), wantCols)
		}
	}
	return records
}

func TestCSVExports(t *testing.T) {
	f6, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	recs := checkCSV(t, f6, 7, 72)
	crashSeen := false
	for _, r := range recs[1:] {
		if r[5] == "true" {
			crashSeen = true
			if r[4] != "" {
				t.Error("crashed rows must not carry minutes")
			}
		}
	}
	if !crashSeen {
		t.Error("figure 6 csv has no crash rows")
	}

	f7a, err := Figure7A()
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, f7a, 4, 12)

	f7b, err := Figure7B()
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, f7b, 3, 5)

	sweeps, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, sweeps[0], 5, 4)

	f11, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, f11, 5, 8+6+6)

	f12, err := Figure12()
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, f12, 4, 3*(8+8))

	f16, err := Figure16()
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, f16, 5, 12)

	t2, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, t2, 3, 9)

	t3, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, t3, 4, 3*4*3)

	f17, err := Figure17()
	if err != nil {
		t.Fatal(err)
	}
	checkCSV(t, f17, 4, 24)
}

func TestFigure8CSV(t *testing.T) {
	// Build a synthetic result rather than paying a real training run.
	res := &Figure8Result{Panels: []Figure8Panel{{
		Dataset: "foods", Model: "tiny-alexnet",
		Entries: []Figure8Entry{{FeatureSet: "struct", F1: 0.7}, {FeatureSet: "struct+fc6", F1: 0.8}},
	}}}
	recs := checkCSV(t, res, 4, 2)
	if recs[1][2] != "struct" || recs[2][3] != "0.8" {
		t.Errorf("unexpected rows: %v", recs[1:])
	}
}

func TestFigure15CSVShape(t *testing.T) {
	res := &Figure15Result{Rows: []Figure15Row{{
		Model: "tiny-alexnet", Rows: 100,
		EstimateBytes: 300, ActualDeserBytes: 200, ActualSerBytes: 100,
	}}}
	recs := checkCSV(t, res, 5, 1)
	if recs[1][2] != "300" {
		t.Errorf("estimate column = %q", recs[1][2])
	}
}
