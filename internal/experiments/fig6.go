package experiments

import (
	"fmt"
	"strings"

	"repro/internal/plan"
	"repro/internal/sim"
)

// Figure6Cell is one bar of Figure 6: an approach's total runtime (or crash)
// for one system × dataset × CNN combination.
type Figure6Cell struct {
	System   string // "spark" or "ignite"
	Dataset  string
	Model    string
	Approach string
	Result   sim.Result
	// PreMat is the pre-materialization time shown stacked on the
	// Lazy-5+Pre-mat bars (zero elsewhere).
	PreMat float64
}

// TotalMin is the bar height: the run plus any pre-materialization time.
func (c Figure6Cell) TotalMin() float64 {
	if c.Result.Crash != nil {
		return 0
	}
	return c.Result.TotalMin() + c.PreMat/60
}

// Crashed reports whether the cell is a paper "×".
func (c Figure6Cell) Crashed() bool { return c.Result.Crash != nil }

// Figure6Result is the full end-to-end reliability/efficiency grid.
type Figure6Result struct {
	Cells []Figure6Cell
}

// Approaches in Figure 6, in bar order.
var figure6Approaches = []string{"Lazy-1", "Lazy-5", "Lazy-7", "Lazy-5+Pre-mat", "Eager", "Vista"}

// Figure6 reproduces the end-to-end comparison (Section 5.1): six approaches
// on Spark-TF and Ignite-TF across both datasets and all three CNNs.
func Figure6() (*Figure6Result, error) {
	res := &Figure6Result{}
	for _, prof := range []sim.Profile{sim.PaperCluster(), sim.IgniteCluster()} {
		system := "spark"
		memOnly := false
		if !prof.Kind.SupportsSpill() {
			system = "ignite"
			memOnly = true
		}
		for _, ds := range []sim.DatasetSpec{sim.FoodsSpec(), sim.AmazonSpec()} {
			for _, model := range Models {
				k := layersFor(model)
				cells, err := figure6Cells(system, prof, memOnly, ds, model, k)
				if err != nil {
					return nil, err
				}
				res.Cells = append(res.Cells, cells...)
			}
		}
	}
	return res, nil
}

func figure6Cells(system string, prof sim.Profile, memOnly bool, ds sim.DatasetSpec, model string, k int) ([]Figure6Cell, error) {
	var out []Figure6Cell
	cell := func(approach string, r sim.Result, premat float64) {
		out = append(out, Figure6Cell{System: system, Dataset: ds.Name, Model: model,
			Approach: approach, Result: r, PreMat: premat})
	}

	// Lazy-k: the naive baselines with SQL-era default configs.
	lazyW, err := sim.NewWorkload(sim.WorkloadSpec{ModelName: model, NumLayers: k, Dataset: ds,
		PlanKind: plan.Lazy, Placement: plan.BeforeJoin, Nodes: prof.Nodes, MemoryOnly: memOnly})
	if err != nil {
		return nil, err
	}
	for _, cpu := range []int{1, 5, 7} {
		cfg := sim.BaselineSpark(cpu)
		if memOnly {
			cfg = sim.BaselineIgnite(cpu)
		}
		cell(fmt.Sprintf("Lazy-%d", cpu), sim.Run(lazyW, cfg, prof), 0)
	}

	// Lazy-5 with Pre-mat: strong baseline; pre-materialization time is
	// charged to the bar.
	prematW, err := sim.NewWorkload(sim.WorkloadSpec{ModelName: model, NumLayers: k, Dataset: ds,
		PlanKind: plan.Lazy, Placement: plan.BeforeJoin, PreMat: true, Nodes: prof.Nodes, MemoryOnly: memOnly})
	if err != nil {
		return nil, err
	}
	prematCfg := sim.TunedBaseline(prematW, 5)
	prematRun := sim.Run(prematW, prematCfg, prof)
	prematCost := sim.PreMaterializationCost(prematW, prematCfg, prof)
	cell("Lazy-5+Pre-mat", prematRun, prematCost.TotalSec())

	// Eager: strong baseline at 5 CPUs with tuned memory.
	eagerW, err := sim.NewWorkload(sim.WorkloadSpec{ModelName: model, NumLayers: k, Dataset: ds,
		PlanKind: plan.Eager, Placement: plan.BeforeJoin, Nodes: prof.Nodes, MemoryOnly: memOnly})
	if err != nil {
		return nil, err
	}
	cell("Eager", sim.Run(eagerW, sim.TunedBaseline(eagerW, 5), prof), 0)

	// Vista: optimizer-chosen Staged/AJ.
	cell("Vista", runVista(model, k, ds, prof), 0)
	return out, nil
}

// Render prints the grid, one block per system × dataset.
func (r *Figure6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: end-to-end reliability and efficiency (minutes; × = crash)\n\n")
	for _, system := range []string{"spark", "ignite"} {
		for _, dataset := range []string{"foods", "amazon"} {
			t := &table{header: append([]string{system + "/" + dataset}, figure6Approaches...)}
			for _, model := range Models {
				row := []string{model}
				for _, approach := range figure6Approaches {
					row = append(row, r.cellString(system, dataset, model, approach))
				}
				t.add(row...)
			}
			b.WriteString(t.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func (r *Figure6Result) cellString(system, dataset, model, approach string) string {
	for _, c := range r.Cells {
		if c.System == system && c.Dataset == dataset && c.Model == model && c.Approach == approach {
			if c.Crashed() {
				return fmtCell(c.Result)
			}
			return fmt.Sprintf("%.1f", c.TotalMin())
		}
	}
	return "?"
}

// Find returns the cell for the given coordinates, or nil.
func (r *Figure6Result) Find(system, dataset, model, approach string) *Figure6Cell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.System == system && c.Dataset == dataset && c.Model == model && c.Approach == approach {
			return c
		}
	}
	return nil
}
