package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/memory"
	"repro/internal/ml"
)

// Section52Result reproduces the decision-tree observation of Section 5.2:
// "We also tried a decision tree as the downstream ML model ... in both
// cases incorporating CNN features didn't improve the accuracy
// significantly. We believe this is because the depths of the conventional
// decision tree models are not large enough to reap the benefits of CNN
// features."
type Section52Result struct {
	Dataset string
	// TreeStructF1 and TreeCNNF1 are the decision tree's test F1 with
	// structured features only and with the best CNN layer added.
	TreeStructF1, TreeCNNF1 float64
	// LRStructF1 and LRCNNF1 are logistic regression's, for contrast.
	LRStructF1, LRCNNF1 float64
}

// TreeLift and LRLift return each model's absolute F1 gain from CNN features.
func (r *Section52Result) TreeLift() float64 { return r.TreeCNNF1 - r.TreeStructF1 }

// LRLift returns logistic regression's CNN gain.
func (r *Section52Result) LRLift() float64 { return r.LRCNNF1 - r.LRStructF1 }

// Section52 trains both downstream models with and without CNN features on
// the Foods-like dataset (real engine, tiny CNN).
func Section52(rows int) (*Section52Result, error) {
	if rows <= 0 {
		rows = 1200
	}
	spec := data.Foods().WithRows(rows)
	structRows, imageRows, err := data.Generate(spec)
	if err != nil {
		return nil, err
	}
	res := &Section52Result{Dataset: spec.Name}

	// Structured-only baselines.
	train, test := ml.SplitByID(structRows, 0.2)
	lr, err := ml.TrainLogRegRows(train, ml.StructuredOnly(), spec.StructDim, ml.DefaultLogRegConfig())
	if err != nil {
		return nil, err
	}
	met, err := ml.Evaluate(lr, test, ml.StructuredOnly())
	if err != nil {
		return nil, err
	}
	res.LRStructF1 = met.F1
	tree, err := ml.TrainTree(train, ml.StructuredOnly(), ml.DefaultTreeConfig())
	if err != nil {
		return nil, err
	}
	if met, err = ml.Evaluate(tree, test, ml.StructuredOnly()); err != nil {
		return nil, err
	}
	res.TreeStructF1 = met.F1

	// With CNN features, via the full pipeline.
	runSpec := core.Spec{
		Nodes: 2, CoresPerNode: 4, MemPerNode: memory.GB(32),
		SystemKind: memory.SparkLike,
		ModelName:  "tiny-alexnet", NumLayers: 2,
		Downstream: core.DefaultDownstream(),
		StructRows: structRows, ImageRows: imageRows,
		Seed: 13,
	}
	lrRun, err := core.Run(runSpec)
	if err != nil {
		return nil, err
	}
	for _, l := range lrRun.Layers {
		if l.Test.F1 > res.LRCNNF1 {
			res.LRCNNF1 = l.Test.F1
		}
	}
	runSpec.Downstream.Kind = core.DecisionTree
	treeRun, err := core.Run(runSpec)
	if err != nil {
		return nil, err
	}
	for _, l := range treeRun.Layers {
		if l.Test.F1 > res.TreeCNNF1 {
			res.TreeCNNF1 = l.Test.F1
		}
	}
	return res, nil
}

// Render prints the comparison.
func (r *Section52Result) Render() string {
	var b strings.Builder
	b.WriteString("Section 5.2: decision tree vs logistic regression with CNN features\n\n")
	t := &table{header: []string{r.Dataset, "struct F1", "struct+CNN F1", "lift"}}
	t.add("logistic regression",
		fmt.Sprintf("%.1f", r.LRStructF1*100),
		fmt.Sprintf("%.1f", r.LRCNNF1*100),
		fmt.Sprintf("%+.1f", r.LRLift()*100))
	t.add("decision tree",
		fmt.Sprintf("%.1f", r.TreeStructF1*100),
		fmt.Sprintf("%.1f", r.TreeCNNF1*100),
		fmt.Sprintf("%+.1f", r.TreeLift()*100))
	b.WriteString(t.String())
	return b.String()
}
