package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// fakeAdmissionResult builds a synthetic sweep so the render/export paths
// are testable without running the (seconds-long) flood.
func fakeAdmissionResult() *AdmissionResult {
	return &AdmissionResult{
		RunCostBytes: 50 << 30,
		Rows:         48, Parallel: 12,
		Points: []AdmissionPoint{
			{Label: "1x", BudgetBytes: 50 << 30, Requests: 12, Admitted: 12,
				ElapsedSec: 8, RunsPerSec: 1.5, P99WaitMs: 9000},
			{Label: "unlimited", BudgetBytes: 600 << 30, Requests: 12, Admitted: 12,
				ElapsedSec: 7, RunsPerSec: 1.7, P99WaitMs: 1},
		},
	}
}

func TestAdmissionResultCSV(t *testing.T) {
	recs := checkCSV(t, fakeAdmissionResult(), 8, 2)
	if recs[1][0] != "1x" || recs[2][0] != "unlimited" {
		t.Fatalf("budget labels = %q, %q", recs[1][0], recs[2][0])
	}
	if recs[1][3] != "12" {
		t.Fatalf("admitted = %q, want 12", recs[1][3])
	}
}

func TestAdmissionResultRender(t *testing.T) {
	out := fakeAdmissionResult().Render()
	for _, want := range []string{"12 parallel runs of 48 rows", "50.0 GiB", "unlimited", "p99 wait(ms)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

// TestAdmissionFloodSmoke runs one tiny flood end to end (the full budget
// sweep lives in the vista-bench exhibit; a single two-run point keeps the
// suite fast).
func TestAdmissionFloodSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real engine flood")
	}
	var specs []core.Spec
	for seed := int64(3); seed < 5; seed++ {
		spec, err := admissionSpec(24, seed)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, spec)
	}
	cost, err := core.Price(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	pt, err := admissionFlood(specs, "test", 2*cost, cost)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Admitted != 2 || pt.Rejected != 0 {
		t.Fatalf("admitted %d rejected %d, want 2/0", pt.Admitted, pt.Rejected)
	}
	if pt.RunsPerSec <= 0 {
		t.Fatalf("runs/s = %v, want > 0", pt.RunsPerSec)
	}
}
