// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5 and Appendices A–C). Cluster-scale experiments
// (Figures 6, 7, 9–12, 16–17, Tables 2–3) run on the analytical simulator
// with the paper's cluster profiles; the accuracy experiment (Figure 8) and
// the size-estimation validation (Figure 15) execute for real on the
// dataflow engine with the executable Tiny* CNNs. Each harness returns a
// structured result whose Render method prints the same rows/series the
// paper reports.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/memory"
	"repro/internal/plan"
	"repro/internal/sim"
)

// layersFor returns the paper's |L| per CNN (Section 5: conv5–fc8 for
// AlexNet, fc6–fc8 for VGG16, top 5 for ResNet50).
func layersFor(model string) int {
	switch {
	case strings.Contains(model, "alexnet"):
		return 4
	case strings.Contains(model, "vgg16"):
		return 3
	case strings.Contains(model, "resnet50"):
		return 5
	}
	return 1
}

// Models are the roster CNNs of the evaluation.
var Models = []string{"alexnet", "vgg16", "resnet50"}

// fmtCell renders a simulated result as minutes, or the paper's "×" for a
// crash.
func fmtCell(r sim.Result) string {
	if r.Crash != nil {
		oom, ok := memory.IsOOM(r.Crash)
		if ok {
			return fmt.Sprintf("×(%s)", oom.Scenario)
		}
		return "×"
	}
	return fmt.Sprintf("%.1f", r.TotalMin())
}

// vistaWorkload builds the Staged/AJ workload Vista runs.
func vistaWorkload(model string, k int, ds sim.DatasetSpec, nodes int, memoryOnly bool) (sim.Workload, error) {
	return sim.NewWorkload(sim.WorkloadSpec{
		ModelName: model, NumLayers: k, Dataset: ds,
		PlanKind: plan.Staged, Placement: plan.AfterJoin,
		Nodes: nodes, MemoryOnly: memoryOnly,
	})
}

// runVista optimizes and simulates Vista's execution.
func runVista(model string, k int, ds sim.DatasetSpec, prof sim.Profile) sim.Result {
	w, err := vistaWorkload(model, k, ds, prof.Nodes, !prof.Kind.SupportsSpill())
	if err != nil {
		return sim.Result{Crash: err}
	}
	cfg, err := sim.VistaConfig(w)
	if err != nil {
		return sim.Result{Crash: err}
	}
	return sim.Run(w, cfg, prof)
}

// table renders a simple fixed-width text table.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
