package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVExporter is implemented by every experiment result: a header plus data
// rows, ready for plotting tools.
type CSVExporter interface {
	CSV() (header []string, rows [][]string)
}

// WriteCSV writes an exporter's data to w in RFC 4180 CSV.
func WriteCSV(w io.Writer, e CSVExporter) error {
	header, rows := e.CSV()
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv: %w", err)
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("experiments: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func f2s(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// CSV implements CSVExporter: one row per Figure 6 bar.
func (r *Figure6Result) CSV() ([]string, [][]string) {
	header := []string{"system", "dataset", "model", "approach", "minutes", "crashed", "crash_scenario"}
	var rows [][]string
	for _, c := range r.Cells {
		minutes, crashed, scenario := "", "false", ""
		if c.Crashed() {
			crashed = "true"
			scenario = fmtCell(c.Result)
		} else {
			minutes = f2s(c.TotalMin())
		}
		rows = append(rows, []string{c.System, c.Dataset, c.Model, c.Approach, minutes, crashed, scenario})
	}
	return header, rows
}

// CSV implements CSVExporter.
func (r *Figure7AResult) CSV() ([]string, [][]string) {
	header := []string{"model", "approach", "minutes", "crashed"}
	var rows [][]string
	for _, c := range r.Cells {
		minutes, crashed := "", "false"
		if c.Crashed() {
			crashed = "true"
		} else {
			minutes = f2s(c.Result.TotalMin())
		}
		rows = append(rows, []string{c.Model, c.Approach, minutes, crashed})
	}
	return header, rows
}

// CSV implements CSVExporter.
func (r *Figure7BResult) CSV() ([]string, [][]string) {
	header := []string{"layers", "tft_beam_min", "vista_min"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{strconv.Itoa(p.Layers), f2s(p.TFTBeamMin), f2s(p.VistaMin)})
	}
	return header, rows
}

// CSV implements CSVExporter.
func (r *Figure8Result) CSV() ([]string, [][]string) {
	header := []string{"dataset", "model", "feature_set", "test_f1"}
	var rows [][]string
	for _, p := range r.Panels {
		for _, e := range p.Entries {
			rows = append(rows, []string{p.Dataset, p.Model, e.FeatureSet, f2s(e.F1)})
		}
	}
	return header, rows
}

// CSV implements CSVExporter: one row per (x, series) point.
func (r *SweepResult) CSV() ([]string, [][]string) {
	header := []string{"panel", "x", "series", "minutes", "crashed"}
	var rows [][]string
	for _, p := range r.Points {
		for _, s := range r.Series {
			res := p.Series[s]
			minutes, crashed := "", "false"
			if res.Crash != nil {
				crashed = "true"
			} else {
				minutes = f2s(res.TotalMin())
			}
			rows = append(rows, []string{r.Title, p.X, s, minutes, crashed})
		}
	}
	return header, rows
}

// SweepSet groups a figure's sweep panels into one exportable unit.
type SweepSet []*SweepResult

// CSV implements CSVExporter by concatenating the panels' rows.
func (s SweepSet) CSV() ([]string, [][]string) {
	header := []string{"panel", "x", "series", "minutes", "crashed"}
	var rows [][]string
	for _, sw := range s {
		_, r := sw.CSV()
		rows = append(rows, r...)
	}
	return header, rows
}

// CSV implements CSVExporter: both sweeps plus the optimizer picks.
func (r *Figure11Result) CSV() ([]string, [][]string) {
	header := []string{"panel", "x", "series", "minutes", "crashed"}
	_, cpuRows := r.CPUSweep.CSV()
	_, npRows := r.NPSweep.CSV()
	rows := append(cpuRows, npRows...)
	for _, model := range Models {
		d := r.Picked[model]
		rows = append(rows, []string{"picked", model, "cpu", strconv.Itoa(d.CPU), "false"})
		rows = append(rows, []string{"picked", model, "np", strconv.Itoa(d.NP), "false"})
	}
	return header, rows
}

// CSV implements CSVExporter.
func (r *Figure12Result) CSV() ([]string, [][]string) {
	header := []string{"panel", "model", "x", "value"}
	var rows [][]string
	for _, model := range Models {
		for i, n := range r.Nodes {
			rows = append(rows, []string{"scaleup", model, strconv.Itoa(n), f2s(r.Scaleup[model][i])})
			rows = append(rows, []string{"speedup", model, strconv.Itoa(n), f2s(r.Speedup[model][i])})
		}
		for cpu, v := range r.CPUSpeedup[model] {
			rows = append(rows, []string{"cpu-speedup", model, strconv.Itoa(cpu + 1), f2s(v)})
		}
	}
	return header, rows
}

// CSV implements CSVExporter.
func (r *Figure15Result) CSV() ([]string, [][]string) {
	header := []string{"model", "rows", "estimate_bytes", "deserialized_bytes", "serialized_bytes"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Model, strconv.Itoa(row.Rows),
			strconv.FormatInt(row.EstimateBytes, 10),
			strconv.FormatInt(row.ActualDeserBytes, 10),
			strconv.FormatInt(row.ActualSerBytes, 10)})
	}
	return header, rows
}

// CSV implements CSVExporter.
func (r *Figure16Result) CSV() ([]string, [][]string) {
	header := []string{"model", "layers", "materialization_min", "without_premat_min", "with_premat_min"}
	var rows [][]string
	for _, s := range r.Series {
		for _, p := range s.Points {
			rows = append(rows, []string{s.Model, strconv.Itoa(p.Layers),
				f2s(p.MaterializationMin), f2s(p.WithoutPreMatMin), f2s(p.WithPreMatMin)})
		}
	}
	return header, rows
}

// CSV implements CSVExporter.
func (r *Table2Result) CSV() ([]string, [][]string) {
	header := []string{"model", "position", "stored_gb"}
	var rows [][]string
	for _, row := range r.Rows {
		for _, pos := range []string{"1st", "2nd", "4th", "5th"} {
			if v, ok := row.SizesGB[pos]; ok {
				rows = append(rows, []string{row.Model, pos, f2s(v)})
			}
		}
	}
	return header, rows
}

// CSV implements CSVExporter.
func (r *Table3Result) CSV() ([]string, [][]string) {
	header := []string{"model", "nodes", "layer", "minutes"}
	var rows [][]string
	for _, model := range Models {
		for _, n := range r.Nodes {
			col := r.Breakdown[model][n]
			for _, layer := range col.LayerOrder {
				rows = append(rows, []string{model, strconv.Itoa(n), layer, f2s(col.LayerMin[layer])})
			}
			rows = append(rows, []string{model, strconv.Itoa(n), "total", f2s(col.TotalMin)})
			rows = append(rows, []string{model, strconv.Itoa(n), "read-images", f2s(col.ReadMin)})
		}
	}
	return header, rows
}

// CSV implements CSVExporter.
func (r *Figure17Result) CSV() ([]string, [][]string) {
	header := []string{"curve", "model", "nodes", "speedup"}
	var rows [][]string
	for _, model := range Models {
		for i, n := range r.Nodes {
			rows = append(rows, []string{"compute", model, strconv.Itoa(n), f2s(r.ComputeSpeedup[model][i])})
			rows = append(rows, []string{"read", model, strconv.Itoa(n), f2s(r.ReadSpeedup[model][i])})
		}
	}
	return header, rows
}
