package experiments

import (
	"fmt"
	"strings"
)

// Claim is one verifiable statement from the paper with its measured
// outcome.
type Claim struct {
	// Source cites where the paper makes the claim.
	Source string
	// Statement is the claim itself.
	Statement string
	// Pass reports whether the reproduction bears it out.
	Pass bool
	// Evidence summarizes the measured values behind the verdict.
	Evidence string
}

// ClaimsResult is the reproduction scorecard.
type ClaimsResult struct {
	Claims []Claim
}

// Passed counts verified claims.
func (r *ClaimsResult) Passed() int {
	n := 0
	for _, c := range r.Claims {
		if c.Pass {
			n++
		}
	}
	return n
}

// VerifyClaims re-runs the simulator-backed experiments and checks the
// paper's headline claims one by one. (The accuracy claims of Figure 8 run
// on the real engine and are covered by the test suite; this scorecard
// sticks to the fast, deterministic exhibits.)
func VerifyClaims() (*ClaimsResult, error) {
	res := &ClaimsResult{}
	add := func(source, statement string, pass bool, evidence string) {
		res.Claims = append(res.Claims, Claim{Source: source, Statement: statement,
			Pass: pass, Evidence: evidence})
	}

	f6, err := Figure6()
	if err != nil {
		return nil, err
	}
	vistaCrashes := 0
	baselineCrashes := 0
	var worstGain, bestGain float64 = 1, 0
	for _, c := range f6.Cells {
		if c.Approach == "Vista" && c.Crashed() {
			vistaCrashes++
		}
		if c.Approach != "Vista" && c.Crashed() {
			baselineCrashes++
		}
	}
	for _, system := range []string{"spark", "ignite"} {
		for _, dataset := range []string{"foods", "amazon"} {
			for _, model := range Models {
				vista := f6.Find(system, dataset, model, "Vista")
				lazy1 := f6.Find(system, dataset, model, "Lazy-1")
				if vista == nil || lazy1 == nil || vista.Crashed() || lazy1.Crashed() {
					continue
				}
				gain := 1 - vista.TotalMin()/lazy1.TotalMin()
				if gain < worstGain {
					worstGain = gain
				}
				if gain > bestGain {
					bestGain = gain
				}
			}
		}
	}
	add("Abstract / §5.1", "Vista never crashes",
		vistaCrashes == 0,
		fmt.Sprintf("0 of 12 Vista cells crashed; %d baseline cells did", baselineCrashes))
	add("Abstract / §5.1", "Vista reduces runtimes by 58–92% vs Lazy-1",
		worstGain > 0.45 && bestGain < 0.97,
		fmt.Sprintf("measured gains span %.0f%%–%.0f%%", worstGain*100, bestGain*100))

	vggL5 := f6.Find("spark", "foods", "vgg16", "Lazy-5")
	vggL7 := f6.Find("spark", "amazon", "vgg16", "Lazy-7")
	add("§5.1", "On Spark, Lazy-5 and Lazy-7 crash for VGG16",
		vggL5 != nil && vggL5.Crashed() && vggL7 != nil && vggL7.Crashed(),
		"dl-execution-blowup on both datasets")

	igniteEager := f6.Find("ignite", "amazon", "resnet50", "Eager")
	add("§5.1", "On Ignite, Eager crashes for ResNet50 on Amazon",
		igniteEager != nil && igniteEager.Crashed(),
		"storage-exhausted on the memory-only store")

	f11, err := Figure11()
	if err != nil {
		return nil, err
	}
	picks := fmt.Sprintf("alexnet=%d vgg16=%d resnet50=%d",
		f11.Picked["alexnet"].CPU, f11.Picked["vgg16"].CPU, f11.Picked["resnet50"].CPU)
	add("§5.3 / Figure 11", "The optimizer picks cpu 7/4/7 for AlexNet/VGG16/ResNet50",
		f11.Picked["alexnet"].CPU == 7 && f11.Picked["vgg16"].CPU == 4 && f11.Picked["resnet50"].CPU == 7,
		picks)
	vggAt5 := f11.CPUSweep.Get("5", "vgg16")
	add("§5.3 / Figure 11", "VGG16 crashes beyond 4 cores",
		vggAt5.Crash != nil && f11.CPUSweep.Get("4", "vgg16").Crash == nil,
		"feasible at 4, crashes at 5")

	f9, err := Figure9()
	if err != nil {
		return nil, err
	}
	e8 := f9[3].Get("8X", "Eager/AJ")
	s8 := f9[3].Get("8X", "Staged/AJ")
	eagerOK := e8.Crash == nil && s8.Crash == nil && e8.TotalMin() > 1.5*s8.TotalMin()
	ev := "n/a"
	if e8.Crash == nil && s8.Crash == nil {
		ev = fmt.Sprintf("Eager %.0f min vs Staged %.0f min at 8X", e8.TotalMin(), s8.TotalMin())
	}
	add("§5.3 / Figure 9", "Eager degrades sharply with data scale (disk spills); Staged does not",
		eagerOK, ev)

	f7b, err := Figure7B()
	if err != nil {
		return nil, err
	}
	last := f7b.Points[len(f7b.Points)-1]
	add("§5.1 / Figure 7B", "Vista clearly outperforms TFT+Beam when exploring more layers",
		last.TFTBeamMin > 1.5*last.VistaMin,
		fmt.Sprintf("at 5 layers: TFT+Beam %.1f min vs Vista %.1f min", last.TFTBeamMin, last.VistaMin))

	f7a, err := Figure7A()
	if err != nil {
		return nil, err
	}
	gpuVGG := f7a.Find("vgg16", "Lazy-5")
	gpuEager := f7a.Find("resnet50", "Eager")
	gpuVista := f7a.Find("resnet50", "Vista")
	gpuPass := gpuVGG != nil && gpuVGG.Crashed() &&
		gpuEager != nil && gpuVista != nil && !gpuEager.Crashed() && !gpuVista.Crashed() &&
		gpuEager.TotalMin() > 1.3*gpuVista.TotalMin()
	add("§5.1 / Figure 7A", "On a 12 GB GPU, Lazy-5 crashes for VGG16 and Eager is far slower than Vista for ResNet50",
		gpuPass, "Equation 15 crash + spill-bound Eager")

	t3, err := Table3()
	if err != nil {
		return nil, err
	}
	within := func(got, want float64) bool { return got >= want/2 && got <= want*2 }
	t3Pass := within(t3.Breakdown["resnet50"][1].TotalMin, 29.9) &&
		within(t3.Breakdown["vgg16"][1].TotalMin, 44.3) &&
		within(t3.Breakdown["alexnet"][1].TotalMin, 7.5)
	add("Appendix C / Table 3", "Per-layer runtime breakdown matches the paper (within 2x)",
		t3Pass,
		fmt.Sprintf("1-node totals: resnet50 %.1f (paper 29.9), vgg16 %.1f (44.3), alexnet %.1f (7.5)",
			t3.Breakdown["resnet50"][1].TotalMin, t3.Breakdown["vgg16"][1].TotalMin,
			t3.Breakdown["alexnet"][1].TotalMin))

	f17, err := Figure17()
	if err != nil {
		return nil, err
	}
	readS := f17.ReadSpeedup["alexnet"][3]
	compS := f17.ComputeSpeedup["vgg16"][3]
	add("§5.3 / Figure 12 + Appendix C", "Image reads scale sub-linearly (HDFS small files); compute scales near-linearly",
		readS < 6.5 && compS > 6.5,
		fmt.Sprintf("8-node read speedup %.1f, compute speedup %.1f", readS, compS))

	return res, nil
}

// Render prints the scorecard.
func (r *ClaimsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Paper-claim scorecard: %d/%d verified\n\n", r.Passed(), len(r.Claims))
	for _, c := range r.Claims {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %s — %s\n       %s\n", mark, c.Source, c.Statement, c.Evidence)
	}
	return b.String()
}
