package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/share"
)

// shareWindow is how long the sharing-on flood's first arrival holds the
// group open. The flood launches every request at once, so a short window
// is ample and keeps its cost out of the throughput measurement.
const shareWindow = 250 * time.Millisecond

// SharePoint is one side of the shared-inference comparison: the same flood
// of identical runs with the coalescer off or on.
type SharePoint struct {
	// Label is "off" or "on".
	Label string
	// Runs is how many identical requests the flood issued.
	Runs int
	// Leaders, Followers, and Solos partition the flood by sharing role
	// (with sharing off, every run is a solo by definition).
	Leaders, Followers, Solos int64
	// DedupFLOPs is modeled inference work followers did not repeat.
	DedupFLOPs int64
	// ElapsedSec is wall-clock time for the whole flood to drain.
	ElapsedSec float64
	// RunsPerSec is completed runs per second of wall clock.
	RunsPerSec float64
}

// ShareResult is the multi-query shared-inference exhibit: a flood of
// identical /run-shaped workloads executed twice — once with every run
// computing its own partial-CNN pass, once with the internal/share coalescer
// batching them behind one leader. The Vista cost model (Section 4) prices
// the CNN pass as the dominant cost, so deduplicating it across N identical
// queries should approach N× on the inference portion.
type ShareResult struct {
	// Rows and Parallel describe the workload: Parallel identical runs of
	// Rows rows each.
	Rows, Parallel int
	Points         []SharePoint
	// Speedup is sharing-on throughput over sharing-off throughput.
	Speedup float64
}

// ShareThroughput floods Parallel identical runs with sharing off and on and
// reports the throughput ratio. rows <= 0 picks a default sized so both
// floods together stay well under a minute.
func ShareThroughput(rows int) (*ShareResult, error) {
	if rows <= 0 {
		rows = 48
	}
	const parallel = 8

	// Every request is byte-identical — same dataset seed, same model, same
	// layers — exactly the shape the coalescer fingerprints. Each run still
	// gets its own Spec (and spill dir) as the server's handleRun would
	// build per request.
	specs := make([]core.Spec, parallel)
	for i := range specs {
		spec, err := admissionSpec(rows, 7)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}

	res := &ShareResult{Rows: rows, Parallel: parallel}
	off, err := shareFlood(specs, nil)
	if err != nil {
		return nil, err
	}
	coord, err := share.New(share.Config{Window: shareWindow})
	if err != nil {
		return nil, err
	}
	on, err := shareFlood(specs, coord)
	if err != nil {
		return nil, err
	}
	res.Points = []SharePoint{*off, *on}
	if off.RunsPerSec > 0 {
		res.Speedup = on.RunsPerSec / off.RunsPerSec
	}
	return res, nil
}

// shareFlood runs every spec concurrently, coalescing through coord when it
// is non-nil, and reports wall-clock throughput plus the role split.
func shareFlood(specs []core.Spec, coord *share.Coordinator) (*SharePoint, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for i := range specs {
		wg.Add(1)
		go func(spec core.Spec) {
			defer wg.Done()
			err := shareRun(coord, spec)
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(specs[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, fmt.Errorf("experiments: share flood: %w", firstErr)
	}

	pt := &SharePoint{
		Label:      "on",
		Runs:       len(specs),
		Solos:      int64(len(specs)),
		ElapsedSec: elapsed.Seconds(),
	}
	if elapsed > 0 {
		pt.RunsPerSec = float64(len(specs)) / elapsed.Seconds()
	}
	if coord == nil {
		pt.Label = "off"
		return pt, nil
	}
	st := coord.Stats()
	if st.OpenGroups != 0 || st.WaitingMembers != 0 || st.LiveGroups != 0 {
		return nil, fmt.Errorf("experiments: share flood left the coordinator undrained: %+v", st)
	}
	pt.Leaders, pt.Followers, pt.Solos = st.Leaders, st.Followers, st.Solos
	pt.DedupFLOPs = st.DedupFLOPs
	return pt, nil
}

// shareRun executes one flood member through the coordinator exactly as the
// server's handleRun does: join, follower-awaits-leader, attach the handoff
// by role, run, finish.
func shareRun(coord *share.Coordinator, spec core.Spec) error {
	if coord == nil {
		_, err := core.Run(spec)
		return err
	}
	fp, ok := core.ShareFingerprint(spec)
	if !ok {
		return fmt.Errorf("experiments: flood spec is not shareable")
	}
	tk, err := coord.Join(context.Background(),
		share.Identity{Model: fp.Model, WeightsSum: fp.WeightsSum, DataSum: fp.DataSum},
		share.Member{NumLayers: fp.NumLayers, InferenceFLOPs: fp.InferenceFLOPs})
	if err != nil {
		return err
	}
	var runErr error
	defer func() { tk.Finish(runErr) }()
	if tk.Role() == share.Follower {
		att, aerr := tk.AwaitLeader(context.Background())
		if aerr != nil {
			runErr = aerr
			return aerr
		}
		spec.FeatureSource = att.Source
	}
	if tk.Role() == share.Leader {
		spec.FeatureSource = tk.Source()
		spec.FeatureSink = tk.Sink()
	}
	tk.Start()
	_, runErr = core.Run(spec)
	return runErr
}

// Render prints the comparison as a text table.
func (r *ShareResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-query shared inference — %d identical runs of %d rows\n",
		r.Parallel, r.Rows)
	fmt.Fprintf(&b, "%-8s %6s %8s %10s %6s %12s %11s %8s\n",
		"sharing", "runs", "leaders", "followers", "solos", "dedup FLOPs", "elapsed(s)", "runs/s")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8s %6d %8d %10d %6d %12d %11.2f %8.2f\n",
			p.Label, p.Runs, p.Leaders, p.Followers, p.Solos,
			p.DedupFLOPs, p.ElapsedSec, p.RunsPerSec)
	}
	fmt.Fprintf(&b, "speedup: %.2fx\n", r.Speedup)
	return b.String()
}

// CSV implements CSVExporter: one row per sharing mode.
func (r *ShareResult) CSV() ([]string, [][]string) {
	header := []string{"sharing", "runs", "leaders", "followers", "solos",
		"dedup_flops", "elapsed_sec", "runs_per_sec", "speedup"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Label,
			fmt.Sprintf("%d", p.Runs),
			fmt.Sprintf("%d", p.Leaders),
			fmt.Sprintf("%d", p.Followers),
			fmt.Sprintf("%d", p.Solos),
			fmt.Sprintf("%d", p.DedupFLOPs),
			f2s(p.ElapsedSec),
			f2s(p.RunsPerSec),
			f2s(r.Speedup),
		})
	}
	return header, rows
}
