package experiments

import (
	"strings"
	"testing"
)

func TestFigure6HeadlineClaims(t *testing.T) {
	res, err := Figure6()
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	// 2 systems × 2 datasets × 3 models × 6 approaches.
	if len(res.Cells) != 2*2*3*6 {
		t.Fatalf("got %d cells, want 72", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Approach == "Vista" && c.Crashed() {
			t.Errorf("%s/%s/%s: Vista crashed: %v", c.System, c.Dataset, c.Model, c.Result.Crash)
		}
	}
	// Spark: Lazy-5/7 crash on VGG16 for both datasets.
	for _, dataset := range []string{"foods", "amazon"} {
		for _, approach := range []string{"Lazy-5", "Lazy-7"} {
			c := res.Find("spark", dataset, "vgg16", approach)
			if c == nil || !c.Crashed() {
				t.Errorf("spark/%s/vgg16/%s should crash", dataset, approach)
			}
		}
	}
	// Ignite: Eager crashes on Amazon for ResNet50.
	if c := res.Find("ignite", "amazon", "resnet50", "Eager"); c == nil || !c.Crashed() {
		t.Error("ignite/amazon/resnet50/Eager should crash")
	}
	// Vista beats every surviving Lazy baseline.
	for _, system := range []string{"spark", "ignite"} {
		for _, dataset := range []string{"foods", "amazon"} {
			for _, model := range Models {
				vista := res.Find(system, dataset, model, "Vista")
				for _, approach := range []string{"Lazy-1", "Lazy-5", "Lazy-7"} {
					c := res.Find(system, dataset, model, approach)
					if c == nil || c.Crashed() {
						continue
					}
					if vista.TotalMin() >= c.TotalMin() {
						t.Errorf("%s/%s/%s: Vista (%.1f) not faster than %s (%.1f)",
							system, dataset, model, vista.TotalMin(), approach, c.TotalMin())
					}
				}
			}
		}
	}
	out := res.Render()
	for _, want := range []string{"spark/foods", "ignite/amazon", "Vista", "×"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure7AGPUClaims(t *testing.T) {
	res, err := Figure7A()
	if err != nil {
		t.Fatalf("Figure7A: %v", err)
	}
	for _, approach := range []string{"Lazy-5", "Lazy-7"} {
		if c := res.Find("vgg16", approach); c == nil || !c.Crashed() {
			t.Errorf("GPU %s VGG16 should crash (Equation 15)", approach)
		}
	}
	vista := res.Find("resnet50", "Vista")
	eager := res.Find("resnet50", "Eager")
	if vista == nil || eager == nil || vista.Crashed() || eager.Crashed() {
		t.Fatal("ResNet50 GPU rows missing or crashed")
	}
	// "For ResNet50, Eager takes significantly more time to complete
	// compared to Vista due to costly disk spills."
	if eager.TotalMin() < vista.TotalMin()*1.3 {
		t.Errorf("GPU Eager ResNet50 (%.1f) should clearly exceed Vista (%.1f)",
			eager.TotalMin(), vista.TotalMin())
	}
	if !strings.Contains(res.Render(), "gpu-memory-exhausted") {
		t.Error("render should show the GPU crash")
	}
}

func TestFigure7BCrossover(t *testing.T) {
	res, err := Figure7B()
	if err != nil {
		t.Fatalf("Figure7B: %v", err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("got %d points, want 5", len(res.Points))
	}
	// "When exploring only the last layer, TFT+Beam is slightly faster than
	// Vista [or at least competitive]. However, when exploring more layers,
	// Vista starts to clearly outperform TFT+Beam."
	first := res.Points[0]
	if first.VistaMin > first.TFTBeamMin*1.3 {
		t.Errorf("at 1 layer Vista (%.1f) should be competitive with TFT+Beam (%.1f)",
			first.VistaMin, first.TFTBeamMin)
	}
	last := res.Points[len(res.Points)-1]
	if gap := last.TFTBeamMin / last.VistaMin; gap < 1.05 {
		t.Errorf("at 5 layers TFT+Beam/Vista = %.2f, want Vista clearly ahead", gap)
	}
	// The TFT-vs-Vista gap must widen with the layer count.
	if (last.TFTBeamMin - last.VistaMin) <= (first.TFTBeamMin - first.VistaMin) {
		t.Error("TFT+Beam's disadvantage should grow with layers")
	}
}

func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("real-engine accuracy experiment; skipped with -short")
	}
	res, err := Figure8(Figure8Options{Rows: 800})
	if err != nil {
		t.Fatalf("Figure8: %v", err)
	}
	if len(res.Panels) != 4 {
		t.Fatalf("got %d panels, want 4", len(res.Panels))
	}
	for i := range res.Panels {
		p := &res.Panels[i]
		structE := p.Entry("struct")
		hog := p.Entry("struct+HOG")
		if structE == nil || hog == nil {
			t.Fatalf("%s/%s: missing baseline entries", p.Dataset, p.Model)
		}
		best := p.Best()
		// "In all cases incorporating image features improves the
		// classification accuracy, and CNN features offer significantly
		// higher lift in accuracy than traditional HOG features."
		if !strings.HasPrefix(best.FeatureSet, "struct+") || best.FeatureSet == "struct+HOG" {
			t.Errorf("%s/%s: best feature set is %s, want a CNN layer", p.Dataset, p.Model, best.FeatureSet)
		}
		if best.F1 <= structE.F1+0.02 {
			t.Errorf("%s/%s: best CNN F1 %.3f lacks a clear lift over struct %.3f",
				p.Dataset, p.Model, best.F1, structE.F1)
		}
		if best.F1 <= hog.F1 {
			t.Errorf("%s/%s: best CNN F1 %.3f does not beat HOG %.3f",
				p.Dataset, p.Model, best.F1, hog.F1)
		}
		// "no single layer is universally best ... it is critical to try
		// multiple layers": the explored layers must differ meaningfully.
		var lo, hi float64 = 2, -1
		for _, e := range p.Entries {
			if strings.HasPrefix(e.FeatureSet, "struct+conv") || strings.HasPrefix(e.FeatureSet, "struct+fc") {
				if e.F1 < lo {
					lo = e.F1
				}
				if e.F1 > hi {
					hi = e.F1
				}
			}
		}
		if hi-lo < 0.01 {
			t.Errorf("%s/%s: layer F1 spread %.3f too small; trying layers must matter", p.Dataset, p.Model, hi-lo)
		}
	}
	if !strings.Contains(res.Render(), "struct+HOG") {
		t.Error("render missing HOG row")
	}
}

func TestFigure9Crossover(t *testing.T) {
	sweeps, err := Figure9()
	if err != nil {
		t.Fatalf("Figure9: %v", err)
	}
	if len(sweeps) != 4 {
		t.Fatalf("got %d panels, want 4", len(sweeps))
	}
	// Panel 4 (resnet50 vs data scale): Eager ≈ Staged at 1X, much worse at 8X.
	panel := sweeps[3]
	e1 := panel.Get("1X", "Eager/AJ")
	s1 := panel.Get("1X", "Staged/AJ")
	e8 := panel.Get("8X", "Eager/AJ")
	s8 := panel.Get("8X", "Staged/AJ")
	for _, r := range []struct {
		name string
		res  interface{ TotalMin() float64 }
	}{} {
		_ = r
	}
	if e1.Crash != nil || s1.Crash != nil || e8.Crash != nil || s8.Crash != nil {
		t.Fatal("unexpected crash in Figure 9 panel 4")
	}
	if ratio := e1.TotalMin() / s1.TotalMin(); ratio > 1.5 {
		t.Errorf("1X Eager/Staged = %.2f, should be comparable", ratio)
	}
	if ratio := e8.TotalMin() / s8.TotalMin(); ratio < 1.5 {
		t.Errorf("8X Eager/Staged = %.2f, Eager must degrade (paper: disk spills)", ratio)
	}
	// AJ is "mostly comparable ... but marginally faster at larger scales".
	sBJ := panel.Get("8X", "Staged/BJ")
	if sBJ.Crash == nil && s8.TotalMin() > sBJ.TotalMin()*1.1 {
		t.Errorf("8X Staged/AJ (%.1f) should not trail Staged/BJ (%.1f) by much",
			s8.TotalMin(), sBJ.TotalMin())
	}
}

func TestFigure10BroadcastCrash(t *testing.T) {
	sweeps, err := Figure10()
	if err != nil {
		t.Fatalf("Figure10: %v", err)
	}
	if len(sweeps) != 4 {
		t.Fatalf("got %d panels, want 4", len(sweeps))
	}
	// Panels 3-4: broadcast crashes at 10000 structured features, survives
	// below; shuffle always survives.
	for _, panel := range sweeps[2:] {
		if r := panel.Get("10000", "Broad./Deser."); r.Crash == nil {
			t.Errorf("%s: broadcast at 10000 features should crash", panel.Title)
		}
		if r := panel.Get("1000", "Broad./Deser."); r.Crash != nil {
			t.Errorf("%s: broadcast at 1000 features crashed: %v", panel.Title, r.Crash)
		}
		if r := panel.Get("10000", "Shuffle/Deser."); r.Crash != nil {
			t.Errorf("%s: shuffle at 10000 features crashed: %v", panel.Title, r.Crash)
		}
	}
	// Panel 2 (resnet50 vs scale): serialized at least matches deserialized
	// at 8X ("Ser. plans slightly outperform the Deser. plans").
	d := sweeps[1].Get("8X", "Shuffle/Deser.")
	s := sweeps[1].Get("8X", "Shuffle/Ser.")
	if d.Crash != nil || s.Crash != nil {
		t.Fatal("unexpected crash in Figure 10 panel 2")
	}
	if s.TotalMin() > d.TotalMin() {
		t.Errorf("8X serialized (%.1f) should not exceed deserialized (%.1f)", s.TotalMin(), d.TotalMin())
	}
}

func TestFigure11OptimizerPicks(t *testing.T) {
	res, err := Figure11()
	if err != nil {
		t.Fatalf("Figure11: %v", err)
	}
	wantCPU := map[string]int{"alexnet": 7, "vgg16": 4, "resnet50": 7}
	for model, want := range wantCPU {
		if got := res.Picked[model].CPU; got != want {
			t.Errorf("%s: optimizer cpu = %d, want %d (Figure 11)", model, got, want)
		}
	}
	// VGG16 crashes past 4 cores in the cpu sweep.
	if r := res.CPUSweep.Get("5", "vgg16"); r.Crash == nil {
		t.Error("VGG16 at cpu=5 should crash (Figure 11A)")
	}
	if r := res.CPUSweep.Get("4", "vgg16"); r.Crash != nil {
		t.Errorf("VGG16 at cpu=4 crashed: %v", r.Crash)
	}
	// Runtimes decrease with cpu for the surviving models.
	for _, model := range []string{"alexnet", "resnet50"} {
		lo := res.CPUSweep.Get("1", model)
		hi := res.CPUSweep.Get("7", model)
		if lo.Crash != nil || hi.Crash != nil {
			t.Fatalf("%s cpu sweep crashed", model)
		}
		if hi.TotalMin() >= lo.TotalMin() {
			t.Errorf("%s: runtime did not decrease with cpu", model)
		}
	}
	// np: crash at the low end, rising overhead at the high end.
	if r := res.NPSweep.Get("8", "resnet50"); r.Crash == nil {
		t.Error("resnet50 at np=8 should crash (oversized partitions)")
	}
	mid := res.NPSweep.Get("512", "alexnet")
	high := res.NPSweep.Get("4096", "alexnet")
	if mid.Crash != nil || high.Crash != nil {
		t.Fatal("alexnet np sweep crashed unexpectedly")
	}
	if high.TotalMin() <= mid.TotalMin() {
		t.Error("np=4096 should be slower than np=512 (task overheads)")
	}
}

func TestFigure12Shapes(t *testing.T) {
	res, err := Figure12()
	if err != nil {
		t.Fatalf("Figure12: %v", err)
	}
	for _, model := range Models {
		// Near-linear scaleup: the 8-node/8X ratio stays near 1.
		s := res.Scaleup[model]
		if s[len(s)-1] < 0.65 {
			t.Errorf("%s scaleup at 8 nodes = %.2f, want near-linear", model, s[len(s)-1])
		}
	}
	// AlexNet's speedup is markedly sub-linear; VGG16/ResNet50 near-linear.
	alex := res.Speedup["alexnet"][3]
	vgg := res.Speedup["vgg16"][3]
	if alex >= vgg {
		t.Errorf("AlexNet 8-node speedup (%.1f) should trail VGG16's (%.1f)", alex, vgg)
	}
	if alex > 7.2 {
		t.Errorf("AlexNet speedup %.1f not clearly sub-linear", alex)
	}
	// Single-node cpu speedup plateaus (Figure 12C).
	cpuS := res.CPUSpeedup["resnet50"]
	if cpuS[7] > 4.5 {
		t.Errorf("cpu-8 speedup %.2f should plateau near 4", cpuS[7])
	}
	if cpuS[3] <= cpuS[1] {
		t.Error("cpu speedup should increase from 2 to 4")
	}
	if !strings.Contains(res.Render(), "scaleup") {
		t.Error("render missing scaleup panel")
	}
}

func TestFigure15EstimatesAreSafeBounds(t *testing.T) {
	res, err := Figure15(200)
	if err != nil {
		t.Fatalf("Figure15: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		// "the estimates are accurate for the deserialized in-memory data
		// with a reasonable safety margin".
		if row.EstimateBytes < row.ActualDeserBytes {
			t.Errorf("%s: estimate %d below actual deserialized %d", row.Model,
				row.EstimateBytes, row.ActualDeserBytes)
		}
		if row.EstimateBytes > row.ActualDeserBytes*4 {
			t.Errorf("%s: estimate %d more than 4x actual %d — margin too loose",
				row.Model, row.EstimateBytes, row.ActualDeserBytes)
		}
		// "Serialized is smaller than deserialized as Spark compresses".
		if row.ActualSerBytes >= row.ActualDeserBytes {
			t.Errorf("%s: serialized %d not below deserialized %d", row.Model,
				row.ActualSerBytes, row.ActualDeserBytes)
		}
	}
}

func TestFigure16PreMatShapes(t *testing.T) {
	res, err := Figure16()
	if err != nil {
		t.Fatalf("Figure16: %v", err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("got %d series, want 3", len(res.Series))
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.WithPreMatMin >= p.WithoutPreMatMin {
				t.Errorf("%s/%dL: with pre-mat (%.1f) not below without (%.1f)",
					s.Model, p.Layers, p.WithPreMatMin, p.WithoutPreMatMin)
			}
		}
	}
	// ResNet50: the 5L gain (including materialization) is marginal or
	// negative, the paper's "may or may not decrease" case.
	var resnet *Figure16Series
	for i := range res.Series {
		if res.Series[i].Model == "resnet50" {
			resnet = &res.Series[i]
		}
	}
	p5 := resnet.Points[0] // 5L is first (maxK descending)
	total5 := p5.MaterializationMin + p5.WithPreMatMin
	if total5 < p5.WithoutPreMatMin*0.85 {
		t.Errorf("resnet50 5L: pre-mat total %.1f should not clearly beat %.1f (Appendix B)",
			total5, p5.WithoutPreMatMin)
	}
}

func TestTable2Sizes(t *testing.T) {
	res, err := Table2()
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	byModel := map[string]Table2Row{}
	for _, r := range res.Rows {
		byModel[r.Model] = r
	}
	// ResNet50's 5th layer dwarfs its 4th (paper: 11.51 vs 3.45 GB) — the
	// reason pre-mat can backfire there.
	rn := byModel["resnet50"]
	if rn.SizesGB["5th"] < 2*rn.SizesGB["4th"] {
		t.Errorf("resnet50 5th (%.2f) should be much larger than 4th (%.2f)",
			rn.SizesGB["5th"], rn.SizesGB["4th"])
	}
	// Paper's 5th-layer value is 11.51 GB; ours should land within 2x.
	if rn.SizesGB["5th"] < 11.51/2 || rn.SizesGB["5th"] > 11.51*2 {
		t.Errorf("resnet50 5th = %.2f GB, paper 11.51 (want within 2x)", rn.SizesGB["5th"])
	}
	// Feature layers are "generally larger than the compressed image
	// formats" for the big conv layers.
	if rn.SizesGB["5th"] < res.RawImagesGB {
		t.Error("resnet50 conv4_6 features should dwarf the raw images")
	}
	if !strings.Contains(res.Render(), "resnet50") {
		t.Error("render missing rows")
	}
}

func TestTable3AndFigure17(t *testing.T) {
	t3, err := Table3()
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	// Paper single-node totals (CNN inference + LR 1st iteration), minutes.
	paper := map[string]float64{"resnet50": 29.9, "alexnet": 7.5, "vgg16": 44.3}
	for model, want := range paper {
		got := t3.Breakdown[model][1].TotalMin
		if got < want/2 || got > want*2 {
			t.Errorf("%s@1 node total = %.1f min, paper %.1f (want within 2x)", model, got, want)
		}
		// Totals shrink with nodes.
		if t3.Breakdown[model][8].TotalMin >= t3.Breakdown[model][1].TotalMin/3 {
			t.Errorf("%s: 8-node total %.1f not well below 1-node %.1f",
				model, t3.Breakdown[model][8].TotalMin, t3.Breakdown[model][1].TotalMin)
		}
	}
	// The bottom layer dominates ("most of the time is spent ... on the
	// first layer where the CNN inference has to be performed starting from
	// raw images").
	col := t3.Breakdown["resnet50"][8]
	bottom := col.LayerMin[col.LayerOrder[0]]
	rest := col.TotalMin - bottom
	if bottom <= rest {
		t.Errorf("resnet50 bottom layer (%.2f) should dominate the rest (%.2f)", bottom, rest)
	}

	f17, err := Figure17()
	if err != nil {
		t.Fatalf("Figure17: %v", err)
	}
	for _, model := range Models {
		compute := f17.ComputeSpeedup[model][3]
		read := f17.ReadSpeedup[model][3]
		// Reads scale sub-linearly (small-files problem); compute scales
		// better than reads.
		if read >= 7 {
			t.Errorf("%s read speedup %.1f should be clearly sub-linear", model, read)
		}
		if compute <= read {
			t.Errorf("%s compute speedup (%.1f) should exceed read speedup (%.1f)",
				model, compute, read)
		}
	}
}

func TestSection52TreeObservation(t *testing.T) {
	if testing.Short() {
		t.Skip("real-engine experiment; skipped with -short")
	}
	res, err := Section52(900)
	if err != nil {
		t.Fatalf("Section52: %v", err)
	}
	// The paper's observation: conventional-depth trees gain less from CNN
	// features than logistic regression does.
	if res.TreeLift() >= res.LRLift() {
		t.Errorf("tree lift %.3f should trail LR lift %.3f (Section 5.2)",
			res.TreeLift(), res.LRLift())
	}
	if !strings.Contains(res.Render(), "decision tree") {
		t.Error("render missing rows")
	}
}

func TestVerifyClaimsAllPass(t *testing.T) {
	res, err := VerifyClaims()
	if err != nil {
		t.Fatalf("VerifyClaims: %v", err)
	}
	if len(res.Claims) < 10 {
		t.Fatalf("scorecard has only %d claims", len(res.Claims))
	}
	for _, c := range res.Claims {
		if !c.Pass {
			t.Errorf("claim failed: %s — %s (%s)", c.Source, c.Statement, c.Evidence)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "scorecard") || !strings.Contains(out, "PASS") {
		t.Error("render malformed")
	}
	if res.Passed() != len(res.Claims) {
		t.Errorf("passed %d of %d", res.Passed(), len(res.Claims))
	}
}

func TestRenderSmoke(t *testing.T) {
	// All Render methods must produce non-empty output containing their
	// figure labels (cheap smoke test for the text-report path).
	sweeps, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sweeps {
		if !strings.Contains(s.Render(), "Figure 9") {
			t.Error("figure 9 render missing title")
		}
	}
	f16, err := Figure16()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f16.Render(), "pre-materialized") {
		t.Error("figure 16 render wrong")
	}
	t3, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t3.Render(), "read images") {
		t.Error("table 3 render wrong")
	}
}
