package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/plan"
	"repro/internal/sim"
)

// SweepPoint is one x-position of a runtime sweep: minutes per series, with
// "×" rendered for crashes.
type SweepPoint struct {
	X      string
	Series map[string]sim.Result
}

// SweepResult is a generic sweep figure (Figures 9–11 panels).
type SweepResult struct {
	Title  string
	Series []string
	Points []SweepPoint
}

// Render prints the sweep as a table, one row per x-position.
func (r *SweepResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Title + "\n\n")
	t := &table{header: append([]string{"x"}, r.Series...)}
	for _, p := range r.Points {
		row := []string{p.X}
		for _, s := range r.Series {
			row = append(row, fmtCell(p.Series[s]))
		}
		t.add(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

// Get returns one series value at one x, or a crash result if absent.
func (r *SweepResult) Get(x, series string) sim.Result {
	for _, p := range r.Points {
		if p.X == x {
			if v, ok := p.Series[series]; ok {
				return v
			}
		}
	}
	return sim.Result{Crash: fmt.Errorf("experiments: no point %q/%q", x, series)}
}

// logicalCombos are Figure 9's four series.
var logicalCombos = []struct {
	name      string
	kind      plan.Kind
	placement plan.JoinPlacement
}{
	{"Eager/BJ", plan.Eager, plan.BeforeJoin},
	{"Eager/AJ", plan.Eager, plan.AfterJoin},
	{"Staged/BJ", plan.Staged, plan.BeforeJoin},
	{"Staged/AJ", plan.Staged, plan.AfterJoin},
}

// drilldownStorage caps per-node Storage Memory in the Section 5.3
// drill-downs, matching the paper's fixed setup ("fix cpu to 4, and fix
// Core Memory to 60% of JVM heap" — which leaves roughly this much heap for
// cached partitions). The cap is what makes Eager's intermediate blow-up
// visible as spills at higher data scales (Figure 9(3,4)).
const drilldownStorage = int64(9.5 * (1 << 30))

// drilldownConfig builds the Section 5.3 configuration for a workload.
func drilldownConfig(w sim.Workload) sim.Config {
	cfg := sim.TunedBaseline(w, 4)
	if cfg.Apportion.Storage > drilldownStorage {
		cfg.Apportion.Storage = drilldownStorage
	}
	cfg.Join = dataflow.ShuffleJoin
	cfg.Pers = dataflow.Deserialized
	return cfg
}

// runCombo simulates one logical-plan combination under the paper's fixed
// drill-down configuration.
func runCombo(model string, k int, ds sim.DatasetSpec, kind plan.Kind, placement plan.JoinPlacement) (sim.Result, error) {
	w, err := sim.NewWorkload(sim.WorkloadSpec{ModelName: model, NumLayers: k, Dataset: ds,
		PlanKind: kind, Placement: placement})
	if err != nil {
		return sim.Result{}, err
	}
	return sim.Run(w, drilldownConfig(w), sim.PaperCluster()), nil
}

// Figure9 reproduces the logical-plan drill-down: Eager vs Staged × BJ vs AJ
// against the number of layers explored (panels 1–2) and the data scale
// (panels 3–4), for AlexNet and ResNet50.
func Figure9() ([]*SweepResult, error) {
	var out []*SweepResult

	// Panels 1–2: vary |L| at 2X scale.
	for _, model := range []string{"alexnet", "resnet50"} {
		sw := &SweepResult{Title: fmt.Sprintf("Figure 9(%s/2X): runtime (min) vs #layers", model)}
		for _, c := range logicalCombos {
			sw.Series = append(sw.Series, c.name)
		}
		maxK := layersFor(model)
		for k := 1; k <= maxK; k++ {
			p := SweepPoint{X: fmt.Sprintf("%dL", k), Series: map[string]sim.Result{}}
			for _, c := range logicalCombos {
				r, err := runCombo(model, k, sim.FoodsSpec().Scale(2), c.kind, c.placement)
				if err != nil {
					return nil, err
				}
				p.Series[c.name] = r
			}
			sw.Points = append(sw.Points, p)
		}
		out = append(out, sw)
	}

	// Panels 3–4: vary data scale at full |L|.
	for _, model := range []string{"alexnet", "resnet50"} {
		k := layersFor(model)
		sw := &SweepResult{Title: fmt.Sprintf("Figure 9(%s/%dL): runtime (min) vs data scale", model, k)}
		for _, c := range logicalCombos {
			sw.Series = append(sw.Series, c.name)
		}
		for _, scale := range []float64{1, 2, 4, 8} {
			p := SweepPoint{X: fmt.Sprintf("%.0fX", scale), Series: map[string]sim.Result{}}
			for _, c := range logicalCombos {
				r, err := runCombo(model, k, sim.FoodsSpec().Scale(scale), c.kind, c.placement)
				if err != nil {
					return nil, err
				}
				p.Series[c.name] = r
			}
			sw.Points = append(sw.Points, p)
		}
		out = append(out, sw)
	}
	return out, nil
}

// physicalCombos are Figure 10's four series.
var physicalCombos = []struct {
	name string
	join dataflow.JoinKind
	pers dataflow.PersistFormat
}{
	{"Shuffle/Deser.", dataflow.ShuffleJoin, dataflow.Deserialized},
	{"Shuffle/Ser.", dataflow.ShuffleJoin, dataflow.Serialized},
	{"Broad./Deser.", dataflow.BroadcastJoin, dataflow.Deserialized},
	{"Broad./Ser.", dataflow.BroadcastJoin, dataflow.Serialized},
}

// runPhysical simulates Staged/AJ under one physical choice with the
// Section 5.3 drill-down configuration.
func runPhysical(model string, k int, ds sim.DatasetSpec, join dataflow.JoinKind, pers dataflow.PersistFormat) (sim.Result, error) {
	w, err := vistaWorkload(model, k, ds, 8, false)
	if err != nil {
		return sim.Result{}, err
	}
	cfg := drilldownConfig(w)
	cfg.Join = join
	cfg.Pers = pers
	return sim.Run(w, cfg, sim.PaperCluster()), nil
}

// Figure10 reproduces the physical-plan drill-down: Shuffle vs Broadcast ×
// Serialized vs Deserialized against data scale (panels 1–2) and the number
// of structured features (panels 3–4, at 8X scale, where Broadcast
// eventually crashes).
func Figure10() ([]*SweepResult, error) {
	var out []*SweepResult
	for _, model := range []string{"alexnet", "resnet50"} {
		k := layersFor(model)
		sw := &SweepResult{Title: fmt.Sprintf("Figure 10(%s/%dL): runtime (min) vs data scale", model, k)}
		for _, c := range physicalCombos {
			sw.Series = append(sw.Series, c.name)
		}
		for _, scale := range []float64{1, 2, 4, 8} {
			p := SweepPoint{X: fmt.Sprintf("%.0fX", scale), Series: map[string]sim.Result{}}
			for _, c := range physicalCombos {
				r, err := runPhysical(model, k, sim.FoodsSpec().Scale(scale), c.join, c.pers)
				if err != nil {
					return nil, err
				}
				p.Series[c.name] = r
			}
			sw.Points = append(sw.Points, p)
		}
		out = append(out, sw)
	}
	for _, model := range []string{"alexnet", "resnet50"} {
		k := layersFor(model)
		sw := &SweepResult{Title: fmt.Sprintf("Figure 10(%s/%dL/8X): runtime (min) vs #structured features", model, k)}
		for _, c := range physicalCombos {
			sw.Series = append(sw.Series, c.name)
		}
		for _, dim := range []int{10, 100, 1000, 10000} {
			ds := sim.FoodsSpec().Scale(8).WithStructDim(dim)
			p := SweepPoint{X: fmt.Sprintf("%d", dim), Series: map[string]sim.Result{}}
			for _, c := range physicalCombos {
				r, err := runPhysical(model, k, ds, c.join, c.pers)
				if err != nil {
					return nil, err
				}
				p.Series[c.name] = r
			}
			sw.Points = append(sw.Points, p)
		}
		out = append(out, sw)
	}
	return out, nil
}
