package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dataflow"
	"repro/internal/memory"
	"repro/internal/ml"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// Figure8Entry is one bar of Figure 8: the downstream test F1 for one
// feature set.
type Figure8Entry struct {
	FeatureSet string // "struct", "struct+HOG", "struct+<layer>"
	F1         float64
}

// Figure8Panel is one of the figure's four panels.
type Figure8Panel struct {
	Dataset string
	Model   string
	Entries []Figure8Entry
}

// Figure8Result holds all four panels.
type Figure8Result struct {
	Panels []Figure8Panel
	// Rows is the dataset size used (the paper trains on Foods and a 20k
	// Amazon sample; this harness defaults to a smaller sample so the real
	// engine finishes quickly — pass rows explicitly for full fidelity).
	Rows int
}

// Figure8Options sizes the experiment.
type Figure8Options struct {
	// Rows per dataset (0 = 2000, enough for stable F1 ordering).
	Rows int
	// Seed for data generation and CNN weights.
	Seed int64
}

// Figure8 reproduces the accuracy experiment on the real engine: logistic
// regression with elastic net (α = 0.5, λ = 0.01) trained on structured
// features alone, structured+HOG, and structured+CNN features from every
// explored layer of the (Tiny) AlexNet and ResNet50, on both synthetic
// datasets. The expected shape: image features help, CNN features beat HOG.
func Figure8(opts Figure8Options) (*Figure8Result, error) {
	if opts.Rows <= 0 {
		opts.Rows = 2000
	}
	if opts.Seed == 0 {
		opts.Seed = 7
	}
	res := &Figure8Result{Rows: opts.Rows}
	for _, dsSpec := range []data.Spec{data.Foods(), data.Amazon()} {
		spec := dsSpec.WithRows(opts.Rows)
		structRows, imageRows, err := data.Generate(spec)
		if err != nil {
			return nil, err
		}
		for _, model := range []string{"tiny-resnet50", "tiny-alexnet"} {
			panel, err := figure8Panel(spec, structRows, imageRows, model, opts.Seed)
			if err != nil {
				return nil, err
			}
			res.Panels = append(res.Panels, *panel)
		}
	}
	return res, nil
}

func figure8Panel(spec data.Spec, structRows, imageRows []dataflow.Row, model string, seed int64) (*Figure8Panel, error) {
	panel := &Figure8Panel{Dataset: spec.Name, Model: model}
	cfg := ml.DefaultLogRegConfig()
	cfg.Iterations = 30 // more than the paper's 10: small samples need them
	const testFraction = 0.2

	// struct only.
	train, test := ml.SplitByID(structRows, testFraction)
	m, err := ml.TrainLogRegRows(train, ml.StructuredOnly(), spec.StructDim, cfg)
	if err != nil {
		return nil, err
	}
	met, err := ml.Evaluate(m, test, ml.StructuredOnly())
	if err != nil {
		return nil, err
	}
	panel.Entries = append(panel.Entries, Figure8Entry{FeatureSet: "struct", F1: met.F1})

	// struct + HOG.
	hogRows, hogDim, err := hogAugmented(structRows, imageRows)
	if err != nil {
		return nil, err
	}
	trainH, testH := ml.SplitByID(hogRows, testFraction)
	mh, err := ml.TrainLogRegRows(trainH, ml.StructuredPlusFeature(0), spec.StructDim+hogDim, cfg)
	if err != nil {
		return nil, err
	}
	metH, err := ml.Evaluate(mh, testH, ml.StructuredPlusFeature(0))
	if err != nil {
		return nil, err
	}
	panel.Entries = append(panel.Entries, Figure8Entry{FeatureSet: "struct+HOG", F1: metH.F1})

	// struct + CNN layers, via the full Vista pipeline.
	runSpec := core.Spec{
		Nodes: 2, CoresPerNode: 4, MemPerNode: memory.GB(32),
		SystemKind: memory.SparkLike,
		ModelName:  model, NumLayers: layersFor(model),
		Downstream: core.DownstreamSpec{Kind: core.LogisticRegression, LogReg: cfg, TestFraction: testFraction},
		StructRows: structRows, ImageRows: imageRows,
		Seed: seed, PlanKind: plan.Staged, Placement: plan.AfterJoin,
	}
	out, err := core.Run(runSpec)
	if err != nil {
		return nil, err
	}
	for _, lr := range out.Layers {
		panel.Entries = append(panel.Entries, Figure8Entry{
			FeatureSet: "struct+" + lr.LayerName, F1: lr.Test.F1})
	}
	return panel, nil
}

// hogAugmented appends each image's HOG vector as feature tensor 0. Coarse
// 32-pixel cells keep the HOG dimensionality (36 for 64×64 images)
// proportionate to the sample sizes this harness trains on — roughly the
// cells-per-image ratio the standard 8-pixel cells give at the paper's
// 227×227 resolution.
func hogAugmented(structRows, imageRows []dataflow.Row) ([]dataflow.Row, int, error) {
	cfg := data.HOGConfig{CellSize: 32, Bins: 9}
	out := make([]dataflow.Row, len(structRows))
	dim := 0
	for i := range structRows {
		img, err := tensor.Decode(imageRows[i].Image)
		if err != nil {
			return nil, 0, err
		}
		feats, err := data.HOG(img, cfg)
		if err != nil {
			return nil, 0, err
		}
		dim = len(feats)
		r := structRows[i].Clone()
		r.Features = tensor.NewTensorList(tensor.MustFromSlice(feats, len(feats)))
		out[i] = r
	}
	return out, dim, nil
}

// Render prints all panels.
func (r *Figure8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: downstream test F1 by feature set (%d rows per dataset)\n\n", r.Rows)
	for _, p := range r.Panels {
		t := &table{header: []string{p.Dataset + "/" + p.Model, "F1 (%)"}}
		for _, e := range p.Entries {
			t.add(e.FeatureSet, fmt.Sprintf("%.1f", e.F1*100))
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Best returns the highest-F1 entry of a panel.
func (p *Figure8Panel) Best() Figure8Entry {
	best := p.Entries[0]
	for _, e := range p.Entries[1:] {
		if e.F1 > best.F1 {
			best = e
		}
	}
	return best
}

// Entry returns the named feature set's entry, or nil.
func (p *Figure8Panel) Entry(featureSet string) *Figure8Entry {
	for i := range p.Entries {
		if p.Entries[i].FeatureSet == featureSet {
			return &p.Entries[i]
		}
	}
	return nil
}
