package experiments

import (
	"fmt"
	"strings"

	"repro/internal/plan"
	"repro/internal/sim"
)

// Figure7AResult is the single-node GPU comparison (Foods, all CNNs,
// Lazy-5/Lazy-7/Eager/Vista).
type Figure7AResult struct {
	Cells []Figure6Cell // reuse the cell shape; System is "spark-gpu"
}

// Figure7A reproduces the GPU experiment: a 12 GB Titan X workstation where
// Lazy-5/Lazy-7 crash for VGG16 (Equation 15) and Eager pays heavy spills on
// ResNet50.
func Figure7A() (*Figure7AResult, error) {
	prof := sim.SingleNodeGPU()
	res := &Figure7AResult{}
	ds := sim.FoodsSpec()
	for _, model := range Models {
		k := layersFor(model)
		lazyW, err := sim.NewWorkload(sim.WorkloadSpec{ModelName: model, NumLayers: k, Dataset: ds,
			PlanKind: plan.Lazy, Placement: plan.BeforeJoin, Nodes: 1, MemGPU: prof.GPU.MemBytes})
		if err != nil {
			return nil, err
		}
		for _, cpu := range []int{5, 7} {
			res.Cells = append(res.Cells, Figure6Cell{System: "spark-gpu", Dataset: ds.Name,
				Model: model, Approach: fmt.Sprintf("Lazy-%d", cpu),
				Result: sim.Run(lazyW, sim.BaselineSpark(cpu), prof)})
		}
		eagerW, err := sim.NewWorkload(sim.WorkloadSpec{ModelName: model, NumLayers: k, Dataset: ds,
			PlanKind: plan.Eager, Placement: plan.BeforeJoin, Nodes: 1, MemGPU: prof.GPU.MemBytes})
		if err != nil {
			return nil, err
		}
		// The workstation has less headroom; Eager runs deserialized at 4
		// threads as the paper's tuned baseline does on this box.
		eagerCfg := sim.TunedBaseline(eagerW, 4)
		res.Cells = append(res.Cells, Figure6Cell{System: "spark-gpu", Dataset: ds.Name,
			Model: model, Approach: "Eager", Result: sim.Run(eagerW, eagerCfg, prof)})

		vistaW, err := sim.NewWorkload(sim.WorkloadSpec{ModelName: model, NumLayers: k, Dataset: ds,
			PlanKind: plan.Staged, Placement: plan.AfterJoin, Nodes: 1, MemGPU: prof.GPU.MemBytes})
		if err != nil {
			return nil, err
		}
		vr := sim.Result{Crash: fmt.Errorf("no config")}
		if cfg, err := sim.VistaConfig(vistaW); err == nil {
			vr = sim.Run(vistaW, cfg, prof)
		}
		res.Cells = append(res.Cells, Figure6Cell{System: "spark-gpu", Dataset: ds.Name,
			Model: model, Approach: "Vista", Result: vr})
	}
	return res, nil
}

// Render prints the GPU grid.
func (r *Figure7AResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7(A): single-node GPU, Foods (minutes; × = crash)\n\n")
	t := &table{header: []string{"model", "Lazy-5", "Lazy-7", "Eager", "Vista"}}
	for _, model := range Models {
		row := []string{model}
		for _, approach := range []string{"Lazy-5", "Lazy-7", "Eager", "Vista"} {
			cell := "?"
			for _, c := range r.Cells {
				if c.Model == model && c.Approach == approach {
					cell = fmtCell(c.Result)
				}
			}
			row = append(row, cell)
		}
		t.add(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

// Find returns the cell for the given model/approach, or nil.
func (r *Figure7AResult) Find(model, approach string) *Figure6Cell {
	for i := range r.Cells {
		if r.Cells[i].Model == model && r.Cells[i].Approach == approach {
			return &r.Cells[i]
		}
	}
	return nil
}

// Figure7BPoint is one x-position of Figure 7(B): runtimes for exploring the
// last n layers of ResNet50 on Foods.
type Figure7BPoint struct {
	Layers     int
	TFTBeamMin float64
	VistaMin   float64
}

// Figure7BResult compares TFT+Beam (an Eager-equivalent pipeline on a
// Flink-like engine, training a distributed MLP) against Vista.
type Figure7BResult struct {
	Points []Figure7BPoint
}

// Figure7B reproduces the TFT+Beam comparison: extracting all layers in one
// go is competitive for |L| = 1 but falls behind as more layers are explored
// and memory pressure forces spills.
func Figure7B() (*Figure7BResult, error) {
	res := &Figure7BResult{}
	ds := sim.FoodsSpec()
	for k := 1; k <= 5; k++ {
		// TFT+Beam: Eager-style extraction on the Flink profile with the
		// paper's hand-tuned working configuration (parallelism 32 over 8
		// nodes = 4 per node, 25 GB heap).
		tftW, err := sim.NewWorkload(sim.WorkloadSpec{ModelName: "resnet50", NumLayers: k,
			Dataset: ds, PlanKind: plan.Eager, Placement: plan.AfterJoin, MLPDownstream: true})
		if err != nil {
			return nil, err
		}
		tftCfg := sim.TunedBaseline(tftW, 4)
		// The paper's hand-tuned Flink configuration (25 GB heap, 60% User
		// Memory fraction) leaves little headroom for cached intermediates
		// — the memory pressure that "causes costly disk spills" once more
		// layers are extracted in one go.
		if cap := int64(1.5 * (1 << 30)); tftCfg.Apportion.Storage > cap {
			tftCfg.Apportion.Storage = cap
		}
		tft := sim.Run(tftW, tftCfg, sim.FlinkLike())

		vistaW, err := sim.NewWorkload(sim.WorkloadSpec{ModelName: "resnet50", NumLayers: k,
			Dataset: ds, PlanKind: plan.Staged, Placement: plan.AfterJoin, MLPDownstream: true})
		if err != nil {
			return nil, err
		}
		cfg, err := sim.VistaConfig(vistaW)
		if err != nil {
			return nil, err
		}
		vista := sim.Run(vistaW, cfg, sim.PaperCluster())
		if tft.Crash != nil || vista.Crash != nil {
			return nil, fmt.Errorf("experiments: figure 7B crash at k=%d: %v / %v", k, tft.Crash, vista.Crash)
		}
		res.Points = append(res.Points, Figure7BPoint{Layers: k,
			TFTBeamMin: tft.TotalMin(), VistaMin: vista.TotalMin()})
	}
	return res, nil
}

// Render prints the series.
func (r *Figure7BResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7(B): TFT+Beam(Flink) vs Vista, Foods/ResNet50, varying layers (minutes)\n\n")
	t := &table{header: []string{"layers", "TFT+Beam", "Vista"}}
	for _, p := range r.Points {
		t.add(fmt.Sprintf("%d", p.Layers), fmt.Sprintf("%.1f", p.TFTBeamMin), fmt.Sprintf("%.1f", p.VistaMin))
	}
	b.WriteString(t.String())
	return b.String()
}
