package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/memory"
	"repro/internal/obs"
)

// AdmissionPoint is one budget setting of the admission-throughput sweep:
// the same request flood replayed against one controller budget.
type AdmissionPoint struct {
	// Label names the budget as a multiple of one run's admission cost
	// ("1x", "2x", "4x", "unlimited").
	Label string
	// BudgetBytes is the controller's modeled-memory budget.
	BudgetBytes int64
	// Requests, Admitted, and Rejected partition the flood's outcomes.
	Requests, Admitted, Rejected int
	// ElapsedSec is wall-clock time for the whole flood to drain.
	ElapsedSec float64
	// RunsPerSec is admitted-and-completed runs per second of wall clock.
	RunsPerSec float64
	// P99WaitMs is the 99th-percentile admission queue wait, from the
	// vista_admission_queue_wait_seconds histogram.
	P99WaitMs float64
}

// AdmissionResult is the "throughput under admission control" exhibit: the
// same parallel /run flood priced by the Section 4.1 memory model and
// replayed at increasing budgets. Tight budgets serialize runs (low
// throughput, long queue waits); once the budget covers the whole flood the
// controller stops being the bottleneck.
type AdmissionResult struct {
	// RunCostBytes is the admission price of one request (Equations 9-15
	// peak, summed over nodes).
	RunCostBytes int64
	// Rows and Parallel describe the workload: Parallel concurrent runs of
	// Rows rows each.
	Rows, Parallel int
	Points         []AdmissionPoint
}

// admissionSpec builds the core.Spec one flood request executes: the same
// defaults vista-server applies to a POST /run body.
func admissionSpec(rows int, seed int64) (core.Spec, error) {
	structRows, imageRows, err := data.Generate(data.Foods().WithRows(rows))
	if err != nil {
		return core.Spec{}, err
	}
	return core.Spec{
		Nodes: 2, CoresPerNode: 4,
		MemPerNode: memory.GB(32),
		SystemKind: memory.SparkLike,
		ModelName:  "tiny-alexnet", NumLayers: 2,
		Downstream: core.DefaultDownstream(),
		StructRows: structRows, ImageRows: imageRows,
		Seed: seed,
	}, nil
}

// AdmissionThroughput measures end-to-end /run throughput and p99 queue
// wait as the admission budget grows from "one run at a time" to
// effectively unlimited. rows <= 0 picks a default sized so the whole
// sweep stays under about a minute.
func AdmissionThroughput(rows int) (*AdmissionResult, error) {
	if rows <= 0 {
		rows = 48
	}
	const parallel = 12

	// Each concurrent request gets its own dataset (as the server's
	// handleRun generates per request); seeds differ so the floods are not
	// byte-identical, but the price is row-count driven and shared.
	specs := make([]core.Spec, parallel)
	for i := range specs {
		spec, err := admissionSpec(rows, int64(100+i))
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}
	cost, err := core.Price(specs[0])
	if err != nil {
		return nil, err
	}

	res := &AdmissionResult{RunCostBytes: cost, Rows: rows, Parallel: parallel}
	budgets := []struct {
		label string
		bytes int64
	}{
		{"1x", cost},
		{"2x", 2 * cost},
		{"4x", 4 * cost},
		{"unlimited", int64(parallel) * cost},
	}
	for _, b := range budgets {
		pt, err := admissionFlood(specs, b.label, b.bytes, cost)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, *pt)
	}
	return res, nil
}

// admissionFlood replays the request set against one controller budget and
// reports throughput plus queue-wait tail.
func admissionFlood(specs []core.Spec, label string, budget, cost int64) (*AdmissionPoint, error) {
	reg := obs.NewRegistry()
	ctrl, err := admission.New(admission.Config{
		BudgetBytes:  budget,
		QueueDepth:   len(specs),
		QueueTimeout: 5 * time.Minute,
		Metrics:      reg,
	})
	if err != nil {
		return nil, err
	}

	var (
		wg                 sync.WaitGroup
		mu                 sync.Mutex
		admitted, rejected int
		firstErr           error
	)
	start := time.Now()
	for i := range specs {
		wg.Add(1)
		go func(spec core.Spec) {
			defer wg.Done()
			grant, aerr := ctrl.Admit(context.Background(), cost)
			if aerr != nil {
				mu.Lock()
				rejected++
				mu.Unlock()
				return
			}
			defer grant.Release()
			_, rerr := core.RunContext(context.Background(), spec)
			mu.Lock()
			defer mu.Unlock()
			if rerr != nil {
				if firstErr == nil {
					firstErr = rerr
				}
				return
			}
			admitted++
		}(specs[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, fmt.Errorf("experiments: admission flood %s: %w", label, firstErr)
	}

	pt := &AdmissionPoint{
		Label:       label,
		BudgetBytes: budget,
		Requests:    len(specs),
		Admitted:    admitted,
		Rejected:    rejected,
		ElapsedSec:  elapsed.Seconds(),
	}
	if elapsed > 0 {
		pt.RunsPerSec = float64(admitted) / elapsed.Seconds()
	}
	if h := reg.FindHistogram("vista_admission_queue_wait_seconds"); h != nil {
		if q, ok := h.Quantile(0.99); ok {
			pt.P99WaitMs = q * 1000
		}
	}
	// The flood must drain the pool completely; a leak here would also
	// leak in the server.
	if st := ctrl.Stats(); st.InFlightBytes != 0 || st.InFlightRuns != 0 || st.QueueDepth != 0 {
		return nil, fmt.Errorf("experiments: admission flood %s left charges in flight: %+v", label, st)
	}
	return pt, nil
}

// fmtGiB renders a byte count as binary gigabytes for the text table.
func fmtGiB(b int64) string { return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30)) }

// Render prints the sweep as a text table.
func (r *AdmissionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Throughput under admission control — %d parallel runs of %d rows, run cost %s modeled\n",
		r.Parallel, r.Rows, fmtGiB(r.RunCostBytes))
	fmt.Fprintf(&b, "%-10s %12s %9s %9s %11s %8s %14s\n",
		"budget", "bytes", "admitted", "rejected", "elapsed(s)", "runs/s", "p99 wait(ms)")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10s %12s %9d %9d %11.2f %8.2f %14.1f\n",
			p.Label, fmtGiB(p.BudgetBytes), p.Admitted, p.Rejected,
			p.ElapsedSec, p.RunsPerSec, p.P99WaitMs)
	}
	return b.String()
}

// CSV implements CSVExporter: one row per budget point.
func (r *AdmissionResult) CSV() ([]string, [][]string) {
	header := []string{"budget", "budget_bytes", "requests", "admitted", "rejected",
		"elapsed_sec", "runs_per_sec", "p99_queue_wait_ms"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Label,
			fmt.Sprintf("%d", p.BudgetBytes),
			fmt.Sprintf("%d", p.Requests),
			fmt.Sprintf("%d", p.Admitted),
			fmt.Sprintf("%d", p.Rejected),
			f2s(p.ElapsedSec),
			f2s(p.RunsPerSec),
			f2s(p.P99WaitMs),
		})
	}
	return header, rows
}
