package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cnn"
	"repro/internal/data"
	"repro/internal/dataflow"
	"repro/internal/dl"
	"repro/internal/memory"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sim"
)

// Figure15Row validates Equation 16 for one model: the estimated size of the
// largest staged intermediate table against the real engine's measured
// deserialized and serialized footprints (Appendix A, Figure 15).
type Figure15Row struct {
	Model string
	Rows  int
	// EstimateBytes is the Equation 16 upper bound (α = 2).
	EstimateBytes int64
	// ActualDeserBytes is the measured in-memory footprint of the real
	// stage table (raw carry + pooled feature) on the dataflow engine.
	ActualDeserBytes int64
	// ActualSerBytes is the measured flate-compressed footprint.
	ActualSerBytes int64
}

// Figure15Result holds one row per executable model.
type Figure15Result struct {
	Rows []Figure15Row
}

// Figure15 runs a real inference pass per Tiny model and measures the
// largest staged intermediate table, comparing against the Equation 16
// estimate. The paper's claims to check: estimates are safe upper bounds for
// deserialized data, and serialized data is smaller.
func Figure15(rows int) (*Figure15Result, error) {
	if rows <= 0 {
		rows = 300
	}
	res := &Figure15Result{}
	for _, modelName := range []string{"tiny-alexnet", "tiny-vgg16", "tiny-resnet50"} {
		row, err := figure15Row(modelName, rows)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func figure15Row(modelName string, rows int) (*Figure15Row, error) {
	spec := data.Foods().WithRows(rows)
	structRows, imageRows, err := data.Generate(spec)
	if err != nil {
		return nil, err
	}
	model, err := cnn.ByName(modelName)
	if err != nil {
		return nil, err
	}
	stats, err := cnn.ComputeStats(model)
	if err != nil {
		return nil, err
	}

	engine, err := dataflow.NewEngine(dataflow.Config{
		Nodes: 2, CoresPerNode: 2, Kind: memory.SparkLike,
		Apportion: memory.Apportionment{
			DLExecution: memory.GB(1), User: memory.GB(1),
			Core: memory.GB(1), Storage: memory.GB(2),
		},
	})
	if err != nil {
		return nil, err
	}
	defer engine.Close()
	session, err := dl.NewSession(engine, model, dl.Options{Seed: 11})
	if err != nil {
		return nil, err
	}
	defer session.Close()

	tstr, err := engine.CreateTable("tstr", structRows, 4)
	if err != nil {
		return nil, err
	}
	timg, err := engine.CreateTable("timg", imageRows, 4)
	if err != nil {
		return nil, err
	}
	joined, err := engine.Join("joined", tstr, timg, dataflow.ShuffleJoin)
	if err != nil {
		return nil, err
	}

	// The largest staged table is the bottom-most selected layer's stage:
	// pooled feature + raw carry (Figure 5(E)'s T1).
	base := model.FeatureLayers[len(model.FeatureLayers)-layersFor(modelName)]
	udf, err := session.PartitionFunc(dl.InferenceSpec{
		From: 0, FromImage: true,
		EmitLayers: []int{base.LayerIndex},
		KeepRawAt:  base.LayerIndex,
		DropInput:  true,
	})
	if err != nil {
		return nil, err
	}
	stage, err := engine.MapPartitions("stage1", joined, udf)
	if err != nil {
		return nil, err
	}
	deser := stage.MemBytes()
	var ser int64
	all, err := engine.Collect(stage)
	if err != nil {
		return nil, err
	}
	blob, err := dataflow.EncodeRows(all)
	if err != nil {
		return nil, err
	}
	ser = int64(len(blob))

	ls, err := stats.LayerStat(base.Name)
	if err != nil {
		return nil, err
	}
	est := optimizer.EstimateTableSize(rows, ls.RawElems+ls.FeatureDim, spec.StructDim,
		optimizer.DefaultParams().Alpha)
	return &Figure15Row{Model: modelName, Rows: rows,
		EstimateBytes: est, ActualDeserBytes: deser, ActualSerBytes: ser}, nil
}

// Render prints the size comparison.
func (r *Figure15Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 15: size of largest intermediate table — Equation 16 estimate vs measured\n\n")
	t := &table{header: []string{"model", "rows", "estimate", "deserialized", "serialized"}}
	for _, row := range r.Rows {
		t.add(row.Model, fmt.Sprintf("%d", row.Rows),
			memory.FormatBytes(row.EstimateBytes),
			memory.FormatBytes(row.ActualDeserBytes),
			memory.FormatBytes(row.ActualSerBytes))
	}
	b.WriteString(t.String())
	return b.String()
}

// Table2Row is one model's pre-materialized feature-layer sizes (Appendix B,
// Table 2; Foods dataset).
type Table2Row struct {
	Model string
	// SizesGB maps "1st"/"2nd"/"4th"/"5th" (from the top) to the stored
	// feature-table size in GB.
	SizesGB map[string]float64
}

// Table2Result reproduces Table 2.
type Table2Result struct {
	Rows        []Table2Row
	RawImagesGB float64
}

// Table2 computes the pre-materialized layer sizes for the Foods dataset
// from the roster statistics: raw feature bytes per row × 20k rows, stored
// serialized (feature tensors compress well; AlexNet's features are ~13%
// nonzero, VGG16's and ResNet50's ~36%, Appendix A).
func Table2() (*Table2Result, error) {
	ds := sim.FoodsSpec()
	res := &Table2Result{RawImagesGB: float64(ds.Rows) * float64(ds.ImageRowBytes) / 1e9}
	positions := map[string]int{"1st": 1, "2nd": 2, "4th": 4, "5th": 5}
	for _, modelName := range Models {
		m, err := cnn.ByName(modelName)
		if err != nil {
			return nil, err
		}
		stats, err := cnn.ComputeStats(m)
		if err != nil {
			return nil, err
		}
		row := Table2Row{Model: modelName, SizesGB: map[string]float64{}}
		n := len(stats.FeatureLayers)
		for label, pos := range positions {
			if pos > n {
				continue
			}
			ls := stats.FeatureLayers[n-pos]
			stored := float64(ls.RawBytes) * float64(ds.Rows) / sparsityCompression(modelName)
			row.SizesGB[label] = stored / 1e9
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// sparsityCompression is the serialized compression feature tensors achieve,
// driven by their post-ReLU sparsity (Appendix A: "AlexNet features had only
// 13.0% non-zero values while VGG16's and ResNet50's had 36.1% and 35.7%").
func sparsityCompression(model string) float64 {
	switch {
	case strings.Contains(model, "alexnet"):
		return 4.8
	case strings.Contains(model, "vgg16"):
		return 1.7
	case strings.Contains(model, "resnet50"):
		return 1.4
	}
	return 2.2
}

// Render prints Table 2.
func (r *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: sizes of pre-materialized feature layers, Foods (raw images: %.2f GB)\n\n", r.RawImagesGB)
	t := &table{header: []string{"model", "1st", "2nd", "4th", "5th"}}
	for _, row := range r.Rows {
		cells := []string{row.Model}
		for _, pos := range []string{"1st", "2nd", "4th", "5th"} {
			if v, ok := row.SizesGB[pos]; ok {
				cells = append(cells, fmt.Sprintf("%.2f", v))
			} else {
				cells = append(cells, "-")
			}
		}
		t.add(cells...)
	}
	b.WriteString(t.String())
	return b.String()
}

// Figure16Series is one model's pre-materialization comparison: runtime with
// and without a pre-materialized base, plus the materialization cost itself,
// for varying |L|.
type Figure16Series struct {
	Model string
	// Points maps "|L|L" to (materialization, without, with) minutes.
	Points []Figure16Point
}

// Figure16Point is one bar group of Figure 16.
type Figure16Point struct {
	Layers             int
	MaterializationMin float64
	WithoutPreMatMin   float64
	WithPreMatMin      float64
}

// Figure16Result reproduces Figure 16 (Appendix B).
type Figure16Result struct {
	Series []Figure16Series
}

// Figure16 compares Staged/AJ runtimes with and without pre-materializing
// the base layer, on Foods. Expected shapes: clear wins for AlexNet/VGG16;
// for ResNet50's 5-layer selection the huge conv4_6 base makes pre-mat a
// wash (Appendix B).
func Figure16() (*Figure16Result, error) {
	res := &Figure16Result{}
	for _, model := range Models {
		series := Figure16Series{Model: model}
		maxK := layersFor(model)
		for k := maxK; k >= 1; k-- {
			w, err := sim.NewWorkload(sim.WorkloadSpec{ModelName: model, NumLayers: k,
				Dataset: sim.FoodsSpec(), PlanKind: plan.Staged, Placement: plan.AfterJoin})
			if err != nil {
				return nil, err
			}
			cfg, err := sim.VistaConfig(w)
			if err != nil {
				return nil, err
			}
			without := sim.Run(w, cfg, sim.PaperCluster())

			wp, err := sim.NewWorkload(sim.WorkloadSpec{ModelName: model, NumLayers: k,
				Dataset: sim.FoodsSpec(), PlanKind: plan.Staged, Placement: plan.AfterJoin, PreMat: true})
			if err != nil {
				return nil, err
			}
			with := sim.Run(wp, cfg, sim.PaperCluster())
			mat := sim.PreMaterializationCost(wp, cfg, sim.PaperCluster())
			if without.Crash != nil || with.Crash != nil || mat.Crash != nil {
				return nil, fmt.Errorf("experiments: figure 16 crash (%s/%dL)", model, k)
			}
			series.Points = append(series.Points, Figure16Point{
				Layers:             k,
				MaterializationMin: mat.TotalMin(),
				WithoutPreMatMin:   without.TotalMin(),
				WithPreMatMin:      with.TotalMin(),
			})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Render prints Figure 16.
func (r *Figure16Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 16: runtimes with pre-materialized base layer, Foods (minutes)\n\n")
	for _, s := range r.Series {
		t := &table{header: []string{s.Model, "materialization", "without pre-mat", "with pre-mat"}}
		for _, p := range s.Points {
			t.add(fmt.Sprintf("%dL", p.Layers),
				fmt.Sprintf("%.1f", p.MaterializationMin),
				fmt.Sprintf("%.1f", p.WithoutPreMatMin),
				fmt.Sprintf("%.1f", p.WithPreMatMin))
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Table3Result is the per-layer runtime breakdown (Appendix C, Table 3):
// image-read time and per-layer CNN-inference + first-LR-iteration minutes,
// for 1/2/4/8 nodes.
type Table3Result struct {
	// Breakdown[model][nodes] lists per-layer minutes, bottom layer first,
	// then the total and the image-read minutes.
	Breakdown map[string]map[int]Table3Column
	Nodes     []int
}

// Table3Column is one (model, node-count) column.
type Table3Column struct {
	// LayerMin maps the layer's name to inference+first-iteration minutes.
	LayerMin map[string]float64
	// LayerOrder lists layer names bottom-to-top.
	LayerOrder []string
	TotalMin   float64
	ReadMin    float64
}

// Table3 reproduces the runtime breakdown with Staged/AJ/Shuffle/Deser.
func Table3() (*Table3Result, error) {
	res := &Table3Result{Breakdown: map[string]map[int]Table3Column{}, Nodes: []int{1, 2, 4, 8}}
	for _, model := range Models {
		res.Breakdown[model] = map[int]Table3Column{}
		for _, nodes := range res.Nodes {
			w, err := vistaWorkload(model, layersFor(model), sim.FoodsSpec(), nodes, false)
			if err != nil {
				return nil, err
			}
			cfg, err := sim.VistaConfig(w)
			if err != nil {
				return nil, err
			}
			cfg.Join = dataflow.ShuffleJoin
			cfg.Pers = dataflow.Deserialized
			r := sim.Run(w, cfg, sim.PaperCluster().WithNodes(nodes))
			if r.Crash != nil {
				return nil, fmt.Errorf("experiments: table 3 crash (%s, %d nodes): %w", model, nodes, r.Crash)
			}
			col := Table3Column{LayerMin: map[string]float64{}, ReadMin: r.ReadSec / 60}
			for _, l := range r.Layers {
				v := (l.InferSec + l.TrainFirstSec) / 60
				col.LayerMin[l.Layer] = v
				col.LayerOrder = append(col.LayerOrder, l.Layer)
				col.TotalMin += v
			}
			res.Breakdown[model][nodes] = col
		}
	}
	return res, nil
}

// Render prints Table 3.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3: per-layer CNN inference + LR 1st iteration (minutes), Staged/AJ/Shuffle/Deser., Foods\n\n")
	for _, model := range Models {
		header := []string{model}
		for _, n := range r.Nodes {
			header = append(header, fmt.Sprintf("%d node(s)", n))
		}
		t := &table{header: header}
		order := r.Breakdown[model][r.Nodes[0]].LayerOrder
		for _, layer := range order {
			row := []string{layer}
			for _, n := range r.Nodes {
				row = append(row, fmt.Sprintf("%.2f", r.Breakdown[model][n].LayerMin[layer]))
			}
			t.add(row...)
		}
		totalRow := []string{"total"}
		readRow := []string{"read images"}
		for _, n := range r.Nodes {
			totalRow = append(totalRow, fmt.Sprintf("%.2f", r.Breakdown[model][n].TotalMin))
			readRow = append(readRow, fmt.Sprintf("%.2f", r.Breakdown[model][n].ReadMin))
		}
		t.add(totalRow...)
		t.add(readRow...)
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure17Result is the speedup drill-down of Appendix C: separate speedup
// curves for (CNN inference + LR first iteration) and for image reads.
type Figure17Result struct {
	// ComputeSpeedup and ReadSpeedup map model → per-node-count speedups
	// relative to 1 node (node counts as in Table3Result.Nodes).
	ComputeSpeedup map[string][]float64
	ReadSpeedup    map[string][]float64
	Nodes          []int
}

// Figure17 derives the drill-down from Table 3's breakdown.
func Figure17() (*Figure17Result, error) {
	t3, err := Table3()
	if err != nil {
		return nil, err
	}
	res := &Figure17Result{ComputeSpeedup: map[string][]float64{},
		ReadSpeedup: map[string][]float64{}, Nodes: t3.Nodes}
	for _, model := range Models {
		base := t3.Breakdown[model][1]
		for _, n := range t3.Nodes {
			col := t3.Breakdown[model][n]
			res.ComputeSpeedup[model] = append(res.ComputeSpeedup[model], base.TotalMin/col.TotalMin)
			res.ReadSpeedup[model] = append(res.ReadSpeedup[model], base.ReadMin/col.ReadMin)
		}
	}
	return res, nil
}

// Render prints the two speedup families.
func (r *Figure17Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 17: speedup drill-down (vs 1 node)\n\n")
	t := &table{header: []string{"CNN+LR 1st iter", "1", "2", "4", "8"}}
	for _, model := range Models {
		row := []string{model}
		for _, v := range r.ComputeSpeedup[model] {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.add(row...)
	}
	b.WriteString(t.String())
	b.WriteByte('\n')
	t = &table{header: []string{"read images", "1", "2", "4", "8"}}
	for _, model := range Models {
		row := []string{model}
		for _, v := range r.ReadSpeedup[model] {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.add(row...)
	}
	b.WriteString(t.String())
	return b.String()
}
