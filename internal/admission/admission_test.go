package admission

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// waitStat spins (no sleeps — the fake clock never moves) until pred holds
// or the test deadline kills it.
func waitStat(t *testing.T, c *Controller, pred func(Stats) bool) {
	t.Helper()
	for i := 0; ; i++ {
		if pred(c.Stats()) {
			return
		}
		if i > 1e8 {
			t.Fatalf("state never reached: %+v", c.Stats())
		}
		runtime.Gosched()
	}
}

func newTestController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	g, err := c.Admit(context.Background(), 1<<40)
	if err != nil {
		t.Fatalf("nil controller Admit: %v", err)
	}
	g.Release() // must not panic
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("nil controller stats = %+v, want zero", s)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{BudgetBytes: 0}); err == nil {
		t.Error("New accepted zero budget")
	}
	if _, err := New(Config{BudgetBytes: 10, QueueDepth: -1}); err == nil {
		t.Error("New accepted negative queue depth")
	}
}

func TestFastPathAndRelease(t *testing.T) {
	c := newTestController(t, Config{BudgetBytes: 100})
	g1, err := c.Admit(context.Background(), 60)
	if err != nil {
		t.Fatalf("Admit(60): %v", err)
	}
	g2, err := c.Admit(context.Background(), 40)
	if err != nil {
		t.Fatalf("Admit(40): %v", err)
	}
	if s := c.Stats(); s.InFlightBytes != 100 || s.InFlightRuns != 2 || s.Admitted != 2 {
		t.Errorf("stats = %+v, want 100 in-flight over 2 runs", s)
	}
	// Queue disabled (depth 0): the next request fails fast.
	if _, err := c.Admit(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Errorf("Admit over budget with no queue = %v, want ErrQueueFull", err)
	}
	g1.Release()
	g1.Release() // idempotent
	g2.Release()
	if s := c.Stats(); s.InFlightBytes != 0 || s.InFlightRuns != 0 {
		t.Errorf("stats after release = %+v, want drained", s)
	}
}

func TestOversizeNeverAdmitted(t *testing.T) {
	c := newTestController(t, Config{BudgetBytes: 100, QueueDepth: 4, QueueTimeout: time.Minute})
	if _, err := c.Admit(context.Background(), 101); !errors.Is(err, ErrOversize) {
		t.Fatalf("Admit(101/100) = %v, want ErrOversize", err)
	}
	if s := c.Stats(); s.RejectedOversize != 1 || s.QueueDepth != 0 {
		t.Errorf("stats = %+v, want one oversize rejection, empty queue", s)
	}
}

func TestQueueFIFOPromotion(t *testing.T) {
	c := newTestController(t, Config{BudgetBytes: 100, QueueDepth: 4, QueueTimeout: time.Minute})
	g, err := c.Admit(context.Background(), 60)
	if err != nil {
		t.Fatalf("Admit(60): %v", err)
	}

	// Waiter 1 (90) cannot fit beside the 60 in flight. Waiter 2 (20)
	// could — but strict FIFO forbids overtaking, so it must wait behind
	// waiter 1, and the two promote one at a time.
	order := make(chan int, 2)
	var wg sync.WaitGroup
	admitNth := func(n int, cost int64) {
		defer wg.Done()
		g, err := c.Admit(context.Background(), cost)
		if err != nil {
			t.Errorf("waiter %d: %v", n, err)
			return
		}
		order <- n
		g.Release()
	}
	wg.Add(2)
	go admitNth(1, 90)
	for c.Stats().QueueDepth != 1 {
		time.Sleep(time.Millisecond)
	}
	go admitNth(2, 20)
	for c.Stats().QueueDepth != 2 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	if s := c.Stats(); s.Admitted != 1 || s.QueueDepth != 2 {
		t.Fatalf("stats = %+v, want waiter 2 still queued behind waiter 1", s)
	}

	g.Release()
	wg.Wait()
	close(order)
	var got []int
	for n := range order {
		got = append(got, n)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("promotion order = %v, want [1 2] (strict FIFO)", got)
	}
	if s := c.Stats(); s.Admitted != 3 || s.InFlightBytes != 0 {
		t.Errorf("stats = %+v, want 3 admitted, drained", s)
	}
}

func TestQueueFull(t *testing.T) {
	c := newTestController(t, Config{BudgetBytes: 10, QueueDepth: 1, QueueTimeout: time.Minute})
	g, _ := c.Admit(context.Background(), 10)
	defer g.Release()

	release := make(chan struct{})
	go func() {
		w, err := c.Admit(context.Background(), 10)
		if err == nil {
			<-release
			w.Release()
		}
	}()
	for c.Stats().QueueDepth != 1 {
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Admit(context.Background(), 10); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Admit with full queue = %v, want ErrQueueFull", err)
	}
	if s := c.Stats(); s.RejectedQueueFull != 1 {
		t.Errorf("stats = %+v, want one queue-full rejection", s)
	}
	close(release)
	g.Release()
}

// TestQueueDeadline runs the queue-timeout path on the fake clock: the
// deadline fires exactly at QueueTimeout — not a wall-clock millisecond
// earlier or later — with no real sleeps in the test.
func TestQueueDeadline(t *testing.T) {
	fc := clock.NewFake()
	c := newTestController(t, Config{BudgetBytes: 10, QueueDepth: 2, QueueTimeout: 20 * time.Second, Clock: fc})
	g, _ := c.Admit(context.Background(), 10)
	errc := make(chan error, 1)
	go func() {
		_, err := c.Admit(context.Background(), 10)
		errc <- err
	}()
	fc.BlockUntil(1) // the waiter's deadline timer is registered

	fc.Advance(19 * time.Second)
	select {
	case err := <-errc:
		t.Fatalf("deadline fired a simulated second early: %v", err)
	default:
	}
	fc.Advance(time.Second)
	if err := <-errc; !errors.Is(err, ErrDeadline) {
		t.Fatalf("Admit = %v, want ErrDeadline", err)
	}
	if s := c.Stats(); s.RejectedDeadline != 1 || s.QueueDepth != 0 {
		t.Errorf("stats = %+v, want one deadline rejection, empty queue", s)
	}
	g.Release()
	// The abandoned waiter must not receive budget later.
	if s := c.Stats(); s.InFlightBytes != 0 {
		t.Errorf("in-flight = %d after release, want 0", s.InFlightBytes)
	}
}

// TestRetryHintVariesWithAdmissionState is the herd-bug regression test at
// the controller level: rejections observed against different admission
// states (wait history, queue occupancy) must produce different hints — a
// constant hint would re-synchronize every obedient client's retry.
func TestRetryHintVariesWithAdmissionState(t *testing.T) {
	fc := clock.NewFake()
	c := newTestController(t, Config{BudgetBytes: 10, QueueDepth: 4, QueueTimeout: 10 * time.Second, Clock: fc})

	if got := c.RetryHint(); got != time.Second {
		t.Errorf("hint with no history = %v, want the 1s floor", got)
	}

	g, err := c.Admit(context.Background(), 10)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	// Fast-path admits must not dilute the estimate: the ring only tracks
	// requests that queued, so the hint is still the floor.
	if got := c.RetryHint(); got != time.Second {
		t.Errorf("hint after a fast-path admit = %v, want the 1s floor", got)
	}

	// One full-timeout rejection: queued waits {10s}, empty queue at read
	// time -> p50/2 = 5s.
	errc := make(chan error, 1)
	go func() {
		_, err := c.Admit(context.Background(), 10)
		errc <- err
	}()
	fc.BlockUntil(1)
	fc.Advance(10 * time.Second)
	if err := <-errc; !errors.Is(err, ErrDeadline) {
		t.Fatalf("first waiter: %v, want ErrDeadline", err)
	}
	hint1 := c.RetryHint()
	if hint1 != 5*time.Second {
		t.Errorf("hint after one timeout = %v, want 5s (10s p50, empty queue)", hint1)
	}

	// Queue occupancy scales the hint up: one parked waiter in a depth-4
	// queue adds 25% -> 10s * (0.5 + 0.25) = 7.5s.
	done := make(chan struct{})
	go func() {
		g2, err := c.Admit(context.Background(), 10)
		if err != nil {
			t.Errorf("parked waiter: %v", err)
		}
		g2.Release()
		close(done)
	}()
	waitStat(t, c, func(s Stats) bool { return s.QueueDepth == 1 })
	hint2 := c.RetryHint()
	if hint2 != 7500*time.Millisecond {
		t.Errorf("hint with one queued waiter = %v, want 7.5s", hint2)
	}
	if hint1 == hint2 {
		t.Fatalf("staggered rejections got the same hint %v — the herd bug", hint1)
	}

	// A queued-then-admitted wait lands in the ring too: the parked waiter
	// is promoted after 6s, so queued waits become {10s, 6s} and the p50
	// drops to 6s -> empty queue hint 3s.
	fc.Advance(6 * time.Second)
	g.Release() // promotes the parked waiter
	<-done
	if got := c.RetryHint(); got != 3*time.Second {
		t.Errorf("hint after a 6s queued admit = %v, want 3s (p50 {6s,10s} -> 6s, empty queue)", got)
	}
}

func TestRetryHintNilController(t *testing.T) {
	var c *Controller
	if got := c.RetryHint(); got != time.Second {
		t.Errorf("nil controller hint = %v, want 1s", got)
	}
}

func TestQueueContextCancel(t *testing.T) {
	c := newTestController(t, Config{BudgetBytes: 10, QueueDepth: 2, QueueTimeout: time.Minute})
	g, _ := c.Admit(context.Background(), 10)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, 10)
		errc <- err
	}()
	for c.Stats().QueueDepth != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("Admit = %v, want context.Canceled", err)
	}
	if s := c.Stats(); s.Cancelled != 1 || s.QueueDepth != 0 {
		t.Errorf("stats = %+v, want one cancellation, empty queue", s)
	}
	g.Release()
	if s := c.Stats(); s.InFlightBytes != 0 {
		t.Errorf("in-flight = %d, want 0 (cancelled waiter must not be charged)", s.InFlightBytes)
	}
}

// TestOutcomeCountersReconcile hammers a tiny budget with concurrent
// requests under mixed timeouts and cancellations and checks the identity
// admitted + rejected + cancelled == submitted, with the budget drained.
func TestOutcomeCountersReconcile(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestController(t, Config{
		BudgetBytes:  100,
		QueueDepth:   8,
		QueueTimeout: 10 * time.Millisecond,
		Metrics:      reg,
	})
	const n = 64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%5 == 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i%7)*time.Millisecond)
				defer cancel()
			}
			g, err := c.Admit(ctx, int64(30+i%41))
			if err == nil {
				time.Sleep(time.Duration(i%3) * time.Millisecond)
				g.Release()
			}
		}(i)
	}
	wg.Wait()
	s := c.Stats()
	total := s.Admitted + s.RejectedDeadline + s.RejectedQueueFull + s.RejectedOversize + s.Cancelled
	if total != n {
		t.Errorf("outcomes sum to %d (%+v), want %d", total, s, n)
	}
	if s.InFlightBytes != 0 || s.InFlightRuns != 0 || s.QueueDepth != 0 {
		t.Errorf("controller not drained: %+v", s)
	}
	h := reg.FindHistogram("vista_admission_queue_wait_seconds")
	if h == nil {
		t.Fatal("queue-wait histogram not registered")
	}
	if h.Count() != n {
		t.Errorf("queue-wait histogram observed %d requests, want %d", h.Count(), n)
	}
}
