// Package admission implements memory-budget-weighted admission control for
// concurrent feature-transfer runs.
//
// Each run is priced up front in bytes — the cluster-wide Storage + User +
// DL Execution Memory its optimizer decision reserves (the paper's Section
// 4.1 memory model, Equations 9–15, rendered by sim.DecisionCost and
// core.Price) — and a Controller admits it only while the sum of in-flight
// reservations fits a configured byte budget. Runs that do not fit wait in a
// bounded strict-FIFO queue with a deadline; the caller maps a deadline
// expiry to HTTP 429 (retry later) and a full queue or an unpayable price to
// HTTP 503. This turns the optimizer's single-run crash-avoidance model into
// a multi-query resource arbiter: the server never starts a set of runs
// whose combined reservations exceed what the host can hold.
package admission

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// Sentinel errors returned by Admit. The server maps ErrDeadline to 429 +
// Retry-After and ErrQueueFull / ErrOversize to 503.
var (
	// ErrQueueFull means the wait queue is at capacity; the request was
	// rejected without waiting.
	ErrQueueFull = errors.New("admission: queue full")
	// ErrDeadline means the request waited its full queue timeout without
	// enough budget freeing up.
	ErrDeadline = errors.New("admission: queue deadline exceeded")
	// ErrOversize means the request's cost exceeds the whole budget: it can
	// never be admitted, no matter how long it waits.
	ErrOversize = errors.New("admission: cost exceeds budget")
)

// Config sizes a Controller.
type Config struct {
	// BudgetBytes is the total admission budget: the sum of in-flight
	// grant costs never exceeds it. Must be positive.
	BudgetBytes int64
	// QueueDepth bounds how many requests may wait for budget at once;
	// further requests fail fast with ErrQueueFull. Zero disables queueing
	// (admit-or-reject).
	QueueDepth int
	// QueueTimeout bounds how long one request waits in the queue before
	// giving up with ErrDeadline. Zero means wait only on the caller's
	// context.
	QueueTimeout time.Duration
	// Metrics, when non-nil, receives the controller's observability
	// series (vista_admission_*).
	Metrics *obs.Registry
	// Clock is the time source for queue deadlines and wait measurement
	// (nil = the wall clock). Tests inject clock.NewFake() to step queue
	// timeouts deterministically.
	Clock clock.Clock
}

// Stats is a point-in-time snapshot of a Controller's accounting. The
// counter identity  Admitted + RejectedDeadline + RejectedQueueFull +
// RejectedOversize + Cancelled == requests submitted  holds at quiescence.
type Stats struct {
	BudgetBytes   int64 // configured budget
	InFlightBytes int64 // sum of outstanding grant costs
	InFlightRuns  int   // outstanding grants
	QueueDepth    int   // requests currently waiting

	Admitted          int64 // grants issued (fast path or promoted)
	RejectedDeadline  int64 // waits that hit the queue timeout
	RejectedQueueFull int64 // rejected because the queue was full
	RejectedOversize  int64 // rejected because cost > budget
	Cancelled         int64 // waits abandoned by context cancellation
}

// waiter is one queued request. ready is buffered so the promoter never
// blocks handing over a grant, even if the waiter is concurrently giving up.
type waiter struct {
	cost  int64
	ready chan *Grant
}

// retryHintWindow is how many recent queued-request waits RetryHint's p50
// estimate sees: small enough to track load shifts within seconds, large
// enough that one outlier does not swing the hint.
const retryHintWindow = 64

// Controller admits runs against a byte budget. A nil *Controller is valid
// and admits everything immediately (admission disabled).
type Controller struct {
	cfg Config
	clk clock.Clock

	mu       sync.Mutex
	inflight int64
	running  int
	queue    []*waiter // strict FIFO: queue[0] is always next

	admitted     int64
	rejDeadline  int64
	rejQueueFull int64
	rejOversize  int64
	cancelled    int64

	// recentWaits is a ring of the latest waits of requests that actually
	// queued (admitted after waiting, deadline-expired, or cancelled while
	// parked); RetryHint reads it. Fast-path outcomes — immediate admits,
	// queue-full and oversize rejections — are excluded: they resolve in
	// microseconds and say nothing about how long the queue takes to drain,
	// and recording them would collapse the p50 to zero under load.
	recentWaits [retryHintWindow]time.Duration
	recentIdx   int
	recentN     int

	waitHist *obs.Histogram // nil when cfg.Metrics is nil
}

// New builds a Controller and registers its metrics (when cfg.Metrics is
// set): in-flight bytes and queue-depth gauges, admitted / rejected /
// cancelled counters, and the queue-wait histogram
// vista_admission_queue_wait_seconds observed once per submitted request,
// whatever its outcome.
func New(cfg Config) (*Controller, error) {
	if cfg.BudgetBytes <= 0 {
		return nil, fmt.Errorf("admission: budget must be positive, got %d", cfg.BudgetBytes)
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("admission: queue depth must be >= 0, got %d", cfg.QueueDepth)
	}
	c := &Controller{cfg: cfg, clk: clock.Or(cfg.Clock)}
	if reg := cfg.Metrics; reg != nil {
		reg.GaugeFunc("vista_admission_budget_bytes",
			"Configured admission budget in bytes.",
			func() float64 { return float64(cfg.BudgetBytes) })
		reg.GaugeFunc("vista_admission_inflight_bytes",
			"Sum of admitted, unreleased run costs in bytes.",
			func() float64 { return float64(c.Stats().InFlightBytes) })
		reg.GaugeFunc("vista_admission_inflight_runs",
			"Number of admitted, unreleased runs.",
			func() float64 { return float64(c.Stats().InFlightRuns) })
		reg.GaugeFunc("vista_admission_queue_depth",
			"Requests currently waiting for admission budget.",
			func() float64 { return float64(c.Stats().QueueDepth) })
		reg.CounterFunc("vista_admission_admitted_total",
			"Requests granted admission.",
			func() float64 { return float64(c.Stats().Admitted) })
		reg.CounterFunc("vista_admission_rejected_total",
			"Requests rejected: queue deadline exceeded.",
			func() float64 { return float64(c.Stats().RejectedDeadline) },
			obs.Label{Key: "reason", Value: "deadline"})
		reg.CounterFunc("vista_admission_rejected_total",
			"Requests rejected: wait queue full.",
			func() float64 { return float64(c.Stats().RejectedQueueFull) },
			obs.Label{Key: "reason", Value: "queue_full"})
		reg.CounterFunc("vista_admission_rejected_total",
			"Requests rejected: cost exceeds the whole budget.",
			func() float64 { return float64(c.Stats().RejectedOversize) },
			obs.Label{Key: "reason", Value: "oversize"})
		reg.CounterFunc("vista_admission_cancelled_total",
			"Queued requests abandoned by context cancellation.",
			func() float64 { return float64(c.Stats().Cancelled) })
		c.waitHist = reg.Histogram("vista_admission_queue_wait_seconds",
			"Time from admission request to grant or rejection.", obs.DefBuckets)
	}
	return c, nil
}

// Stats snapshots the controller's accounting. Safe on nil (all zeros).
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		BudgetBytes:       c.cfg.BudgetBytes,
		InFlightBytes:     c.inflight,
		InFlightRuns:      c.running,
		QueueDepth:        len(c.queue),
		Admitted:          c.admitted,
		RejectedDeadline:  c.rejDeadline,
		RejectedQueueFull: c.rejQueueFull,
		RejectedOversize:  c.rejOversize,
		Cancelled:         c.cancelled,
	}
}

// Grant is one admitted reservation. Release returns its bytes to the
// budget; it is idempotent and safe on nil (disabled controller).
type Grant struct {
	c    *Controller
	cost int64
	once sync.Once
}

// Cost returns the bytes this grant holds against the budget.
func (g *Grant) Cost() int64 {
	if g == nil {
		return 0
	}
	return g.cost
}

// Release returns the grant's bytes to the budget and promotes queued
// waiters in FIFO order. Idempotent; nil-safe.
func (g *Grant) Release() {
	if g == nil || g.c == nil {
		return
	}
	g.once.Do(func() {
		c := g.c
		c.mu.Lock()
		c.inflight -= g.cost
		c.running--
		c.promoteLocked()
		c.mu.Unlock()
	})
}

// ctxDoner is the subset of context.Context Admit needs; it keeps the
// package importable from anything that can hand over a done channel.
type ctxDoner interface {
	Done() <-chan struct{}
	Err() error
}

// Admit requests cost bytes of budget, waiting in FIFO order behind earlier
// requests when the budget is exhausted. It returns a *Grant the caller must
// Release, or one of ErrQueueFull, ErrDeadline, ErrOversize, or the
// context's error if ctx is cancelled while waiting. A nil Controller admits
// everything with a no-op grant.
func (c *Controller) Admit(ctx ctxDoner, cost int64) (*Grant, error) {
	if c == nil {
		return &Grant{}, nil
	}
	if cost < 0 {
		cost = 0
	}
	start := c.clk.Now()
	queued := false
	observe := func() {
		wait := c.clk.Since(start)
		if queued {
			c.recordWait(wait)
		}
		if c.waitHist != nil {
			c.waitHist.Observe(wait.Seconds())
		}
	}

	c.mu.Lock()
	if cost > c.cfg.BudgetBytes {
		c.rejOversize++
		c.mu.Unlock()
		observe()
		return nil, fmt.Errorf("%w: need %d bytes, budget %d", ErrOversize, cost, c.cfg.BudgetBytes)
	}
	// Fast path: budget available and nobody queued ahead (FIFO — a new
	// request must not overtake waiters).
	if len(c.queue) == 0 && c.inflight+cost <= c.cfg.BudgetBytes {
		c.inflight += cost
		c.running++
		c.admitted++
		c.mu.Unlock()
		observe()
		return &Grant{c: c, cost: cost}, nil
	}
	if len(c.queue) >= c.cfg.QueueDepth {
		c.rejQueueFull++
		c.mu.Unlock()
		observe()
		return nil, fmt.Errorf("%w: %d waiting", ErrQueueFull, c.cfg.QueueDepth)
	}
	w := &waiter{cost: cost, ready: make(chan *Grant, 1)}
	c.queue = append(c.queue, w)
	queued = true
	c.mu.Unlock()

	var timeout <-chan time.Time
	if c.cfg.QueueTimeout > 0 {
		t := c.clk.NewTimer(c.cfg.QueueTimeout)
		defer t.Stop()
		timeout = t.C()
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}

	select {
	case g := <-w.ready:
		observe()
		return g, nil
	case <-timeout:
		if g := c.abandon(w, &c.rejDeadline); g != nil {
			// The grant raced the timer: it is already charged and
			// counted admitted, so take it — rejecting now would just
			// waste the reserved budget.
			observe()
			return g, nil
		}
		observe()
		return nil, fmt.Errorf("%w: waited %s", ErrDeadline, c.cfg.QueueTimeout)
	case <-done:
		if g := c.abandon(w, &c.cancelled); g != nil {
			// The grant raced the cancellation; the caller is gone, so
			// return the budget immediately. The request stays counted
			// as admitted (the grant was issued) — each request lands in
			// exactly one outcome counter.
			g.Release()
		}
		observe()
		return nil, ctx.Err()
	}
}

// recordWait appends one queued request's wait to the RetryHint ring.
func (c *Controller) recordWait(d time.Duration) {
	c.mu.Lock()
	c.recentWaits[c.recentIdx] = d
	c.recentIdx = (c.recentIdx + 1) % retryHintWindow
	if c.recentN < retryHintWindow {
		c.recentN++
	}
	c.mu.Unlock()
}

// RetryHint estimates how long a 429'd client should back off before
// retrying, from current admission state: the p50 of recent queued-request
// waits scaled by queue occupancy, floored at 1s and capped at twice the
// queue timeout.
//
// The hint must vary with admission state. A static hint (the old behavior:
// always the full queue timeout) synchronizes obedient clients — every 429'd
// client that already waited the timeout retries in lockstep, so the server
// sees load spikes at exact queue-timeout intervals instead of a smooth
// retry trickle. Because this hint tracks the live wait distribution and the
// queue's occupancy at rejection time, staggered rejections see different
// states and spread their retries out. Safe on nil (1s).
func (c *Controller) RetryHint() time.Duration {
	if c == nil {
		return time.Second
	}
	c.mu.Lock()
	n := c.recentN
	waits := make([]time.Duration, n)
	copy(waits, c.recentWaits[:n])
	occupancy := 0.0
	if c.cfg.QueueDepth > 0 {
		occupancy = float64(len(c.queue)) / float64(c.cfg.QueueDepth)
	}
	timeout := c.cfg.QueueTimeout
	c.mu.Unlock()

	hint := time.Second
	if n > 0 {
		sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
		p50 := waits[(n-1)/2]
		// An empty queue halves the estimate (budget frees soon); a full
		// queue means a retry waits behind everyone, so scale up to 1.5x.
		hint = time.Duration(float64(p50) * (0.5 + occupancy))
	}
	if hint < time.Second {
		hint = time.Second
	}
	if timeout > 0 && hint > 2*timeout {
		hint = 2 * timeout
	}
	return hint
}

// abandon removes w from the queue, crediting *outcome on success. If w was
// already promoted (the grant raced the giving-up), it returns that grant —
// already charged against the budget and counted admitted — and credits
// nothing; the caller decides whether to keep or release it.
func (c *Controller) abandon(w *waiter, outcome *int64) *Grant {
	c.mu.Lock()
	for i, q := range c.queue {
		if q == w {
			c.queue = append(c.queue[:i:i], c.queue[i+1:]...)
			*outcome++
			c.mu.Unlock()
			return nil
		}
	}
	// Not queued ⇒ promoteLocked already delivered a grant to w.ready
	// (buffered send, so it is there by now).
	c.mu.Unlock()
	return <-w.ready
}

// promoteLocked hands budget to queued waiters in strict FIFO order: it
// stops at the first waiter that does not fit, so later (smaller) requests
// never starve earlier ones. Caller holds c.mu.
func (c *Controller) promoteLocked() {
	for len(c.queue) > 0 {
		w := c.queue[0]
		if c.inflight+w.cost > c.cfg.BudgetBytes {
			return
		}
		c.queue = c.queue[1:]
		c.inflight += w.cost
		c.running++
		c.admitted++
		w.ready <- &Grant{c: c, cost: w.cost}
	}
}
