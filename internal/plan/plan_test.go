package plan

import (
	"testing"

	"repro/internal/cnn"
)

func compile(t *testing.T, kind Kind, placement JoinPlacement, model string, k int, opts Options) *Plan {
	t.Helper()
	m, err := cnn.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(kind, placement, m, k, opts)
	if err != nil {
		t.Fatalf("Compile(%v): %v", kind, err)
	}
	return p
}

func TestLazyPlanShape(t *testing.T) {
	p := compile(t, Lazy, BeforeJoin, "alexnet", 4, Options{})
	if len(p.Steps) != 4 {
		t.Fatalf("lazy steps = %d, want 4", len(p.Steps))
	}
	for i, s := range p.Steps {
		if s.From != 0 || !s.FromImage {
			t.Errorf("step %d: lazy must start from raw images", i)
		}
		if len(s.Emits) != 1 {
			t.Errorf("step %d: lazy emits %d layers, want 1", i, len(s.Emits))
		}
		if s.KeepRaw {
			t.Errorf("step %d: lazy must not carry raw tensors", i)
		}
	}
	// Each later step repeats all earlier work: FLOPs strictly increase.
	for i := 1; i < 4; i++ {
		if p.Steps[i].FLOPsPerImage <= p.Steps[i-1].FLOPsPerImage {
			t.Errorf("lazy step %d FLOPs %d not above step %d's %d",
				i, p.Steps[i].FLOPsPerImage, i-1, p.Steps[i-1].FLOPsPerImage)
		}
	}
}

func TestEagerPlanShape(t *testing.T) {
	p := compile(t, Eager, BeforeJoin, "alexnet", 4, Options{})
	if len(p.Steps) != 1 {
		t.Fatalf("eager steps = %d, want 1", len(p.Steps))
	}
	s := p.Steps[0]
	if len(s.Emits) != 4 {
		t.Fatalf("eager emits = %d, want 4", len(s.Emits))
	}
	if s.Emits[0].LayerName != "conv5" || s.Emits[3].LayerName != "fc8" {
		t.Errorf("eager emit order wrong: %v", s.Emits)
	}
	if s.KeepRaw {
		t.Error("eager must not carry raw tensors")
	}
}

func TestStagedPlanShape(t *testing.T) {
	p := compile(t, Staged, AfterJoin, "resnet50", 5, Options{})
	if len(p.Steps) != 5 {
		t.Fatalf("staged steps = %d, want 5", len(p.Steps))
	}
	if !p.Steps[0].FromImage {
		t.Error("first staged step must read images")
	}
	for i, s := range p.Steps {
		if i > 0 && s.FromImage {
			t.Errorf("step %d: staged continuation must not re-read images", i)
		}
		wantKeep := i+1 < len(p.Steps)
		if s.KeepRaw != wantKeep {
			t.Errorf("step %d: KeepRaw = %v, want %v", i, s.KeepRaw, wantKeep)
		}
		if wantKeep && s.RawOutputBytes <= 0 {
			t.Errorf("step %d: kept raw tensor has no size", i)
		}
		if len(s.Emits) != 1 {
			t.Errorf("step %d: staged emits %d, want 1", i, len(s.Emits))
		}
	}
	// Steps are contiguous: each starts right after the previous emit.
	for i := 1; i < len(p.Steps); i++ {
		if p.Steps[i].From != p.Steps[i-1].Emits[0].LayerIndex+1 {
			t.Errorf("step %d starts at %d, want %d", i, p.Steps[i].From,
				p.Steps[i-1].Emits[0].LayerIndex+1)
		}
	}
}

func TestStagedEliminatesRedundancy(t *testing.T) {
	// Section 4.2.1: Staged and Eager cost one full pass; Lazy costs far
	// more. For AlexNet's 4 top layers, Lazy is ≥3× Staged.
	lazy := compile(t, Lazy, BeforeJoin, "alexnet", 4, Options{})
	eager := compile(t, Eager, BeforeJoin, "alexnet", 4, Options{})
	staged := compile(t, Staged, AfterJoin, "alexnet", 4, Options{})

	if staged.TotalInferenceFLOPs() != eager.TotalInferenceFLOPs() {
		t.Errorf("staged FLOPs %d != eager FLOPs %d (both must be redundancy-free)",
			staged.TotalInferenceFLOPs(), eager.TotalInferenceFLOPs())
	}
	ratio := float64(lazy.TotalInferenceFLOPs()) / float64(staged.TotalInferenceFLOPs())
	if ratio < 3 {
		t.Errorf("lazy/staged FLOP ratio = %.2f, want >= 3", ratio)
	}
}

func TestAlexNetFc7Fc8RedundancyMatchesPaper(t *testing.T) {
	// Section 4.2.1's motivating numbers: with L = {fc7, fc8}, Lazy's fc8
	// pass redoes ~99% of fc7's work.
	lazy := compile(t, Lazy, BeforeJoin, "alexnet", 2, Options{})
	fc7 := lazy.Steps[0].FLOPsPerImage
	fc8 := lazy.Steps[1].FLOPsPerImage
	if frac := float64(fc7) / float64(fc8); frac < 0.97 {
		t.Errorf("fc7/fc8 = %.3f, want > 0.97 (99%% redundancy)", frac)
	}
	// And the paper's absolute numbers: fc7 ≈ 721 MFLOPs, fc8 ≈ 725 MFLOPs
	// for the grouped AlexNet; our ungrouped variant is ~2x but the ratio
	// holds. Check order of magnitude.
	if fc7 < 500e6 || fc7 > 3e9 {
		t.Errorf("fc7 cumulative FLOPs = %d, outside plausible AlexNet range", fc7)
	}
}

func TestPeakMaterializedTables(t *testing.T) {
	tests := []struct {
		kind Kind
		k    int
		want int
	}{
		{Lazy, 4, 1},
		{Eager, 4, 4},
		{Staged, 4, 2},
		{Staged, 1, 1},
	}
	for _, tc := range tests {
		p := compile(t, tc.kind, AfterJoin, "alexnet", tc.k, Options{})
		if got := p.PeakMaterializedTables(); got != tc.want {
			t.Errorf("%v/%d layers: peak tables = %d, want %d", tc.kind, tc.k, got, tc.want)
		}
	}
}

func TestPreMaterializedBase(t *testing.T) {
	p := compile(t, Staged, AfterJoin, "alexnet", 4, Options{PreMaterializeBase: true})
	if p.PreMaterializedBase != 0 {
		t.Fatal("pre-mat base not recorded")
	}
	// conv5 is pre-materialized; only fc6..fc8 are computed.
	if len(p.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(p.Steps))
	}
	if p.Steps[0].FromImage {
		t.Error("pre-mat plan must not read raw images")
	}
	conv5Idx := p.Layers[0].LayerIndex
	if p.Steps[0].From != conv5Idx+1 {
		t.Errorf("first step from = %d, want %d", p.Steps[0].From, conv5Idx+1)
	}
	// FLOPs must be far below the from-image plan.
	full := compile(t, Staged, AfterJoin, "alexnet", 4, Options{})
	if p.TotalInferenceFLOPs() >= full.TotalInferenceFLOPs()/2 {
		t.Errorf("pre-mat FLOPs %d not well below full %d",
			p.TotalInferenceFLOPs(), full.TotalInferenceFLOPs())
	}
}

func TestPreMaterializedSingleLayer(t *testing.T) {
	// Only the base layer selected: nothing to compute.
	p := compile(t, Staged, AfterJoin, "alexnet", 1, Options{PreMaterializeBase: true})
	if len(p.Steps) != 0 {
		t.Errorf("steps = %d, want 0", len(p.Steps))
	}
}

func TestCompileValidation(t *testing.T) {
	m := cnn.AlexNet()
	if _, err := Compile(Kind(99), AfterJoin, m, 2, Options{}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Compile(Staged, AfterJoin, m, 0, Options{}); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := Compile(Staged, AfterJoin, m, 10, Options{}); err == nil {
		t.Error("k beyond feature layers accepted")
	}
}

func TestPlanNames(t *testing.T) {
	p := compile(t, Staged, AfterJoin, "alexnet", 4, Options{})
	if p.Name() != "Staged/AJ" {
		t.Errorf("name = %q, want Staged/AJ", p.Name())
	}
	p = compile(t, Eager, BeforeJoin, "alexnet", 4, Options{})
	if p.Name() != "Eager/BJ" {
		t.Errorf("name = %q, want Eager/BJ", p.Name())
	}
	p = compile(t, Lazy, BeforeJoin, "alexnet", 4, Options{PreMaterializeBase: true})
	if p.Name() != "Lazy/BJ+Pre-mat" {
		t.Errorf("name = %q", p.Name())
	}
	if Lazy.String() != "lazy" || Staged.String() != "staged" || Eager.String() != "eager" {
		t.Error("kind strings wrong")
	}
	if AfterJoin.String() != "AJ" || BeforeJoin.String() != "BJ" {
		t.Error("placement strings wrong")
	}
}

func TestTinyModelsCompileToo(t *testing.T) {
	// The executable Tiny variants must compile to structurally identical
	// plans (same step counts) as their full-scale counterparts.
	for _, pair := range [][2]string{{"alexnet", "tiny-alexnet"}, {"resnet50", "tiny-resnet50"}} {
		full := compile(t, Staged, AfterJoin, pair[0], 3, Options{})
		tiny := compile(t, Staged, AfterJoin, pair[1], 3, Options{})
		if len(full.Steps) != len(tiny.Steps) {
			t.Errorf("%s: %d steps vs tiny's %d", pair[0], len(full.Steps), len(tiny.Steps))
		}
		for i := range full.Steps {
			if full.Steps[i].Emits[0].LayerName != tiny.Steps[i].Emits[0].LayerName {
				t.Errorf("%s step %d emits %s, tiny emits %s", pair[0], i,
					full.Steps[i].Emits[0].LayerName, tiny.Steps[i].Emits[0].LayerName)
			}
		}
	}
}
