// Package plan defines the logical execution plans of the feature-transfer
// workload (Section 4.2.1, Figure 5): Lazy (the de-facto manual approach),
// Eager (materialize all layers in one go), their join-reordered variants,
// and Vista's new Staged plan, plus the pre-materialization variant of
// Appendix B. A plan compiles into a sequence of inference Steps shared by
// the real executor (internal/core) and the analytical simulator
// (internal/sim).
package plan

import (
	"fmt"

	"repro/internal/cnn"
)

// Kind enumerates the logical plans of Figure 5.
type Kind int

// Logical plans. Staged is the zero value: it is Vista's plan, so an
// unspecified Kind means "let Vista do its thing".
const (
	// Staged splits partial inference across the layers of L, emitting each
	// layer and carrying the raw intermediate forward — Figure 5(E),
	// Vista's plan.
	Staged Kind = iota
	// Lazy materializes each feature layer independently from raw images —
	// Figure 5(A), the current dominant practice.
	Lazy
	// Eager materializes all |L| layers in a single inference pass —
	// Figure 5(C).
	Eager
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Lazy:
		return "lazy"
	case Eager:
		return "eager"
	case Staged:
		return "staged"
	}
	return fmt.Sprintf("plan(%d)", int(k))
}

// JoinPlacement says whether CNN inference runs after or before the
// structured join (Section 5.3: "Eager or Staged combined with inference
// After Join (AJ) or Before Join (BJ)"). AJ joins Tstr with Timg first —
// cheaper shuffles, since raw images are smaller than feature layers
// (Section 4.2.1's join-reordering argument); Figure 5's -Reordered plans
// and Staged use it.
type JoinPlacement int

// Join placements.
const (
	// AfterJoin (AJ): join first, then run inference on the joined table.
	AfterJoin JoinPlacement = iota
	// BeforeJoin (BJ): run inference on Timg, then join feature tables
	// with Tstr.
	BeforeJoin
)

// String implements fmt.Stringer.
func (p JoinPlacement) String() string {
	if p == BeforeJoin {
		return "BJ"
	}
	return "AJ"
}

// Emit is one feature layer materialized by a step.
type Emit struct {
	// LayerName is the roster feature-layer label.
	LayerName string
	// LayerIndex is the model layer index.
	LayerIndex int
	// FeatureDim is the flattened post-pooling feature length.
	FeatureDim int
}

// Step is one inference pass over the data: partial inference from model
// layer From through the highest emitted/kept layer, materializing the Emits
// and optionally keeping the raw top tensor for the next step.
type Step struct {
	// From is the first model layer applied (0 = from raw images).
	From int
	// FromImage is true when the step consumes raw images; false when it
	// consumes the previous step's raw intermediate tensor.
	FromImage bool
	// Emits are the feature layers this pass materializes, ascending.
	Emits []Emit
	// KeepRaw keeps the unpooled output of the last layer for the next
	// step (Staged only).
	KeepRaw bool
	// FLOPsPerImage is the partial-inference cost of this pass for one
	// example.
	FLOPsPerImage int64
	// RawOutputBytes is the size of the kept raw tensor per example (0
	// when KeepRaw is false).
	RawOutputBytes int64
}

// Plan is a compiled logical plan: an ordered list of inference steps plus
// the join placement. Downstream training on each emitted layer happens as
// soon as that layer is materialized (Figure 5's M nodes).
type Plan struct {
	Kind      Kind
	Placement JoinPlacement
	// Layers are the selected feature layers, bottom-to-top (the paper's
	// L, top |L| of the model's roster list).
	Layers []cnn.LayerStat
	Steps  []Step
	// PreMaterializedBase, when >= 0, is the index into Layers of a base
	// layer assumed already materialized (Appendix B); steps then start
	// from it instead of raw images.
	PreMaterializedBase int
}

// Options modifies compilation.
type Options struct {
	// PreMaterializeBase enables the Appendix B variant: the bottom-most
	// selected layer is read pre-materialized instead of computed from
	// images.
	PreMaterializeBase bool
}

// Compile builds the plan of the given kind over the top |L| = k feature
// layers of the model.
func Compile(kind Kind, placement JoinPlacement, m *cnn.Model, k int, opts Options) (*Plan, error) {
	stats, err := cnn.ComputeStats(m)
	if err != nil {
		return nil, err
	}
	return CompileFromStats(kind, placement, stats, k, opts)
}

// CompileFromStats is Compile for callers that already have model stats
// (e.g. the simulator, which never instantiates the model).
func CompileFromStats(kind Kind, placement JoinPlacement, stats *cnn.Stats, k int, opts Options) (*Plan, error) {
	layers, err := stats.TopLayerStats(k)
	if err != nil {
		return nil, err
	}
	p := &Plan{Kind: kind, Placement: placement, Layers: layers, PreMaterializedBase: -1}

	start := 0 // model layer the pipeline starts at
	firstFromImage := true
	if opts.PreMaterializeBase {
		p.PreMaterializedBase = 0
		start = layers[0].LayerIndex + 1
		firstFromImage = false
		layers = layers[1:]
		if len(layers) == 0 {
			return p, nil // only the base layer selected; nothing to compute
		}
	}

	emit := func(l cnn.LayerStat) Emit {
		return Emit{LayerName: l.Name, LayerIndex: l.LayerIndex, FeatureDim: l.FeatureDim}
	}

	switch kind {
	case Lazy:
		// One independent pass per layer, each from the pipeline start.
		for _, l := range layers {
			flops := cumFLOPsFrom(stats, start, l)
			p.Steps = append(p.Steps, Step{
				From: start, FromImage: firstFromImage,
				Emits:         []Emit{emit(l)},
				FLOPsPerImage: flops,
			})
		}
	case Eager:
		// A single pass emitting every layer.
		var emits []Emit
		for _, l := range layers {
			emits = append(emits, emit(l))
		}
		top := layers[len(layers)-1]
		p.Steps = append(p.Steps, Step{
			From: start, FromImage: firstFromImage,
			Emits:         emits,
			FLOPsPerImage: cumFLOPsFrom(stats, start, top),
		})
	case Staged:
		// One pass per layer, each continuing from the previous layer's
		// raw tensor.
		cur := start
		fromImage := firstFromImage
		for i, l := range layers {
			keep := i+1 < len(layers)
			st := Step{
				From: cur, FromImage: fromImage,
				Emits:         []Emit{emit(l)},
				KeepRaw:       keep,
				FLOPsPerImage: cumFLOPsFrom(stats, cur, l),
			}
			if keep {
				st.RawOutputBytes = l.RawBytes
			}
			p.Steps = append(p.Steps, st)
			cur = l.LayerIndex + 1
			fromImage = false
		}
	default:
		return nil, fmt.Errorf("plan: unknown kind %d", int(kind))
	}
	return p, nil
}

// cumFLOPsFrom approximates partial-inference FLOPs from model layer `from`
// through feature layer l using the stats' cumulative counts. When from is 0
// this is exact (CumFLOPs); otherwise it is the difference of cumulative
// costs at the bounding feature layers.
func cumFLOPsFrom(stats *cnn.Stats, from int, l cnn.LayerStat) int64 {
	if from == 0 {
		return l.CumFLOPs
	}
	// Find the feature layer immediately below `from` and subtract.
	var below int64
	for _, fl := range stats.FeatureLayers {
		if fl.LayerIndex < from && fl.CumFLOPs > below {
			below = fl.CumFLOPs
		}
	}
	return l.CumFLOPs - below
}

// TotalInferenceFLOPs returns the plan's total per-example inference cost —
// the quantity the Staged plan minimizes (Section 4.2.1).
func (p *Plan) TotalInferenceFLOPs() int64 {
	var total int64
	for _, s := range p.Steps {
		total += s.FLOPsPerImage
	}
	return total
}

// PeakMaterializedTables returns the largest number of intermediate feature
// tables alive at once under this plan: all |L| for Eager, 2 for Staged
// (current + next via the raw carry), 1 for Lazy. It drives the
// s_single/s_double memory analysis (Equations 5–6).
func (p *Plan) PeakMaterializedTables() int {
	switch p.Kind {
	case Eager:
		return len(p.Layers)
	case Staged:
		if len(p.Steps) > 1 {
			return 2
		}
		return 1
	default:
		return 1
	}
}

// Name renders the plan as the paper writes it, e.g. "Staged/AJ".
func (p *Plan) Name() string {
	name := fmt.Sprintf("%s/%s", titleCase(p.Kind.String()), p.Placement)
	if p.PreMaterializedBase >= 0 {
		name += "+Pre-mat"
	}
	return name
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return string(s[0]-'a'+'A') + s[1:]
}
