package plan_test

import (
	"fmt"

	"repro/internal/cnn"
	"repro/internal/plan"
)

// ExampleCompile shows the Staged plan for AlexNet's top four layers: four
// contiguous partial-inference stages, each emitting one layer and carrying
// its raw tensor to the next (except the last).
func ExampleCompile() {
	p, _ := plan.Compile(plan.Staged, plan.AfterJoin, cnn.AlexNet(), 4, plan.Options{})
	fmt.Println(p.Name())
	for i, s := range p.Steps {
		fmt.Printf("stage %d: layers [%d..%d] emit %s keepRaw=%v\n",
			i, s.From, s.Emits[len(s.Emits)-1].LayerIndex, s.Emits[0].LayerName, s.KeepRaw)
	}
	// Output:
	// Staged/AJ
	// stage 0: layers [0..6] emit conv5 keepRaw=true
	// stage 1: layers [7..8] emit fc6 keepRaw=true
	// stage 2: layers [9..9] emit fc7 keepRaw=true
	// stage 3: layers [10..10] emit fc8 keepRaw=false
}

// ExamplePlan_TotalInferenceFLOPs quantifies the Lazy plan's redundancy: for
// AlexNet's four layers, Lazy repeats nearly the whole network per layer.
func ExamplePlan_TotalInferenceFLOPs() {
	lazy, _ := plan.Compile(plan.Lazy, plan.BeforeJoin, cnn.AlexNet(), 4, plan.Options{})
	staged, _ := plan.Compile(plan.Staged, plan.AfterJoin, cnn.AlexNet(), 4, plan.Options{})
	ratio := float64(lazy.TotalInferenceFLOPs()) / float64(staged.TotalInferenceFLOPs())
	fmt.Printf("lazy does %.1fx the inference work of staged\n", ratio)
	// Output: lazy does 3.9x the inference work of staged
}
