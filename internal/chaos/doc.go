// Package chaos holds the seeded fault-injection stress harness: hundreds of
// deterministic fault schedules driven through internal/faultinject against
// the dataflow engine and the full core.Run pipeline.
//
// Each schedule arms one or two failpoint sites with policies chosen by a
// seeded PRNG, runs a workload, and then asserts the system's failure
// contract:
//
//   - every surfaced error is typed — a *faultinject.Error, a
//     *memory.OOMError, or wraps dataflow.ErrCorruptRow — never an untyped
//     string or a panic;
//   - all memory pools drain to zero once tables are dropped;
//   - no spill files, feature-store entry files, or atomic-write temp files
//     are orphaned (the feature store is re-opened and Fsck'd after every
//     schedule).
//
// The package has no non-test code beyond this doc; the harness lives in
// chaos_test.go. CI runs the -short smoke subset under -race; the full
// schedule set (>= 200 seeds) runs in normal mode.
package chaos
