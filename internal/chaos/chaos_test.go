package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dataflow"
	"repro/internal/dl"
	"repro/internal/faultinject"
	"repro/internal/featurestore"
	"repro/internal/memory"
)

func TestMain(m *testing.M) {
	code := m.Run()
	if sites := faultinject.ArmedSites(); len(sites) > 0 {
		fmt.Fprintf(os.Stderr, "failpoint sites left armed at exit: %v\n", sites)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// Schedule counts. CI's -short smoke keeps the -race run fast; the full set
// exceeds the 200-schedule acceptance floor (engineFull + coreFull).
const (
	engineFull, engineShort = 140, 12
	coreFull, coreShort     = 80, 8
)

// typedErr reports whether err belongs to one of the repo's typed failure
// families — the chaos contract is that injected faults never surface as
// anything else.
func typedErr(err error) bool {
	if _, ok := faultinject.AsFault(err); ok {
		return true
	}
	var oom *memory.OOMError
	if errors.As(err, &oom) {
		return true
	}
	return errors.Is(err, dataflow.ErrCorruptRow)
}

// A site is either hit per call (Hit) or per byte batch (HitBytes); byte
// policies only make sense at byte sites.
type site struct {
	name  string
	bytes bool
}

var engineSites = []site{
	{dataflow.FaultSpillWrite, true},
	{dataflow.FaultUnspillRead, false},
	{dataflow.FaultUnspillAdmit, false},
	{dataflow.FaultRowEncode, false},
	{dataflow.FaultRowDecode, false},
}

var coreSites = []site{
	{core.FaultStage, false},
	{core.FaultStage + ":ingest", false},
	{core.FaultStage + ":join", false},
	{core.FaultStage + ":infer", false},
	{core.FaultStage + ":train", false},
	{core.FaultStage + ":premat", false},
	{core.FaultStage + ":cache", false},
	{dl.FaultSessionBroadcast, false},
	{dl.FaultInferBatch, false},
	{featurestore.FaultEntryRead, false},
	{featurestore.FaultPutEntryWritten, false},
	{featurestore.FaultPutIndexPersisted, false},
	{featurestore.FaultEntryWrite + ".write", true},
	{featurestore.FaultIndexWrite + ".write", true},
	{dataflow.FaultSpillWrite, true},
	{dataflow.FaultUnspillRead, false},
	{dataflow.FaultUnspillAdmit, false},
}

// armedSchedule describes what armRandom installed.
type armedSchedule struct {
	names []string
	// silentTear is true when a SilentTruncate policy was armed: torn bytes
	// land on disk with no error, so live-process state may legitimately
	// disagree with the files until the next (re)open reconciles them.
	silentTear bool
}

// armRandom arms 1–2 sites from the catalog with policies drawn from the
// seeded rng.
func armRandom(rng *rand.Rand, catalog []site) armedSchedule {
	n := 1 + rng.Intn(2)
	var sched armedSchedule
	for i := 0; i < n; i++ {
		s := catalog[rng.Intn(len(catalog))]
		var p faultinject.Policy
		if s.bytes && rng.Intn(2) == 0 {
			if rng.Intn(2) == 0 {
				p = faultinject.FailAfterBytes(16 + rng.Int63n(4096))
			} else {
				p = faultinject.SilentTruncate(rng.Int63n(64))
				sched.silentTear = true
			}
		} else {
			switch rng.Intn(3) {
			case 0:
				p = faultinject.FailNth(1 + rng.Int63n(5))
			case 1:
				p = faultinject.FailEveryKth(2 + rng.Int63n(3))
			default:
				p = faultinject.FailRandom(rng.Int63(), 0.1+0.4*rng.Float64())
			}
		}
		faultinject.Arm(s.name, p)
		sched.names = append(sched.names, s.name)
	}
	return sched
}

func chaosRows(n, dim int) []dataflow.Row {
	rows := make([]dataflow.Row, n)
	for i := range rows {
		s := make([]float32, dim)
		for j := range s {
			s[j] = float32(i*dim + j)
		}
		rows[i] = dataflow.Row{ID: int64(i), Label: float32(i % 2), Structured: s}
	}
	return rows
}

// engineSchedule runs one seeded fault schedule against a bare engine:
// ingest → map → collect → drop, with a storage budget tight enough that
// spill and unspill sites are live. Whatever the faults do, errors must stay
// typed and every pool and spill file must be gone at the end.
func engineSchedule(t *testing.T, seed int64) {
	defer faultinject.DisarmAll()
	rng := rand.New(rand.NewSource(seed))
	spillDir := t.TempDir()
	kind := memory.SparkLike
	if rng.Intn(4) == 0 {
		kind = memory.IgniteLike // memory-only: pressure surfaces as typed OOM
	}
	cfg := dataflow.Config{
		Nodes:        1 + rng.Intn(2),
		CoresPerNode: 2,
		Kind:         kind,
		Apportion: memory.Apportionment{
			OSReserved:  memory.MB(64),
			DLExecution: memory.MB(64),
			User:        memory.MB(64),
			Core:        memory.MB(64),
			Storage:     memory.MB(0.25),
		},
		DriverMemory: memory.MB(64),
		SpillDir:     spillDir,
	}
	e, err := dataflow.NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	sched := armRandom(rng, engineSites)
	armed := sched.names
	check := func(op string, err error) bool {
		if err == nil {
			return true
		}
		if !typedErr(err) {
			t.Fatalf("sites %v: %s surfaced untyped error: %v", armed, op, err)
		}
		return false
	}

	tb, err := e.CreateTable("chaos", chaosRows(1500+rng.Intn(1000), 64), 4+rng.Intn(4))
	if check("CreateTable", err) {
		out, err := e.MapPartitions("mapped", tb, func(_ *dataflow.TaskContext, in []dataflow.Row) ([]dataflow.Row, error) {
			res := make([]dataflow.Row, len(in))
			for i := range in {
				res[i] = in[i]
				res[i].Label = -in[i].Label
			}
			return res, nil
		})
		if check("MapPartitions", err) {
			_, err = e.Collect(out)
			check("Collect", err)
			out.Drop()
		}
		tb.Drop()
	}
	faultinject.DisarmAll()

	if used := e.StorageUsed(); used != 0 {
		t.Errorf("sites %v: %d storage bytes leaked after drops", armed, used)
	}
	if used := e.DriverPool().Used(); used != 0 {
		t.Errorf("sites %v: %d driver bytes leaked", armed, used)
	}
	for i := 0; i < cfg.Nodes; i++ {
		if used := e.UserPool(i).Used(); used != 0 {
			t.Errorf("sites %v: node %d leaked %d user bytes", armed, i, used)
		}
	}
	if err := e.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	des, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatalf("spill dir unreadable after Close: %v", err)
	}
	if len(des) != 0 {
		t.Errorf("sites %v: %d spill files orphaned after Close", armed, len(des))
	}
}

func TestChaosEngine(t *testing.T) {
	n := engineFull
	if testing.Short() {
		n = engineShort
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			engineSchedule(t, seed)
		})
	}
}

// coreSchedule drives the full declarative pipeline — the quickstart workload
// shrunk to a few rows — under one seeded fault schedule, with a live feature
// store. The run may fail (typed) or succeed; either way the store must
// re-open consistent and the spill directory must come back empty.
func coreSchedule(t *testing.T, seed int64, structRows, imageRows []dataflow.Row) {
	defer faultinject.DisarmAll()
	rng := rand.New(rand.NewSource(seed))
	storeDir, spillDir := t.TempDir(), t.TempDir()
	st, err := featurestore.Open(storeDir, 0)
	if err != nil {
		t.Fatalf("Open store: %v", err)
	}
	spec := core.Spec{
		Nodes:        2,
		CoresPerNode: 2,
		MemPerNode:   memory.GB(32),
		SystemKind:   memory.SparkLike,
		ModelName:    "tiny-alexnet",
		NumLayers:    2,
		Downstream:   core.DefaultDownstream(),
		StructRows:   structRows,
		ImageRows:    imageRows,
		Seed:         42,
		FeatureStore: st,
		SpillDir:     spillDir,
	}

	sched := armRandom(rng, coreSites)
	armed := sched.names
	_, err = core.Run(spec)
	faultinject.DisarmAll()
	if err != nil && !typedErr(err) {
		t.Fatalf("sites %v: core.Run surfaced untyped error: %v", armed, err)
	}

	// A silent tear is only observable after a reopen (it models a no-fsync
	// crash); the live store may disagree with the torn file until then.
	if !sched.silentTear {
		if err := st.Fsck(); err != nil {
			t.Errorf("sites %v: store inconsistent after run: %v", armed, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Errorf("store Close: %v", err)
	}
	st2, err := featurestore.Open(storeDir, 0)
	if err != nil {
		t.Fatalf("sites %v: store unreopenable after run: %v", armed, err)
	}
	if err := st2.Fsck(); err != nil {
		t.Errorf("sites %v: store inconsistent after reopen: %v", armed, err)
	}
	des, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatalf("spill dir unreadable after run: %v", err)
	}
	if len(des) != 0 {
		t.Errorf("sites %v: %d spill files orphaned after run", armed, len(des))
	}
}

func TestChaosCoreRun(t *testing.T) {
	ds := data.Foods().WithRows(12)
	structRows, imageRows, err := data.Generate(ds)
	if err != nil {
		t.Fatal(err)
	}
	n := coreFull
	if testing.Short() {
		n = coreShort
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			coreSchedule(t, seed, structRows, imageRows)
		})
	}
}
