// Package clock is a minimal time-source seam: the subset of package time
// the serving path depends on (Now, one-shot timers, tickers, deferred
// funcs), behind an interface with two implementations — Real, which
// delegates to package time, and Fake, a manually advanced clock for
// deterministic tests.
//
// The seam exists because admission deadlines, sharing windows, and sampler
// ticks are all timing behavior the load driver (cmd/vista-load) compresses
// with a scaled simulated clock; hard-wired time.Now/time.Timer calls made
// that behavior untestable without real sleeps. Production code takes a
// Clock in its Config (nil means Real()); tests inject NewFake() and step
// time explicitly with Advance, turning sleep-and-hope timing tests into
// deterministic ones.
package clock

import "time"

// Clock is the time source. Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the elapsed time between Now and t.
	Since(t time.Time) time.Duration
	// NewTimer returns a Timer that fires once, d from now.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a Ticker that fires every d. d must be positive.
	NewTicker(d time.Duration) Ticker
	// AfterFunc runs f in its own goroutine (Real) or inline from Advance
	// (Fake) once d has elapsed. The returned Timer's channel is unused;
	// Stop cancels the call if it has not fired.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a one-shot timer. C fires at most once.
type Timer interface {
	// C delivers the fire time. For AfterFunc timers the channel never
	// receives.
	C() <-chan time.Time
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
}

// Ticker delivers periodic ticks on C until stopped. Like time.Ticker, ticks
// are dropped (not queued) when the receiver falls behind.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Real returns the Clock backed by package time.
func Real() Clock { return realClock{} }

// Or returns c, or Real() when c is nil — the idiom every Config normalizer
// uses so a zero-value config means "wall clock".
func Or(c Clock) Clock {
	if c == nil {
		return Real()
	}
	return c
}

type realClock struct{}

func (realClock) Now() time.Time                   { return time.Now() }
func (realClock) Since(t time.Time) time.Duration  { return time.Since(t) }
func (realClock) NewTimer(d time.Duration) Timer   { return realTimer{time.NewTimer(d)} }
func (realClock) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }
func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop() bool          { return t.t.Stop() }

type realTicker struct{ t *time.Ticker }

func (t realTicker) C() <-chan time.Time { return t.t.C }
func (t realTicker) Stop()               { t.t.Stop() }
