package clock

import (
	"sync"
	"time"
)

// fakeEpoch is the Fake clock's fixed start time: an arbitrary round instant,
// so test output and golden data are stable across runs and machines.
var fakeEpoch = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)

// Fake is a manually advanced Clock for tests. Time stands still until
// Advance moves it; due timers, tickers, and AfterFunc callbacks fire in
// timestamp order from inside Advance (callbacks run on the advancing
// goroutine, with no Fake lock held, so they may re-enter the clock).
// BlockUntil lets a test wait until goroutines under test have registered
// their timers before advancing past them.
type Fake struct {
	mu      sync.Mutex
	cond    *sync.Cond // broadcast on every waiter-set or time change
	now     time.Time
	waiters []*fakeWaiter
}

// NewFake returns a Fake reading a fixed epoch (2030-01-01T00:00:00Z).
func NewFake() *Fake { return NewFakeAt(fakeEpoch) }

// NewFakeAt returns a Fake reading start.
func NewFakeAt(start time.Time) *Fake {
	f := &Fake{now: start}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// fakeWaiter is one pending timer, ticker, or AfterFunc registration.
type fakeWaiter struct {
	f      *Fake
	when   time.Time
	period time.Duration // > 0 for tickers
	ch     chan time.Time
	fn     func() // AfterFunc callback (nil for channel waiters)
	dead   bool   // stopped or (non-periodic) fired
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since implements Clock.
func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// NewTimer implements Clock.
func (f *Fake) NewTimer(d time.Duration) Timer {
	return f.register(d, 0, nil)
}

// NewTicker implements Clock.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive Fake ticker period")
	}
	return fakeTicker{f.register(d, d, nil)}
}

// fakeTicker narrows fakeWaiter's Stop to the Ticker signature.
type fakeTicker struct{ w *fakeWaiter }

func (t fakeTicker) C() <-chan time.Time { return t.w.ch }
func (t fakeTicker) Stop()               { t.w.Stop() }

// AfterFunc implements Clock.
func (f *Fake) AfterFunc(d time.Duration, fn func()) Timer {
	return f.register(d, 0, fn)
}

func (f *Fake) register(d, period time.Duration, fn func()) *fakeWaiter {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &fakeWaiter{f: f, when: f.now.Add(d), period: period, ch: make(chan time.Time, 1), fn: fn}
	f.waiters = append(f.waiters, w)
	f.cond.Broadcast()
	return w
}

// C implements Timer and Ticker.
func (w *fakeWaiter) C() <-chan time.Time { return w.ch }

// Stop implements Timer and Ticker.
func (w *fakeWaiter) Stop() bool {
	w.f.mu.Lock()
	defer w.f.mu.Unlock()
	was := !w.dead
	w.dead = true
	w.f.pruneLocked()
	w.f.cond.Broadcast()
	return was
}

// pruneLocked drops dead waiters. Caller holds f.mu.
func (f *Fake) pruneLocked() {
	live := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.dead {
			live = append(live, w)
		}
	}
	f.waiters = live
}

// Advance moves the clock forward by d, firing every registration due in
// [now, now+d] in timestamp order. Channel deliveries are non-blocking into
// a 1-buffered channel (time.Ticker's drop semantics); AfterFunc callbacks
// run synchronously on the calling goroutine with no lock held, so they may
// register or stop other timers. Advance returns once the clock reads
// now+d and every due waiter has fired.
func (f *Fake) Advance(d time.Duration) {
	if d < 0 {
		panic("clock: negative Advance")
	}
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		w := f.nextDueLocked(target)
		if w == nil {
			break
		}
		f.now = w.when
		if w.period > 0 {
			w.when = w.when.Add(w.period)
		} else {
			w.dead = true
			f.pruneLocked()
		}
		fn, ch, at := w.fn, w.ch, f.now
		f.cond.Broadcast()
		f.mu.Unlock()
		if fn != nil {
			fn()
		} else {
			select {
			case ch <- at:
			default: // receiver behind: drop, like time.Ticker
			}
		}
		f.mu.Lock()
	}
	f.now = target
	f.cond.Broadcast()
	f.mu.Unlock()
}

// nextDueLocked returns the earliest live waiter due at or before target
// (ties broken by registration order), or nil. Caller holds f.mu.
func (f *Fake) nextDueLocked(target time.Time) *fakeWaiter {
	idx := -1
	for i, w := range f.waiters {
		if w.dead || w.when.After(target) {
			continue
		}
		if idx < 0 || w.when.Before(f.waiters[idx].when) {
			idx = i
		}
	}
	if idx < 0 {
		return nil
	}
	return f.waiters[idx]
}

// BlockUntil blocks until at least n timers/tickers/callbacks are registered
// and pending on the clock — the synchronization a test needs between
// starting a goroutine that will set a timer and advancing past that timer's
// deadline.
func (f *Fake) BlockUntil(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.waiters) < n {
		f.cond.Wait()
	}
}

// Waiters reports how many live registrations are pending (for test
// assertions on cleanup).
func (f *Fake) Waiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}
