package clock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRealClockBasics(t *testing.T) {
	c := Real()
	before := c.Now()
	if c.Since(before) < 0 {
		t.Error("Since went backwards")
	}
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real timer never fired")
	}
	tk := c.NewTicker(time.Millisecond)
	select {
	case <-tk.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real ticker never ticked")
	}
	tk.Stop()
	fired := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("real AfterFunc never fired")
	}
}

func TestOr(t *testing.T) {
	if Or(nil) == nil {
		t.Fatal("Or(nil) = nil, want Real")
	}
	f := NewFake()
	if Or(f) != Clock(f) {
		t.Error("Or(f) did not pass f through")
	}
}

func TestFakeTimeStandsStill(t *testing.T) {
	f := NewFake()
	start := f.Now()
	if got := f.Now(); !got.Equal(start) {
		t.Errorf("Now moved without Advance: %v -> %v", start, got)
	}
	f.Advance(90 * time.Minute)
	if got := f.Since(start); got != 90*time.Minute {
		t.Errorf("Since after Advance = %v, want 90m", got)
	}
}

func TestFakeTimerFiresAtDeadline(t *testing.T) {
	f := NewFake()
	tm := f.NewTimer(10 * time.Second)
	f.Advance(9 * time.Second)
	select {
	case at := <-tm.C():
		t.Fatalf("timer fired early at %v", at)
	default:
	}
	f.Advance(time.Second)
	select {
	case at := <-tm.C():
		if want := f.Now(); !at.Equal(want) {
			t.Errorf("fire time = %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
	if f.Waiters() != 0 {
		t.Errorf("fired timer still registered (%d waiters)", f.Waiters())
	}
}

func TestFakeTimerStop(t *testing.T) {
	f := NewFake()
	tm := f.NewTimer(time.Second)
	if !tm.Stop() {
		t.Error("Stop on a pending timer = false")
	}
	if tm.Stop() {
		t.Error("second Stop = true")
	}
	f.Advance(time.Minute)
	select {
	case <-tm.C():
		t.Error("stopped timer fired")
	default:
	}
}

func TestFakeOrderedFiring(t *testing.T) {
	// Multiple due registrations fire in timestamp order within one Advance.
	f := NewFake()
	var mu sync.Mutex
	var order []int
	f.AfterFunc(3*time.Second, func() { mu.Lock(); order = append(order, 3); mu.Unlock() })
	f.AfterFunc(1*time.Second, func() { mu.Lock(); order = append(order, 1); mu.Unlock() })
	f.AfterFunc(2*time.Second, func() { mu.Lock(); order = append(order, 2); mu.Unlock() })
	f.Advance(time.Minute)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("fire order = %v, want [1 2 3]", order)
	}
}

func TestFakeAfterFuncSeesFireTime(t *testing.T) {
	// A callback observes the clock at its own deadline, not at the end of
	// the whole Advance — so cascaded scheduling composes correctly.
	f := NewFake()
	start := f.Now()
	var at time.Time
	var cascade atomic.Bool
	f.AfterFunc(2*time.Second, func() {
		at = f.Now()
		f.AfterFunc(3*time.Second, func() { cascade.Store(true) })
	})
	f.Advance(10 * time.Second)
	if want := start.Add(2 * time.Second); !at.Equal(want) {
		t.Errorf("callback saw %v, want %v", at, want)
	}
	if !cascade.Load() {
		t.Error("timer registered from a callback at t=2s for t=5s did not fire by t=10s")
	}
}

func TestFakeTickerDropsWhenBehind(t *testing.T) {
	f := NewFake()
	tk := f.NewTicker(time.Second)
	f.Advance(5 * time.Second) // nobody receiving: all but one tick dropped
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Errorf("buffered ticks = %d, want 1 (drop semantics)", n)
	}
	tk.Stop()
	f.Advance(5 * time.Second)
	select {
	case <-tk.C():
		t.Error("stopped ticker ticked")
	default:
	}
}

func TestFakeTickerStepAdvance(t *testing.T) {
	// Advancing one period at a time with a live receiver delivers every tick.
	f := NewFake()
	tk := f.NewTicker(time.Second)
	defer tk.Stop()
	for i := 0; i < 5; i++ {
		f.Advance(time.Second)
		select {
		case <-tk.C():
		case <-time.After(5 * time.Second):
			t.Fatalf("tick %d never delivered", i)
		}
	}
}

func TestFakeBlockUntil(t *testing.T) {
	f := NewFake()
	done := make(chan struct{})
	go func() {
		f.BlockUntil(1)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("BlockUntil(1) returned with no waiters")
	case <-time.After(10 * time.Millisecond):
	}
	tm := f.NewTimer(time.Hour)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("BlockUntil(1) never observed the registration")
	}
	tm.Stop()
}

// TestFakeConcurrentUse advances while goroutines register and wait — the
// -race run is the assertion.
func TestFakeConcurrentUse(t *testing.T) {
	f := NewFake()
	var fired atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tm := f.NewTimer(time.Duration(i+1) * time.Second)
			<-tm.C()
			fired.Add(1)
		}(i)
	}
	f.BlockUntil(8)
	f.Advance(10 * time.Second)
	wg.Wait()
	if fired.Load() != 8 {
		t.Errorf("fired = %d, want 8", fired.Load())
	}
}
