package featurestore

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/dataflow"
)

// Store is a content-addressed, disk-backed materialized store for CNN
// feature tables (DeepLens-style feature reuse). Entries are whole feature
// tables — one per (model, weights, data, layer, kind) key — serialized with
// the dataflow row codec and evicted LRU under a byte budget. The index is
// persisted so a restarted process (or a second one pointed at the same
// directory) resumes with the same contents and recency order.
type Store struct {
	dir    string
	budget int64 // bytes; <= 0 means unlimited

	mu      sync.Mutex
	entries map[string]*storeEntry // content address -> entry
	lru     *list.List             // front = most recently used
	used    int64
	clock   int64 // logical time for LRU persistence

	hits, misses, puts, evictions int64
	evictedBytes                  int64
}

type storeEntry struct {
	key      Key
	id       string
	size     int64
	lastUsed int64
	elem     *list.Element
}

const (
	entrySuffix = ".fse"
	indexName   = "index.vfs"
)

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	Entries      int   `json:"entries"`
	UsedBytes    int64 `json:"used_bytes"`
	BudgetBytes  int64 `json:"budget_bytes"`
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Puts         int64 `json:"puts"`
	Evictions    int64 `json:"evictions"`
	EvictedBytes int64 `json:"evicted_bytes"`
}

// Open loads (or creates) a store rooted at dir with the given byte budget
// (<= 0 for unlimited). A corrupt index is not fatal: the directory is wiped
// and the store starts cold, since without a trustworthy index the entry
// files cannot be attributed to keys.
func Open(dir string, budget int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("featurestore: %w", err)
	}
	s := &Store{
		dir:     dir,
		budget:  budget,
		entries: make(map[string]*storeEntry),
		lru:     list.New(),
		clock:   1,
	}
	persisted, err := s.loadIndex()
	if err != nil {
		// Corrupt or unreadable index: recover by starting cold.
		persisted = nil
		s.wipeEntryFiles()
		os.Remove(filepath.Join(dir, indexName))
	}
	// Oldest first so list insertion at the front yields MRU→LRU order.
	for i := len(persisted) - 1; i >= 0; i-- {
		e := persisted[i]
		id := e.Key.id()
		if _, dup := s.entries[id]; dup || e.Size < 0 {
			continue
		}
		fi, statErr := os.Stat(s.entryPath(id))
		if statErr != nil || fi.Size() != e.Size {
			// Entry file lost or damaged since the index was written.
			os.Remove(s.entryPath(id))
			continue
		}
		se := &storeEntry{key: e.Key, id: id, size: e.Size, lastUsed: e.LastUsed}
		se.elem = s.lru.PushBack(se)
		s.entries[id] = se
		s.used += e.Size
		if e.LastUsed >= s.clock {
			s.clock = e.LastUsed + 1
		}
	}
	s.removeOrphans()
	s.evictLocked(0)
	if len(s.entries) != len(persisted) || persisted == nil {
		s.persistIndexLocked()
	}
	return s, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Get returns the rows cached under k, or ok=false on a miss. A hit refreshes
// the entry's recency. An entry whose file has become unreadable is dropped
// and reported as a miss rather than an error, so callers can always fall
// back to recomputation.
func (s *Store) Get(k Key) ([]dataflow.Row, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := k.id()
	e, ok := s.entries[id]
	if !ok {
		s.misses++
		return nil, false, nil
	}
	blob, err := os.ReadFile(s.entryPath(id))
	var rows []dataflow.Row
	if err == nil {
		rows, err = dataflow.DecodeRows(blob)
	}
	if err != nil {
		s.dropLocked(e)
		s.persistIndexLocked()
		s.misses++
		return nil, false, nil
	}
	s.clock++
	e.lastUsed = s.clock
	s.lru.MoveToFront(e.elem)
	s.hits++
	return rows, true, nil
}

// Put materializes rows under k, evicting LRU entries as needed to respect
// the byte budget. A payload larger than the whole budget is skipped (not an
// error): caching it would only flush everything else for a single entry.
func (s *Store) Put(k Key, rows []dataflow.Row) error {
	blob, err := dataflow.EncodeRows(rows)
	if err != nil {
		return fmt.Errorf("featurestore: encode %s: %w", k, err)
	}
	size := int64(len(blob))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget > 0 && size > s.budget {
		return nil
	}
	id := k.id()
	if prev, ok := s.entries[id]; ok {
		s.dropLocked(prev)
	}
	s.evictLocked(size)
	if err := writeFileAtomic(s.entryPath(id), blob); err != nil {
		return fmt.Errorf("featurestore: write %s: %w", k, err)
	}
	s.clock++
	e := &storeEntry{key: k, id: id, size: size, lastUsed: s.clock}
	e.elem = s.lru.PushFront(e)
	s.entries[id] = e
	s.used += size
	s.puts++
	s.persistIndexLocked()
	return nil
}

// Contains reports whether k is cached, without touching recency or the
// hit/miss counters (used for planning probes, not reads).
func (s *Store) Contains(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[k.id()]
	return ok
}

// CachedLayers reports how many of the given layer indices — taken in order —
// have Feature entries cached for the (model, weights, data) triple. The
// count stops at the first miss because the executor consumes layers
// bottom-up: a hole in the middle forces inference from the image anyway.
func (s *Store) CachedLayers(model, weightsSum, dataSum string, layers []int) int {
	n := 0
	for _, li := range layers {
		k := Key{Model: model, WeightsSum: weightsSum, DataSum: dataSum, LayerIndex: li, Kind: Feature}
		if !s.Contains(k) {
			break
		}
		n++
	}
	return n
}

// Snapshot returns current counters.
func (s *Store) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:      len(s.entries),
		UsedBytes:    s.used,
		BudgetBytes:  s.budget,
		Hits:         s.hits,
		Misses:       s.misses,
		Puts:         s.puts,
		Evictions:    s.evictions,
		EvictedBytes: s.evictedBytes,
	}
}

// Close persists the index (entry recency included) to disk.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistIndexLocked()
}

// evictLocked frees space until incoming extra bytes fit under the budget.
func (s *Store) evictLocked(incoming int64) {
	if s.budget <= 0 {
		return
	}
	for s.used+incoming > s.budget && s.lru.Len() > 0 {
		victim := s.lru.Back().Value.(*storeEntry)
		s.dropLocked(victim)
		s.evictions++
		s.evictedBytes += victim.size
	}
}

// dropLocked removes an entry from memory and disk.
func (s *Store) dropLocked(e *storeEntry) {
	s.lru.Remove(e.elem)
	delete(s.entries, e.id)
	s.used -= e.size
	os.Remove(s.entryPath(e.id))
}

func (s *Store) entryPath(id string) string {
	return filepath.Join(s.dir, id+entrySuffix)
}

func (s *Store) loadIndex() ([]IndexEntry, error) {
	blob, err := os.ReadFile(filepath.Join(s.dir, indexName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return DecodeIndex(blob)
}

func (s *Store) persistIndexLocked() error {
	entries := make([]IndexEntry, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*storeEntry)
		entries = append(entries, IndexEntry{Key: e.key, Size: e.size, LastUsed: e.lastUsed})
	}
	return writeFileAtomic(filepath.Join(s.dir, indexName), EncodeIndex(entries))
}

// wipeEntryFiles deletes every entry file; used when the index is corrupt
// and the files can no longer be attributed to keys.
func (s *Store) wipeEntryFiles() {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, de := range names {
		if strings.HasSuffix(de.Name(), entrySuffix) {
			os.Remove(filepath.Join(s.dir, de.Name()))
		}
	}
}

// removeOrphans deletes entry files the index does not know about (e.g. a
// crash between an entry write and the index write).
func (s *Store) removeOrphans() {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, de := range names {
		name := de.Name()
		if !strings.HasSuffix(name, entrySuffix) {
			continue
		}
		id := strings.TrimSuffix(name, entrySuffix)
		if _, ok := s.entries[id]; !ok {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// writeFileAtomic writes via a temp file + rename so readers (and crashes)
// never observe a partially written file.
func writeFileAtomic(path string, blob []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
