package featurestore

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/dataflow"
	"repro/internal/faultinject"
)

// Failpoint sites (see internal/faultinject). The two writeFileAtomic base
// sites expand into ".create", ".write" (a byte site), and ".rename"
// sub-sites; the put.* sites are the kill-here points crash-consistency
// tests arm between the store's two persistence steps.
const (
	// FaultEntryWrite is the base site for entry-file writes; sub-sites:
	// featurestore/entry.create, featurestore/entry.write (bytes),
	// featurestore/entry.rename.
	FaultEntryWrite = "featurestore/entry"
	// FaultIndexWrite is the base site for index writes; sub-sites:
	// featurestore/index.create, featurestore/index.write (bytes),
	// featurestore/index.rename.
	FaultIndexWrite = "featurestore/index"
	// FaultEntryRead guards Get's entry-file read-back.
	FaultEntryRead = "featurestore/entry.read"
	// FaultPutEntryWritten sits between a Put's entry write and its index
	// persist — a kill here leaves an entry file the index knows nothing
	// about (or, on replace, a file whose size disagrees with the index).
	FaultPutEntryWritten = "featurestore/put.entry-written"
	// FaultPutIndexPersisted sits after a Put's index persist — combined
	// with SilentTruncate on featurestore/index.write it crashes the
	// process right after a torn index reached its final name.
	FaultPutIndexPersisted = "featurestore/put.index-persisted"
)

// Store is a content-addressed, disk-backed materialized store for CNN
// feature tables (DeepLens-style feature reuse). Entries are whole feature
// tables — one per (model, weights, data, layer, kind) key — serialized with
// the dataflow row codec and evicted LRU under a byte budget. The index is
// persisted so a restarted process (or a second one pointed at the same
// directory) resumes with the same contents and recency order.
type Store struct {
	dir    string
	budget int64 // bytes; <= 0 means unlimited

	mu      sync.Mutex
	entries map[string]*storeEntry // content address -> entry
	lru     *list.List             // front = most recently used
	used    int64
	clock   int64 // logical time for LRU persistence

	hits, misses, puts, evictions int64
	evictedBytes                  int64
	dedupPuts                     int64

	// flightMu guards the in-flight fill registry (GetOrFill); it is
	// separate from mu so sharers blocked on a fill never serialize plain
	// Get/Put traffic.
	flightMu  sync.Mutex
	flights   map[string]*flight
	coalesced int64
}

type storeEntry struct {
	key      Key
	id       string
	size     int64
	lastUsed int64
	elem     *list.Element
	// sum is the blob's content hash, known only for entries written by this
	// process (entries recovered from the index have hasSum == false and are
	// never dedup candidates).
	sum    [32]byte
	hasSum bool
}

// flight is one in-progress fill: the first misser computes, sharers wait on
// done and take deep copies of the result.
type flight struct {
	done chan struct{}
	rows []dataflow.Row
	err  error
}

const (
	entrySuffix = ".fse"
	indexName   = "index.vfs"
)

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	Entries      int   `json:"entries"`
	UsedBytes    int64 `json:"used_bytes"`
	BudgetBytes  int64 `json:"budget_bytes"`
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Puts         int64 `json:"puts"`
	Evictions    int64 `json:"evictions"`
	EvictedBytes int64 `json:"evicted_bytes"`
	// DedupPuts counts Puts whose payload was byte-identical to the entry
	// already stored under the key; the write was skipped (recency still
	// refreshed).
	DedupPuts int64 `json:"dedup_puts"`
	// Coalesced counts GetOrFill callers served by another caller's
	// in-flight fill instead of running the fill themselves.
	Coalesced int64 `json:"coalesced"`
}

// Open loads (or creates) a store rooted at dir with the given byte budget
// (<= 0 for unlimited). A corrupt index is not fatal: the directory is wiped
// and the store starts cold, since without a trustworthy index the entry
// files cannot be attributed to keys.
func Open(dir string, budget int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("featurestore: %w", err)
	}
	s := &Store{
		dir:     dir,
		budget:  budget,
		entries: make(map[string]*storeEntry),
		lru:     list.New(),
		clock:   1,
	}
	persisted, err := s.loadIndex()
	if err != nil {
		// Corrupt or unreadable index: recover by starting cold.
		persisted = nil
		s.wipeEntryFiles()
		os.Remove(filepath.Join(dir, indexName))
	}
	// Oldest first so list insertion at the front yields MRU→LRU order.
	for i := len(persisted) - 1; i >= 0; i-- {
		e := persisted[i]
		id := e.Key.id()
		if _, dup := s.entries[id]; dup || e.Size < 0 {
			continue
		}
		fi, statErr := os.Stat(s.entryPath(id))
		if statErr != nil || fi.Size() != e.Size {
			// Entry file lost or damaged since the index was written.
			os.Remove(s.entryPath(id))
			continue
		}
		se := &storeEntry{key: e.Key, id: id, size: e.Size, lastUsed: e.LastUsed}
		se.elem = s.lru.PushBack(se)
		s.entries[id] = se
		s.used += e.Size
		if e.LastUsed >= s.clock {
			s.clock = e.LastUsed + 1
		}
	}
	s.sweepTempFiles()
	s.removeOrphans()
	s.evictLocked(0)
	if len(s.entries) != len(persisted) || persisted == nil {
		s.persistIndexLocked()
	}
	return s, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Get returns the rows cached under k, or ok=false on a miss. A hit refreshes
// the entry's recency. An entry whose file has become unreadable is dropped
// and reported as a miss rather than an error, so callers can always fall
// back to recomputation.
func (s *Store) Get(k Key) ([]dataflow.Row, bool, error) {
	id := k.id()
	s.mu.Lock()
	e, ok := s.entries[id]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false, nil
	}
	s.mu.Unlock()

	// Read and decode outside the lock: a single large-entry read must not
	// serialize every other request against the process-wide store. The
	// entry file may be replaced or removed meanwhile — rename-based writes
	// guarantee we still see a complete blob or a clean ENOENT.
	var rows []dataflow.Row
	blob, err := s.readEntry(id)
	if err == nil {
		rows, err = dataflow.DecodeRows(blob)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	cur, present := s.entries[id]
	if err != nil {
		// Unreadable or undecodable entry: drop it — unless it already
		// vanished (or was replaced) while we read — and report a miss so
		// callers fall back to recomputation.
		if present && cur == e {
			s.dropLocked(cur)
			s.persistIndexLocked()
		}
		s.misses++
		return nil, false, nil
	}
	if present {
		s.clock++
		cur.lastUsed = s.clock
		s.lru.MoveToFront(cur.elem)
	}
	s.hits++
	return rows, true, nil
}

// readEntry loads one entry file's blob (its failpoint site models a bad
// sector or lost file at read time).
func (s *Store) readEntry(id string) ([]byte, error) {
	if err := faultinject.Hit(FaultEntryRead); err != nil {
		return nil, err
	}
	return os.ReadFile(s.entryPath(id))
}

// Put materializes rows under k, evicting LRU entries as needed to respect
// the byte budget. A payload larger than the whole budget is skipped (not an
// error): caching it would only flush everything else for a single entry.
func (s *Store) Put(k Key, rows []dataflow.Row) error {
	blob, err := dataflow.EncodeRows(rows)
	if err != nil {
		return fmt.Errorf("featurestore: encode %s: %w", k, err)
	}
	size := int64(len(blob))
	sum := sha256.Sum256(blob)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget > 0 && size > s.budget {
		return nil
	}
	id := k.id()
	if prev, ok := s.entries[id]; ok && prev.hasSum && prev.size == size && prev.sum == sum {
		// Identical content is already durable under this key — the classic
		// duplicate-work race (two runs miss, both compute, both Put). Skip
		// the disk write entirely; just refresh recency.
		s.clock++
		prev.lastUsed = s.clock
		s.lru.MoveToFront(prev.elem)
		s.dedupPuts++
		return nil
	}
	// Write the new blob before touching the existing entry: writeFileAtomic
	// replaces the old file only at its final rename, so a failed write
	// leaves a previous entry for the same key intact on disk and in memory
	// instead of destroying the old features and losing the key.
	if err := writeFileAtomic(FaultEntryWrite, s.entryPath(id), blob); err != nil {
		return fmt.Errorf("featurestore: write %s: %w", k, err)
	}
	if ferr := faultinject.Hit(FaultPutEntryWritten); ferr != nil {
		// Injected failure between entry write and index persist: roll the
		// key back entirely so disk and memory stay in agreement (the old
		// blob, if any, was already replaced by the rename above).
		if prev, ok := s.entries[id]; ok {
			s.dropLocked(prev)
			s.persistIndexLocked()
		} else {
			os.Remove(s.entryPath(id))
		}
		return fmt.Errorf("featurestore: write %s: %w", k, ferr)
	}
	if prev, ok := s.entries[id]; ok {
		// The rename already swapped the old blob out; detach the stale
		// in-memory entry without deleting the new file.
		s.detachLocked(prev)
	}
	s.evictLocked(size)
	s.clock++
	e := &storeEntry{key: k, id: id, size: size, lastUsed: s.clock, sum: sum, hasSum: true}
	e.elem = s.lru.PushFront(e)
	s.entries[id] = e
	s.used += size
	s.puts++
	if err := s.persistIndexLocked(); err != nil {
		// The entry itself is durable and usable; the stale index only
		// costs a cold entry after a crash (Open removes the orphan file).
		return fmt.Errorf("featurestore: persist index for %s: %w", k, err)
	}
	if ferr := faultinject.Hit(FaultPutIndexPersisted); ferr != nil {
		return fmt.Errorf("featurestore: %s: %w", k, ferr)
	}
	return nil
}

// GetOrFill returns the rows under k, computing them at most once across
// concurrent callers: a hit reads the store; on a miss the first caller runs
// fill and Puts the result, while every concurrent caller for the same key
// blocks on that flight and receives a deep copy — singleflight-style
// coalescing that closes the duplicate-work race where two runs miss on the
// same key and both pay the DL session. filled reports whether this caller
// ran fill itself (false for store hits and coalesced waiters).
func (s *Store) GetOrFill(k Key, fill func() ([]dataflow.Row, error)) (rows []dataflow.Row, filled bool, err error) {
	id := k.id()
	if rows, ok, err := s.Get(k); err != nil {
		return nil, false, err
	} else if ok {
		return rows, false, nil
	}
	s.flightMu.Lock()
	if f, ok := s.flights[id]; ok {
		s.flightMu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		s.flightMu.Lock()
		s.coalesced++
		s.flightMu.Unlock()
		out := make([]dataflow.Row, len(f.rows))
		for i := range f.rows {
			out[i] = f.rows[i].Clone()
		}
		return out, false, nil
	}
	if s.flights == nil {
		s.flights = make(map[string]*flight)
	}
	f := &flight{done: make(chan struct{})}
	s.flights[id] = f
	s.flightMu.Unlock()

	result, err := fill()
	if err == nil {
		// Best-effort durability: a failed Put (budget skip, disk fault)
		// still serves the flight's sharers from memory.
		s.Put(k, result)
	}
	f.rows, f.err = result, err
	close(f.done)
	s.flightMu.Lock()
	delete(s.flights, id)
	s.flightMu.Unlock()
	return result, err == nil, err
}

// Contains reports whether k is cached, without touching recency or the
// hit/miss counters (used for planning probes, not reads).
func (s *Store) Contains(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[k.id()]
	return ok
}

// CachedLayers reports how many of the given layer indices — taken in order —
// have Feature entries cached for the (model, weights, data) triple. The
// count stops at the first miss because the executor consumes layers
// bottom-up: a hole in the middle forces inference from the image anyway.
func (s *Store) CachedLayers(model, weightsSum, dataSum string, layers []int) int {
	n := 0
	for _, li := range layers {
		k := Key{Model: model, WeightsSum: weightsSum, DataSum: dataSum, LayerIndex: li, Kind: Feature}
		if !s.Contains(k) {
			break
		}
		n++
	}
	return n
}

// Snapshot returns current counters.
func (s *Store) Snapshot() Stats {
	s.flightMu.Lock()
	coalesced := s.coalesced
	s.flightMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:      len(s.entries),
		UsedBytes:    s.used,
		BudgetBytes:  s.budget,
		Hits:         s.hits,
		Misses:       s.misses,
		Puts:         s.puts,
		Evictions:    s.evictions,
		EvictedBytes: s.evictedBytes,
		DedupPuts:    s.dedupPuts,
		Coalesced:    coalesced,
	}
}

// Close persists the index (entry recency included) to disk.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistIndexLocked()
}

// Fsck cross-checks the in-memory index against the directory: every indexed
// entry must have a file of the recorded size, every entry file must be
// indexed, no atomic-write temp files may linger, the byte accounting must
// equal the sum of entry sizes, and the persisted index must decode. Chaos
// and crash-consistency tests call it after every fault schedule; it returns
// the first inconsistency found.
func (s *Store) Fsck() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum int64
	for id, e := range s.entries {
		fi, err := os.Stat(s.entryPath(id))
		if err != nil {
			return fmt.Errorf("featurestore: fsck: indexed entry %s has no file: %w", id, err)
		}
		if fi.Size() != e.size {
			return fmt.Errorf("featurestore: fsck: entry %s is %d bytes on disk, index says %d", id, fi.Size(), e.size)
		}
		sum += e.size
	}
	if sum != s.used {
		return fmt.Errorf("featurestore: fsck: %d bytes charged, entries sum to %d", s.used, sum)
	}
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("featurestore: fsck: %w", err)
	}
	for _, de := range des {
		name := de.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			return fmt.Errorf("featurestore: fsck: stranded temp file %s", name)
		}
		if strings.HasSuffix(name, entrySuffix) {
			if _, ok := s.entries[strings.TrimSuffix(name, entrySuffix)]; !ok {
				return fmt.Errorf("featurestore: fsck: orphan entry file %s", name)
			}
		}
	}
	blob, err := os.ReadFile(filepath.Join(s.dir, indexName))
	if err != nil {
		if os.IsNotExist(err) && len(s.entries) == 0 {
			return nil // never persisted; an empty store is consistent
		}
		return fmt.Errorf("featurestore: fsck: reading index: %w", err)
	}
	if _, err := DecodeIndex(blob); err != nil {
		return fmt.Errorf("featurestore: fsck: %w", err)
	}
	return nil
}

// evictLocked frees space until incoming extra bytes fit under the budget.
func (s *Store) evictLocked(incoming int64) {
	if s.budget <= 0 {
		return
	}
	for s.used+incoming > s.budget && s.lru.Len() > 0 {
		victim := s.lru.Back().Value.(*storeEntry)
		s.dropLocked(victim)
		s.evictions++
		s.evictedBytes += victim.size
	}
}

// detachLocked removes an entry from the in-memory index without touching
// its file — used when the file has already been replaced in place.
func (s *Store) detachLocked(e *storeEntry) {
	s.lru.Remove(e.elem)
	delete(s.entries, e.id)
	s.used -= e.size
}

// dropLocked removes an entry from memory and disk.
func (s *Store) dropLocked(e *storeEntry) {
	s.detachLocked(e)
	os.Remove(s.entryPath(e.id))
}

func (s *Store) entryPath(id string) string {
	return filepath.Join(s.dir, id+entrySuffix)
}

func (s *Store) loadIndex() ([]IndexEntry, error) {
	blob, err := os.ReadFile(filepath.Join(s.dir, indexName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return DecodeIndex(blob)
}

func (s *Store) persistIndexLocked() error {
	entries := make([]IndexEntry, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*storeEntry)
		entries = append(entries, IndexEntry{Key: e.key, Size: e.size, LastUsed: e.lastUsed})
	}
	return writeFileAtomic(FaultIndexWrite, filepath.Join(s.dir, indexName), EncodeIndex(entries))
}

// sweepTempFiles removes stale atomic-write temp files — a process killed
// between a temp write and its rename leaves one behind.
func (s *Store) sweepTempFiles() {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, de := range names {
		if strings.HasPrefix(de.Name(), tmpPrefix) {
			os.Remove(filepath.Join(s.dir, de.Name()))
		}
	}
}

// wipeEntryFiles deletes every entry file; used when the index is corrupt
// and the files can no longer be attributed to keys.
func (s *Store) wipeEntryFiles() {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, de := range names {
		if strings.HasSuffix(de.Name(), entrySuffix) {
			os.Remove(filepath.Join(s.dir, de.Name()))
		}
	}
}

// removeOrphans deletes entry files the index does not know about (e.g. a
// crash between an entry write and the index write).
func (s *Store) removeOrphans() {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, de := range names {
		name := de.Name()
		if !strings.HasSuffix(name, entrySuffix) {
			continue
		}
		id := strings.TrimSuffix(name, entrySuffix)
		if _, ok := s.entries[id]; !ok {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// tmpPrefix names the atomic-write temp files so crash recovery can sweep
// the ones a kill stranded.
const tmpPrefix = ".tmp-"

// writeFileAtomic writes via a temp file + rename so readers (and crashes)
// never observe a partially written file. The failpoint sub-sites under the
// base site model the distinct failure points: temp-file creation
// ("<site>.create"), the data write ("<site>.write", a byte site that can
// tear), and the rename boundary ("<site>.rename" — a kill there strands a
// complete temp file without the final name ever appearing).
func writeFileAtomic(site, path string, blob []byte) error {
	if err := faultinject.Hit(site + ".create"); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), tmpPrefix+"*")
	if err != nil {
		return err
	}
	payload := blob
	if v := faultinject.HitBytes(site+".write", int64(len(blob))); v.Err != nil {
		// A reported torn write: persist the allowed prefix (what a dying
		// disk would leave in the temp file), then fail — the temp file is
		// removed, so the tear never reaches the final name.
		if v.Allowed > 0 {
			tmp.Write(blob[:v.Allowed])
		}
		tmp.Close()
		os.Remove(tmp.Name())
		return v.Err
	} else if v.SilentTear {
		// A silent torn write (no fsync before rename): the prefix lands
		// and the rename proceeds as if everything were durable.
		payload = blob[:v.Allowed]
	}
	_, werr := tmp.Write(payload)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := faultinject.Hit(site + ".rename"); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
