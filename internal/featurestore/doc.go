// Package featurestore implements a content-addressed, disk-backed
// materialized store for CNN features, the cross-run reuse layer of the
// Vista reproduction (DeepLens-style): features computed by one run attach
// to later runs at store-I/O cost instead of CNN FLOPs.
//
// Entries are keyed by (model name, weights checksum, dataset checksum,
// layer index, kind) — see Key — so a hit is exact by construction: the
// same model weights over the same rows. Kinds distinguish emitted feature
// vectors (Feature) from staged raw carries (RawCarry), letting a warm run
// resume partial inference mid-chain. The store enforces a byte budget with
// LRU eviction, persists its index and entry files via atomic
// write-and-rename, and recovers from torn writes on reopen; Fsck audits
// the directory against the index, and the faultinject sites declared in
// store.go let crash-consistency tests kill the process between the two
// persistence steps.
package featurestore
