package featurestore

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/tensor"
)

// featRows builds a small feature table whose float content is derived from
// seed, so distinct seeds give distinct (but similarly sized) payloads.
func featRows(seed int, n, dim int) []dataflow.Row {
	rows := make([]dataflow.Row, n)
	for i := range rows {
		vec := make([]float32, dim)
		for j := range vec {
			vec[j] = float32(seed*1000+i*dim+j) * 0.25
		}
		rows[i] = dataflow.Row{
			ID:       int64(i),
			Features: tensor.NewTensorList(tensor.MustFromSlice(vec, dim)),
		}
	}
	return rows
}

func testKey(layer int, kind EntryKind) Key {
	return Key{Model: "tiny-alexnet", WeightsSum: "w0", DataSum: "d0", LayerIndex: layer, Kind: kind}
}

func encodedSize(t *testing.T, rows []dataflow.Row) int64 {
	t.Helper()
	blob, err := dataflow.EncodeRows(rows)
	if err != nil {
		t.Fatalf("EncodeRows: %v", err)
	}
	return int64(len(blob))
}

// diskUsage sums the sizes of all entry files in dir.
func diskUsage(t *testing.T, dir string) int64 {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var total int64
	for _, de := range des {
		if !strings.HasSuffix(de.Name(), entrySuffix) {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			t.Fatalf("Info: %v", err)
		}
		total += fi.Size()
	}
	return total
}

func TestStoreRoundTripByteIdentical(t *testing.T) {
	s, err := Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rows := featRows(1, 16, 8)
	k := testKey(3, Feature)
	if err := s.Put(k, rows); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok, err := s.Get(k)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	want, _ := dataflow.EncodeRows(rows)
	back, err := dataflow.EncodeRows(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(want, back) {
		t.Fatal("cached rows are not byte-identical to the originals")
	}
	st := s.Snapshot()
	if st.Hits != 1 || st.Misses != 0 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if _, ok, _ := s.Get(testKey(4, Feature)); ok {
		t.Fatal("unexpected hit for absent key")
	}
	if s.Snapshot().Misses != 1 {
		t.Fatalf("miss not counted: %+v", s.Snapshot())
	}
}

func TestStoreBudgetNeverExceeded(t *testing.T) {
	dir := t.TempDir()
	one := encodedSize(t, featRows(0, 32, 16))
	budget := one*3 + one/2 // room for ~3 entries
	s, err := Open(dir, budget)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 12; i++ {
		if err := s.Put(testKey(i, Feature), featRows(i, 32, 16)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		st := s.Snapshot()
		if st.UsedBytes > budget {
			t.Fatalf("after put %d: used %d exceeds budget %d", i, st.UsedBytes, budget)
		}
		if du := diskUsage(t, dir); du > budget {
			t.Fatalf("after put %d: disk usage %d exceeds budget %d", i, du, budget)
		}
	}
	st := s.Snapshot()
	if st.Evictions == 0 || st.EvictedBytes == 0 {
		t.Fatalf("expected evictions under a tight budget: %+v", st)
	}
	if st.Entries == 0 {
		t.Fatal("store should retain the most recent entries")
	}
}

func TestStoreLRUKeepsTouchedEntry(t *testing.T) {
	sizes := make([]int64, 4)
	for i := range sizes {
		sizes[i] = encodedSize(t, featRows(i, 32, 16))
	}
	budget := sizes[0] + sizes[1] + sizes[2]
	s, err := Open(t.TempDir(), budget)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(testKey(i, Feature), featRows(i, 32, 16)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	// Touch entry 0 so entry 1 becomes LRU.
	if _, ok, _ := s.Get(testKey(0, Feature)); !ok {
		t.Fatal("entry 0 should be cached")
	}
	if err := s.Put(testKey(3, Feature), featRows(3, 32, 16)); err != nil {
		t.Fatalf("Put 3: %v", err)
	}
	if !s.Contains(testKey(0, Feature)) {
		t.Fatal("recently used entry 0 was evicted")
	}
	if s.Contains(testKey(1, Feature)) {
		t.Fatal("LRU entry 1 survived eviction")
	}
	if !s.Contains(testKey(3, Feature)) {
		t.Fatal("new entry 3 missing")
	}
	if used := s.Snapshot().UsedBytes; used > budget {
		t.Fatalf("used %d exceeds budget %d", used, budget)
	}
}

func TestStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rows := featRows(7, 8, 4)
	if err := s.Put(testKey(2, Feature), rows); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put(testKey(2, RawCarry), featRows(8, 8, 4)); err != nil {
		t.Fatalf("Put raw: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if st := s2.Snapshot(); st.Entries != 2 {
		t.Fatalf("entries lost across restart: %+v", st)
	}
	got, ok, err := s2.Get(testKey(2, Feature))
	if err != nil || !ok {
		t.Fatalf("Get after restart: ok=%v err=%v", ok, err)
	}
	want, _ := dataflow.EncodeRows(rows)
	back, _ := dataflow.EncodeRows(got)
	if !bytes.Equal(want, back) {
		t.Fatal("restart changed cached bytes")
	}
}

func TestStoreCorruptIndexRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Put(testKey(1, Feature), featRows(1, 8, 4)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, indexName), []byte("not an index"), 0o644); err != nil {
		t.Fatalf("corrupt index: %v", err)
	}

	s2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatalf("Open after corruption must recover, got: %v", err)
	}
	if st := s2.Snapshot(); st.Entries != 0 || st.UsedBytes != 0 {
		t.Fatalf("store should start cold after index corruption: %+v", st)
	}
	if du := diskUsage(t, dir); du != 0 {
		t.Fatalf("orphan entry files left behind: %d bytes", du)
	}
	// The recovered store must be usable.
	if err := s2.Put(testKey(1, Feature), featRows(1, 8, 4)); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	if _, ok, _ := s2.Get(testKey(1, Feature)); !ok {
		t.Fatal("Get after recovery")
	}
}

func TestStoreSkipsOversizedEntry(t *testing.T) {
	rows := featRows(1, 64, 32)
	budget := encodedSize(t, rows) / 2
	s, err := Open(t.TempDir(), budget)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Put(testKey(0, Feature), rows); err != nil {
		t.Fatalf("oversized Put must be a no-op, got: %v", err)
	}
	if st := s.Snapshot(); st.Entries != 0 || st.UsedBytes != 0 {
		t.Fatalf("oversized entry was stored: %+v", st)
	}
}

func TestCachedLayersPrefix(t *testing.T) {
	s, err := Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, li := range []int{4, 5, 7} { // hole at 6
		if err := s.Put(testKey(li, Feature), featRows(li, 4, 4)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if n := s.CachedLayers("tiny-alexnet", "w0", "d0", []int{4, 5, 6, 7}); n != 2 {
		t.Fatalf("CachedLayers = %d, want 2 (stop at the hole)", n)
	}
	if n := s.CachedLayers("tiny-alexnet", "w0", "d0", []int{4, 5, 7}); n != 3 {
		t.Fatalf("CachedLayers = %d, want 3", n)
	}
	if n := s.CachedLayers("tiny-alexnet", "other", "d0", []int{4}); n != 0 {
		t.Fatalf("CachedLayers with wrong weights = %d, want 0", n)
	}
}

func TestDataChecksumSensitivity(t *testing.T) {
	rows := []dataflow.Row{
		{ID: 1, Image: []byte{1, 2, 3}},
		{ID: 2, Image: []byte{4, 5}},
	}
	base := DataChecksum(rows)
	if base != DataChecksum(rows) {
		t.Fatal("DataChecksum is not deterministic")
	}
	mutID := []dataflow.Row{{ID: 9, Image: []byte{1, 2, 3}}, rows[1]}
	if DataChecksum(mutID) == base {
		t.Fatal("checksum ignores row IDs")
	}
	mutImg := []dataflow.Row{{ID: 1, Image: []byte{1, 2, 9}}, rows[1]}
	if DataChecksum(mutImg) == base {
		t.Fatal("checksum ignores image bytes")
	}
	// Boundary shifts must not collide: {1,2,3},{4,5} vs {1,2},{3,4,5}.
	shift := []dataflow.Row{{ID: 1, Image: []byte{1, 2}}, {ID: 2, Image: []byte{3, 4, 5}}}
	if DataChecksum(shift) == base {
		t.Fatal("checksum ignores image boundaries")
	}
}

func TestIndexCodecRoundTrip(t *testing.T) {
	entries := []IndexEntry{
		{Key: testKey(3, Feature), Size: 1234, LastUsed: 5},
		{Key: testKey(3, RawCarry), Size: 99, LastUsed: 6},
		{Key: Key{Model: "vgg16", WeightsSum: "w1", DataSum: "d1", LayerIndex: 12, Kind: Feature}, Size: 7, LastUsed: 1},
	}
	blob := EncodeIndex(entries)
	got, err := DecodeIndex(blob)
	if err != nil {
		t.Fatalf("DecodeIndex: %v", err)
	}
	if len(got) != len(entries) {
		t.Fatalf("len = %d, want %d", len(got), len(entries))
	}
	for i := range got {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}
}
