package featurestore

import "repro/internal/obs"

// RegisterMetrics exposes the store's counters as func-backed series in reg,
// read live at scrape time. Re-registering (e.g. per run against a long-lived
// server registry) is safe: the registry replaces the callbacks, so the most
// recently registered store backs the series.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	stat := func(read func(Stats) int64) func() float64 {
		return func() float64 { return float64(read(s.Snapshot())) }
	}
	reg.CounterFunc("vista_featurestore_hits_total",
		"Store lookups served from a materialized entry.",
		stat(func(st Stats) int64 { return st.Hits }))
	reg.CounterFunc("vista_featurestore_misses_total",
		"Store lookups that found no entry.",
		stat(func(st Stats) int64 { return st.Misses }))
	reg.CounterFunc("vista_featurestore_puts_total",
		"Feature tables materialized into the store.",
		stat(func(st Stats) int64 { return st.Puts }))
	reg.CounterFunc("vista_featurestore_dedup_puts_total",
		"Puts skipped because identical content was already stored.",
		stat(func(st Stats) int64 { return st.DedupPuts }))
	reg.CounterFunc("vista_featurestore_coalesced_total",
		"GetOrFill callers served by another caller's in-flight fill.",
		stat(func(st Stats) int64 { return st.Coalesced }))
	reg.CounterFunc("vista_featurestore_evictions_total",
		"Entries evicted to stay under the byte budget.",
		stat(func(st Stats) int64 { return st.Evictions }))
	reg.CounterFunc("vista_featurestore_evicted_bytes_total",
		"Bytes released by evictions.",
		stat(func(st Stats) int64 { return st.EvictedBytes }))
	reg.GaugeFunc("vista_featurestore_entries",
		"Materialized entries currently resident.",
		stat(func(st Stats) int64 { return int64(st.Entries) }))
	reg.GaugeFunc("vista_featurestore_used_bytes",
		"Bytes of serialized features on disk.",
		stat(func(st Stats) int64 { return st.UsedBytes }))
	reg.GaugeFunc("vista_featurestore_budget_bytes",
		"Configured byte budget (0 = unlimited).",
		stat(func(st Stats) int64 { return st.BudgetBytes }))
}
