package featurestore

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dataflow"
)

// TestPutDedupSkipsIdenticalContent is the regression test for the
// duplicate-work race's second half: two runs that both computed the same
// feature table must not rewrite (and double-journal) the identical entry.
// Pre-fix, the second Put replaced the entry and the dedup counter stayed 0.
func TestPutDedupSkipsIdenticalContent(t *testing.T) {
	s, err := Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rows := featRows(1, 16, 8)
	k := testKey(3, Feature)
	if err := s.Put(k, rows); err != nil {
		t.Fatalf("first Put: %v", err)
	}
	if err := s.Put(k, rows); err != nil {
		t.Fatalf("identical Put: %v", err)
	}
	st := s.Snapshot()
	if st.Puts != 1 || st.DedupPuts != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 put + 1 dedup over 1 entry", st)
	}

	// Different content under the same key is a real replace, not a dedup.
	if err := s.Put(k, featRows(2, 16, 8)); err != nil {
		t.Fatalf("replacing Put: %v", err)
	}
	st = s.Snapshot()
	if st.Puts != 2 || st.DedupPuts != 1 {
		t.Errorf("stats after replace = %+v, want 2 puts + 1 dedup", st)
	}
}

// TestGetOrFillRunsFillOnce is the regression test for the duplicate-work
// race itself: N concurrent misses on the same key must run the fill exactly
// once, with every other caller coalescing onto the in-flight computation.
// Pre-fix (plain Get-miss → compute → Put), every caller computed.
func TestGetOrFillRunsFillOnce(t *testing.T) {
	s, err := Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := testKey(5, Feature)
	want := featRows(7, 8, 4)

	const parallel = 16
	var fills atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([][]dataflow.Row, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows, _, err := s.GetOrFill(k, func() ([]dataflow.Row, error) {
				fills.Add(1)
				<-release // hold the flight open until everyone has arrived
				return featRows(7, 8, 4), nil
			})
			if err != nil {
				t.Errorf("GetOrFill: %v", err)
			}
			results[i] = rows
		}(i)
	}
	// Wait until one fill is in flight, then let the rest pile on before it
	// completes.
	for fills.Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times for %d concurrent misses, want once", got, parallel)
	}
	wantBlob, _ := dataflow.EncodeRows(want)
	for i, rows := range results {
		blob, err := dataflow.EncodeRows(rows)
		if err != nil {
			t.Fatalf("caller %d re-encode: %v", i, err)
		}
		if string(blob) != string(wantBlob) {
			t.Errorf("caller %d got different rows", i)
		}
	}

	// Sharers get deep copies: mutating one caller's rows must not leak into
	// another's.
	if len(results[0]) > 0 && results[0][0].Features.Len() > 0 {
		results[0][0].Features.Get(0).Data()[0] = -999
		if results[1][0].Features.Get(0).Data()[0] == -999 {
			t.Error("coalesced callers share backing tensors")
		}
	}

	st := s.Snapshot()
	if st.Coalesced != parallel-1 {
		t.Errorf("coalesced = %d, want %d", st.Coalesced, parallel-1)
	}
	// The winner's Put materialized the entry; a later Get hits.
	if _, ok, err := s.Get(k); err != nil || !ok {
		t.Errorf("entry not materialized after fill: ok=%v err=%v", ok, err)
	}
	if s.flightsLen() != 0 {
		t.Errorf("%d flights leaked", s.flightsLen())
	}
}

// TestGetOrFillPropagatesFillError checks that a failed fill fails every
// coalesced caller, leaves nothing in the store, and clears the flight so a
// later caller retries.
func TestGetOrFillPropagatesFillError(t *testing.T) {
	s, err := Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := testKey(6, Feature)
	boom := errors.New("fill exploded")

	var fills atomic.Int64
	release := make(chan struct{})
	const parallel = 4
	var wg sync.WaitGroup
	errs := make([]error, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := s.GetOrFill(k, func() ([]dataflow.Row, error) {
				fills.Add(1)
				<-release
				return nil, boom
			})
			errs[i] = err
		}(i)
	}
	for fills.Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times, want once", got)
	}
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("caller %d error = %v, want the fill's error", i, err)
		}
	}
	if _, ok, _ := s.Get(k); ok {
		t.Error("failed fill left an entry behind")
	}
	// The flight is gone: a retry runs the fill again and succeeds.
	rows, filled, err := s.GetOrFill(k, func() ([]dataflow.Row, error) {
		return featRows(9, 4, 4), nil
	})
	if err != nil || !filled || len(rows) != 4 {
		t.Errorf("retry after failed fill: rows=%d filled=%v err=%v", len(rows), filled, err)
	}
	if s.flightsLen() != 0 {
		t.Errorf("%d flights leaked", s.flightsLen())
	}
}

// TestGetOrFillHitSkipsFill checks the fast path: a materialized entry is
// served without invoking the fill at all.
func TestGetOrFillHitSkipsFill(t *testing.T) {
	s, err := Open(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := testKey(7, Feature)
	if err := s.Put(k, featRows(3, 8, 4)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	rows, filled, err := s.GetOrFill(k, func() ([]dataflow.Row, error) {
		t.Error("fill invoked on a hit")
		return nil, nil
	})
	if err != nil || filled || len(rows) != 8 {
		t.Errorf("hit path: rows=%d filled=%v err=%v", len(rows), filled, err)
	}
}

// flightsLen reports in-flight fills (white-box, for leak checks).
func (s *Store) flightsLen() int {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	return len(s.flights)
}
