package featurestore

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzIndexCodec asserts the index decoder's safety contract: arbitrary
// bytes either decode cleanly or fail with ErrCorruptIndex — never a panic —
// and anything that decodes re-encodes to the same canonical bytes.
func FuzzIndexCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("VFSI"))
	f.Add([]byte("not an index at all"))
	valid := EncodeIndex([]IndexEntry{
		{Key: Key{Model: "tiny-alexnet", WeightsSum: "w", DataSum: "d", LayerIndex: 3, Kind: Feature}, Size: 10, LastUsed: 2},
		{Key: Key{Model: "vgg16", WeightsSum: "w2", DataSum: "d2", LayerIndex: 11, Kind: RawCarry}, Size: 4096, LastUsed: 9},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add(EncodeIndex(nil))

	f.Fuzz(func(t *testing.T, blob []byte) {
		entries, err := DecodeIndex(blob)
		if err != nil {
			if !errors.Is(err, ErrCorruptIndex) {
				t.Fatalf("decode error is not ErrCorruptIndex: %v", err)
			}
			return
		}
		if !bytes.Equal(EncodeIndex(entries), blob) {
			t.Fatal("valid index did not re-encode to identical bytes")
		}
	})
}
