package featurestore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/dataflow"
)

// EntryKind distinguishes the two physical representations a feature layer
// can be materialized in — the optimizer-level representation choice of
// Anderson et al.'s physical-design argument, scoped to what the Staged
// executor actually consumes.
type EntryKind uint8

// Entry kinds.
const (
	// Feature holds the pooled+flattened feature vectors g_l(f̂_l(I)) used
	// for downstream training.
	Feature EntryKind = iota
	// RawCarry holds the unpooled layer output f̂_l(I) a Staged chain needs
	// to continue partial inference from layer l.
	RawCarry
)

// String implements fmt.Stringer.
func (k EntryKind) String() string {
	if k == RawCarry {
		return "raw"
	}
	return "feature"
}

// Key identifies one materialized feature table. Two runs share an entry iff
// they agree on the CNN architecture (Model), its realized parameters
// (WeightsSum), the layer, and the exact image content the features were
// computed from (DataSum) — a content address, so stale or mismatched reuse
// is impossible by construction.
type Key struct {
	// Model is the roster model name (e.g. "tiny-alexnet").
	Model string
	// WeightsSum is the hex SHA-256 of the model's realized weights (see
	// cnn.WeightsChecksum); it pins the seed/checkpoint.
	WeightsSum string
	// DataSum is the hex SHA-256 of the image-table content (DataChecksum).
	DataSum string
	// LayerIndex is the model layer index whose output is stored.
	LayerIndex int
	// Kind selects the stored representation.
	Kind EntryKind
}

// id derives the content address entries are filed under.
func (k Key) id() string {
	h := sha256.New()
	var scratch [8]byte
	writeStr := func(s string) {
		binary.LittleEndian.PutUint64(scratch[:], uint64(len(s)))
		h.Write(scratch[:])
		h.Write([]byte(s))
	}
	writeStr(k.Model)
	writeStr(k.WeightsSum)
	writeStr(k.DataSum)
	binary.LittleEndian.PutUint64(scratch[:], uint64(k.LayerIndex))
	h.Write(scratch[:])
	h.Write([]byte{byte(k.Kind)})
	return hex.EncodeToString(h.Sum(nil))
}

// String renders the key for diagnostics.
func (k Key) String() string {
	return fmt.Sprintf("%s@%.8s layer=%d kind=%s data=%.8s",
		k.Model, k.WeightsSum, k.LayerIndex, k.Kind, k.DataSum)
}

// DataChecksum fingerprints an image table's content: every row's ID and raw
// image payload, in slice order. Rows produced by a deterministic generator
// (or loaded from the same files) hash identically across processes, which is
// what makes cross-run reuse sound.
func DataChecksum(rows []dataflow.Row) string {
	h := sha256.New()
	var scratch [8]byte
	for i := range rows {
		binary.LittleEndian.PutUint64(scratch[:], uint64(rows[i].ID))
		h.Write(scratch[:])
		binary.LittleEndian.PutUint64(scratch[:], uint64(len(rows[i].Image)))
		h.Write(scratch[:])
		h.Write(rows[i].Image)
	}
	return hex.EncodeToString(h.Sum(nil))
}
