package featurestore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/faultinject/crashtest"
)

// Crash-consistency tests for Open recovery. Each scenario seeds entry A
// durably, arms a one-shot Kill failpoint somewhere inside the Put of entry
// B, and lets the re-exec'd helper process die mid-operation — no deferred
// cleanup, like a real kill -9. The parent then reopens the directory and
// asserts the recovery invariants.

// TestCrashHelper is the body run in the re-exec'd child. It must never
// return normally: every scenario ends in faultinject killing the process.
func TestCrashHelper(t *testing.T) {
	scenario := crashtest.Scenario()
	if scenario == "" {
		t.Skip("not a crash helper process")
	}
	s, err := Open(crashtest.Dir(), 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Entry A is durable before the fault arms: entry file and index both on
	// disk (Put persists the index synchronously).
	if err := s.Put(testKey(1, Feature), featRows(1, 8, 4)); err != nil {
		t.Fatalf("seed Put: %v", err)
	}
	switch scenario {
	case "kill-entry-written":
		// Die between the entry-file write and the index persist: entry B's
		// file exists but no index record points at it.
		faultinject.Arm(FaultPutEntryWritten, faultinject.Kill())
	case "kill-index-rename":
		// Die between the index temp-file write and its rename: entry B's
		// file exists, the old index is still in place, and a stale .tmp-
		// file is stranded.
		faultinject.Arm(FaultIndexWrite+".rename", faultinject.Kill())
	case "kill-truncated-index":
		// Tear the index payload silently (the tmp write "succeeds" short,
		// the rename lands the torn bytes), then die: index.vfs on disk is
		// truncated mid-record and fails its CRC on reload.
		faultinject.Arm(FaultIndexWrite+".write", faultinject.SilentTruncate(8))
		faultinject.Arm(FaultPutIndexPersisted, faultinject.Kill())
	default:
		t.Fatalf("unknown crash scenario %q", scenario)
	}
	err = s.Put(testKey(2, Feature), featRows(2, 8, 4))
	t.Fatalf("scenario %s did not kill the process (Put err=%v)", scenario, err)
}

// assertStoreClean asserts the directory invariants every recovery must
// restore: no stranded atomic-write temp files, no entry file the index does
// not account for, and index-vs-disk size agreement.
func assertStoreClean(t *testing.T, s *Store, dir string) {
	t.Helper()
	if err := s.Fsck(); err != nil {
		t.Error(err)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var entryBytes int64
	entryFiles := 0
	for _, de := range des {
		name := de.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			t.Errorf("stranded temp file after recovery: %s", name)
		}
		if strings.HasSuffix(name, entrySuffix) {
			entryFiles++
			fi, err := de.Info()
			if err != nil {
				t.Fatal(err)
			}
			entryBytes += fi.Size()
			id := strings.TrimSuffix(name, entrySuffix)
			if _, ok := s.entries[id]; !ok {
				t.Errorf("orphan entry file after recovery: %s", name)
			}
		}
	}
	st := s.Snapshot()
	if st.Entries != entryFiles {
		t.Errorf("index tracks %d entries, disk has %d files", st.Entries, entryFiles)
	}
	if st.UsedBytes != entryBytes {
		t.Errorf("index charges %d bytes, disk holds %d", st.UsedBytes, entryBytes)
	}
	// The persisted index must itself be decodable.
	blob, err := os.ReadFile(filepath.Join(dir, indexName))
	if err != nil {
		t.Fatalf("reading recovered index: %v", err)
	}
	if _, err := DecodeIndex(blob); err != nil {
		t.Fatalf("recovered index undecodable: %v", err)
	}
}

func runCrashScenario(t *testing.T, scenario string) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	crashtest.Run(t, "TestCrashHelper", scenario, dir)
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	return s, dir
}

func TestCrashBetweenEntryWriteAndIndexPersist(t *testing.T) {
	s, dir := runCrashScenario(t, "kill-entry-written")
	if !s.Contains(testKey(1, Feature)) {
		t.Error("durable entry A lost")
	}
	if s.Contains(testKey(2, Feature)) {
		t.Error("half-written entry B resurrected")
	}
	if _, ok, err := s.Get(testKey(1, Feature)); err != nil || !ok {
		t.Errorf("entry A unreadable after recovery: ok=%v err=%v", ok, err)
	}
	assertStoreClean(t, s, dir)
}

func TestCrashBetweenIndexPersistAndRename(t *testing.T) {
	s, dir := runCrashScenario(t, "kill-index-rename")
	if !s.Contains(testKey(1, Feature)) {
		t.Error("durable entry A lost")
	}
	if s.Contains(testKey(2, Feature)) {
		t.Error("entry B visible despite unrenamed index")
	}
	if _, ok, err := s.Get(testKey(1, Feature)); err != nil || !ok {
		t.Errorf("entry A unreadable after recovery: ok=%v err=%v", ok, err)
	}
	assertStoreClean(t, s, dir)
}

func TestCrashWithTruncatedIndex(t *testing.T) {
	s, dir := runCrashScenario(t, "kill-truncated-index")
	// A torn index cannot attribute entry files to keys; recovery is a cold
	// start — empty but fully functional.
	if st := s.Snapshot(); st.Entries != 0 || st.UsedBytes != 0 {
		t.Errorf("cold recovery not empty: %+v", st)
	}
	assertStoreClean(t, s, dir)
	k := testKey(3, Feature)
	v := featRows(3, 8, 4)
	if err := s.Put(k, v); err != nil {
		t.Fatalf("recovered store rejects Put: %v", err)
	}
	if _, ok, err := s.Get(k); err != nil || !ok {
		t.Fatalf("recovered store rejects Get: ok=%v err=%v", ok, err)
	}
}
