package featurestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// The on-disk index makes the store durable across process restarts: it
// records every entry's key, payload size, and LRU recency. The codec is a
// fixed little-endian binary layout with a CRC-32 footer; any truncation,
// bit-flip, or foreign file decodes to ErrCorruptIndex — never a panic — so
// Open can detect damage and rebuild cold instead of serving garbage.

// ErrCorruptIndex indicates a malformed or truncated on-disk index.
var ErrCorruptIndex = errors.New("featurestore: corrupt index")

// IndexEntry is one persisted record of the store's index.
type IndexEntry struct {
	Key Key
	// Size is the entry's payload size in bytes (its budget charge).
	Size int64
	// LastUsed is the store's logical clock at the entry's last access,
	// preserving LRU order across restarts.
	LastUsed int64
}

const (
	indexMagic   = "VFSI"
	indexVersion = 1
	// maxIndexEntries and maxIndexString bound decoding so a corrupt length
	// word cannot drive huge allocations.
	maxIndexEntries = 1 << 20
	maxIndexString  = 1 << 12
)

// EncodeIndex serializes entries into the on-disk index format.
func EncodeIndex(entries []IndexEntry) []byte {
	var buf []byte
	var scratch [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		buf = append(buf, scratch[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		buf = append(buf, scratch[:8]...)
	}
	putStr := func(s string) {
		put32(uint32(len(s)))
		buf = append(buf, s...)
	}
	buf = append(buf, indexMagic...)
	put32(indexVersion)
	put32(uint32(len(entries)))
	for _, e := range entries {
		putStr(e.Key.Model)
		putStr(e.Key.WeightsSum)
		putStr(e.Key.DataSum)
		put32(uint32(e.Key.LayerIndex))
		buf = append(buf, byte(e.Key.Kind))
		put64(uint64(e.Size))
		put64(uint64(e.LastUsed))
	}
	put32(crc32.ChecksumIEEE(buf))
	return buf
}

// indexReader decodes index bytes with bounds checking.
type indexReader struct {
	buf []byte
	off int
}

func (r *indexReader) u32() (uint32, error) {
	if len(r.buf)-r.off < 4 {
		return 0, ErrCorruptIndex
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *indexReader) u64() (uint64, error) {
	if len(r.buf)-r.off < 8 {
		return 0, ErrCorruptIndex
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *indexReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if n > maxIndexString || len(r.buf)-r.off < int(n) {
		return "", fmt.Errorf("%w: string length %d", ErrCorruptIndex, n)
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// DecodeIndex parses an on-disk index blob. Corrupt or truncated input
// returns an error wrapping ErrCorruptIndex; it never panics.
func DecodeIndex(blob []byte) ([]IndexEntry, error) {
	if len(blob) < len(indexMagic)+12 || string(blob[:len(indexMagic)]) != indexMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptIndex)
	}
	body, footer := blob[:len(blob)-4], blob[len(blob)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(footer) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptIndex)
	}
	r := &indexReader{buf: body, off: len(indexMagic)}
	version, err := r.u32()
	if err != nil {
		return nil, err
	}
	if version != indexVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptIndex, version)
	}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	if count > maxIndexEntries {
		return nil, fmt.Errorf("%w: %d entries", ErrCorruptIndex, count)
	}
	entries := make([]IndexEntry, 0, count)
	for i := 0; i < int(count); i++ {
		var e IndexEntry
		if e.Key.Model, err = r.str(); err != nil {
			return nil, err
		}
		if e.Key.WeightsSum, err = r.str(); err != nil {
			return nil, err
		}
		if e.Key.DataSum, err = r.str(); err != nil {
			return nil, err
		}
		layer, err := r.u32()
		if err != nil {
			return nil, err
		}
		e.Key.LayerIndex = int(layer)
		if r.off >= len(r.buf) {
			return nil, ErrCorruptIndex
		}
		kind := r.buf[r.off]
		r.off++
		if kind > uint8(RawCarry) {
			return nil, fmt.Errorf("%w: entry kind %d", ErrCorruptIndex, kind)
		}
		e.Key.Kind = EntryKind(kind)
		size, err := r.u64()
		if err != nil {
			return nil, err
		}
		e.Size = int64(size)
		if e.Size < 0 {
			return nil, fmt.Errorf("%w: negative size", ErrCorruptIndex)
		}
		used, err := r.u64()
		if err != nil {
			return nil, err
		}
		e.LastUsed = int64(used)
		entries = append(entries, e)
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptIndex, len(r.buf)-r.off)
	}
	return entries, nil
}
