package featurestore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/faultinject"
)

func TestMain(m *testing.M) {
	code := m.Run()
	// CI contract: a test that arms a failpoint must disarm it; anything
	// left armed would silently poison unrelated tests.
	if sites := faultinject.ArmedSites(); len(sites) > 0 {
		fmt.Fprintf(os.Stderr, "failpoint sites left armed at exit: %v\n", sites)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// rowsEqual compares two feature tables via the canonical encoding.
func rowsEqual(t *testing.T, a, b []dataflow.Row) bool {
	t.Helper()
	ea, err := dataflow.EncodeRows(a)
	if err != nil {
		t.Fatalf("EncodeRows: %v", err)
	}
	eb, err := dataflow.EncodeRows(b)
	if err != nil {
		t.Fatalf("EncodeRows: %v", err)
	}
	return string(ea) == string(eb)
}

// Regression: a Put replacing an existing key used to drop the old entry
// (including its file) before writing the new blob, so a failed write
// destroyed the cached features and left the key absent. The new entry must
// be written first; a failed write leaves the old features intact.
func TestPutReplaceFailureKeepsOldEntry(t *testing.T) {
	defer faultinject.DisarmAll()
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := testKey(1, Feature)
	v1 := featRows(1, 8, 4)
	if err := s.Put(k, v1); err != nil {
		t.Fatalf("Put v1: %v", err)
	}

	faultinject.Arm(FaultEntryWrite+".write", faultinject.FailNth(1))
	if err := s.Put(k, featRows(2, 8, 4)); err == nil {
		t.Fatal("Put with injected write failure succeeded")
	}
	faultinject.DisarmAll()

	got, ok, err := s.Get(k)
	if err != nil {
		t.Fatalf("Get after failed replace: %v", err)
	}
	if !ok {
		t.Fatal("failed replace destroyed the existing entry (key absent)")
	}
	if !rowsEqual(t, got, v1) {
		t.Fatal("failed replace corrupted the existing entry's contents")
	}
}

// Regression: an injected failure between the entry write and the index
// persist must roll the key back completely — no entry file without an index
// record, on disk or in memory.
func TestPutEntryWrittenFaultRollsBack(t *testing.T) {
	defer faultinject.DisarmAll()
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := testKey(2, Feature)
	faultinject.Arm(FaultPutEntryWritten, faultinject.FailNth(1))
	if err := s.Put(k, featRows(3, 8, 4)); err == nil {
		t.Fatal("Put with injected entry-written failure succeeded")
	}
	faultinject.DisarmAll()
	if s.Contains(k) {
		t.Fatal("rolled-back key still present in memory")
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasSuffix(de.Name(), entrySuffix) {
			t.Fatalf("rolled-back entry file left on disk: %s", de.Name())
		}
	}
}

// Regression: Get used to hold the store mutex across the entry-file read and
// decode, serializing every concurrent request against one large entry. The
// Callback policy turns the read site into a sync point: while the read is in
// flight, another goroutine must be able to take the store lock.
func TestGetDoesNotHoldLockAcrossRead(t *testing.T) {
	defer faultinject.DisarmAll()
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := testKey(3, Feature)
	if err := s.Put(k, featRows(4, 64, 16)); err != nil {
		t.Fatalf("Put: %v", err)
	}

	blocked := false
	faultinject.Arm(FaultEntryRead, faultinject.Callback(func() {
		done := make(chan struct{})
		go func() {
			s.Contains(k) // takes s.mu
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			blocked = true
		}
	}))
	if _, ok, err := s.Get(k); err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	faultinject.DisarmAll()
	if blocked {
		t.Fatal("Get holds the store lock across the entry-file read")
	}
}

// An entry whose read fails must be dropped and reported as a miss — and the
// drop must not fire when the entry was already replaced while the (failed)
// read was in flight.
func TestGetReadFailureDropsEntry(t *testing.T) {
	defer faultinject.DisarmAll()
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := testKey(4, Feature)
	if err := s.Put(k, featRows(5, 8, 4)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	faultinject.Arm(FaultEntryRead, faultinject.FailNth(1))
	if _, ok, err := s.Get(k); err != nil || ok {
		t.Fatalf("Get with injected read failure: ok=%v err=%v (want miss, nil)", ok, err)
	}
	faultinject.DisarmAll()
	if s.Contains(k) {
		t.Fatal("unreadable entry not dropped")
	}
	if st := s.Snapshot(); st.UsedBytes != 0 {
		t.Fatalf("dropped entry left %d bytes charged", st.UsedBytes)
	}
}

// A Put whose index persist fails must surface the error while keeping the
// durable entry readable — and a restart must recover to a consistent store.
func TestPutIndexPersistFailureSurfaces(t *testing.T) {
	defer faultinject.DisarmAll()
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := testKey(5, Feature)
	faultinject.Arm(FaultIndexWrite+".write", faultinject.FailNth(1))
	err = s.Put(k, featRows(6, 8, 4))
	faultinject.DisarmAll()
	if err == nil {
		t.Fatal("Put with injected index-persist failure returned nil")
	}
	if _, ok := faultinject.AsFault(err); !ok {
		t.Fatalf("error lost the typed fault: %v", err)
	}
	if _, ok, err := s.Get(k); err != nil || !ok {
		t.Fatalf("entry unreadable after index-persist failure: ok=%v err=%v", ok, err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, ok, err := s2.Get(k); err != nil || !ok {
		t.Fatalf("entry lost across restart: ok=%v err=%v", ok, err)
	}
}

// A torn entry write (disk full / dying disk) must not leave temp files
// behind, and the store must remain fully usable.
func TestTornEntryWriteLeavesNoTempFiles(t *testing.T) {
	defer faultinject.DisarmAll()
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	faultinject.Arm(FaultEntryWrite+".write", faultinject.FailAfterBytes(10))
	err = s.Put(testKey(6, Feature), featRows(7, 32, 8))
	faultinject.DisarmAll()
	if err == nil {
		t.Fatal("torn write reported success")
	}
	des, _ := os.ReadDir(dir)
	for _, de := range des {
		if strings.HasPrefix(de.Name(), tmpPrefix) {
			t.Fatalf("torn write stranded temp file %s", filepath.Join(dir, de.Name()))
		}
	}
	if err := s.Put(testKey(6, Feature), featRows(7, 32, 8)); err != nil {
		t.Fatalf("store unusable after torn write: %v", err)
	}
}
