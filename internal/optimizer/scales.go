package optimizer

// CostScales are per-stage-kind multiplicative corrections to the cost
// model's estimates, fitted from measured runs (internal/calib's calibration
// profile). Each factor multiplies every estimate the model attributes to
// that stage kind: Infer scales the Equation 11 DL replica footprint, Storage
// scales the Equation 16 intermediate-size estimates (and through them
// partition count, the persistence-format choice, and memory-only
// feasibility), and Train scales the downstream model's working memory.
// Ingest and Join are time-only kinds — they calibrate runtime comparisons
// (sim.CompareTrace), not memory, so the optimizer ignores them.
//
// The zero value is the identity: a factor that is zero (or negative, which
// no fit produces) means "uncalibrated, use the paper constant as-is". An
// identity CostScales leaves every optimizer and pricing output bit-for-bit
// unchanged.
type CostScales struct {
	Ingest  float64
	Join    float64
	Infer   float64
	Train   float64
	Storage float64
}

// IsIdentity reports whether applying s changes nothing: every factor is
// either unset (<= 0) or exactly 1.
func (s CostScales) IsIdentity() bool {
	for _, v := range []float64{s.Ingest, s.Join, s.Infer, s.Train, s.Storage} {
		if v > 0 && v != 1 {
			return false
		}
	}
	return true
}

// ScaleBytes applies factor f to a byte quantity; f <= 0 and f == 1 are the
// identity (and return v untouched, so unprofiled paths stay bit-exact).
func ScaleBytes(v int64, f float64) int64 {
	if f <= 0 || f == 1 {
		return v
	}
	return int64(float64(v) * f)
}
