package optimizer

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/memory"
)

func TestScaleBytesIdentityIsExact(t *testing.T) {
	// Identity factors must return the input untouched — not merely a value
	// that rounds back. Pricing bit-exactness under an absent profile depends
	// on no float round-trip happening at all.
	vals := []int64{0, 1, 7, 1<<40 + 3, 1<<62 + 12345}
	for _, v := range vals {
		for _, f := range []float64{0, 1, -2.5} {
			if got := ScaleBytes(v, f); got != v {
				t.Errorf("ScaleBytes(%d, %v) = %d, want identity", v, f, got)
			}
		}
	}
	if got := ScaleBytes(1000, 2.5); got != 2500 {
		t.Errorf("ScaleBytes(1000, 2.5) = %d, want 2500", got)
	}
	if got := ScaleBytes(1001, 0.5); got != 500 {
		t.Errorf("ScaleBytes(1001, 0.5) = %d, want 500 (truncated)", got)
	}
}

func TestCostScalesIsIdentity(t *testing.T) {
	cases := []struct {
		sc   CostScales
		want bool
	}{
		{CostScales{}, true},
		{CostScales{Ingest: 1, Join: 1, Infer: 1, Train: 1, Storage: 1}, true},
		{CostScales{Infer: 1, Storage: -3}, true}, // non-positive = unset
		{CostScales{Infer: 1.01}, false},
		{CostScales{Storage: 0.5}, false},
		{CostScales{Ingest: 2}, false},
	}
	for i, tc := range cases {
		if got := tc.sc.IsIdentity(); got != tc.want {
			t.Errorf("case %d: IsIdentity(%+v) = %v, want %v", i, tc.sc, got, tc.want)
		}
	}
}

func TestOptimizeIdentityScalesBitExact(t *testing.T) {
	// Explicit all-ones scales must reproduce the unscaled decision exactly:
	// an empty or identity profile changes nothing about plan choice.
	in := paperCluster(t, "resnet50", 5, 20000, 130)
	plain, err := Optimize(in, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.Scales = CostScales{Ingest: 1, Join: 1, Infer: 1, Train: 1, Storage: 1}
	scaled, err := Optimize(in, params)
	if err != nil {
		t.Fatal(err)
	}
	if plain != scaled {
		t.Errorf("identity scales changed the decision:\nplain  %+v\nscaled %+v", plain, scaled)
	}
}

func TestOptimizeStorageScaleFlipsPersistence(t *testing.T) {
	// Algorithm 1 line 15 serializes when the per-worker share of sDouble
	// overflows Storage Memory. A fitted Storage scale saying the memory model
	// under-estimates intermediates by 12× must flip a comfortably-fitting
	// workload from Deserialized to Serialized — the plan is re-ranked under
	// the corrected constants.
	in := paperCluster(t, "alexnet", 4, 20000, 130)
	plain, err := Optimize(in, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Pers != dataflow.Deserialized {
		t.Fatalf("baseline workload should fit deserialized, got %v", plain.Pers)
	}
	params := DefaultParams()
	params.Scales = CostScales{Storage: 12}
	scaled, err := Optimize(in, params)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Pers != dataflow.Serialized {
		t.Errorf("12x storage scale: pers = %v, want serialized (sdouble %s vs storage %s)",
			scaled.Pers, memory.FormatBytes(scaled.SDouble), memory.FormatBytes(scaled.MemStorage))
	}
	if scaled.SDouble != ScaleBytes(plain.SDouble, 12) {
		t.Errorf("scaled sDouble = %d, want %d", scaled.SDouble, ScaleBytes(plain.SDouble, 12))
	}
	if scaled.NP < plain.NP {
		t.Errorf("12x larger intermediates should not shrink np: %d vs %d", scaled.NP, plain.NP)
	}
}

func TestOptimizeInferScaleRaisesDLMemory(t *testing.T) {
	// The Infer factor corrects the Equation 11 replica footprint: the chosen
	// decision must carry the scaled MemDL, and a large enough factor squeezes
	// the rest of the apportionment.
	in := paperCluster(t, "vgg16", 3, 20000, 130)
	plain, err := Optimize(in, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.Scales = CostScales{Infer: 3}
	scaled, err := Optimize(in, params)
	if err != nil {
		t.Fatal(err)
	}
	if want := ScaleBytes(DLMemoryNeed(in, scaled.CPU), 3); scaled.MemDL != want {
		t.Errorf("scaled MemDL = %d, want %d", scaled.MemDL, want)
	}
	if scaled.CPU > plain.CPU {
		t.Errorf("3x DL footprint should not raise cpu: %d vs %d", scaled.CPU, plain.CPU)
	}
	// Same cpu would leave less Storage; lower cpu is the other legal escape.
	if scaled.CPU == plain.CPU && scaled.MemStorage >= plain.MemStorage {
		t.Errorf("3x DL footprint left storage untouched: %d vs %d", scaled.MemStorage, plain.MemStorage)
	}
}

func TestOptimizeTrainScaleFeedsUserMemory(t *testing.T) {
	// Train scales |M|_mem. With a PD-resident downstream model big enough to
	// dominate User Memory, the factor must show up in the decision's MemUser.
	in := paperCluster(t, "alexnet", 4, 20000, 130)
	in.DownstreamMemBytes = memory.GB(2)
	plain, err := Optimize(in, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.Scales = CostScales{Train: 3}
	scaled, err := Optimize(in, params)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.MemUser <= plain.MemUser {
		t.Errorf("3x train scale did not raise MemUser: %d vs %d", scaled.MemUser, plain.MemUser)
	}
	if want := int64(scaled.CPU) * ScaleBytes(in.DownstreamMemBytes, 3); scaled.MemUser != want {
		t.Errorf("scaled MemUser = %d, want cpu x scaled |M| = %d", scaled.MemUser, want)
	}
}

func TestOptimizeStorageScaleTripsMemoryOnlyFeasibility(t *testing.T) {
	// Memory-only systems must hold the scaled peak in Storage; a fitted
	// factor saying intermediates are far bigger than modeled turns a feasible
	// Ignite-like workload infeasible instead of letting it crash at runtime.
	in := paperCluster(t, "resnet50", 5, 200000, 200)
	in.ImageRowBytes = 14 << 10
	in.StorageMustFit = true
	in.WholePartitionDecode = true
	if _, err := Optimize(in, DefaultParams()); err != nil {
		t.Fatalf("baseline memory-only workload should be feasible: %v", err)
	}
	params := DefaultParams()
	params.Scales = CostScales{Storage: 40}
	if _, err := Optimize(in, params); err == nil {
		t.Error("40x storage scale should make the memory-only workload infeasible")
	}
}
