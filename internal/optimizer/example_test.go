package optimizer_test

import (
	"fmt"

	"repro/internal/cnn"
	"repro/internal/memory"
	"repro/internal/optimizer"
)

// ExampleOptimize reproduces the paper's headline optimizer decision: on the
// Section 5 cluster (8 workers × 32 GB × 8 cores), exploring ResNet50's top
// 5 layers over a Foods-sized dataset, Algorithm 1 picks 7 cores per worker.
func ExampleOptimize() {
	model, _ := cnn.ByName("resnet50")
	stats, _ := cnn.ComputeStats(model)
	decision, err := optimizer.Optimize(optimizer.Inputs{
		ModelStats:         stats,
		NumLayers:          5,
		NumRows:            20000,
		StructDim:          130,
		ImageRowBytes:      14 << 10,
		DownstreamMemBytes: optimizer.LogRegMemBytes(130 + 8192),
		NNodes:             8,
		MemSys:             memory.GB(32),
		CPUSys:             8,
	}, optimizer.DefaultParams())
	if err != nil {
		fmt.Println("infeasible:", err)
		return
	}
	fmt.Printf("cpu=%d join=%v pers=%v\n", decision.CPU, decision.Join, decision.Pers)
	// Output: cpu=7 join=broadcast pers=deserialized
}

// ExampleEstimateTableSize shows the Equation 16 intermediate-table estimate
// for a 4096-feature layer over 20k rows with the default α = 2 fudge.
func ExampleEstimateTableSize() {
	bytes := optimizer.EstimateTableSize(20000, 4096, 130, 2)
	fmt.Println(memory.FormatBytes(bytes))
	// Output: 635.8 MB
}
