// Package optimizer implements the Vista optimizer (Section 4.3,
// Algorithm 1): given the user's inputs (Table 1(A)) it picks the system
// variables of Table 1(B) — degree of parallelism cpu, number of partitions
// np, memory apportioning (Storage/User/DL Execution), the physical join
// operator, and the persistence format — by linear search on cpu subject to
// the constraints of Equations 9–15, using the intermediate-size estimates of
// Equation 16 (Appendix A).
package optimizer

import (
	"errors"
	"fmt"

	"repro/internal/cnn"
	"repro/internal/dataflow"
	"repro/internal/memory"
)

// Params are the fixed-but-adjustable system parameters of Table 1(C).
type Params struct {
	// MemOSReserved is the OS reservation (default 3 GB).
	MemOSReserved int64
	// MemCore is Core Memory per best-practice guidelines (default 2.4 GB).
	MemCore int64
	// PMax is the maximum data-partition size (default 100 MB).
	PMax int64
	// BMax is the maximum broadcast size (default 100 MB).
	BMax int64
	// CPUMax caps the searched degree of parallelism (default 8).
	CPUMax int
	// Alpha is the fudge factor for the size blow-up of binary feature
	// vectors as managed-runtime objects (default 2).
	Alpha float64
	// Scales are fitted per-stage-kind corrections applied on top of the
	// paper constants (see CostScales). The zero value is the identity:
	// plan choice and pricing then use the Table 1(C) model unchanged.
	Scales CostScales
}

// DefaultParams returns the paper's Table 1(C) defaults.
func DefaultParams() Params {
	return Params{
		MemOSReserved: memory.GB(3),
		MemCore:       memory.MB(2.4 * 1024),
		PMax:          memory.MB(100),
		BMax:          memory.MB(100),
		CPUMax:        8,
		Alpha:         2,
	}
}

// DownstreamPlacement says where the downstream model M's working memory
// lives (Equations 10–11 distinguish the two cases).
type DownstreamPlacement int

// Placements for M.
const (
	// MInPDUserMemory: M is a PD-system model (e.g. MLlib logistic
	// regression); its footprint counts against User Memory.
	MInPDUserMemory DownstreamPlacement = iota
	// MInDLMemory: M is a DL model (e.g. an MLP on the DL system); its
	// footprint counts against DL Execution Memory.
	MInDLMemory
)

// Inputs are the user-provided quantities of Table 1(A), plus the statistics
// Vista derives from its roster and the data (Section 4.3).
type Inputs struct {
	// ModelStats is the roster CNN's derived statistics (|f|_ser, |f|_mem,
	// |f|_mem_gpu, feature-layer sizes).
	ModelStats *cnn.Stats
	// NumLayers is |L|, counted from the top-most feature layer.
	NumLayers int
	// NumRows is the example count.
	NumRows int
	// StructDim is ds, the structured feature count.
	StructDim int
	// ImageRowBytes is the average raw (compressed) image payload per row;
	// it sizes the base joined table. When 0, the CNN's input-tensor size
	// with a conservative 4× compression ratio is assumed.
	ImageRowBytes int64
	// WholePartitionDecode marks PD systems whose UDF execution
	// materializes an entire decoded input partition at once (Ignite-like)
	// rather than streaming record batches through the DL system
	// (Spark-like iterators); it inflates the User Memory working set.
	WholePartitionDecode bool
	// StorageMustFit marks memory-only PD systems (Ignite configured
	// without disk backing): feasibility then also requires Storage Memory
	// to hold the peak intermediate footprint, since there is no spill
	// path.
	StorageMustFit bool
	// DownstreamMemBytes is |M|_mem.
	DownstreamMemBytes int64
	// DownstreamGPUMemBytes is |M|_mem_gpu (0 when M runs on CPU).
	DownstreamGPUMemBytes int64
	// Placement locates M's working memory.
	Placement DownstreamPlacement
	// NNodes is the worker count.
	NNodes int
	// MemSys is System Memory per worker.
	MemSys int64
	// MemGPU is GPU memory per worker (0 = no GPU).
	MemGPU int64
	// CPUSys is the core count per worker.
	CPUSys int
	// CachedLayers is how many of the selected layers (bottom-up) a
	// materialized feature store already holds for this exact (model,
	// weights, data) triple. It shrinks the Equation 16 cost picture: cached
	// stages run no CNN inference, and once every layer is cached
	// (CachedLayers >= NumLayers) the workload needs no raw images, no model
	// replicas in DL Execution Memory, and no broadcast of the serialized
	// model.
	CachedLayers int
}

// FullyCached reports whether every selected layer comes from a feature
// store, i.e. the run performs zero CNN inference.
func (in Inputs) FullyCached() bool {
	return in.NumLayers > 0 && in.CachedLayers >= in.NumLayers
}

// Decision is the optimizer's output: the Table 1(B) variables.
type Decision struct {
	CPU        int
	NP         int
	MemStorage int64
	MemUser    int64
	MemDL      int64
	Join       dataflow.JoinKind
	Pers       dataflow.PersistFormat
	// SSingle and SDouble are the peak intermediate sizes (Equations 5–6)
	// the decision was based on, for reporting.
	SSingle, SDouble int64
}

// FollowerDecision derives the configuration a sharing follower runs under:
// identical to d except with no DL Execution Memory, because a follower
// attaches its group leader's materialized feature tables instead of running
// CNN inference — it never opens a DL session, so Equation 13's replica
// memory is not reserved. Storage and User memory stay: the follower still
// holds the feature tables and trains its own downstream models.
func FollowerDecision(d Decision) Decision {
	d.MemDL = 0
	return d
}

// Apportionment renders the decision as a per-worker memory apportionment.
func (d Decision) Apportionment(params Params) memory.Apportionment {
	return memory.Apportionment{
		OSReserved:  params.MemOSReserved,
		DLExecution: d.MemDL,
		User:        d.MemUser,
		Core:        params.MemCore,
		Storage:     d.MemStorage,
	}
}

// ErrNoFeasible is returned when no cpu value satisfies all constraints —
// Algorithm 1's "no feasible solution" exception, telling the user to
// provision more memory.
var ErrNoFeasible = errors.New("optimizer: no feasible configuration; provision machines with more memory")

// rowOverheadBytes is the fixed per-record overhead of the internal record
// format (Equation 16's 8 + 8: key plus header words).
const rowOverheadBytes = 16

// memoryOnlyCompression is the compression a memory-only system's native
// binary format achieves over deserialized bytes (Ignite, Section 4.2.3).
const memoryOnlyCompression = 2.2

// EstimateTableSize implements Equation 16: the size of intermediate table
// T_i holding feature layer l with |g_l(f̂_l(I))| features, as
// α1·(8 + 8 + 4·dim)·rows + |Tstr|.
func EstimateTableSize(numRows, featureDim, structDim int, alpha float64) int64 {
	perRow := float64(rowOverheadBytes + 4*featureDim)
	return int64(alpha*perRow)*int64(numRows) + StructTableSize(numRows, structDim)
}

// StructTableSize estimates |Tstr|.
func StructTableSize(numRows, structDim int) int64 {
	return int64(numRows) * int64(rowOverheadBytes+4*structDim)
}

// IntermediateSizes returns |T_i| for every selected layer (bottom-to-top)
// plus s_single and s_double (Equations 5–6). Beyond the paper's Equation 16
// (which sizes only the flattened feature columns), the estimates also cover
// what the Staged plan actually materializes: the joined base table holding
// the raw images, and the unpooled raw tensor each non-final stage carries
// forward for partial inference. Both flow through the same UDF working
// memory, so omitting them would under-budget User Memory.
func IntermediateSizes(in Inputs, params Params) (sizes []int64, sSingle, sDouble int64, err error) {
	layers, err := in.ModelStats.TopLayerStats(in.NumLayers)
	if err != nil {
		return nil, 0, 0, err
	}
	imgBytes := in.ImageRowBytes
	if imgBytes <= 0 {
		imgBytes = in.ModelStats.InputBytes / 4
	}
	base := StructTableSize(in.NumRows, in.StructDim)
	if !in.FullyCached() {
		// Fully-cached runs never load the raw image payloads, so the base
		// joined table shrinks to Tstr.
		base += int64(in.NumRows) * imgBytes
	}
	sSingle = base

	sizes = make([]int64, len(layers))
	for i, l := range layers {
		// T_i holds the layer's raw (unpooled) tensor: under Staged it is
		// the partial-inference carry, and g_l pooling happens at training
		// time. Pooled vectors are never larger, so this bounds the real
		// engine safely too.
		sizes[i] = EstimateTableSize(in.NumRows, l.RawElems, in.StructDim, params.Alpha)
		if sizes[i] > sSingle {
			sSingle = sizes[i]
		}
	}
	tstr := StructTableSize(in.NumRows, in.StructDim)
	sDouble = base + sizes[0] - tstr
	for i := 0; i+1 < len(sizes); i++ {
		if d := sizes[i] + sizes[i+1] - tstr; d > sDouble {
			sDouble = d
		}
	}
	return sizes, sSingle, sDouble, nil
}

// StagedPeakBytes estimates (without the α fudge) the peak cluster-wide
// cached footprint of the Staged plan: the base joined table plus the two
// largest adjacent stage tables, each holding the stage's raw carry, pooled
// feature vector, and the structured columns.
func StagedPeakBytes(in Inputs) (int64, error) {
	layers, err := in.ModelStats.TopLayerStats(in.NumLayers)
	if err != nil {
		return 0, err
	}
	imgBytes := in.ImageRowBytes
	if imgBytes <= 0 {
		imgBytes = in.ModelStats.InputBytes / 4
	}
	rows := int64(in.NumRows)
	tstr := StructTableSize(in.NumRows, in.StructDim)
	base := tstr
	if !in.FullyCached() {
		base += rows * imgBytes
	}
	table := func(i int) int64 {
		l := layers[i]
		return rows*(rowOverheadBytes+l.RawBytes+4*int64(l.FeatureDim)) + tstr
	}
	peak := base + table(0)
	for i := 0; i+1 < len(layers); i++ {
		if v := base + table(i) + table(i+1); v > peak {
			peak = v
		}
	}
	return peak, nil
}

// NumPartitions implements Algorithm 1's helper: the smallest multiple of
// the total core count whose partitions stay under PMax (Equations 13–14).
func NumPartitions(sSingle int64, cpu, nNodes int, pMax int64) int {
	totalCores := cpu * nNodes
	if totalCores <= 0 {
		return 1
	}
	mult := (sSingle + pMax*int64(totalCores) - 1) / (pMax * int64(totalCores))
	if mult < 1 {
		mult = 1
	}
	return int(mult) * totalCores
}

// validate sanity-checks the optimizer inputs.
func validate(in Inputs) error {
	switch {
	case in.ModelStats == nil:
		return fmt.Errorf("optimizer: nil model stats")
	case in.NumLayers <= 0:
		return fmt.Errorf("optimizer: |L| must be positive, got %d", in.NumLayers)
	case in.NumRows <= 0:
		return fmt.Errorf("optimizer: no rows")
	case in.StructDim < 0:
		return fmt.Errorf("optimizer: negative struct dim")
	case in.NNodes <= 0:
		return fmt.Errorf("optimizer: no worker nodes")
	case in.CPUSys <= 0:
		return fmt.Errorf("optimizer: no cores")
	case in.MemSys <= 0:
		return fmt.Errorf("optimizer: no system memory")
	}
	return nil
}

// Optimize implements Algorithm 1 (OptimizeFeatureTransfer): linear search on
// cpu from min(cpu_sys, cpu_max)−1 down to 1, maximizing cpu (Equation 8)
// subject to Equations 9–15.
//
// When params.Scales carries a fitted calibration profile, the search runs
// under the corrected constants: Storage scales the Equation 16 intermediate
// sizes (so np, the Serialized/Deserialized choice, and memory-only
// feasibility are re-ranked), Infer scales the Equation 11 DL replica
// footprint, and Train scales the downstream model's memory. The returned
// Decision's MemDL/SSingle/SDouble then carry the scaled estimates.
func Optimize(in Inputs, params Params) (Decision, error) {
	if err := validate(in); err != nil {
		return Decision{}, err
	}
	sc := params.Scales
	_, sSingle, sDouble, err := IntermediateSizes(in, params)
	if err != nil {
		return Decision{}, err
	}
	sSingle = ScaleBytes(sSingle, sc.Storage)
	sDouble = ScaleBytes(sDouble, sc.Storage)
	in.DownstreamMemBytes = ScaleBytes(in.DownstreamMemBytes, sc.Train)
	st := in.ModelStats

	upper := in.CPUSys
	if params.CPUMax < upper {
		upper = params.CPUMax
	}
	upper-- // leave one core for the OS (Equation 9)

	for x := upper; x >= 1; x-- {
		// GPU constraint (Equation 15).
		if in.MemGPU > 0 {
			gpuNeed := int64(x) * max64(st.GPUMemBytes, in.DownstreamGPUMemBytes)
			if gpuNeed >= in.MemGPU {
				continue
			}
		}
		np := NumPartitions(sSingle, x, in.NNodes, params.PMax)

		// DL Execution Memory (Equation 11), under the fitted Infer scale.
		memDL := ScaleBytes(DLMemoryNeed(in, x), sc.Infer)

		// User Memory (Equation 10).
		memUser := UserMemoryNeed(in, x, np, params)

		memWorker := in.MemSys - params.MemOSReserved - memDL
		if in.StorageMustFit {
			// Memory-only system: Storage must fit the peak footprint
			// (compressed; such systems store a compressed binary format,
			// Section 4.2.3), so the feasibility bar is higher.
			peak, err := StagedPeakBytes(in)
			if err != nil {
				return Decision{}, err
			}
			peak = ScaleBytes(peak, sc.Storage)
			needStorage := int64(float64(peak) / memoryOnlyCompression / float64(in.NNodes))
			if memWorker-memUser-params.MemCore < needStorage {
				continue
			}
		}
		if memWorker-memUser > params.MemCore {
			d := Decision{
				CPU:        x,
				NP:         np,
				MemDL:      memDL,
				MemUser:    memUser,
				MemStorage: memWorker - memUser - params.MemCore,
				Join:       dataflow.ShuffleJoin,
				Pers:       dataflow.Deserialized,
				SSingle:    sSingle,
				SDouble:    sDouble,
			}
			if StructTableSize(in.NumRows, in.StructDim) < params.BMax {
				d.Join = dataflow.BroadcastJoin
			}
			// Algorithm 1 line 15: serialize when disk spills or cache
			// misses are likely — the per-worker share of the peak
			// two-table footprint exceeds Storage Memory.
			if d.MemStorage < sDouble/int64(in.NNodes) {
				d.Pers = dataflow.Serialized
			}
			return d, nil
		}
	}
	return Decision{}, ErrNoFeasible
}

// DLMemoryNeed is the actual DL Execution Memory a configuration consumes
// (Equation 11): cpu model replicas, plus the downstream model when it also
// runs on the DL system. Shared by the optimizer and the crash model of
// internal/sim, so a Vista-chosen configuration is consistent with the
// simulator's accounting by construction.
func DLMemoryNeed(in Inputs, cpu int) int64 {
	need := int64(cpu) * in.ModelStats.MemBytes
	if in.FullyCached() {
		// No inference → no CNN replicas; only a DL-resident downstream
		// model still claims DL Execution Memory.
		need = 0
	}
	if in.Placement == MInDLMemory {
		need = max64(need, int64(cpu)*in.DownstreamMemBytes)
	}
	return need
}

// inferenceBatchImages is how many decoded image tensors one UDF thread
// buffers at a time when feeding the DL system (TensorFrames-style
// batching); partitions stream through, so only a batch is resident.
const inferenceBatchImages = 8

// UserMemoryNeed is the actual User Memory a configuration consumes
// (Equation 10, extended): the serialized model, plus per-core UDF working
// sets — the materialized output feature partition, a decoded input batch,
// and inference activation buffers — all α-inflated for managed-runtime
// overhead.
func UserMemoryNeed(in Inputs, cpu, np int, params Params) int64 {
	_, sSingle, _, err := IntermediateSizes(in, params)
	if err != nil || np <= 0 {
		return int64(^uint64(0) >> 1) // force infeasible on bad inputs
	}
	featPart := ceilDiv(sSingle, int64(np))
	working := featPart
	serialized := in.ModelStats.SerializedBytes
	if in.FullyCached() {
		// Cached features stream straight from the store: no image decoding,
		// no DL batching, no activations, and no broadcast checkpoint.
		serialized = 0
	} else {
		batch := int64(inferenceBatchImages) * in.ModelStats.InputBytes
		decode := batch
		if in.WholePartitionDecode {
			if whole := ceilDiv(int64(in.NumRows)*in.ModelStats.InputBytes, int64(np)); whole > decode {
				decode = whole
			}
		}
		// decode buffers + the DL system's own input batch copy + activations.
		working += decode + batch + in.ModelStats.ActivationWorkingBytes
	}
	need := serialized + int64(float64(cpu)*params.Alpha*float64(working))
	if in.Placement == MInPDUserMemory {
		need = max64(need, int64(cpu)*in.DownstreamMemBytes)
	}
	return need
}

// LogRegMemBytes estimates |M|_mem for a logistic regression over dim
// features: weights, gradients, and accumulation buffers, plus a fixed
// training-framework overhead ("for logistic regression, |M| is proportional
// to the sum of structured features and the maximum number of CNN features
// for any layer", Section 4.3).
func LogRegMemBytes(dim int) int64 {
	return int64(dim)*4*8 + memory.MB(16)
}

// MLPMemBytes estimates |M|_mem for an MLP with the given hidden widths over
// dim input features: parameters ×4 B ×3 (weights, gradients, activations)
// plus framework overhead.
func MLPMemBytes(dim int, hidden []int) int64 {
	widths := append([]int{dim}, hidden...)
	widths = append(widths, 1)
	var params int64
	for i := 0; i+1 < len(widths); i++ {
		params += int64(widths[i])*int64(widths[i+1]) + int64(widths[i+1])
	}
	return params*4*3 + memory.MB(64)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
