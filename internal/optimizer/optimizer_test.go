package optimizer

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cnn"
	"repro/internal/dataflow"
	"repro/internal/memory"
)

// paperCluster returns the CloudLab setup of Section 5: 8 workers, 32 GB RAM,
// 8 cores each.
func paperCluster(t *testing.T, model string, layers, rows, structDim int) Inputs {
	t.Helper()
	m, err := cnn.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cnn.ComputeStats(m)
	if err != nil {
		t.Fatal(err)
	}
	maxDim := structDim
	ls, err := st.TopLayerStats(layers)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range ls {
		if l.FeatureDim+structDim > maxDim {
			maxDim = l.FeatureDim + structDim
		}
	}
	return Inputs{
		ModelStats:         st,
		NumLayers:          layers,
		NumRows:            rows,
		StructDim:          structDim,
		DownstreamMemBytes: LogRegMemBytes(maxDim),
		Placement:          MInPDUserMemory,
		NNodes:             8,
		MemSys:             memory.GB(32),
		CPUSys:             8,
	}
}

func TestOptimizerPicksPaperCPUValues(t *testing.T) {
	// Figure 11: "the Vista optimizer picks either optimal or near-optimal
	// cpu values; AlexNet: 7, VGG16: 4, and ResNet50: 7" (Foods, 8 nodes).
	tests := []struct {
		model   string
		layers  int
		wantCPU int
	}{
		{"alexnet", 4, 7},
		{"vgg16", 3, 4},
		{"resnet50", 5, 7},
	}
	for _, tc := range tests {
		t.Run(tc.model, func(t *testing.T) {
			in := paperCluster(t, tc.model, tc.layers, 20000, 130)
			d, err := Optimize(in, DefaultParams())
			if err != nil {
				t.Fatalf("Optimize: %v", err)
			}
			if d.CPU != tc.wantCPU {
				t.Errorf("cpu = %d, want %d (paper Figure 11)", d.CPU, tc.wantCPU)
			}
		})
	}
}

func TestOptimizerNPMultipleOfCores(t *testing.T) {
	// Equation 13: np must be a multiple of cpu × nnodes.
	in := paperCluster(t, "resnet50", 5, 20000, 130)
	d, err := Optimize(in, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if d.NP%(d.CPU*in.NNodes) != 0 {
		t.Errorf("np = %d not a multiple of cpu×nnodes = %d", d.NP, d.CPU*in.NNodes)
	}
	// Equation 14: partitions under PMax.
	if part := d.SSingle / int64(d.NP); part >= DefaultParams().PMax {
		t.Errorf("partition size %d >= pmax", part)
	}
}

func TestOptimizerMemoryConstraint(t *testing.T) {
	// Equation 12: the apportionment must fit system memory.
	for _, model := range []string{"alexnet", "vgg16", "resnet50"} {
		in := paperCluster(t, model, 3, 20000, 130)
		d, err := Optimize(in, DefaultParams())
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		a := d.Apportionment(DefaultParams())
		if err := a.Validate(in.MemSys); err != nil {
			t.Errorf("%s: apportionment exceeds system memory: %v", model, err)
		}
		if d.MemStorage <= 0 {
			t.Errorf("%s: non-positive storage memory", model)
		}
	}
}

func TestOptimizerBroadcastDecision(t *testing.T) {
	// Small Tstr (under bmax) → broadcast; huge Tstr → shuffle.
	small := paperCluster(t, "alexnet", 4, 20000, 130)
	d, err := Optimize(small, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if d.Join != dataflow.BroadcastJoin {
		t.Errorf("small Tstr: join = %v, want broadcast", d.Join)
	}
	big := paperCluster(t, "alexnet", 4, 200000, 10000) // 200k × 10k features ≈ 8 GB
	d, err = Optimize(big, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if d.Join != dataflow.ShuffleJoin {
		t.Errorf("large Tstr: join = %v, want shuffle", d.Join)
	}
}

func TestOptimizerSerializationDecision(t *testing.T) {
	// Foods fits in memory → deserialized; a large scale of ResNet
	// (8× Amazon-like) overflows per-worker storage → serialized.
	fits := paperCluster(t, "alexnet", 4, 20000, 130)
	d, err := Optimize(fits, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if d.Pers != dataflow.Deserialized {
		t.Errorf("fitting workload: pers = %v, want deserialized", d.Pers)
	}
	spills := paperCluster(t, "resnet50", 5, 1600000, 130)
	d, err = Optimize(spills, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if d.Pers != dataflow.Serialized {
		t.Errorf("overflowing workload: pers = %v, want serialized (sdouble %s vs storage %s)",
			d.Pers, memory.FormatBytes(d.SDouble/8), memory.FormatBytes(d.MemStorage))
	}
}

func TestOptimizerNoFeasible(t *testing.T) {
	in := paperCluster(t, "vgg16", 3, 20000, 130)
	in.MemSys = memory.GB(8) // too small for even one VGG16 replica + core
	_, err := Optimize(in, DefaultParams())
	if !errors.Is(err, ErrNoFeasible) {
		t.Errorf("expected ErrNoFeasible, got %v", err)
	}
}

func TestOptimizerGPUConstraint(t *testing.T) {
	// Figure 7A setup: single node, 12 GB GPU. VGG16 replicas are ~2.6 GB
	// on device, so cpu must drop below 5 (Equation 15) — the paper's
	// Lazy-5/Lazy-7 VGG16 GPU crashes are exactly configs that ignore this.
	in := paperCluster(t, "vgg16", 3, 20000, 130)
	in.NNodes = 1
	in.MemGPU = memory.GB(12)
	d, err := Optimize(in, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	st := in.ModelStats
	if int64(d.CPU)*st.GPUMemBytes >= in.MemGPU {
		t.Errorf("cpu = %d violates GPU memory: %d replicas × %s >= 12 GB",
			d.CPU, d.CPU, memory.FormatBytes(st.GPUMemBytes))
	}
	if d.CPU >= 5 {
		t.Errorf("cpu = %d, want < 5 (5 VGG16 GPU replicas exceed 12 GB in the paper)", d.CPU)
	}
}

func TestOptimizerValidation(t *testing.T) {
	good := paperCluster(t, "alexnet", 4, 1000, 10)
	cases := []func(*Inputs){
		func(i *Inputs) { i.ModelStats = nil },
		func(i *Inputs) { i.NumLayers = 0 },
		func(i *Inputs) { i.NumRows = 0 },
		func(i *Inputs) { i.StructDim = -1 },
		func(i *Inputs) { i.NNodes = 0 },
		func(i *Inputs) { i.CPUSys = 0 },
		func(i *Inputs) { i.MemSys = 0 },
		func(i *Inputs) { i.NumLayers = 99 }, // more layers than the model has
	}
	for i, mutate := range cases {
		in := good
		mutate(&in)
		if _, err := Optimize(in, DefaultParams()); err == nil {
			t.Errorf("case %d: invalid inputs accepted", i)
		}
	}
}

func TestEstimateTableSize(t *testing.T) {
	// Equation 16 with α = 2: 2·(16 + 4·dim)·rows + |Tstr|.
	got := EstimateTableSize(100, 10, 5, 2)
	want := int64(2*(16+40)*100) + StructTableSize(100, 5)
	if got != want {
		t.Errorf("EstimateTableSize = %d, want %d", got, want)
	}
	if StructTableSize(100, 5) != 100*(16+20) {
		t.Errorf("StructTableSize = %d", StructTableSize(100, 5))
	}
}

func TestIntermediateSizesOrdering(t *testing.T) {
	in := paperCluster(t, "resnet50", 5, 20000, 130)
	sizes, sSingle, sDouble, err := IntermediateSizes(in, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 5 {
		t.Fatalf("got %d sizes, want 5", len(sizes))
	}
	var maxSize int64
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	if sSingle != maxSize {
		t.Errorf("sSingle = %d, want max %d", sSingle, maxSize)
	}
	if sDouble <= sSingle {
		// Two adjacent tables minus Tstr must exceed the single max for
		// ResNet's similar-sized conv5 layers.
		t.Errorf("sDouble = %d not above sSingle = %d", sDouble, sSingle)
	}
}

func TestIntermediateSizesSingleLayer(t *testing.T) {
	in := paperCluster(t, "alexnet", 1, 1000, 10)
	in.ImageRowBytes = 14 << 10 // paper's ~14 KB JPEG
	sizes, sSingle, sDouble, err := IntermediateSizes(in, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 1 {
		t.Fatalf("sizes = %v, want 1 entry", sizes)
	}
	base := StructTableSize(1000, 10) + 1000*(14<<10)
	if sSingle != max64(base, sizes[0]) {
		t.Errorf("sSingle = %d, want max(base %d, T0 %d)", sSingle, base, sizes[0])
	}
	if want := base + sizes[0] - StructTableSize(1000, 10); sDouble != want {
		t.Errorf("sDouble = %d, want base+T0−Tstr = %d", sDouble, want)
	}
}

func TestNumPartitions(t *testing.T) {
	// 1 GB across 4×2 cores with 100 MB cap: needs ceil(1024/800)=2
	// multiples → 16 partitions.
	np := NumPartitions(memory.GB(1), 4, 2, memory.MB(100))
	if np != 16 {
		t.Errorf("np = %d, want 16", np)
	}
	// Tiny data: one partition per core.
	np = NumPartitions(memory.MB(1), 4, 2, memory.MB(100))
	if np != 8 {
		t.Errorf("np = %d, want 8", np)
	}
	if NumPartitions(100, 0, 0, memory.MB(100)) != 1 {
		t.Error("degenerate core count should yield 1")
	}
}

// Property: for any valid inputs, a returned decision satisfies every
// Algorithm 1 constraint.
func TestOptimizerConstraintsProperty(t *testing.T) {
	m := cnn.ResNet50()
	st, err := cnn.ComputeStats(m)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	f := func(rowSeed uint16, nodeSeed, cpuSeed, memSeed uint8) bool {
		in := Inputs{
			ModelStats:         st,
			NumLayers:          int(nodeSeed%5) + 1,
			NumRows:            int(rowSeed)*100 + 1000,
			StructDim:          int(cpuSeed)%500 + 1,
			DownstreamMemBytes: memory.MB(32),
			NNodes:             int(nodeSeed%8) + 1,
			MemSys:             memory.GB(float64(memSeed%48) + 8),
			CPUSys:             int(cpuSeed%16) + 1,
		}
		d, err := Optimize(in, params)
		if errors.Is(err, ErrNoFeasible) {
			return true // infeasible is a legitimate outcome
		}
		if err != nil {
			return false
		}
		// Equation 9.
		if d.CPU < 1 || d.CPU > minInt(in.CPUSys, params.CPUMax)-1 {
			return false
		}
		// Equation 12.
		if d.Apportionment(params).Validate(in.MemSys) != nil {
			return false
		}
		// Equation 13.
		if d.NP%(d.CPU*in.NNodes) != 0 {
			return false
		}
		// Equation 14.
		return d.SSingle/int64(d.NP) < params.PMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestMemoryOnlyConstraint(t *testing.T) {
	// A memory-only (Ignite-like) system adds the storage-must-fit
	// constraint: for Amazon/ResNet50 it lowers or keeps cpu while still
	// finding a feasible configuration (Vista never crashes on Ignite).
	in := paperCluster(t, "resnet50", 5, 200000, 200)
	in.ImageRowBytes = 14 << 10
	spark, err := Optimize(in, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	in.StorageMustFit = true
	in.WholePartitionDecode = true
	ignite, err := Optimize(in, DefaultParams())
	if err != nil {
		t.Fatalf("memory-only workload should stay feasible: %v", err)
	}
	if ignite.CPU > spark.CPU {
		t.Errorf("memory-only cpu %d exceeds spillable cpu %d", ignite.CPU, spark.CPU)
	}
	peak, err := StagedPeakBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	need := int64(float64(peak) / memoryOnlyCompression / float64(in.NNodes))
	if ignite.MemStorage < need {
		t.Errorf("storage %d below the memory-only floor %d", ignite.MemStorage, need)
	}
}

func TestStagedPeakBytes(t *testing.T) {
	in := paperCluster(t, "resnet50", 5, 20000, 130)
	in.ImageRowBytes = 14 << 10
	peak, err := StagedPeakBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	// Two adjacent raw conv tables dominate: conv4_6 (16 GB) + conv5_1
	// (8 GB) + base; peak must land between 20 and 40 GB.
	if peak < 20<<30 || peak > 40<<30 {
		t.Errorf("staged peak = %s, expected 20-40 GB", memory.FormatBytes(peak))
	}
	bad := in
	bad.NumLayers = 99
	if _, err := StagedPeakBytes(bad); err == nil {
		t.Error("oversized layer count accepted")
	}
	// Default image size falls back to InputBytes/4 when unset.
	in.ImageRowBytes = 0
	if _, err := StagedPeakBytes(in); err != nil {
		t.Errorf("default image bytes failed: %v", err)
	}
}

func TestDLMemoryNeedPlacements(t *testing.T) {
	in := paperCluster(t, "alexnet", 4, 1000, 10)
	in.DownstreamMemBytes = memory.GB(100) // enormous M
	pd := DLMemoryNeed(in, 4)
	in.Placement = MInDLMemory
	dl := DLMemoryNeed(in, 4)
	if dl <= pd {
		t.Errorf("DL-resident M should raise DL need: %d vs %d", dl, pd)
	}
	// And the same giant M in PD placement raises User need instead.
	in.Placement = MInPDUserMemory
	if UserMemoryNeed(in, 4, 64, DefaultParams()) < 4*memory.GB(100) {
		t.Error("PD-resident M should dominate User need")
	}
}

func TestUserMemoryNeedBadInputs(t *testing.T) {
	in := paperCluster(t, "alexnet", 4, 1000, 10)
	if UserMemoryNeed(in, 4, 0, DefaultParams()) < memory.GB(1000) {
		t.Error("np=0 should force an infeasible (huge) need")
	}
	bad := in
	bad.NumLayers = 99
	if UserMemoryNeed(bad, 4, 64, DefaultParams()) < memory.GB(1000) {
		t.Error("broken inputs should force an infeasible need")
	}
}

func TestDownstreamMemEstimates(t *testing.T) {
	if LogRegMemBytes(1000) <= LogRegMemBytes(10) {
		t.Error("LogRegMemBytes not monotone in dim")
	}
	small := MLPMemBytes(100, []int{32})
	big := MLPMemBytes(8000, []int{1024, 1024})
	if big <= small {
		t.Error("MLPMemBytes not monotone in network size")
	}
	// The paper's 3-layer 1024-unit MLP over ~8k features is ~10M params.
	if big < memory.MB(100) {
		t.Errorf("large MLP estimate %s implausibly small", memory.FormatBytes(big))
	}
}

func TestFullyCachedShrinksNeeds(t *testing.T) {
	cold := paperCluster(t, "vgg16", 3, 20000, 10)
	warm := cold
	warm.CachedLayers = warm.NumLayers
	if cold.FullyCached() || !warm.FullyCached() {
		t.Fatal("FullyCached gate misfires")
	}

	// No inference → no CNN replicas in DL Execution Memory.
	if need := DLMemoryNeed(warm, 4); need != 0 {
		t.Errorf("fully-cached DL need = %d, want 0", need)
	}
	if DLMemoryNeed(cold, 4) == 0 {
		t.Error("cold DL need should charge replicas")
	}
	warmDL := warm
	warmDL.Placement = MInDLMemory
	if need := DLMemoryNeed(warmDL, 4); need != 4*warmDL.DownstreamMemBytes {
		t.Errorf("DL-resident downstream must still be charged, got %d", need)
	}

	// User Memory loses the serialized model, decode buffers, and
	// activations.
	params := DefaultParams()
	np := NumPartitions(memory.GB(10), 4, 8, params.PMax)
	if wu, cu := UserMemoryNeed(warm, 4, np, params), UserMemoryNeed(cold, 4, np, params); wu >= cu {
		t.Errorf("fully-cached User need %d not below cold %d", wu, cu)
	}

	// The base joined table drops the image payloads (Equation 16 inputs
	// shrink), so both peaks decrease.
	_, coldSingle, coldDouble, err := IntermediateSizes(cold, params)
	if err != nil {
		t.Fatal(err)
	}
	_, warmSingle, warmDouble, err := IntermediateSizes(warm, params)
	if err != nil {
		t.Fatal(err)
	}
	if warmSingle > coldSingle || warmDouble >= coldDouble {
		t.Errorf("cached peaks (%d,%d) not below cold (%d,%d)", warmSingle, warmDouble, coldSingle, coldDouble)
	}

	// Partial caching alone must not trip the fully-cached gate.
	partial := cold
	partial.CachedLayers = 1
	if partial.FullyCached() {
		t.Error("partial cache treated as full")
	}
	if DLMemoryNeed(partial, 4) != DLMemoryNeed(cold, 4) {
		t.Error("partial cache changed DL need")
	}
}
