// Package crashtest implements the subprocess re-exec pattern for
// crash-consistency tests. A parent test re-runs its own test binary pointed
// at a single helper test function; the helper arms a one-shot Kill
// failpoint, drives the workload until faultinject terminates the process
// mid-operation (no deferred cleanup, like a real kill -9), and the parent
// then reopens the on-disk state and asserts recovery invariants.
//
// Usage, in the package under test:
//
//	func TestCrashHelper(t *testing.T) {
//		scenario := crashtest.Scenario()
//		if scenario == "" {
//			t.Skip("not a crash helper process")
//		}
//		// ... arm faultinject.Kill() at a site, run the workload ...
//		t.Fatalf("scenario %s did not kill the process", scenario)
//	}
//
//	func TestCrashRecovery(t *testing.T) {
//		dir := t.TempDir()
//		crashtest.Run(t, "TestCrashHelper", "my-scenario", dir)
//		// ... reopen dir, assert invariants ...
//	}
package crashtest

import (
	"errors"
	"os"
	"os/exec"
	"testing"

	"repro/internal/faultinject"
)

const (
	scenarioEnv = "VISTA_CRASH_SCENARIO"
	dirEnv      = "VISTA_CRASH_DIR"
)

// Scenario returns the scenario name when the current process is a re-exec'd
// crash helper, or "" in a normal test process.
func Scenario() string { return os.Getenv(scenarioEnv) }

// Dir returns the working directory handed to the crash helper by Run.
func Dir() string { return os.Getenv(dirEnv) }

// Run re-executes the current test binary running only helperTest under the
// given scenario and directory, and requires the child to die with
// faultinject.KillExitCode — a clean exit or any other status fails the
// parent test, so a scenario that never reaches its kill site cannot pass
// silently.
func Run(t *testing.T, helperTest, scenario, dir string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^"+helperTest+"$", "-test.count=1")
	cmd.Env = append(os.Environ(), scenarioEnv+"="+scenario, dirEnv+"="+dir)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("crash helper %s exited cleanly, want exit code %d\noutput:\n%s",
			scenario, faultinject.KillExitCode, out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("crash helper %s failed to run: %v", scenario, err)
	}
	if code := ee.ExitCode(); code != faultinject.KillExitCode {
		t.Fatalf("crash helper %s exited with code %d, want %d\noutput:\n%s",
			scenario, code, faultinject.KillExitCode, out)
	}
}
