// Package faultinject is a deterministic failpoint layer for the Vista
// reproduction. Production code marks the I/O and allocation edges it assumes
// succeed — spill writes, feature-store entry/index persistence, batch-buffer
// allocation, stage boundaries — with named sites; tests arm trigger policies
// at those sites to drive error paths, torn writes, and mid-operation process
// kills that real disks and real crashes produce nondeterministically.
//
// Site naming convention: "<package>/<area>.<step>", e.g.
// "dataflow/spill.write" or "featurestore/index.rename"; dynamic variants use
// a ":<label>" suffix, e.g. "core/stage:join". Each package exports its site
// names as Fault* constants next to the code that hits them.
//
// The layer is zero-overhead when disarmed: Hit and HitBytes consult a single
// package-level atomic before touching any lock, so a production binary pays
// one atomic load per site visit. Policies are deterministic given the call
// sequence (fail-nth-call, fail-every-kth, fail-after-N-bytes, one-shot
// kill-here) with a seeded-random mode for chaos stress runs.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// KillExitCode is the process exit status a Kill policy dies with. Crash
// harnesses re-exec the test binary and require exactly this code, so an
// unrelated fatal error can never masquerade as the injected crash.
const KillExitCode = 86

// Error is the typed error every firing failpoint surfaces. Callers wrap it
// with %w, so tests recover it from any depth with errors.As.
type Error struct {
	// Site is the failpoint site that fired.
	Site string
	// Policy describes the armed policy, e.g. "fail-nth(3)".
	Policy string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: fault at %s [%s]", e.Site, e.Policy)
}

// AsFault returns the *Error in err's chain, if any.
func AsFault(err error) (*Error, bool) {
	var fe *Error
	if errors.As(err, &fe) {
		return fe, true
	}
	return nil, false
}

// verdict is a policy's decision for one site visit.
type verdict struct {
	fail bool // the operation must fail with a typed *Error
	kill bool // the process must die here (exitFunc)
	// silent, at byte sites, means the operation reports success while only
	// allowed bytes become durable — a no-fsync torn write.
	silent bool
	// allowed is the byte prefix that lands before the fault takes effect
	// (byte sites only; ignored elsewhere).
	allowed int64
}

// Policy decides, per call, whether a site fires. Implementations are
// stateful (call ordinals, byte cursors, one-shot latches); the registry
// serializes decide calls under its lock.
type Policy interface {
	// decide is given the 1-based call ordinal at the site and, at byte
	// sites, the size of the transfer (0 at plain sites).
	decide(call int64, n int64) verdict
	// String describes the policy for Error values and reports.
	String() string
}

// ByteVerdict is HitBytes's answer to an I/O site moving n bytes.
type ByteVerdict struct {
	// Allowed is how many bytes may land before the fault takes effect;
	// equal to the full transfer size when no fault fires.
	Allowed int64
	// Err, when non-nil, means the operation must fail after persisting at
	// most Allowed bytes (a torn write the caller is told about).
	Err error
	// SilentTear means the operation must report success while persisting
	// only Allowed bytes (a torn write nobody is told about — the no-fsync
	// rename hazard crash-consistency tests exercise).
	SilentTear bool
}

type site struct {
	policy Policy
	calls  int64
	fires  int64
}

var (
	armedCount atomic.Int64 // number of armed sites; the disarmed fast path

	mu       sync.Mutex
	sites    = map[string]*site{}
	exitFunc = func(code int) { os.Exit(code) }
)

// Enabled reports whether any site is armed. Production code never needs it
// (Hit/HitBytes embed the same check), but harnesses use it for sanity gates.
func Enabled() bool { return armedCount.Load() > 0 }

// Arm installs a policy at a named site, replacing any previous policy and
// resetting the site's counters.
func Arm(name string, p Policy) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[name]; !ok {
		armedCount.Add(1)
	}
	sites[name] = &site{policy: p}
}

// Disarm removes the policy at a site; a no-op for unarmed sites.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[name]; ok {
		delete(sites, name)
		armedCount.Add(-1)
	}
}

// DisarmAll removes every armed site. Tests defer this so one failed test
// cannot poison the next.
func DisarmAll() {
	mu.Lock()
	defer mu.Unlock()
	armedCount.Add(-int64(len(sites)))
	sites = map[string]*site{}
}

// ArmedSites returns the names of all armed sites, sorted. CI fails a test
// binary whose TestMain finds sites still armed at exit.
func ArmedSites() []string {
	mu.Lock()
	defer mu.Unlock()
	names := make([]string, 0, len(sites))
	for name := range sites {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Calls reports how many times an armed site has been visited since arming
// (0 for unarmed sites).
func Calls(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if s, ok := sites[name]; ok {
		return s.calls
	}
	return 0
}

// Fires reports how many times an armed site's policy has fired since arming.
func Fires(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if s, ok := sites[name]; ok {
		return s.fires
	}
	return 0
}

// TotalFires sums Fires over every armed site — chaos schedules use it to
// tell "run survived because no fault fired" from "fault was swallowed".
func TotalFires() int64 {
	mu.Lock()
	defer mu.Unlock()
	var total int64
	for _, s := range sites {
		total += s.fires
	}
	return total
}

// SetExitFunc replaces the function Kill policies terminate the process with
// (default os.Exit) and returns the previous one. Only the layer's own tests
// use it; crash harnesses want the real exit.
func SetExitFunc(f func(int)) func(int) {
	mu.Lock()
	defer mu.Unlock()
	prev := exitFunc
	exitFunc = f
	return prev
}

// visit runs the armed policy (if any) for one site call and applies kill
// semantics. It returns the policy's verdict with fail/silent resolved.
func visit(name string, n int64) (verdict, string) {
	mu.Lock()
	s, ok := sites[name]
	if !ok {
		mu.Unlock()
		return verdict{allowed: n}, ""
	}
	s.calls++
	v := s.policy.decide(s.calls, n)
	if v.fail || v.kill || v.silent {
		s.fires++
	}
	desc := s.policy.String()
	exit := exitFunc
	mu.Unlock()
	if v.kill {
		// A crash point: die without running deferred cleanup, like a real
		// kill -9 between two writes. exitFunc normally never returns; the
		// layer's own tests substitute it and take the fail path instead.
		exit(KillExitCode)
		v.kill, v.fail = false, true
	}
	if !v.fail && !v.silent {
		v.allowed = n
	}
	return v, desc
}

// Hit marks a plain (non-byte) failpoint site. It returns nil when the layer
// is disarmed or the site's policy does not fire, and a typed *Error when it
// does. A Kill policy terminates the process inside Hit.
func Hit(name string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	v, desc := visit(name, 0)
	if v.fail {
		return &Error{Site: name, Policy: desc}
	}
	return nil
}

// HitBytes marks a byte-transfer failpoint site (a write or read of n bytes).
// The caller must honor the verdict: persist at most Allowed bytes, then fail
// with Err if non-nil, or report success if SilentTear is set.
func HitBytes(name string, n int64) ByteVerdict {
	if armedCount.Load() == 0 {
		return ByteVerdict{Allowed: n}
	}
	v, desc := visit(name, n)
	out := ByteVerdict{Allowed: v.allowed, SilentTear: v.silent}
	if v.fail {
		out.Err = &Error{Site: name, Policy: desc}
	}
	return out
}

// --- Policies ---

// FailAlways fires on every call.
func FailAlways() Policy {
	return policyFunc("fail-always", func(call, n int64) verdict {
		return verdict{fail: true}
	})
}

// FailNth fires exactly on the nth call (1-based) and never again.
func FailNth(nth int64) Policy {
	return policyFunc(fmt.Sprintf("fail-nth(%d)", nth), func(call, n int64) verdict {
		return verdict{fail: call == nth}
	})
}

// FailEveryKth fires on every kth call (k, 2k, 3k, ...).
func FailEveryKth(k int64) Policy {
	if k <= 0 {
		k = 1
	}
	return policyFunc(fmt.Sprintf("fail-every(%d)", k), func(call, n int64) verdict {
		return verdict{fail: call%k == 0}
	})
}

// FailAfterBytes fires once the site's cumulative transferred bytes would
// exceed limit; the verdict's Allowed is the remaining headroom, so the
// caller persists a torn prefix before failing — a disk filling up mid-write.
func FailAfterBytes(limit int64) Policy {
	var seen int64
	var fired bool
	return policyFunc(fmt.Sprintf("fail-after-bytes(%d)", limit), func(call, n int64) verdict {
		if fired {
			return verdict{fail: true}
		}
		if seen+n <= limit {
			seen += n
			return verdict{}
		}
		fired = true
		allowed := limit - seen
		if allowed < 0 {
			allowed = 0
		}
		return verdict{fail: true, allowed: allowed}
	})
}

// SilentTruncate makes one write at the site silently persist only the first
// keep bytes while reporting success — the no-fsync torn write that leaves a
// truncated file behind a "successful" rename. One-shot.
func SilentTruncate(keep int64) Policy {
	var fired bool
	return policyFunc(fmt.Sprintf("silent-truncate(%d)", keep), func(call, n int64) verdict {
		if fired || keep >= n {
			return verdict{}
		}
		fired = true
		return verdict{silent: true, allowed: keep}
	})
}

// Kill terminates the process at the site's first visit — the kill-here point
// crash-consistency tests arm between two persistence steps. One-shot by
// construction (the process does not survive it).
func Kill() Policy { return KillNth(1) }

// KillNth terminates the process at the site's nth visit.
func KillNth(nth int64) Policy {
	return policyFunc(fmt.Sprintf("kill-nth(%d)", nth), func(call, n int64) verdict {
		return verdict{kill: call == nth}
	})
}

// FailRandom fires with probability p per call, driven by its own seeded
// generator — the stress mode: schedules differ across seeds but replay
// exactly for a given seed and call sequence.
func FailRandom(seed int64, p float64) Policy {
	rng := rand.New(rand.NewSource(seed))
	return policyFunc(fmt.Sprintf("fail-random(seed=%d,p=%g)", seed, p), func(call, n int64) verdict {
		return verdict{fail: rng.Float64() < p}
	})
}

// Callback runs fn at every visit without failing the site. It turns a site
// into a synchronization point: concurrency tests use it to observe which
// locks are (not) held while the marked operation is in flight.
func Callback(fn func()) Policy {
	return policyFunc("callback", func(call, n int64) verdict {
		fn()
		return verdict{}
	})
}

// policyFunc adapts a decide function into a Policy.
func policyFunc(name string, decide func(call, n int64) verdict) Policy {
	return &simplePolicy{name: name, fn: decide}
}

type simplePolicy struct {
	name string
	fn   func(call, n int64) verdict
}

func (p *simplePolicy) decide(call, n int64) verdict { return p.fn(call, n) }
func (p *simplePolicy) String() string               { return p.name }
