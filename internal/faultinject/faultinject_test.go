package faultinject

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
)

func TestMain(m *testing.M) {
	code := m.Run()
	if sites := ArmedSites(); len(sites) > 0 {
		fmt.Fprintf(os.Stderr, "failpoint sites left armed at exit: %v\n", sites)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func TestDisarmedFastPath(t *testing.T) {
	DisarmAll()
	if Enabled() {
		t.Fatal("layer enabled with no sites armed")
	}
	if err := Hit("nowhere"); err != nil {
		t.Fatalf("disarmed Hit failed: %v", err)
	}
	v := HitBytes("nowhere", 128)
	if v.Err != nil || v.SilentTear || v.Allowed != 128 {
		t.Fatalf("disarmed HitBytes = %+v", v)
	}
}

func TestFailNthFiresExactlyOnce(t *testing.T) {
	defer DisarmAll()
	Arm("site", FailNth(3))
	for i := 1; i <= 5; i++ {
		err := Hit("site")
		if (i == 3) != (err != nil) {
			t.Fatalf("call %d: err = %v", i, err)
		}
		if err != nil {
			fe, ok := AsFault(fmt.Errorf("wrapped: %w", err))
			if !ok || fe.Site != "site" {
				t.Fatalf("fault not recoverable from chain: %v", err)
			}
		}
	}
	if Calls("site") != 5 || Fires("site") != 1 {
		t.Fatalf("calls=%d fires=%d, want 5/1", Calls("site"), Fires("site"))
	}
}

func TestFailEveryKth(t *testing.T) {
	defer DisarmAll()
	Arm("site", FailEveryKth(2))
	var fails int
	for i := 0; i < 6; i++ {
		if Hit("site") != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("every-2nd fired %d times in 6 calls, want 3", fails)
	}
}

func TestFailAfterBytesTornPrefix(t *testing.T) {
	defer DisarmAll()
	Arm("io", FailAfterBytes(100))
	if v := HitBytes("io", 60); v.Err != nil || v.Allowed != 60 {
		t.Fatalf("first write: %+v", v)
	}
	v := HitBytes("io", 60)
	if v.Err == nil {
		t.Fatal("second write crossed the limit but did not fail")
	}
	if v.Allowed != 40 {
		t.Fatalf("torn prefix = %d, want 40 (100-60)", v.Allowed)
	}
	if v2 := HitBytes("io", 1); v2.Err == nil || v2.Allowed != 0 {
		t.Fatalf("post-limit write: %+v", v2)
	}
}

func TestSilentTruncateOneShot(t *testing.T) {
	defer DisarmAll()
	Arm("io", SilentTruncate(8))
	v := HitBytes("io", 64)
	if v.Err != nil || !v.SilentTear || v.Allowed != 8 {
		t.Fatalf("first write: %+v", v)
	}
	if v2 := HitBytes("io", 64); v2.SilentTear || v2.Err != nil || v2.Allowed != 64 {
		t.Fatalf("silent truncate fired twice: %+v", v2)
	}
}

func TestKillUsesExitFunc(t *testing.T) {
	defer DisarmAll()
	var code int
	restore := SetExitFunc(func(c int) { code = c })
	defer SetExitFunc(restore)
	Arm("crash", Kill())
	err := Hit("crash")
	if code != KillExitCode {
		t.Fatalf("exit code = %d, want %d", code, KillExitCode)
	}
	if err == nil {
		t.Fatal("suppressed kill must still fail the operation")
	}
}

func TestFailRandomDeterministicPerSeed(t *testing.T) {
	defer DisarmAll()
	pattern := func(seed int64) []bool {
		Arm("rng", FailRandom(seed, 0.5))
		out := make([]bool, 64)
		for i := range out {
			out[i] = Hit("rng") != nil
		}
		Disarm("rng")
		return out
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-call schedules")
	}
}

func TestCallbackRunsWithoutFailing(t *testing.T) {
	defer DisarmAll()
	ran := 0
	Arm("sync", Callback(func() { ran++ }))
	if err := Hit("sync"); err != nil {
		t.Fatalf("callback site failed: %v", err)
	}
	if ran != 1 {
		t.Fatalf("callback ran %d times", ran)
	}
}

func TestArmedSitesAndDisarm(t *testing.T) {
	defer DisarmAll()
	Arm("b", FailAlways())
	Arm("a", FailAlways())
	got := ArmedSites()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("ArmedSites = %v", got)
	}
	Disarm("a")
	if !Enabled() {
		t.Fatal("one site still armed")
	}
	Disarm("b")
	if Enabled() {
		t.Fatal("all sites disarmed but layer still enabled")
	}
}

func TestErrorsAsThroughDeepWrap(t *testing.T) {
	defer DisarmAll()
	Arm("deep", FailAlways())
	err := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", Hit("deep")))
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != "deep" {
		t.Fatalf("typed fault lost through wrapping: %v", err)
	}
}

func TestConcurrentHits(t *testing.T) {
	defer DisarmAll()
	Arm("hot", FailEveryKth(10))
	var wg sync.WaitGroup
	var mu sync.Mutex
	fails := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < 100; i++ {
				if Hit("hot") != nil {
					local++
				}
			}
			mu.Lock()
			fails += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if Calls("hot") != 800 || fails != 80 {
		t.Fatalf("calls=%d fails=%d, want 800/80", Calls("hot"), fails)
	}
}
