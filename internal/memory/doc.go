// Package memory implements Vista's abstract model of distributed memory
// apportioning (Section 4.1, Figure 4). A worker's System Memory splits into
// OS Reserved Memory and Workload Memory; Workload Memory splits into DL
// Execution Memory (outside the PD system's heap), User Memory, Core Memory,
// and Storage Memory. The package also encodes how that abstract model maps
// onto Spark-like and Ignite-like systems, and defines the typed
// out-of-memory errors for the paper's four crash scenarios.
//
// Pool is the enforcement primitive: a byte budget that rejects allocations
// past capacity with a typed *OOMError (IsOOM unwraps one from any error
// chain) and tracks a high-water mark. The dataflow engine holds one pool
// per (node, memory class); the optimizer's Decision apportions capacities
// across them (Equations 9-15); and the admission controller prices whole
// runs in the same currency, so a byte admitted is a byte some pool could
// actually charge.
package memory
