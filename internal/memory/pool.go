package memory

import (
	"fmt"
	"sync"
)

// Pool is a capacity-checked byte allocator for one memory region. All the
// substrate systems account their allocations against pools so that the
// paper's crash scenarios surface as typed OOMError values instead of real
// process deaths.
type Pool struct {
	region   Region
	scenario CrashScenario

	mu       sync.Mutex
	capacity int64
	used     int64
	peak     int64
}

// NewPool creates a pool with the given capacity. Allocation failures are
// reported as the given crash scenario.
func NewPool(region Region, scenario CrashScenario, capacity int64) *Pool {
	if capacity < 0 {
		capacity = 0
	}
	return &Pool{region: region, scenario: scenario, capacity: capacity}
}

// Region returns the pool's memory region.
func (p *Pool) Region() Region { return p.region }

// Capacity returns the pool's capacity in bytes.
func (p *Pool) Capacity() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity
}

// Used returns the bytes currently allocated.
func (p *Pool) Used() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// Peak returns the high-water mark of allocated bytes.
func (p *Pool) Peak() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// Available returns the unallocated bytes.
func (p *Pool) Available() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity - p.used
}

// Alloc reserves n bytes, or returns an *OOMError carrying the pool's crash
// scenario. Zero and negative requests are no-ops.
func (p *Pool) Alloc(n int64, detail string) error {
	if n <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.used+n > p.capacity {
		return &OOMError{
			Region:   p.region,
			Scenario: p.scenario,
			Need:     n,
			Avail:    p.capacity - p.used,
			Detail:   detail,
		}
	}
	p.used += n
	if p.used > p.peak {
		p.peak = p.used
	}
	return nil
}

// Free releases n bytes. Freeing more than allocated is a programming error
// and panics (it would silently corrupt all later crash accounting).
func (p *Pool) Free(n int64) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > p.used {
		panic(fmt.Sprintf("memory: freeing %d bytes from %s pool with only %d used", n, p.region, p.used))
	}
	p.used -= n
}

// TryAllocOrEvict reserves n bytes, calling evict to release space while the
// pool is full. evict returns the number of bytes it released (0 when nothing
// remains evictable). This models Spark's moving Storage–Core boundary: Core
// borrows from Storage by evicting cached partitions to disk.
func (p *Pool) TryAllocOrEvict(n int64, detail string, evict func(need int64) int64) error {
	for {
		err := p.Alloc(n, detail)
		if err == nil {
			return nil
		}
		if evict == nil {
			return err
		}
		oom, _ := IsOOM(err)
		released := evict(oom.Need - oom.Avail)
		if released <= 0 {
			return err
		}
	}
}

// Reset zeroes the pool's usage and peak (for reuse across runs).
func (p *Pool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.used, p.peak = 0, 0
}
