package memory

import (
	"errors"
	"fmt"
)

// Region identifies one region of the abstract memory model (Figure 4(A)).
type Region int

// Memory regions.
const (
	// OSReserved is memory for the OS and other processes.
	OSReserved Region = iota
	// DLExecution is memory the DL system (CNN inference and DL downstream
	// models) uses outside the PD system's Storage/Execution regions.
	DLExecution
	// User is the part of Execution Memory used for UDF execution:
	// serialized CNNs, input buffers, and materialized feature TensorLists.
	User
	// Core is the part of Execution Memory used for query processing
	// (e.g. join state).
	Core
	// Storage caches intermediate data partitions.
	Storage
	// Device is GPU memory (Equation 15), present only with accelerators.
	Device
)

var regionNames = map[Region]string{
	OSReserved:  "os-reserved",
	DLExecution: "dl-execution",
	User:        "user",
	Core:        "core",
	Storage:     "storage",
	Device:      "device",
}

// String implements fmt.Stringer.
func (r Region) String() string {
	if n, ok := regionNames[r]; ok {
		return n
	}
	return fmt.Sprintf("region(%d)", int(r))
}

// CrashScenario enumerates the memory-related workload crash scenarios of
// Section 4.1.
type CrashScenario int

// Crash scenarios (Section 4.1, "Memory-related Crash and Inefficiency
// Scenarios").
const (
	// DLBlowup: DL Execution Memory blowups — per-thread CNN replicas
	// exceed the memory left outside the PD system; the OS kills the
	// application (scenario 1).
	DLBlowup CrashScenario = iota
	// InsufficientUser: UDF threads' CNNs, downstream models, and feature
	// TensorLists exceed User Memory (scenario 2).
	InsufficientUser
	// LargePartition: a data partition too big for the available User and
	// Core Execution Memory during join/UDF processing (scenario 3).
	LargePartition
	// DriverOOM: the driver cannot hold the serialized CNN broadcast or
	// collected partial results (scenario 4).
	DriverOOM
	// StorageExhausted: intermediate data exceeds total memory on a
	// memory-only system with no disk spill (the Ignite Eager crash in
	// Section 5.1).
	StorageExhausted
	// DeviceExhausted: CNN replicas exceed GPU memory (Equation 15).
	DeviceExhausted
)

var scenarioNames = map[CrashScenario]string{
	DLBlowup:         "dl-execution-blowup",
	InsufficientUser: "insufficient-user-memory",
	LargePartition:   "oversized-partition",
	DriverOOM:        "driver-oom",
	StorageExhausted: "storage-exhausted",
	DeviceExhausted:  "gpu-memory-exhausted",
}

// String implements fmt.Stringer.
func (s CrashScenario) String() string {
	if n, ok := scenarioNames[s]; ok {
		return n
	}
	return fmt.Sprintf("scenario(%d)", int(s))
}

// OOMError is a memory-related workload crash. It is an ordinary error —
// never a panic — so harnesses can render it as the paper's "×".
type OOMError struct {
	Region   Region
	Scenario CrashScenario
	// Need and Avail are the requested and available bytes at failure.
	Need, Avail int64
	// Detail explains the failing allocation.
	Detail string
}

// Error implements error.
func (e *OOMError) Error() string {
	return fmt.Sprintf("memory: %s in %s region: need %s, available %s (%s)",
		e.Scenario, e.Region, FormatBytes(e.Need), FormatBytes(e.Avail), e.Detail)
}

// IsOOM reports whether err is (or wraps) a memory crash, returning it.
func IsOOM(err error) (*OOMError, bool) {
	var oom *OOMError
	if errors.As(err, &oom) {
		return oom, true
	}
	return nil, false
}

// Apportionment fixes the size of every region on one worker — the memory
// variables the Vista optimizer sets (Table 1(B)).
type Apportionment struct {
	OSReserved  int64
	DLExecution int64
	User        int64
	Core        int64
	Storage     int64
}

// WorkloadTotal returns the total Workload Memory (everything but the OS
// reservation).
func (a Apportionment) WorkloadTotal() int64 {
	return a.DLExecution + a.User + a.Core + a.Storage
}

// Total returns the full apportioned System Memory.
func (a Apportionment) Total() int64 { return a.OSReserved + a.WorkloadTotal() }

// Validate checks Equation 12: the apportioned regions must fit within the
// worker's System Memory and every region must be non-negative.
func (a Apportionment) Validate(systemMem int64) error {
	for _, r := range []struct {
		name string
		v    int64
	}{
		{"os-reserved", a.OSReserved},
		{"dl-execution", a.DLExecution},
		{"user", a.User},
		{"core", a.Core},
		{"storage", a.Storage},
	} {
		if r.v < 0 {
			return fmt.Errorf("memory: negative %s region (%d)", r.name, r.v)
		}
	}
	if a.Total() > systemMem {
		return &OOMError{
			Region:   OSReserved,
			Scenario: DLBlowup,
			Need:     a.Total(),
			Avail:    systemMem,
			Detail:   "apportioned regions exceed system memory (Equation 12)",
		}
	}
	return nil
}

// FormatBytes renders a byte count in human units.
func FormatBytes(b int64) string {
	const (
		kb = 1 << 10
		mb = 1 << 20
		gb = 1 << 30
	)
	switch {
	case b >= gb:
		return fmt.Sprintf("%.2f GB", float64(b)/gb)
	case b >= mb:
		return fmt.Sprintf("%.1f MB", float64(b)/mb)
	case b >= kb:
		return fmt.Sprintf("%.1f KB", float64(b)/kb)
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// GB converts gigabytes to bytes.
func GB(g float64) int64 { return int64(g * (1 << 30)) }

// MB converts megabytes to bytes.
func MB(m float64) int64 { return int64(m * (1 << 20)) }
