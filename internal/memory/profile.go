package memory

import "fmt"

// SystemKind identifies which PD system's memory model an apportionment maps
// onto (Figure 4(B,C)).
type SystemKind int

// PD system kinds.
const (
	// SparkLike: User, Core, and Storage come from the JVM heap; the
	// Storage–Core boundary moves (Core borrows from Storage, evicting
	// partitions to disk); disk spills are supported.
	SparkLike SystemKind = iota
	// IgniteLike: User+Core share the JVM heap; Storage is a static
	// off-heap region; the system is memory-only (no disk spill) as
	// configured in the paper's experiments.
	IgniteLike
)

// String implements fmt.Stringer.
func (k SystemKind) String() string {
	switch k {
	case SparkLike:
		return "spark"
	case IgniteLike:
		return "ignite"
	}
	return fmt.Sprintf("system(%d)", int(k))
}

// SupportsSpill reports whether the system can spill cached partitions to
// disk instead of crashing when Storage Memory fills up.
func (k SystemKind) SupportsSpill() bool { return k == SparkLike }

// Defaults for the baseline (non-Vista) configurations used in Section 5.1.
const (
	// DefaultOSReserved is the OS reservation (Table 1(C): 3 GB).
	defaultOSReservedGB = 3
	// sparkUserFraction is Spark's default User Memory share of the heap
	// (Section 4.1: "Spark allocates 40% of the Heap Memory to User
	// Memory").
	sparkUserFraction = 0.40
	// sparkStorageImmune is the fraction of the Storage/Core share immune
	// to eviction (default 50%).
	sparkStorageImmune = 0.50
)

// DefaultOSReserved returns the default OS reservation.
func DefaultOSReserved() int64 { return GB(defaultOSReservedGB) }

// BaselineSparkApportionment models the paper's baseline Spark setup
// (Section 5.1: "29 GB JVM heap ... defaults for all other parameters,
// including np and memory apportioning") for a worker with the given System
// Memory and per-thread DL footprint. The heap takes all memory left after
// the OS reservation; crucially, the baseline reserves nothing for the DL
// system — that is exactly what makes naive configurations crash-prone
// (Section 4.1, scenario 1).
func BaselineSparkApportionment(systemMem, heap int64) Apportionment {
	user := int64(float64(heap) * sparkUserFraction)
	rest := heap - user
	// The Storage–Core split is dynamic in Spark; for accounting we take
	// the guideline split with the immune storage fraction.
	storage := int64(float64(rest) * sparkStorageImmune)
	core := rest - storage
	return Apportionment{
		OSReserved:  systemMem - heap, // whatever the heap left over
		DLExecution: 0,                // baseline plans never budget for TF
		User:        user,
		Core:        core,
		Storage:     storage,
	}
}

// igniteHeapOverhead approximates the heap Ignite's own internal structures
// (metrics, discovery, marshaller caches) consume before UDFs see any of it.
const igniteHeapOverhead = 128 << 20

// BaselineIgniteApportionment models the paper's baseline Ignite setup
// (Section 5.1: "4 GB JVM heap, 25 GB off-heap Storage Memory"): the heap is
// all User+Core (split evenly for accounting, less Ignite's own overhead on
// the user side), storage is static off-heap.
func BaselineIgniteApportionment(systemMem, heap, offHeapStorage int64) Apportionment {
	user := heap/2 - igniteHeapOverhead
	if user < 0 {
		user = 0
	}
	return Apportionment{
		OSReserved:  systemMem - heap - offHeapStorage,
		DLExecution: 0,
		User:        user,
		Core:        heap - user,
		Storage:     offHeapStorage,
	}
}
