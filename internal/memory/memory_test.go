package memory

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestApportionmentTotals(t *testing.T) {
	a := Apportionment{OSReserved: 1, DLExecution: 2, User: 3, Core: 4, Storage: 5}
	if a.WorkloadTotal() != 14 {
		t.Errorf("WorkloadTotal = %d, want 14", a.WorkloadTotal())
	}
	if a.Total() != 15 {
		t.Errorf("Total = %d, want 15", a.Total())
	}
}

func TestApportionmentValidate(t *testing.T) {
	a := Apportionment{OSReserved: GB(3), DLExecution: GB(5), User: GB(4), Core: GB(2), Storage: GB(10)}
	if err := a.Validate(GB(32)); err != nil {
		t.Errorf("valid apportionment rejected: %v", err)
	}
	if err := a.Validate(GB(20)); err == nil {
		t.Error("oversized apportionment accepted")
	} else if _, ok := IsOOM(err); !ok {
		t.Errorf("expected OOMError, got %T", err)
	}
	bad := Apportionment{User: -1}
	if err := bad.Validate(GB(32)); err == nil {
		t.Error("negative region accepted")
	}
}

func TestOOMErrorMessageAndIsOOM(t *testing.T) {
	err := &OOMError{Region: User, Scenario: InsufficientUser, Need: MB(600), Avail: MB(100), Detail: "feature TensorList"}
	msg := err.Error()
	for _, want := range []string{"insufficient-user-memory", "user", "600.0 MB", "100.0 MB", "feature TensorList"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message %q missing %q", msg, want)
		}
	}
	wrapped := fmt.Errorf("task failed: %w", err)
	if oom, ok := IsOOM(wrapped); !ok || oom.Scenario != InsufficientUser {
		t.Error("IsOOM failed to unwrap")
	}
	if _, ok := IsOOM(errors.New("other")); ok {
		t.Error("IsOOM matched a non-OOM error")
	}
}

func TestRegionAndScenarioStrings(t *testing.T) {
	if Storage.String() != "storage" || DLExecution.String() != "dl-execution" {
		t.Error("region names wrong")
	}
	if DLBlowup.String() != "dl-execution-blowup" {
		t.Error("scenario name wrong")
	}
	if !strings.Contains(Region(99).String(), "99") || !strings.Contains(CrashScenario(99).String(), "99") {
		t.Error("unknown region/scenario should render numerically")
	}
}

func TestFormatBytes(t *testing.T) {
	tests := []struct {
		in   int64
		want string
	}{
		{512, "512 B"},
		{2 << 10, "2.0 KB"},
		{MB(3.5), "3.5 MB"},
		{GB(2), "2.00 GB"},
	}
	for _, tc := range tests {
		if got := FormatBytes(tc.in); got != tc.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestBaselineSparkApportionment(t *testing.T) {
	// Paper setup: 32 GB node, 29 GB heap. 40% user, rest split 50/50.
	a := BaselineSparkApportionment(GB(32), GB(29))
	if a.DLExecution != 0 {
		t.Error("baseline must not budget DL execution memory")
	}
	if a.User != int64(float64(GB(29))*0.40) {
		t.Errorf("user = %d", a.User)
	}
	if a.Total() != GB(32) {
		t.Errorf("total = %d, want 32 GB", a.Total())
	}
	if a.Storage+a.Core+a.User != GB(29) {
		t.Error("heap regions do not sum to heap")
	}
}

func TestBaselineIgniteApportionment(t *testing.T) {
	// Paper setup: 4 GB heap, 25 GB off-heap storage on a 32 GB node.
	a := BaselineIgniteApportionment(GB(32), GB(4), GB(25))
	if a.Storage != GB(25) {
		t.Errorf("storage = %d, want 25 GB", a.Storage)
	}
	if a.User+a.Core != GB(4) {
		t.Error("heap not split into user+core")
	}
	if a.OSReserved != GB(3) {
		t.Errorf("os reserved = %d, want 3 GB", a.OSReserved)
	}
}

func TestSystemKind(t *testing.T) {
	if !SparkLike.SupportsSpill() {
		t.Error("Spark-like must spill")
	}
	if IgniteLike.SupportsSpill() {
		t.Error("Ignite-like (memory-only) must not spill")
	}
	if SparkLike.String() != "spark" || IgniteLike.String() != "ignite" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(SystemKind(9).String(), "9") {
		t.Error("unknown kind should render numerically")
	}
}

func TestPoolAllocFree(t *testing.T) {
	p := NewPool(User, InsufficientUser, 100)
	if err := p.Alloc(60, "a"); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if p.Used() != 60 || p.Available() != 40 {
		t.Errorf("used/avail = %d/%d", p.Used(), p.Available())
	}
	err := p.Alloc(50, "b")
	if err == nil {
		t.Fatal("over-allocation succeeded")
	}
	oom, ok := IsOOM(err)
	if !ok || oom.Scenario != InsufficientUser || oom.Need != 50 || oom.Avail != 40 {
		t.Errorf("wrong OOM detail: %+v", oom)
	}
	p.Free(60)
	if p.Used() != 0 {
		t.Error("free did not release")
	}
	if p.Peak() != 60 {
		t.Errorf("peak = %d, want 60", p.Peak())
	}
	// Zero and negative requests are no-ops.
	if err := p.Alloc(0, ""); err != nil {
		t.Error("zero alloc failed")
	}
	if err := p.Alloc(-5, ""); err != nil {
		t.Error("negative alloc failed")
	}
}

func TestPoolFreeTooMuchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-free")
		}
	}()
	p := NewPool(Core, LargePartition, 10)
	p.Free(1)
}

func TestPoolNegativeCapacityClamped(t *testing.T) {
	p := NewPool(Storage, StorageExhausted, -5)
	if p.Capacity() != 0 {
		t.Errorf("capacity = %d, want 0", p.Capacity())
	}
	if err := p.Alloc(1, ""); err == nil {
		t.Error("allocation from empty pool succeeded")
	}
}

func TestPoolTryAllocOrEvict(t *testing.T) {
	p := NewPool(Storage, StorageExhausted, 100)
	if err := p.Alloc(90, "cached"); err != nil {
		t.Fatal(err)
	}
	evictable := int64(90)
	evictions := 0
	err := p.TryAllocOrEvict(50, "new partition", func(need int64) int64 {
		evictions++
		release := need
		if release > evictable {
			release = evictable
		}
		evictable -= release
		p.Free(release)
		return release
	})
	if err != nil {
		t.Fatalf("TryAllocOrEvict: %v", err)
	}
	if evictions == 0 {
		t.Error("expected at least one eviction")
	}
	if p.Used() != 50+90-(90-evictable) {
		t.Logf("used = %d, evictable remaining = %d", p.Used(), evictable)
	}
}

func TestPoolTryAllocOrEvictExhausts(t *testing.T) {
	p := NewPool(Storage, StorageExhausted, 100)
	if err := p.Alloc(100, "pinned"); err != nil {
		t.Fatal(err)
	}
	// Nothing evictable: must surface the OOM.
	err := p.TryAllocOrEvict(10, "x", func(int64) int64 { return 0 })
	if _, ok := IsOOM(err); !ok {
		t.Errorf("expected OOM, got %v", err)
	}
	// Nil evict behaves like plain Alloc.
	err = p.TryAllocOrEvict(10, "x", nil)
	if _, ok := IsOOM(err); !ok {
		t.Errorf("expected OOM with nil evict, got %v", err)
	}
}

func TestPoolReset(t *testing.T) {
	p := NewPool(User, InsufficientUser, 10)
	if err := p.Alloc(7, ""); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	if p.Used() != 0 || p.Peak() != 0 {
		t.Error("reset did not clear usage")
	}
}

func TestPoolConcurrentSafety(t *testing.T) {
	p := NewPool(Core, LargePartition, 1000)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if err := p.Alloc(1, ""); err == nil {
					p.Free(1)
				}
			}
		}()
	}
	wg.Wait()
	if p.Used() != 0 {
		t.Errorf("used = %d after balanced alloc/free", p.Used())
	}
}

// Property: a pool never reports used > capacity, and peak >= used always.
func TestPoolInvariantProperty(t *testing.T) {
	f := func(ops []int16) bool {
		p := NewPool(User, InsufficientUser, 500)
		var live int64
		for _, op := range ops {
			n := int64(op)
			if n >= 0 {
				if err := p.Alloc(n, ""); err == nil {
					live += n
				}
			} else if -n <= live {
				p.Free(-n)
				live += n
			}
			if p.Used() > p.Capacity() || p.Peak() < p.Used() || p.Used() != live {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGBMBHelpers(t *testing.T) {
	if GB(1) != 1<<30 || MB(1) != 1<<20 {
		t.Error("unit helpers wrong")
	}
	if GB(0.5) != 1<<29 {
		t.Error("fractional GB wrong")
	}
}
