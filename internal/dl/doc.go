// Package dl is the deep-learning-system bridge of the Vista reproduction —
// the role TensorFrames plays between Spark and TensorFlow in the paper
// (Section 2). A Session holds one CNN's realized weights, charges per-core
// model replicas against each worker's DL Execution Memory (Section 4.1,
// crash scenario 1; Equation 11) and the serialized model against User
// Memory (Equation 10), and manufactures partition UDFs that run (partial)
// CNN inference over dataflow tables.
//
// The UDFs a Session builds (Session.PartitionFunc) implement the plan
// compiler's inference steps: run layers From..To over either raw images or
// a staged raw-tensor carry, emit the requested feature layers into each
// row's TensorList, and optionally keep the last raw tensor for the next
// staged step (Appendix B). Closing the session releases every memory
// charge it made, which run cancellation relies on to drain pools to zero.
package dl
