package dl

import (
	"math/rand"
	"testing"

	"repro/internal/cnn"
	"repro/internal/dataflow"
	"repro/internal/memory"
	"repro/internal/tensor"
)

func testEngine(t *testing.T, dlMem, userMem int64) *dataflow.Engine {
	t.Helper()
	e, err := dataflow.NewEngine(dataflow.Config{
		Nodes:        2,
		CoresPerNode: 2,
		Kind:         memory.SparkLike,
		Apportion: memory.Apportionment{
			DLExecution: dlMem,
			User:        userMem,
			Core:        memory.MB(64),
			Storage:     memory.MB(128),
		},
		DriverMemory: memory.MB(128),
		SpillDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func imageRows(t *testing.T, m *cnn.Model, n int) []dataflow.Row {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	rows := make([]dataflow.Row, n)
	for i := range rows {
		img := tensor.New(m.InputShape...)
		for j := range img.Data() {
			img.Data()[j] = rng.Float32()
		}
		blob, err := tensor.Encode(img)
		if err != nil {
			t.Fatal(err)
		}
		rows[i] = dataflow.Row{ID: int64(i), Label: float32(i % 2),
			Structured: []float32{float32(i)}, Image: blob}
	}
	return rows
}

func TestNewSessionChargesAndReleases(t *testing.T) {
	e := testEngine(t, memory.MB(64), memory.MB(64))
	s, err := NewSession(e, cnn.TinyAlexNet(), Options{Seed: 1})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if e.DLPool(0).Used() <= 0 || e.UserPool(0).Used() <= 0 {
		t.Error("session did not charge DL/User pools")
	}
	s.Close()
	if e.DLPool(0).Used() != 0 || e.UserPool(0).Used() != 0 {
		t.Error("Close did not release charges")
	}
	s.Close() // idempotent
}

func TestNewSessionDLBlowup(t *testing.T) {
	// Tiny DL region: cpu × |f|_mem cannot fit — crash scenario 1.
	e := testEngine(t, 1024, memory.MB(64))
	_, err := NewSession(e, cnn.TinyAlexNet(), Options{Seed: 1})
	oom, ok := memory.IsOOM(err)
	if !ok {
		t.Fatalf("expected DL blowup OOM, got %v", err)
	}
	if oom.Scenario != memory.DLBlowup {
		t.Errorf("scenario = %v, want dl-execution-blowup", oom.Scenario)
	}
	// Failed construction must not leak charges.
	for i := 0; i < 2; i++ {
		if e.DLPool(i).Used() != 0 || e.UserPool(i).Used() != 0 {
			t.Errorf("node %d leaked charges after failed session", i)
		}
	}
}

func TestNewSessionGPUConstraint(t *testing.T) {
	e := testEngine(t, memory.MB(64), memory.MB(64))
	st, err := cnn.ComputeStats(cnn.TinyAlexNet())
	if err != nil {
		t.Fatal(err)
	}
	// 2 cores × GPU footprint just misses the device: Equation 15 violated.
	_, err = NewSession(e, cnn.TinyAlexNet(), Options{Seed: 1, GPUMemBytes: 2*st.GPUMemBytes - 1})
	oom, ok := memory.IsOOM(err)
	if !ok || oom.Scenario != memory.DeviceExhausted {
		t.Fatalf("expected gpu-memory-exhausted, got %v", err)
	}
	s, err := NewSession(e, cnn.TinyAlexNet(), Options{Seed: 1, GPUMemBytes: 2 * st.GPUMemBytes})
	if err != nil {
		t.Fatalf("fitting GPU config rejected: %v", err)
	}
	s.Close()
}

func TestInferenceFromImageEmitsFeatures(t *testing.T) {
	e := testEngine(t, memory.MB(64), memory.MB(64))
	m := cnn.TinyAlexNet()
	s, err := NewSession(e, m, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tb, err := e.CreateTable("img", imageRows(t, m, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	fc7 := m.FeatureLayers[2] // fc7
	udf, err := s.PartitionFunc(InferenceSpec{
		From: 0, FromImage: true,
		EmitLayers: []int{fc7.LayerIndex},
		KeepRawAt:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.MapPartitions("feat", tb, udf)
	if err != nil {
		t.Fatalf("inference: %v", err)
	}
	rows, err := e.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	wantDim, err := m.FeatureDim(fc7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Features == nil || r.Features.Len() != 1 {
			t.Fatalf("row %d: expected 1 feature tensor, got %+v", r.ID, r.Features)
		}
		if r.Features.Get(0).NumElements() != wantDim {
			t.Fatalf("row %d: feature dim %d, want %d", r.ID, r.Features.Get(0).NumElements(), wantDim)
		}
		if r.Image != nil {
			t.Fatal("image payload should be dropped after decoding")
		}
		if r.Structured == nil {
			t.Fatal("structured payload lost")
		}
	}
	if e.Counters().Snapshot().FLOPs <= 0 {
		t.Error("inference FLOPs not recorded")
	}
}

func TestStagedInferenceMatchesDirect(t *testing.T) {
	// Running conv5 with KeepRaw, then continuing fc6..fc8 from the raw
	// tensor, must equal a single pass emitting the same layers — the
	// correctness property behind the Staged plan (Figure 5(E)).
	e := testEngine(t, memory.MB(64), memory.MB(64))
	m := cnn.TinyAlexNet()
	s, err := NewSession(e, m, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rows := imageRows(t, m, 6)
	tb, err := e.CreateTable("img", rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	conv5 := m.FeatureLayers[0]
	fc6 := m.FeatureLayers[1]

	// One-shot: emit conv5 and fc6 in a single pass (Eager style).
	oneShot, err := s.PartitionFunc(InferenceSpec{
		From: 0, FromImage: true,
		EmitLayers: []int{conv5.LayerIndex, fc6.LayerIndex},
		KeepRawAt:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eagerT, err := e.MapPartitions("eager", tb, oneShot)
	if err != nil {
		t.Fatal(err)
	}
	eagerRows, err := e.Collect(eagerT)
	if err != nil {
		t.Fatal(err)
	}

	// Staged: first pass emits conv5 and keeps the raw conv5 tensor...
	stage1, err := s.PartitionFunc(InferenceSpec{
		From: 0, FromImage: true,
		EmitLayers: []int{conv5.LayerIndex},
		KeepRawAt:  conv5.LayerIndex,
	})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := e.MapPartitions("s1", tb, stage1)
	if err != nil {
		t.Fatal(err)
	}
	// ...second pass continues from the raw tensor (index 1) to fc6.
	stage2, err := s.PartitionFunc(InferenceSpec{
		From: conv5.LayerIndex + 1, FromImage: false, InputIndex: 1,
		EmitLayers: []int{fc6.LayerIndex},
		KeepRawAt:  -1,
		DropInput:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := e.MapPartitions("s2", t1, stage2)
	if err != nil {
		t.Fatal(err)
	}
	stagedRows, err := e.Collect(t2)
	if err != nil {
		t.Fatal(err)
	}

	if len(eagerRows) != len(stagedRows) {
		t.Fatalf("row counts differ: %d vs %d", len(eagerRows), len(stagedRows))
	}
	for i := range eagerRows {
		eagerFC6 := eagerRows[i].Features.Get(1)
		stagedFC6 := stagedRows[i].Features.Get(0)
		if !eagerFC6.Shape().Equal(stagedFC6.Shape()) {
			t.Fatalf("row %d fc6 shapes differ", i)
		}
		for j := range eagerFC6.Data() {
			d := eagerFC6.Data()[j] - stagedFC6.Data()[j]
			if d > 1e-4 || d < -1e-4 {
				t.Fatalf("row %d fc6[%d]: eager %v vs staged %v",
					i, j, eagerFC6.Data()[j], stagedFC6.Data()[j])
			}
		}
	}
}

func TestInferenceSpecValidation(t *testing.T) {
	e := testEngine(t, memory.MB(64), memory.MB(64))
	s, err := NewSession(e, cnn.TinyAlexNet(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cases := []InferenceSpec{
		{From: 0, EmitLayers: nil, KeepRawAt: -1},         // emits nothing
		{From: 5, EmitLayers: []int{3}, KeepRawAt: -1},    // emit below From
		{From: 0, EmitLayers: []int{4, 2}, KeepRawAt: -1}, // not ascending
		{From: 0, EmitLayers: []int{99}, KeepRawAt: -1},   // beyond model
		{From: -1, EmitLayers: []int{2}, KeepRawAt: -1},   // negative From
		{From: 0, EmitLayers: []int{6}, KeepRawAt: 3},     // raw not last
	}
	for i, spec := range cases {
		if _, err := s.PartitionFunc(spec); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, spec)
		}
	}
}

func TestInferenceMissingPayloads(t *testing.T) {
	e := testEngine(t, memory.MB(64), memory.MB(64))
	m := cnn.TinyAlexNet()
	s, err := NewSession(e, m, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Rows without images.
	tb, err := e.CreateTable("noimg", []dataflow.Row{{ID: 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	udf, err := s.PartitionFunc(InferenceSpec{From: 0, FromImage: true,
		EmitLayers: []int{2}, KeepRawAt: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.MapPartitions("x", tb, udf); err == nil {
		t.Error("inference on image-less rows succeeded")
	}
	// Rows without the expected intermediate feature tensor.
	udf2, err := s.PartitionFunc(InferenceSpec{From: 2, FromImage: false,
		InputIndex: 0, EmitLayers: []int{4}, KeepRawAt: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.MapPartitions("y", tb, udf2); err == nil {
		t.Error("inference on feature-less rows succeeded")
	}
}

func TestInferenceWrongImageShape(t *testing.T) {
	e := testEngine(t, memory.MB(64), memory.MB(64))
	m := cnn.TinyAlexNet()
	s, err := NewSession(e, m, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blob, err := tensor.Encode(tensor.New(3, 8, 8)) // wrong resolution
	if err != nil {
		t.Fatal(err)
	}
	tb, err := e.CreateTable("bad", []dataflow.Row{{ID: 1, Image: blob}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	udf, err := s.PartitionFunc(InferenceSpec{From: 0, FromImage: true,
		EmitLayers: []int{2}, KeepRawAt: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.MapPartitions("x", tb, udf); err == nil {
		t.Error("shape-incompatible image accepted")
	}
}
