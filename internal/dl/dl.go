package dl

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cnn"
	"repro/internal/dataflow"
	"repro/internal/faultinject"
	"repro/internal/memory"
	"repro/internal/tensor"
)

// Failpoint sites (see internal/faultinject).
const (
	// FaultSessionBroadcast guards the driver's serialized-model broadcast
	// allocation in NewSession.
	FaultSessionBroadcast = "dl/session.broadcast"
	// FaultInferBatch guards the per-partition batch-buffer allocation at
	// the top of every inference UDF invocation.
	FaultInferBatch = "dl/infer.batch"
)

// Options configures a Session.
type Options struct {
	// Seed drives deterministic weight realization.
	Seed int64
	// GPUMemBytes, when positive, enforces the Equation 15 GPU constraint:
	// replicas × |f|_mem_gpu must fit the device.
	GPUMemBytes int64
}

// Session binds one CNN model to a dataflow engine, with its memory
// footprint charged for the session's lifetime.
type Session struct {
	engine  *dataflow.Engine
	model   *cnn.Model
	stats   *cnn.Stats
	weights *cnn.Weights

	replicaCharge int64 // per-node DL execution charge
	userCharge    int64 // per-node serialized-model charge
	closed        bool
}

// NewSession realizes the model's weights and charges its footprint:
// cpu × |f|_mem of DL Execution Memory and |f|_ser of User Memory per worker
// ("execution threads in a single worker have access to shared memory, the
// serialized CNN model need not be replicated", Section 4.3). It fails with a
// typed OOM when a worker cannot hold the replicas — the paper's
// DL-execution-blowup crash.
func NewSession(e *dataflow.Engine, model *cnn.Model, opts Options) (*Session, error) {
	stats, err := cnn.ComputeStats(model)
	if err != nil {
		return nil, err
	}
	weights, err := model.RealizeWeights(opts.Seed)
	if err != nil {
		return nil, err
	}
	// The driver serializes the CNN once and broadcasts it to every worker
	// (Section 4.1, crash scenario 4); workers deserialize their replica
	// source. The round-trip exercises the real checkpoint codec and
	// charges the driver for holding the serialized model.
	blob, err := cnn.SerializeWeights(weights)
	if err != nil {
		return nil, err
	}
	if err := faultinject.Hit(FaultSessionBroadcast); err != nil {
		return nil, fmt.Errorf("dl: broadcast %s: %w", model.Name, err)
	}
	if err := e.DriverPool().Alloc(int64(len(blob)), fmt.Sprintf("serialized %s broadcast", model.Name)); err != nil {
		return nil, err
	}
	e.DriverPool().Free(int64(len(blob)))
	e.Counters().BytesBroadcast.Add(int64(len(blob)) * int64(e.Config().Nodes))
	if weights, err = cnn.DeserializeWeights(blob); err != nil {
		return nil, err
	}
	if len(weights.Layers) != model.NumLayers() {
		return nil, fmt.Errorf("dl: checkpoint has %d layers, model %s has %d",
			len(weights.Layers), model.Name, model.NumLayers())
	}
	cores := e.Config().CoresPerNode
	if opts.GPUMemBytes > 0 {
		need := int64(cores) * stats.GPUMemBytes
		if need > opts.GPUMemBytes {
			return nil, &memory.OOMError{
				Region:   memory.Device,
				Scenario: memory.DeviceExhausted,
				Need:     need,
				Avail:    opts.GPUMemBytes,
				Detail:   fmt.Sprintf("%d replicas of %s (Equation 15)", cores, model.Name),
			}
		}
	}
	s := &Session{
		engine:        e,
		model:         model,
		stats:         stats,
		weights:       weights,
		replicaCharge: int64(cores) * stats.MemBytes,
		userCharge:    stats.SerializedBytes,
	}
	charged := 0
	for i := 0; i < e.Config().Nodes; i++ {
		if err := e.DLPool(i).Alloc(s.replicaCharge,
			fmt.Sprintf("%d replicas of %s (%s each)", cores, model.Name, memory.FormatBytes(stats.MemBytes))); err != nil {
			s.releaseCharges(charged, 0)
			return nil, err
		}
		charged++
	}
	userCharged := 0
	for i := 0; i < e.Config().Nodes; i++ {
		if err := e.UserPool(i).Alloc(s.userCharge,
			fmt.Sprintf("serialized %s", model.Name)); err != nil {
			s.releaseCharges(charged, userCharged)
			return nil, err
		}
		userCharged++
	}
	return s, nil
}

func (s *Session) releaseCharges(dlNodes, userNodes int) {
	for i := 0; i < dlNodes; i++ {
		s.engine.DLPool(i).Free(s.replicaCharge)
	}
	for i := 0; i < userNodes; i++ {
		s.engine.UserPool(i).Free(s.userCharge)
	}
}

// Close releases the session's memory charges. Safe to call twice.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.releaseCharges(s.engine.Config().Nodes, s.engine.Config().Nodes)
}

// Model returns the session's CNN.
func (s *Session) Model() *cnn.Model { return s.model }

// Stats returns the session's derived model statistics.
func (s *Session) Stats() *cnn.Stats { return s.stats }

// InferenceSpec describes one inference pass over a table — the injected UDF
// of Section 3.3 ("Vista injects UDFs to run (partial) CNN inference, i.e.,
// f, f̂_l, g_l, and f̂_{i→j}").
type InferenceSpec struct {
	// From is the first model layer to apply.
	From int
	// FromImage selects the input: true decodes Row.Image into the image
	// tensor; false takes Row.Features.Get(InputIndex) as the intermediate
	// tensor from a previous partial-inference pass.
	FromImage  bool
	InputIndex int
	// EmitLayers are model layer indices (ascending, each >= From) whose
	// pooled+flattened feature vectors g_l(f̂_l(·)) are appended to the
	// output TensorList, in order.
	EmitLayers []int
	// KeepRawAt, when >= 0, appends the *unpooled* output of that layer
	// (which must equal the last computed layer) so a later stage can
	// continue partial inference from it. The raw tensor is appended after
	// all emitted features.
	KeepRawAt int
	// DropInput discards the input tensor (and any other pre-existing
	// features) from the output rows instead of carrying them forward.
	// When false, pre-existing features are preserved ahead of new ones.
	DropInput bool
}

// validate checks the spec against the model and returns the final layer.
func (s *Session) validate(spec InferenceSpec) (int, error) {
	if len(spec.EmitLayers) == 0 && spec.KeepRawAt < 0 {
		return 0, fmt.Errorf("dl: inference spec emits nothing")
	}
	last := spec.KeepRawAt
	prev := spec.From - 1
	for _, l := range spec.EmitLayers {
		if l <= prev {
			return 0, fmt.Errorf("dl: emit layers must be ascending and >= From; got %v from %d", spec.EmitLayers, spec.From)
		}
		prev = l
		if l > last {
			last = l
		}
	}
	if spec.From < 0 || last >= s.model.NumLayers() {
		return 0, fmt.Errorf("dl: layer range [%d,%d] outside model %s (%d layers)",
			spec.From, last, s.model.Name, s.model.NumLayers())
	}
	if spec.KeepRawAt >= 0 && spec.KeepRawAt < last {
		return 0, fmt.Errorf("dl: KeepRawAt %d must be the last computed layer %d", spec.KeepRawAt, last)
	}
	return last, nil
}

// PartitionFunc builds the dataflow UDF running this inference spec. Each
// row's input tensor is advanced through the layer range segment by segment,
// emitting pooled feature vectors at the requested layers; FLOPs are recorded
// on the task context.
func (s *Session) PartitionFunc(spec InferenceSpec) (dataflow.PartitionFunc, error) {
	last, err := s.validate(spec)
	if err != nil {
		return nil, err
	}
	emits := append([]int(nil), spec.EmitLayers...)
	sort.Ints(emits)
	perRowFLOPs, err := s.model.PartialFLOPs(spec.From, last)
	if err != nil {
		return nil, err
	}

	return func(tc *dataflow.TaskContext, in []Row) ([]Row, error) {
		if err := faultinject.Hit(FaultInferBatch); err != nil {
			return nil, fmt.Errorf("dl: partition %d batch buffer: %w", tc.Part, err)
		}
		out := make([]Row, len(in))
		// Rows are independent, so the batch fans out over the bounded
		// compute-worker pool (intra-stage parallelism); when the pool is
		// saturated by other partitions or by tile-level conv workers, rows
		// simply run inline on this goroutine. The first row error wins;
		// remaining rows still run but their results are discarded.
		var (
			errOnce sync.Once
			rowErr  error
		)
		tensor.ParallelFor(len(in), func(i int) {
			if err := s.inferRow(tc, &in[i], &out[i], spec, emits, last); err != nil {
				errOnce.Do(func() { rowErr = err })
			}
		})
		if rowErr != nil {
			return nil, rowErr
		}
		tc.AddFLOPs(perRowFLOPs * int64(len(in)))
		return out, nil
	}, nil
}

// inferRow advances one row's input tensor through the spec's layer range,
// emitting pooled feature vectors at the requested layers. It is invoked
// concurrently for the rows of a batch; the session's model and weights are
// read-only during inference.
func (s *Session) inferRow(tc *dataflow.TaskContext, in *Row, out *Row, spec InferenceSpec, emits []int, last int) error {
	r := *in // shallow copy; payloads are replaced below
	t, err := s.inputTensor(in, spec)
	if err != nil {
		return fmt.Errorf("dl: partition %d row %d: %w", tc.Part, in.ID, err)
	}
	features := tensor.NewTensorList()
	if !spec.DropInput && in.Features != nil {
		for j := 0; j < in.Features.Len(); j++ {
			features.Append(in.Features.Get(j))
		}
	}
	input := t
	cursor := spec.From
	for _, emit := range emits {
		if t, err = s.model.PartialInfer(s.weights, t, cursor, emit); err != nil {
			return err
		}
		cursor = emit + 1
		vec, err := cnn.FeatureVector(t)
		if err != nil {
			return err
		}
		features.Append(vec)
	}
	if cursor <= last {
		if t, err = s.model.PartialInfer(s.weights, t, cursor, last); err != nil {
			return err
		}
	}
	if spec.KeepRawAt >= 0 {
		features.Append(t)
	} else if len(t.Shape()) == 3 && !tensor.SameStorage(t, input) {
		// The raw output of the last computed layer is dropped, and no
		// emitted feature can alias a CHW tensor (FeatureVector pools CHW
		// outputs into fresh storage), so its slab goes back to the pool for
		// the next row.
		tensor.Recycle(t)
	}
	r.Features = features
	if spec.FromImage {
		r.Image = nil // decoded and consumed; drop the raw payload
	}
	*out = r
	return nil
}

// Row aliases dataflow.Row for UDF signatures.
type Row = dataflow.Row

func (s *Session) inputTensor(r *dataflow.Row, spec InferenceSpec) (*tensor.Tensor, error) {
	if spec.FromImage {
		if r.Image == nil {
			return nil, fmt.Errorf("row has no image payload")
		}
		t, err := tensor.Decode(r.Image)
		if err != nil {
			return nil, err
		}
		if !t.Shape().Equal(s.model.InputShape) {
			return nil, fmt.Errorf("%w: image %v vs model input %v",
				tensor.ErrShape, t.Shape(), s.model.InputShape)
		}
		return t, nil
	}
	if r.Features == nil || r.Features.Len() <= spec.InputIndex {
		return nil, fmt.Errorf("row has no feature tensor at index %d", spec.InputIndex)
	}
	return r.Features.Get(spec.InputIndex), nil
}
