package sampler

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// fixedBase keeps the deterministic tests clock-free.
var fixedBase = time.Unix(1700000000, 0).UTC()

// sampleAt drives the single-writer path directly: deterministic frames
// without depending on ticker scheduling. The Every: time.Hour configs below
// park the background ticker so manual samples are the only ones between the
// initial and final frames.
func sampleAt(s *Sampler, t time.Time) { s.sample(t) }

func TestSamplerRecordsChangingValues(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("vista_pool_used_bytes", "pool", obs.Label{Key: "node", Value: "0"}, obs.Label{Key: "pool", Value: "storage"})
	g.Set(100)
	reg.Counter("unrelated_total", "excluded by DefaultMatch").Inc()

	s := Start(Config{Registry: reg, Every: time.Hour})
	g.Set(250)
	sampleAt(s, fixedBase.Add(time.Millisecond))
	g.Set(50)
	rec := s.Stop()

	if len(rec.Frames) < 3 {
		t.Fatalf("frames = %d, want >= 3 (initial + manual + final)", len(rec.Frames))
	}
	key := `vista_pool_used_bytes{node="0",pool="storage"}`
	if v, ok := rec.Frames[0].Value(key); !ok || v != 100 {
		t.Errorf("first frame %s = %v,%v, want 100", key, v, ok)
	}
	last := rec.Frames[len(rec.Frames)-1]
	if v, ok := last.Value(key); !ok || v != 50 {
		t.Errorf("final frame %s = %v,%v, want 50", key, v, ok)
	}
	for _, f := range rec.Frames {
		if _, ok := f.Value("unrelated_total"); ok {
			t.Errorf("DefaultMatch leaked unrelated series into frame %v", f)
		}
	}
}

func TestSamplerStageMarkers(t *testing.T) {
	reg := obs.NewRegistry()
	root := obs.StartSpanAt("run", fixedBase)
	s := Start(Config{Registry: reg, Trace: root, Every: time.Hour})

	ing := root.StartChildAt("ingest", fixedBase)
	sampleAt(s, fixedBase.Add(time.Millisecond))
	ing.EndAt(fixedBase.Add(2 * time.Millisecond))
	inf := root.StartChildAt("infer:fc6", fixedBase.Add(2*time.Millisecond))
	sampleAt(s, fixedBase.Add(3*time.Millisecond))
	inf.EndAt(fixedBase.Add(4 * time.Millisecond))
	rec := s.Stop()

	var stages []string
	for _, f := range rec.Frames {
		stages = append(stages, f.Stage)
	}
	// Frame 0 (taken by Start, before any stage opened) and the final frame
	// (after every stage closed) must be unmarked; the manual samples must
	// carry the then-open stage.
	want := []string{"", "ingest", "infer:fc6", ""}
	if len(stages) != len(want) {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Errorf("frame %d stage = %q, want %q", i, stages[i], want[i])
		}
	}
}

func TestSamplerRingOverwrite(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("vista_engine_tasks_total", "tasks")
	s := Start(Config{Registry: reg, Every: time.Hour, Capacity: 4})
	for i := 0; i < 10; i++ {
		c.Inc()
		sampleAt(s, fixedBase.Add(time.Duration(i)*time.Millisecond))
	}
	rec := s.Stop()

	if len(rec.Frames) != 4 {
		t.Fatalf("frames = %d, want ring capacity 4", len(rec.Frames))
	}
	// 12 total samples (initial + 10 manual + final), 4 retained.
	if rec.Dropped != 8 {
		t.Errorf("dropped = %d, want 8", rec.Dropped)
	}
	// Retained frames are the newest, in time order.
	for i := 1; i < len(rec.Frames); i++ {
		if rec.Frames[i].T.Before(rec.Frames[i-1].T) {
			t.Errorf("frames out of order: %v then %v", rec.Frames[i-1].T, rec.Frames[i].T)
		}
	}
	if v, _ := rec.Frames[len(rec.Frames)-1].Value("vista_engine_tasks_total"); v != 10 {
		t.Errorf("newest retained frame counter = %v, want 10", v)
	}
}

func TestFrameSum(t *testing.T) {
	f := Frame{Values: map[string]float64{
		`vista_pool_used_bytes{node="0",pool="storage"}`: 100,
		`vista_pool_used_bytes{node="1",pool="storage"}`: 50,
		`vista_pool_used_bytes{node="0",pool="user"}`:    7,
		"vista_engine_bytes_spilled_total":               3,
	}}
	if got := f.Sum("vista_pool_used_bytes", obs.Label{Key: "pool", Value: "storage"}); got != 150 {
		t.Errorf("storage sum = %v, want 150", got)
	}
	if got := f.Sum("vista_pool_used_bytes"); got != 157 {
		t.Errorf("family sum = %v, want 157", got)
	}
	if got := f.Sum("vista_engine_bytes_spilled_total"); got != 3 {
		t.Errorf("label-less sum = %v, want 3", got)
	}
	// A family sharing a prefix must not match.
	if got := f.Sum("vista_pool_used"); got != 0 {
		t.Errorf("prefix-only name matched: %v", got)
	}
}

func TestRecordingValueAtAndKeys(t *testing.T) {
	rec := &Recording{Frames: []Frame{
		{T: fixedBase, Values: map[string]float64{"a": 1}},
		{T: fixedBase.Add(10 * time.Millisecond), Values: map[string]float64{"a": 2, "b": 9}},
		{T: fixedBase.Add(20 * time.Millisecond), Values: map[string]float64{"a": 3}},
	}}
	keys := rec.SeriesKeys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("SeriesKeys = %v, want [a b]", keys)
	}
	if v, ok := rec.ValueAt("a", fixedBase.Add(15*time.Millisecond)); !ok || v != 2 {
		t.Errorf("ValueAt(a, 15ms) = %v,%v, want 2", v, ok)
	}
	if v, ok := rec.ValueAt("a", fixedBase.Add(time.Hour)); !ok || v != 3 {
		t.Errorf("ValueAt(a, +1h) = %v,%v, want 3", v, ok)
	}
	if _, ok := rec.ValueAt("a", fixedBase.Add(-time.Second)); ok {
		t.Error("ValueAt before first frame should miss")
	}
	if _, ok := rec.ValueAt("b", fixedBase); ok {
		t.Error("ValueAt for a key absent from the qualifying frame should miss")
	}
}

// TestSamplerLiveLoop exercises the ticker path end to end — the background
// goroutine samples concurrently with registry writes — on a fake clock, so
// the exact tick count (and therefore frame count) is deterministic instead
// of a sleep-calibrated lower bound.
func TestSamplerLiveLoop(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("vista_pool_used_bytes", "pool", obs.Label{Key: "pool", Value: "storage"})
	fc := clock.NewFake()
	s := Start(Config{Registry: reg, Every: 10 * time.Millisecond, Clock: fc})
	fc.BlockUntil(1) // loop goroutine's ticker is registered

	const ticks = 25
	for i := 0; i < ticks; i++ {
		g.Set(float64(i + 1))
		fc.Advance(10 * time.Millisecond)
		// The tick lands in the ticker's 1-buffered channel; wait for the
		// loop goroutine to consume it (head advances) before the next tick,
		// or back-to-back Advances would drop ticks like a real ticker.
		for s.head.Load() < int64(i)+2 { // +1 initial frame, +1 per tick
			runtime.Gosched()
		}
	}
	rec := s.Stop()
	if want := ticks + 2; len(rec.Frames) != want {
		t.Errorf("frames = %d, want exactly %d (initial + %d ticks + final)", len(rec.Frames), want, ticks)
	}
	// Each ticker frame observed the gauge value set just before its tick.
	for i, f := range rec.Frames[1 : len(rec.Frames)-1] {
		if v, ok := f.Value(`vista_pool_used_bytes{pool="storage"}`); !ok || v != float64(i+1) {
			t.Errorf("tick frame %d gauge = %v,%v, want %d", i, v, ok, i+1)
		}
	}
	if rec.Every != 10*time.Millisecond || rec.End.Before(rec.Start) {
		t.Errorf("recording metadata: every=%v start=%v end=%v", rec.Every, rec.Start, rec.End)
	}
	if rec.End.Sub(rec.Start) != ticks*10*time.Millisecond {
		t.Errorf("recording spans %v of fake time, want %v", rec.End.Sub(rec.Start), ticks*10*time.Millisecond)
	}
}
