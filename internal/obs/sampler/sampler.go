// Package sampler turns the registry's point-in-time series into a time
// series: a background goroutine periodically snapshots selected metric
// families (pool gauges, spill/eviction counters, feature-store bytes, task
// counts) into a fixed-capacity in-memory ring of timestamped frames while a
// run executes, tagging every frame with the stage currently open in the
// run's live span tree.
//
// The design goal is to observe a run without perturbing it: the write path
// is a single goroutine storing immutable frames through atomic pointers (no
// locks shared with the engine), the registry reads are the same func-backed
// loads a /metrics scrape performs, and the ring bounds memory regardless of
// run length — old frames are overwritten and counted as Dropped.
//
// A finished recording feeds the exporters (Chrome trace counter tracks, CSV
// and JSON time series) and sim.CompareSeries, which validates the
// simulator's peak-storage and spill-volume predictions against the sampled
// gauges stage by stage instead of only against end-of-run totals.
package sampler

import (
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// DefaultEvery is the sample period used when Config.Every is zero: fine
// enough that tiny in-process runs (hundreds of milliseconds) still catch
// several frames per stage, coarse enough to stay invisible in profiles.
const DefaultEvery = 10 * time.Millisecond

// DefaultCapacity is the ring's frame capacity when Config.Capacity is zero
// (at the default period: ~80 s of history before frames drop).
const DefaultCapacity = 8192

// DefaultMatch selects the run-relevant families: engine counters, per-node
// pool gauges, and feature-store series. HTTP server series are excluded —
// they describe the service, not the run.
func DefaultMatch(name string) bool {
	for _, p := range []string{"vista_engine_", "vista_pool_", "vista_featurestore_"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// Config configures a Sampler.
type Config struct {
	// Registry is the metrics registry to snapshot (required).
	Registry *obs.Registry
	// Trace, when non-nil, is the run's live span tree; each frame records
	// the name of the top-level stage span open at sample time.
	Trace *obs.Span
	// Every is the sample period (0 = DefaultEvery).
	Every time.Duration
	// Capacity is the ring size in frames (0 = DefaultCapacity). When the
	// run outlives the ring, the oldest frames are overwritten and counted.
	Capacity int
	// Match selects series families by name (nil = DefaultMatch).
	Match func(name string) bool
	// Clock supplies time and the sampling ticker (nil = the real clock).
	// Tests inject a fake to step the loop deterministically.
	Clock clock.Clock
}

// Frame is one sampling instant: every selected series' value, keyed by the
// series' fully qualified identity (family name + rendered labels).
type Frame struct {
	// T is the sample time.
	T time.Time
	// Stage is the top-level stage span open at sample time ("" when the
	// run is between stages or no trace was attached).
	Stage string
	// Values maps series key (obs.Sample.Key) to its sampled value.
	Values map[string]float64
}

// Value returns the frame's value for an exact series key (a label-less
// family's key is just its name).
func (f Frame) Value(key string) (float64, bool) {
	v, ok := f.Values[key]
	return v, ok
}

// Sum adds up every series in the frame belonging to the named family whose
// rendered labels contain all the given pairs — e.g. summing
// vista_pool_used_bytes{pool="storage"} across nodes.
func (f Frame) Sum(name string, labels ...obs.Label) float64 {
	var total float64
	for key, v := range f.Values {
		if key != name && !strings.HasPrefix(key, name+"{") {
			continue
		}
		ok := true
		for _, l := range labels {
			if !strings.Contains(key, l.Key+`="`+l.Value+`"`) {
				ok = false
				break
			}
		}
		if ok {
			total += v
		}
	}
	return total
}

// Recording is a finished sampling session, frames oldest to newest.
type Recording struct {
	// Every is the configured sample period.
	Every time.Duration
	// Start and End bound the session (first and last frame times).
	Start, End time.Time
	// Frames are the retained samples in time order.
	Frames []Frame
	// Dropped counts frames overwritten by the ring before Stop.
	Dropped int
}

// SeriesKeys returns the sorted union of series keys across all frames —
// the exporters' stable column set.
func (r *Recording) SeriesKeys() []string {
	seen := make(map[string]bool)
	for _, f := range r.Frames {
		for k := range f.Values {
			seen[k] = true
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ValueAt returns the named series' value in the latest frame taken at or
// before t (0, false when no frame qualifies) — the primitive CompareSeries
// uses to read cumulative counters at stage boundaries.
func (r *Recording) ValueAt(key string, t time.Time) (float64, bool) {
	for i := len(r.Frames) - 1; i >= 0; i-- {
		if !r.Frames[i].T.After(t) {
			v, ok := r.Frames[i].Value(key)
			return v, ok
		}
	}
	return 0, false
}

// Sampler snapshots a registry on a fixed period. Start it before the run,
// Stop it after; Stop returns the Recording.
type Sampler struct {
	cfg   Config
	clk   clock.Clock
	ring  []atomic.Pointer[Frame]
	head  atomic.Int64 // total frames ever written
	stop  chan struct{}
	done  chan struct{}
	start time.Time
}

// Start begins sampling in a background goroutine. It takes one frame
// immediately, so even runs shorter than the period record their state, and
// Stop takes a final frame, so every recording holds at least two.
func Start(cfg Config) *Sampler {
	if cfg.Every <= 0 {
		cfg.Every = DefaultEvery
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.Match == nil {
		cfg.Match = DefaultMatch
	}
	s := &Sampler{
		cfg:  cfg,
		clk:  clock.Or(cfg.Clock),
		ring: make([]atomic.Pointer[Frame], cfg.Capacity),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.start = s.clk.Now()
	s.sample(s.start)
	go s.loop()
	return s
}

func (s *Sampler) loop() {
	defer close(s.done)
	tick := s.clk.NewTicker(s.cfg.Every)
	defer tick.Stop()
	for {
		select {
		case t := <-tick.C():
			s.sample(t)
		case <-s.stop:
			return
		}
	}
}

// sample takes one frame. Single writer: only the Start goroutine (first
// frame) and the loop goroutine call it, never concurrently.
func (s *Sampler) sample(t time.Time) {
	f := &Frame{T: t, Values: make(map[string]float64)}
	for _, sm := range s.cfg.Registry.Samples(s.cfg.Match) {
		f.Values[sm.Key()] = sm.Value
	}
	f.Stage = openStage(s.cfg.Trace)
	h := s.head.Load()
	s.ring[h%int64(len(s.ring))].Store(f)
	s.head.Store(h + 1)
}

// openStage returns the name of the last top-level child span of root that
// has started but not ended.
func openStage(root *obs.Span) string {
	if root == nil {
		return ""
	}
	children := root.Children()
	for i := len(children) - 1; i >= 0; i-- {
		if _, ended := children[i].EndTime(); !ended {
			return children[i].Name()
		}
	}
	return ""
}

// Stop halts sampling, takes a final frame, and returns the recording.
// Stop must be called exactly once.
func (s *Sampler) Stop() *Recording {
	close(s.stop)
	<-s.done
	s.sample(s.clk.Now())

	h := s.head.Load()
	n := h
	if max := int64(len(s.ring)); n > max {
		n = max
	}
	rec := &Recording{Every: s.cfg.Every, Start: s.start, Dropped: int(h - n)}
	for i := h - n; i < h; i++ {
		if f := s.ring[i%int64(len(s.ring))].Load(); f != nil {
			rec.Frames = append(rec.Frames, *f)
		}
	}
	if len(rec.Frames) > 0 {
		rec.End = rec.Frames[len(rec.Frames)-1].T
	}
	return rec
}
