// Package obs is the reproduction's observability substrate: a stdlib-only
// metrics registry with Prometheus text-format exposition, and lightweight
// stage spans for tracing a run's execution tree.
//
// The paper's evaluation (Figure 6's crash/slowdown taxonomy, Table 3's
// per-stage breakdown) depends on exactly this kind of telemetry: per-pool
// memory usage versus capacity, spill/unspill traffic, and per-stage wall
// times. obs makes those numbers live — scrapeable over HTTP while a run is
// in flight — instead of a post-hoc counter snapshot.
//
// Metrics: a Registry holds counter, gauge, and histogram families keyed by
// name, each with an optional fixed label set per instance. Func-backed
// variants (CounterFunc, GaugeFunc) read their value at scrape time, which
// lets the dataflow engine expose its atomic counters and memory pools —
// and the admission controller its budget, in-flight, and outcome series —
// with zero per-update overhead. WritePrometheus renders the whole registry
// in the Prometheus text exposition format (version 0.0.4).
//
// Registered series can also be read back in-process: FindHistogram returns
// an existing histogram without creating one (absence of traffic must not
// mint empty series), Histogram.Quantile interpolates a percentile from the
// recorded buckets, and Registry.Samples snapshots gauge values by name.
// The server's SLO sweep (/healthz?slo=1), the admission queue-wait check,
// and the vista-bench admission exhibit are all built on these read paths
// rather than on scraping text they themselves produced.
//
// Spans: StartSpan opens a root span; Span.StartChild nests. Spans carry
// integer attributes (rows, bytes, FLOPs) and render as an indented tree with
// durations and self-times (Render). core.Run emits one span per stage —
// ingest, join, premat:<layer>, infer:<layer>, cache:<layer>, train:<layer> —
// and derives its public Timings from the span tree.
package obs
