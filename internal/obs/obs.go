// Package obs is the reproduction's observability substrate: a stdlib-only
// metrics registry with Prometheus text-format exposition, and lightweight
// stage spans for tracing a run's execution tree.
//
// The paper's evaluation (Figure 6's crash/slowdown taxonomy, Table 3's
// per-stage breakdown) depends on exactly this kind of telemetry: per-pool
// memory usage versus capacity, spill/unspill traffic, and per-stage wall
// times. obs makes those numbers live — scrapeable over HTTP while a run is
// in flight — instead of a post-hoc counter snapshot.
//
// Metrics: a Registry holds counter, gauge, and histogram families keyed by
// name, each with an optional fixed label set per instance. Func-backed
// variants (CounterFunc, GaugeFunc) read their value at scrape time, which
// lets the dataflow engine expose its atomic counters and memory pools with
// zero per-update overhead. WritePrometheus renders the whole registry in the
// Prometheus text exposition format (version 0.0.4).
//
// Spans: StartSpan opens a root span; Span.StartChild nests. Spans carry
// integer attributes (rows, bytes, FLOPs) and render as an indented tree with
// durations and self-times (Render). core.Run emits one span per stage —
// ingest, join, premat:<layer>, infer:<layer>, cache:<layer>, train:<layer> —
// and derives its public Timings from the span tree.
package obs
