package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Attr is one integer span attribute (rows, bytes, FLOPs, ...).
type Attr struct {
	Key   string
	Value int64
}

// Span is one timed stage of a run. Spans form a tree: StartChild nests, and
// Render prints the tree with durations and self-times. A span is safe for
// concurrent use — parallel stages may open children of the same parent.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	children []*Span
}

// StartSpan opens a root span starting now.
func StartSpan(name string) *Span { return StartSpanAt(name, time.Now()) }

// StartSpanAt opens a root span with an explicit start time (deterministic
// trees for tests and for replaying recorded timings).
func StartSpanAt(name string, start time.Time) *Span {
	return &Span{name: name, start: start}
}

// StartChild opens a child span starting now.
func (s *Span) StartChild(name string) *Span { return s.StartChildAt(name, time.Now()) }

// StartChildAt opens a child span with an explicit start time.
func (s *Span) StartChildAt(name string, start time.Time) *Span {
	c := &Span{name: name, start: start}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End marks the span finished now. A second End is a no-op.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt marks the span finished at an explicit time.
func (s *Span) EndAt(t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		s.end = t
	}
}

// Name returns the span's stage label.
func (s *Span) Name() string { return s.name }

// Start returns the span's start time.
func (s *Span) Start() time.Time { return s.start }

// EndTime returns the span's end time and whether it has ended. A live
// sampler uses this to tell the currently-open stage from finished ones.
func (s *Span) EndTime() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end, !s.end.IsZero()
}

// Duration returns the span's elapsed time (up to now if still open).
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// SetAttr records an integer attribute. Setting an existing key overwrites.
func (s *Span) SetAttr(key string, v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// Attr returns the attribute's value and whether it is set.
func (s *Span) Attr(key string) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return 0, false
}

// Attrs returns a copy of the span's attributes in set order.
func (s *Span) Attrs() []Attr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children returns a copy of the span's children in start order.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// SelfTime returns the span's duration minus its children's durations,
// floored at zero (children of parallel stages may overlap the parent
// arbitrarily).
func (s *Span) SelfTime() time.Duration {
	d := s.Duration()
	for _, c := range s.Children() {
		d -= c.Duration()
	}
	if d < 0 {
		return 0
	}
	return d
}

// Walk visits the span and its descendants depth-first in start order.
func (s *Span) Walk(fn func(sp *Span, depth int)) {
	s.walk(fn, 0)
}

func (s *Span) walk(fn func(sp *Span, depth int), depth int) {
	fn(s, depth)
	for _, c := range s.Children() {
		c.walk(fn, depth+1)
	}
}

// Find returns the first descendant (or the span itself) with the given
// name, or nil.
func (s *Span) Find(name string) *Span {
	var found *Span
	s.Walk(func(sp *Span, _ int) {
		if found == nil && sp.name == name {
			found = sp
		}
	})
	return found
}

// Render prints the span tree: one line per span with its duration, its
// self-time when it has children, and its attributes.
//
//	run              41ms  (self 2ms)
//	  ingest          4ms  rows=2000
//	  infer:fc6      22ms  flops=123456789
func (s *Span) Render(w io.Writer) {
	// First pass: longest "indent + name" width aligns the duration column.
	width := 0
	s.Walk(func(sp *Span, depth int) {
		if n := 2*depth + len(sp.name); n > width {
			width = n
		}
	})
	s.Walk(func(sp *Span, depth int) {
		label := strings.Repeat("  ", depth) + sp.name
		line := fmt.Sprintf("%-*s  %9s", width, label, formatDuration(sp.Duration()))
		if len(sp.Children()) > 0 {
			line += fmt.Sprintf("  (self %s)", formatDuration(sp.SelfTime()))
		}
		for _, a := range sp.Attrs() {
			line += fmt.Sprintf("  %s=%d", a.Key, a.Value)
		}
		fmt.Fprintln(w, line)
	})
}

// formatDuration rounds a duration to a readable precision.
func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	}
	return d.Round(time.Microsecond).String()
}
