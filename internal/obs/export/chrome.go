// Package export renders a finished run's observability — the span tree in
// core.Result.Trace and the sampled time series in core.Result.Series — in
// interchange formats external tools load directly: Chrome trace-event JSON
// (chrome://tracing, Perfetto), OTLP-style JSON spans, and CSV/JSON time
// series. All writers are deterministic for a deterministic input (stable
// field order, stable series order, explicit-timestamp span trees encode
// byte-for-byte identically), which is what lets golden tests lock the wire
// shapes.
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/sampler"
)

// chromeEvent is one entry of the Chrome trace-event format's traceEvents
// array. Field order is the wire order (locked by golden tests).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // microseconds since trace start
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the format's object form (Perfetto accepts both the bare
// array and this object; the object also carries the display unit).
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace renders the span tree as Chrome trace-event JSON: one
// complete ("X") event per span, nested by time containment on a single
// track, plus — when rec is non-nil — one counter ("C") track per sampled
// series. Load the file in chrome://tracing or https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, root *obs.Span, rec *sampler.Recording) error {
	if root == nil {
		return fmt.Errorf("export: nil trace")
	}
	base := root.Start()
	end := lastEnd(root)
	micros := func(t time.Time) int64 { return t.Sub(base).Microseconds() }

	var events []chromeEvent
	root.Walk(func(sp *obs.Span, _ int) {
		spEnd, ended := sp.EndTime()
		if !ended {
			spEnd = end
		}
		ev := chromeEvent{
			Name: sp.Name(), Cat: "stage", Ph: "X",
			Ts: micros(sp.Start()), Dur: spEnd.Sub(sp.Start()).Microseconds(),
			Pid: 1, Tid: 1,
		}
		if attrs := sp.Attrs(); len(attrs) > 0 {
			ev.Args = make(map[string]any, len(attrs))
			for _, a := range attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	})
	if rec != nil {
		for _, key := range rec.SeriesKeys() {
			for _, f := range rec.Frames {
				v, ok := f.Value(key)
				if !ok {
					continue
				}
				events = append(events, chromeEvent{
					Name: key, Ph: "C", Ts: micros(f.T), Pid: 1, Tid: 1,
					Args: map[string]any{"value": v},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{DisplayTimeUnit: "ms", TraceEvents: events})
}

// lastEnd returns the latest end time anywhere in the tree (open spans are
// clamped to it), falling back to the root's start for a tree that never
// ended.
func lastEnd(root *obs.Span) time.Time {
	end := root.Start()
	root.Walk(func(sp *obs.Span, _ int) {
		if t, ok := sp.EndTime(); ok && t.After(end) {
			end = t
		}
	})
	return end
}
