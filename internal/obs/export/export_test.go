package export_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/obs/sampler"
)

// goldenTree builds a deterministic span tree (explicit timestamps) with a
// nested child, attributes, and a matching synthetic recording.
func goldenTree() (*obs.Span, *sampler.Recording) {
	base := time.Unix(1700000000, 0).UTC()
	root := obs.StartSpanAt("run", base)
	ing := root.StartChildAt("ingest", base)
	ing.SetAttr("rows", 100)
	ing.EndAt(base.Add(10 * time.Millisecond))
	inf := root.StartChildAt("infer:fc6", base.Add(10*time.Millisecond))
	inf.SetAttr("flops", 12345)
	tsk := inf.StartChildAt("task", base.Add(12*time.Millisecond))
	tsk.EndAt(base.Add(20 * time.Millisecond))
	inf.EndAt(base.Add(30 * time.Millisecond))
	root.EndAt(base.Add(35 * time.Millisecond))

	key := `vista_pool_used_bytes{node="0",pool="storage"}`
	rec := &sampler.Recording{
		Every: 10 * time.Millisecond,
		Start: base, End: base.Add(30 * time.Millisecond),
		Frames: []sampler.Frame{
			{T: base, Stage: "ingest", Values: map[string]float64{key: 0}},
			{T: base.Add(10 * time.Millisecond), Stage: "infer:fc6", Values: map[string]float64{key: 4096, "vista_engine_bytes_spilled_total": 0}},
			{T: base.Add(30 * time.Millisecond), Values: map[string]float64{key: 1024, "vista_engine_bytes_spilled_total": 512}},
		},
	}
	return root, rec
}

// The goldens lock the wire formats byte for byte: a diff here is a format
// change that external consumers (Perfetto, OTLP ingesters, spreadsheet
// imports) will see. Change them deliberately or not at all.
const chromeGolden = `{"displayTimeUnit":"ms","traceEvents":[{"name":"run","cat":"stage","ph":"X","ts":0,"dur":35000,"pid":1,"tid":1},{"name":"ingest","cat":"stage","ph":"X","ts":0,"dur":10000,"pid":1,"tid":1,"args":{"rows":100}},{"name":"infer:fc6","cat":"stage","ph":"X","ts":10000,"dur":20000,"pid":1,"tid":1,"args":{"flops":12345}},{"name":"task","cat":"stage","ph":"X","ts":12000,"dur":8000,"pid":1,"tid":1},{"name":"vista_engine_bytes_spilled_total","ph":"C","ts":10000,"pid":1,"tid":1,"args":{"value":0}},{"name":"vista_engine_bytes_spilled_total","ph":"C","ts":30000,"pid":1,"tid":1,"args":{"value":512}},{"name":"vista_pool_used_bytes{node=\"0\",pool=\"storage\"}","ph":"C","ts":0,"pid":1,"tid":1,"args":{"value":0}},{"name":"vista_pool_used_bytes{node=\"0\",pool=\"storage\"}","ph":"C","ts":10000,"pid":1,"tid":1,"args":{"value":4096}},{"name":"vista_pool_used_bytes{node=\"0\",pool=\"storage\"}","ph":"C","ts":30000,"pid":1,"tid":1,"args":{"value":1024}}]}
`

const otlpGolden = `{"resourceSpans":[{"resource":{"attributes":[{"key":"service.name","value":{"stringValue":"vista"}}]},"scopeSpans":[{"scope":{"name":"repro/internal/obs"},"spans":[{"traceId":"5696d812e141567e5a758845aef7b7b1","spanId":"56f90a957e7ef2ee","name":"run","kind":1,"startTimeUnixNano":"1700000000000000000","endTimeUnixNano":"1700000000035000000"},{"traceId":"5696d812e141567e5a758845aef7b7b1","spanId":"56f90b957e7ef4a1","parentSpanId":"56f90a957e7ef2ee","name":"ingest","kind":1,"startTimeUnixNano":"1700000000000000000","endTimeUnixNano":"1700000000010000000","attributes":[{"key":"rows","value":{"intValue":"100"}}]},{"traceId":"5696d812e141567e5a758845aef7b7b1","spanId":"56f908957e7eef88","parentSpanId":"56f90a957e7ef2ee","name":"infer:fc6","kind":1,"startTimeUnixNano":"1700000000010000000","endTimeUnixNano":"1700000000030000000","attributes":[{"key":"flops","value":{"intValue":"12345"}}]},{"traceId":"5696d812e141567e5a758845aef7b7b1","spanId":"56f909957e7ef13b","parentSpanId":"56f908957e7eef88","name":"task","kind":1,"startTimeUnixNano":"1700000000012000000","endTimeUnixNano":"1700000000020000000"}]}]}]}
`

const csvGolden = `unix_ns,stage,vista_engine_bytes_spilled_total,"vista_pool_used_bytes{node=""0"",pool=""storage""}"
1700000000000000000,ingest,,0
1700000000010000000,infer:fc6,0,4096
1700000000030000000,,512,1024
`

const jsonGolden = `{"every_ns":10000000,"start_unix_ns":1700000000000000000,"end_unix_ns":1700000000030000000,"dropped_frames":0,"series":["vista_engine_bytes_spilled_total","vista_pool_used_bytes{node=\"0\",pool=\"storage\"}"],"frames":[{"unix_ns":1700000000000000000,"stage":"ingest","values":{"vista_pool_used_bytes{node=\"0\",pool=\"storage\"}":0}},{"unix_ns":1700000000010000000,"stage":"infer:fc6","values":{"vista_engine_bytes_spilled_total":0,"vista_pool_used_bytes{node=\"0\",pool=\"storage\"}":4096}},{"unix_ns":1700000000030000000,"values":{"vista_engine_bytes_spilled_total":512,"vista_pool_used_bytes{node=\"0\",pool=\"storage\"}":1024}}]}
`

func TestChromeGolden(t *testing.T) {
	root, rec := goldenTree()
	var buf bytes.Buffer
	if err := export.WriteChromeTrace(&buf, root, rec); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if buf.String() != chromeGolden {
		t.Errorf("chrome trace drifted from golden:\ngot:  %s\nwant: %s", buf.String(), chromeGolden)
	}
	// And it must be valid JSON regardless.
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
}

func TestChromeWithoutRecording(t *testing.T) {
	root, _ := goldenTree()
	var buf bytes.Buffer
	if err := export.WriteChromeTrace(&buf, root, nil); err != nil {
		t.Fatalf("WriteChromeTrace(nil rec): %v", err)
	}
	if strings.Contains(buf.String(), `"ph":"C"`) {
		t.Error("counter events present without a recording")
	}
	if err := export.WriteChromeTrace(&buf, nil, nil); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestOTLPGolden(t *testing.T) {
	root, _ := goldenTree()
	var buf bytes.Buffer
	if err := export.WriteOTLP(&buf, root); err != nil {
		t.Fatalf("WriteOTLP: %v", err)
	}
	if buf.String() != otlpGolden {
		t.Errorf("otlp drifted from golden:\ngot:  %s\nwant: %s", buf.String(), otlpGolden)
	}
	if err := export.WriteOTLP(&buf, nil); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestTimeseriesGoldens(t *testing.T) {
	_, rec := goldenTree()
	var buf bytes.Buffer
	if err := export.WriteTimeseriesCSV(&buf, rec); err != nil {
		t.Fatalf("WriteTimeseriesCSV: %v", err)
	}
	if buf.String() != csvGolden {
		t.Errorf("csv drifted from golden:\ngot:  %s\nwant: %s", buf.String(), csvGolden)
	}
	buf.Reset()
	if err := export.WriteTimeseriesJSON(&buf, rec); err != nil {
		t.Fatalf("WriteTimeseriesJSON: %v", err)
	}
	if buf.String() != jsonGolden {
		t.Errorf("json drifted from golden:\ngot:  %s\nwant: %s", buf.String(), jsonGolden)
	}
	if err := export.WriteTimeseriesCSV(&buf, nil); err == nil {
		t.Error("nil recording accepted (CSV)")
	}
	if err := export.WriteTimeseriesJSON(&buf, nil); err == nil {
		t.Error("nil recording accepted (JSON)")
	}
}

// TestChromeCoversRealRunTrace is the acceptance check: every span of a real
// run's trace appears as a complete event in the exported file.
func TestChromeCoversRealRunTrace(t *testing.T) {
	structRows, imageRows, err := data.Generate(data.Foods().WithRows(80))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	res, err := core.Run(core.Spec{
		Nodes: 2, CoresPerNode: 2, MemPerNode: memory.GB(32),
		SystemKind: memory.SparkLike,
		ModelName:  "tiny-alexnet", NumLayers: 2,
		Downstream: core.DefaultDownstream(),
		StructRows: structRows, ImageRows: imageRows, Seed: 1,
		Metrics: obs.NewRegistry(), SampleEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var buf bytes.Buffer
	if err := export.WriteChromeTrace(&buf, res.Trace, res.Series); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	eventCount := make(map[string]int)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			eventCount[ev.Name]++
		}
	}
	spanCount := make(map[string]int)
	res.Trace.Walk(func(sp *obs.Span, _ int) { spanCount[sp.Name()]++ })
	for name, n := range spanCount {
		if eventCount[name] < n {
			t.Errorf("span %q: %d events < %d spans", name, eventCount[name], n)
		}
	}
	// The sampled counter tracks ride along.
	if res.Series == nil || len(res.Series.Frames) < 2 {
		t.Fatalf("run recorded no series")
	}
	if !strings.Contains(buf.String(), `"ph":"C"`) {
		t.Error("no counter events despite a recording")
	}
}
