package export

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/obs"
)

// OTLP-style JSON spans, following the OTLP/JSON mapping conventions:
// resourceSpans → scopeSpans → spans, 128-bit hex trace IDs, 64-bit hex span
// IDs, nanosecond timestamps as decimal strings, attributes as typed values.
// IDs are deterministic functions of the tree (FNV over the root identity
// plus a preorder index), so the same recorded run always exports the same
// document — which is what the golden tests and the CI smoke rely on.

type otlpDoc struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpAttr `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID           string     `json:"traceId"`
	SpanID            string     `json:"spanId"`
	ParentSpanID      string     `json:"parentSpanId,omitempty"`
	Name              string     `json:"name"`
	Kind              int        `json:"kind"`
	StartTimeUnixNano string     `json:"startTimeUnixNano"`
	EndTimeUnixNano   string     `json:"endTimeUnixNano"`
	Attributes        []otlpAttr `json:"attributes,omitempty"`
}

type otlpAttr struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	StringValue string `json:"stringValue,omitempty"`
	IntValue    string `json:"intValue,omitempty"`
}

// spanKindInternal is OTLP's SPAN_KIND_INTERNAL: in-process stages, not RPC.
const spanKindInternal = 1

// WriteOTLP renders the span tree as one OTLP-style JSON document: a single
// resource (service.name=vista), a single scope, and every span of the tree
// in depth-first order with parent links.
func WriteOTLP(w io.Writer, root *obs.Span) error {
	if root == nil {
		return fmt.Errorf("export: nil trace")
	}
	traceID := otlpTraceID(root)
	end := lastEnd(root)

	var spans []otlpSpan
	var walk func(sp *obs.Span, parentID string)
	walk = func(sp *obs.Span, parentID string) {
		id := otlpSpanID(traceID, len(spans))
		spEnd, ended := sp.EndTime()
		if !ended {
			spEnd = end
		}
		o := otlpSpan{
			TraceID: traceID, SpanID: id, ParentSpanID: parentID,
			Name: sp.Name(), Kind: spanKindInternal,
			StartTimeUnixNano: fmt.Sprintf("%d", sp.Start().UnixNano()),
			EndTimeUnixNano:   fmt.Sprintf("%d", spEnd.UnixNano()),
		}
		for _, a := range sp.Attrs() {
			o.Attributes = append(o.Attributes, otlpAttr{
				Key: a.Key, Value: otlpValue{IntValue: fmt.Sprintf("%d", a.Value)},
			})
		}
		spans = append(spans, o)
		for _, c := range sp.Children() {
			walk(c, id)
		}
	}
	walk(root, "")

	doc := otlpDoc{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpAttr{
			{Key: "service.name", Value: otlpValue{StringValue: "vista"}},
		}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "repro/internal/obs"},
			Spans: spans,
		}},
	}}}
	return json.NewEncoder(w).Encode(doc)
}

// otlpTraceID derives a deterministic 128-bit hex trace ID from the root
// span's identity.
func otlpTraceID(root *obs.Span) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", root.Name(), root.Start().UnixNano())
	a := h.Sum64()
	h.Write([]byte("hi"))
	return fmt.Sprintf("%016x%016x", a, h.Sum64())
}

// otlpSpanID derives a deterministic 64-bit hex span ID from the trace ID and
// the span's preorder index.
func otlpSpanID(traceID string, index int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", traceID, index)
	return fmt.Sprintf("%016x", h.Sum64())
}
