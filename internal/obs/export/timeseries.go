package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/obs/sampler"
)

// WriteTimeseriesCSV renders a recording as CSV: a unix_ns timestamp column,
// the stage open at sample time, then one column per sampled series (sorted
// by key). A series absent from a frame renders as an empty cell.
func WriteTimeseriesCSV(w io.Writer, rec *sampler.Recording) error {
	if rec == nil {
		return fmt.Errorf("export: nil recording")
	}
	keys := rec.SeriesKeys()
	cw := csv.NewWriter(w)
	header := append([]string{"unix_ns", "stage"}, keys...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, f := range rec.Frames {
		row[0] = strconv.FormatInt(f.T.UnixNano(), 10)
		row[1] = f.Stage
		for i, k := range keys {
			if v, ok := f.Value(k); ok {
				row[2+i] = strconv.FormatFloat(v, 'g', -1, 64)
			} else {
				row[2+i] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// timeseriesJSON is the JSON wire form of a recording.
type timeseriesJSON struct {
	EveryNs int64       `json:"every_ns"`
	StartNs int64       `json:"start_unix_ns"`
	EndNs   int64       `json:"end_unix_ns"`
	Dropped int         `json:"dropped_frames"`
	Series  []string    `json:"series"`
	Frames  []frameJSON `json:"frames"`
}

type frameJSON struct {
	UnixNs int64              `json:"unix_ns"`
	Stage  string             `json:"stage,omitempty"`
	Values map[string]float64 `json:"values"`
}

// WriteTimeseriesJSON renders a recording as one JSON document: the sampling
// parameters, the sorted series key set, and every frame's values.
func WriteTimeseriesJSON(w io.Writer, rec *sampler.Recording) error {
	if rec == nil {
		return fmt.Errorf("export: nil recording")
	}
	doc := timeseriesJSON{
		EveryNs: rec.Every.Nanoseconds(),
		StartNs: rec.Start.UnixNano(),
		EndNs:   rec.End.UnixNano(),
		Dropped: rec.Dropped,
		Series:  rec.SeriesKeys(),
		Frames:  make([]frameJSON, len(rec.Frames)),
	}
	for i, f := range rec.Frames {
		doc.Frames[i] = frameJSON{UnixNs: f.T.UnixNano(), Stage: f.Stage, Values: f.Values}
	}
	return json.NewEncoder(w).Encode(doc)
}
