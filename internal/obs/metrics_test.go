package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden locks down the text exposition format byte-for-byte.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("vista_tasks_total", "Tasks executed.").Add(3)
	r.Counter("vista_http_requests_total", "HTTP requests served.",
		Label{"path", "/run"}, Label{"code", "200"}).Inc()
	r.Counter("vista_http_requests_total", "HTTP requests served.",
		Label{"path", "/run"}, Label{"code", "400"}).Add(2)
	g := r.Gauge("vista_pool_used_bytes", "Bytes in use.", Label{"pool", "storage"}, Label{"node", "0"})
	g.Set(1024)
	r.GaugeFunc("vista_pool_capacity_bytes", "Pool capacity.",
		func() float64 { return 4096 }, Label{"pool", "storage"}, Label{"node", "0"})
	h := r.Histogram("vista_request_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP vista_http_requests_total HTTP requests served.
# TYPE vista_http_requests_total counter
vista_http_requests_total{code="200",path="/run"} 1
vista_http_requests_total{code="400",path="/run"} 2
# HELP vista_pool_capacity_bytes Pool capacity.
# TYPE vista_pool_capacity_bytes gauge
vista_pool_capacity_bytes{node="0",pool="storage"} 4096
# HELP vista_pool_used_bytes Bytes in use.
# TYPE vista_pool_used_bytes gauge
vista_pool_used_bytes{node="0",pool="storage"} 1024
# HELP vista_request_seconds Request latency.
# TYPE vista_request_seconds histogram
vista_request_seconds_bucket{le="0.1"} 1
vista_request_seconds_bucket{le="1"} 2
vista_request_seconds_bucket{le="+Inf"} 3
vista_request_seconds_sum 5.55
vista_request_seconds_count 3
# HELP vista_tasks_total Tasks executed.
# TYPE vista_tasks_total counter
vista_tasks_total 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistrySameHandle verifies that re-registering returns the identical
// instance, so independent call sites accumulate into one series.
func TestRegistrySameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "h", Label{"k", "v"})
	b := r.Counter("c_total", "h", Label{"k", "v"})
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	a.Add(2)
	b.Inc()
	if a.Value() != 3 {
		t.Errorf("counter = %d, want 3", a.Value())
	}
	ga := r.Gauge("g", "h")
	gb := r.Gauge("g", "h")
	if ga != gb {
		t.Error("same name returned distinct gauges")
	}
	ha := r.Histogram("h", "h", DefBuckets)
	hb := r.Histogram("h", "h", DefBuckets)
	if ha != hb {
		t.Error("same name returned distinct histograms")
	}
}

// TestRegistryFuncReplace verifies func-backed series are replaceable — the
// contract that lets each fresh per-run engine take over the gauges.
func TestRegistryFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("g", "h", func() float64 { return 1 })
	r.GaugeFunc("g", "h", func() float64 { return 2 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(b.String(), "g 2\n") {
		t.Errorf("replacement callback not used:\n%s", b.String())
	}
	if strings.Count(b.String(), "\ng ") != 0 && strings.Contains(b.String(), "g 1") {
		t.Errorf("stale callback still rendered:\n%s", b.String())
	}
}

// TestRegistryTypeConflict verifies that reusing a name across metric types
// panics instead of corrupting the exposition.
func TestRegistryTypeConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Error("no panic on counter/gauge name conflict")
		}
	}()
	r.Gauge("m", "h")
}

// TestHistogramBuckets verifies bucket assignment edges.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "h", []float64{1, 2})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="2"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_sum 8`,
		`lat_count 5`,
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
}

// TestRegistryConcurrent hammers one registry from many writers while
// scraping it, for the race detector.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var writers, scraper sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			c := r.Counter("work_total", "h")
			g := r.Gauge("level", "h", Label{"worker", string(rune('a' + w))})
			h := r.Histogram("lat", "h", DefBuckets)
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i) / 100)
				r.GaugeFunc("fn", "h", func() float64 { return float64(i) })
			}
		}(w)
	}
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	scraper.Wait()
	if got := r.Counter("work_total", "h").Value(); got != 4*500 {
		t.Errorf("work_total = %d, want %d", got, 4*500)
	}
}
