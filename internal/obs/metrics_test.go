package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden locks down the text exposition format byte-for-byte.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("vista_tasks_total", "Tasks executed.").Add(3)
	r.Counter("vista_http_requests_total", "HTTP requests served.",
		Label{"path", "/run"}, Label{"code", "200"}).Inc()
	r.Counter("vista_http_requests_total", "HTTP requests served.",
		Label{"path", "/run"}, Label{"code", "400"}).Add(2)
	g := r.Gauge("vista_pool_used_bytes", "Bytes in use.", Label{"pool", "storage"}, Label{"node", "0"})
	g.Set(1024)
	r.GaugeFunc("vista_pool_capacity_bytes", "Pool capacity.",
		func() float64 { return 4096 }, Label{"pool", "storage"}, Label{"node", "0"})
	h := r.Histogram("vista_request_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP vista_http_requests_total HTTP requests served.
# TYPE vista_http_requests_total counter
vista_http_requests_total{code="200",path="/run"} 1
vista_http_requests_total{code="400",path="/run"} 2
# HELP vista_pool_capacity_bytes Pool capacity.
# TYPE vista_pool_capacity_bytes gauge
vista_pool_capacity_bytes{node="0",pool="storage"} 4096
# HELP vista_pool_used_bytes Bytes in use.
# TYPE vista_pool_used_bytes gauge
vista_pool_used_bytes{node="0",pool="storage"} 1024
# HELP vista_request_seconds Request latency.
# TYPE vista_request_seconds histogram
vista_request_seconds_bucket{le="0.1"} 1
vista_request_seconds_bucket{le="1"} 2
vista_request_seconds_bucket{le="+Inf"} 3
vista_request_seconds_sum 5.55
vista_request_seconds_count 3
# HELP vista_tasks_total Tasks executed.
# TYPE vista_tasks_total counter
vista_tasks_total 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistrySameHandle verifies that re-registering returns the identical
// instance, so independent call sites accumulate into one series.
func TestRegistrySameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "h", Label{"k", "v"})
	b := r.Counter("c_total", "h", Label{"k", "v"})
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	a.Add(2)
	b.Inc()
	if a.Value() != 3 {
		t.Errorf("counter = %d, want 3", a.Value())
	}
	ga := r.Gauge("g", "h")
	gb := r.Gauge("g", "h")
	if ga != gb {
		t.Error("same name returned distinct gauges")
	}
	ha := r.Histogram("h", "h", DefBuckets)
	hb := r.Histogram("h", "h", DefBuckets)
	if ha != hb {
		t.Error("same name returned distinct histograms")
	}
}

// TestRegistryFuncReplace verifies func-backed series are replaceable — the
// contract that lets each fresh per-run engine take over the gauges.
func TestRegistryFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("g", "h", func() float64 { return 1 })
	r.GaugeFunc("g", "h", func() float64 { return 2 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(b.String(), "g 2\n") {
		t.Errorf("replacement callback not used:\n%s", b.String())
	}
	if strings.Count(b.String(), "\ng ") != 0 && strings.Contains(b.String(), "g 1") {
		t.Errorf("stale callback still rendered:\n%s", b.String())
	}
}

// TestRegistryTypeConflict verifies that reusing a name across metric types
// panics instead of corrupting the exposition.
func TestRegistryTypeConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Error("no panic on counter/gauge name conflict")
		}
	}()
	r.Gauge("m", "h")
}

// TestHistogramBuckets verifies bucket assignment edges.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "h", []float64{1, 2})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="2"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_sum 8`,
		`lat_count 5`,
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
}

// TestRegistryConcurrent hammers one registry from many writers while
// scraping it, for the race detector.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var writers, scraper sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			c := r.Counter("work_total", "h")
			g := r.Gauge("level", "h", Label{"worker", string(rune('a' + w))})
			h := r.Histogram("lat", "h", DefBuckets)
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i) / 100)
				r.GaugeFunc("fn", "h", func() float64 { return float64(i) })
			}
		}(w)
	}
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	scraper.Wait()
	if got := r.Counter("work_total", "h").Value(); got != 4*500 {
		t.Errorf("work_total = %d, want %d", got, 4*500)
	}
}

// TestFuncMetricPanicGuard: a func-backed series whose callback panics (e.g.
// a gauge closure reading an engine torn down mid-scrape) must render NaN and
// leave the rest of the scrape intact — and must not poison Samples either.
func TestFuncMetricPanicGuard(t *testing.T) {
	r := NewRegistry()
	r.Gauge("healthy_gauge", "h").Set(7)
	r.GaugeFunc("broken_gauge", "h", func() float64 { panic("engine closed") })
	r.CounterFunc("broken_total", "h", func() float64 { panic("engine closed") })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, want := range []string{"broken_gauge NaN", "broken_total NaN", "healthy_gauge 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}

	var sawBroken bool
	for _, s := range r.Samples(nil) {
		switch s.Name {
		case "broken_gauge":
			sawBroken = true
			if !math.IsNaN(s.Value) {
				t.Errorf("broken_gauge sample = %v, want NaN", s.Value)
			}
		case "healthy_gauge":
			if s.Value != 7 {
				t.Errorf("healthy_gauge sample = %v, want 7", s.Value)
			}
		}
	}
	if !sawBroken {
		t.Error("Samples skipped the broken series")
	}
}

func TestSamples(t *testing.T) {
	r := NewRegistry()
	r.Counter("vista_engine_tasks_total", "h").Add(3)
	r.Gauge("vista_pool_used_bytes", "h",
		Label{Key: "node", Value: "0"}, Label{Key: "pool", Value: "storage"}).Set(4096)
	h := r.Histogram("vista_http_request_seconds", "h", DefBuckets)
	h.Observe(0.2)
	h.Observe(0.4)

	got := make(map[string]float64)
	for _, s := range r.Samples(nil) {
		got[s.Key()] = s.Value
	}
	want := map[string]float64{
		"vista_engine_tasks_total":                       3,
		`vista_pool_used_bytes{node="0",pool="storage"}`: 4096,
		"vista_http_request_seconds_sum":                 0.6000000000000001,
		"vista_http_request_seconds_count":               2,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Samples[%s] = %v, want %v", k, got[k], v)
		}
	}

	// Filtered read: only the pool family.
	filtered := r.Samples(func(name string) bool { return name == "vista_pool_used_bytes" })
	if len(filtered) != 1 || filtered[0].Value != 4096 {
		t.Errorf("filtered Samples = %v", filtered)
	}
}

func TestFindHistogram(t *testing.T) {
	r := NewRegistry()
	if r.FindHistogram("vista_http_request_seconds") != nil {
		t.Error("found a histogram in an empty registry")
	}
	lbl := Label{Key: "path", Value: "/run"}
	h := r.Histogram("vista_http_request_seconds", "h", DefBuckets, lbl)
	if r.FindHistogram("vista_http_request_seconds", lbl) != h {
		t.Error("FindHistogram did not return the registered instance")
	}
	if r.FindHistogram("vista_http_request_seconds", Label{Key: "path", Value: "/other"}) != nil {
		t.Error("FindHistogram minted or found a never-registered label set")
	}
	// Probing must not create series: the exposition stays label-complete.
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	if strings.Contains(b.String(), "/other") {
		t.Errorf("probe minted a series:\n%s", b.String())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})

	if _, ok := h.Quantile(0.99); ok {
		t.Error("empty histogram reported a quantile")
	}

	// 100 observations uniformly in (0,1]: everything lands in the first
	// bucket, so p50 interpolates to ~0.5 within [0,1].
	for i := 0; i < 100; i++ {
		h.Observe(0.005 * float64(i+1))
	}
	if v, ok := h.Quantile(0.5); !ok || v != 0.5 {
		t.Errorf("p50 = %v,%v, want 0.5", v, ok)
	}
	if v, ok := h.Quantile(1); !ok || v != 1 {
		t.Errorf("p100 = %v,%v, want 1 (upper bound of the occupied bucket)", v, ok)
	}

	// An observation beyond the last finite bound saturates there.
	h2 := newHistogram([]float64{1, 2, 4})
	h2.Observe(100)
	if v, ok := h2.Quantile(0.99); !ok || v != 4 {
		t.Errorf("overflow p99 = %v,%v, want saturation at 4", v, ok)
	}

	// Invalid q.
	if _, ok := h2.Quantile(0); ok {
		t.Error("q=0 accepted")
	}
	if _, ok := h2.Quantile(1.5); ok {
		t.Error("q>1 accepted")
	}
}

// TestHistogramQuantileEdgeCases pins the interpolation paths that a
// load-test report leans on: ranks inside the first bucket (interpolated
// from zero, not the bucket bound), empty interior buckets, +Inf overflow
// saturating at the last finite bound, and q=1.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		bounds  []float64
		samples []float64
		q       float64
		want    float64
	}{
		{"rank in the first bucket", []float64{1, 2, 4}, []float64{0.5, 0.5, 0.5, 0.5}, 0.5, 0.5},
		{"first bucket interpolates from zero, not its bound", []float64{10, 20}, []float64{1, 1, 1, 1}, 0.25, 2.5},
		{"empty interior buckets are skipped", []float64{1, 2, 4}, []float64{0.5, 3}, 1, 4},
		{"rank below an empty interior bucket", []float64{1, 2, 4}, []float64{0.5, 3}, 0.5, 1},
		{"overflow saturates at the last finite bound", []float64{1, 2, 4}, []float64{100}, 0.99, 4},
		{"q=1 reports the occupied bucket's upper bound", []float64{1, 2, 4}, []float64{2.5, 3, 3.5}, 1, 4},
		{"q=1 saturates when everything overflowed", []float64{1, 2}, []float64{5, 6, 7}, 1, 2},
		{"boundary observation counts into its own bucket", []float64{1, 2, 4}, []float64{2, 2}, 1, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := newHistogram(c.bounds)
			for _, s := range c.samples {
				h.Observe(s)
			}
			v, ok := h.Quantile(c.q)
			if !ok {
				t.Fatalf("Quantile(%v) not ok with %d observations", c.q, len(c.samples))
			}
			if math.Abs(v-c.want) > 1e-12 {
				t.Errorf("Quantile(%v) = %v, want %v", c.q, v, c.want)
			}
		})
	}
}
