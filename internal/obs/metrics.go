package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one fixed metric dimension, e.g. {pool="storage"}.
type Label struct {
	Key, Value string
}

// DefBuckets are the default histogram bucket upper bounds in seconds,
// spanning sub-millisecond handler turnarounds to multi-second /run requests.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Registry holds metric families and renders them as Prometheus text.
// All methods are safe for concurrent use; updates to returned handles are
// lock-free (counters, gauges) or per-metric locked (histograms), so engine
// tasks can update metrics while an HTTP scrape renders them.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is every metric sharing one name: same type, same help, one
// instance per label signature.
type family struct {
	name, help, typ string
	order           []string          // label signatures in registration order
	metrics         map[string]metric // label signature -> instance
}

// metric is one instance inside a family.
type metric interface {
	// write renders the instance's sample lines. name is the family name and
	// labels the pre-rendered label signature ("" or `{k="v",...}`).
	write(w io.Writer, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup finds or creates the named family and the instance for labels,
// using mk to build a missing instance. It panics on a type conflict — that
// is a programming error that would silently corrupt the exposition.
func (r *Registry) lookup(name, help, typ string, labels []Label, mk func() metric, replace bool) metric {
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, metrics: make(map[string]metric)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	if m, ok := f.metrics[sig]; ok {
		if !replace {
			return m
		}
	} else {
		f.order = append(f.order, sig)
	}
	m := mk()
	f.metrics[sig] = m
	return m
}

// Sample is one scalar series value read out of the registry: the family
// name, the rendered label signature ("" or `{k="v",...}`), and the value at
// read time. Histograms contribute their _sum and _count as two samples.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Key returns the sample's fully qualified series identity, name plus
// rendered labels — the stable key the time-series sampler and exporters
// index frames by.
func (s Sample) Key() string { return s.Name + s.Labels }

// Samples reads the current value of every series whose family name passes
// filter (nil = all), in family-name order then registration order. It is the
// programmatic analogue of WritePrometheus: counters and gauges yield one
// sample, func-backed series are invoked (a panicking callback yields NaN),
// histograms yield name_sum and name_count.
func (r *Registry) Samples(filter func(name string) bool) []Sample {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		if filter == nil || filter(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	type inst struct {
		name, sig string
		m         metric
	}
	var insts []inst
	for _, name := range names {
		f := r.families[name]
		for _, sig := range f.order {
			insts = append(insts, inst{name, sig, f.metrics[sig]})
		}
	}
	r.mu.Unlock()

	out := make([]Sample, 0, len(insts))
	for _, in := range insts {
		switch m := in.m.(type) {
		case *Counter:
			out = append(out, Sample{in.name, in.sig, float64(m.Value())})
		case *Gauge:
			out = append(out, Sample{in.name, in.sig, m.Value()})
		case funcMetric:
			out = append(out, Sample{in.name, in.sig, m.value()})
		case *Histogram:
			sum, count := m.sumCount()
			out = append(out,
				Sample{in.name + "_sum", in.sig, sum},
				Sample{in.name + "_count", in.sig, float64(count)})
		}
	}
	return out
}

// FindHistogram returns the registered histogram for name+labels, or nil.
// Unlike Histogram it never creates the instance, so probing (e.g. an SLO
// check over endpoints that may not have been hit yet) does not mint empty
// series into the exposition.
func (r *Registry) FindHistogram(name string, labels ...Label) *Histogram {
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return nil
	}
	h, _ := f.metrics[sig].(*Histogram)
	return h
}

// Counter returns the counter instance for name+labels, creating it on first
// use. Repeated calls with the same name and labels return the same handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.lookup(name, help, "counter", labels, func() metric { return &Counter{} }, false)
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is not a value-backed counter", name))
	}
	return c
}

// CounterFunc registers a counter whose value is read at scrape time.
// Re-registering the same name+labels replaces the callback, so a per-run
// component (e.g. a fresh dataflow engine) can take over the series.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, "counter", labels, func() metric { return funcMetric(fn) }, true)
}

// Gauge returns the gauge instance for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.lookup(name, help, "gauge", labels, func() metric { return &Gauge{} }, false)
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is not a value-backed gauge", name))
	}
	return g
}

// GaugeFunc registers a gauge read at scrape time; re-registration replaces
// the callback (same contract as CounterFunc).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, "gauge", labels, func() metric { return funcMetric(fn) }, true)
}

// Histogram returns the histogram instance for name+labels with the given
// bucket upper bounds (ascending; +Inf is implicit). Buckets are fixed at
// first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	m := r.lookup(name, help, "histogram", labels, func() metric { return newHistogram(buckets) }, false)
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is not a histogram", name))
	}
	return h
}

// WritePrometheus renders every family in the Prometheus text exposition
// format, families sorted by name, instances in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		r.mu.Lock()
		order := append([]string(nil), f.order...)
		instances := make([]metric, len(order))
		for i, sig := range order {
			instances[i] = f.metrics[sig]
		}
		r.mu.Unlock()
		for i, m := range instances {
			m.write(&b, f.name, order[i])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
}

// Gauge is a settable float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(g.Value()))
}

// funcMetric reads its value at scrape time.
type funcMetric func() float64

// value invokes the callback with a panic guard: a func-backed series that
// panics (e.g. a gauge closure reading an engine that has since been closed)
// renders as NaN instead of taking down the whole scrape.
func (f funcMetric) value() (v float64) {
	defer func() {
		if recover() != nil {
			v = math.NaN()
		}
	}()
	return f()
}

func (f funcMetric) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(f.value()))
}

// Histogram counts observations into cumulative buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // one per bound; the +Inf bucket is count minus their sum
	sum    float64
	count  int64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b))}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// sumCount returns the histogram's sum and count.
func (h *Histogram) sumCount() (float64, int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum, h.count
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucket counts the
// way PromQL's histogram_quantile does: find the bucket holding the q·count-th
// observation and interpolate linearly inside it. Observations beyond the
// last finite bound report that bound (the estimate saturates, it never
// invents a value above the largest bucket). ok is false when the histogram
// holds no observations.
func (h *Histogram) Quantile(q float64) (v float64, ok bool) {
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]int64(nil), h.counts...)
	count := h.count
	h.mu.Unlock()
	if count == 0 || q <= 0 || q > 1 || len(bounds) == 0 {
		return 0, false
	}
	rank := q * float64(count)
	var cum int64
	for i, ub := range bounds {
		cum += counts[i]
		if float64(cum) >= rank {
			lower := 0.0
			if i > 0 {
				lower = bounds[i-1]
			}
			inBucket := float64(counts[i])
			if inBucket == 0 {
				return ub, true
			}
			frac := (rank - float64(cum-counts[i])) / inBucket
			return lower + (ub-lower)*frac, true
		}
	}
	// The rank falls in the +Inf bucket: saturate at the last finite bound.
	return bounds[len(bounds)-1], true
}

func (h *Histogram) write(w io.Writer, name, labels string) {
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]int64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()

	var cum int64
	for i, ub := range bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(labels, "le", formatValue(ub)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(labels, "le", "+Inf"), count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatValue(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
}

// labelSignature renders labels (sorted by key) as `{k="v",...}`, or "".
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// withLabel appends one more label pair to a rendered signature (for
// histogram le labels).
func withLabel(sig, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, escapeLabel(value))
	if sig == "" {
		return "{" + extra + "}"
	}
	return sig[:len(sig)-1] + "," + extra + "}"
}

// escapeLabel escapes a label value per the exposition format. The %q in the
// callers already escapes quotes and backslashes; newlines are the remaining
// hazard and %q handles those too, so this only strips nothing today — kept
// as the single point to extend if values ever need more massaging.
func escapeLabel(v string) string { return v }

// escapeHelp escapes help text per the exposition format.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// formatValue renders a float sample the way Prometheus clients do.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
