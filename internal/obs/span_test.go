package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// at returns a fixed base time plus d, for deterministic span trees.
func at(d time.Duration) time.Time {
	return time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).Add(d)
}

func TestSpanTree(t *testing.T) {
	root := StartSpanAt("run", at(0))
	ingest := root.StartChildAt("ingest", at(0))
	ingest.SetAttr("rows", 2000)
	ingest.EndAt(at(10 * time.Millisecond))
	infer := root.StartChildAt("infer:fc6", at(10*time.Millisecond))
	infer.EndAt(at(40 * time.Millisecond))
	root.EndAt(at(50 * time.Millisecond))

	if d := root.Duration(); d != 50*time.Millisecond {
		t.Errorf("root duration = %v", d)
	}
	if d := root.SelfTime(); d != 10*time.Millisecond {
		t.Errorf("root self-time = %v, want 10ms", d)
	}
	if got := len(root.Children()); got != 2 {
		t.Fatalf("children = %d", got)
	}
	if v, ok := ingest.Attr("rows"); !ok || v != 2000 {
		t.Errorf("rows attr = %d/%v", v, ok)
	}
	if sp := root.Find("infer:fc6"); sp != infer {
		t.Error("Find missed the infer span")
	}
	if sp := root.Find("nope"); sp != nil {
		t.Error("Find invented a span")
	}

	var names []string
	var depths []int
	root.Walk(func(sp *Span, depth int) {
		names = append(names, sp.Name())
		depths = append(depths, depth)
	})
	if strings.Join(names, ",") != "run,ingest,infer:fc6" {
		t.Errorf("walk order = %v", names)
	}
	if depths[0] != 0 || depths[1] != 1 || depths[2] != 1 {
		t.Errorf("walk depths = %v", depths)
	}
}

func TestSpanRenderGolden(t *testing.T) {
	root := StartSpanAt("run", at(0))
	ingest := root.StartChildAt("ingest", at(0))
	ingest.SetAttr("rows", 2000)
	ingest.EndAt(at(10 * time.Millisecond))
	infer := root.StartChildAt("infer:fc6", at(10*time.Millisecond))
	infer.SetAttr("flops", 1234)
	infer.EndAt(at(40 * time.Millisecond))
	root.EndAt(at(50 * time.Millisecond))

	var b strings.Builder
	root.Render(&b)
	want := "" +
		"run               50ms  (self 10ms)\n" +
		"  ingest          10ms  rows=2000\n" +
		"  infer:fc6       30ms  flops=1234\n"
	if b.String() != want {
		t.Errorf("render mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestSpanSelfTimeFloor: overlapping parallel children can exceed the parent
// duration; self-time must floor at zero.
func TestSpanSelfTimeFloor(t *testing.T) {
	root := StartSpanAt("par", at(0))
	for i := 0; i < 3; i++ {
		c := root.StartChildAt("task", at(0))
		c.EndAt(at(40 * time.Millisecond))
	}
	root.EndAt(at(50 * time.Millisecond))
	if d := root.SelfTime(); d != 0 {
		t.Errorf("self-time = %v, want 0", d)
	}
}

// TestSpanAttrOverwrite verifies SetAttr replaces an existing key.
func TestSpanAttrOverwrite(t *testing.T) {
	s := StartSpan("x")
	s.SetAttr("rows", 1)
	s.SetAttr("rows", 2)
	s.End()
	if attrs := s.Attrs(); len(attrs) != 1 || attrs[0].Value != 2 {
		t.Errorf("attrs = %v", attrs)
	}
}

// TestSpanDoubleEnd verifies End is idempotent.
func TestSpanDoubleEnd(t *testing.T) {
	s := StartSpanAt("x", at(0))
	s.EndAt(at(time.Millisecond))
	s.EndAt(at(time.Hour))
	if d := s.Duration(); d != time.Millisecond {
		t.Errorf("duration = %v after double End", d)
	}
}

// TestSpanConcurrent opens children and sets attributes from many goroutines
// (race-detector coverage; parallel engine stages share one parent span).
func TestSpanConcurrent(t *testing.T) {
	root := StartSpan("run")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c := root.StartChild("task")
				c.SetAttr("i", int64(i))
				c.End()
				_ = root.SelfTime()
			}
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 800 {
		t.Errorf("children = %d, want 800", got)
	}
}
