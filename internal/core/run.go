package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cnn"
	"repro/internal/dataflow"
	"repro/internal/dl"
	"repro/internal/faultinject"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/obs/sampler"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// FaultStage is the failpoint site hit at every executor stage boundary; a
// labeled variant "core/stage:<label>" is hit first (labels: ingest, join,
// premat, infer, cache, train), so a schedule can fail the Nth stage of any
// kind or one specific kind of stage.
const FaultStage = "core/stage"

// failStage guards a stage boundary: a cancelled run context aborts before
// the next stage starts, and the failpoint layer gets a shot at injecting a
// fault. Cancellation inside a stage is handled by the engine's run-scoped
// context (TaskContext.Done); this check covers the gaps between stages.
func (ex *executor) failStage(label string) error {
	if err := ex.ctx.Err(); err != nil {
		return fmt.Errorf("core: stage %s: %w", label, err)
	}
	if err := faultinject.Hit(FaultStage + ":" + label); err != nil {
		return fmt.Errorf("core: stage %s: %w", label, err)
	}
	if err := faultinject.Hit(FaultStage); err != nil {
		return fmt.Errorf("core: stage %s: %w", label, err)
	}
	return nil
}

// Run executes the feature-transfer workload end-to-end on the real engine:
// optimizer → configuration → ingestion → join and (partial) CNN inference
// per the logical plan → downstream training per layer. Memory-related
// failures surface as typed *memory.OOMError values, never panics. Run is
// RunContext with a background context (never cancelled).
func Run(spec Spec) (*Result, error) {
	return RunContext(context.Background(), spec)
}

// RunContext is Run under a caller-owned context: cancelling ctx (a client
// disconnect, a deadline) aborts the run at the next stage boundary and
// inside long-running engine operations (via the engine's run-scoped
// cancellation and TaskContext.Done), releasing every table, pool charge,
// and spill file on the way out. The returned error wraps ctx's error, so
// errors.Is(err, context.Canceled) identifies an aborted run.
func RunContext(ctx context.Context, spec Spec) (*Result, error) {
	start := time.Now()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: run cancelled before start: %w", err)
	}
	model, err := cnn.ByName(spec.ModelName)
	if err != nil {
		return nil, err
	}
	stats, err := cnn.ComputeStats(model)
	if err != nil {
		return nil, err
	}

	compiled, err := plan.CompileFromStats(spec.PlanKind, spec.Placement, stats, spec.NumLayers,
		plan.Options{PreMaterializeBase: spec.PreMaterializeBase})
	if err != nil {
		return nil, err
	}
	// Probe the feature store (when configured) before deciding: cached
	// stages shrink the optimizer's cost picture.
	cache := loadRunCache(&spec, model, compiled)
	decision, err := decide(spec, stats, cache.cachedEmits(compiled))
	if err != nil {
		return nil, err
	}

	// A fully-warm run needs neither the raw image payloads nor a DL
	// session; pre-materialization and any live inference step bring both
	// back.
	imagesNeeded, sessionNeeded := true, true
	if cache != nil {
		imagesNeeded = compiled.PreMaterializedBase >= 0
		sessionNeeded = compiled.PreMaterializedBase >= 0
		for i, step := range compiled.Steps {
			if !cache.cached(i) {
				sessionNeeded = true
				if step.FromImage {
					imagesNeeded = true
				}
			}
		}
	}
	if !imagesNeeded {
		stripped := make([]dataflow.Row, len(spec.ImageRows))
		copy(stripped, spec.ImageRows)
		for i := range stripped {
			stripped[i].Image = nil
		}
		spec.ImageRows = stripped
	}

	cores := decision.CPU
	if cores > spec.CoresPerNode {
		cores = spec.CoresPerNode
	}
	engine, err := dataflow.NewEngine(dataflow.Config{
		Nodes:         spec.Nodes,
		CoresPerNode:  cores,
		Kind:          spec.SystemKind,
		Apportion:     decision.Apportionment(spec.params()),
		DefaultFormat: decision.Pers,
		SpillDir:      spec.SpillDir,
	})
	if err != nil {
		return nil, err
	}
	defer engine.Close()
	engine.SetContext(ctx)

	var session *dl.Session
	if sessionNeeded {
		session, err = dl.NewSession(engine, model, dl.Options{Seed: spec.Seed, GPUMemBytes: spec.GPUMemPerNode})
		if err != nil {
			return nil, err
		}
		defer session.Close()
	}

	if spec.Metrics != nil {
		engine.RegisterMetrics(spec.Metrics)
		if spec.FeatureStore != nil {
			spec.FeatureStore.RegisterMetrics(spec.Metrics)
		}
	}

	ex := &executor{
		ctx:      ctx,
		spec:     spec,
		engine:   engine,
		session:  session,
		decision: decision,
		plan:     compiled,
		cache:    cache,
		trace:    obs.StartSpan("run"),
	}
	// The sampler observes the run from the outside: it reads the same
	// func-backed registry series a /metrics scrape would, on its own
	// goroutine, tagging frames with the stage open in the live span tree.
	var smp *sampler.Sampler
	if spec.Metrics != nil && spec.SampleEvery > 0 {
		smp = sampler.Start(sampler.Config{
			Registry: spec.Metrics,
			Trace:    ex.trace,
			Every:    spec.SampleEvery,
		})
	}
	layers, err := ex.run()
	ex.trace.End()
	var recording *sampler.Recording
	if smp != nil {
		recording = smp.Stop()
	}
	if err != nil {
		return nil, err
	}
	report := CacheReport{
		StagesFromCache: ex.fromCache,
		StagesShared:    ex.fromShared,
		StagesExecuted:  ex.executed,
		EntriesStored:   ex.stored,
	}
	if cache != nil {
		report.Enabled = true
		report.EntriesLoaded = cache.loaded
		report.WeightsSum = cache.weightsSum
		report.DataSum = cache.dataSum
	}
	return &Result{
		Decision: decision,
		Plan:     compiled,
		Layers:   layers,
		Counters: engine.Counters().Snapshot(),
		Elapsed:  time.Since(start),
		Trace:    ex.trace,
		Timings:  timingsFromTrace(ex.trace),
		Series:   recording,
		Cache:    report,
	}, nil
}

// timingsFromTrace flattens the root span's children into the legacy
// per-stage breakdown.
func timingsFromTrace(root *obs.Span) []StageTiming {
	children := root.Children()
	out := make([]StageTiming, len(children))
	for i, sp := range children {
		out[i] = StageTiming{Label: sp.Name(), Elapsed: sp.Duration()}
	}
	return out
}

// decide runs the optimizer unless the spec pins a decision. cachedLayers is
// how many selected layers a feature store already holds; it shrinks the
// Equation 16 inputs (a fully-warm run needs no images, replicas, or
// broadcast).
func decide(spec Spec, stats *cnn.Stats, cachedLayers int) (optimizer.Decision, error) {
	if spec.Decision != nil {
		return *spec.Decision, nil
	}
	in, err := optimizerInputs(spec, stats)
	if err != nil {
		return optimizer.Decision{}, err
	}
	in.CachedLayers = cachedLayers
	return optimizer.Optimize(in, spec.params())
}

// avgImageBytes samples the image table's average raw payload.
func avgImageBytes(rows []dataflow.Row) int64 {
	n := len(rows)
	if n == 0 {
		return 0
	}
	if n > 100 {
		n = 100
	}
	var total int64
	for i := 0; i < n; i++ {
		total += rows[i].MemBytes()
	}
	return total / int64(n)
}

// executor drives one compiled plan over the engine.
type executor struct {
	ctx      context.Context // the run's cancellation context
	spec     Spec
	engine   *dataflow.Engine
	session  *dl.Session // nil on fully-warm runs (no inference scheduled)
	decision optimizer.Decision
	plan     *plan.Plan
	cache    *runCache // nil when no feature store is configured
	trace    *obs.Span // the run's root span; one child per stage

	// fromCache/fromShared/executed/stored feed the run's CacheReport.
	fromCache, fromShared, executed, stored int
}

// stage opens one top-level stage span; the caller must End it.
func (ex *executor) stage(label string) *obs.Span {
	return ex.trace.StartChild(label)
}

// counterDelta returns a closure capturing counter c now; calling it returns
// how much c has grown since — for attributing FLOPs/bytes to one stage.
// (Parallel stages would blur the attribution, but the executor runs stages
// sequentially; only tasks within a stage are parallel.)
func counterDelta(load func() int64) func() int64 {
	before := load()
	return func() int64 { return load() - before }
}

func (ex *executor) run() ([]LayerResult, error) {
	e := ex.engine
	if err := ex.failStage("ingest"); err != nil {
		return nil, err
	}
	ingest := ex.stage("ingest")
	readBytes := counterDelta(e.Counters().BytesRead.Load)
	tstr, err := e.CreateTable("tstr", ex.spec.StructRows, ex.decision.NP)
	if err != nil {
		return nil, err
	}
	timg, err := e.CreateTable("timg", ex.spec.ImageRows, ex.decision.NP)
	if err != nil {
		return nil, err
	}
	ingest.SetAttr("rows", int64(len(ex.spec.StructRows)+len(ex.spec.ImageRows)))
	ingest.SetAttr("bytes", readBytes())
	ingest.End()
	if ex.plan.Placement == plan.AfterJoin {
		return ex.runAfterJoin(tstr, timg)
	}
	return ex.runBeforeJoin(tstr, timg)
}

// runAfterJoin joins Tstr ⋈ Timg first, then runs inference passes over the
// joined table (the paper's AJ placement; Staged/AJ is Vista's default).
func (ex *executor) runAfterJoin(tstr, timg *dataflow.Table) ([]LayerResult, error) {
	if err := ex.failStage("join"); err != nil {
		tstr.Drop()
		timg.Drop()
		return nil, err
	}
	join := ex.stage("join")
	joinRows := counterDelta(ex.engine.Counters().RowsProcessed.Load)
	shuffled := counterDelta(ex.engine.Counters().BytesShuffled.Load)
	base, err := ex.engine.Join("joined", tstr, timg, ex.decision.Join)
	if err != nil {
		// A failed join must release both inputs, or their cached (and
		// possibly spilled) partitions outlive the run.
		join.End()
		tstr.Drop()
		timg.Drop()
		return nil, err
	}
	join.SetAttr("rows", joinRows())
	join.SetAttr("shuffle_bytes", shuffled())
	join.End()
	tstr.Drop()
	timg.Drop()

	var results []LayerResult
	rawIdx := -1
	if ex.plan.PreMaterializedBase >= 0 {
		base, rawIdx, err = ex.preMaterialize(base, &results)
		if err != nil {
			return nil, err
		}
	}
	more, err := ex.runPasses(base, rawIdx, ex.train)
	if err != nil {
		return nil, err
	}
	return append(results, more...), nil
}

// runBeforeJoin runs inference over Timg alone and joins each emitted
// feature table with Tstr only for training (the paper's BJ placement).
func (ex *executor) runBeforeJoin(tstr, timg *dataflow.Table) ([]LayerResult, error) {
	defer tstr.Drop()
	var results []LayerResult
	rawIdx := -1
	base := timg
	if ex.plan.PreMaterializedBase >= 0 {
		var err error
		base, rawIdx, err = ex.preMaterializeBJ(tstr, timg, &results)
		timg.Drop()
		if err != nil {
			return nil, err
		}
	}
	trainJoined := func(out *dataflow.Table, featIdx int, em plan.Emit) (LayerResult, error) {
		proj, err := ex.projectFeature(out, featIdx, em.LayerName)
		if err != nil {
			return LayerResult{}, err
		}
		joined, err := ex.engine.Join("train-"+em.LayerName, tstr, proj, ex.decision.Join)
		proj.Drop()
		if err != nil {
			return LayerResult{}, err
		}
		defer joined.Drop()
		return ex.train(joined, 0, em)
	}
	more, err := ex.runPasses(base, rawIdx, trainJoined)
	if err != nil {
		return nil, err
	}
	return append(results, more...), nil
}

// runPasses drives the plan's inference steps over base, training each
// emitted layer with trainFn and managing intermediate-table lifetimes: Lazy
// steps re-read base, Staged steps consume the previous step's raw carry.
// It takes ownership of base and drops every intermediate it creates.
func (ex *executor) runPasses(base *dataflow.Table, rawIdx int,
	trainFn func(out *dataflow.Table, featIdx int, em plan.Emit) (LayerResult, error)) ([]LayerResult, error) {

	var results []LayerResult
	carrier := base
	cleanup := func() {
		if carrier != nil && carrier != base {
			carrier.Drop()
		}
		if base != nil {
			base.Drop()
		}
	}
	for i, step := range ex.plan.Steps {
		input := carrier
		if step.FromImage {
			input = base
		}
		var out *dataflow.Table
		var err error
		if ex.cache.cached(i) {
			out, err = ex.attachStep(fmt.Sprintf("stage%d", i), input, step, ex.cache.steps[i])
		} else {
			out, err = ex.runStep(fmt.Sprintf("stage%d", i), input, step, rawIdx)
		}
		if err != nil {
			cleanup()
			return nil, err
		}
		if ex.cache.sharedStep(i) {
			ex.fromShared++
		} else if ex.cache.cached(i) {
			ex.fromCache++
		} else {
			ex.executed++
			ex.publishStep(out, step)
		}
		for ei, em := range step.Emits {
			res, err := trainFn(out, ei, em)
			if err != nil {
				out.Drop()
				cleanup()
				return nil, err
			}
			results = append(results, res)
		}
		if step.KeepRaw {
			rawIdx = len(step.Emits)
		}
		// Release the consumed carrier (staged chains) and advance.
		if carrier != nil && carrier != base && carrier != out {
			carrier.Drop()
		}
		if step.KeepRaw {
			carrier = out
		} else {
			out.Drop()
			carrier = nil
		}
		// Release the base once no later step reads it.
		if base != nil && carrier != base && !ex.laterStepReadsImages(i) {
			base.Drop()
			base = nil
		}
	}
	cleanup()
	return results, nil
}

// laterStepReadsImages reports whether any step after i consumes the base
// (image) table.
func (ex *executor) laterStepReadsImages(i int) bool {
	for _, s := range ex.plan.Steps[i+1:] {
		if s.FromImage {
			return true
		}
	}
	return false
}

// runStep executes one inference pass.
func (ex *executor) runStep(name string, in *dataflow.Table, step plan.Step, rawIdx int) (*dataflow.Table, error) {
	if ex.session == nil {
		return nil, fmt.Errorf("core: internal: inference step %s scheduled without a DL session", name)
	}
	if err := ex.failStage("infer"); err != nil {
		return nil, err
	}
	sp := ex.stage("infer:" + step.Emits[0].LayerName)
	flops := counterDelta(ex.engine.Counters().FLOPs.Load)
	defer func() {
		sp.SetAttr("flops", flops())
		sp.End()
	}()
	spec := dl.InferenceSpec{
		From:       step.From,
		FromImage:  step.FromImage,
		InputIndex: rawIdx,
		KeepRawAt:  -1,
		DropInput:  true,
	}
	for _, em := range step.Emits {
		spec.EmitLayers = append(spec.EmitLayers, em.LayerIndex)
	}
	if step.KeepRaw {
		spec.KeepRawAt = step.Emits[len(step.Emits)-1].LayerIndex
	}
	udf, err := ex.session.PartitionFunc(spec)
	if err != nil {
		return nil, err
	}
	return ex.engine.MapPartitions(name, in, udf)
}

// preMaterialize computes the base layer over the joined table: it emits the
// base feature (trained directly) and keeps the raw base tensor as the
// staged chain's input (Appendix B).
func (ex *executor) preMaterialize(base *dataflow.Table, results *[]LayerResult) (*dataflow.Table, int, error) {
	bl := ex.plan.Layers[ex.plan.PreMaterializedBase]
	udf, err := ex.session.PartitionFunc(dl.InferenceSpec{
		From: 0, FromImage: true,
		EmitLayers: []int{bl.LayerIndex},
		KeepRawAt:  bl.LayerIndex,
		DropInput:  true,
	})
	if err != nil {
		return nil, 0, err
	}
	if err := ex.failStage("premat"); err != nil {
		base.Drop()
		return nil, 0, err
	}
	sp := ex.stage("premat:" + bl.Name)
	flops := counterDelta(ex.engine.Counters().FLOPs.Load)
	out, err := ex.engine.MapPartitions("premat", base, udf)
	if err != nil {
		sp.End()
		base.Drop()
		return nil, 0, err
	}
	sp.SetAttr("flops", flops())
	sp.End()
	base.Drop()
	res, err := ex.train(out, 0, plan.Emit{LayerName: bl.Name, LayerIndex: bl.LayerIndex, FeatureDim: bl.FeatureDim})
	if err != nil {
		out.Drop()
		return nil, 0, err
	}
	*results = append(*results, res)
	return out, 1, nil
}

// preMaterializeBJ is preMaterialize for the BJ placement: the base pass
// runs over Timg and the base layer trains through a join.
func (ex *executor) preMaterializeBJ(tstr, timg *dataflow.Table, results *[]LayerResult) (*dataflow.Table, int, error) {
	bl := ex.plan.Layers[ex.plan.PreMaterializedBase]
	udf, err := ex.session.PartitionFunc(dl.InferenceSpec{
		From: 0, FromImage: true,
		EmitLayers: []int{bl.LayerIndex},
		KeepRawAt:  bl.LayerIndex,
		DropInput:  true,
	})
	if err != nil {
		return nil, 0, err
	}
	if err := ex.failStage("premat"); err != nil {
		return nil, 0, err
	}
	sp := ex.stage("premat:" + bl.Name)
	flops := counterDelta(ex.engine.Counters().FLOPs.Load)
	out, err := ex.engine.MapPartitions("premat", timg, udf)
	if err != nil {
		sp.End()
		return nil, 0, err
	}
	sp.SetAttr("flops", flops())
	sp.End()
	em := plan.Emit{LayerName: bl.Name, LayerIndex: bl.LayerIndex, FeatureDim: bl.FeatureDim}
	proj, err := ex.projectFeature(out, 0, bl.Name)
	if err != nil {
		out.Drop()
		return nil, 0, err
	}
	joined, err := ex.engine.Join("train-"+bl.Name, tstr, proj, ex.decision.Join)
	proj.Drop()
	if err != nil {
		out.Drop()
		return nil, 0, err
	}
	res, err := ex.train(joined, 0, em)
	joined.Drop()
	if err != nil {
		out.Drop()
		return nil, 0, err
	}
	*results = append(*results, res)
	return out, 1, nil
}

// newSingletonList wraps one tensor of l into a fresh TensorList.
func newSingletonList(l *tensor.TensorList, idx int) *tensor.TensorList {
	return tensor.NewTensorList(l.Get(idx))
}

// projectFeature keeps only the feature tensor at idx, dropping raw carries
// before a join.
func (ex *executor) projectFeature(t *dataflow.Table, idx int, layer string) (*dataflow.Table, error) {
	return ex.engine.MapPartitions("proj-"+layer, t, func(_ *dataflow.TaskContext, in []dataflow.Row) ([]dataflow.Row, error) {
		out := make([]dataflow.Row, len(in))
		for i := range in {
			r := in[i]
			if r.Features == nil || r.Features.Len() <= idx {
				return nil, fmt.Errorf("core: row %d lacks feature %d", r.ID, idx)
			}
			r.Features = newSingletonList(r.Features, idx)
			out[i] = r
		}
		return out, nil
	})
}

// train fits the downstream model on [X, feature(idx)] and evaluates it.
func (ex *executor) train(t *dataflow.Table, featIdx int, em plan.Emit) (LayerResult, error) {
	if err := ex.failStage("train"); err != nil {
		return LayerResult{}, err
	}
	sp := ex.stage("train:" + em.LayerName)
	trainRowsRead := counterDelta(ex.engine.Counters().RowsProcessed.Load)
	defer func() {
		sp.SetAttr("rows", trainRowsRead())
		sp.End()
	}()
	e := ex.engine
	ds := ex.spec.Downstream
	structDim := len(ex.spec.StructRows[0].Structured)
	dim := structDim + em.FeatureDim
	extract := ml.StructuredPlusFeature(featIdx)

	trainTable := t
	var testRows []dataflow.Row
	if ds.TestFraction > 0 {
		var err error
		trainTable, err = e.Filter("train-split", t, func(r *dataflow.Row) bool {
			return !ml.IsTestID(r.ID, ds.TestFraction)
		})
		if err != nil {
			return LayerResult{}, err
		}
		defer trainTable.Drop()
		testTable, err := e.Filter("test-split", t, func(r *dataflow.Row) bool {
			return ml.IsTestID(r.ID, ds.TestFraction)
		})
		if err != nil {
			return LayerResult{}, err
		}
		testRows, err = e.Collect(testTable)
		testTable.Drop()
		if err != nil {
			return LayerResult{}, err
		}
	}

	var model ml.Model
	var err error
	switch ds.Kind {
	case LogisticRegression:
		model, err = ml.TrainLogReg(e, trainTable, extract, dim, ds.LogReg)
	case DecisionTree:
		var rows []dataflow.Row
		rows, err = e.Collect(trainTable)
		if err == nil {
			model, err = ml.TrainTree(rows, extract, ds.Tree)
		}
	case MLP:
		var rows []dataflow.Row
		rows, err = e.Collect(trainTable)
		if err == nil {
			model, err = ml.TrainMLP(rows, extract, dim, ds.MLP)
		}
	default:
		err = fmt.Errorf("core: unknown downstream kind %d", int(ds.Kind))
	}
	if err != nil {
		return LayerResult{}, fmt.Errorf("core: training on %s: %w", em.LayerName, err)
	}

	res := LayerResult{LayerName: em.LayerName, FeatureDim: em.FeatureDim, Model: model}
	trainRows, err := e.Collect(trainTable)
	if err != nil {
		return LayerResult{}, err
	}
	if res.Train, err = ml.Evaluate(model, trainRows, extract); err != nil {
		return LayerResult{}, err
	}
	if len(testRows) > 0 {
		if res.Test, err = ml.Evaluate(model, testRows, extract); err != nil {
			return LayerResult{}, err
		}
	}
	return res, nil
}
