package core

import (
	"repro/internal/cnn"
	"repro/internal/sim"
)

// Price estimates how many bytes of workload memory (Storage + User + DL
// Execution, cluster-wide) running spec would reserve, without running it.
// It walks the same path Run does — validate, model stats, optimizer inputs
// (Equation 16), Algorithm 1 — and renders the chosen decision as an
// admission charge via sim.DecisionCost, so a server can admit runs against
// a byte budget using exactly the memory model the runs themselves will
// execute under (Section 4.1, Equations 9–15).
//
// A spec that pins a Decision is priced from that decision directly. An
// infeasible workload returns optimizer.ErrNoFeasible: it cannot be priced,
// and would not survive execution either.
func Price(spec Spec) (int64, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	if spec.Decision != nil {
		return sim.DecisionCost(*spec.Decision, spec.Nodes), nil
	}
	model, err := cnn.ByName(spec.ModelName)
	if err != nil {
		return 0, err
	}
	stats, err := cnn.ComputeStats(model)
	if err != nil {
		return 0, err
	}
	in, err := optimizerInputs(spec, stats)
	if err != nil {
		return 0, err
	}
	_, cost, err := sim.AdmissionCost(in, spec.params())
	if err != nil {
		return 0, err
	}
	return cost, nil
}
