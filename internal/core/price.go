package core

import (
	"repro/internal/cnn"
	"repro/internal/optimizer"
	"repro/internal/sim"
)

// Price estimates how many bytes of workload memory (Storage + User + DL
// Execution, cluster-wide) running spec would reserve, without running it.
// It walks the same path Run does — validate, model stats, optimizer inputs
// (Equation 16), Algorithm 1 — and renders the chosen decision as an
// admission charge via sim.DecisionCost, so a server can admit runs against
// a byte budget using exactly the memory model the runs themselves will
// execute under (Section 4.1, Equations 9–15).
//
// A spec that pins a Decision is priced from that decision directly. An
// infeasible workload returns optimizer.ErrNoFeasible: it cannot be priced,
// and would not survive execution either.
func Price(spec Spec) (int64, error) {
	_, cost, err := price(spec)
	return cost, err
}

// PriceFollower prices spec as a sharing follower: a run that attaches its
// group leader's feature tables instead of executing its own partial
// inference. The group pays the leader's full Price once; each follower is
// charged only its marginal reservation — the same decision with DL
// Execution Memory zeroed (sim.FollowerCost), since a follower never opens a
// DL session. This is the Eq. 16 cost-model extension that lets the
// admission controller accept shared groups the solo pricing would have
// serialized.
func PriceFollower(spec Spec) (int64, error) {
	d, _, err := price(spec)
	if err != nil {
		return 0, err
	}
	return sim.FollowerCostScaled(d, spec.Nodes, spec.params().Scales), nil
}

// price resolves spec's decision and its full admission charge.
func price(spec Spec) (optimizer.Decision, int64, error) {
	if err := spec.Validate(); err != nil {
		return optimizer.Decision{}, 0, err
	}
	if spec.Decision != nil {
		return *spec.Decision, sim.DecisionCost(*spec.Decision, spec.Nodes), nil
	}
	model, err := cnn.ByName(spec.ModelName)
	if err != nil {
		return optimizer.Decision{}, 0, err
	}
	stats, err := cnn.ComputeStats(model)
	if err != nil {
		return optimizer.Decision{}, 0, err
	}
	in, err := optimizerInputs(spec, stats)
	if err != nil {
		return optimizer.Decision{}, 0, err
	}
	d, cost, err := sim.AdmissionCost(in, spec.params())
	if err != nil {
		return optimizer.Decision{}, 0, err
	}
	return d, cost, nil
}
